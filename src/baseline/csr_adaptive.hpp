// CSR-Adaptive (Greathouse & Daga, SC'14) — the paper's state-of-the-art
// baseline (Figure 7). Reimplemented on the clsim engine, mirroring the
// SNACK port the paper compares against.
//
// CSR-Adaptive achieves *inter-bin* load balance: consecutive rows are
// greedily packed into row blocks whose total NNZ fits the local-memory
// buffer; each block is processed by one work-group. Multi-row blocks use
// CSR-Stream (cooperatively stage all products into local memory with
// coalesced loads, then reduce one row per lane); a single row too long for
// the buffer falls back to CSR-Vector (whole group on the row). The
// strategy parameters are fixed ("hard-coded") as in the original.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "clsim/engine.hpp"
#include "sparse/csr.hpp"

namespace spmv::baseline {

/// One-time-planned CSR-Adaptive SpMV executor for a fixed matrix.
template <typename T>
class CsrAdaptive {
 public:
  /// Local-memory product buffer per work-group, in elements. Blocks are
  /// packed so block NNZ <= kBlockNnz (one stream pass per block).
  static constexpr offset_t kBlockNnz = 1024;
  /// CSR-Stream reduces one row per lane, so blocks hold at most the
  /// work-group's lane count of rows.
  static constexpr index_t kMaxRowsPerBlock = 256;

  /// Build the row-block table for `a`. The matrix must outlive this
  /// object (only a reference is kept).
  CsrAdaptive(const CsrMatrix<T>& a, const clsim::Engine& engine);

  /// y = A*x using the planned blocks.
  void run(std::span<const T> x, std::span<T> y) const;

  /// Number of row blocks (work-groups launched per run).
  [[nodiscard]] std::size_t block_count() const {
    return row_blocks_.size() - 1;
  }

  /// Block boundary rows: block b covers rows
  /// [row_blocks()[b], row_blocks()[b+1]).
  [[nodiscard]] const std::vector<index_t>& row_blocks() const {
    return row_blocks_;
  }

 private:
  const CsrMatrix<T>& a_;
  const clsim::Engine& engine_;
  std::vector<index_t> row_blocks_;
};

extern template class CsrAdaptive<float>;
extern template class CsrAdaptive<double>;

}  // namespace spmv::baseline

#include "baseline/csr_adaptive.hpp"

#include <algorithm>
#include <stdexcept>

namespace spmv::baseline {

namespace {
constexpr int kGroupSize = 256;
}

template <typename T>
CsrAdaptive<T>::CsrAdaptive(const CsrMatrix<T>& a, const clsim::Engine& engine)
    : a_(a), engine_(engine) {
  // Greedy packing (the original's rowBlocks construction): extend the
  // current block while its NNZ stays within the buffer and its row count
  // within the lane count; an oversized single row gets its own block.
  const index_t m = a.rows();
  row_blocks_.push_back(0);
  offset_t block_nnz = 0;
  index_t block_rows = 0;
  for (index_t r = 0; r < m; ++r) {
    const offset_t len = a.row_nnz(r);
    if (block_rows > 0 &&
        (block_nnz + len > kBlockNnz || block_rows + 1 > kMaxRowsPerBlock)) {
      row_blocks_.push_back(r);
      block_nnz = 0;
      block_rows = 0;
    }
    block_nnz += len;
    block_rows += 1;
    if (block_rows == 1 && len > kBlockNnz) {
      // Oversized row: close it immediately as a CSR-Vector block.
      row_blocks_.push_back(r + 1);
      block_nnz = 0;
      block_rows = 0;
    }
  }
  if (row_blocks_.back() != m) row_blocks_.push_back(m);
}

template <typename T>
void CsrAdaptive<T>::run(std::span<const T> x, std::span<T> y) const {
  if (x.size() != static_cast<std::size_t>(a_.cols()))
    throw std::invalid_argument("CsrAdaptive::run: x size != cols");
  if (y.size() != static_cast<std::size_t>(a_.rows()))
    throw std::invalid_argument("CsrAdaptive::run: y size != rows");

  const auto row_ptr = a_.row_ptr();
  const auto col_idx = a_.col_idx();
  const auto vals = a_.vals();
  const auto& blocks = row_blocks_;

  clsim::LaunchParams lp;
  lp.num_groups = block_count();
  lp.group_size = kGroupSize;
  lp.chunk = 4;

  engine_.launch(lp, [&](clsim::WorkGroup& wg) {
    auto buf = wg.local_array<T>(static_cast<std::size_t>(kBlockNnz));
    const auto b = wg.group_id();
    const index_t row_begin = blocks[b];
    const index_t row_end = blocks[b + 1];
    const offset_t nnz_begin = row_ptr[static_cast<std::size_t>(row_begin)];
    const offset_t nnz_end = row_ptr[static_cast<std::size_t>(row_end)];
    const offset_t block_nnz = nnz_end - nnz_begin;

    if (row_end - row_begin > 1 || block_nnz <= kBlockNnz) {
      // CSR-Stream: stage every product of the block with one coalesced
      // sweep, then reduce one row per lane from local memory. The reduce
      // phase runs in lockstep 64-lane wavefronts, exactly like
      // Kernel-Serial's emulation: a wavefront works until its longest row
      // is done, so divergent row lengths inside a block waste lane-steps
      // (the cost CSR-Adaptive pays on irregular inputs).
      for (offset_t j = nnz_begin; j < nnz_end; ++j) {
        buf[static_cast<std::size_t>(j - nnz_begin)] =
            vals[static_cast<std::size_t>(j)] *
            x[static_cast<std::size_t>(col_idx[static_cast<std::size_t>(j)])];
      }
      constexpr int kWavefront = 64;
      offset_t pos[kWavefront];
      offset_t end[kWavefront];
      T acc[kWavefront];
      for (index_t wave = row_begin; wave < row_end; wave += kWavefront) {
        const int lanes =
            static_cast<int>(std::min<index_t>(kWavefront, row_end - wave));
        for (int t = 0; t < lanes; ++t) {
          const auto r = static_cast<std::size_t>(wave + t);
          pos[t] = row_ptr[r] - nnz_begin;
          end[t] = row_ptr[r + 1] - nnz_begin;
          acc[t] = T{};
        }
        bool active = true;
        while (active) {
          active = false;
          for (int t = 0; t < lanes; ++t) {
            if (pos[t] < end[t]) {
              acc[t] += buf[static_cast<std::size_t>(pos[t])];
              ++pos[t];
              active = true;
            }
          }
        }
        for (int t = 0; t < lanes; ++t) {
          y[static_cast<std::size_t>(wave + t)] = acc[t];
        }
      }
    } else {
      // CSR-Vector: one long row, whole group, chunked through the buffer
      // with a full-width tree reduction per chunk.
      T sum{};
      for (offset_t base = nnz_begin; base < nnz_end; base += kBlockNnz) {
        const auto len = static_cast<std::size_t>(
            std::min<offset_t>(kBlockNnz, nnz_end - base));
        for (std::size_t k = 0; k < len; ++k) {
          const auto j = static_cast<std::size_t>(base) + k;
          buf[k] = vals[j] * x[static_cast<std::size_t>(col_idx[j])];
        }
        for (std::size_t k = len; k < static_cast<std::size_t>(kBlockNnz); ++k)
          buf[k] = T{};
        for (std::size_t stride = kBlockNnz / 2; stride >= 1; stride /= 2) {
          for (std::size_t k = 0; k < stride; ++k) buf[k] += buf[k + stride];
        }
        sum += buf[0];
      }
      y[static_cast<std::size_t>(row_begin)] = sum;
    }
  });
}

template class CsrAdaptive<float>;
template class CsrAdaptive<double>;

}  // namespace spmv::baseline

#include "baseline/merge_spmv.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <vector>

#include <omp.h>

namespace spmv::baseline {

MergeCoord merge_path_search(std::int64_t diagonal,
                             std::span<const offset_t> row_end,
                             std::int64_t nnz) {
  const auto m = static_cast<std::int64_t>(row_end.size());
  std::int64_t lo = std::max<std::int64_t>(diagonal - nnz, 0);
  std::int64_t hi = std::min<std::int64_t>(diagonal, m);
  while (lo < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    if (row_end[static_cast<std::size_t>(mid)] <= diagonal - mid - 1) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return {lo, diagonal - lo};
}

template <typename T>
void spmv_merge(const CsrMatrix<T>& a, std::span<const T> x, std::span<T> y,
                int threads) {
  if (x.size() != static_cast<std::size_t>(a.cols()))
    throw std::invalid_argument("spmv_merge: x size != cols");
  if (y.size() != static_cast<std::size_t>(a.rows()))
    throw std::invalid_argument("spmv_merge: y size != rows");

  const auto m = static_cast<std::int64_t>(a.rows());
  const auto nnz = static_cast<std::int64_t>(a.nnz());
  if (m == 0) return;

  const auto row_ptr = a.row_ptr();
  const auto col_idx = a.col_idx();
  const auto vals = a.vals();
  const std::span<const offset_t> row_end = row_ptr.subspan(1);

  if (threads <= 0)
    threads = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
  const std::int64_t total = m + nnz;
  threads = static_cast<int>(
      std::min<std::int64_t>(threads, std::max<std::int64_t>(1, total)));

  // Per-thread carry-out for rows split across thread boundaries.
  std::vector<std::int64_t> carry_row(static_cast<std::size_t>(threads));
  std::vector<T> carry_val(static_cast<std::size_t>(threads));

#pragma omp parallel num_threads(threads)
  {
    const int tid = omp_get_thread_num();
    const std::int64_t d0 = total * tid / threads;
    const std::int64_t d1 = total * (tid + 1) / threads;
    MergeCoord begin = merge_path_search(d0, row_end, nnz);
    const MergeCoord end = merge_path_search(d1, row_end, nnz);

    T running{};
    std::int64_t r = begin.row;
    std::int64_t j = begin.nnz;
    for (; r < end.row; ++r) {
      for (; j < row_end[static_cast<std::size_t>(r)]; ++j) {
        running += vals[static_cast<std::size_t>(j)] *
                   x[static_cast<std::size_t>(
                       col_idx[static_cast<std::size_t>(j)])];
      }
      y[static_cast<std::size_t>(r)] = running;
      running = T{};
    }
    for (; j < end.nnz; ++j) {
      running += vals[static_cast<std::size_t>(j)] *
                 x[static_cast<std::size_t>(
                     col_idx[static_cast<std::size_t>(j)])];
    }
    carry_row[static_cast<std::size_t>(tid)] = r;
    carry_val[static_cast<std::size_t>(tid)] = running;
  }

  // Fix-up: a row split across threads gets its "=" write from the thread
  // that consumes its row-boundary item; every earlier thread that touched
  // the row adds its partial sum here.
  for (int t = 0; t < threads; ++t) {
    const auto r = carry_row[static_cast<std::size_t>(t)];
    if (r < m) {
      // The owning "=" write happens in the thread that finishes row r; if
      // every later thread also only saw part of it, row r is finished by
      // the loop below adding all carries; initialise on first touch.
      y[static_cast<std::size_t>(r)] += carry_val[static_cast<std::size_t>(t)];
    }
  }
}

template void spmv_merge(const CsrMatrix<float>&, std::span<const float>,
                         std::span<float>, int);
template void spmv_merge(const CsrMatrix<double>&, std::span<const double>,
                         std::span<double>, int);

}  // namespace spmv::baseline

// Merge-based SpMV (Merrill & Garland, SC'16) — the paper lists this as a
// future-work kernel candidate (§V); we implement it as the extension and
// study it in bench/ablation_merge_kernel.
//
// The merge-path formulation assigns every thread an equal share of the
// combined (row boundaries + non-zeros) work sequence located by a
// two-dimensional diagonal binary search, giving perfect load balance
// regardless of the row-length distribution.
#pragma once

#include <span>

#include "sparse/csr.hpp"

namespace spmv::baseline {

/// y = A*x via merge-path partitioning across OpenMP threads.
/// `threads` <= 0 means "all hardware threads".
template <typename T>
void spmv_merge(const CsrMatrix<T>& a, std::span<const T> x, std::span<T> y,
                int threads = 0);

/// Coordinate on the merge path (exposed for tests).
struct MergeCoord {
  std::int64_t row;  ///< index into the row-end list
  std::int64_t nnz;  ///< index into the non-zero list
};

/// Diagonal search: the merge-path coordinate where diagonal `d` crosses
/// the path defined by row_end (ascending) and the natural numbers.
MergeCoord merge_path_search(std::int64_t diagonal,
                             std::span<const offset_t> row_end,
                             std::int64_t nnz);

extern template void spmv_merge(const CsrMatrix<float>&,
                                std::span<const float>, std::span<float>, int);
extern template void spmv_merge(const CsrMatrix<double>&,
                                std::span<const double>, std::span<double>,
                                int);

}  // namespace spmv::baseline

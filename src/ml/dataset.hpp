// Labeled dataset for the decision-tree learner: continuous attributes,
// categorical class labels (the shape C5.0 consumes in the paper).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace spmv::ml {

class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<std::string> attr_names,
                   std::vector<std::string> class_names);

  [[nodiscard]] int attr_count() const {
    return static_cast<int>(attr_names_.size());
  }
  [[nodiscard]] int class_count() const {
    return static_cast<int>(class_names_.size());
  }
  [[nodiscard]] std::size_t size() const { return labels_.size(); }
  [[nodiscard]] bool empty() const { return labels_.empty(); }

  [[nodiscard]] const std::vector<std::string>& attr_names() const {
    return attr_names_;
  }
  [[nodiscard]] const std::vector<std::string>& class_names() const {
    return class_names_;
  }

  /// Add one instance. `features.size()` must equal attr_count() and
  /// `label` must be in [0, class_count()); throws otherwise.
  void add(std::vector<double> features, int label);

  [[nodiscard]] const std::vector<double>& features(std::size_t i) const {
    return rows_[i];
  }
  [[nodiscard]] int label(std::size_t i) const { return labels_[i]; }

  /// Deterministic shuffled split: ~frac of instances into the first
  /// dataset, the rest into the second (the paper's 75/25 split).
  [[nodiscard]] std::pair<Dataset, Dataset> split(double frac,
                                                  std::uint64_t seed) const;

  /// Count of instances per class label.
  [[nodiscard]] std::vector<std::size_t> class_histogram() const;

 private:
  std::vector<std::string> attr_names_;
  std::vector<std::string> class_names_;
  std::vector<std::vector<double>> rows_;
  std::vector<int> labels_;
};

}  // namespace spmv::ml

// C4.5/C5.0-style decision-tree learner (the paper's "C5.0 data mining
// tool", DESIGN.md §2): gain-ratio splits on continuous attributes with the
// MDL threshold penalty, minimum-count stopping, and confidence-based
// pessimistic-error pruning. Trees serialize to a small text format and can
// be flattened into if-then rule sets (ruleset.hpp), which is the artifact
// the paper's framework consults at run time.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "ml/dataset.hpp"

namespace spmv::ml {

/// Induction / pruning hyper-parameters (defaults follow C4.5's).
struct TreeParams {
  int max_depth = 32;
  /// A split must leave at least two branches with >= min_split instances.
  int min_split = 2;
  /// C4.5 confidence factor for pessimistic-error pruning; larger prunes
  /// less, 1.0 disables pruning.
  double pruning_cf = 0.25;
  /// Apply C4.5's MDL correction (log2(#thresholds)/N subtracted from the
  /// gain) when evaluating continuous splits. Disable to reproduce plain
  /// ID3-style splitting (used by tests to force overfit trees).
  bool mdl_penalty = true;
};

class DecisionTree {
 public:
  struct Node {
    int attr = -1;            ///< split attribute (-1 = leaf)
    double threshold = 0.0;   ///< go left when feature <= threshold
    int left = -1;            ///< child node index
    int right = -1;
    int label = -1;           ///< majority class at this node
    double count = 0.0;       ///< (weighted) instances reaching the node
    double errors = 0.0;      ///< (weighted) non-majority instances
  };

  DecisionTree() = default;

  /// Induce + prune from `data`. `weights` (optional) gives per-instance
  /// weights for boosting; empty means all 1.
  void train(const Dataset& data, const TreeParams& params = {},
             std::span<const double> weights = {});

  /// Predict the class label of one feature vector.
  [[nodiscard]] int predict(std::span<const double> features) const;

  /// Fraction of misclassified instances on `data` (0 when empty).
  [[nodiscard]] double error_rate(const Dataset& data) const;

  [[nodiscard]] bool trained() const { return !nodes_.empty(); }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t leaf_count() const;
  [[nodiscard]] int depth() const;
  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<std::string>& attr_names() const {
    return attr_names_;
  }
  [[nodiscard]] const std::vector<std::string>& class_names() const {
    return class_names_;
  }

  /// Text serialization (stable, line-oriented; round-trips exactly).
  void save(std::ostream& out) const;
  static DecisionTree load(std::istream& in);

  /// Human-readable indented rendering (for reports / debugging).
  [[nodiscard]] std::string to_string() const;

 private:
  friend class RuleSet;
  int build(const Dataset& data, std::vector<std::size_t>& idx,
            std::span<const double> weights, const TreeParams& params,
            int depth);
  double prune(int node, const TreeParams& params);

  std::vector<Node> nodes_;
  std::vector<std::string> attr_names_;
  std::vector<std::string> class_names_;
};

/// Shannon entropy of a (weighted) class distribution, in bits.
double entropy(std::span<const double> class_weights);

/// C4.5's pessimistic "added errors" upper bound: given N (weighted)
/// instances with E errors at a leaf, the upper confidence limit (at
/// confidence factor cf) of the true error count.
double pessimistic_errors(double n, double e, double cf);

}  // namespace spmv::ml

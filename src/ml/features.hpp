// Table-I feature extraction: the attribute vectors the paper's two-stage
// model consumes.
//
// Stage 1: {M, N, NNZ, Var_NNZ, Avg_NNZ, Min_NNZ, Max_NNZ} -> binning U.
// Stage 2: the same + {U, binId}                           -> kernel id.
#pragma once

#include <string>
#include <vector>

#include "sparse/matrix_stats.hpp"

namespace spmv::ml {

/// Attribute names for the stage-1 vector, in order.
const std::vector<std::string>& stage1_attr_names();

/// Attribute names for the stage-2 vector, in order (stage-1 + U + binId).
const std::vector<std::string>& stage2_attr_names();

/// Build the stage-1 feature vector from row statistics.
std::vector<double> stage1_features(const RowStats& stats);

/// Build the stage-2 feature vector: stage-1 features + the binning
/// granularity U and the bin id under that granularity.
std::vector<double> stage2_features(const RowStats& stats, index_t unit,
                                    int bin_id);

}  // namespace spmv::ml

#include "ml/dataset.hpp"

#include <numeric>
#include <stdexcept>

#include "util/rng.hpp"

namespace spmv::ml {

Dataset::Dataset(std::vector<std::string> attr_names,
                 std::vector<std::string> class_names)
    : attr_names_(std::move(attr_names)),
      class_names_(std::move(class_names)) {
  if (attr_names_.empty())
    throw std::invalid_argument("Dataset: no attributes");
  if (class_names_.empty()) throw std::invalid_argument("Dataset: no classes");
}

void Dataset::add(std::vector<double> features, int label) {
  if (features.size() != attr_names_.size())
    throw std::invalid_argument("Dataset::add: feature count mismatch");
  if (label < 0 || label >= class_count())
    throw std::invalid_argument("Dataset::add: label out of range");
  rows_.push_back(std::move(features));
  labels_.push_back(label);
}

std::pair<Dataset, Dataset> Dataset::split(double frac,
                                           std::uint64_t seed) const {
  if (frac < 0.0 || frac > 1.0)
    throw std::invalid_argument("Dataset::split: frac out of [0,1]");
  std::vector<std::size_t> order(size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  util::Xoshiro256 rng(seed);
  // Fisher-Yates with our deterministic generator.
  for (std::size_t i = order.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(rng.bounded(i));
    std::swap(order[i - 1], order[j]);
  }
  const auto cut = static_cast<std::size_t>(frac * static_cast<double>(size()));
  Dataset train(attr_names_, class_names_);
  Dataset test(attr_names_, class_names_);
  for (std::size_t k = 0; k < order.size(); ++k) {
    auto& dst = k < cut ? train : test;
    dst.add(rows_[order[k]], labels_[order[k]]);
  }
  return {std::move(train), std::move(test)};
}

std::vector<std::size_t> Dataset::class_histogram() const {
  std::vector<std::size_t> hist(static_cast<std::size_t>(class_count()), 0);
  for (int label : labels_) ++hist[static_cast<std::size_t>(label)];
  return hist;
}

}  // namespace spmv::ml

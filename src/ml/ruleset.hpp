// If-then rule sets extracted from a decision tree.
//
// "After the training process ... the C5.0 can offer a rule-set, which is a
// set of if-then statements" (paper §III-C). Rules are root-to-leaf paths
// with redundant conditions merged, optionally simplified by dropping
// conditions that do not hurt the rule's pessimistic accuracy, and ordered
// by confidence; classification takes the first matching rule.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/decision_tree.hpp"

namespace spmv::ml {

/// One condition: feature[attr] <= threshold (Leq) or > threshold (Gt).
struct Condition {
  enum class Op { Leq, Gt };
  int attr = 0;
  Op op = Op::Leq;
  double threshold = 0.0;

  [[nodiscard]] bool matches(std::span<const double> features) const {
    const double v = features[static_cast<std::size_t>(attr)];
    return op == Op::Leq ? v <= threshold : v > threshold;
  }
};

struct Rule {
  std::vector<Condition> conditions;  ///< conjunction
  int label = 0;
  double confidence = 0.0;  ///< Laplace-corrected leaf accuracy
  double coverage = 0.0;    ///< (weighted) instances at the leaf

  [[nodiscard]] bool matches(std::span<const double> features) const;
};

class RuleSet {
 public:
  RuleSet() = default;

  /// Flatten `tree` into ordered rules. When `simplify_on` is non-null,
  /// greedily drop conditions that do not reduce the rule's accuracy on
  /// that dataset (a lightweight form of C4.5rules simplification).
  static RuleSet from_tree(const DecisionTree& tree,
                           const Dataset* simplify_on = nullptr);

  /// First-match classification; falls back to the default (majority)
  /// class when no rule fires.
  [[nodiscard]] int classify(std::span<const double> features) const;

  [[nodiscard]] double error_rate(const Dataset& data) const;

  [[nodiscard]] const std::vector<Rule>& rules() const { return rules_; }
  [[nodiscard]] int default_label() const { return default_label_; }
  [[nodiscard]] const std::vector<std::string>& class_names() const {
    return class_names_;
  }

  /// Render as readable "if ... then ..." lines.
  [[nodiscard]] std::string to_string() const;

  void save(std::ostream& out) const;
  static RuleSet load(std::istream& in);

 private:
  std::vector<Rule> rules_;
  int default_label_ = 0;
  std::vector<std::string> attr_names_;
  std::vector<std::string> class_names_;
};

}  // namespace spmv::ml

#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <numeric>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace spmv::ml {

double entropy(std::span<const double> class_weights) {
  double total = 0.0;
  for (double w : class_weights) total += w;
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (double w : class_weights) {
    if (w > 0.0) {
      const double p = w / total;
      h -= p * std::log2(p);
    }
  }
  return h;
}

double pessimistic_errors(double n, double e, double cf) {
  // C4.5's AddErrs (Quinlan): upper confidence limit of a binomial at
  // confidence factor cf, via the normal-deviate table C4.5 ships.
  if (cf >= 1.0 || n <= 0.0) return 0.0;
  static constexpr double kVal[] = {0.0,  0.001, 0.005, 0.01, 0.05,
                                    0.10, 0.20,  0.40,  1.00};
  static constexpr double kDev[] = {4.0,  3.09, 2.58, 2.33, 1.65,
                                    1.28, 0.84, 0.25, 0.00};
  int i = 0;
  while (cf > kVal[i]) ++i;
  const double coeff_raw =
      kDev[i - 1] + (kDev[i] - kDev[i - 1]) * (cf - kVal[i - 1]) /
                        (kVal[i] - kVal[i - 1]);
  const double coeff = coeff_raw * coeff_raw;

  if (e < 1e-6) {
    return n * (1.0 - std::exp(std::log(cf) / n));
  }
  if (e < 0.9999) {
    const double v0 = n * (1.0 - std::exp(std::log(cf) / n));
    return v0 + e * (pessimistic_errors(n, 1.0, cf) - v0);
  }
  if (e + 0.5 >= n) {
    return 0.67 * (n - e);
  }
  const double pr =
      (e + 0.5 + coeff / 2.0 +
       std::sqrt(coeff * (coeff / 4.0 + (e + 0.5) * (1.0 - (e + 0.5) / n)))) /
      (n + coeff);
  return n * pr - e;
}

namespace {

struct SplitChoice {
  int attr = -1;
  double threshold = 0.0;
  double gain_ratio = -1.0;
};

}  // namespace

void DecisionTree::train(const Dataset& data, const TreeParams& params,
                         std::span<const double> weights) {
  if (data.empty()) throw std::invalid_argument("DecisionTree: empty dataset");
  if (!weights.empty() && weights.size() != data.size())
    throw std::invalid_argument("DecisionTree: weight count mismatch");
  nodes_.clear();
  attr_names_ = data.attr_names();
  class_names_ = data.class_names();

  // Normalize weights to mean 1 so min_split keeps its instance-count
  // meaning regardless of the caller's weight scale (boosting passes
  // weights summing to 1).
  std::vector<double> scaled;
  std::span<const double> effective = weights;
  if (!weights.empty()) {
    double sum = 0.0;
    for (double w : weights) sum += w;
    if (sum <= 0.0)
      throw std::invalid_argument("DecisionTree: non-positive weight sum");
    scaled.assign(weights.begin(), weights.end());
    const double scale = static_cast<double>(weights.size()) / sum;
    for (double& w : scaled) w *= scale;
    effective = scaled;
  }

  std::vector<std::size_t> idx(data.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  build(data, idx, effective, params, 0);
  if (params.pruning_cf < 1.0) prune(0, params);
}

int DecisionTree::build(const Dataset& data, std::vector<std::size_t>& idx,
                        std::span<const double> weights,
                        const TreeParams& params, int depth) {
  auto weight_of = [&](std::size_t i) {
    return weights.empty() ? 1.0 : weights[i];
  };

  // Class distribution at this node.
  std::vector<double> dist(static_cast<std::size_t>(data.class_count()), 0.0);
  for (std::size_t i : idx) dist[static_cast<std::size_t>(data.label(i))] += weight_of(i);
  const double total = std::accumulate(dist.begin(), dist.end(), 0.0);
  const int majority = static_cast<int>(
      std::max_element(dist.begin(), dist.end()) - dist.begin());

  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[static_cast<std::size_t>(node_id)].label = majority;
  nodes_[static_cast<std::size_t>(node_id)].count = total;
  nodes_[static_cast<std::size_t>(node_id)].errors =
      total - dist[static_cast<std::size_t>(majority)];

  const bool pure =
      dist[static_cast<std::size_t>(majority)] >= total - 1e-12;
  if (pure || depth >= params.max_depth ||
      total < 2.0 * params.min_split) {
    return node_id;
  }

  // Find the best gain-ratio split over all continuous attributes.
  const double base_entropy = entropy(dist);
  SplitChoice best;
  std::vector<std::size_t> sorted(idx);
  std::vector<double> left_dist(dist.size());

  for (int attr = 0; attr < data.attr_count(); ++attr) {
    std::sort(sorted.begin(), sorted.end(), [&](std::size_t a, std::size_t b) {
      return data.features(a)[static_cast<std::size_t>(attr)] <
             data.features(b)[static_cast<std::size_t>(attr)];
    });
    std::fill(left_dist.begin(), left_dist.end(), 0.0);
    double left_total = 0.0;

    // Count distinct candidate thresholds for the MDL penalty.
    int candidates = 0;
    for (std::size_t k = 1; k < sorted.size(); ++k) {
      if (data.features(sorted[k])[static_cast<std::size_t>(attr)] >
          data.features(sorted[k - 1])[static_cast<std::size_t>(attr)])
        ++candidates;
    }
    if (candidates == 0) continue;
    const double penalty =
        params.mdl_penalty
            ? std::log2(static_cast<double>(candidates)) / total
            : 0.0;

    for (std::size_t k = 0; k + 1 < sorted.size(); ++k) {
      const std::size_t i = sorted[k];
      left_dist[static_cast<std::size_t>(data.label(i))] += weight_of(i);
      left_total += weight_of(i);
      const double v0 = data.features(i)[static_cast<std::size_t>(attr)];
      const double v1 =
          data.features(sorted[k + 1])[static_cast<std::size_t>(attr)];
      if (v1 <= v0) continue;  // not a value boundary

      const double right_total = total - left_total;
      if (left_total < params.min_split || right_total < params.min_split)
        continue;

      // Info gain of this binary split.
      std::vector<double> right_dist(dist.size());
      for (std::size_t c = 0; c < dist.size(); ++c)
        right_dist[c] = dist[c] - left_dist[c];
      const double split_entropy =
          (left_total / total) * entropy(left_dist) +
          (right_total / total) * entropy(right_dist);
      const double gain = base_entropy - split_entropy - penalty;
      if (gain <= 1e-9) continue;

      const double pl = left_total / total;
      const double split_info = -(pl * std::log2(pl) +
                                  (1.0 - pl) * std::log2(1.0 - pl));
      const double ratio = gain / std::max(split_info, 1e-9);
      if (ratio > best.gain_ratio) {
        // C4.5 splits at the midpoint of the boundary values.
        best = {attr, 0.5 * (v0 + v1), ratio};
      }
    }
  }

  if (best.attr < 0) return node_id;  // no useful split: stay a leaf

  std::vector<std::size_t> left_idx, right_idx;
  for (std::size_t i : idx) {
    if (data.features(i)[static_cast<std::size_t>(best.attr)] <=
        best.threshold) {
      left_idx.push_back(i);
    } else {
      right_idx.push_back(i);
    }
  }
  if (left_idx.empty() || right_idx.empty()) return node_id;

  nodes_[static_cast<std::size_t>(node_id)].attr = best.attr;
  nodes_[static_cast<std::size_t>(node_id)].threshold = best.threshold;
  const int left = build(data, left_idx, weights, params, depth + 1);
  nodes_[static_cast<std::size_t>(node_id)].left = left;
  const int right = build(data, right_idx, weights, params, depth + 1);
  nodes_[static_cast<std::size_t>(node_id)].right = right;
  return node_id;
}

double DecisionTree::prune(int node_id, const TreeParams& params) {
  Node& node = nodes_[static_cast<std::size_t>(node_id)];
  const double leaf_estimate =
      node.errors + pessimistic_errors(node.count, node.errors,
                                       params.pruning_cf);
  if (node.attr < 0) return leaf_estimate;

  const double subtree_estimate =
      prune(node.left, params) + prune(node.right, params);
  if (leaf_estimate <= subtree_estimate + 0.1) {
    // Collapse: the pruned-leaf pessimistic error is no worse.
    node.attr = -1;
    node.left = node.right = -1;
    return leaf_estimate;
  }
  return subtree_estimate;
}

int DecisionTree::predict(std::span<const double> features) const {
  if (nodes_.empty()) throw std::logic_error("DecisionTree: not trained");
  int cur = 0;
  for (;;) {
    const Node& node = nodes_[static_cast<std::size_t>(cur)];
    if (node.attr < 0) return node.label;
    cur = features[static_cast<std::size_t>(node.attr)] <= node.threshold
              ? node.left
              : node.right;
  }
}

double DecisionTree::error_rate(const Dataset& data) const {
  if (data.empty()) return 0.0;
  std::size_t wrong = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (predict(data.features(i)) != data.label(i)) ++wrong;
  }
  return static_cast<double>(wrong) / static_cast<double>(data.size());
}

std::size_t DecisionTree::leaf_count() const {
  // Collapsed subtrees leave orphan nodes behind, so count only leaves
  // reachable from the root.
  if (nodes_.empty()) return 0;
  std::size_t leaves = 0;
  std::vector<int> stack{0};
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    const Node& n = nodes_[static_cast<std::size_t>(id)];
    if (n.attr < 0) {
      ++leaves;
    } else {
      stack.push_back(n.left);
      stack.push_back(n.right);
    }
  }
  return leaves;
}

int DecisionTree::depth() const {
  if (nodes_.empty()) return 0;
  struct Item {
    int id;
    int depth;
  };
  std::vector<Item> stack{{0, 1}};
  int max_depth = 0;
  while (!stack.empty()) {
    const Item item = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, item.depth);
    const Node& n = nodes_[static_cast<std::size_t>(item.id)];
    if (n.attr >= 0) {
      stack.push_back({n.left, item.depth + 1});
      stack.push_back({n.right, item.depth + 1});
    }
  }
  return max_depth;
}

void DecisionTree::save(std::ostream& out) const {
  out << "DecisionTree v1\n";
  out << "attrs " << attr_names_.size();
  for (const auto& name : attr_names_) out << ' ' << name;
  out << "\nclasses " << class_names_.size();
  for (const auto& name : class_names_) out << ' ' << name;
  out << "\nnodes " << nodes_.size() << '\n';
  out.precision(17);
  for (const Node& n : nodes_) {
    out << n.attr << ' ' << n.threshold << ' ' << n.left << ' ' << n.right
        << ' ' << n.label << ' ' << n.count << ' ' << n.errors << '\n';
  }
}

DecisionTree DecisionTree::load(std::istream& in) {
  auto fail = [](const char* msg) -> void {
    throw std::runtime_error(std::string("DecisionTree::load: ") + msg);
  };
  std::string line;
  if (!std::getline(in, line) || line != "DecisionTree v1")
    fail("bad header");

  DecisionTree tree;
  std::string token;
  std::size_t count = 0;
  in >> token >> count;
  if (token != "attrs") fail("expected attrs");
  tree.attr_names_.resize(count);
  for (auto& name : tree.attr_names_) in >> name;
  in >> token >> count;
  if (token != "classes") fail("expected classes");
  tree.class_names_.resize(count);
  for (auto& name : tree.class_names_) in >> name;
  in >> token >> count;
  if (token != "nodes") fail("expected nodes");
  tree.nodes_.resize(count);
  for (Node& n : tree.nodes_) {
    in >> n.attr >> n.threshold >> n.left >> n.right >> n.label >> n.count >>
        n.errors;
  }
  if (!in) fail("truncated stream");
  return tree;
}

std::string DecisionTree::to_string() const {
  std::ostringstream out;
  if (nodes_.empty()) return "(untrained)\n";
  struct Item {
    int id;
    int indent;
    std::string prefix;
  };
  std::vector<Item> stack{{0, 0, ""}};
  while (!stack.empty()) {
    const Item item = stack.back();
    stack.pop_back();
    const Node& n = nodes_[static_cast<std::size_t>(item.id)];
    for (int i = 0; i < item.indent; ++i) out << "  ";
    out << item.prefix;
    if (n.attr < 0) {
      out << "-> " << class_names_[static_cast<std::size_t>(n.label)] << " ("
          << n.count << '/' << n.errors << ")\n";
    } else {
      out << attr_names_[static_cast<std::size_t>(n.attr)] << " <= "
          << n.threshold << "?\n";
      stack.push_back({n.right, item.indent + 1, "no:  "});
      stack.push_back({n.left, item.indent + 1, "yes: "});
    }
  }
  return out.str();
}

}  // namespace spmv::ml

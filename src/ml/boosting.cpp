#include "ml/boosting.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace spmv::ml {

void BoostedTrees::train(const Dataset& data, int trials,
                         const TreeParams& params) {
  if (data.empty()) throw std::invalid_argument("BoostedTrees: empty dataset");
  if (trials < 1) throw std::invalid_argument("BoostedTrees: trials < 1");
  trees_.clear();
  alphas_.clear();
  class_count_ = data.class_count();

  const std::size_t n = data.size();
  std::vector<double> weights(n, 1.0 / static_cast<double>(n));
  const double k = static_cast<double>(class_count_);

  for (int t = 0; t < trials; ++t) {
    DecisionTree tree;
    tree.train(data, params, weights);

    double err = 0.0;
    std::vector<bool> wrong(n);
    for (std::size_t i = 0; i < n; ++i) {
      wrong[i] = tree.predict(data.features(i)) != data.label(i);
      if (wrong[i]) err += weights[i];
    }

    if (err <= 1e-12) {
      // Perfect trial: keep it with a large vote and stop.
      trees_.push_back(std::move(tree));
      alphas_.push_back(10.0);
      break;
    }
    if (err >= 1.0 - 1.0 / k) break;  // no better than chance: stop

    // SAMME: alpha includes log(K-1) so multi-class stays well-posed.
    const double alpha = std::log((1.0 - err) / err) + std::log(k - 1.0);
    trees_.push_back(std::move(tree));
    alphas_.push_back(alpha);

    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (wrong[i]) weights[i] *= std::exp(alpha);
      total += weights[i];
    }
    for (double& w : weights) w /= total;
  }

  if (trees_.empty()) {
    // Even trial 1 was no better than chance; keep a single unboosted tree
    // so prediction still works.
    DecisionTree tree;
    tree.train(data, params);
    trees_.push_back(std::move(tree));
    alphas_.push_back(1.0);
  }
}

int BoostedTrees::predict(std::span<const double> features) const {
  if (trees_.empty()) throw std::logic_error("BoostedTrees: not trained");
  std::vector<double> votes(static_cast<std::size_t>(class_count_), 0.0);
  for (std::size_t t = 0; t < trees_.size(); ++t) {
    votes[static_cast<std::size_t>(trees_[t].predict(features))] +=
        alphas_[t];
  }
  return static_cast<int>(std::max_element(votes.begin(), votes.end()) -
                          votes.begin());
}

double BoostedTrees::error_rate(const Dataset& data) const {
  if (data.empty()) return 0.0;
  std::size_t wrong = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (predict(data.features(i)) != data.label(i)) ++wrong;
  }
  return static_cast<double>(wrong) / static_cast<double>(data.size());
}

}  // namespace spmv::ml

#include "ml/ruleset.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace spmv::ml {

bool Rule::matches(std::span<const double> features) const {
  return std::all_of(conditions.begin(), conditions.end(),
                     [&](const Condition& c) { return c.matches(features); });
}

namespace {

/// Merge redundant conditions on the same attribute: keep the tightest
/// upper bound (Leq) and the tightest lower bound (Gt).
std::vector<Condition> merge_conditions(const std::vector<Condition>& conds) {
  std::vector<Condition> merged;
  for (const Condition& c : conds) {
    bool absorbed = false;
    for (Condition& m : merged) {
      if (m.attr == c.attr && m.op == c.op) {
        if (c.op == Condition::Op::Leq) {
          m.threshold = std::min(m.threshold, c.threshold);
        } else {
          m.threshold = std::max(m.threshold, c.threshold);
        }
        absorbed = true;
        break;
      }
    }
    if (!absorbed) merged.push_back(c);
  }
  return merged;
}

/// Rule accuracy on `data`: Laplace-corrected fraction of covered instances
/// with the rule's label. Returns {accuracy, covered}.
std::pair<double, double> rule_accuracy(const Rule& rule, const Dataset& data) {
  double covered = 0.0;
  double correct = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (rule.matches(data.features(i))) {
      covered += 1.0;
      if (data.label(i) == rule.label) correct += 1.0;
    }
  }
  return {(correct + 1.0) / (covered + 2.0), covered};
}

}  // namespace

RuleSet RuleSet::from_tree(const DecisionTree& tree,
                           const Dataset* simplify_on) {
  if (!tree.trained()) throw std::logic_error("RuleSet: untrained tree");
  RuleSet rs;
  rs.attr_names_ = tree.attr_names();
  rs.class_names_ = tree.class_names();

  // DFS collecting root-to-leaf paths.
  struct Item {
    int id;
    std::vector<Condition> path;
  };
  const auto& nodes = tree.nodes();
  std::vector<Item> stack{{0, {}}};
  double best_coverage = -1.0;
  while (!stack.empty()) {
    Item item = std::move(stack.back());
    stack.pop_back();
    const auto& node = nodes[static_cast<std::size_t>(item.id)];
    if (node.attr < 0) {
      Rule rule;
      rule.conditions = merge_conditions(item.path);
      rule.label = node.label;
      rule.coverage = node.count;
      // Laplace-corrected confidence from the training counts at the leaf.
      rule.confidence =
          (node.count - node.errors + 1.0) / (node.count + 2.0);
      rs.rules_.push_back(std::move(rule));
      if (node.count > best_coverage) {
        best_coverage = node.count;
        rs.default_label_ = node.label;
      }
      continue;
    }
    Item left{node.left, item.path};
    left.path.push_back({node.attr, Condition::Op::Leq, node.threshold});
    Item right{node.right, std::move(item.path)};
    right.path.push_back({node.attr, Condition::Op::Gt, node.threshold});
    stack.push_back(std::move(left));
    stack.push_back(std::move(right));
  }

  if (simplify_on != nullptr && !simplify_on->empty()) {
    for (Rule& rule : rs.rules_) {
      // Greedily drop conditions whose removal does not lower accuracy.
      auto [acc, cov] = rule_accuracy(rule, *simplify_on);
      for (std::size_t c = 0; c < rule.conditions.size();) {
        Rule trial = rule;
        trial.conditions.erase(trial.conditions.begin() +
                               static_cast<std::ptrdiff_t>(c));
        const auto [trial_acc, trial_cov] = rule_accuracy(trial, *simplify_on);
        if (trial_acc >= acc) {
          rule.conditions = std::move(trial.conditions);
          acc = trial_acc;
          cov = trial_cov;
        } else {
          ++c;
        }
      }
      rule.confidence = acc;
      rule.coverage = cov;
    }
  }

  // Order by confidence (desc), then coverage (desc) — first match wins.
  std::stable_sort(rs.rules_.begin(), rs.rules_.end(),
                   [](const Rule& a, const Rule& b) {
                     if (a.confidence != b.confidence)
                       return a.confidence > b.confidence;
                     return a.coverage > b.coverage;
                   });
  return rs;
}

int RuleSet::classify(std::span<const double> features) const {
  for (const Rule& rule : rules_) {
    if (rule.matches(features)) return rule.label;
  }
  return default_label_;
}

double RuleSet::error_rate(const Dataset& data) const {
  if (data.empty()) return 0.0;
  std::size_t wrong = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (classify(data.features(i)) != data.label(i)) ++wrong;
  }
  return static_cast<double>(wrong) / static_cast<double>(data.size());
}

std::string RuleSet::to_string() const {
  std::ostringstream out;
  for (const Rule& rule : rules_) {
    out << "if ";
    if (rule.conditions.empty()) out << "(always)";
    for (std::size_t c = 0; c < rule.conditions.size(); ++c) {
      const Condition& cond = rule.conditions[c];
      if (c > 0) out << " and ";
      out << attr_names_[static_cast<std::size_t>(cond.attr)]
          << (cond.op == Condition::Op::Leq ? " <= " : " > ")
          << cond.threshold;
    }
    out << " then " << class_names_[static_cast<std::size_t>(rule.label)]
        << "  [conf " << rule.confidence << ", cover " << rule.coverage
        << "]\n";
  }
  out << "default: " << class_names_[static_cast<std::size_t>(default_label_)]
      << '\n';
  return out.str();
}

void RuleSet::save(std::ostream& out) const {
  out << "RuleSet v1\n";
  out << "attrs " << attr_names_.size();
  for (const auto& name : attr_names_) out << ' ' << name;
  out << "\nclasses " << class_names_.size();
  for (const auto& name : class_names_) out << ' ' << name;
  out << "\ndefault " << default_label_ << "\nrules " << rules_.size() << '\n';
  out.precision(17);
  for (const Rule& rule : rules_) {
    out << rule.label << ' ' << rule.confidence << ' ' << rule.coverage << ' '
        << rule.conditions.size();
    for (const Condition& c : rule.conditions) {
      out << ' ' << c.attr << ' ' << (c.op == Condition::Op::Leq ? 0 : 1)
          << ' ' << c.threshold;
    }
    out << '\n';
  }
}

RuleSet RuleSet::load(std::istream& in) {
  auto fail = [](const char* msg) -> void {
    throw std::runtime_error(std::string("RuleSet::load: ") + msg);
  };
  std::string line;
  if (!std::getline(in, line) || line != "RuleSet v1") fail("bad header");
  RuleSet rs;
  std::string token;
  std::size_t count = 0;
  in >> token >> count;
  if (token != "attrs") fail("expected attrs");
  rs.attr_names_.resize(count);
  for (auto& name : rs.attr_names_) in >> name;
  in >> token >> count;
  if (token != "classes") fail("expected classes");
  rs.class_names_.resize(count);
  for (auto& name : rs.class_names_) in >> name;
  in >> token >> rs.default_label_;
  if (token != "default") fail("expected default");
  in >> token >> count;
  if (token != "rules") fail("expected rules");
  rs.rules_.resize(count);
  for (Rule& rule : rs.rules_) {
    std::size_t conds = 0;
    in >> rule.label >> rule.confidence >> rule.coverage >> conds;
    rule.conditions.resize(conds);
    for (Condition& c : rule.conditions) {
      int op = 0;
      in >> c.attr >> op >> c.threshold;
      c.op = op == 0 ? Condition::Op::Leq : Condition::Op::Gt;
    }
  }
  if (!in) fail("truncated stream");
  return rs;
}

}  // namespace spmv::ml

#include "ml/features.hpp"

namespace spmv::ml {

const std::vector<std::string>& stage1_attr_names() {
  static const std::vector<std::string> names = {
      "M", "N", "NNZ", "Var_NNZ", "Avg_NNZ", "Min_NNZ", "Max_NNZ"};
  return names;
}

const std::vector<std::string>& stage2_attr_names() {
  static const std::vector<std::string> names = {
      "M",       "N",       "NNZ", "Var_NNZ", "Avg_NNZ",
      "Min_NNZ", "Max_NNZ", "U",   "binId"};
  return names;
}

std::vector<double> stage1_features(const RowStats& stats) {
  return {static_cast<double>(stats.rows),    static_cast<double>(stats.cols),
          static_cast<double>(stats.nnz),     stats.var_nnz,
          stats.avg_nnz,                      static_cast<double>(stats.min_nnz),
          static_cast<double>(stats.max_nnz)};
}

std::vector<double> stage2_features(const RowStats& stats, index_t unit,
                                    int bin_id) {
  auto features = stage1_features(stats);
  features.push_back(static_cast<double>(unit));
  features.push_back(static_cast<double>(bin_id));
  return features;
}

}  // namespace spmv::ml

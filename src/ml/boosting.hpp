// Boosted decision trees — C5.0's "trials" option (AdaBoost-style
// reweighting with the SAMME multi-class weight update). Optional: the
// default framework uses a single tree, matching the paper; boosting is an
// accuracy extension evaluated in bench/train_accuracy.
#pragma once

#include <span>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/decision_tree.hpp"

namespace spmv::ml {

class BoostedTrees {
 public:
  /// Train `trials` boosted trees. Stops early if a trial's weighted error
  /// reaches 0 (dataset fit) or >= 1 - 1/K (no better than chance).
  void train(const Dataset& data, int trials, const TreeParams& params = {});

  /// Weighted-vote prediction.
  [[nodiscard]] int predict(std::span<const double> features) const;

  [[nodiscard]] double error_rate(const Dataset& data) const;

  [[nodiscard]] std::size_t trial_count() const { return trees_.size(); }
  [[nodiscard]] const std::vector<DecisionTree>& trees() const {
    return trees_;
  }
  [[nodiscard]] int class_count() const { return class_count_; }

 private:
  std::vector<DecisionTree> trees_;
  std::vector<double> alphas_;
  int class_count_ = 0;
};

}  // namespace spmv::ml

#include "fmt/plan_layouts.hpp"

#include <algorithm>
#include <stdexcept>

namespace spmv::fmt {

template <typename T>
typename PlanLayouts<T>::Slot& PlanLayouts<T>::slot_for(std::uint64_t key) {
  tick_ += 1;
  for (auto& s : slots_) {
    if (s.key == key) {
      s.last_touch = tick_;
      return s;
    }
  }
  if (slots_.size() < kMaxSlots) {
    slots_.emplace_back();
  } else {
    // Evict the least recently touched instance wholesale; its layouts
    // stay alive for any in-flight launch via the returned shared_ptrs.
    std::sort(slots_.begin(), slots_.end(),
              [](const Slot& a, const Slot& b) {
                return a.last_touch < b.last_touch;
              });
    slots_.front() = Slot{};
    std::swap(slots_.front(), slots_.back());
  }
  Slot& s = slots_.back();
  s = Slot{};
  s.key = key;
  s.last_touch = tick_;
  return s;
}

template <typename T>
std::uint64_t PlanLayouts<T>::note_run(const CsrMatrix<T>& a) {
  std::lock_guard<std::mutex> lock(mu_);
  Slot& s = slot_for(a.instance_id());
  s.uses += 1;
  return s.uses;
}

template <typename T>
std::shared_ptr<const BinLayout<T>> PlanLayouts<T>::acquire(
    const CsrMatrix<T>& a, std::span<const index_t> vrows, index_t unit,
    FormatKind kind, int bin_id) {
  if (kind == FormatKind::Csr) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  Slot& s = slot_for(a.instance_id());
  const BinKey key{unit, bin_id, kind};
  if (const auto it = s.built.find(key); it != s.built.end()) {
    if (it->second != nullptr) stats_.hits += 1;
    return it->second;  // null = negative-cached build failure -> CSR
  }
  if (!policy_.eager && s.uses < policy_.min_reuse) {
    stats_.deferrals += 1;
    return nullptr;
  }
  // Build under the lock: builds are bin-local and rare (once per
  // (instance, bin, format)), so simplicity beats letting two workers race
  // to build the same layout.
  std::shared_ptr<const BinLayout<T>> built;
  try {
    built = std::make_shared<const BinLayout<T>>(
        build_bin_layout(a, vrows, unit, kind, bin_id));
    stats_.builds += 1;
    stats_.build_s += built->build_s;
  } catch (const std::exception&) {
    stats_.build_failures += 1;
    built = nullptr;
  }
  s.built.emplace(key, built);
  return built;
}

template <typename T>
std::uint64_t PlanLayouts<T>::refresh_values(const CsrMatrix<T>& a,
                                             std::uint64_t old_instance_id) {
  std::lock_guard<std::mutex> lock(mu_);
  Slot* slot = nullptr;
  for (auto& s : slots_) {
    if (s.key == old_instance_id) {
      slot = &s;
      break;
    }
  }
  if (slot == nullptr) return 0;
  slot->key = a.instance_id();
  std::uint64_t refreshed = 0;
  for (auto it = slot->built.begin(); it != slot->built.end();) {
    if (it->second == nullptr) {
      ++it;  // negative cache: still hopeless after a values-only change
      continue;
    }
    try {
      it->second = std::make_shared<const BinLayout<T>>(
          refresh_layout_values(a, *it->second));
      refreshed += 1;
      ++it;
    } catch (const std::exception&) {
      // Structure mismatch — drop so acquire() rebuilds lazily.
      it = slot->built.erase(it);
    }
  }
  stats_.value_refreshes += refreshed;
  return refreshed;
}

template <typename T>
LayoutStats PlanLayouts<T>::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

template class PlanLayouts<float>;
template class PlanLayouts<double>;

}  // namespace spmv::fmt

// Bin-local physical layouts and their builders.
//
// A layout is a materialized copy of one bin's rows in an alternative
// storage scheme. All three layouts carry the packed list of *actual* row
// ids the bin covers (`rows`) — every covered row, including empty ones —
// so a layout kernel can zero its y slice completely before accumulating,
// exactly like the CSR slot loop does. Builders are deterministic, bounded
// (they throw std::length_error when the transformation would not pay —
// e.g. ELL padding blow-up or a column delta overflowing 16 bits), and
// record their own wall-clock cost so the lazy materialization layer can
// amortize it against observed reuse.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fmt/format.hpp"
#include "sparse/csr.hpp"

namespace spmv::fmt {

/// ELL-packed bin: every covered row padded to the bin's max row length,
/// columns/values column-major over the packed rows — entry (r, k) lives at
/// k*rows.size() + r, padded with col -1 / value 0. Mirrors sparse/ell.hpp
/// but packs only the bin's rows.
template <typename T>
struct EllBin {
  index_t width = 0;               ///< max row length in the bin
  std::vector<index_t> rows;       ///< covered actual row ids (incl. empty)
  std::vector<index_t> col;        ///< column-major, rows.size()*width
  std::vector<T> val;              ///< same shape, padded with 0
};

/// Coordinate-triple bin for scatter / mostly-empty bins: only the actual
/// non-zeros are stored (row-major order), so execution skips empty rows
/// entirely instead of probing row_ptr per slot. `chunk_ptr` partitions the
/// triples into parallel chunks that never split a row, so concurrent
/// chunks accumulate into disjoint y entries without atomics.
template <typename T>
struct CooBin {
  std::vector<index_t> rows;        ///< covered actual row ids (for zeroing)
  std::vector<index_t> entry_row;   ///< per-entry row id, non-decreasing
  std::vector<index_t> entry_col;
  std::vector<T> entry_val;
  std::vector<std::size_t> chunk_ptr;  ///< chunk offsets into the triples
};

/// Delta-compressed CSR bin for banded rows: per covered row, columns are
/// sorted and stored as a full-width base column plus 16-bit deltas for the
/// remaining entries. Rows whose intra-row column gaps exceed 65535 make
/// the bin unsuitable (the builder throws).
template <typename T>
struct DeltaBin {
  std::vector<index_t> rows;          ///< covered actual row ids
  std::vector<offset_t> row_ptr;      ///< packed, rows.size()+1 entries
  std::vector<index_t> base_col;      ///< first (smallest) column per row
  std::vector<std::uint16_t> deltas;  ///< per-entry gap from previous column
  std::vector<T> vals;                ///< sorted to match the delta stream
};

/// One bin's materialized layout: exactly one of the three payloads is
/// populated, selected by `kind` (never Csr — CSR bins execute straight
/// from the shared arrays and are never materialized).
template <typename T>
struct BinLayout {
  FormatKind kind = FormatKind::Csr;
  int bin_id = -1;
  double build_s = 0.0;    ///< wall-clock cost of the transformation
  std::size_t bytes = 0;   ///< heap footprint of the materialized arrays
  EllBin<T> ell;
  CooBin<T> coo;
  DeltaBin<T> dcsr;
};

/// Guardrails the builders enforce (the estimator applies tighter,
/// heuristic thresholds; these are correctness/memory bounds).
struct BuildLimits {
  double ell_max_expansion = 16.0;  ///< padded entries / bin nnz ceiling
  index_t ell_max_width = 4096;     ///< refuse absurdly wide ELL bins
};

/// Materialize one bin (virtual rows `vrows` at granularity `unit`) of `a`
/// in layout `kind`. Throws std::invalid_argument for kind == Csr and
/// std::length_error when the bin is unsuitable for the requested layout
/// (ELL expansion/width over the limits, a Dcsr column gap over 16 bits).
template <typename T>
[[nodiscard]] BinLayout<T> build_bin_layout(const CsrMatrix<T>& a,
                                            std::span<const index_t> vrows,
                                            index_t unit, FormatKind kind,
                                            int bin_id,
                                            const BuildLimits& limits = {});

/// Value-refreshed copy of `old`: identical structure (row list, column
/// stream, chunking, byte footprint) with every stored value re-read from
/// `a`. Used after CsrMatrix::update_values so a structurally unchanged
/// matrix keeps its materialized layouts instead of paying a rebuild.
/// Returns a fresh object — the old layout is never mutated, because
/// in-flight launches may still hold shared_ptrs to it. Throws
/// std::length_error when `a`'s structure no longer matches the layout
/// (callers treat that as "drop and rebuild lazily").
template <typename T>
[[nodiscard]] BinLayout<T> refresh_layout_values(const CsrMatrix<T>& a,
                                                 const BinLayout<T>& old);

#define SPMV_FMT_LAYOUT_EXTERN(T)                                         \
  extern template struct BinLayout<T>;                                    \
  extern template BinLayout<T> build_bin_layout(                          \
      const CsrMatrix<T>&, std::span<const index_t>, index_t, FormatKind, \
      int, const BuildLimits&);                                           \
  extern template BinLayout<T> refresh_layout_values(const CsrMatrix<T>&, \
                                                     const BinLayout<T>&);
SPMV_FMT_LAYOUT_EXTERN(float)
SPMV_FMT_LAYOUT_EXTERN(double)
#undef SPMV_FMT_LAYOUT_EXTERN

}  // namespace spmv::fmt

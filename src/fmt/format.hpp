// spmv::fmt — per-bin physical-format vocabulary.
//
// The paper tunes kernel choice and binning granularity *within* CSR; this
// subsystem adds the structure level the related work (Katagiri & Sato's
// run-time CRS→COO/ELL transformation, Elafrou et al.'s feature-based
// selection) argues often dominates: each bin of the virtual-row binning may
// carry its own physical layout. This header is deliberately lightweight —
// core/plan.hpp embeds FormatKind in every per-bin entry, so it must not
// drag in matrix or backend headers.
#pragma once

#include <span>
#include <stdexcept>
#include <string>

namespace spmv::fmt {

/// Per-bin physical layout. Csr means "execute straight from the shared CSR
/// arrays" (the default and the universal fallback); the others name a
/// bin-local materialized copy built by fmt::build_bin_layout.
enum class FormatKind : int {
  Csr = 0,   ///< shared CSR arrays, no transformation
  Ell = 1,   ///< ELL-packed: near-uniform short rows, column-major, padded
  Coo = 2,   ///< coordinate triples: scatter / mostly-empty bins
  Dcsr = 3,  ///< CSR with uint16 delta-compressed column indices: banded rows
};

inline constexpr int kFormatCount = 4;

/// Execution-wide format policy, the `--format csr|auto` CLI knob. Csr pins
/// every bin to the shared arrays (pre-PR-7 behaviour); Auto lets the
/// estimator stamp per-bin formats and the bandit explore alternatives.
enum class FormatMode : int {
  Csr = 0,
  Auto = 1,
};

[[nodiscard]] std::string format_name(FormatKind k);
[[nodiscard]] const char* format_cname(FormatKind k);

/// Parse a format name; returns false (leaving `out` untouched) on an
/// unknown name so persistence can count a skip instead of throwing.
[[nodiscard]] bool try_format_from_name(const std::string& name,
                                        FormatKind* out);

/// Parse a format name; throws std::invalid_argument on an unknown name.
[[nodiscard]] FormatKind format_from_name(const std::string& name);

/// All formats in enum order (Csr first).
[[nodiscard]] std::span<const FormatKind> all_formats();

[[nodiscard]] const char* format_mode_cname(FormatMode m);

/// Parse "csr"/"auto"; throws std::invalid_argument otherwise.
[[nodiscard]] FormatMode format_mode_from_name(const std::string& name);

}  // namespace spmv::fmt

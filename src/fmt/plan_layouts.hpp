// Lazy, reuse-amortized materialization of per-bin layouts.
//
// A format transformation only pays when the same matrix is multiplied
// enough times to amortize the build cost (Katagiri & Sato's run-time
// transformation argument, PAPERS.md). PlanLayouts tracks how many times
// each matrix instance has been executed and materializes a bin's layout
// only once that count reaches the amortization threshold — before that,
// acquire() returns nullptr and the caller falls back to the shared CSR
// arrays, so a one-shot multiplication never pays a transformation it
// cannot recoup. Failed builds (the builder's unsuitability throws) are
// negatively cached so a hopeless bin is attempted exactly once.
//
// Keying is by matrix *instance* (CsrMatrix::instance_id): the serving
// layer caches plans by structural fingerprint but executes each request
// against the request's own matrix object, whose values may differ — a
// layout embeds values, so it must be bound to the instance, not the
// fingerprint. The id is process-unique and never recycled (a raw buffer
// address is not: a freed matrix's allocation can be handed to a later
// same-shape matrix with different values, which would alias its slot and
// serve a stale layout), and vals_mutable() re-issues it, so a slot can
// never outlive the values it was built from. A small LRU of matrix slots
// bounds memory across instances.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "fmt/layout.hpp"

namespace spmv::fmt {

/// When a bin layout is worth materializing.
struct AmortizationPolicy {
  /// Executions of the same matrix instance before a layout is built.
  /// 0 (or `eager`) builds on first touch — tests and shadow trials.
  std::uint64_t min_reuse = 3;
  bool eager = false;
};

/// Counters for provenance output (benches, spmv_tool).
struct LayoutStats {
  std::uint64_t builds = 0;         ///< successful materializations
  std::uint64_t build_failures = 0; ///< builder rejections (negative-cached)
  std::uint64_t hits = 0;           ///< acquire() served a built layout
  std::uint64_t deferrals = 0;      ///< acquire() deferred: not yet amortized
  std::uint64_t value_refreshes = 0; ///< layouts value-refreshed in place of
                                     ///< a rebuild (refresh_values)
  double build_s = 0.0;             ///< total wall-clock spent building
};

template <typename T>
class PlanLayouts {
 public:
  explicit PlanLayouts(AmortizationPolicy policy = {}) : policy_(policy) {}

  /// Record one execution of `a` (call once per whole-plan run). Returns
  /// the instance's updated reuse count.
  std::uint64_t note_run(const CsrMatrix<T>& a);

  /// The materialized layout for one bin of `a`, or nullptr when the bin
  /// executes from CSR — kind == Csr, reuse below the amortization
  /// threshold, or a previously failed build. The returned shared_ptr
  /// keeps the layout alive across the launch even if the slot is evicted
  /// concurrently.
  std::shared_ptr<const BinLayout<T>> acquire(const CsrMatrix<T>& a,
                                              std::span<const index_t> vrows,
                                              index_t unit, FormatKind kind,
                                              int bin_id);

  /// Carry the layouts built for instance `old_instance_id` over to `a`
  /// after a values-only mutation (CsrMatrix::update_values re-issues the
  /// instance id but keeps the structure). The slot is re-keyed to
  /// a.instance_id() with its reuse count, LRU position, and negative
  /// caches intact; every built layout is replaced by a value-refreshed
  /// *copy* (in-flight launches may still hold the old shared_ptrs). A
  /// layout whose structure no longer matches `a` is dropped so acquire()
  /// rebuilds it lazily. Returns the number of layouts refreshed; 0 when
  /// the old instance has no slot (nothing was materialized).
  std::uint64_t refresh_values(const CsrMatrix<T>& a,
                               std::uint64_t old_instance_id);

  [[nodiscard]] LayoutStats stats() const;

 private:
  struct BinKey {
    index_t unit;
    int bin_id;
    FormatKind kind;
    bool operator<(const BinKey& o) const {
      if (unit != o.unit) return unit < o.unit;
      if (bin_id != o.bin_id) return bin_id < o.bin_id;
      return static_cast<int>(kind) < static_cast<int>(o.kind);
    }
  };
  struct Slot {
    std::uint64_t key = 0;  ///< CsrMatrix::instance_id() — never recycled
    std::uint64_t uses = 0;
    std::uint64_t last_touch = 0;
    /// Built layouts; a present-but-null entry is a negative cache (the
    /// builder rejected this bin/format).
    std::map<BinKey, std::shared_ptr<const BinLayout<T>>> built;
  };

  static constexpr std::size_t kMaxSlots = 4;

  Slot& slot_for(std::uint64_t key);  // callers hold mu_

  AmortizationPolicy policy_;
  mutable std::mutex mu_;
  std::vector<Slot> slots_;
  std::uint64_t tick_ = 0;
  LayoutStats stats_;
};

extern template class PlanLayouts<float>;
extern template class PlanLayouts<double>;

}  // namespace spmv::fmt

// Cheap per-bin format suitability estimation.
//
// One pass over a bin's covered rows produces the feature vector (row
// count, nnz, empty fraction, max/avg length, would-be ELL padding ratio,
// max intra-row column span) and the estimator maps it to a FormatKind —
// the same lightweight-features-to-structure-decision move as the paper's
// Table-I kernel predictor, lifted one level up to physical layout
// (Elafrou et al.'s feature-based selection in PAPERS.md). The estimator is
// deliberately conservative: it only leaves CSR when the features say the
// transformation is near-certain to pay; the bandit's format arms explore
// the remaining suitable candidates online.
#pragma once

#include <span>
#include <vector>

#include "fmt/format.hpp"
#include "sparse/csr.hpp"

namespace spmv::fmt {

/// Feature vector of one bin's covered rows, computed in a single pass.
struct BinFeatures {
  std::size_t rows = 0;        ///< covered actual rows (incl. empty)
  offset_t nnz = 0;
  std::size_t empty_rows = 0;
  offset_t max_len = 0;
  double avg_len = 0.0;        ///< nnz / rows (0 for an empty bin)
  double padding_ratio = 0.0;  ///< rows * max_len / nnz (ELL expansion)
  index_t max_row_span = 0;    ///< max over rows of (max col - min col)
};

template <typename T>
[[nodiscard]] BinFeatures compute_bin_features(const CsrMatrix<T>& a,
                                               std::span<const index_t> vrows,
                                               index_t unit);

/// The estimator's single best guess for the bin. Priority: ELL for
/// near-uniform short rows (padding <= ~1.25, width <= 64), Dcsr for banded
/// rows (every gap provably fits 16 bits, avg length >= 8), COO for
/// scatter/mostly-empty bins, CSR otherwise.
[[nodiscard]] FormatKind estimate_bin_format(const BinFeatures& f);

/// All formats worth trying on this bin — the bandit's challenger pool.
/// Guards are looser than estimate_bin_format's (a format the estimator
/// would not pick outright can still win a shadow trial) but still exclude
/// layouts the builder would reject or that cannot possibly pay. Csr is
/// always first.
[[nodiscard]] std::vector<FormatKind> suitable_formats(const BinFeatures& f);

extern template BinFeatures compute_bin_features(const CsrMatrix<float>&,
                                                 std::span<const index_t>,
                                                 index_t);
extern template BinFeatures compute_bin_features(const CsrMatrix<double>&,
                                                 std::span<const index_t>,
                                                 index_t);

}  // namespace spmv::fmt

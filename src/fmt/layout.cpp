#include "fmt/layout.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "util/timer.hpp"

namespace spmv::fmt {

namespace {

/// Actual row ids a bin covers: each virtual row v expands to rows
/// [v*unit, min((v+1)*unit, m)), in slot order. Includes empty rows — the
/// layout kernels own the zeroing of every covered y entry.
std::vector<index_t> covered_rows(std::span<const index_t> vrows,
                                  index_t unit, index_t m) {
  std::vector<index_t> rows;
  rows.reserve(vrows.size() * static_cast<std::size_t>(unit));
  for (const index_t v : vrows) {
    const auto first = static_cast<std::int64_t>(v) * unit;
    for (index_t k = 0; k < unit; ++k) {
      const std::int64_t r = first + k;
      if (r >= m) break;
      rows.push_back(static_cast<index_t>(r));
    }
  }
  return rows;
}

template <typename T>
void build_ell(const CsrMatrix<T>& a, BinLayout<T>& out,
               const BuildLimits& limits) {
  auto& e = out.ell;
  offset_t nnz = 0;
  index_t width = 0;
  for (const index_t r : e.rows) {
    const offset_t len = a.row_nnz(r);
    nnz += len;
    width = std::max(width, static_cast<index_t>(len));
  }
  if (width > limits.ell_max_width)
    throw std::length_error("fmt: ELL bin width " + std::to_string(width) +
                            " exceeds limit");
  const auto padded = static_cast<double>(e.rows.size()) *
                      static_cast<double>(width);
  if (nnz > 0 && padded > limits.ell_max_expansion * static_cast<double>(nnz))
    throw std::length_error("fmt: ELL padding would expand bin " +
                            std::to_string(out.bin_id) + " beyond " +
                            std::to_string(limits.ell_max_expansion) + "x");
  e.width = width;
  const std::size_t n = e.rows.size() * static_cast<std::size_t>(width);
  e.col.assign(n, index_t{-1});
  e.val.assign(n, T(0));
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  const auto va = a.vals();
  for (std::size_t pr = 0; pr < e.rows.size(); ++pr) {
    const auto r = static_cast<std::size_t>(e.rows[pr]);
    const offset_t beg = rp[r];
    const offset_t end = rp[r + 1];
    for (offset_t j = beg; j < end; ++j) {
      const auto k = static_cast<std::size_t>(j - beg);
      e.col[k * e.rows.size() + pr] = ci[static_cast<std::size_t>(j)];
      e.val[k * e.rows.size() + pr] = va[static_cast<std::size_t>(j)];
    }
  }
  out.bytes = e.rows.size() * sizeof(index_t) + e.col.size() * sizeof(index_t) +
              e.val.size() * sizeof(T);
}

template <typename T>
void build_coo(const CsrMatrix<T>& a, BinLayout<T>& out) {
  auto& c = out.coo;
  offset_t nnz = 0;
  for (const index_t r : c.rows) nnz += a.row_nnz(r);
  c.entry_row.reserve(static_cast<std::size_t>(nnz));
  c.entry_col.reserve(static_cast<std::size_t>(nnz));
  c.entry_val.reserve(static_cast<std::size_t>(nnz));
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  const auto va = a.vals();
  for (const index_t r : c.rows) {
    const offset_t beg = rp[static_cast<std::size_t>(r)];
    const offset_t end = rp[static_cast<std::size_t>(r) + 1];
    for (offset_t j = beg; j < end; ++j) {
      c.entry_row.push_back(r);
      c.entry_col.push_back(ci[static_cast<std::size_t>(j)]);
      c.entry_val.push_back(va[static_cast<std::size_t>(j)]);
    }
  }
  // Chunk boundaries every ~8192 entries, snapped forward to the next row
  // boundary so a row never straddles two chunks (keeps the parallel
  // accumulation race-free without atomics).
  constexpr std::size_t kChunkTarget = 8192;
  c.chunk_ptr.push_back(0);
  std::size_t i = 0;
  while (i < c.entry_row.size()) {
    std::size_t next = std::min(i + kChunkTarget, c.entry_row.size());
    while (next < c.entry_row.size() &&
           c.entry_row[next] == c.entry_row[next - 1])
      ++next;
    c.chunk_ptr.push_back(next);
    i = next;
  }
  out.bytes = c.rows.size() * sizeof(index_t) +
              c.entry_row.size() * (2 * sizeof(index_t) + sizeof(T)) +
              c.chunk_ptr.size() * sizeof(std::size_t);
}

template <typename T>
void build_dcsr(const CsrMatrix<T>& a, BinLayout<T>& out) {
  auto& d = out.dcsr;
  offset_t nnz = 0;
  for (const index_t r : d.rows) nnz += a.row_nnz(r);
  d.row_ptr.reserve(d.rows.size() + 1);
  d.base_col.reserve(d.rows.size());
  d.deltas.reserve(static_cast<std::size_t>(nnz));
  d.vals.reserve(static_cast<std::size_t>(nnz));
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  const auto va = a.vals();
  d.row_ptr.push_back(0);
  std::vector<std::pair<index_t, T>> entries;
  for (const index_t r : d.rows) {
    const offset_t beg = rp[static_cast<std::size_t>(r)];
    const offset_t end = rp[static_cast<std::size_t>(r) + 1];
    entries.clear();
    for (offset_t j = beg; j < end; ++j)
      entries.emplace_back(ci[static_cast<std::size_t>(j)],
                           va[static_cast<std::size_t>(j)]);
    // CSR does not guarantee sorted columns within a row; the delta stream
    // requires them (summation order changes are within the differential
    // tolerance).
    std::sort(entries.begin(), entries.end(),
              [](const auto& x, const auto& y) { return x.first < y.first; });
    index_t prev = entries.empty() ? index_t{0} : entries.front().first;
    d.base_col.push_back(prev);
    for (std::size_t k = 0; k < entries.size(); ++k) {
      const index_t gap = entries[k].first - prev;
      if (gap > std::numeric_limits<std::uint16_t>::max())
        throw std::length_error(
            "fmt: Dcsr column gap " + std::to_string(gap) +
            " in row " + std::to_string(r) + " exceeds 16 bits");
      d.deltas.push_back(static_cast<std::uint16_t>(gap));
      d.vals.push_back(entries[k].second);
      prev = entries[k].first;
    }
    d.row_ptr.push_back(d.row_ptr.back() +
                        static_cast<offset_t>(entries.size()));
  }
  out.bytes = d.rows.size() * sizeof(index_t) +
              d.row_ptr.size() * sizeof(offset_t) +
              d.base_col.size() * sizeof(index_t) +
              d.deltas.size() * sizeof(std::uint16_t) +
              d.vals.size() * sizeof(T);
}

}  // namespace

template <typename T>
BinLayout<T> build_bin_layout(const CsrMatrix<T>& a,
                              std::span<const index_t> vrows, index_t unit,
                              FormatKind kind, int bin_id,
                              const BuildLimits& limits) {
  if (kind == FormatKind::Csr)
    throw std::invalid_argument(
        "fmt: CSR bins execute from the shared arrays; nothing to build");
  util::Timer t;
  BinLayout<T> out;
  out.kind = kind;
  out.bin_id = bin_id;
  auto rows = covered_rows(vrows, unit, a.rows());
  switch (kind) {
    case FormatKind::Ell:
      out.ell.rows = std::move(rows);
      build_ell(a, out, limits);
      break;
    case FormatKind::Coo:
      out.coo.rows = std::move(rows);
      build_coo(a, out);
      break;
    case FormatKind::Dcsr:
      out.dcsr.rows = std::move(rows);
      build_dcsr(a, out);
      break;
    case FormatKind::Csr:
      break;  // unreachable
  }
  out.build_s = t.elapsed_s();
  return out;
}

template <typename T>
BinLayout<T> refresh_layout_values(const CsrMatrix<T>& a,
                                   const BinLayout<T>& old) {
  if (old.kind == FormatKind::Csr)
    throw std::invalid_argument(
        "fmt: CSR bins execute from the shared arrays; nothing to refresh");
  BinLayout<T> out = old;
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  const auto va = a.vals();
  const auto row_len = [&](index_t r) {
    return rp[static_cast<std::size_t>(r) + 1] -
           rp[static_cast<std::size_t>(r)];
  };
  switch (old.kind) {
    case FormatKind::Ell: {
      auto& e = out.ell;
      const std::size_t nrows = e.rows.size();
      for (std::size_t pr = 0; pr < nrows; ++pr) {
        const index_t r = e.rows[pr];
        if (r < 0 || r >= a.rows() || row_len(r) > e.width)
          throw std::length_error("fmt: ELL refresh structure mismatch");
        const offset_t beg = rp[static_cast<std::size_t>(r)];
        const offset_t end = rp[static_cast<std::size_t>(r) + 1];
        for (offset_t j = beg; j < end; ++j)
          e.val[static_cast<std::size_t>(j - beg) * nrows + pr] =
              va[static_cast<std::size_t>(j)];
      }
      break;
    }
    case FormatKind::Coo: {
      auto& c = out.coo;
      std::size_t i = 0;
      for (const index_t r : c.rows) {
        if (r < 0 || r >= a.rows())
          throw std::length_error("fmt: Coo refresh structure mismatch");
        const offset_t beg = rp[static_cast<std::size_t>(r)];
        const offset_t end = rp[static_cast<std::size_t>(r) + 1];
        for (offset_t j = beg; j < end; ++j, ++i) {
          if (i >= c.entry_val.size() || c.entry_row[i] != r)
            throw std::length_error("fmt: Coo refresh structure mismatch");
          c.entry_val[i] = va[static_cast<std::size_t>(j)];
        }
      }
      if (i != c.entry_val.size())
        throw std::length_error("fmt: Coo refresh structure mismatch");
      break;
    }
    case FormatKind::Dcsr: {
      // The delta stream stores each row's entries sorted by column; redo
      // the builder's sort on the fresh values (columns per row are unique
      // in well-formed CSR, so the permutation matches the original).
      auto& d = out.dcsr;
      std::vector<std::pair<index_t, T>> entries;
      for (std::size_t pr = 0; pr < d.rows.size(); ++pr) {
        const index_t r = d.rows[pr];
        const offset_t beg = rp[static_cast<std::size_t>(r)];
        const offset_t end = rp[static_cast<std::size_t>(r) + 1];
        if (r < 0 || r >= a.rows() ||
            end - beg != d.row_ptr[pr + 1] - d.row_ptr[pr])
          throw std::length_error("fmt: Dcsr refresh structure mismatch");
        entries.clear();
        for (offset_t j = beg; j < end; ++j)
          entries.emplace_back(ci[static_cast<std::size_t>(j)],
                               va[static_cast<std::size_t>(j)]);
        std::sort(entries.begin(), entries.end(),
                  [](const auto& x, const auto& y) {
                    return x.first < y.first;
                  });
        for (std::size_t k = 0; k < entries.size(); ++k)
          d.vals[static_cast<std::size_t>(d.row_ptr[pr]) + k] =
              entries[k].second;
      }
      break;
    }
    case FormatKind::Csr:
      break;  // unreachable
  }
  return out;
}

#define SPMV_FMT_LAYOUT_INSTANTIATE(T)                                    \
  template struct BinLayout<T>;                                           \
  template BinLayout<T> build_bin_layout(                                 \
      const CsrMatrix<T>&, std::span<const index_t>, index_t, FormatKind, \
      int, const BuildLimits&);                                           \
  template BinLayout<T> refresh_layout_values(const CsrMatrix<T>&,        \
                                              const BinLayout<T>&);
SPMV_FMT_LAYOUT_INSTANTIATE(float)
SPMV_FMT_LAYOUT_INSTANTIATE(double)
#undef SPMV_FMT_LAYOUT_INSTANTIATE

}  // namespace spmv::fmt

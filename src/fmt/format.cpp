#include "fmt/format.hpp"

#include <array>

namespace spmv::fmt {

namespace {

constexpr std::array<const char*, kFormatCount> kNames = {"csr", "ell", "coo",
                                                          "dcsr"};

constexpr std::array<FormatKind, kFormatCount> kAll = {
    FormatKind::Csr, FormatKind::Ell, FormatKind::Coo, FormatKind::Dcsr};

}  // namespace

const char* format_cname(FormatKind k) {
  const auto i = static_cast<int>(k);
  if (i < 0 || i >= kFormatCount) return "unknown";
  return kNames[static_cast<std::size_t>(i)];
}

std::string format_name(FormatKind k) { return format_cname(k); }

bool try_format_from_name(const std::string& name, FormatKind* out) {
  for (int i = 0; i < kFormatCount; ++i) {
    if (name == kNames[static_cast<std::size_t>(i)]) {
      *out = static_cast<FormatKind>(i);
      return true;
    }
  }
  return false;
}

FormatKind format_from_name(const std::string& name) {
  FormatKind k = FormatKind::Csr;
  if (!try_format_from_name(name, &k))
    throw std::invalid_argument("unknown format name: " + name);
  return k;
}

std::span<const FormatKind> all_formats() { return kAll; }

const char* format_mode_cname(FormatMode m) {
  return m == FormatMode::Auto ? "auto" : "csr";
}

FormatMode format_mode_from_name(const std::string& name) {
  if (name == "csr") return FormatMode::Csr;
  if (name == "auto") return FormatMode::Auto;
  throw std::invalid_argument("unknown format mode: " + name +
                              " (expected csr|auto)");
}

}  // namespace spmv::fmt

#include "fmt/estimate.hpp"

#include <algorithm>

namespace spmv::fmt {

template <typename T>
BinFeatures compute_bin_features(const CsrMatrix<T>& a,
                                 std::span<const index_t> vrows,
                                 index_t unit) {
  BinFeatures f;
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  const index_t m = a.rows();
  for (const index_t v : vrows) {
    const auto first = static_cast<std::int64_t>(v) * unit;
    for (index_t k = 0; k < unit; ++k) {
      const std::int64_t r = first + k;
      if (r >= m) break;
      f.rows += 1;
      const offset_t beg = rp[static_cast<std::size_t>(r)];
      const offset_t end = rp[static_cast<std::size_t>(r) + 1];
      const offset_t len = end - beg;
      f.nnz += len;
      f.max_len = std::max(f.max_len, len);
      if (len == 0) {
        f.empty_rows += 1;
        continue;
      }
      index_t lo = ci[static_cast<std::size_t>(beg)];
      index_t hi = lo;
      for (offset_t j = beg + 1; j < end; ++j) {
        const index_t c = ci[static_cast<std::size_t>(j)];
        lo = std::min(lo, c);
        hi = std::max(hi, c);
      }
      f.max_row_span = std::max(f.max_row_span, hi - lo);
    }
  }
  if (f.rows > 0 && f.nnz > 0) {
    f.avg_len = static_cast<double>(f.nnz) / static_cast<double>(f.rows);
    f.padding_ratio = static_cast<double>(f.rows) *
                      static_cast<double>(f.max_len) /
                      static_cast<double>(f.nnz);
  }
  return f;
}

FormatKind estimate_bin_format(const BinFeatures& f) {
  if (f.nnz == 0) return FormatKind::Csr;
  // Near-uniform short rows: padding is negligible and the column-major
  // walk vectorizes — the textbook ELL case.
  if (f.padding_ratio <= 1.25 && f.max_len <= 64 && f.max_len >= 1)
    return FormatKind::Ell;
  // Banded: every intra-row gap is bounded by the row span, so a span
  // within 16 bits guarantees the delta stream fits; longer rows amortize
  // the per-row base-column indirection.
  if (f.max_row_span <= 65535 && f.avg_len >= 8.0) return FormatKind::Dcsr;
  // Scatter: mostly-empty bins or rows of one or two entries — iterating
  // triples skips the empty-slot probing CSR pays per covered row.
  if (f.empty_rows * 2 >= f.rows || f.avg_len <= 2.0) return FormatKind::Coo;
  return FormatKind::Csr;
}

std::vector<FormatKind> suitable_formats(const BinFeatures& f) {
  std::vector<FormatKind> out = {FormatKind::Csr};
  if (f.nnz == 0) return out;
  if (f.padding_ratio <= 2.0 && f.max_len <= 256) out.push_back(FormatKind::Ell);
  if (f.max_row_span <= 65535 && f.avg_len >= 4.0)
    out.push_back(FormatKind::Dcsr);
  // Same scatter signals as the point estimate, at half strength: COO only
  // enters the pool when the bin shows some emptiness or short rows — on a
  // dense uniform bin it cannot beat CSR, so timing it is pure trial waste.
  if (f.empty_rows * 4 >= f.rows || f.avg_len <= 4.0)
    out.push_back(FormatKind::Coo);
  return out;
}

template BinFeatures compute_bin_features(const CsrMatrix<float>&,
                                          std::span<const index_t>, index_t);
template BinFeatures compute_bin_features(const CsrMatrix<double>&,
                                          std::span<const index_t>, index_t);

}  // namespace spmv::fmt

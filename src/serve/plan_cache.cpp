#include "serve/plan_cache.hpp"

#include <stdexcept>
#include <utility>

#include "core/tuner.hpp"

namespace spmv::serve {

template <typename T>
PlanCache<T>::PlanCache(const core::Predictor& predictor,
                        const clsim::Engine& engine, std::size_t capacity)
    : predictor_(predictor), engine_(engine), capacity_(capacity) {
  if (capacity_ == 0)
    throw std::invalid_argument("PlanCache: capacity must be >= 1");
}

template <typename T>
std::shared_ptr<const typename PlanCache<T>::Entry> PlanCache<T>::get(
    const std::shared_ptr<const CsrMatrix<T>>& matrix) {
  if (matrix == nullptr)
    throw std::invalid_argument("PlanCache::get: null matrix");
  const Fingerprint key = fingerprint_of(*matrix);

  std::promise<std::shared_ptr<const Entry>> promise;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (const auto it = slots_.find(key); it != slots_.end()) {
      // Hit (possibly on an entry still being planned by another thread).
      stats_.hits += 1;
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      EntryFuture f = it->second.future;
      lock.unlock();  // the planning pass may still be in flight
      return f.get();
    }
    stats_.misses += 1;
    if (slots_.size() >= capacity_) {
      // Evict the least recently used slot. An in-flight build keeps
      // running (its waiters hold the shared_future); it just won't be
      // cached once evicted.
      const Fingerprint victim = lru_.back();
      lru_.pop_back();
      slots_.erase(victim);
      stats_.evictions += 1;
    }
    lru_.push_front(key);
    slots_.emplace(key, Slot{promise.get_future().share(), lru_.begin()});
  }

  // Plan outside the lock so a slow build never blocks hits on other keys.
  try {
    auto entry = std::shared_ptr<const Entry>(new Entry{
        matrix,
        core::Tuner(*matrix).predictor(predictor_).engine(engine_).build()});
    promise.set_value(entry);
    return entry;
  } catch (...) {
    promise.set_exception(std::current_exception());
    std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = slots_.find(key); it != slots_.end()) {
      lru_.erase(it->second.lru_pos);
      slots_.erase(it);
    }
    throw;
  }
}

template <typename T>
typename PlanCache<T>::Stats PlanCache<T>::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

template <typename T>
std::size_t PlanCache<T>::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slots_.size();
}

template class PlanCache<float>;
template class PlanCache<double>;

}  // namespace spmv::serve

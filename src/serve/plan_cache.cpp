#include "serve/plan_cache.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "core/tuner.hpp"
#include "util/log.hpp"

namespace spmv::serve {

template <typename T>
PlanCache<T>::PlanCache(const core::Predictor& predictor,
                        const clsim::Engine& engine, std::size_t capacity,
                        adapt::PlanStore* store,
                        exec::BackendKind default_backend,
                        fmt::FormatMode format_mode)
    : predictor_(predictor),
      engine_(engine),
      capacity_(capacity),
      store_(store),
      default_backend_(default_backend),
      format_mode_(format_mode) {
  if (capacity_ == 0)
    throw std::invalid_argument("PlanCache: capacity must be >= 1");
}

template <typename T>
std::shared_ptr<const typename PlanCache<T>::Entry> PlanCache<T>::get(
    const std::shared_ptr<const CsrMatrix<T>>& matrix) {
  if (matrix == nullptr)
    throw std::invalid_argument("PlanCache::get: null matrix");
  const Fingerprint key = fingerprint_of(*matrix);

  std::promise<std::shared_ptr<const Entry>> promise;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (const auto it = slots_.find(key); it != slots_.end()) {
      // Hit (possibly on an entry still being planned by another thread).
      stats_.hits += 1;
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      EntryFuture f = it->second.future;
      lock.unlock();  // the planning pass may still be in flight
      return f.get();
    }
    stats_.misses += 1;
    if (slots_.size() >= capacity_) {
      // Evict the least recently used slot. An in-flight build keeps
      // running (its waiters hold the shared_future); it just won't be
      // cached once evicted.
      const Fingerprint victim = lru_.back();
      lru_.pop_back();
      slots_.erase(victim);
      stats_.evictions += 1;
    }
    lru_.push_front(key);
    slots_.emplace(key, Slot{promise.get_future().share(), lru_.begin()});
  }

  // Plan outside the lock so a slow build never blocks hits on other keys.
  // A warm store entry rebuilds from the stored plan (no predictor pass);
  // otherwise the predictor plans and the result is written through.
  try {
    std::optional<adapt::StoredPlan> stored;
    if (store_ != nullptr) stored = store_->lookup(key);
    std::shared_ptr<const Entry> entry;
    if (stored.has_value()) {
      entry = std::shared_ptr<const Entry>(new Entry{
          key, matrix,
          core::Tuner(*matrix).plan(stored->plan).engine(engine_).build()});
      std::lock_guard<std::mutex> lock(mutex_);
      stats_.warm_hits += 1;
    } else {
      entry = std::shared_ptr<const Entry>(new Entry{
          key, matrix,
          core::Tuner(*matrix)
              .predictor(predictor_)
              .engine(engine_)
              .backend(default_backend_)
              .formats(format_mode_)
              .build()});
      if (store_ != nullptr)
        store_->put(key, adapt::StoredPlan{entry->runtime.plan()});
      std::lock_guard<std::mutex> lock(mutex_);
      stats_.planning_passes += 1;
    }
    promise.set_value(entry);
    return entry;
  } catch (...) {
    promise.set_exception(std::current_exception());
    std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = slots_.find(key); it != slots_.end()) {
      lru_.erase(it->second.lru_pos);
      slots_.erase(it);
    }
    throw;
  }
}

template <typename T>
std::shared_ptr<const typename PlanCache<T>::Entry> PlanCache<T>::promote(
    const Fingerprint& key, const core::Plan& plan, double gflops) {
  // Snapshot the current entry (the matrix to rebuild against). A slot
  // still mid-build or already evicted loses the promotion — acceptable:
  // promotions are opportunistic refinements, never required for
  // correctness.
  std::shared_ptr<const Entry> current;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    const auto it = slots_.find(key);
    if (it == slots_.end()) return nullptr;
    EntryFuture f = it->second.future;
    lock.unlock();
    if (f.wait_for(std::chrono::seconds(0)) != std::future_status::ready)
      return nullptr;
    try {
      current = f.get();
    } catch (...) {
      return nullptr;  // failed build still occupying the slot
    }
  }
  if (plan.revision <= current->runtime.plan().revision)
    return nullptr;  // stale: an equal-or-newer revision is already cached

  // Rebuild outside the lock (binning the matrix is the expensive part).
  std::shared_ptr<const Entry> replacement;
  try {
    replacement = std::shared_ptr<const Entry>(new Entry{
        key, current->matrix,
        core::Tuner(*current->matrix).plan(plan).engine(engine_).build()});
  } catch (const std::exception& e) {
    util::log_warn() << "PlanCache::promote: rebuild failed, keeping "
                        "incumbent plan ("
                     << e.what() << ")";
    return nullptr;
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = slots_.find(key);
    if (it == slots_.end()) return nullptr;  // evicted while rebuilding
    // Re-validate monotonicity against whatever sits in the slot now (a
    // concurrent promotion may have won the race).
    if (it->second.future.wait_for(std::chrono::seconds(0)) !=
        std::future_status::ready)
      return nullptr;
    std::shared_ptr<const Entry> now;
    try {
      now = it->second.future.get();
    } catch (...) {
      return nullptr;
    }
    if (plan.revision <= now->runtime.plan().revision) return nullptr;
    std::promise<std::shared_ptr<const Entry>> ready;
    ready.set_value(replacement);
    it->second.future = ready.get_future().share();
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    stats_.promotions += 1;
    const core::Plan& replaced = now->runtime.plan();
    if (replaced.unit != plan.unit || replaced.single_bin != plan.single_bin)
      stats_.rebin_promotions += 1;
  }
  if (store_ != nullptr)
    store_->put(key, adapt::StoredPlan{replacement->runtime.plan(), gflops});
  return replacement;
}

template <typename T>
typename PlanCache<T>::Stats PlanCache<T>::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

template <typename T>
std::size_t PlanCache<T>::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slots_.size();
}

template class PlanCache<float>;
template class PlanCache<double>;

}  // namespace spmv::serve

// PlanCache — an LRU cache of built AutoSpmv runtimes keyed by matrix
// fingerprint, so a serving workload pays the planning cost (feature
// extraction, prediction, binning) once per distinct matrix structure.
//
// Concurrency: get() is safe from any number of threads. Concurrent misses
// on the same fingerprint share ONE planning pass — the first requester
// builds while the rest block on a shared_future for the same entry. The
// build itself runs outside the cache lock, so planning one matrix never
// stalls hits on others. A failed build removes its slot (and rethrows),
// leaving later requests free to retry.
//
// Warm start: with a PlanStore attached, a miss first consults the store —
// a stored plan for the fingerprint rebuilds directly (counted as a
// warm_hit; the predictor never runs), and every predictor-driven plan is
// written through to the store so the next process restart warm-starts.
//
// Online refinement: promote() atomically swaps a cached entry's runtime
// for one rebuilt from an improved Plan (spmv::adapt promotions). Plan
// revisions are monotonic per key — a stale promotion (revision <= the
// cached plan's) is dropped, as is one whose entry was evicted meanwhile.
//
// Correctness note: the fingerprint hashes structure, not values (see
// fingerprint.hpp), so an Entry's runtime is bound to the *first* matrix
// seen with that structure. Callers that may hold structurally equal
// matrices with different values must execute through the entry's
// plan()/bins() against their own matrix (core::execute_plan) rather than
// calling entry->runtime.run() — that is exactly what SpmvService does.
#pragma once

#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "adapt/plan_store.hpp"
#include "clsim/engine.hpp"
#include "core/auto_spmv.hpp"
#include "exec/backend.hpp"
#include "core/predictor.hpp"
#include "fmt/format.hpp"
#include "serve/fingerprint.hpp"
#include "sparse/csr.hpp"

namespace spmv::serve {

template <typename T>
class PlanCache {
 public:
  /// A cached runtime plus shared ownership of the matrix it was planned
  /// for (the runtime holds references into *matrix).
  struct Entry {
    Fingerprint key;
    std::shared_ptr<const CsrMatrix<T>> matrix;
    core::AutoSpmv<T> runtime;
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    /// Misses satisfied from the attached PlanStore (predictor skipped).
    std::uint64_t warm_hits = 0;
    /// Misses that ran a full predictor-driven planning pass.
    std::uint64_t planning_passes = 0;
    /// promote() calls that actually replaced a cached entry.
    std::uint64_t promotions = 0;
    /// Subset of promotions that swapped in a structurally different plan
    /// — a different granularity or single-bin flag, i.e. a U-exploration
    /// win that re-binned the matrix rather than re-picking one bin's
    /// kernel.
    std::uint64_t rebin_promotions = 0;
  };

  /// `predictor` and `engine` are used for every planning pass and must
  /// outlive the cache, as must `store` when non-null (the cache does not
  /// load or flush the store — the owner does; see SpmvService).
  /// `default_backend` is the backend stamped onto fresh predictor-driven
  /// plans; warm-started and promoted plans execute on whatever backend
  /// they carry (backend is a plan property — see exec/backend.hpp).
  /// `format_mode` likewise applies only to fresh predictor-driven plans:
  /// Auto lets the fmt estimator stamp per-bin formats (effective only on
  /// format-capable backends); warm-started and promoted plans keep their
  /// recorded per-bin formats either way.
  /// Throws std::invalid_argument when capacity is 0.
  PlanCache(const core::Predictor& predictor, const clsim::Engine& engine,
            std::size_t capacity, adapt::PlanStore* store = nullptr,
            exec::BackendKind default_backend = exec::BackendKind::Clsim,
            fmt::FormatMode format_mode = fmt::FormatMode::Csr);

  /// Return the cached runtime for `matrix`'s structure, planning it (or
  /// waiting for a concurrent planner) on a miss. Rethrows the planning
  /// failure, if any.
  [[nodiscard]] std::shared_ptr<const Entry> get(
      const std::shared_ptr<const CsrMatrix<T>>& matrix);

  /// Swap the cached entry for `key` to a runtime rebuilt from `plan`
  /// (revision must be strictly greater than the cached plan's). Returns
  /// the new entry, or nullptr when the promotion lost — key evicted, a
  /// newer revision already cached, or the slot still mid-build. On
  /// success the improved plan is also written through to the store
  /// (`gflops` annotates the store entry).
  std::shared_ptr<const Entry> promote(const Fingerprint& key,
                                       const core::Plan& plan,
                                       double gflops = 0.0);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] adapt::PlanStore* store() const { return store_; }

 private:
  using EntryFuture = std::shared_future<std::shared_ptr<const Entry>>;

  struct Slot {
    EntryFuture future;
    std::list<Fingerprint>::iterator lru_pos;
  };

  const core::Predictor& predictor_;
  const clsim::Engine& engine_;
  const std::size_t capacity_;
  adapt::PlanStore* store_;
  const exec::BackendKind default_backend_;
  const fmt::FormatMode format_mode_;

  mutable std::mutex mutex_;
  std::unordered_map<Fingerprint, Slot, FingerprintHash> slots_;
  std::list<Fingerprint> lru_;  ///< front = most recently used
  Stats stats_;
};

extern template class PlanCache<float>;
extern template class PlanCache<double>;

}  // namespace spmv::serve

#include "serve/service.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>

#include "core/exhaustive.hpp"
#include "obs/sink.hpp"
#include "trace/trace.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace spmv::serve {

template <typename T>
struct SpmvService<T>::Request {
  std::shared_ptr<const CsrMatrix<T>> matrix;
  std::vector<T> x;
  /// Dense right-hand-side columns in `x`. 1 = an ordinary SpMV request
  /// (coalescable with same-matrix neighbours); >1 = a true-SpMM request
  /// that executes alone through core::execute_plan_spmm.
  int width = 1;
  std::promise<std::vector<T>> result;
  util::Timer queued;  ///< started at submit; read at dispatch
  std::uint64_t trace_id = 0;        ///< nonzero only while tracing is on
  std::uint64_t trace_submit_ns = 0; ///< trace-clock submit time
};

template <typename T>
struct SpmvService<T>::Queue {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<Request> pending;
  bool stopping = false;
  std::vector<std::thread> workers;
  prof::ServeStats stats;  ///< guarded by mutex (cache counters excluded)
  bool profile_flushed = false;
  /// Arm level of the latest adapt promotion (prof::Exemplar::promo_level
  /// encoding; 0 until one lands). Guarded by mutex; stamped onto latency
  /// exemplars so a slow bucket names the plan change that preceded it.
  std::uint8_t last_promo_level = 0;
};

template <typename T>
SpmvService<T>::SpmvService(const core::Predictor& predictor,
                            const ServiceOptions& opts)
    : engine_(opts.engine != nullptr ? *opts.engine
                                     : clsim::default_engine()),
      opts_(opts),
      cache_(predictor, engine_, opts.cache_capacity, opts.plan_store,
             opts.backend, opts.format),
      queue_(std::make_unique<Queue>()) {
  if (opts_.workers < 1)
    throw std::invalid_argument("SpmvService: workers must be >= 1");
  if (opts_.max_batch < 1)
    throw std::invalid_argument("SpmvService: max_batch must be >= 1");
  // Warm start: load the store before the first request can miss the
  // cache (workers have not been spawned yet, submit() cannot run yet).
  if (opts_.plan_store != nullptr) opts_.plan_store->load();
  if (opts_.adapt.has_value())
    tuner_ = std::make_unique<adapt::BanditTuner<T>>(engine_, *opts_.adapt);
  queue_->workers.reserve(static_cast<std::size_t>(opts_.workers));
  for (int i = 0; i < opts_.workers; ++i)
    queue_->workers.emplace_back([this] { worker_loop(); });
}

template <typename T>
SpmvService<T>::~SpmvService() {
  shutdown();
}

template <typename T>
std::future<std::vector<T>> SpmvService<T>::submit(
    std::shared_ptr<const CsrMatrix<T>> a, std::vector<T> x) {
  return submit_spmm(std::move(a), std::move(x), 1);
}

template <typename T>
std::future<std::vector<T>> SpmvService<T>::submit_spmm(
    std::shared_ptr<const CsrMatrix<T>> a, std::vector<T> x, int width) {
  if (a == nullptr)
    throw std::invalid_argument("SpmvService::submit: null matrix");
  if (width < 1)
    throw std::invalid_argument("SpmvService::submit_spmm: width must be >= 1");
  if (x.size() != static_cast<std::size_t>(a->cols()) *
                      static_cast<std::size_t>(width))
    throw std::invalid_argument(
        "SpmvService::submit: x length does not match matrix cols * width");

  // The request's trace lifetime opens at submission; spans recorded on
  // whichever worker thread executes it carry the same id. Under 1-in-N
  // request sampling (TraceConfig::sample_every_n), a sampled-out request
  // keeps trace_id 0 and records nothing anywhere downstream.
  std::uint64_t trace_id = 0;
  std::uint64_t trace_submit_ns = 0;
  if (trace::sample_request()) {
    trace_id = trace::next_request_id();
    trace_submit_ns = trace::now_ns();
    trace::emit_async_begin("request", "serve", trace_id);
  }

  std::future<std::vector<T>> fut;
  {
    std::lock_guard<std::mutex> lock(queue_->mutex);
    if (queue_->stopping) {
      if (trace_id != 0) trace::emit_async_end("request", "serve", trace_id);
      throw std::runtime_error("SpmvService::submit: service is shut down");
    }
    if (queue_->pending.size() >= opts_.queue_high_water) {
      queue_->stats.rejected += 1;
      if (trace_id != 0) trace::emit_async_end("request", "serve", trace_id);
      throw QueueFullError(opts_.queue_high_water);
    }
    Request r;
    r.matrix = std::move(a);
    r.x = std::move(x);
    r.width = width;
    r.trace_id = trace_id;
    r.trace_submit_ns = trace_submit_ns;
    fut = r.result.get_future();
    queue_->pending.push_back(std::move(r));
    queue_->stats.requests += 1;
  }
  queue_->cv.notify_one();
  return fut;
}

template <typename T>
std::vector<T> SpmvService<T>::run(std::shared_ptr<const CsrMatrix<T>> a,
                                   std::vector<T> x) {
  return submit(std::move(a), std::move(x)).get();
}

template <typename T>
std::vector<T> SpmvService<T>::run_spmm(std::shared_ptr<const CsrMatrix<T>> a,
                                        std::vector<T> x, int width) {
  return submit_spmm(std::move(a), std::move(x), width).get();
}

template <typename T>
void SpmvService<T>::worker_loop() {
  Queue& q = *queue_;
  for (;;) {
    // Claim the queue head plus up to max_batch-1 later requests for the
    // same matrix object (pointer identity — structurally equal matrices
    // with different values must not share a batch).
    std::vector<Request> batch;
    {
      std::unique_lock<std::mutex> lock(q.mutex);
      q.cv.wait(lock, [&] { return q.stopping || !q.pending.empty(); });
      if (q.pending.empty()) return;  // stopping and fully drained
      batch.push_back(std::move(q.pending.front()));
      q.pending.pop_front();
      const CsrMatrix<T>* m = batch.front().matrix.get();
      // An SpMM request owns its whole execution; only single-vector
      // requests coalesce (and only with each other).
      if (batch.front().width == 1) {
        for (auto it = q.pending.begin();
             it != q.pending.end() &&
             batch.size() < static_cast<std::size_t>(opts_.max_batch);) {
          if (it->matrix.get() == m && it->width == 1) {
            batch.push_back(std::move(*it));
            it = q.pending.erase(it);
          } else {
            ++it;
          }
        }
      }
    }

    const bool spmm = batch.front().width > 1;
    const int width =
        spmm ? batch.front().width : static_cast<int>(batch.size());
    // All of the batch's worker-side spans adopt the head request's id —
    // the claimed-instants below tie the other batch members to it. Each
    // request also gets a queue-wait span (begin stamped at submit, on the
    // client's thread) so its full lifetime is span-covered.
    trace::ScopedRequestId rid_scope(batch.front().trace_id);
    const std::uint64_t claim_ns =
        trace::enabled() ? trace::now_ns() : 0;
    for (const Request& r : batch) {
      if (r.trace_id != 0) {
        trace::emit_complete("queue-wait", "serve", r.trace_submit_ns,
                             claim_ns, r.trace_id);
        trace::emit_async_instant("claimed", "serve", r.trace_id);
      }
    }

    std::vector<double> waits;
    waits.reserve(batch.size());
    double wait_sum = 0.0;
    double wait_max = 0.0;
    for (const Request& r : batch) {
      const double w = r.queued.elapsed_s();
      waits.push_back(w);
      wait_sum += w;
      wait_max = std::max(wait_max, w);
    }

    const auto fail_all = [&](std::exception_ptr e) {
      for (Request& r : batch) {
        if (r.trace_id != 0)
          trace::emit_async_end("request", "serve", r.trace_id);
        r.result.set_exception(e);
      }
    };

    std::shared_ptr<const typename PlanCache<T>::Entry> entry;
    try {
      trace::TraceSpan span("plan-cache-get", "serve");
      entry = cache_.get(batch.front().matrix);
    } catch (...) {
      fail_all(std::current_exception());
      continue;
    }

    // Execute against the REQUEST's matrix through the cached plan/bins:
    // the cache key ignores values, so the entry's own matrix may hold
    // different numbers (see plan_cache.hpp).
    const CsrMatrix<T>& a = *batch.front().matrix;
    const core::AutoSpmv<T>& rt = entry->runtime;
    const auto rows = static_cast<std::size_t>(a.rows());
    const auto cols = static_cast<std::size_t>(a.cols());
    util::Timer exec;
    // (latency, trace_id) per completed request: the id rides along so the
    // latency exemplar recorded below can point back into the trace stream.
    std::vector<std::pair<double, std::uint64_t>> latencies;
    latencies.reserve(batch.size());
    const auto complete = [&](Request& r, std::vector<T> y) {
      latencies.emplace_back(r.queued.elapsed_s(), r.trace_id);
      if (r.trace_id != 0) {
        // Claim-to-completion under the request's own id, so together with
        // its queue-wait span the request's lifetime is fully covered.
        trace::emit_complete("serve-batch", "serve", claim_ns,
                             trace::now_ns(), r.trace_id);
        trace::emit_async_end("request", "serve", r.trace_id);
      }
      r.result.set_value(std::move(y));
    };
    try {
      trace::TraceSpan span("execute-batch", "serve");
      span.arg("width", width);
      if (spmm) {
        // True SpMM: one blocked execution, the result block delivered
        // whole to the single owning request.
        std::vector<T> ys(rows * static_cast<std::size_t>(width));
        core::execute_plan_spmm(rt.backend(), a,
                                std::span<const T>(batch.front().x),
                                std::span<T>(ys), width, rt.bins(), rt.plan(),
                                nullptr, rt.layouts());
        complete(batch.front(), std::move(ys));
      } else if (width == 1) {
        std::vector<T> y(rows);
        // Per-plan execution: the runtime's resolved backend, not a
        // service-wide one, so mixed-backend plans coexist in one cache.
        // rt.layouts() (null when the plan is all-CSR) accelerates format
        // bins; PlanLayouts keys by matrix instance, so the request's own
        // matrix gets its own layout slot even under shared structure.
        core::execute_plan(rt.backend(), a,
                           std::span<const T>(batch.front().x),
                           std::span<T>(y), rt.bins(), rt.plan(),
                           rt.layouts());
        complete(batch.front(), std::move(y));
      } else {
        // Column-major gather/scatter around one batched execution.
        std::vector<T> xs(cols * static_cast<std::size_t>(width));
        std::vector<T> ys(rows * static_cast<std::size_t>(width));
        for (int b = 0; b < width; ++b)
          std::copy(batch[static_cast<std::size_t>(b)].x.begin(),
                    batch[static_cast<std::size_t>(b)].x.end(),
                    xs.begin() + static_cast<std::size_t>(b) * cols);
        core::execute_plan_batch(rt.backend(), a, std::span<const T>(xs),
                                 std::span<T>(ys), width, rt.bins(),
                                 rt.plan(), nullptr, rt.layouts());
        for (int b = 0; b < width; ++b) {
          const auto first = ys.begin() + static_cast<std::size_t>(b) * rows;
          complete(batch[static_cast<std::size_t>(b)],
                   std::vector<T>(first,
                                  first + static_cast<std::ptrdiff_t>(rows)));
        }
      }
    } catch (...) {
      fail_all(std::current_exception());
      continue;
    }
    const double exec_s = exec.elapsed_s();

    {
      std::lock_guard<std::mutex> lock(q.mutex);
      q.stats.add_batch(width);
      q.stats.queue_wait_total_s += wait_sum;
      q.stats.queue_wait_max_s = std::max(q.stats.queue_wait_max_s, wait_max);
      q.stats.exec_total_s += exec_s;
      for (const double w : waits) q.stats.queue_wait.add(w);
      // Every latency sample carries full provenance, so any histogram
      // bucket can answer "which request, through which plan, was that?".
      prof::Exemplar ex;
      ex.fingerprint = entry->key.row_hash;
      ex.plan_revision = rt.plan().revision;
      ex.backend = static_cast<std::uint8_t>(rt.plan().backend);
      ex.formats = rt.plan().uses_formats();
      ex.promo_level = q.last_promo_level;
      for (const auto& [lat, trace_id] : latencies) {
        ex.trace_id = trace_id;
        q.stats.request_latency.add(lat, ex);
      }
      ex.trace_id = batch.front().trace_id;
      q.stats.batch_exec.add(exec_s, ex);
    }
    if (opts_.obs_sink != nullptr) {
      opts_.obs_sink->push_stat("serve.batch_width", width);
      opts_.obs_sink->push_stat("serve.batch_exec_s", exec_s);
      opts_.obs_sink->push_stat("serve.queue_wait_max_s", wait_max);
    }

    // Online adaptation: offer this request to the bandit as a shadow-trial
    // opportunity. Runs synchronously on this worker (so shutdown's join
    // drains every in-flight trial) and holds the entry via shared_ptr, so
    // a trial can never touch a freed plan even if the cache evicts the
    // entry concurrently.
    if (tuner_ != nullptr) {
      const auto promo =
          tuner_->observe(entry->key, rt.plan(), rt.bins(), a,
                          std::span<const T>(batch.front().x));
      if (promo.has_value()) {
        cache_.promote(entry->key, promo->plan, promo->gflops);
        {
          std::lock_guard<std::mutex> lock(q.mutex);
          q.last_promo_level = promo->level;
        }
        if (opts_.obs_sink != nullptr)
          opts_.obs_sink->push_stat("adapt.promotion_level",
                                    static_cast<double>(promo->level));
      }
    }
  }
}

template <typename T>
void SpmvService<T>::shutdown() {
  {
    std::lock_guard<std::mutex> lock(queue_->mutex);
    queue_->stopping = true;
  }
  queue_->cv.notify_all();
  // Joining the workers also drains in-flight adapt trials — observe()
  // runs synchronously inside worker_loop — so by the time the store is
  // flushed below no trial can be touching any plan.
  for (std::thread& w : queue_->workers) {
    if (w.joinable()) w.join();
  }
  queue_->workers.clear();

  if (opts_.plan_store != nullptr) {
    try {
      opts_.plan_store->flush();
    } catch (const std::exception& e) {
      util::log_warn() << "SpmvService: plan store flush failed: " << e.what();
    }
  }

  if (opts_.profile != nullptr && !queue_->profile_flushed) {
    queue_->profile_flushed = true;
    opts_.profile->serve.merge(stats());
    if (tuner_ != nullptr) opts_.profile->adapt.merge(tuner_->stats());
  }
}

template <typename T>
prof::ServeStats SpmvService<T>::stats() const {
  prof::ServeStats s;
  {
    std::lock_guard<std::mutex> lock(queue_->mutex);
    s = queue_->stats;
  }
  const auto c = cache_.stats();
  s.cache_hits = c.hits;
  s.cache_misses = c.misses;
  s.cache_evictions = c.evictions;
  s.cache_warm_hits = c.warm_hits;
  s.planning_passes = c.planning_passes;
  s.cache_promotions = c.promotions;
  s.cache_rebin_promotions = c.rebin_promotions;
  return s;
}

template class SpmvService<float>;
template class SpmvService<double>;

}  // namespace spmv::serve

// Matrix fingerprints — the plan-cache key (serve/plan_cache.hpp). A
// fingerprint captures the *structure* a plan depends on: dimensions, NNZ,
// and a cheap content hash over the row_ptr array. Two matrices with equal
// fingerprints have (up to hash collision) the same row-length profile, so
// a plan tuned for one executes correctly and near-optimally for the other.
// Values are deliberately not hashed: plans are value-independent, and the
// serving layer always executes with the requesting matrix's own arrays.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "sparse/csr.hpp"
#include "sparse/types.hpp"

namespace spmv::serve {

struct Fingerprint {
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::int64_t nnz = 0;
  std::uint64_t row_hash = 0;  ///< FNV-1a over (sampled) row_ptr entries

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
};

/// Hasher for unordered containers keyed by Fingerprint.
struct FingerprintHash {
  [[nodiscard]] std::size_t operator()(const Fingerprint& f) const;
};

/// Fingerprint a raw CSR row-pointer array. Small matrices hash every
/// entry; beyond kMaxHashedEntries the array is stride-sampled (first and
/// last entries always included) so fingerprinting stays O(1)-ish for huge
/// matrices while still seeing the global row-length shape.
inline constexpr std::size_t kMaxHashedEntries = 1024;

[[nodiscard]] Fingerprint fingerprint_csr(std::int64_t rows, std::int64_t cols,
                                          std::int64_t nnz,
                                          std::span<const offset_t> row_ptr);

/// Fingerprint a CSR matrix.
template <typename T>
[[nodiscard]] Fingerprint fingerprint_of(const CsrMatrix<T>& a) {
  return fingerprint_csr(a.rows(), a.cols(), a.nnz(), a.row_ptr());
}

}  // namespace spmv::serve

#include "serve/fingerprint.hpp"

namespace spmv::serve {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

inline std::uint64_t fnv1a_mix(std::uint64_t h, std::uint64_t v) {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (v >> (8 * byte)) & 0xffULL;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

std::size_t FingerprintHash::operator()(const Fingerprint& f) const {
  std::uint64_t h = kFnvOffset;
  h = fnv1a_mix(h, static_cast<std::uint64_t>(f.rows));
  h = fnv1a_mix(h, static_cast<std::uint64_t>(f.cols));
  h = fnv1a_mix(h, static_cast<std::uint64_t>(f.nnz));
  h = fnv1a_mix(h, f.row_hash);
  return static_cast<std::size_t>(h);
}

Fingerprint fingerprint_csr(std::int64_t rows, std::int64_t cols,
                            std::int64_t nnz,
                            std::span<const offset_t> row_ptr) {
  Fingerprint f;
  f.rows = rows;
  f.cols = cols;
  f.nnz = nnz;

  std::uint64_t h = kFnvOffset;
  const std::size_t n = row_ptr.size();
  if (n > 0) {
    const std::size_t stride =
        n <= kMaxHashedEntries ? 1 : (n + kMaxHashedEntries - 1) /
                                         kMaxHashedEntries;
    for (std::size_t i = 0; i < n; i += stride)
      h = fnv1a_mix(h, static_cast<std::uint64_t>(row_ptr[i]));
    // The last entry (== nnz) anchors the tail regardless of stride.
    h = fnv1a_mix(h, static_cast<std::uint64_t>(row_ptr[n - 1]));
  }
  f.row_hash = h;
  return f;
}

}  // namespace spmv::serve

// SpmvService — a concurrent SpMV serving layer: clients submit (matrix,
// vector) requests; worker threads drain them through plan-cached runtimes
// (serve/plan_cache.hpp), coalescing queued vectors against the same matrix
// into one batched execution (core::execute_plan_batch).
//
//   spmv::core::HeuristicPredictor pred;
//   spmv::serve::SpmvService<float> service(pred);
//   auto fut = service.submit(matrix, x);   // matrix: shared_ptr<const Csr>
//   std::vector<float> y = fut.get();       // or service.run(matrix, x)
//
// Admission is bounded: submissions beyond ServiceOptions::queue_high_water
// queued requests are rejected with QueueFullError (backpressure — callers
// retry or shed load; requests already admitted are never dropped).
// Batching: a worker popping the queue head also claims up to max_batch-1
// later requests for the *same matrix object* (pointer identity — values
// matter, so structural equality is not enough) and executes them as one
// column-major Y = A·X batch.
//
// Warm start & online tuning (spmv::adapt): attach a PlanStore and the
// service loads it at construction (cache misses with a stored plan skip
// the predictor) and flushes it at shutdown. Set ServiceOptions::adapt and
// workers additionally shadow-measure alternative kernels on a fraction of
// requests, promoting improved plan revisions into the cache live.
//
// For serving ONE large matrix split into row partitions — per-shard plans
// and tuning plus tenant-weighted fair admission instead of this single
// FIFO — see spmv::shard::ShardedService (shard/sharded_service.hpp).
#pragma once

#include <cstddef>
#include <future>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "adapt/bandit.hpp"
#include "adapt/plan_store.hpp"
#include "clsim/engine.hpp"
#include "core/predictor.hpp"
#include "exec/backend.hpp"
#include "fmt/format.hpp"
#include "prof/profile.hpp"
#include "serve/plan_cache.hpp"
#include "sparse/csr.hpp"

namespace spmv::obs {
class StreamingSink;
}

namespace spmv::serve {

/// Thrown by submit()/run() when the admission queue is at its high-water
/// mark — the service's backpressure signal.
class QueueFullError : public std::runtime_error {
 public:
  explicit QueueFullError(std::size_t high_water)
      : std::runtime_error("SpmvService: admission queue full (high water " +
                           std::to_string(high_water) + ")") {}
};

struct ServiceOptions {
  std::size_t cache_capacity = 16;  ///< distinct matrix structures cached
  int workers = 2;                  ///< request-draining threads
  std::size_t queue_high_water = 256;  ///< admissions beyond this reject
  int max_batch = 8;                ///< vectors coalesced per execution
  /// Execution engine; null = clsim::default_engine(). Only used when a
  /// plan resolves to the clsim backend.
  const clsim::Engine* engine = nullptr;
  /// Backend stamped onto fresh predictor-driven plans. Execution always
  /// follows the *plan's* backend, so warm-started or promoted plans keep
  /// running on whatever backend they were tuned for regardless of this
  /// default (backend is a plan property — see exec/backend.hpp).
  exec::BackendKind backend = exec::BackendKind::Clsim;
  /// Per-bin format mode stamped onto fresh predictor-driven plans (the
  /// `--format csr|auto` knob). Auto lets the fmt estimator pick per-bin
  /// layouts; only effective when the plan's backend supports formats.
  /// Warm-started and promoted plans keep their recorded formats.
  fmt::FormatMode format = fmt::FormatMode::Csr;
  /// Optional telemetry sink: shutdown() folds the service's ServeStats
  /// into profile->serve (and adapt stats into profile->adapt). Must
  /// outlive the service.
  prof::RunProfile* profile = nullptr;
  /// Optional persistent plan store: loaded (exactly once, by the service)
  /// at construction, written through on planning/promotion, flushed at
  /// shutdown. Must outlive the service; do not pre-load it yourself.
  adapt::PlanStore* plan_store = nullptr;
  /// Enable online adaptive tuning: workers shadow-measure alternative
  /// kernels per AdaptOptions and promote improved plans into the cache.
  std::optional<adapt::AdaptOptions> adapt;
  /// Optional streaming sink (spmv::obs): workers push per-batch stat
  /// deltas (width, exec time) and promotion markers as they happen, so
  /// telemetry leaves a long-lived service continuously instead of only at
  /// shutdown. Trace spans reach the sink separately via sink.attach().
  /// Must outlive the service.
  obs::StreamingSink* obs_sink = nullptr;
};

template <typename T>
class SpmvService {
 public:
  /// Start `opts.workers` worker threads. `predictor` must outlive the
  /// service; it is shared by every planning pass.
  explicit SpmvService(const core::Predictor& predictor,
                       const ServiceOptions& opts = {});

  /// Drains outstanding requests, then joins the workers.
  ~SpmvService();

  SpmvService(const SpmvService&) = delete;
  SpmvService& operator=(const SpmvService&) = delete;

  /// Enqueue y = (*a)·x. The future yields the result vector (a.rows()
  /// long) or rethrows the execution/planning failure. Throws
  /// QueueFullError beyond the high-water mark, std::invalid_argument on a
  /// null matrix or size mismatch, std::runtime_error after shutdown().
  [[nodiscard]] std::future<std::vector<T>> submit(
      std::shared_ptr<const CsrMatrix<T>> a, std::vector<T> x);

  /// Blocking convenience wrapper: submit() + get().
  [[nodiscard]] std::vector<T> run(std::shared_ptr<const CsrMatrix<T>> a,
                                   std::vector<T> x);

  /// Enqueue a true-SpMM request: Y = (*a)·X for `width` dense right-hand
  /// sides stored column-major in `x` (width columns of a.cols() entries).
  /// The future yields the column-major result block (a.rows()*width
  /// entries). An SpMM request executes alone through
  /// core::execute_plan_spmm (one CSR traversal for the whole block) — it
  /// is never coalesced with queued single-vector requests, and they never
  /// join it. Same admission errors as submit(); width must be positive.
  [[nodiscard]] std::future<std::vector<T>> submit_spmm(
      std::shared_ptr<const CsrMatrix<T>> a, std::vector<T> x, int width);

  /// Blocking convenience wrapper: submit_spmm() + get().
  [[nodiscard]] std::vector<T> run_spmm(std::shared_ptr<const CsrMatrix<T>> a,
                                        std::vector<T> x, int width);

  /// Stop accepting work, drain the queue, join the workers — which also
  /// drains any in-flight adapt trials (trials run synchronously on the
  /// workers) — THEN flush the plan store, then fold stats into
  /// ServiceOptions::profile. Idempotent. A store flush failure is logged,
  /// never thrown (shutdown must complete).
  void shutdown();

  /// Snapshot of the serving statistics (includes plan-cache counters).
  [[nodiscard]] prof::ServeStats stats() const;

  /// The underlying plan cache (e.g. for warm-up or introspection).
  [[nodiscard]] PlanCache<T>& cache() { return cache_; }

 private:
  struct Request;
  struct Queue;

  void worker_loop();

  const clsim::Engine& engine_;
  ServiceOptions opts_;
  PlanCache<T> cache_;
  std::unique_ptr<adapt::BanditTuner<T>> tuner_;  ///< null when adapt off
  std::unique_ptr<Queue> queue_;  ///< pimpl: keeps <deque>/<thread> out of
                                  ///< the public header
};

extern template class SpmvService<float>;
extern template class SpmvService<double>;

}  // namespace spmv::serve

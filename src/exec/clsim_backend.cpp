// Kernel dispatch for the clsim execution model. The switch over the nine
// pool kernels and the batched-launch slicing used to live in
// kernels/registry.cpp; exec owns dispatch now, and the deprecated
// kernels::run_* overloads forward here.
#include "exec/clsim_backend.hpp"

#include <algorithm>
#include <stdexcept>

#include "kernels/binned_common.hpp"
#include "prof/counters.hpp"

namespace spmv::exec {

namespace {

using kernels::KernelId;

template <typename T>
void dispatch_binned(KernelId id, const clsim::Engine& engine,
                     const CsrMatrix<T>& a, std::span<const T> x,
                     std::span<T> y, std::span<const index_t> vrows,
                     index_t unit) {
  switch (id) {
    case KernelId::Serial:
      return kernels::kernel_serial(engine, a, x, y, vrows, unit);
    case KernelId::Sub2:
      return kernels::kernel_subvector<T, 2>(engine, a, x, y, vrows, unit);
    case KernelId::Sub4:
      return kernels::kernel_subvector<T, 4>(engine, a, x, y, vrows, unit);
    case KernelId::Sub8:
      return kernels::kernel_subvector<T, 8>(engine, a, x, y, vrows, unit);
    case KernelId::Sub16:
      return kernels::kernel_subvector<T, 16>(engine, a, x, y, vrows, unit);
    case KernelId::Sub32:
      return kernels::kernel_subvector<T, 32>(engine, a, x, y, vrows, unit);
    case KernelId::Sub64:
      return kernels::kernel_subvector<T, 64>(engine, a, x, y, vrows, unit);
    case KernelId::Sub128:
      return kernels::kernel_subvector<T, 128>(engine, a, x, y, vrows, unit);
    case KernelId::Vector:
      return kernels::kernel_vector(engine, a, x, y, vrows, unit);
  }
  throw std::invalid_argument("ClsimBackend: bad kernel id");
}

/// Widest native batch whose local-memory footprint fits the device's
/// 32 KiB arena (mirrors the local_array calls in kernel_serial_batch /
/// kernel_subvector_batch). 0 = no native variant; wider batches are
/// sliced into limit-sized launches.
template <typename T>
int native_batch_limit(KernelId id) {
  constexpr std::size_t kArena = 32 * 1024;
  constexpr std::size_t kGroup = 256, kWave = 64, kFactor = 4;
  std::size_t fixed = 0, per_batch = 0;
  if (id == KernelId::Serial) {
    fixed = kWave * (2 * sizeof(offset_t) + sizeof(index_t));
    per_batch = kWave * sizeof(T);  // one accumulator lane per wavefront
  } else if (kernels::has_batched_variant(id)) {
    // val/col stage + reduction buffer, plus per-subgroup batch sums.
    fixed = kFactor * kGroup * (2 * sizeof(T) + sizeof(index_t));
    per_batch = (kGroup / static_cast<std::size_t>(
                              kernels::lanes_per_row(id))) *
                sizeof(T);
  } else {
    return 0;
  }
  if (fixed >= kArena) return 0;
  const auto limit = static_cast<int>((kArena - fixed) / per_batch);
  return std::min(limit, kernels::kMaxNativeBatch);
}

/// Dispatch one natively batched launch (batch within native_batch_limit).
template <typename T>
void dispatch_native_batch(KernelId id, const clsim::Engine& engine,
                           const CsrMatrix<T>& a, std::span<const T> x,
                           std::span<T> y, int batch,
                           std::span<const index_t> vrows, index_t unit) {
  switch (id) {
    case KernelId::Serial:
      return kernels::kernel_serial_batch(engine, a, x, y, batch, vrows,
                                          unit);
    case KernelId::Sub2:
      return kernels::kernel_subvector_batch<T, 2>(engine, a, x, y, batch,
                                                   vrows, unit);
    case KernelId::Sub4:
      return kernels::kernel_subvector_batch<T, 4>(engine, a, x, y, batch,
                                                   vrows, unit);
    case KernelId::Sub8:
      return kernels::kernel_subvector_batch<T, 8>(engine, a, x, y, batch,
                                                   vrows, unit);
    case KernelId::Sub16:
      return kernels::kernel_subvector_batch<T, 16>(engine, a, x, y, batch,
                                                    vrows, unit);
    case KernelId::Sub32:
      return kernels::kernel_subvector_batch<T, 32>(engine, a, x, y, batch,
                                                    vrows, unit);
    case KernelId::Sub64:
      return kernels::kernel_subvector_batch<T, 64>(engine, a, x, y, batch,
                                                    vrows, unit);
    case KernelId::Sub128:
      return kernels::kernel_subvector_batch<T, 128>(engine, a, x, y, batch,
                                                     vrows, unit);
    case KernelId::Vector:
      break;
  }
  throw std::invalid_argument(
      "ClsimBackend: kernel has no batched variant");
}

/// Slice a wide batch into native limit-sized launches, falling back to one
/// single-vector launch per column when no native variant fits. The
/// single-vector fallbacks go through the backend's public run_binned so
/// they emit their own "kernel" trace spans, exactly as the pre-exec
/// kernels::run_binned_batch did.
template <typename T>
void dispatch_binned_batch(const ClsimBackend& self, KernelId id,
                           const clsim::Engine& engine, const CsrMatrix<T>& a,
                           std::span<const T> x, std::span<T> y, int batch,
                           std::span<const index_t> vrows, index_t unit) {
  const int limit = native_batch_limit<T>(id);
  if (limit >= 2) {
    // Native path, sliced so each launch's accumulators fit the arena.
    const auto cols = static_cast<std::size_t>(a.cols());
    const auto rows = static_cast<std::size_t>(a.rows());
    for (int b0 = 0; b0 < batch; b0 += limit) {
      const int w = std::min(limit, batch - b0);
      const auto xw = x.subspan(static_cast<std::size_t>(b0) * cols,
                                static_cast<std::size_t>(w) * cols);
      const auto yw = y.subspan(static_cast<std::size_t>(b0) * rows,
                                static_cast<std::size_t>(w) * rows);
      if (w == 1) {
        self.run_binned(id, a, xw, yw, vrows, unit);
      } else {
        dispatch_native_batch(id, engine, a, xw, yw, w, vrows, unit);
      }
    }
    return;
  }
  // Fallback: one single-vector launch per batch column. Used to be
  // silent — every column that misses the blocked path is now counted so
  // profiled runs can see the batch widths the native variants truncate.
  prof::add_spmm_fallback_columns(static_cast<std::uint64_t>(batch));
  for (int b = 0; b < batch; ++b) {
    self.run_binned(id, a, kernels::batch_column(x, a.cols(), b),
                    kernels::batch_column(y, a.rows(), b), vrows, unit);
  }
}

}  // namespace

void ClsimBackend::do_run_binned(kernels::KernelId id,
                                 const CsrMatrix<float>& a,
                                 std::span<const float> x, std::span<float> y,
                                 std::span<const index_t> vrows,
                                 index_t unit) const {
  dispatch_binned(id, *engine_, a, x, y, vrows, unit);
}

void ClsimBackend::do_run_binned(kernels::KernelId id,
                                 const CsrMatrix<double>& a,
                                 std::span<const double> x,
                                 std::span<double> y,
                                 std::span<const index_t> vrows,
                                 index_t unit) const {
  dispatch_binned(id, *engine_, a, x, y, vrows, unit);
}

void ClsimBackend::do_run_binned_batch(kernels::KernelId id,
                                       const CsrMatrix<float>& a,
                                       std::span<const float> x,
                                       std::span<float> y, int batch,
                                       std::span<const index_t> vrows,
                                       index_t unit) const {
  dispatch_binned_batch(*this, id, *engine_, a, x, y, batch, vrows, unit);
}

void ClsimBackend::do_run_binned_batch(kernels::KernelId id,
                                       const CsrMatrix<double>& a,
                                       std::span<const double> x,
                                       std::span<double> y, int batch,
                                       std::span<const index_t> vrows,
                                       index_t unit) const {
  dispatch_binned_batch(*this, id, *engine_, a, x, y, batch, vrows, unit);
}

}  // namespace spmv::exec

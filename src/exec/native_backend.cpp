#include "exec/native_backend.hpp"

#include <algorithm>
#include <cstddef>
#include <stdexcept>

#include "fmt/layout.hpp"
#include "kernels/binned_common.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace spmv::exec {

namespace {

using kernels::KernelId;
using kernels::RowMap;

/// Bins at or below this many slots run inline: a fork/join costs more
/// than the work it would distribute.
constexpr std::int64_t kInlineSlots = 256;

// --- per-row dot products, one per kernel shape -----------------------
//
// Every shape computes the same sum over one row's nonzeros; the id only
// changes how the stream is organized, mirroring how the clsim kernels
// differ only in thread organization.

/// Serial: plain scalar loop.
template <typename T>
T dot_plain(std::span<const offset_t> rp, std::span<const index_t> ci,
            std::span<const T> v, std::span<const T> x, index_t r) {
  const auto lo = static_cast<std::size_t>(rp[static_cast<std::size_t>(r)]);
  const auto hi =
      static_cast<std::size_t>(rp[static_cast<std::size_t>(r) + 1]);
  T acc{};
  for (std::size_t k = lo; k < hi; ++k)
    acc += v[k] * x[static_cast<std::size_t>(ci[k])];
  return acc;
}

/// Sub<X>: X partial accumulators over an X-wide unrolled stream — the CPU
/// analogue of X cooperating lanes; the partials live in SIMD registers.
template <typename T, int X>
T dot_lanes(std::span<const offset_t> rp, std::span<const index_t> ci,
            std::span<const T> v, std::span<const T> x, index_t r) {
  const auto lo = static_cast<std::size_t>(rp[static_cast<std::size_t>(r)]);
  const auto hi =
      static_cast<std::size_t>(rp[static_cast<std::size_t>(r) + 1]);
  T part[X] = {};
  std::size_t k = lo;
  for (; k + X <= hi; k += X)
    for (int l = 0; l < X; ++l)
      part[l] += v[k + l] * x[static_cast<std::size_t>(ci[k + l])];
  T acc{};
  for (int l = 0; l < X; ++l) acc += part[l];
  for (; k < hi; ++k) acc += v[k] * x[static_cast<std::size_t>(ci[k])];
  return acc;
}

/// Vector: whole-row simd reduction.
template <typename T>
T dot_simd(std::span<const offset_t> rp, std::span<const index_t> ci,
           std::span<const T> v, std::span<const T> x, index_t r) {
  const auto lo = static_cast<std::size_t>(rp[static_cast<std::size_t>(r)]);
  const auto hi =
      static_cast<std::size_t>(rp[static_cast<std::size_t>(r) + 1]);
  T acc{};
#ifdef _OPENMP
#pragma omp simd reduction(+ : acc)
#endif
  for (std::size_t k = lo; k < hi; ++k)
    acc += v[k] * x[static_cast<std::size_t>(ci[k])];
  return acc;
}

/// Partition the bin's slots across threads (dynamic chunks, like
/// kernels::spmv_omp_rows) and write each covered row's dot product. Slots
/// never alias a row within one launch, so the writes are race-free.
template <typename T, typename Dot>
void slot_loop(int threads, std::span<T> y, const RowMap& map, Dot dot) {
  const std::int64_t slots = map.total_slots();
#ifdef _OPENMP
  const int nt = threads > 0 ? threads : omp_get_max_threads();
#pragma omp parallel for schedule(dynamic, 64) num_threads(nt) \
    if (slots > kInlineSlots)
#else
  (void)threads;
#endif
  for (std::int64_t s = 0; s < slots; ++s) {
    const index_t r = map.slot_to_row(s);
    if (r < 0) continue;
    y[static_cast<std::size_t>(r)] = dot(r);
  }
}

template <typename T>
void native_binned(int threads, KernelId id, const CsrMatrix<T>& a,
                   std::span<const T> x, std::span<T> y,
                   std::span<const index_t> vrows, index_t unit) {
  const RowMap map{vrows, unit, a.rows()};
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  const auto v = a.vals();
  switch (id) {
    case KernelId::Serial:
      return slot_loop(threads, y, map,
                       [&](index_t r) { return dot_plain(rp, ci, v, x, r); });
    case KernelId::Sub2:
      return slot_loop(threads, y, map, [&](index_t r) {
        return dot_lanes<T, 2>(rp, ci, v, x, r);
      });
    case KernelId::Sub4:
      return slot_loop(threads, y, map, [&](index_t r) {
        return dot_lanes<T, 4>(rp, ci, v, x, r);
      });
    case KernelId::Sub8:
      return slot_loop(threads, y, map, [&](index_t r) {
        return dot_lanes<T, 8>(rp, ci, v, x, r);
      });
    case KernelId::Sub16:
      return slot_loop(threads, y, map, [&](index_t r) {
        return dot_lanes<T, 16>(rp, ci, v, x, r);
      });
    case KernelId::Sub32:
      return slot_loop(threads, y, map, [&](index_t r) {
        return dot_lanes<T, 32>(rp, ci, v, x, r);
      });
    case KernelId::Sub64:
      return slot_loop(threads, y, map, [&](index_t r) {
        return dot_lanes<T, 64>(rp, ci, v, x, r);
      });
    case KernelId::Sub128:
      return slot_loop(threads, y, map, [&](index_t r) {
        return dot_lanes<T, 128>(rp, ci, v, x, r);
      });
    case KernelId::Vector:
      return slot_loop(threads, y, map,
                       [&](index_t r) { return dot_simd(rp, ci, v, x, r); });
  }
  throw std::invalid_argument("NativeBackend: bad kernel id");
}

/// Batched Y = A·X: one CSR traversal per row feeds a stack block of up to
/// kMaxNativeBatch accumulators (the kernel_serial_batch trick). The shape
/// id does not change the traversal here — with the whole batch in
/// registers the inner b-loop already saturates the SIMD units — so every
/// kernel shares this path (clsim, by contrast, has no batched Vector).
template <typename T>
void native_binned_batch(int threads, const CsrMatrix<T>& a,
                         std::span<const T> x, std::span<T> y, int batch,
                         std::span<const index_t> vrows, index_t unit) {
  const RowMap map{vrows, unit, a.rows()};
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  const auto v = a.vals();
  const auto n = static_cast<std::size_t>(a.cols());
  const auto m = static_cast<std::size_t>(a.rows());
  const std::int64_t slots = map.total_slots();
#ifndef _OPENMP
  (void)threads;
#endif
  for (int b0 = 0; b0 < batch; b0 += kernels::kMaxNativeBatch) {
    const int w = std::min(kernels::kMaxNativeBatch, batch - b0);
    const std::size_t xoff = static_cast<std::size_t>(b0) * n;
    const std::size_t yoff = static_cast<std::size_t>(b0) * m;
#ifdef _OPENMP
    const int nt = threads > 0 ? threads : omp_get_max_threads();
#pragma omp parallel for schedule(dynamic, 64) num_threads(nt) \
    if (slots > kInlineSlots)
#endif
    for (std::int64_t s = 0; s < slots; ++s) {
      const index_t r = map.slot_to_row(s);
      if (r < 0) continue;
      const auto lo =
          static_cast<std::size_t>(rp[static_cast<std::size_t>(r)]);
      const auto hi =
          static_cast<std::size_t>(rp[static_cast<std::size_t>(r) + 1]);
      T acc[kernels::kMaxNativeBatch] = {};
      for (std::size_t k = lo; k < hi; ++k) {
        const T av = v[k];
        const auto c = static_cast<std::size_t>(ci[k]);
        for (int b = 0; b < w; ++b)
          acc[b] += av * x[xoff + static_cast<std::size_t>(b) * n + c];
      }
      for (int b = 0; b < w; ++b)
        y[yoff + static_cast<std::size_t>(b) * m +
          static_cast<std::size_t>(r)] = acc[b];
    }
  }
}

// --- layout kernels (spmv::fmt) ---------------------------------------
//
// One kernel per materialized layout, scalar + batched. Each overwrites y
// for every row the layout covers (empty covered rows get 0) and touches
// nothing else — the same composition contract as the CSR slot loop, so a
// plan can mix CSR bins and layout bins freely.

/// ELL: per packed row, walk the column-major padded stream. Entries are
/// packed from k=0, so the first pad column (-1) ends the row.
template <typename T>
void native_ell(int threads, const fmt::EllBin<T>& e, std::span<const T> x,
                std::span<T> y) {
  const auto nrows = static_cast<std::int64_t>(e.rows.size());
#ifdef _OPENMP
  const int nt = threads > 0 ? threads : omp_get_max_threads();
#pragma omp parallel for schedule(static) num_threads(nt) \
    if (nrows > kInlineSlots)
#else
  (void)threads;
#endif
  for (std::int64_t r = 0; r < nrows; ++r) {
    T acc{};
    for (index_t k = 0; k < e.width; ++k) {
      const auto idx = static_cast<std::size_t>(k) *
                           static_cast<std::size_t>(nrows) +
                       static_cast<std::size_t>(r);
      const index_t c = e.col[idx];
      if (c < 0) break;
      acc += e.val[idx] * x[static_cast<std::size_t>(c)];
    }
    y[static_cast<std::size_t>(e.rows[static_cast<std::size_t>(r)])] = acc;
  }
}

/// COO: zero every covered row, then accumulate triples chunk-parallel.
/// Chunks never split a row (layout invariant), so concurrent `+=` into y
/// target disjoint entries.
template <typename T>
void native_coo(int threads, const fmt::CooBin<T>& c, std::span<const T> x,
                std::span<T> y) {
  const auto nrows = static_cast<std::int64_t>(c.rows.size());
#ifdef _OPENMP
  const int nt = threads > 0 ? threads : omp_get_max_threads();
#pragma omp parallel for schedule(static) num_threads(nt) \
    if (nrows > kInlineSlots)
#else
  (void)threads;
#endif
  for (std::int64_t r = 0; r < nrows; ++r)
    y[static_cast<std::size_t>(c.rows[static_cast<std::size_t>(r)])] = T{};
  const auto nchunks = static_cast<std::int64_t>(c.chunk_ptr.size()) - 1;
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 1) num_threads(nt) \
    if (nchunks > 1)
#endif
  for (std::int64_t ch = 0; ch < nchunks; ++ch) {
    const std::size_t lo = c.chunk_ptr[static_cast<std::size_t>(ch)];
    const std::size_t hi = c.chunk_ptr[static_cast<std::size_t>(ch) + 1];
    for (std::size_t j = lo; j < hi; ++j)
      y[static_cast<std::size_t>(c.entry_row[j])] +=
          c.entry_val[j] * x[static_cast<std::size_t>(c.entry_col[j])];
  }
}

/// Dcsr: per packed row, decode the 16-bit delta stream from the base
/// column while accumulating (the first entry's delta is 0 by
/// construction).
template <typename T>
void native_dcsr(int threads, const fmt::DeltaBin<T>& d, std::span<const T> x,
                 std::span<T> y) {
  const auto nrows = static_cast<std::int64_t>(d.rows.size());
#ifdef _OPENMP
  const int nt = threads > 0 ? threads : omp_get_max_threads();
#pragma omp parallel for schedule(dynamic, 64) num_threads(nt) \
    if (nrows > kInlineSlots)
#else
  (void)threads;
#endif
  for (std::int64_t r = 0; r < nrows; ++r) {
    const auto pr = static_cast<std::size_t>(r);
    const auto lo = static_cast<std::size_t>(d.row_ptr[pr]);
    const auto hi = static_cast<std::size_t>(d.row_ptr[pr + 1]);
    index_t c = d.base_col[pr];
    T acc{};
    for (std::size_t j = lo; j < hi; ++j) {
      c += static_cast<index_t>(d.deltas[j]);
      acc += d.vals[j] * x[static_cast<std::size_t>(c)];
    }
    y[static_cast<std::size_t>(d.rows[pr])] = acc;
  }
}

/// Batched layout execution: the same traversals feeding a stack block of
/// up to kMaxNativeBatch accumulators per row (the native_binned_batch
/// trick), blocked by b0 for wider batches.
template <typename T>
void native_ell_batch(int threads, const fmt::EllBin<T>& e,
                      std::span<const T> x, std::span<T> y, int batch,
                      std::size_t n, std::size_t m) {
  const auto nrows = static_cast<std::int64_t>(e.rows.size());
#ifndef _OPENMP
  (void)threads;
#endif
  for (int b0 = 0; b0 < batch; b0 += kernels::kMaxNativeBatch) {
    const int w = std::min(kernels::kMaxNativeBatch, batch - b0);
    const std::size_t xoff = static_cast<std::size_t>(b0) * n;
    const std::size_t yoff = static_cast<std::size_t>(b0) * m;
#ifdef _OPENMP
    const int nt = threads > 0 ? threads : omp_get_max_threads();
#pragma omp parallel for schedule(static) num_threads(nt) \
    if (nrows > kInlineSlots)
#endif
    for (std::int64_t r = 0; r < nrows; ++r) {
      T acc[kernels::kMaxNativeBatch] = {};
      for (index_t k = 0; k < e.width; ++k) {
        const auto idx = static_cast<std::size_t>(k) *
                             static_cast<std::size_t>(nrows) +
                         static_cast<std::size_t>(r);
        const index_t c = e.col[idx];
        if (c < 0) break;
        const T av = e.val[idx];
        for (int b = 0; b < w; ++b)
          acc[b] += av * x[xoff + static_cast<std::size_t>(b) * n +
                           static_cast<std::size_t>(c)];
      }
      const auto row =
          static_cast<std::size_t>(e.rows[static_cast<std::size_t>(r)]);
      for (int b = 0; b < w; ++b)
        y[yoff + static_cast<std::size_t>(b) * m + row] = acc[b];
    }
  }
}

template <typename T>
void native_coo_batch(int threads, const fmt::CooBin<T>& c,
                      std::span<const T> x, std::span<T> y, int batch,
                      std::size_t n, std::size_t m) {
  const auto nrows = static_cast<std::int64_t>(c.rows.size());
  const auto nchunks = static_cast<std::int64_t>(c.chunk_ptr.size()) - 1;
#ifndef _OPENMP
  (void)threads;
#endif
  for (int b0 = 0; b0 < batch; b0 += kernels::kMaxNativeBatch) {
    const int w = std::min(kernels::kMaxNativeBatch, batch - b0);
    const std::size_t xoff = static_cast<std::size_t>(b0) * n;
    const std::size_t yoff = static_cast<std::size_t>(b0) * m;
#ifdef _OPENMP
    const int nt = threads > 0 ? threads : omp_get_max_threads();
#pragma omp parallel for schedule(static) num_threads(nt) \
    if (nrows > kInlineSlots)
#endif
    for (std::int64_t r = 0; r < nrows; ++r) {
      const auto row =
          static_cast<std::size_t>(c.rows[static_cast<std::size_t>(r)]);
      for (int b = 0; b < w; ++b)
        y[yoff + static_cast<std::size_t>(b) * m + row] = T{};
    }
#ifdef _OPENMP
    const int nt2 = threads > 0 ? threads : omp_get_max_threads();
#pragma omp parallel for schedule(dynamic, 1) num_threads(nt2) \
    if (nchunks > 1)
#endif
    for (std::int64_t ch = 0; ch < nchunks; ++ch) {
      const std::size_t lo = c.chunk_ptr[static_cast<std::size_t>(ch)];
      const std::size_t hi = c.chunk_ptr[static_cast<std::size_t>(ch) + 1];
      for (std::size_t j = lo; j < hi; ++j) {
        const auto row = static_cast<std::size_t>(c.entry_row[j]);
        const auto col = static_cast<std::size_t>(c.entry_col[j]);
        const T av = c.entry_val[j];
        for (int b = 0; b < w; ++b)
          y[yoff + static_cast<std::size_t>(b) * m + row] +=
              av * x[xoff + static_cast<std::size_t>(b) * n + col];
      }
    }
  }
}

template <typename T>
void native_dcsr_batch(int threads, const fmt::DeltaBin<T>& d,
                       std::span<const T> x, std::span<T> y, int batch,
                       std::size_t n, std::size_t m) {
  const auto nrows = static_cast<std::int64_t>(d.rows.size());
#ifndef _OPENMP
  (void)threads;
#endif
  for (int b0 = 0; b0 < batch; b0 += kernels::kMaxNativeBatch) {
    const int w = std::min(kernels::kMaxNativeBatch, batch - b0);
    const std::size_t xoff = static_cast<std::size_t>(b0) * n;
    const std::size_t yoff = static_cast<std::size_t>(b0) * m;
#ifdef _OPENMP
    const int nt = threads > 0 ? threads : omp_get_max_threads();
#pragma omp parallel for schedule(dynamic, 64) num_threads(nt) \
    if (nrows > kInlineSlots)
#endif
    for (std::int64_t r = 0; r < nrows; ++r) {
      const auto pr = static_cast<std::size_t>(r);
      const auto lo = static_cast<std::size_t>(d.row_ptr[pr]);
      const auto hi = static_cast<std::size_t>(d.row_ptr[pr + 1]);
      index_t col = d.base_col[pr];
      T acc[kernels::kMaxNativeBatch] = {};
      for (std::size_t j = lo; j < hi; ++j) {
        col += static_cast<index_t>(d.deltas[j]);
        const T av = d.vals[j];
        const auto c = static_cast<std::size_t>(col);
        for (int b = 0; b < w; ++b)
          acc[b] += av * x[xoff + static_cast<std::size_t>(b) * n + c];
      }
      const auto row = static_cast<std::size_t>(d.rows[pr]);
      for (int b = 0; b < w; ++b)
        y[yoff + static_cast<std::size_t>(b) * m + row] = acc[b];
    }
  }
}

template <typename T>
void native_layout(int threads, const fmt::BinLayout<T>& l,
                   std::span<const T> x, std::span<T> y) {
  switch (l.kind) {
    case fmt::FormatKind::Ell: return native_ell(threads, l.ell, x, y);
    case fmt::FormatKind::Coo: return native_coo(threads, l.coo, x, y);
    case fmt::FormatKind::Dcsr: return native_dcsr(threads, l.dcsr, x, y);
    case fmt::FormatKind::Csr: break;
  }
  throw std::invalid_argument("NativeBackend: bad layout kind");
}

template <typename T>
void native_layout_batch(int threads, const fmt::BinLayout<T>& l,
                         std::span<const T> x, std::span<T> y, int batch,
                         std::size_t n, std::size_t m) {
  switch (l.kind) {
    case fmt::FormatKind::Ell:
      return native_ell_batch(threads, l.ell, x, y, batch, n, m);
    case fmt::FormatKind::Coo:
      return native_coo_batch(threads, l.coo, x, y, batch, n, m);
    case fmt::FormatKind::Dcsr:
      return native_dcsr_batch(threads, l.dcsr, x, y, batch, n, m);
    case fmt::FormatKind::Csr: break;
  }
  throw std::invalid_argument("NativeBackend: bad layout kind");
}

}  // namespace

void NativeBackend::do_run_binned(kernels::KernelId id,
                                  const CsrMatrix<float>& a,
                                  std::span<const float> x,
                                  std::span<float> y,
                                  std::span<const index_t> vrows,
                                  index_t unit) const {
  native_binned(options_.threads, id, a, x, y, vrows, unit);
}

void NativeBackend::do_run_binned(kernels::KernelId id,
                                  const CsrMatrix<double>& a,
                                  std::span<const double> x,
                                  std::span<double> y,
                                  std::span<const index_t> vrows,
                                  index_t unit) const {
  native_binned(options_.threads, id, a, x, y, vrows, unit);
}

void NativeBackend::do_run_binned_batch(kernels::KernelId id,
                                        const CsrMatrix<float>& a,
                                        std::span<const float> x,
                                        std::span<float> y, int batch,
                                        std::span<const index_t> vrows,
                                        index_t unit) const {
  (void)id;
  native_binned_batch(options_.threads, a, x, y, batch, vrows, unit);
}

void NativeBackend::do_run_binned_batch(kernels::KernelId id,
                                        const CsrMatrix<double>& a,
                                        std::span<const double> x,
                                        std::span<double> y, int batch,
                                        std::span<const index_t> vrows,
                                        index_t unit) const {
  (void)id;
  native_binned_batch(options_.threads, a, x, y, batch, vrows, unit);
}

void NativeBackend::do_run_layout(const CsrMatrix<float>& a,
                                  const fmt::BinLayout<float>& l,
                                  std::span<const float> x,
                                  std::span<float> y) const {
  (void)a;
  native_layout(options_.threads, l, x, y);
}

void NativeBackend::do_run_layout(const CsrMatrix<double>& a,
                                  const fmt::BinLayout<double>& l,
                                  std::span<const double> x,
                                  std::span<double> y) const {
  (void)a;
  native_layout(options_.threads, l, x, y);
}

void NativeBackend::do_run_layout_batch(const CsrMatrix<float>& a,
                                        const fmt::BinLayout<float>& l,
                                        std::span<const float> x,
                                        std::span<float> y, int batch) const {
  native_layout_batch(options_.threads, l, x, y, batch,
                      static_cast<std::size_t>(a.cols()),
                      static_cast<std::size_t>(a.rows()));
}

void NativeBackend::do_run_layout_batch(const CsrMatrix<double>& a,
                                        const fmt::BinLayout<double>& l,
                                        std::span<const double> x,
                                        std::span<double> y, int batch) const {
  native_layout_batch(options_.threads, l, x, y, batch,
                      static_cast<std::size_t>(a.cols()),
                      static_cast<std::size_t>(a.rows()));
}

}  // namespace spmv::exec

#include "exec/native_backend.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>

#include "fmt/layout.hpp"
#include "kernels/binned_common.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace spmv::exec {

namespace {

using kernels::KernelId;
using kernels::RowMap;

/// Bins at or below this many slots run inline: a fork/join costs more
/// than the work it would distribute.
constexpr std::int64_t kInlineSlots = 256;

// --- per-row dot products, one per kernel shape -----------------------
//
// Every shape computes the same sum over one row's nonzeros; the id only
// changes how the stream is organized, mirroring how the clsim kernels
// differ only in thread organization.
//
// The CSR-path kernels (scalar, batched, and SpMM) spell every
// multiply-add as std::fma rather than `acc += a * b`: with
// -ffp-contract=fast the compiler may contract one inlined copy of a loop
// to FMA and leave another as mul+add, which silently breaks the
// bit-identity contracts between the single-vector, batched, and SpMM
// paths. An explicit fma is one correctly-rounded operation everywhere,
// so identical accumulation order in the source guarantees identical bits
// in the output regardless of inline site or optimization level.

/// Serial: plain scalar loop.
template <typename T>
T dot_plain(std::span<const offset_t> rp, std::span<const index_t> ci,
            std::span<const T> v, std::span<const T> x, index_t r) {
  const auto lo = static_cast<std::size_t>(rp[static_cast<std::size_t>(r)]);
  const auto hi =
      static_cast<std::size_t>(rp[static_cast<std::size_t>(r) + 1]);
  T acc{};
  for (std::size_t k = lo; k < hi; ++k)
    acc = std::fma(v[k], x[static_cast<std::size_t>(ci[k])], acc);
  return acc;
}

/// Sub<X>: X partial accumulators over an X-wide unrolled stream — the CPU
/// analogue of X cooperating lanes; the partials live in SIMD registers.
template <typename T, int X>
T dot_lanes(std::span<const offset_t> rp, std::span<const index_t> ci,
            std::span<const T> v, std::span<const T> x, index_t r) {
  const auto lo = static_cast<std::size_t>(rp[static_cast<std::size_t>(r)]);
  const auto hi =
      static_cast<std::size_t>(rp[static_cast<std::size_t>(r) + 1]);
  T part[X] = {};
  std::size_t k = lo;
  for (; k + X <= hi; k += X)
    for (int l = 0; l < X; ++l)
      part[l] =
          std::fma(v[k + l], x[static_cast<std::size_t>(ci[k + l])], part[l]);
  T acc{};
  for (int l = 0; l < X; ++l) acc += part[l];
  for (; k < hi; ++k)
    acc = std::fma(v[k], x[static_cast<std::size_t>(ci[k])], acc);
  return acc;
}

/// Vector: whole-row simd reduction. noinline: the simd pragma lets the
/// vectorizer pick the reduction shape, and two inlined copies of this
/// loop could legally vectorize differently. Keeping one out-of-line
/// instantiation per T means the single-vector path and the SpMM path
/// (which reuses this function per column) execute the same machine code,
/// so their bits cannot diverge.
template <typename T>
#if defined(__GNUC__) || defined(__clang__)
__attribute__((noinline))
#endif
T dot_simd(std::span<const offset_t> rp, std::span<const index_t> ci,
           std::span<const T> v, std::span<const T> x, index_t r) {
  const auto lo = static_cast<std::size_t>(rp[static_cast<std::size_t>(r)]);
  const auto hi =
      static_cast<std::size_t>(rp[static_cast<std::size_t>(r) + 1]);
  T acc{};
#ifdef _OPENMP
#pragma omp simd reduction(+ : acc)
#endif
  for (std::size_t k = lo; k < hi; ++k)
    acc += v[k] * x[static_cast<std::size_t>(ci[k])];
  return acc;
}

/// Partition the bin's slots across threads (dynamic chunks, like
/// kernels::spmv_omp_rows) and write each covered row's dot product. Slots
/// never alias a row within one launch, so the writes are race-free.
template <typename T, typename Dot>
void slot_loop(int threads, std::span<T> y, const RowMap& map, Dot dot) {
  const std::int64_t slots = map.total_slots();
#ifdef _OPENMP
  const int nt = threads > 0 ? threads : omp_get_max_threads();
#pragma omp parallel for schedule(dynamic, 64) num_threads(nt) \
    if (slots > kInlineSlots)
#else
  (void)threads;
#endif
  for (std::int64_t s = 0; s < slots; ++s) {
    const index_t r = map.slot_to_row(s);
    if (r < 0) continue;
    y[static_cast<std::size_t>(r)] = dot(r);
  }
}

template <typename T>
void native_binned(int threads, KernelId id, const CsrMatrix<T>& a,
                   std::span<const T> x, std::span<T> y,
                   std::span<const index_t> vrows, index_t unit) {
  const RowMap map{vrows, unit, a.rows()};
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  const auto v = a.vals();
  switch (id) {
    case KernelId::Serial:
      return slot_loop(threads, y, map,
                       [&](index_t r) { return dot_plain(rp, ci, v, x, r); });
    case KernelId::Sub2:
      return slot_loop(threads, y, map, [&](index_t r) {
        return dot_lanes<T, 2>(rp, ci, v, x, r);
      });
    case KernelId::Sub4:
      return slot_loop(threads, y, map, [&](index_t r) {
        return dot_lanes<T, 4>(rp, ci, v, x, r);
      });
    case KernelId::Sub8:
      return slot_loop(threads, y, map, [&](index_t r) {
        return dot_lanes<T, 8>(rp, ci, v, x, r);
      });
    case KernelId::Sub16:
      return slot_loop(threads, y, map, [&](index_t r) {
        return dot_lanes<T, 16>(rp, ci, v, x, r);
      });
    case KernelId::Sub32:
      return slot_loop(threads, y, map, [&](index_t r) {
        return dot_lanes<T, 32>(rp, ci, v, x, r);
      });
    case KernelId::Sub64:
      return slot_loop(threads, y, map, [&](index_t r) {
        return dot_lanes<T, 64>(rp, ci, v, x, r);
      });
    case KernelId::Sub128:
      return slot_loop(threads, y, map, [&](index_t r) {
        return dot_lanes<T, 128>(rp, ci, v, x, r);
      });
    case KernelId::Vector:
      return slot_loop(threads, y, map,
                       [&](index_t r) { return dot_simd(rp, ci, v, x, r); });
  }
  throw std::invalid_argument("NativeBackend: bad kernel id");
}

/// Batched Y = A·X: one CSR traversal per row feeds a stack block of up to
/// kMaxNativeBatch accumulators (the kernel_serial_batch trick). The shape
/// id does not change the traversal here — with the whole batch in
/// registers the inner b-loop already saturates the SIMD units — so every
/// kernel shares this path (clsim, by contrast, has no batched Vector).
template <typename T>
void native_binned_batch(int threads, const CsrMatrix<T>& a,
                         std::span<const T> x, std::span<T> y, int batch,
                         std::span<const index_t> vrows, index_t unit) {
  const RowMap map{vrows, unit, a.rows()};
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  const auto v = a.vals();
  const auto n = static_cast<std::size_t>(a.cols());
  const auto m = static_cast<std::size_t>(a.rows());
  const std::int64_t slots = map.total_slots();
#ifndef _OPENMP
  (void)threads;
#endif
  for (int b0 = 0; b0 < batch; b0 += kernels::kMaxNativeBatch) {
    const int w = std::min(kernels::kMaxNativeBatch, batch - b0);
    const std::size_t xoff = static_cast<std::size_t>(b0) * n;
    const std::size_t yoff = static_cast<std::size_t>(b0) * m;
#ifdef _OPENMP
    const int nt = threads > 0 ? threads : omp_get_max_threads();
#pragma omp parallel for schedule(dynamic, 64) num_threads(nt) \
    if (slots > kInlineSlots)
#endif
    for (std::int64_t s = 0; s < slots; ++s) {
      const index_t r = map.slot_to_row(s);
      if (r < 0) continue;
      const auto lo =
          static_cast<std::size_t>(rp[static_cast<std::size_t>(r)]);
      const auto hi =
          static_cast<std::size_t>(rp[static_cast<std::size_t>(r) + 1]);
      T acc[kernels::kMaxNativeBatch] = {};
      for (std::size_t k = lo; k < hi; ++k) {
        const T av = v[k];
        const auto c = static_cast<std::size_t>(ci[k]);
        for (int b = 0; b < w; ++b)
          acc[b] = std::fma(
              av, x[xoff + static_cast<std::size_t>(b) * n + c], acc[b]);
      }
      for (int b = 0; b < w; ++b)
        y[yoff + static_cast<std::size_t>(b) * m +
          static_cast<std::size_t>(r)] = acc[b];
    }
  }
}

// --- true SpMM (blocked multi-vector traversal) -----------------------
//
// One CSR traversal of the bin's rows feeds a register tile of output
// columns: each row's (val, col) stream is read once per column tile
// instead of once per column, which is where the memory-bound ceiling
// lifts for solver workloads. Per output column the products accumulate in
// exactly the order the single-vector kernel of the same shape uses
// (dot_plain / dot_lanes<X> / dot_simd), so a width-N SpMM is
// bit-identical to N single-vector runs — the contract run_spmm promises
// and tests/test_differential.cpp enforces.

/// Column-tile width for Sub<X>: the tile keeps X*W partial accumulators
/// on the stack, so wider lane counts take narrower tiles (X*W <= 256
/// scalars — half a 4 KiB page of doubles), capped at the batch blocking
/// the other multi-vector paths use.
constexpr int spmm_tile_width(int lanes) {
  const int w = 256 / lanes;
  return w > kernels::kMaxNativeBatch
             ? kernels::kMaxNativeBatch
             : (w < 1 ? 1 : w);
}

/// Sampled average column span of the bin's rows: the slice of one X
/// column a traversal actually touches per row. For banded/stencil
/// structures this is a narrow sliding window no matter how tall the
/// vectors are, so the span — not the vector length — bounds how many
/// columns can share one pass over A.
std::size_t sampled_span(std::span<const offset_t> rp,
                         std::span<const index_t> ci, const RowMap& map) {
  const std::int64_t slots = map.total_slots();
  const std::int64_t stride = std::max<std::int64_t>(1, slots / 64);
  std::size_t total = 0, rows = 0;
  for (std::int64_t s = 0; s < slots; s += stride) {
    const index_t r = map.slot_to_row(s);
    if (r < 0) continue;
    const auto lo = static_cast<std::size_t>(rp[static_cast<std::size_t>(r)]);
    const auto hi =
        static_cast<std::size_t>(rp[static_cast<std::size_t>(r) + 1]);
    if (hi <= lo) continue;
    index_t cmin = ci[lo], cmax = ci[lo];
    for (std::size_t k = lo + 1; k < hi; ++k) {
      cmin = std::min(cmin, ci[k]);
      cmax = std::max(cmax, ci[k]);
    }
    total += static_cast<std::size_t>(cmax - cmin) + 1;
    ++rows;
  }
  return rows > 0 ? std::max<std::size_t>(total / rows, 1) : 1;
}

/// Runtime column-block step: the columns traversed together must keep
/// their gathered X working set (columns x per-row span) cache-resident,
/// or each nonzero gathers `w` lines a full vector apart and the blocked
/// traversal loses more on X than it saves on A. Half an 8 MiB LLC share
/// is the budget; scattered rows (span ~ cols) take narrower blocks,
/// banded rows take the whole register tile.
template <typename T>
int spmm_block_step(int tile_w, std::size_t span) {
  constexpr std::size_t kXBudgetBytes = std::size_t{4} << 20;
  const std::size_t fit = kXBudgetBytes / (std::max<std::size_t>(span, 1) *
                                           sizeof(T));
  return std::clamp(static_cast<int>(std::min<std::size_t>(
                        fit, static_cast<std::size_t>(tile_w))),
                    1, tile_w);
}

/// Drive `tile` over every slot for each `step`-wide block of output
/// columns (step <= W, the tile's compile-time accumulator capacity).
/// `tile(r, xoff, w, out)` must fill out[0..w) with row r's dot products
/// against columns [xoff/n, xoff/n + w); out arrives zero-initialized for
/// exactly those w entries. Per output column the traversal order is
/// independent of `step` — blocking only decides which columns share one
/// pass over A, so the bit-identity contract is unaffected.
template <typename T, int W, typename Tile>
void spmm_loop(int threads, std::span<T> y, const RowMap& map, int width,
               std::size_t m, int step, Tile tile) {
  const std::int64_t slots = map.total_slots();
#ifndef _OPENMP
  (void)threads;
#endif
  for (int b0 = 0; b0 < width; b0 += step) {
    const int w = std::min(step, width - b0);
    const std::size_t yoff = static_cast<std::size_t>(b0) * m;
#ifdef _OPENMP
    const int nt = threads > 0 ? threads : omp_get_max_threads();
#pragma omp parallel for schedule(dynamic, 64) num_threads(nt) \
    if (slots > kInlineSlots)
#endif
    for (std::int64_t s = 0; s < slots; ++s) {
      const index_t r = map.slot_to_row(s);
      if (r < 0) continue;
      T out[W];
      for (int b = 0; b < w; ++b) out[b] = T{};
      tile(r, b0, w, out);
      for (int b = 0; b < w; ++b)
        y[yoff + static_cast<std::size_t>(b) * m +
          static_cast<std::size_t>(r)] = out[b];
    }
  }
}

/// Sub<X> tile: column-outer over W*X partials. For each output column the
/// inner loops are the exact dot_lanes<T, X> shape — X-wide unrolled main
/// loop, ascending lane sum, ascending-k tail — so per column the bits
/// match by construction AND the compiler vectorizes the lane loop the
/// same way it does in the single-vector kernel. The column loop outside
/// means the row's (val, col) stream is re-read per column from L1 instead
/// of from memory: cache blocking on A, register blocking per column.
template <typename T, int X, int W>
void spmm_lanes(int threads, const CsrMatrix<T>& a, std::span<const T> x,
                std::span<T> y, int width, const RowMap& map,
                std::size_t span) {
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  const auto v = a.vals();
  const auto n = static_cast<std::size_t>(a.cols());
  const auto m = static_cast<std::size_t>(a.rows());
  const int step = spmm_block_step<T>(W, span);
  spmm_loop<T, W>(
      threads, y, map, width, m, step,
      [&](index_t r, int b0, int w, T* out) {
        const std::size_t xoff = static_cast<std::size_t>(b0) * n;
        const auto lo =
            static_cast<std::size_t>(rp[static_cast<std::size_t>(r)]);
        const auto hi =
            static_cast<std::size_t>(rp[static_cast<std::size_t>(r) + 1]);
        for (int b = 0; b < w; ++b) {
          const std::size_t xcol = xoff + static_cast<std::size_t>(b) * n;
          T part[X] = {};
          std::size_t k = lo;
          for (; k + X <= hi; k += X)
            for (int l = 0; l < X; ++l)
              part[l] = std::fma(
                  v[k + l],
                  x[xcol + static_cast<std::size_t>(ci[k + l])], part[l]);
          T acc{};
          for (int l = 0; l < X; ++l) acc += part[l];
          for (; k < hi; ++k)
            acc = std::fma(v[k], x[xcol + static_cast<std::size_t>(ci[k])],
                           acc);
          out[b] = acc;
        }
      });
}

template <typename T>
void native_spmm(int threads, KernelId id, const CsrMatrix<T>& a,
                 std::span<const T> x, std::span<T> y, int width,
                 std::span<const index_t> vrows, index_t unit) {
  const RowMap map{vrows, unit, a.rows()};
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  const auto v = a.vals();
  const auto n = static_cast<std::size_t>(a.cols());
  const auto m = static_cast<std::size_t>(a.rows());
  const std::size_t span = sampled_span(rp, ci, map);
  switch (id) {
    case KernelId::Serial:
      // Column-outer, ascending-k inner: per column exactly dot_plain,
      // with the row's stream L1-resident across the column block.
      return spmm_loop<T, kernels::kMaxNativeBatch>(
          threads, y, map, width, m,
          spmm_block_step<T>(kernels::kMaxNativeBatch, span),
          [&](index_t r, int b0, int w, T* out) {
            const std::size_t xoff = static_cast<std::size_t>(b0) * n;
            const auto lo =
                static_cast<std::size_t>(rp[static_cast<std::size_t>(r)]);
            const auto hi =
                static_cast<std::size_t>(rp[static_cast<std::size_t>(r) + 1]);
            for (int b = 0; b < w; ++b) {
              const std::size_t xcol =
                  xoff + static_cast<std::size_t>(b) * n;
              T acc{};
              for (std::size_t k = lo; k < hi; ++k)
                acc = std::fma(
                    v[k], x[xcol + static_cast<std::size_t>(ci[k])], acc);
              out[b] = acc;
            }
          });
    case KernelId::Sub2:
      return spmm_lanes<T, 2, spmm_tile_width(2)>(threads, a, x, y, width,
                                                  map, span);
    case KernelId::Sub4:
      return spmm_lanes<T, 4, spmm_tile_width(4)>(threads, a, x, y, width,
                                                  map, span);
    case KernelId::Sub8:
      return spmm_lanes<T, 8, spmm_tile_width(8)>(threads, a, x, y, width,
                                                  map, span);
    case KernelId::Sub16:
      return spmm_lanes<T, 16, spmm_tile_width(16)>(threads, a, x, y, width,
                                                    map, span);
    case KernelId::Sub32:
      return spmm_lanes<T, 32, spmm_tile_width(32)>(threads, a, x, y, width,
                                                    map, span);
    case KernelId::Sub64:
      return spmm_lanes<T, 64, spmm_tile_width(64)>(threads, a, x, y, width,
                                                    map, span);
    case KernelId::Sub128:
      return spmm_lanes<T, 128, spmm_tile_width(128)>(threads, a, x, y,
                                                      width, map, span);
    case KernelId::Vector:
      // dot_simd's association is whatever the compiler vectorized for the
      // single-vector kernel, so the only way to match it bit-for-bit is
      // to reuse the function itself per column. The row's (val, col)
      // stream still stays L1-resident across the tile — cache blocking
      // rather than register blocking.
      return spmm_loop<T, kernels::kMaxNativeBatch>(
          threads, y, map, width, m,
          spmm_block_step<T>(kernels::kMaxNativeBatch, span),
          [&](index_t r, int b0, int w, T* out) {
            const std::size_t xoff = static_cast<std::size_t>(b0) * n;
            for (int b = 0; b < w; ++b)
              out[b] = dot_simd(
                  rp, ci, v,
                  x.subspan(xoff + static_cast<std::size_t>(b) * n, n), r);
          });
  }
  throw std::invalid_argument("NativeBackend: bad kernel id");
}

// --- layout kernels (spmv::fmt) ---------------------------------------
//
// One kernel per materialized layout, scalar + batched. Each overwrites y
// for every row the layout covers (empty covered rows get 0) and touches
// nothing else — the same composition contract as the CSR slot loop, so a
// plan can mix CSR bins and layout bins freely.

/// ELL: per packed row, walk the column-major padded stream. Entries are
/// packed from k=0, so the first pad column (-1) ends the row.
template <typename T>
void native_ell(int threads, const fmt::EllBin<T>& e, std::span<const T> x,
                std::span<T> y) {
  const auto nrows = static_cast<std::int64_t>(e.rows.size());
#ifdef _OPENMP
  const int nt = threads > 0 ? threads : omp_get_max_threads();
#pragma omp parallel for schedule(static) num_threads(nt) \
    if (nrows > kInlineSlots)
#else
  (void)threads;
#endif
  for (std::int64_t r = 0; r < nrows; ++r) {
    T acc{};
    for (index_t k = 0; k < e.width; ++k) {
      const auto idx = static_cast<std::size_t>(k) *
                           static_cast<std::size_t>(nrows) +
                       static_cast<std::size_t>(r);
      const index_t c = e.col[idx];
      if (c < 0) break;
      acc += e.val[idx] * x[static_cast<std::size_t>(c)];
    }
    y[static_cast<std::size_t>(e.rows[static_cast<std::size_t>(r)])] = acc;
  }
}

/// COO: zero every covered row, then accumulate triples chunk-parallel.
/// Chunks never split a row (layout invariant), so concurrent `+=` into y
/// target disjoint entries.
template <typename T>
void native_coo(int threads, const fmt::CooBin<T>& c, std::span<const T> x,
                std::span<T> y) {
  const auto nrows = static_cast<std::int64_t>(c.rows.size());
#ifdef _OPENMP
  const int nt = threads > 0 ? threads : omp_get_max_threads();
#pragma omp parallel for schedule(static) num_threads(nt) \
    if (nrows > kInlineSlots)
#else
  (void)threads;
#endif
  for (std::int64_t r = 0; r < nrows; ++r)
    y[static_cast<std::size_t>(c.rows[static_cast<std::size_t>(r)])] = T{};
  const auto nchunks = static_cast<std::int64_t>(c.chunk_ptr.size()) - 1;
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 1) num_threads(nt) \
    if (nchunks > 1)
#endif
  for (std::int64_t ch = 0; ch < nchunks; ++ch) {
    const std::size_t lo = c.chunk_ptr[static_cast<std::size_t>(ch)];
    const std::size_t hi = c.chunk_ptr[static_cast<std::size_t>(ch) + 1];
    for (std::size_t j = lo; j < hi; ++j)
      y[static_cast<std::size_t>(c.entry_row[j])] +=
          c.entry_val[j] * x[static_cast<std::size_t>(c.entry_col[j])];
  }
}

/// Dcsr: per packed row, decode the 16-bit delta stream from the base
/// column while accumulating (the first entry's delta is 0 by
/// construction).
template <typename T>
void native_dcsr(int threads, const fmt::DeltaBin<T>& d, std::span<const T> x,
                 std::span<T> y) {
  const auto nrows = static_cast<std::int64_t>(d.rows.size());
#ifdef _OPENMP
  const int nt = threads > 0 ? threads : omp_get_max_threads();
#pragma omp parallel for schedule(dynamic, 64) num_threads(nt) \
    if (nrows > kInlineSlots)
#else
  (void)threads;
#endif
  for (std::int64_t r = 0; r < nrows; ++r) {
    const auto pr = static_cast<std::size_t>(r);
    const auto lo = static_cast<std::size_t>(d.row_ptr[pr]);
    const auto hi = static_cast<std::size_t>(d.row_ptr[pr + 1]);
    index_t c = d.base_col[pr];
    T acc{};
    for (std::size_t j = lo; j < hi; ++j) {
      c += static_cast<index_t>(d.deltas[j]);
      acc += d.vals[j] * x[static_cast<std::size_t>(c)];
    }
    y[static_cast<std::size_t>(d.rows[pr])] = acc;
  }
}

/// Batched layout execution: the same traversals feeding a stack block of
/// up to kMaxNativeBatch accumulators per row (the native_binned_batch
/// trick), blocked by b0 for wider batches.
template <typename T>
void native_ell_batch(int threads, const fmt::EllBin<T>& e,
                      std::span<const T> x, std::span<T> y, int batch,
                      std::size_t n, std::size_t m) {
  const auto nrows = static_cast<std::int64_t>(e.rows.size());
#ifndef _OPENMP
  (void)threads;
#endif
  for (int b0 = 0; b0 < batch; b0 += kernels::kMaxNativeBatch) {
    const int w = std::min(kernels::kMaxNativeBatch, batch - b0);
    const std::size_t xoff = static_cast<std::size_t>(b0) * n;
    const std::size_t yoff = static_cast<std::size_t>(b0) * m;
#ifdef _OPENMP
    const int nt = threads > 0 ? threads : omp_get_max_threads();
#pragma omp parallel for schedule(static) num_threads(nt) \
    if (nrows > kInlineSlots)
#endif
    for (std::int64_t r = 0; r < nrows; ++r) {
      T acc[kernels::kMaxNativeBatch] = {};
      for (index_t k = 0; k < e.width; ++k) {
        const auto idx = static_cast<std::size_t>(k) *
                             static_cast<std::size_t>(nrows) +
                         static_cast<std::size_t>(r);
        const index_t c = e.col[idx];
        if (c < 0) break;
        const T av = e.val[idx];
        for (int b = 0; b < w; ++b)
          acc[b] += av * x[xoff + static_cast<std::size_t>(b) * n +
                           static_cast<std::size_t>(c)];
      }
      const auto row =
          static_cast<std::size_t>(e.rows[static_cast<std::size_t>(r)]);
      for (int b = 0; b < w; ++b)
        y[yoff + static_cast<std::size_t>(b) * m + row] = acc[b];
    }
  }
}

template <typename T>
void native_coo_batch(int threads, const fmt::CooBin<T>& c,
                      std::span<const T> x, std::span<T> y, int batch,
                      std::size_t n, std::size_t m) {
  const auto nrows = static_cast<std::int64_t>(c.rows.size());
  const auto nchunks = static_cast<std::int64_t>(c.chunk_ptr.size()) - 1;
#ifndef _OPENMP
  (void)threads;
#endif
  for (int b0 = 0; b0 < batch; b0 += kernels::kMaxNativeBatch) {
    const int w = std::min(kernels::kMaxNativeBatch, batch - b0);
    const std::size_t xoff = static_cast<std::size_t>(b0) * n;
    const std::size_t yoff = static_cast<std::size_t>(b0) * m;
#ifdef _OPENMP
    const int nt = threads > 0 ? threads : omp_get_max_threads();
#pragma omp parallel for schedule(static) num_threads(nt) \
    if (nrows > kInlineSlots)
#endif
    for (std::int64_t r = 0; r < nrows; ++r) {
      const auto row =
          static_cast<std::size_t>(c.rows[static_cast<std::size_t>(r)]);
      for (int b = 0; b < w; ++b)
        y[yoff + static_cast<std::size_t>(b) * m + row] = T{};
    }
#ifdef _OPENMP
    const int nt2 = threads > 0 ? threads : omp_get_max_threads();
#pragma omp parallel for schedule(dynamic, 1) num_threads(nt2) \
    if (nchunks > 1)
#endif
    for (std::int64_t ch = 0; ch < nchunks; ++ch) {
      const std::size_t lo = c.chunk_ptr[static_cast<std::size_t>(ch)];
      const std::size_t hi = c.chunk_ptr[static_cast<std::size_t>(ch) + 1];
      for (std::size_t j = lo; j < hi; ++j) {
        const auto row = static_cast<std::size_t>(c.entry_row[j]);
        const auto col = static_cast<std::size_t>(c.entry_col[j]);
        const T av = c.entry_val[j];
        for (int b = 0; b < w; ++b)
          y[yoff + static_cast<std::size_t>(b) * m + row] +=
              av * x[xoff + static_cast<std::size_t>(b) * n + col];
      }
    }
  }
}

template <typename T>
void native_dcsr_batch(int threads, const fmt::DeltaBin<T>& d,
                       std::span<const T> x, std::span<T> y, int batch,
                       std::size_t n, std::size_t m) {
  const auto nrows = static_cast<std::int64_t>(d.rows.size());
#ifndef _OPENMP
  (void)threads;
#endif
  for (int b0 = 0; b0 < batch; b0 += kernels::kMaxNativeBatch) {
    const int w = std::min(kernels::kMaxNativeBatch, batch - b0);
    const std::size_t xoff = static_cast<std::size_t>(b0) * n;
    const std::size_t yoff = static_cast<std::size_t>(b0) * m;
#ifdef _OPENMP
    const int nt = threads > 0 ? threads : omp_get_max_threads();
#pragma omp parallel for schedule(dynamic, 64) num_threads(nt) \
    if (nrows > kInlineSlots)
#endif
    for (std::int64_t r = 0; r < nrows; ++r) {
      const auto pr = static_cast<std::size_t>(r);
      const auto lo = static_cast<std::size_t>(d.row_ptr[pr]);
      const auto hi = static_cast<std::size_t>(d.row_ptr[pr + 1]);
      index_t col = d.base_col[pr];
      T acc[kernels::kMaxNativeBatch] = {};
      for (std::size_t j = lo; j < hi; ++j) {
        col += static_cast<index_t>(d.deltas[j]);
        const T av = d.vals[j];
        const auto c = static_cast<std::size_t>(col);
        for (int b = 0; b < w; ++b)
          acc[b] += av * x[xoff + static_cast<std::size_t>(b) * n + c];
      }
      const auto row = static_cast<std::size_t>(d.rows[pr]);
      for (int b = 0; b < w; ++b)
        y[yoff + static_cast<std::size_t>(b) * m + row] = acc[b];
    }
  }
}

template <typename T>
void native_layout(int threads, const fmt::BinLayout<T>& l,
                   std::span<const T> x, std::span<T> y) {
  switch (l.kind) {
    case fmt::FormatKind::Ell: return native_ell(threads, l.ell, x, y);
    case fmt::FormatKind::Coo: return native_coo(threads, l.coo, x, y);
    case fmt::FormatKind::Dcsr: return native_dcsr(threads, l.dcsr, x, y);
    case fmt::FormatKind::Csr: break;
  }
  throw std::invalid_argument("NativeBackend: bad layout kind");
}

template <typename T>
void native_layout_batch(int threads, const fmt::BinLayout<T>& l,
                         std::span<const T> x, std::span<T> y, int batch,
                         std::size_t n, std::size_t m) {
  switch (l.kind) {
    case fmt::FormatKind::Ell:
      return native_ell_batch(threads, l.ell, x, y, batch, n, m);
    case fmt::FormatKind::Coo:
      return native_coo_batch(threads, l.coo, x, y, batch, n, m);
    case fmt::FormatKind::Dcsr:
      return native_dcsr_batch(threads, l.dcsr, x, y, batch, n, m);
    case fmt::FormatKind::Csr: break;
  }
  throw std::invalid_argument("NativeBackend: bad layout kind");
}

}  // namespace

void NativeBackend::do_run_binned(kernels::KernelId id,
                                  const CsrMatrix<float>& a,
                                  std::span<const float> x,
                                  std::span<float> y,
                                  std::span<const index_t> vrows,
                                  index_t unit) const {
  native_binned(options_.threads, id, a, x, y, vrows, unit);
}

void NativeBackend::do_run_binned(kernels::KernelId id,
                                  const CsrMatrix<double>& a,
                                  std::span<const double> x,
                                  std::span<double> y,
                                  std::span<const index_t> vrows,
                                  index_t unit) const {
  native_binned(options_.threads, id, a, x, y, vrows, unit);
}

void NativeBackend::do_run_binned_batch(kernels::KernelId id,
                                        const CsrMatrix<float>& a,
                                        std::span<const float> x,
                                        std::span<float> y, int batch,
                                        std::span<const index_t> vrows,
                                        index_t unit) const {
  (void)id;
  native_binned_batch(options_.threads, a, x, y, batch, vrows, unit);
}

void NativeBackend::do_run_binned_batch(kernels::KernelId id,
                                        const CsrMatrix<double>& a,
                                        std::span<const double> x,
                                        std::span<double> y, int batch,
                                        std::span<const index_t> vrows,
                                        index_t unit) const {
  (void)id;
  native_binned_batch(options_.threads, a, x, y, batch, vrows, unit);
}

void NativeBackend::do_run_spmm(kernels::KernelId id, const CsrMatrix<float>& a,
                                std::span<const float> x, std::span<float> y,
                                int width, std::span<const index_t> vrows,
                                index_t unit) const {
  native_spmm(options_.threads, id, a, x, y, width, vrows, unit);
}

void NativeBackend::do_run_spmm(kernels::KernelId id,
                                const CsrMatrix<double>& a,
                                std::span<const double> x,
                                std::span<double> y, int width,
                                std::span<const index_t> vrows,
                                index_t unit) const {
  native_spmm(options_.threads, id, a, x, y, width, vrows, unit);
}

void NativeBackend::do_run_layout(const CsrMatrix<float>& a,
                                  const fmt::BinLayout<float>& l,
                                  std::span<const float> x,
                                  std::span<float> y) const {
  (void)a;
  native_layout(options_.threads, l, x, y);
}

void NativeBackend::do_run_layout(const CsrMatrix<double>& a,
                                  const fmt::BinLayout<double>& l,
                                  std::span<const double> x,
                                  std::span<double> y) const {
  (void)a;
  native_layout(options_.threads, l, x, y);
}

void NativeBackend::do_run_layout_batch(const CsrMatrix<float>& a,
                                        const fmt::BinLayout<float>& l,
                                        std::span<const float> x,
                                        std::span<float> y, int batch) const {
  native_layout_batch(options_.threads, l, x, y, batch,
                      static_cast<std::size_t>(a.cols()),
                      static_cast<std::size_t>(a.rows()));
}

void NativeBackend::do_run_layout_batch(const CsrMatrix<double>& a,
                                        const fmt::BinLayout<double>& l,
                                        std::span<const double> x,
                                        std::span<double> y, int batch) const {
  native_layout_batch(options_.threads, l, x, y, batch,
                      static_cast<std::size_t>(a.cols()),
                      static_cast<std::size_t>(a.rows()));
}

}  // namespace spmv::exec

// spmv::exec — the execution-backend seam. A Backend owns kernel dispatch
// (run_binned / run_full / run_binned_batch) for one execution model; the
// rest of the stack (core::AutoSpmv, serve::SpmvService, adapt::BanditTuner)
// targets this interface instead of clsim::Engine directly, so a plan can
// execute on the paper's lockstep simulator (ClsimBackend) or on tight
// auto-vectorized CPU loops (NativeBackend) without any caller changing.
//
// Backend choice is a *plan* property, not a service property: core::Plan
// carries a BackendKind that travels through plan_io / the PlanStore, and
// the Tuner resolves it to an instance at build time (see tuner.hpp). That
// is what lets the adapt layer promote a backend swap per matrix and have
// the PlanCache/PlanStore machinery persist it like any other tuning
// decision.
//
// Semantics contract: every backend computes the same per-row products over
// a bin's covered rows (the RowMap rule in kernels/binned_common.hpp) —
// kernel ids select a thread-organization *shape*, never a different
// result. tests/test_differential.cpp enforces this across the full random
// corpus for every backend.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "kernels/registry.hpp"
#include "sparse/csr.hpp"

namespace spmv::clsim {
class Engine;
}  // namespace spmv::clsim

namespace spmv::fmt {
template <typename T>
struct BinLayout;
}  // namespace spmv::fmt

namespace spmv::exec {

/// The available execution backends. Clsim is the paper's work-group
/// lockstep simulator (reference semantics); Native lowers the same bin
/// shapes to auto-vectorized OpenMP loops on the host CPU.
enum class BackendKind : int {
  Clsim = 0,
  Native,
};

inline constexpr int kBackendCount = 2;

/// All backends in enum order (mirrors kernels::all_kernels()).
const std::vector<BackendKind>& all_backends();

/// Stable display name: "clsim" or "native".
std::string backend_name(BackendKind kind);

/// backend_name as a static string — for call sites that must not allocate
/// (trace spans store the pointer).
const char* backend_cname(BackendKind kind);

/// Inverse of backend_name(). Throws std::invalid_argument on unknown
/// names (same contract as kernels::kernel_from_name).
BackendKind backend_from_name(const std::string& name);

/// Non-throwing inverse of backend_name(): nullopt on unknown names. The
/// parse used by plan_io, where a bad name must become a counted skip, not
/// an uncaught exception type.
std::optional<BackendKind> try_backend_from_name(const std::string& name);

/// Abstract kernel-dispatch interface. Implementations are stateless apart
/// from configuration and safe to share across threads; the public entry
/// points validate arguments and emit the per-kernel trace spans, then
/// forward to the per-scalar-type virtual hooks (virtual functions cannot
/// be templates, so float and double are spelled out — the library's two
/// instantiated scalar types).
class Backend {
 public:
  virtual ~Backend() = default;

  [[nodiscard]] virtual BackendKind kind() const = 0;
  /// Static display name (backend_cname(kind())).
  [[nodiscard]] const char* name() const { return backend_cname(kind()); }

  /// The clsim engine whose launch counters this backend drives, or null
  /// for backends that never touch clsim. Profiled plan execution merges
  /// counter deltas only when an engine is present.
  [[nodiscard]] virtual const clsim::Engine* engine() const { return nullptr; }

  /// Execute pool kernel `id` over the actual rows covered by the virtual
  /// rows `vrows` at granularity `unit`, writing only those entries of y.
  /// Rows not covered by `vrows` are untouched, so the caller can compose
  /// a full SpMV from per-bin launches.
  void run_binned(kernels::KernelId id, const CsrMatrix<float>& a,
                  std::span<const float> x, std::span<float> y,
                  std::span<const index_t> vrows, index_t unit) const;
  void run_binned(kernels::KernelId id, const CsrMatrix<double>& a,
                  std::span<const double> x, std::span<double> y,
                  std::span<const index_t> vrows, index_t unit) const;

  /// Convenience: run pool kernel `id` over the whole matrix (all rows in
  /// a single implicit bin of granularity 1).
  void run_full(kernels::KernelId id, const CsrMatrix<float>& a,
                std::span<const float> x, std::span<float> y) const;
  void run_full(kernels::KernelId id, const CsrMatrix<double>& a,
                std::span<const double> x, std::span<double> y) const;

  /// Batched Y = A·X over the bin's rows: `batch` input vectors stored
  /// column-major in `x` (kernels::batch_column layout, each a.cols()
  /// long), results written to the matching columns of `y` (each a.rows()
  /// long). Backends share one CSR traversal across the batch where their
  /// execution model allows it.
  void run_binned_batch(kernels::KernelId id, const CsrMatrix<float>& a,
                        std::span<const float> x, std::span<float> y,
                        int batch, std::span<const index_t> vrows,
                        index_t unit) const;
  void run_binned_batch(kernels::KernelId id, const CsrMatrix<double>& a,
                        std::span<const double> x, std::span<double> y,
                        int batch, std::span<const index_t> vrows,
                        index_t unit) const;

  /// True SpMM over the bin's rows: Y = A·X for `width` dense right-hand
  /// sides stored column-major (kernels::batch_column layout, like
  /// run_binned_batch). Unlike run_binned_batch — whose per-backend batch
  /// kernels may cap the width they traverse in one pass and whose shapes
  /// follow the simulated execution model — run_spmm is the solver-facing
  /// entry: backends with a native SpMM (supports_spmm() true) share one
  /// CSR traversal across a register/cache-blocked column tile at any
  /// width, and guarantee that per output column the products accumulate in
  /// exactly the order the single-vector kernel `id` would use, so a
  /// width-N run is bit-identical to N single-vector runs. Backends without
  /// one lower width-N to N single-vector launches (counted in
  /// prof::spmm_fallback_columns), which satisfies the same contract
  /// trivially. width == 1 routes through run_binned.
  void run_spmm(kernels::KernelId id, const CsrMatrix<float>& a,
                std::span<const float> x, std::span<float> y, int width,
                std::span<const index_t> vrows, index_t unit) const;
  void run_spmm(kernels::KernelId id, const CsrMatrix<double>& a,
                std::span<const double> x, std::span<double> y, int width,
                std::span<const index_t> vrows, index_t unit) const;

  /// Whether this backend has a blocked one-traversal SpMM (do_run_spmm
  /// override). False means run_spmm falls back to per-column
  /// single-vector launches.
  [[nodiscard]] virtual bool supports_spmm() const { return false; }

  /// Whether this backend executes materialized bin layouts (spmv::fmt).
  /// Backends that return false always execute bins from the shared CSR
  /// arrays — core::execute_plan only takes the layout path when the
  /// resolved backend supports it, which is how ClsimBackend stays a CSR
  /// reference the differential suite can compare formats against.
  [[nodiscard]] virtual bool supports_formats() const { return false; }

  /// Execute one materialized bin layout: y entries for every row the
  /// layout covers are overwritten (empty covered rows get 0), all others
  /// untouched — the same composition contract as run_binned. `a` supplies
  /// the extents for validation; the layout carries the actual arrays.
  /// Throws std::logic_error when supports_formats() is false.
  void run_layout(const CsrMatrix<float>& a, const fmt::BinLayout<float>& l,
                  std::span<const float> x, std::span<float> y) const;
  void run_layout(const CsrMatrix<double>& a, const fmt::BinLayout<double>& l,
                  std::span<const double> x, std::span<double> y) const;

  /// Batched layout execution (kernels::batch_column layout, like
  /// run_binned_batch).
  void run_layout_batch(const CsrMatrix<float>& a,
                        const fmt::BinLayout<float>& l,
                        std::span<const float> x, std::span<float> y,
                        int batch) const;
  void run_layout_batch(const CsrMatrix<double>& a,
                        const fmt::BinLayout<double>& l,
                        std::span<const double> x, std::span<double> y,
                        int batch) const;

 protected:
  virtual void do_run_binned(kernels::KernelId id, const CsrMatrix<float>& a,
                             std::span<const float> x, std::span<float> y,
                             std::span<const index_t> vrows,
                             index_t unit) const = 0;
  virtual void do_run_binned(kernels::KernelId id, const CsrMatrix<double>& a,
                             std::span<const double> x, std::span<double> y,
                             std::span<const index_t> vrows,
                             index_t unit) const = 0;
  /// Only called with batch >= 2 and validated extents; batch == 1 routes
  /// through do_run_binned.
  virtual void do_run_binned_batch(kernels::KernelId id,
                                   const CsrMatrix<float>& a,
                                   std::span<const float> x,
                                   std::span<float> y, int batch,
                                   std::span<const index_t> vrows,
                                   index_t unit) const = 0;
  virtual void do_run_binned_batch(kernels::KernelId id,
                                   const CsrMatrix<double>& a,
                                   std::span<const double> x,
                                   std::span<double> y, int batch,
                                   std::span<const index_t> vrows,
                                   index_t unit) const = 0;

  /// SpMM hooks. Not pure: the base implementations execute the width
  /// columns one by one through do_run_binned (counting each column in
  /// prof::spmm_fallback_columns), so only backends with a real blocked
  /// SpMM (supports_spmm() true) need to override them. Only called with
  /// width >= 2 and validated extents; width == 1 routes through
  /// do_run_binned.
  virtual void do_run_spmm(kernels::KernelId id, const CsrMatrix<float>& a,
                           std::span<const float> x, std::span<float> y,
                           int width, std::span<const index_t> vrows,
                           index_t unit) const;
  virtual void do_run_spmm(kernels::KernelId id, const CsrMatrix<double>& a,
                           std::span<const double> x, std::span<double> y,
                           int width, std::span<const index_t> vrows,
                           index_t unit) const;

  /// Layout execution hooks. Not pure: the base implementations throw
  /// std::logic_error, so only format-capable backends (supports_formats()
  /// true) need to override them.
  virtual void do_run_layout(const CsrMatrix<float>& a,
                             const fmt::BinLayout<float>& l,
                             std::span<const float> x,
                             std::span<float> y) const;
  virtual void do_run_layout(const CsrMatrix<double>& a,
                             const fmt::BinLayout<double>& l,
                             std::span<const double> x,
                             std::span<double> y) const;
  virtual void do_run_layout_batch(const CsrMatrix<float>& a,
                                   const fmt::BinLayout<float>& l,
                                   std::span<const float> x,
                                   std::span<float> y, int batch) const;
  virtual void do_run_layout_batch(const CsrMatrix<double>& a,
                                   const fmt::BinLayout<double>& l,
                                   std::span<const double> x,
                                   std::span<double> y, int batch) const;

 private:
  template <typename T>
  void run_binned_impl(kernels::KernelId id, const CsrMatrix<T>& a,
                       std::span<const T> x, std::span<T> y,
                       std::span<const index_t> vrows, index_t unit) const;
  template <typename T>
  void run_full_impl(kernels::KernelId id, const CsrMatrix<T>& a,
                     std::span<const T> x, std::span<T> y) const;
  template <typename T>
  void run_binned_batch_impl(kernels::KernelId id, const CsrMatrix<T>& a,
                             std::span<const T> x, std::span<T> y, int batch,
                             std::span<const index_t> vrows,
                             index_t unit) const;
  template <typename T>
  void run_spmm_impl(kernels::KernelId id, const CsrMatrix<T>& a,
                     std::span<const T> x, std::span<T> y, int width,
                     std::span<const index_t> vrows, index_t unit) const;
  template <typename T>
  void fallback_spmm_impl(kernels::KernelId id, const CsrMatrix<T>& a,
                          std::span<const T> x, std::span<T> y, int width,
                          std::span<const index_t> vrows, index_t unit) const;
  template <typename T>
  void run_layout_impl(const CsrMatrix<T>& a, const fmt::BinLayout<T>& l,
                       std::span<const T> x, std::span<T> y) const;
  template <typename T>
  void run_layout_batch_impl(const CsrMatrix<T>& a, const fmt::BinLayout<T>& l,
                             std::span<const T> x, std::span<T> y,
                             int batch) const;
};

/// The process-wide shared instance for `kind`: ClsimBackend over
/// clsim::default_engine(), or a default-configured NativeBackend. The
/// pointer is a no-op-deleter alias of a function-local static, so it is
/// valid for the whole process lifetime and cheap to copy.
std::shared_ptr<const Backend> shared_backend(BackendKind kind);

/// Wrap a caller-owned engine in a ClsimBackend. The engine must outlive
/// the returned backend; clsim::default_engine() resolves to the shared
/// singleton instead of a fresh wrapper.
std::shared_ptr<const Backend> wrap_engine(const clsim::Engine& engine);

/// ExecContext — the resolved execution environment one runtime carries:
/// shared ownership of the backend its plan executes on. Cheap to copy;
/// default-constructed contexts use the shared clsim backend.
class ExecContext {
 public:
  ExecContext() : backend_(shared_backend(BackendKind::Clsim)) {}
  explicit ExecContext(std::shared_ptr<const Backend> backend);

  [[nodiscard]] const Backend& backend() const { return *backend_; }
  [[nodiscard]] BackendKind kind() const { return backend_->kind(); }

 private:
  std::shared_ptr<const Backend> backend_;
};

}  // namespace spmv::exec

// exec::NativeBackend — lowers the pool's bin shapes to tight
// auto-vectorized C++ loops on the host CPU. Each bin launch partitions the
// bin's slots across OpenMP threads (dynamic row-range chunks, mirroring
// kernels::spmv_omp_rows); the kernel id selects the inner-loop
// organization of each row's dot product: Serial is a plain scalar loop,
// Sub<X> keeps X partial accumulators (the CPU analogue of X cooperating
// lanes — it unrolls the nonzero stream X-wide so the compiler can keep the
// partial sums in SIMD registers), Vector is an `omp simd` reduction over
// the whole row. Batched launches reuse the one-CSR-traversal trick from
// kernel_serial_batch: one pass over a row's nonzeros feeds up to
// kernels::kMaxNativeBatch stack accumulators.
//
// Results match ClsimBackend up to floating-point association order; the
// differential suite checks both against the exact reference under the
// usual tolerances.
#pragma once

#include "exec/backend.hpp"

namespace spmv::exec {

struct NativeOptions {
  /// Worker threads per launch; 0 = the OpenMP runtime default. Launches
  /// over small bins run inline regardless to avoid fork/join overhead.
  int threads = 0;
};

class NativeBackend final : public Backend {
 public:
  explicit NativeBackend(NativeOptions options = {}) : options_(options) {}

  [[nodiscard]] BackendKind kind() const override {
    return BackendKind::Native;
  }
  [[nodiscard]] const NativeOptions& options() const { return options_; }

  /// Native executes materialized bin layouts (spmv::fmt): ELL column-major
  /// walks, COO triple chunks, delta-decoded CSR — each scalar + batched.
  [[nodiscard]] bool supports_formats() const override { return true; }

  /// Native has true blocked SpMM: one CSR traversal feeds a register tile
  /// of output columns at any width, per-column bit-identical to the
  /// single-vector kernel of the same shape.
  [[nodiscard]] bool supports_spmm() const override { return true; }

 protected:
  void do_run_binned(kernels::KernelId id, const CsrMatrix<float>& a,
                     std::span<const float> x, std::span<float> y,
                     std::span<const index_t> vrows,
                     index_t unit) const override;
  void do_run_binned(kernels::KernelId id, const CsrMatrix<double>& a,
                     std::span<const double> x, std::span<double> y,
                     std::span<const index_t> vrows,
                     index_t unit) const override;
  void do_run_binned_batch(kernels::KernelId id, const CsrMatrix<float>& a,
                           std::span<const float> x, std::span<float> y,
                           int batch, std::span<const index_t> vrows,
                           index_t unit) const override;
  void do_run_binned_batch(kernels::KernelId id, const CsrMatrix<double>& a,
                           std::span<const double> x, std::span<double> y,
                           int batch, std::span<const index_t> vrows,
                           index_t unit) const override;
  void do_run_spmm(kernels::KernelId id, const CsrMatrix<float>& a,
                   std::span<const float> x, std::span<float> y, int width,
                   std::span<const index_t> vrows,
                   index_t unit) const override;
  void do_run_spmm(kernels::KernelId id, const CsrMatrix<double>& a,
                   std::span<const double> x, std::span<double> y, int width,
                   std::span<const index_t> vrows,
                   index_t unit) const override;
  void do_run_layout(const CsrMatrix<float>& a, const fmt::BinLayout<float>& l,
                     std::span<const float> x,
                     std::span<float> y) const override;
  void do_run_layout(const CsrMatrix<double>& a,
                     const fmt::BinLayout<double>& l,
                     std::span<const double> x,
                     std::span<double> y) const override;
  void do_run_layout_batch(const CsrMatrix<float>& a,
                           const fmt::BinLayout<float>& l,
                           std::span<const float> x, std::span<float> y,
                           int batch) const override;
  void do_run_layout_batch(const CsrMatrix<double>& a,
                           const fmt::BinLayout<double>& l,
                           std::span<const double> x, std::span<double> y,
                           int batch) const override;

 private:
  NativeOptions options_;
};

}  // namespace spmv::exec

// exec::ClsimBackend — the reference Backend: dispatches every bin shape to
// the paper's lockstep work-group kernels (kernels/kernel_*.cpp) on a
// clsim::Engine. Wrapping the engine unchanged, it is behaviorally
// identical to the pre-exec code path, which is exactly what makes it the
// differential-testing anchor for every other backend.
#pragma once

#include "clsim/engine.hpp"
#include "exec/backend.hpp"

namespace spmv::exec {

class ClsimBackend final : public Backend {
 public:
  /// Dispatch on `engine`, which must outlive the backend. The default is
  /// the process-wide clsim::default_engine().
  explicit ClsimBackend(const clsim::Engine& engine = clsim::default_engine())
      : engine_(&engine) {}

  [[nodiscard]] BackendKind kind() const override {
    return BackendKind::Clsim;
  }
  [[nodiscard]] const clsim::Engine* engine() const override {
    return engine_;
  }

 protected:
  void do_run_binned(kernels::KernelId id, const CsrMatrix<float>& a,
                     std::span<const float> x, std::span<float> y,
                     std::span<const index_t> vrows,
                     index_t unit) const override;
  void do_run_binned(kernels::KernelId id, const CsrMatrix<double>& a,
                     std::span<const double> x, std::span<double> y,
                     std::span<const index_t> vrows,
                     index_t unit) const override;
  void do_run_binned_batch(kernels::KernelId id, const CsrMatrix<float>& a,
                           std::span<const float> x, std::span<float> y,
                           int batch, std::span<const index_t> vrows,
                           index_t unit) const override;
  void do_run_binned_batch(kernels::KernelId id, const CsrMatrix<double>& a,
                           std::span<const double> x, std::span<double> y,
                           int batch, std::span<const index_t> vrows,
                           index_t unit) const override;

 private:
  const clsim::Engine* engine_;
};

}  // namespace spmv::exec

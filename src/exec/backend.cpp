#include "exec/backend.hpp"

#include <numeric>
#include <stdexcept>

#include "exec/clsim_backend.hpp"
#include "exec/native_backend.hpp"
#include "fmt/layout.hpp"
#include "kernels/binned_common.hpp"
#include "prof/counters.hpp"
#include "trace/trace.hpp"

namespace spmv::exec {

const std::vector<BackendKind>& all_backends() {
  static const std::vector<BackendKind> kinds = {BackendKind::Clsim,
                                                 BackendKind::Native};
  return kinds;
}

const char* backend_cname(BackendKind kind) {
  switch (kind) {
    case BackendKind::Clsim: return "clsim";
    case BackendKind::Native: return "native";
  }
  throw std::invalid_argument("backend_cname: bad kind");
}

std::string backend_name(BackendKind kind) { return backend_cname(kind); }

std::optional<BackendKind> try_backend_from_name(const std::string& name) {
  for (BackendKind kind : all_backends()) {
    if (name == backend_cname(kind)) return kind;
  }
  return std::nullopt;
}

BackendKind backend_from_name(const std::string& name) {
  if (const auto kind = try_backend_from_name(name); kind.has_value())
    return *kind;
  throw std::invalid_argument("backend_from_name: unknown backend " + name);
}

template <typename T>
void Backend::run_binned_impl(kernels::KernelId id, const CsrMatrix<T>& a,
                              std::span<const T> x, std::span<T> y,
                              std::span<const index_t> vrows,
                              index_t unit) const {
  trace::TraceSpan span(kernels::kernel_cname(id), "kernel");
  span.arg("virtual_rows", static_cast<std::int64_t>(vrows.size()));
  span.arg("unit", unit);
  do_run_binned(id, a, x, y, vrows, unit);
}

template <typename T>
void Backend::run_full_impl(kernels::KernelId id, const CsrMatrix<T>& a,
                            std::span<const T> x, std::span<T> y) const {
  // The whole matrix as one bin of granularity 1: virtual row i == row i.
  std::vector<index_t> vrows(static_cast<std::size_t>(a.rows()));
  std::iota(vrows.begin(), vrows.end(), index_t{0});
  run_binned_impl<T>(id, a, x, y, vrows, 1);
}

template <typename T>
void Backend::run_binned_batch_impl(kernels::KernelId id,
                                    const CsrMatrix<T>& a,
                                    std::span<const T> x, std::span<T> y,
                                    int batch,
                                    std::span<const index_t> vrows,
                                    index_t unit) const {
  if (batch <= 0)
    throw std::invalid_argument("run_binned_batch: batch must be positive");
  if (x.size() != static_cast<std::size_t>(a.cols()) *
                      static_cast<std::size_t>(batch) ||
      y.size() != static_cast<std::size_t>(a.rows()) *
                      static_cast<std::size_t>(batch))
    throw std::invalid_argument("run_binned_batch: X/Y extents do not match "
                                "cols*batch / rows*batch");
  if (batch == 1) return run_binned_impl<T>(id, a, x, y, vrows, unit);
  trace::TraceSpan span(kernels::kernel_cname(id), "kernel-batch");
  span.arg("width", batch);
  span.arg("virtual_rows", static_cast<std::int64_t>(vrows.size()));
  do_run_binned_batch(id, a, x, y, batch, vrows, unit);
}

void Backend::run_binned(kernels::KernelId id, const CsrMatrix<float>& a,
                         std::span<const float> x, std::span<float> y,
                         std::span<const index_t> vrows, index_t unit) const {
  run_binned_impl<float>(id, a, x, y, vrows, unit);
}

void Backend::run_binned(kernels::KernelId id, const CsrMatrix<double>& a,
                         std::span<const double> x, std::span<double> y,
                         std::span<const index_t> vrows, index_t unit) const {
  run_binned_impl<double>(id, a, x, y, vrows, unit);
}

void Backend::run_full(kernels::KernelId id, const CsrMatrix<float>& a,
                       std::span<const float> x, std::span<float> y) const {
  run_full_impl<float>(id, a, x, y);
}

void Backend::run_full(kernels::KernelId id, const CsrMatrix<double>& a,
                       std::span<const double> x, std::span<double> y) const {
  run_full_impl<double>(id, a, x, y);
}

void Backend::run_binned_batch(kernels::KernelId id, const CsrMatrix<float>& a,
                               std::span<const float> x, std::span<float> y,
                               int batch, std::span<const index_t> vrows,
                               index_t unit) const {
  run_binned_batch_impl<float>(id, a, x, y, batch, vrows, unit);
}

void Backend::run_binned_batch(kernels::KernelId id,
                               const CsrMatrix<double>& a,
                               std::span<const double> x, std::span<double> y,
                               int batch, std::span<const index_t> vrows,
                               index_t unit) const {
  run_binned_batch_impl<double>(id, a, x, y, batch, vrows, unit);
}

template <typename T>
void Backend::run_spmm_impl(kernels::KernelId id, const CsrMatrix<T>& a,
                            std::span<const T> x, std::span<T> y, int width,
                            std::span<const index_t> vrows,
                            index_t unit) const {
  if (width <= 0)
    throw std::invalid_argument("run_spmm: width must be positive");
  if (x.size() != static_cast<std::size_t>(a.cols()) *
                      static_cast<std::size_t>(width) ||
      y.size() != static_cast<std::size_t>(a.rows()) *
                      static_cast<std::size_t>(width))
    throw std::invalid_argument("run_spmm: X/Y extents do not match "
                                "cols*width / rows*width");
  if (width == 1) return run_binned_impl<T>(id, a, x, y, vrows, unit);
  trace::TraceSpan span(kernels::kernel_cname(id), "spmm");
  span.arg("width", width);
  span.arg("virtual_rows", static_cast<std::int64_t>(vrows.size()));
  do_run_spmm(id, a, x, y, width, vrows, unit);
}

template <typename T>
void Backend::fallback_spmm_impl(kernels::KernelId id, const CsrMatrix<T>& a,
                                 std::span<const T> x, std::span<T> y,
                                 int width, std::span<const index_t> vrows,
                                 index_t unit) const {
  // No blocked SpMM on this backend: every column is one single-vector
  // launch, and every one of them is a fallback column worth counting.
  prof::add_spmm_fallback_columns(static_cast<std::uint64_t>(width));
  for (int b = 0; b < width; ++b) {
    do_run_binned(id, a, kernels::batch_column(x, a.cols(), b),
                  kernels::batch_column(y, a.rows(), b), vrows, unit);
  }
}

void Backend::do_run_spmm(kernels::KernelId id, const CsrMatrix<float>& a,
                          std::span<const float> x, std::span<float> y,
                          int width, std::span<const index_t> vrows,
                          index_t unit) const {
  fallback_spmm_impl<float>(id, a, x, y, width, vrows, unit);
}

void Backend::do_run_spmm(kernels::KernelId id, const CsrMatrix<double>& a,
                          std::span<const double> x, std::span<double> y,
                          int width, std::span<const index_t> vrows,
                          index_t unit) const {
  fallback_spmm_impl<double>(id, a, x, y, width, vrows, unit);
}

void Backend::run_spmm(kernels::KernelId id, const CsrMatrix<float>& a,
                       std::span<const float> x, std::span<float> y, int width,
                       std::span<const index_t> vrows, index_t unit) const {
  run_spmm_impl<float>(id, a, x, y, width, vrows, unit);
}

void Backend::run_spmm(kernels::KernelId id, const CsrMatrix<double>& a,
                       std::span<const double> x, std::span<double> y,
                       int width, std::span<const index_t> vrows,
                       index_t unit) const {
  run_spmm_impl<double>(id, a, x, y, width, vrows, unit);
}

template <typename T>
void Backend::run_layout_impl(const CsrMatrix<T>& a, const fmt::BinLayout<T>& l,
                              std::span<const T> x, std::span<T> y) const {
  if (x.size() != static_cast<std::size_t>(a.cols()) ||
      y.size() != static_cast<std::size_t>(a.rows()))
    throw std::invalid_argument("run_layout: x/y extents do not match matrix");
  trace::TraceSpan span(fmt::format_cname(l.kind), "layout");
  span.arg("bin", l.bin_id);
  do_run_layout(a, l, x, y);
}

template <typename T>
void Backend::run_layout_batch_impl(const CsrMatrix<T>& a,
                                    const fmt::BinLayout<T>& l,
                                    std::span<const T> x, std::span<T> y,
                                    int batch) const {
  if (batch <= 0)
    throw std::invalid_argument("run_layout_batch: batch must be positive");
  if (x.size() != static_cast<std::size_t>(a.cols()) *
                      static_cast<std::size_t>(batch) ||
      y.size() != static_cast<std::size_t>(a.rows()) *
                      static_cast<std::size_t>(batch))
    throw std::invalid_argument("run_layout_batch: X/Y extents do not match "
                                "cols*batch / rows*batch");
  if (batch == 1) {
    run_layout_impl<T>(a, l, x, y);
    return;
  }
  trace::TraceSpan span(fmt::format_cname(l.kind), "layout-batch");
  span.arg("width", batch);
  span.arg("bin", l.bin_id);
  do_run_layout_batch(a, l, x, y, batch);
}

void Backend::run_layout(const CsrMatrix<float>& a,
                         const fmt::BinLayout<float>& l,
                         std::span<const float> x, std::span<float> y) const {
  run_layout_impl<float>(a, l, x, y);
}

void Backend::run_layout(const CsrMatrix<double>& a,
                         const fmt::BinLayout<double>& l,
                         std::span<const double> x, std::span<double> y) const {
  run_layout_impl<double>(a, l, x, y);
}

void Backend::run_layout_batch(const CsrMatrix<float>& a,
                               const fmt::BinLayout<float>& l,
                               std::span<const float> x, std::span<float> y,
                               int batch) const {
  run_layout_batch_impl<float>(a, l, x, y, batch);
}

void Backend::run_layout_batch(const CsrMatrix<double>& a,
                               const fmt::BinLayout<double>& l,
                               std::span<const double> x, std::span<double> y,
                               int batch) const {
  run_layout_batch_impl<double>(a, l, x, y, batch);
}

namespace {

[[noreturn]] void throw_no_format_support(const Backend& b) {
  throw std::logic_error(std::string("backend ") + b.name() +
                         " does not execute bin layouts "
                         "(supports_formats() is false)");
}

}  // namespace

void Backend::do_run_layout(const CsrMatrix<float>&,
                            const fmt::BinLayout<float>&,
                            std::span<const float>, std::span<float>) const {
  throw_no_format_support(*this);
}

void Backend::do_run_layout(const CsrMatrix<double>&,
                            const fmt::BinLayout<double>&,
                            std::span<const double>, std::span<double>) const {
  throw_no_format_support(*this);
}

void Backend::do_run_layout_batch(const CsrMatrix<float>&,
                                  const fmt::BinLayout<float>&,
                                  std::span<const float>, std::span<float>,
                                  int) const {
  throw_no_format_support(*this);
}

void Backend::do_run_layout_batch(const CsrMatrix<double>&,
                                  const fmt::BinLayout<double>&,
                                  std::span<const double>, std::span<double>,
                                  int) const {
  throw_no_format_support(*this);
}

std::shared_ptr<const Backend> shared_backend(BackendKind kind) {
  // Function-local statics live for the whole process; the aliasing
  // constructor hands out non-owning shared_ptrs to them.
  switch (kind) {
    case BackendKind::Clsim: {
      static const ClsimBackend backend;
      return {std::shared_ptr<const Backend>(), &backend};
    }
    case BackendKind::Native: {
      static const NativeBackend backend;
      return {std::shared_ptr<const Backend>(), &backend};
    }
  }
  throw std::invalid_argument("shared_backend: bad kind");
}

std::shared_ptr<const Backend> wrap_engine(const clsim::Engine& engine) {
  if (&engine == &clsim::default_engine())
    return shared_backend(BackendKind::Clsim);
  return std::make_shared<const ClsimBackend>(engine);
}

ExecContext::ExecContext(std::shared_ptr<const Backend> backend)
    : backend_(std::move(backend)) {
  if (backend_ == nullptr)
    throw std::invalid_argument("ExecContext: null backend");
}

}  // namespace spmv::exec

// The kernel candidate pool: nine SpMV kernels with identical semantics but
// different thread organizations (paper §III-B, Algorithms 3-5), plus the
// registry used by the auto-tuner to enumerate and name them.
//
// Dispatch lives in spmv::exec now: exec::Backend::run_binned / run_full /
// run_binned_batch is the execution entry point, and the engine-taking
// run_* templates below are deprecated forwards kept for one release.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "clsim/engine.hpp"
#include "sparse/csr.hpp"

namespace spmv::kernels {

/// The nine pool kernels. Sub<X> assigns X cooperating lanes per row;
/// Serial assigns one lane per row; Vector assigns a whole 256-lane
/// work-group per row.
enum class KernelId : int {
  Serial = 0,
  Sub2,
  Sub4,
  Sub8,
  Sub16,
  Sub32,
  Sub64,
  Sub128,
  Vector,
};

inline constexpr int kKernelCount = 9;

/// All pool kernels in enum order.
const std::vector<KernelId>& all_kernels();

/// Stable display name, e.g. "serial", "subvector16", "vector".
std::string kernel_name(KernelId id);

/// kernel_name as a static string — for call sites that must not allocate
/// (trace spans store the pointer).
const char* kernel_cname(KernelId id);

/// Inverse of kernel_name(). Throws std::invalid_argument on unknown names.
KernelId kernel_from_name(const std::string& name);

/// Non-throwing inverse of kernel_name(): nullopt on unknown names. The
/// parse used by plan_io, where a bad name must become a counted skip, not
/// an uncaught exception type.
std::optional<KernelId> try_kernel_from_name(const std::string& name);

/// Lanes cooperating on one row: 1 for Serial, X for Sub<X>, 256 for Vector.
int lanes_per_row(KernelId id);

/// Deprecated forward to exec::ClsimBackend::run_binned — executes pool
/// kernel `id` over the bin's rows on `engine`. Construct a backend (or use
/// exec::shared_backend / exec::wrap_engine) instead.
template <typename T>
[[deprecated("use exec::Backend::run_binned")]]
void run_binned(KernelId id, const clsim::Engine& engine,
                const CsrMatrix<T>& a, std::span<const T> x, std::span<T> y,
                std::span<const index_t> vrows, index_t unit);

/// Deprecated forward to exec::ClsimBackend::run_full.
template <typename T>
[[deprecated("use exec::Backend::run_full")]]
void run_full(KernelId id, const clsim::Engine& engine, const CsrMatrix<T>& a,
              std::span<const T> x, std::span<T> y);

/// Widest batch the native multi-vector kernels support in one launch —
/// bounded by the per-lane accumulator block (wavefront * batch values)
/// fitting the device's 32 KiB local-memory arena with headroom.
inline constexpr int kMaxNativeBatch = 32;

/// True when `id` has a native multi-vector variant; run_binned_batch
/// loops the single-vector kernel per column for the rest.
bool has_batched_variant(KernelId id);

/// Deprecated forward to exec::ClsimBackend::run_binned_batch.
template <typename T>
[[deprecated("use exec::Backend::run_binned_batch")]]
void run_binned_batch(KernelId id, const clsim::Engine& engine,
                      const CsrMatrix<T>& a, std::span<const T> x,
                      std::span<T> y, int batch,
                      std::span<const index_t> vrows, index_t unit);

// --- individual kernels (implemented in kernel_*.cpp) -----------------

/// Algorithm 3: one lane per row, lockstep within each 64-lane wavefront.
template <typename T>
void kernel_serial(const clsim::Engine& engine, const CsrMatrix<T>& a,
                   std::span<const T> x, std::span<T> y,
                   std::span<const index_t> vrows, index_t unit);

/// Batched Kernel-Serial: one lane per row carrying `batch` accumulators,
/// so the lockstep CSR traversal (vals/col_idx reads, divergence cost) is
/// paid once for the whole batch instead of once per vector.
template <typename T>
void kernel_serial_batch(const clsim::Engine& engine, const CsrMatrix<T>& a,
                         std::span<const T> x, std::span<T> y, int batch,
                         std::span<const index_t> vrows, index_t unit);

/// Algorithm 4: X lanes per row; products staged through a factor*X-wide
/// local buffer and combined with a segmented parallel reduction.
template <typename T, int X>
void kernel_subvector(const clsim::Engine& engine, const CsrMatrix<T>& a,
                      std::span<const T> x, std::span<T> y,
                      std::span<const index_t> vrows, index_t unit);

/// Batched Kernel-SubvectorX: each chunk's (value, column) pairs are staged
/// into local memory once and reused for every vector of the batch, so the
/// CSR traversal is paid once while products/reductions run per column.
template <typename T, int X>
void kernel_subvector_batch(const clsim::Engine& engine,
                            const CsrMatrix<T>& a, std::span<const T> x,
                            std::span<T> y, int batch,
                            std::span<const index_t> vrows, index_t unit);

/// Algorithm 5: the whole 256-lane work-group on one row.
template <typename T>
void kernel_vector(const clsim::Engine& engine, const CsrMatrix<T>& a,
                   std::span<const T> x, std::span<T> y,
                   std::span<const index_t> vrows, index_t unit);

// The extern declarations below name the deprecated run_* forwards, which
// is not itself a use worth warning on.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#define SPMV_KERNELS_EXTERN(T)                                               \
  extern template void run_binned(KernelId, const clsim::Engine&,            \
                                  const CsrMatrix<T>&, std::span<const T>,   \
                                  std::span<T>, std::span<const index_t>,    \
                                  index_t);                                  \
  extern template void run_full(KernelId, const clsim::Engine&,              \
                                const CsrMatrix<T>&, std::span<const T>,     \
                                std::span<T>);                               \
  extern template void run_binned_batch(KernelId, const clsim::Engine&,      \
                                        const CsrMatrix<T>&,                 \
                                        std::span<const T>, std::span<T>,    \
                                        int, std::span<const index_t>,       \
                                        index_t);                            \
  extern template void kernel_serial(const clsim::Engine&,                   \
                                     const CsrMatrix<T>&, std::span<const T>,\
                                     std::span<T>, std::span<const index_t>, \
                                     index_t);                               \
  extern template void kernel_serial_batch(const clsim::Engine&,             \
                                           const CsrMatrix<T>&,              \
                                           std::span<const T>, std::span<T>, \
                                           int, std::span<const index_t>,    \
                                           index_t);                         \
  extern template void kernel_vector(const clsim::Engine&,                   \
                                     const CsrMatrix<T>&, std::span<const T>,\
                                     std::span<T>, std::span<const index_t>, \
                                     index_t);
SPMV_KERNELS_EXTERN(float)
SPMV_KERNELS_EXTERN(double)
#undef SPMV_KERNELS_EXTERN
#pragma GCC diagnostic pop

}  // namespace spmv::kernels

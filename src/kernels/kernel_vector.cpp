// Kernel-Vector (paper Algorithm 5): a full 256-lane work-group per row.
//
// A row is consumed in chunks of factor*256 non-zeros staged into local
// memory with coalesced loads, then reduced with a full-width parallel
// reduction. As in kernel_subvector.cpp, the reduction always runs over
// the zero-padded chunk: a work-group burning 1024 lane-slots on a 3-NNZ
// row is precisely why this kernel loses by up to 52x on short-row
// matrices (paper Figure 6) while winning on long rows.
#include "kernels/registry.hpp"

#include <algorithm>

#include "kernels/binned_common.hpp"

namespace spmv::kernels {

namespace {
constexpr int kGroupSize = 256;
constexpr int kFactor = 4;
constexpr int kChunk = kFactor * kGroupSize;
}  // namespace

template <typename T>
void kernel_vector(const clsim::Engine& engine, const CsrMatrix<T>& a,
                   std::span<const T> x, std::span<T> y,
                   std::span<const index_t> vrows, index_t unit) {
  const RowMap map{vrows, unit, a.rows()};
  const std::int64_t slots = map.total_slots();
  if (slots == 0) return;

  const auto row_ptr = a.row_ptr();
  const auto col_idx = a.col_idx();
  const auto vals = a.vals();

  clsim::LaunchParams lp;
  lp.num_groups = static_cast<std::size_t>(slots);  // one group per row
  lp.group_size = kGroupSize;
  lp.chunk = 1;  // heavy groups: finest balancing

  engine.launch(lp, [&](clsim::WorkGroup& wg) {
    auto buf = wg.local_array<T>(kChunk);
    const auto slot = static_cast<std::int64_t>(wg.group_id());
    const index_t r = map.slot_to_row(slot);
    if (r < 0) return;

    const offset_t row_start = row_ptr[static_cast<std::size_t>(r)];
    const offset_t row_end = row_ptr[static_cast<std::size_t>(r) + 1];

    T sum{};
    for (offset_t base = row_start; base < row_end; base += kChunk) {
      const int len =
          static_cast<int>(std::min<offset_t>(kChunk, row_end - base));
      for (int k = 0; k < len; ++k) {
        const auto j = static_cast<std::size_t>(base + k);
        buf[static_cast<std::size_t>(k)] =
            vals[j] * x[static_cast<std::size_t>(col_idx[j])];
      }
      for (int k = len; k < kChunk; ++k) buf[static_cast<std::size_t>(k)] = T{};
      for (int stride = kChunk / 2; stride >= 1; stride /= 2) {
        for (int k = 0; k < stride; ++k)
          buf[static_cast<std::size_t>(k)] +=
              buf[static_cast<std::size_t>(k + stride)];
      }
      sum += buf[0];
    }
    y[static_cast<std::size_t>(r)] = sum;
  });
}

template void kernel_vector(const clsim::Engine&, const CsrMatrix<float>&,
                            std::span<const float>, std::span<float>,
                            std::span<const index_t>, index_t);
template void kernel_vector(const clsim::Engine&, const CsrMatrix<double>&,
                            std::span<const double>, std::span<double>,
                            std::span<const index_t>, index_t);

}  // namespace spmv::kernels

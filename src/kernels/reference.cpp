#include "kernels/reference.hpp"

#include <stdexcept>
#include <vector>

#include <omp.h>

namespace spmv::kernels {

namespace {
template <typename T>
void check_shapes(const CsrMatrix<T>& a, std::span<const T> x,
                  std::span<T> y) {
  if (x.size() != static_cast<std::size_t>(a.cols()))
    throw std::invalid_argument("spmv: x size != cols");
  if (y.size() != static_cast<std::size_t>(a.rows()))
    throw std::invalid_argument("spmv: y size != rows");
}
}  // namespace

template <typename T>
void spmv_sequential(const CsrMatrix<T>& a, std::span<const T> x,
                     std::span<T> y) {
  check_shapes(a, x, y);
  const auto row_ptr = a.row_ptr();
  const auto col_idx = a.col_idx();
  const auto vals = a.vals();
  for (index_t i = 0; i < a.rows(); ++i) {
    T sum{};
    for (offset_t j = row_ptr[static_cast<std::size_t>(i)];
         j < row_ptr[static_cast<std::size_t>(i) + 1]; ++j) {
      sum += vals[static_cast<std::size_t>(j)] *
             x[static_cast<std::size_t>(col_idx[static_cast<std::size_t>(j)])];
    }
    y[static_cast<std::size_t>(i)] = sum;
  }
}

template <typename T>
void spmv_omp_rows(const CsrMatrix<T>& a, std::span<const T> x,
                   std::span<T> y) {
  check_shapes(a, x, y);
  const auto row_ptr = a.row_ptr();
  const auto col_idx = a.col_idx();
  const auto vals = a.vals();
  const index_t m = a.rows();
#pragma omp parallel for schedule(dynamic, 256)
  for (index_t i = 0; i < m; ++i) {
    T sum{};
    for (offset_t j = row_ptr[static_cast<std::size_t>(i)];
         j < row_ptr[static_cast<std::size_t>(i) + 1]; ++j) {
      sum += vals[static_cast<std::size_t>(j)] *
             x[static_cast<std::size_t>(col_idx[static_cast<std::size_t>(j)])];
    }
    y[static_cast<std::size_t>(i)] = sum;
  }
}

template <typename T>
std::vector<double> spmv_exact(const CsrMatrix<T>& a, std::span<const T> x) {
  if (x.size() != static_cast<std::size_t>(a.cols()))
    throw std::invalid_argument("spmv_exact: x size != cols");
  std::vector<double> y(static_cast<std::size_t>(a.rows()));
  const auto row_ptr = a.row_ptr();
  const auto col_idx = a.col_idx();
  const auto vals = a.vals();
  for (index_t i = 0; i < a.rows(); ++i) {
    double sum = 0.0;
    for (offset_t j = row_ptr[static_cast<std::size_t>(i)];
         j < row_ptr[static_cast<std::size_t>(i) + 1]; ++j) {
      sum += static_cast<double>(vals[static_cast<std::size_t>(j)]) *
             static_cast<double>(
                 x[static_cast<std::size_t>(col_idx[static_cast<std::size_t>(j)])]);
    }
    y[static_cast<std::size_t>(i)] = sum;
  }
  return y;
}

template void spmv_sequential(const CsrMatrix<float>&, std::span<const float>,
                              std::span<float>);
template void spmv_sequential(const CsrMatrix<double>&,
                              std::span<const double>, std::span<double>);
template void spmv_omp_rows(const CsrMatrix<float>&, std::span<const float>,
                            std::span<float>);
template void spmv_omp_rows(const CsrMatrix<double>&, std::span<const double>,
                            std::span<double>);
template std::vector<double> spmv_exact(const CsrMatrix<float>&,
                                        std::span<const float>);
template std::vector<double> spmv_exact(const CsrMatrix<double>&,
                                        std::span<const double>);

}  // namespace spmv::kernels

// Reference SpMV implementations: the paper's Algorithm 1 (sequential) and
// a plain OpenMP row-parallel CPU kernel. These define correct output for
// every other kernel in the library and serve as the multicore-CPU
// comparison point in the examples.
#pragma once

#include <span>

#include "sparse/csr.hpp"

namespace spmv::kernels {

/// Algorithm 1: sequential CSR SpMV, y = A*x. y must have a.rows()
/// elements and x must have a.cols() elements (checked).
template <typename T>
void spmv_sequential(const CsrMatrix<T>& a, std::span<const T> x,
                     std::span<T> y);

/// Row-parallel OpenMP CSR SpMV with dynamic scheduling — the standard
/// multicore CPU kernel.
template <typename T>
void spmv_omp_rows(const CsrMatrix<T>& a, std::span<const T> x,
                   std::span<T> y);

/// Double-precision ground truth of A*x regardless of T (used by tests to
/// bound kernel rounding error).
template <typename T>
std::vector<double> spmv_exact(const CsrMatrix<T>& a, std::span<const T> x);

extern template void spmv_sequential(const CsrMatrix<float>&,
                                     std::span<const float>, std::span<float>);
extern template void spmv_sequential(const CsrMatrix<double>&,
                                     std::span<const double>,
                                     std::span<double>);
extern template void spmv_omp_rows(const CsrMatrix<float>&,
                                   std::span<const float>, std::span<float>);
extern template void spmv_omp_rows(const CsrMatrix<double>&,
                                   std::span<const double>, std::span<double>);
extern template std::vector<double> spmv_exact(const CsrMatrix<float>&,
                                               std::span<const float>);
extern template std::vector<double> spmv_exact(const CsrMatrix<double>&,
                                               std::span<const double>);

}  // namespace spmv::kernels

// Kernel-SubvectorX (paper Algorithm 4): X lanes cooperate on one row.
//
// Each 256-lane work-group holds 256/X subgroups, each assigned one row.
// A row is consumed in chunks of factor*X non-zeros: the X lanes stage the
// chunk's products into local memory with coalesced (contiguous) loads,
// then combine them with a segmented parallel reduction; the subgroup's
// lane 0 accumulates chunk results (Algorithm 4 lines 10-21).
//
// Emulation notes: subgroups of one group execute sequentially on the host
// thread (they share no data, so this is semantics-preserving), and the
// reduction always runs over the full zero-padded chunk — on the GPU, idle
// lanes in a partially-filled chunk still burn cycles, which is exactly the
// cost that makes wide subvectors a poor match for short rows.
#include "kernels/registry.hpp"

#include <algorithm>

#include "kernels/binned_common.hpp"

namespace spmv::kernels {

namespace {
constexpr int kGroupSize = 256;
constexpr int kFactor = 4;  // local buffer = factor * X products (paper: 4)
}  // namespace

template <typename T, int X>
void kernel_subvector(const clsim::Engine& engine, const CsrMatrix<T>& a,
                      std::span<const T> x, std::span<T> y,
                      std::span<const index_t> vrows, index_t unit) {
  static_assert(X >= 2 && X <= 128 && (X & (X - 1)) == 0,
                "subvector width must be a power of two in [2, 128]");
  const RowMap map{vrows, unit, a.rows()};
  const std::int64_t slots = map.total_slots();
  if (slots == 0) return;

  const auto row_ptr = a.row_ptr();
  const auto col_idx = a.col_idx();
  const auto vals = a.vals();

  constexpr int kRowsPerGroup = kGroupSize / X;
  constexpr int kChunk = kFactor * X;

  clsim::LaunchParams lp;
  lp.num_groups =
      clsim::div_up(static_cast<std::size_t>(slots), kRowsPerGroup);
  lp.group_size = kGroupSize;
  lp.chunk = X >= 32 ? 4 : 8;

  engine.launch(lp, [&](clsim::WorkGroup& wg) {
    // One local buffer sized for the whole group (kRowsPerGroup subgroups x
    // factor*X each), as in the paper; subgroups use disjoint slices.
    auto local_mem = wg.local_array<T>(kFactor * kGroupSize);

    const std::int64_t group_base =
        static_cast<std::int64_t>(wg.group_id()) * kRowsPerGroup;
    for (int s = 0; s < kRowsPerGroup; ++s) {
      const std::int64_t slot = group_base + s;
      if (slot >= slots) break;
      const index_t r = map.slot_to_row(slot);
      if (r < 0) continue;

      T* buf = local_mem.data() + static_cast<std::size_t>(s) * kChunk;
      const offset_t row_start = row_ptr[static_cast<std::size_t>(r)];
      const offset_t row_end = row_ptr[static_cast<std::size_t>(r) + 1];

      T sum{};
      for (offset_t base = row_start; base < row_end; base += kChunk) {
        const int len =
            static_cast<int>(std::min<offset_t>(kChunk, row_end - base));
        // Coalesced stage: lanes load a contiguous run of non-zeros.
        for (int k = 0; k < len; ++k) {
          const auto j = static_cast<std::size_t>(base + k);
          buf[k] = vals[j] * x[static_cast<std::size_t>(col_idx[j])];
        }
        for (int k = len; k < kChunk; ++k) buf[k] = T{};  // idle lanes
        // Segmented parallel reduction over the padded chunk.
        for (int stride = kChunk / 2; stride >= 1; stride /= 2) {
          for (int k = 0; k < stride; ++k) buf[k] += buf[k + stride];
        }
        sum += buf[0];
      }
      y[static_cast<std::size_t>(r)] = sum;
    }
  });
}

// Batched variant: the expensive part of a chunk — loading vals/col_idx —
// is staged into local memory once, then each vector of the batch forms
// its products against the staged pairs and reduces. The zero-padded
// segmented reduction (the GPU cost signature) still runs once per column.
template <typename T, int X>
void kernel_subvector_batch(const clsim::Engine& engine,
                            const CsrMatrix<T>& a, std::span<const T> x,
                            std::span<T> y, int batch,
                            std::span<const index_t> vrows, index_t unit) {
  static_assert(X >= 2 && X <= 128 && (X & (X - 1)) == 0,
                "subvector width must be a power of two in [2, 128]");
  const RowMap map{vrows, unit, a.rows()};
  const std::int64_t slots = map.total_slots();
  if (slots == 0 || batch <= 0) return;
  const auto n = static_cast<std::size_t>(a.cols());
  const auto m = static_cast<std::size_t>(a.rows());

  const auto row_ptr = a.row_ptr();
  const auto col_idx = a.col_idx();
  const auto vals = a.vals();

  constexpr int kRowsPerGroup = kGroupSize / X;
  constexpr int kChunk = kFactor * X;

  clsim::LaunchParams lp;
  lp.num_groups =
      clsim::div_up(static_cast<std::size_t>(slots), kRowsPerGroup);
  lp.group_size = kGroupSize;
  lp.chunk = X >= 32 ? 4 : 8;

  engine.launch(lp, [&](clsim::WorkGroup& wg) {
    // Per-subgroup slices as in the single-vector kernel, plus a staging
    // area for the chunk's (value, column) pairs and per-batch sums.
    auto val_stage = wg.local_array<T>(kFactor * kGroupSize);
    auto col_stage = wg.local_array<index_t>(kFactor * kGroupSize);
    auto local_mem = wg.local_array<T>(kFactor * kGroupSize);
    auto sums = wg.local_array<T>(static_cast<std::size_t>(kRowsPerGroup) *
                                  static_cast<std::size_t>(batch));

    const std::int64_t group_base =
        static_cast<std::int64_t>(wg.group_id()) * kRowsPerGroup;
    for (int s = 0; s < kRowsPerGroup; ++s) {
      const std::int64_t slot = group_base + s;
      if (slot >= slots) break;
      const index_t r = map.slot_to_row(slot);
      if (r < 0) continue;

      T* vb = val_stage.data() + static_cast<std::size_t>(s) * kChunk;
      index_t* cb = col_stage.data() + static_cast<std::size_t>(s) * kChunk;
      T* buf = local_mem.data() + static_cast<std::size_t>(s) * kChunk;
      T* sum = sums.data() + static_cast<std::size_t>(s) *
                                 static_cast<std::size_t>(batch);
      const offset_t row_start = row_ptr[static_cast<std::size_t>(r)];
      const offset_t row_end = row_ptr[static_cast<std::size_t>(r) + 1];

      for (int b = 0; b < batch; ++b) sum[b] = T{};
      for (offset_t base = row_start; base < row_end; base += kChunk) {
        const int len =
            static_cast<int>(std::min<offset_t>(kChunk, row_end - base));
        // Coalesced stage, once for the whole batch.
        for (int k = 0; k < len; ++k) {
          const auto j = static_cast<std::size_t>(base + k);
          vb[k] = vals[j];
          cb[k] = col_idx[j];
        }
        for (int b = 0; b < batch; ++b) {
          const T* xb = x.data() + static_cast<std::size_t>(b) * n;
          for (int k = 0; k < len; ++k)
            buf[k] = vb[k] * xb[static_cast<std::size_t>(cb[k])];
          for (int k = len; k < kChunk; ++k) buf[k] = T{};  // idle lanes
          for (int stride = kChunk / 2; stride >= 1; stride /= 2) {
            for (int k = 0; k < stride; ++k) buf[k] += buf[k + stride];
          }
          sum[b] += buf[0];
        }
      }
      for (int b = 0; b < batch; ++b)
        y[static_cast<std::size_t>(b) * m + static_cast<std::size_t>(r)] =
            sum[b];
    }
  });
}

#define SPMV_SUBVECTOR_INSTANTIATE(T)                                       \
  template void kernel_subvector<T, 2>(const clsim::Engine&,                \
                                       const CsrMatrix<T>&,                 \
                                       std::span<const T>, std::span<T>,    \
                                       std::span<const index_t>, index_t);  \
  template void kernel_subvector<T, 4>(const clsim::Engine&,                \
                                       const CsrMatrix<T>&,                 \
                                       std::span<const T>, std::span<T>,    \
                                       std::span<const index_t>, index_t);  \
  template void kernel_subvector<T, 8>(const clsim::Engine&,                \
                                       const CsrMatrix<T>&,                 \
                                       std::span<const T>, std::span<T>,    \
                                       std::span<const index_t>, index_t);  \
  template void kernel_subvector<T, 16>(const clsim::Engine&,               \
                                        const CsrMatrix<T>&,                \
                                        std::span<const T>, std::span<T>,   \
                                        std::span<const index_t>, index_t); \
  template void kernel_subvector<T, 32>(const clsim::Engine&,               \
                                        const CsrMatrix<T>&,                \
                                        std::span<const T>, std::span<T>,   \
                                        std::span<const index_t>, index_t); \
  template void kernel_subvector<T, 64>(const clsim::Engine&,               \
                                        const CsrMatrix<T>&,                \
                                        std::span<const T>, std::span<T>,   \
                                        std::span<const index_t>, index_t); \
  template void kernel_subvector<T, 128>(const clsim::Engine&,              \
                                         const CsrMatrix<T>&,               \
                                         std::span<const T>, std::span<T>,  \
                                         std::span<const index_t>, index_t);
#define SPMV_SUBVECTOR_BATCH_INSTANTIATE(T, X)                               \
  template void kernel_subvector_batch<T, X>(                                \
      const clsim::Engine&, const CsrMatrix<T>&, std::span<const T>,         \
      std::span<T>, int, std::span<const index_t>, index_t);
#define SPMV_SUBVECTOR_BATCH_INSTANTIATE_ALL(T)                              \
  SPMV_SUBVECTOR_BATCH_INSTANTIATE(T, 2)                                     \
  SPMV_SUBVECTOR_BATCH_INSTANTIATE(T, 4)                                     \
  SPMV_SUBVECTOR_BATCH_INSTANTIATE(T, 8)                                     \
  SPMV_SUBVECTOR_BATCH_INSTANTIATE(T, 16)                                    \
  SPMV_SUBVECTOR_BATCH_INSTANTIATE(T, 32)                                    \
  SPMV_SUBVECTOR_BATCH_INSTANTIATE(T, 64)                                    \
  SPMV_SUBVECTOR_BATCH_INSTANTIATE(T, 128)
SPMV_SUBVECTOR_BATCH_INSTANTIATE_ALL(float)
SPMV_SUBVECTOR_BATCH_INSTANTIATE_ALL(double)
#undef SPMV_SUBVECTOR_BATCH_INSTANTIATE_ALL
#undef SPMV_SUBVECTOR_BATCH_INSTANTIATE
SPMV_SUBVECTOR_INSTANTIATE(float)
SPMV_SUBVECTOR_INSTANTIATE(double)
#undef SPMV_SUBVECTOR_INSTANTIATE

}  // namespace spmv::kernels

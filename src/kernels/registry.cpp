#include "kernels/registry.hpp"

#include <numeric>
#include <stdexcept>

#include "binning/binning.hpp"
#include "kernels/binned_common.hpp"
#include "trace/trace.hpp"

namespace spmv::kernels {

const std::vector<KernelId>& all_kernels() {
  static const std::vector<KernelId> ids = {
      KernelId::Serial, KernelId::Sub2,  KernelId::Sub4,
      KernelId::Sub8,   KernelId::Sub16, KernelId::Sub32,
      KernelId::Sub64,  KernelId::Sub128, KernelId::Vector};
  return ids;
}

const char* kernel_cname(KernelId id) {
  switch (id) {
    case KernelId::Serial: return "serial";
    case KernelId::Sub2: return "subvector2";
    case KernelId::Sub4: return "subvector4";
    case KernelId::Sub8: return "subvector8";
    case KernelId::Sub16: return "subvector16";
    case KernelId::Sub32: return "subvector32";
    case KernelId::Sub64: return "subvector64";
    case KernelId::Sub128: return "subvector128";
    case KernelId::Vector: return "vector";
  }
  throw std::invalid_argument("kernel_cname: bad id");
}

std::string kernel_name(KernelId id) { return kernel_cname(id); }

KernelId kernel_from_name(const std::string& name) {
  for (KernelId id : all_kernels()) {
    if (kernel_name(id) == name) return id;
  }
  throw std::invalid_argument("kernel_from_name: unknown kernel " + name);
}

int lanes_per_row(KernelId id) {
  switch (id) {
    case KernelId::Serial: return 1;
    case KernelId::Sub2: return 2;
    case KernelId::Sub4: return 4;
    case KernelId::Sub8: return 8;
    case KernelId::Sub16: return 16;
    case KernelId::Sub32: return 32;
    case KernelId::Sub64: return 64;
    case KernelId::Sub128: return 128;
    case KernelId::Vector: return 256;
  }
  throw std::invalid_argument("lanes_per_row: bad id");
}

template <typename T>
void run_binned(KernelId id, const clsim::Engine& engine,
                const CsrMatrix<T>& a, std::span<const T> x, std::span<T> y,
                std::span<const index_t> vrows, index_t unit) {
  trace::TraceSpan span(kernel_cname(id), "kernel");
  span.arg("virtual_rows", static_cast<std::int64_t>(vrows.size()));
  span.arg("unit", unit);
  switch (id) {
    case KernelId::Serial:
      return kernel_serial(engine, a, x, y, vrows, unit);
    case KernelId::Sub2:
      return kernel_subvector<T, 2>(engine, a, x, y, vrows, unit);
    case KernelId::Sub4:
      return kernel_subvector<T, 4>(engine, a, x, y, vrows, unit);
    case KernelId::Sub8:
      return kernel_subvector<T, 8>(engine, a, x, y, vrows, unit);
    case KernelId::Sub16:
      return kernel_subvector<T, 16>(engine, a, x, y, vrows, unit);
    case KernelId::Sub32:
      return kernel_subvector<T, 32>(engine, a, x, y, vrows, unit);
    case KernelId::Sub64:
      return kernel_subvector<T, 64>(engine, a, x, y, vrows, unit);
    case KernelId::Sub128:
      return kernel_subvector<T, 128>(engine, a, x, y, vrows, unit);
    case KernelId::Vector:
      return kernel_vector(engine, a, x, y, vrows, unit);
  }
  throw std::invalid_argument("run_binned: bad kernel id");
}

template <typename T>
void run_full(KernelId id, const clsim::Engine& engine, const CsrMatrix<T>& a,
              std::span<const T> x, std::span<T> y) {
  // The whole matrix as one bin of granularity 1: virtual row i == row i.
  std::vector<index_t> vrows(static_cast<std::size_t>(a.rows()));
  std::iota(vrows.begin(), vrows.end(), index_t{0});
  run_binned(id, engine, a, x, y, vrows, 1);
}

bool has_batched_variant(KernelId id) { return id != KernelId::Vector; }

namespace {

/// Widest native batch whose local-memory footprint fits the device's
/// 32 KiB arena (mirrors the local_array calls in kernel_serial_batch /
/// kernel_subvector_batch). 0 = no native variant; callers slice wider
/// batches into limit-sized launches.
template <typename T>
int native_batch_limit(KernelId id) {
  constexpr std::size_t kArena = 32 * 1024;
  constexpr std::size_t kGroup = 256, kWave = 64, kFactor = 4;
  std::size_t fixed = 0, per_batch = 0;
  if (id == KernelId::Serial) {
    fixed = kWave * (2 * sizeof(offset_t) + sizeof(index_t));
    per_batch = kWave * sizeof(T);  // one accumulator lane per wavefront
  } else if (has_batched_variant(id)) {
    // val/col stage + reduction buffer, plus per-subgroup batch sums.
    fixed = kFactor * kGroup * (2 * sizeof(T) + sizeof(index_t));
    per_batch = (kGroup / static_cast<std::size_t>(lanes_per_row(id))) *
                sizeof(T);
  } else {
    return 0;
  }
  if (fixed >= kArena) return 0;
  const auto limit = static_cast<int>((kArena - fixed) / per_batch);
  return std::min(limit, kMaxNativeBatch);
}

/// Dispatch one native batched launch (batch within native_batch_limit).
template <typename T>
void run_native_batch(KernelId id, const clsim::Engine& engine,
                      const CsrMatrix<T>& a, std::span<const T> x,
                      std::span<T> y, int batch,
                      std::span<const index_t> vrows, index_t unit) {
  switch (id) {
    case KernelId::Serial:
      return kernel_serial_batch(engine, a, x, y, batch, vrows, unit);
    case KernelId::Sub2:
      return kernel_subvector_batch<T, 2>(engine, a, x, y, batch, vrows, unit);
    case KernelId::Sub4:
      return kernel_subvector_batch<T, 4>(engine, a, x, y, batch, vrows, unit);
    case KernelId::Sub8:
      return kernel_subvector_batch<T, 8>(engine, a, x, y, batch, vrows, unit);
    case KernelId::Sub16:
      return kernel_subvector_batch<T, 16>(engine, a, x, y, batch, vrows,
                                           unit);
    case KernelId::Sub32:
      return kernel_subvector_batch<T, 32>(engine, a, x, y, batch, vrows,
                                           unit);
    case KernelId::Sub64:
      return kernel_subvector_batch<T, 64>(engine, a, x, y, batch, vrows,
                                           unit);
    case KernelId::Sub128:
      return kernel_subvector_batch<T, 128>(engine, a, x, y, batch, vrows,
                                            unit);
    case KernelId::Vector:
      break;
  }
  throw std::invalid_argument("run_native_batch: kernel has no batched variant");
}

}  // namespace

template <typename T>
void run_binned_batch(KernelId id, const clsim::Engine& engine,
                      const CsrMatrix<T>& a, std::span<const T> x,
                      std::span<T> y, int batch,
                      std::span<const index_t> vrows, index_t unit) {
  if (batch <= 0)
    throw std::invalid_argument("run_binned_batch: batch must be positive");
  if (x.size() != static_cast<std::size_t>(a.cols()) *
                      static_cast<std::size_t>(batch) ||
      y.size() != static_cast<std::size_t>(a.rows()) *
                      static_cast<std::size_t>(batch))
    throw std::invalid_argument("run_binned_batch: X/Y extents do not match "
                                "cols*batch / rows*batch");
  if (batch == 1) return run_binned(id, engine, a, x, y, vrows, unit);
  trace::TraceSpan span(kernel_cname(id), "kernel-batch");
  span.arg("width", batch);
  span.arg("virtual_rows", static_cast<std::int64_t>(vrows.size()));
  const int limit = native_batch_limit<T>(id);
  if (limit >= 2) {
    // Native path, sliced so each launch's accumulators fit the arena.
    const auto cols = static_cast<std::size_t>(a.cols());
    const auto rows = static_cast<std::size_t>(a.rows());
    for (int b0 = 0; b0 < batch; b0 += limit) {
      const int w = std::min(limit, batch - b0);
      const auto xw = x.subspan(static_cast<std::size_t>(b0) * cols,
                                static_cast<std::size_t>(w) * cols);
      const auto yw = y.subspan(static_cast<std::size_t>(b0) * rows,
                                static_cast<std::size_t>(w) * rows);
      if (w == 1) {
        run_binned(id, engine, a, xw, yw, vrows, unit);
      } else {
        run_native_batch(id, engine, a, xw, yw, w, vrows, unit);
      }
    }
    return;
  }
  // Fallback: one single-vector launch per batch column.
  for (int b = 0; b < batch; ++b) {
    run_binned(id, engine, a, batch_column(x, a.cols(), b),
               batch_column(y, a.rows(), b), vrows, unit);
  }
}

#define SPMV_REGISTRY_INSTANTIATE(T)                                         \
  template void run_binned(KernelId, const clsim::Engine&,                   \
                           const CsrMatrix<T>&, std::span<const T>,          \
                           std::span<T>, std::span<const index_t>, index_t); \
  template void run_full(KernelId, const clsim::Engine&, const CsrMatrix<T>&,\
                         std::span<const T>, std::span<T>);                  \
  template void run_binned_batch(KernelId, const clsim::Engine&,             \
                                 const CsrMatrix<T>&, std::span<const T>,    \
                                 std::span<T>, int,                          \
                                 std::span<const index_t>, index_t);
SPMV_REGISTRY_INSTANTIATE(float)
SPMV_REGISTRY_INSTANTIATE(double)
#undef SPMV_REGISTRY_INSTANTIATE

}  // namespace spmv::kernels

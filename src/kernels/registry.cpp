#include "kernels/registry.hpp"

#include <numeric>
#include <stdexcept>

#include "binning/binning.hpp"

namespace spmv::kernels {

const std::vector<KernelId>& all_kernels() {
  static const std::vector<KernelId> ids = {
      KernelId::Serial, KernelId::Sub2,  KernelId::Sub4,
      KernelId::Sub8,   KernelId::Sub16, KernelId::Sub32,
      KernelId::Sub64,  KernelId::Sub128, KernelId::Vector};
  return ids;
}

std::string kernel_name(KernelId id) {
  switch (id) {
    case KernelId::Serial: return "serial";
    case KernelId::Sub2: return "subvector2";
    case KernelId::Sub4: return "subvector4";
    case KernelId::Sub8: return "subvector8";
    case KernelId::Sub16: return "subvector16";
    case KernelId::Sub32: return "subvector32";
    case KernelId::Sub64: return "subvector64";
    case KernelId::Sub128: return "subvector128";
    case KernelId::Vector: return "vector";
  }
  throw std::invalid_argument("kernel_name: bad id");
}

KernelId kernel_from_name(const std::string& name) {
  for (KernelId id : all_kernels()) {
    if (kernel_name(id) == name) return id;
  }
  throw std::invalid_argument("kernel_from_name: unknown kernel " + name);
}

int lanes_per_row(KernelId id) {
  switch (id) {
    case KernelId::Serial: return 1;
    case KernelId::Sub2: return 2;
    case KernelId::Sub4: return 4;
    case KernelId::Sub8: return 8;
    case KernelId::Sub16: return 16;
    case KernelId::Sub32: return 32;
    case KernelId::Sub64: return 64;
    case KernelId::Sub128: return 128;
    case KernelId::Vector: return 256;
  }
  throw std::invalid_argument("lanes_per_row: bad id");
}

template <typename T>
void run_binned(KernelId id, const clsim::Engine& engine,
                const CsrMatrix<T>& a, std::span<const T> x, std::span<T> y,
                std::span<const index_t> vrows, index_t unit) {
  switch (id) {
    case KernelId::Serial:
      return kernel_serial(engine, a, x, y, vrows, unit);
    case KernelId::Sub2:
      return kernel_subvector<T, 2>(engine, a, x, y, vrows, unit);
    case KernelId::Sub4:
      return kernel_subvector<T, 4>(engine, a, x, y, vrows, unit);
    case KernelId::Sub8:
      return kernel_subvector<T, 8>(engine, a, x, y, vrows, unit);
    case KernelId::Sub16:
      return kernel_subvector<T, 16>(engine, a, x, y, vrows, unit);
    case KernelId::Sub32:
      return kernel_subvector<T, 32>(engine, a, x, y, vrows, unit);
    case KernelId::Sub64:
      return kernel_subvector<T, 64>(engine, a, x, y, vrows, unit);
    case KernelId::Sub128:
      return kernel_subvector<T, 128>(engine, a, x, y, vrows, unit);
    case KernelId::Vector:
      return kernel_vector(engine, a, x, y, vrows, unit);
  }
  throw std::invalid_argument("run_binned: bad kernel id");
}

template <typename T>
void run_full(KernelId id, const clsim::Engine& engine, const CsrMatrix<T>& a,
              std::span<const T> x, std::span<T> y) {
  // The whole matrix as one bin of granularity 1: virtual row i == row i.
  std::vector<index_t> vrows(static_cast<std::size_t>(a.rows()));
  std::iota(vrows.begin(), vrows.end(), index_t{0});
  run_binned(id, engine, a, x, y, vrows, 1);
}

#define SPMV_REGISTRY_INSTANTIATE(T)                                         \
  template void run_binned(KernelId, const clsim::Engine&,                   \
                           const CsrMatrix<T>&, std::span<const T>,          \
                           std::span<T>, std::span<const index_t>, index_t); \
  template void run_full(KernelId, const clsim::Engine&, const CsrMatrix<T>&,\
                         std::span<const T>, std::span<T>);
SPMV_REGISTRY_INSTANTIATE(float)
SPMV_REGISTRY_INSTANTIATE(double)
#undef SPMV_REGISTRY_INSTANTIATE

}  // namespace spmv::kernels

#include "kernels/registry.hpp"

#include <stdexcept>

#include "exec/clsim_backend.hpp"

namespace spmv::kernels {

const std::vector<KernelId>& all_kernels() {
  static const std::vector<KernelId> ids = {
      KernelId::Serial, KernelId::Sub2,  KernelId::Sub4,
      KernelId::Sub8,   KernelId::Sub16, KernelId::Sub32,
      KernelId::Sub64,  KernelId::Sub128, KernelId::Vector};
  return ids;
}

const char* kernel_cname(KernelId id) {
  switch (id) {
    case KernelId::Serial: return "serial";
    case KernelId::Sub2: return "subvector2";
    case KernelId::Sub4: return "subvector4";
    case KernelId::Sub8: return "subvector8";
    case KernelId::Sub16: return "subvector16";
    case KernelId::Sub32: return "subvector32";
    case KernelId::Sub64: return "subvector64";
    case KernelId::Sub128: return "subvector128";
    case KernelId::Vector: return "vector";
  }
  throw std::invalid_argument("kernel_cname: bad id");
}

std::string kernel_name(KernelId id) { return kernel_cname(id); }

std::optional<KernelId> try_kernel_from_name(const std::string& name) {
  for (KernelId id : all_kernels()) {
    if (name == kernel_cname(id)) return id;
  }
  return std::nullopt;
}

KernelId kernel_from_name(const std::string& name) {
  if (const auto id = try_kernel_from_name(name); id.has_value()) return *id;
  throw std::invalid_argument("kernel_from_name: unknown kernel " + name);
}

int lanes_per_row(KernelId id) {
  switch (id) {
    case KernelId::Serial: return 1;
    case KernelId::Sub2: return 2;
    case KernelId::Sub4: return 4;
    case KernelId::Sub8: return 8;
    case KernelId::Sub16: return 16;
    case KernelId::Sub32: return 32;
    case KernelId::Sub64: return 64;
    case KernelId::Sub128: return 128;
    case KernelId::Vector: return 256;
  }
  throw std::invalid_argument("lanes_per_row: bad id");
}

bool has_batched_variant(KernelId id) { return id != KernelId::Vector; }

// --- deprecated forwards ----------------------------------------------
// Dispatch moved to exec (exec/clsim_backend.cpp); these wrappers keep the
// old engine-taking entry points alive for one release.

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

template <typename T>
void run_binned(KernelId id, const clsim::Engine& engine,
                const CsrMatrix<T>& a, std::span<const T> x, std::span<T> y,
                std::span<const index_t> vrows, index_t unit) {
  exec::ClsimBackend(engine).run_binned(id, a, x, y, vrows, unit);
}

template <typename T>
void run_full(KernelId id, const clsim::Engine& engine, const CsrMatrix<T>& a,
              std::span<const T> x, std::span<T> y) {
  exec::ClsimBackend(engine).run_full(id, a, x, y);
}

template <typename T>
void run_binned_batch(KernelId id, const clsim::Engine& engine,
                      const CsrMatrix<T>& a, std::span<const T> x,
                      std::span<T> y, int batch,
                      std::span<const index_t> vrows, index_t unit) {
  exec::ClsimBackend(engine).run_binned_batch(id, a, x, y, batch, vrows, unit);
}

#define SPMV_REGISTRY_INSTANTIATE(T)                                         \
  template void run_binned(KernelId, const clsim::Engine&,                   \
                           const CsrMatrix<T>&, std::span<const T>,          \
                           std::span<T>, std::span<const index_t>, index_t); \
  template void run_full(KernelId, const clsim::Engine&, const CsrMatrix<T>&,\
                         std::span<const T>, std::span<T>);                  \
  template void run_binned_batch(KernelId, const clsim::Engine&,             \
                                 const CsrMatrix<T>&, std::span<const T>,    \
                                 std::span<T>, int,                          \
                                 std::span<const index_t>, index_t);
SPMV_REGISTRY_INSTANTIATE(float)
SPMV_REGISTRY_INSTANTIATE(double)
#undef SPMV_REGISTRY_INSTANTIATE

#pragma GCC diagnostic pop

}  // namespace spmv::kernels

// Kernel-Serial (paper Algorithm 3): one work-item per row.
//
// Faithful SIMT emulation: each 64-lane wavefront advances its lanes in
// lockstep, one non-zero per lane per step, until the longest row in the
// wavefront is exhausted. This reproduces the kernel's two GPU performance
// signatures on the CPU substrate: (1) per-step memory accesses are
// scattered across 64 different rows (the uncoalesced pattern), and (2) a
// wavefront runs as long as its longest row, so divergent row lengths waste
// lane-steps.
#include "kernels/registry.hpp"

#include <algorithm>

#include "kernels/binned_common.hpp"

namespace spmv::kernels {

namespace {
constexpr int kGroupSize = 256;  // paper: fixed 256-thread work-groups
constexpr int kWavefront = 64;   // GCN wavefront width
}  // namespace

template <typename T>
void kernel_serial(const clsim::Engine& engine, const CsrMatrix<T>& a,
                   std::span<const T> x, std::span<T> y,
                   std::span<const index_t> vrows, index_t unit) {
  const RowMap map{vrows, unit, a.rows()};
  const std::int64_t slots = map.total_slots();
  if (slots == 0) return;

  const auto row_ptr = a.row_ptr();
  const auto col_idx = a.col_idx();
  const auto vals = a.vals();

  clsim::LaunchParams lp;
  lp.num_groups = clsim::div_up(static_cast<std::size_t>(slots), kGroupSize);
  lp.group_size = kGroupSize;
  lp.chunk = 16;  // cheap groups: amortize scheduling

  engine.launch(lp, [&](clsim::WorkGroup& wg) {
    auto pos = wg.local_array<offset_t>(kWavefront);
    auto end = wg.local_array<offset_t>(kWavefront);
    auto row = wg.local_array<index_t>(kWavefront);
    auto acc = wg.local_array<T>(kWavefront);

    const std::int64_t group_base =
        static_cast<std::int64_t>(wg.group_id()) * kGroupSize;
    for (int wave = 0; wave < kGroupSize / kWavefront; ++wave) {
      const std::int64_t wave_base = group_base + wave * kWavefront;
      // Lane setup.
      for (int t = 0; t < kWavefront; ++t) {
        const std::int64_t s = wave_base + t;
        const index_t r = s < slots ? map.slot_to_row(s) : index_t{-1};
        row[t] = r;
        if (r >= 0) {
          pos[t] = row_ptr[static_cast<std::size_t>(r)];
          end[t] = row_ptr[static_cast<std::size_t>(r) + 1];
        } else {
          pos[t] = end[t] = 0;
        }
        acc[t] = T{};
      }
      // Lockstep execution: all lanes advance one element per step.
      bool active = true;
      while (active) {
        active = false;
        for (int t = 0; t < kWavefront; ++t) {
          if (pos[t] < end[t]) {
            const auto j = static_cast<std::size_t>(pos[t]);
            acc[t] += vals[j] * x[static_cast<std::size_t>(col_idx[j])];
            ++pos[t];
            active = true;
          }
        }
      }
      for (int t = 0; t < kWavefront; ++t) {
        if (row[t] >= 0) y[static_cast<std::size_t>(row[t])] = acc[t];
      }
    }
  });
}

// Same wavefront machinery as kernel_serial, but each lane carries `batch`
// accumulators: one lockstep step reads one (value, column) pair and feeds
// every vector of the batch, so the CSR traversal — the kernel's dominant
// memory traffic — is amortized across the whole batch.
template <typename T>
void kernel_serial_batch(const clsim::Engine& engine, const CsrMatrix<T>& a,
                         std::span<const T> x, std::span<T> y, int batch,
                         std::span<const index_t> vrows, index_t unit) {
  const RowMap map{vrows, unit, a.rows()};
  const std::int64_t slots = map.total_slots();
  if (slots == 0 || batch <= 0) return;
  const auto n = static_cast<std::size_t>(a.cols());
  const auto m = static_cast<std::size_t>(a.rows());

  const auto row_ptr = a.row_ptr();
  const auto col_idx = a.col_idx();
  const auto vals = a.vals();

  clsim::LaunchParams lp;
  lp.num_groups = clsim::div_up(static_cast<std::size_t>(slots), kGroupSize);
  lp.group_size = kGroupSize;
  lp.chunk = 16;

  engine.launch(lp, [&](clsim::WorkGroup& wg) {
    auto pos = wg.local_array<offset_t>(kWavefront);
    auto end = wg.local_array<offset_t>(kWavefront);
    auto row = wg.local_array<index_t>(kWavefront);
    auto acc = wg.local_array<T>(static_cast<std::size_t>(kWavefront) *
                                 static_cast<std::size_t>(batch));

    const std::int64_t group_base =
        static_cast<std::int64_t>(wg.group_id()) * kGroupSize;
    for (int wave = 0; wave < kGroupSize / kWavefront; ++wave) {
      const std::int64_t wave_base = group_base + wave * kWavefront;
      for (int t = 0; t < kWavefront; ++t) {
        const std::int64_t s = wave_base + t;
        const index_t r = s < slots ? map.slot_to_row(s) : index_t{-1};
        row[t] = r;
        if (r >= 0) {
          pos[t] = row_ptr[static_cast<std::size_t>(r)];
          end[t] = row_ptr[static_cast<std::size_t>(r) + 1];
        } else {
          pos[t] = end[t] = 0;
        }
        for (int b = 0; b < batch; ++b) acc[t * batch + b] = T{};
      }
      bool active = true;
      while (active) {
        active = false;
        for (int t = 0; t < kWavefront; ++t) {
          if (pos[t] < end[t]) {
            const auto j = static_cast<std::size_t>(pos[t]);
            const T v = vals[j];
            const auto c = static_cast<std::size_t>(col_idx[j]);
            for (int b = 0; b < batch; ++b)
              acc[t * batch + b] += v * x[static_cast<std::size_t>(b) * n + c];
            ++pos[t];
            active = true;
          }
        }
      }
      for (int t = 0; t < kWavefront; ++t) {
        if (row[t] < 0) continue;
        const auto r = static_cast<std::size_t>(row[t]);
        for (int b = 0; b < batch; ++b)
          y[static_cast<std::size_t>(b) * m + r] = acc[t * batch + b];
      }
    }
  });
}

template void kernel_serial(const clsim::Engine&, const CsrMatrix<float>&,
                            std::span<const float>, std::span<float>,
                            std::span<const index_t>, index_t);
template void kernel_serial(const clsim::Engine&, const CsrMatrix<double>&,
                            std::span<const double>, std::span<double>,
                            std::span<const index_t>, index_t);
template void kernel_serial_batch(const clsim::Engine&,
                                  const CsrMatrix<float>&,
                                  std::span<const float>, std::span<float>,
                                  int, std::span<const index_t>, index_t);
template void kernel_serial_batch(const clsim::Engine&,
                                  const CsrMatrix<double>&,
                                  std::span<const double>, std::span<double>,
                                  int, std::span<const index_t>, index_t);

}  // namespace spmv::kernels

// Shared helpers for the binned SpMV kernels.
//
// A bin stores *virtual-row* indices at granularity `unit`: virtual row v
// covers actual matrix rows [v*unit, min((v+1)*unit, m)). Kernels address
// work by "slot": slot s maps to the (s % unit)-th actual row of the
// (s / unit)-th virtual row in the bin. Slots pointing past the end of the
// matrix (only possible in the matrix's final virtual row) are idle — the
// same idle-lane behaviour a GPU launch rounded up to the group size has.
#pragma once

#include <cstdint>
#include <span>

#include "sparse/csr.hpp"

namespace spmv::kernels {

/// Maps bin slots to actual matrix rows.
struct RowMap {
  std::span<const index_t> vrows;  ///< virtual-row indices in the bin
  index_t unit = 1;                ///< granularity U
  index_t m = 0;                   ///< matrix row count

  /// Total slots = virtual rows in bin x unit (some may be idle).
  [[nodiscard]] std::int64_t total_slots() const {
    return static_cast<std::int64_t>(vrows.size()) *
           static_cast<std::int64_t>(unit);
  }

  /// Actual row for slot s, or -1 when the slot is idle.
  [[nodiscard]] index_t slot_to_row(std::int64_t s) const {
    const auto vi = static_cast<std::size_t>(s / unit);
    const auto r = static_cast<std::int64_t>(vrows[vi]) * unit + (s % unit);
    return r < m ? static_cast<index_t>(r) : index_t{-1};
  }
};

/// Column-major multi-vector batch layout: `width` dense vectors of length
/// `len` stored back to back, vector b occupying [b*len, (b+1)*len). This
/// is the layout batched execution (Y = A·X) and the serving layer's
/// request coalescing use; column(b) recovers one vector's span.
template <typename T>
[[nodiscard]] inline std::span<T> batch_column(std::span<T> data, index_t len,
                                               int b) {
  return data.subspan(static_cast<std::size_t>(b) *
                          static_cast<std::size_t>(len),
                      static_cast<std::size_t>(len));
}

}  // namespace spmv::kernels

// spmv::iter::IterativeSession — solver-loop serving (power iteration, CG,
// Jacobi sweeps): the same matrix multiplied hundreds of times back-to-back
// with the output feeding back as the next input. Three things distinguish
// it from the request/response SpmvService:
//
// 1. Latency-driven tuning. Every iteration IS a measurement, so when
//    SessionOptions::adapt is set the session never runs shadow launches —
//    it asks adapt::BanditTuner::next_variant() which plan to execute this
//    iteration (the incumbent, or a one-bin kernel challenger), times the
//    real launch, and reports it through feedback(). Promotions converge on
//    the oracle plan from serving latencies alone (adapt.trials stays 0;
//    adapt.l_trials / adapt.l_promotions count this path), and each
//    promoted plan is stamped with the serving block width
//    (Plan::spmm_width) so its provenance survives the PlanStore.
//
// 2. Value mutation without re-planning. update_values() installs new
//    non-zero values for the unchanged structure: plans are
//    value-independent (serve::Fingerprint hashes structure only), so the
//    session keeps its plan, bins, and bandit arm state, and value-refreshes
//    any materialized bin layouts (fmt::PlanLayouts::refresh_values)
//    instead of rebuilding them — zero binning or planning passes, asserted
//    via SessionStats. replace_matrix() is the general form: a structurally
//    identical replacement (fingerprint-checked) takes the same cheap path;
//    a structural change forces the full re-bin + re-plan
//    (SessionStats::structure_rebinds).
//
// 3. Block iterates. SessionOptions::spmm_width > 1 iterates a column-major
//    block of vectors through the true-SpMM path (core::execute_plan_spmm,
//    one CSR traversal for the whole block) — e.g. subspace/block power
//    iteration. seed()/step()/iterate() manage the feedback buffers; run()
//    / run_block() serve caller-owned vectors through the same timed,
//    tuning-fed path.
//
// Concurrency: execution state (matrix, plan, bins, layouts) lives in an
// immutable snapshot swapped atomically under a mutex — run()/run_block()
// read a snapshot and never block each other or a concurrent
// update_values()/promotion (in-flight launches keep the old matrix and
// layouts alive via shared_ptr). step() additionally serializes on the
// iterate buffers. Attach a PlanStore and the session warm-starts from it
// (SessionStats::warm_starts, planning_passes == 0) and writes its final
// plan back at flush()/destruction.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>

#include "adapt/bandit.hpp"
#include "adapt/plan_store.hpp"
#include "binning/binning.hpp"
#include "core/plan.hpp"
#include "core/predictor.hpp"
#include "exec/backend.hpp"
#include "fmt/format.hpp"
#include "fmt/plan_layouts.hpp"
#include "iter/dense_block.hpp"
#include "prof/profile.hpp"
#include "serve/fingerprint.hpp"
#include "sparse/csr.hpp"

namespace spmv::iter {

struct SessionOptions {
  /// Dense right-hand-side columns per iteration (the block width). 1
  /// iterates a single vector; >1 routes through the true-SpMM path.
  int spmm_width = 1;
  /// Execution engine; null = clsim::default_engine(). Only used when
  /// `backend` is Clsim.
  const clsim::Engine* engine = nullptr;
  /// Backend stamped onto fresh predictor-driven plans; warm-started plans
  /// are re-stamped too (the session owns one execution context).
  exec::BackendKind backend = exec::BackendKind::Clsim;
  /// Per-bin format mode for fresh predictor-driven plans (`--format`).
  fmt::FormatMode format = fmt::FormatMode::Csr;
  /// When bin layouts are materialized (tests set `.eager = true`).
  fmt::AmortizationPolicy format_policy;
  /// Optional telemetry sink: flush()/destruction folds the tuner's
  /// AdaptStats into profile->adapt; executions record per-bin timings
  /// continuously. Must outlive the session.
  prof::RunProfile* profile = nullptr;
  /// Optional persistent plan store: loaded (exactly once, by the session)
  /// at construction for warm start, written through on promotion, flushed
  /// at flush()/destruction. Must outlive the session; do not pre-load it.
  adapt::PlanStore* plan_store = nullptr;
  /// Enable latency-feedback tuning (see file comment). trial_fraction is
  /// ignored on this path — every iteration feeds the arms.
  std::optional<adapt::AdaptOptions> adapt;
};

/// Counters for the session's own lifecycle (the tuner's arm accounting is
/// prof::AdaptStats, merged into SessionOptions::profile at flush()).
struct SessionStats {
  std::uint64_t iterations = 0;        ///< timed executions (any width)
  std::uint64_t promotions = 0;        ///< latency-feedback plans applied
  std::uint64_t value_updates = 0;     ///< update_values / same-structure swaps
  std::uint64_t layout_refreshes = 0;  ///< bin layouts value-refreshed
  std::uint64_t structure_rebinds = 0; ///< replace_matrix re-bin + re-plan
  std::uint64_t planning_passes = 0;   ///< predictor-driven plan builds
  std::uint64_t warm_starts = 0;       ///< plans adopted from the store
  double exec_total_s = 0.0;           ///< wall time inside timed executions
};

template <typename T>
class IterativeSession {
 public:
  /// Plan for `a` (warm-started from the store when possible, else through
  /// `predictor`) and stand ready to iterate. The predictor must outlive
  /// the session; the matrix is shared (update_values/replace_matrix swap
  /// it without invalidating in-flight runs).
  IterativeSession(std::shared_ptr<const CsrMatrix<T>> a,
                   const core::Predictor& predictor,
                   SessionOptions opts = {});

  /// flush() (logging, never throwing) — see flush().
  ~IterativeSession();

  IterativeSession(const IterativeSession&) = delete;
  IterativeSession& operator=(const IterativeSession&) = delete;

  /// One timed y = A·x iteration through the current plan (and, when
  /// tuning, this iteration's latency variant). Thread-safe; concurrent
  /// calls proceed in parallel on the same state snapshot.
  void run(std::span<const T> x, std::span<T> y);

  /// Block variant: Y = A·X for `width` column-major vectors through the
  /// true-SpMM path. run(x, y) == run_block(x, y, 1).
  void run_block(std::span<const T> x, std::span<T> y, int width);

  /// Seed the feedback iterate with `x0` (rows == cols required;
  /// spmm_width columns of a.cols() entries, column-major).
  void seed(std::span<const T> x0);

  /// One solver step: iterate <- A·iterate (whole block), returning a view
  /// of the new iterate. Callers normalize between steps via iterate().
  /// Serialized against other step() calls; safe alongside run() and
  /// update_values().
  std::span<const T> step();

  /// Mutable view of the current iterate block (rows*spmm_width entries),
  /// e.g. for per-step normalization. Not synchronized against a
  /// concurrent step() — interleave them from one thread.
  [[nodiscard]] std::span<T> iterate();

  /// Install new non-zero values for the unchanged structure. Keeps the
  /// plan, bins, and bandit state; value-refreshes materialized layouts.
  /// Runs already in flight finish against the old values.
  void update_values(std::span<const T> new_vals);

  /// Swap in a replacement matrix. A structurally identical one
  /// (fingerprint-checked — the cheap structural-delta check) takes the
  /// update_values path with zero re-binning; a structural change re-bins
  /// and re-plans (warm-started from the store when it knows the new
  /// structure).
  void replace_matrix(std::shared_ptr<const CsrMatrix<T>> a);

  /// Write the current plan through to the store (stamped with the serving
  /// width) and flush it; fold tuner stats into the profile. Idempotent
  /// per accumulated delta; the destructor calls it, logging failures.
  void flush();

  [[nodiscard]] SessionStats stats() const;
  /// Snapshot of the current plan (copy — the live one may be promoted
  /// concurrently).
  [[nodiscard]] core::Plan plan() const;
  [[nodiscard]] std::shared_ptr<const CsrMatrix<T>> matrix() const;
  /// Tuner arm accounting (zeros when adapt is off).
  [[nodiscard]] prof::AdaptStats adapt_stats() const;

 private:
  /// Immutable execution snapshot; run() holds a shared_ptr across the
  /// launch so swaps never invalidate in-flight work.
  struct State {
    std::shared_ptr<const CsrMatrix<T>> a;
    serve::Fingerprint key;
    core::Plan plan;
    std::shared_ptr<const binning::BinSet> bins;
    std::shared_ptr<fmt::PlanLayouts<T>> layouts;  ///< null when CSR-only
  };

  [[nodiscard]] std::shared_ptr<const State> snapshot() const;
  [[nodiscard]] std::shared_ptr<State> build_state(
      std::shared_ptr<const CsrMatrix<T>> a);
  void execute(const std::shared_ptr<const State>& st, std::span<const T> x,
               std::span<T> y, int width);
  void apply_promotion(const std::shared_ptr<const State>& st,
                       typename adapt::BanditTuner<T>::Promotion promo);
  void store_put(const State& st, double gflops);

  const core::Predictor& predictor_;
  SessionOptions opts_;
  std::shared_ptr<const exec::Backend> backend_;
  std::unique_ptr<adapt::BanditTuner<T>> tuner_;  ///< null when adapt off

  mutable std::mutex mu_;          ///< guards state_ swaps
  std::shared_ptr<const State> state_;

  mutable std::mutex stats_mu_;
  SessionStats stats_;
  bool profile_folded_ = false;

  std::mutex iter_mu_;             ///< serializes step() on the buffers
  DenseBlock<T> iterate_;
  DenseBlock<T> product_;
};

extern template class IterativeSession<float>;
extern template class IterativeSession<double>;

}  // namespace spmv::iter

#include "iter/session.hpp"

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/exhaustive.hpp"
#include "fmt/estimate.hpp"
#include "sparse/matrix_stats.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace spmv::iter {

namespace {

void check_block(std::int64_t have, std::int64_t vec_len, int width,
                 const char* what) {
  if (width <= 0)
    throw std::invalid_argument("IterativeSession: width must be positive");
  if (have != vec_len * width)
    throw std::invalid_argument(
        std::string("IterativeSession: ") + what + " has " +
        std::to_string(have) + " entries, expected " +
        std::to_string(vec_len * width) + " (" + std::to_string(width) +
        " columns of " + std::to_string(vec_len) + ")");
}

}  // namespace

template <typename T>
IterativeSession<T>::IterativeSession(std::shared_ptr<const CsrMatrix<T>> a,
                                      const core::Predictor& predictor,
                                      SessionOptions opts)
    : predictor_(predictor), opts_(std::move(opts)) {
  if (a == nullptr)
    throw std::invalid_argument("IterativeSession: null matrix");
  opts_.spmm_width = std::max(1, opts_.spmm_width);
  if (opts_.backend == exec::BackendKind::Clsim && opts_.engine != nullptr)
    backend_ = exec::wrap_engine(*opts_.engine);
  else
    backend_ = exec::shared_backend(opts_.backend);
  if (opts_.adapt.has_value()) {
    const clsim::Engine& engine =
        opts_.engine != nullptr ? *opts_.engine : clsim::default_engine();
    tuner_ = std::make_unique<adapt::BanditTuner<T>>(engine, *opts_.adapt);
  }
  if (opts_.plan_store != nullptr) opts_.plan_store->load();
  state_ = build_state(std::move(a));
}

template <typename T>
IterativeSession<T>::~IterativeSession() {
  try {
    flush();
  } catch (const std::exception& e) {
    util::log_warn() << "iter session: flush at destruction failed: "
                     << e.what();
  }
}

template <typename T>
std::shared_ptr<const typename IterativeSession<T>::State>
IterativeSession<T>::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

template <typename T>
std::shared_ptr<typename IterativeSession<T>::State>
IterativeSession<T>::build_state(std::shared_ptr<const CsrMatrix<T>> a) {
  auto st = std::make_shared<State>();
  st->key = serve::fingerprint_of(*a);
  std::optional<adapt::StoredPlan> stored;
  if (opts_.plan_store != nullptr) stored = opts_.plan_store->lookup(st->key);
  if (stored.has_value()) {
    // Warm start: the stored plan skips the predictor pass entirely. The
    // session owns one execution context, so the plan is re-stamped with
    // it (same contract as AutoSpmv's external-plan constructor).
    st->plan = std::move(stored->plan);
    st->plan.normalize();
    st->plan.backend = backend_->kind();
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.warm_starts += 1;
  } else {
    const RowStats rstats = compute_row_stats(*a);
    const core::Predictor::UnitChoice choice = predictor_.predict_unit(rstats);
    st->plan.unit = choice.unit;
    st->plan.single_bin = choice.single_bin;
    st->plan.backend = backend_->kind();
    const binning::BinSet bins = core::bins_for_plan(*a, st->plan);
    for (int b : bins.occupied_bins())
      st->plan.bin_kernels.push_back(
          {b, predictor_.predict_kernel(rstats, st->plan.unit, b)});
    if (opts_.format == fmt::FormatMode::Auto &&
        backend_->supports_formats()) {
      for (core::BinPlan& bp : st->plan.bin_kernels) {
        const auto f =
            fmt::compute_bin_features(*a, bins.bin(bp.bin_id), st->plan.unit);
        bp.format = fmt::estimate_bin_format(f);
      }
    }
    if (opts_.plan_store != nullptr)
      opts_.plan_store->put(st->key, adapt::StoredPlan{st->plan});
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.planning_passes += 1;
  }
  st->bins = std::make_shared<const binning::BinSet>(
      core::bins_for_plan(*a, st->plan));
  if (st->plan.uses_formats() && backend_->supports_formats())
    st->layouts = std::make_shared<fmt::PlanLayouts<T>>(opts_.format_policy);
  st->a = std::move(a);
  return st;
}

template <typename T>
void IterativeSession<T>::execute(const std::shared_ptr<const State>& st,
                                  std::span<const T> x, std::span<T> y,
                                  int width) {
  const core::Plan* plan = &st->plan;
  std::optional<typename adapt::BanditTuner<T>::LatencyVariant> variant;
  if (tuner_ != nullptr) {
    variant = tuner_->next_variant(st->key, st->plan, *st->bins, *st->a);
    plan = &variant->plan;
  }
  util::Timer t;
  if (width == 1)
    core::execute_plan(*backend_, *st->a, x, y, *st->bins, *plan,
                       opts_.profile, st->layouts.get());
  else
    core::execute_plan_spmm(*backend_, *st->a, x, y, width, *st->bins, *plan,
                            opts_.profile, st->layouts.get());
  const double seconds = t.elapsed_s();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.iterations += 1;
    stats_.exec_total_s += seconds;
  }
  if (tuner_ != nullptr && variant->bin >= 0) {
    // One iteration moved 2*nnz flops per column; the whole-block latency
    // scores the variant's arm.
    auto promo = tuner_->feedback(
        st->key, *variant, seconds,
        static_cast<std::int64_t>(st->a->nnz()) * width);
    if (promo.has_value()) {
      promo->plan.spmm_width = width;  // serving-width provenance
      apply_promotion(st, std::move(*promo));
    }
  }
}

template <typename T>
void IterativeSession<T>::apply_promotion(
    const std::shared_ptr<const State>& st,
    typename adapt::BanditTuner<T>::Promotion promo) {
  std::shared_ptr<State> ns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // The snapshot this promotion was measured against must still be the
    // live state — an update_values/replace_matrix/another promotion in
    // between invalidates it (the tuner will re-derive on the next
    // iteration; arms persist, so nothing is lost).
    if (state_ != st) return;
    ns = std::make_shared<State>(*st);
    ns->plan = std::move(promo.plan);
    state_ = ns;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.promotions += 1;
  }
  store_put(*ns, promo.gflops);
}

template <typename T>
void IterativeSession<T>::store_put(const State& st, double gflops) {
  if (opts_.plan_store == nullptr) return;
  adapt::StoredPlan sp{st.plan, gflops};
  // Serving-width provenance even when no promotion ran: a block session's
  // flushed plan records the width it actually served (promotions stamp
  // the execute-time width themselves and may override this).
  if (sp.plan.spmm_width == 0 && opts_.spmm_width > 1)
    sp.plan.spmm_width = opts_.spmm_width;
  if (tuner_ != nullptr) sp.trials = tuner_->stats().l_trials;
  opts_.plan_store->put(st.key, sp);
}

template <typename T>
void IterativeSession<T>::run(std::span<const T> x, std::span<T> y) {
  run_block(x, y, 1);
}

template <typename T>
void IterativeSession<T>::run_block(std::span<const T> x, std::span<T> y,
                                    int width) {
  const auto st = snapshot();
  check_block(static_cast<std::int64_t>(x.size()), st->a->cols(), width, "x");
  check_block(static_cast<std::int64_t>(y.size()), st->a->rows(), width, "y");
  execute(st, x, y, width);
}

template <typename T>
void IterativeSession<T>::seed(std::span<const T> x0) {
  const auto st = snapshot();
  if (st->a->rows() != st->a->cols())
    throw std::invalid_argument(
        "IterativeSession: step() feedback needs a square matrix (" +
        std::to_string(st->a->rows()) + "x" + std::to_string(st->a->cols()) +
        ")");
  check_block(static_cast<std::int64_t>(x0.size()), st->a->cols(),
              opts_.spmm_width, "seed");
  std::lock_guard<std::mutex> lock(iter_mu_);
  iterate_ = DenseBlock<T>(st->a->cols(), opts_.spmm_width);
  product_ = DenseBlock<T>(st->a->rows(), opts_.spmm_width);
  std::copy(x0.begin(), x0.end(), iterate_.data().begin());
}

template <typename T>
std::span<const T> IterativeSession<T>::step() {
  std::lock_guard<std::mutex> lock(iter_mu_);
  if (iterate_.size() == 0)
    throw std::logic_error("IterativeSession: seed() before step()");
  const auto st = snapshot();
  execute(st, iterate_.data(), product_.data(), opts_.spmm_width);
  swap(iterate_, product_);
  return iterate_.data();
}

template <typename T>
std::span<T> IterativeSession<T>::iterate() {
  std::lock_guard<std::mutex> lock(iter_mu_);
  return iterate_.data();
}

template <typename T>
void IterativeSession<T>::update_values(std::span<const T> new_vals) {
  std::uint64_t refreshed = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const std::shared_ptr<const State> old = state_;
    auto m = std::make_shared<CsrMatrix<T>>(*old->a);
    m->update_values(new_vals);
    auto ns = std::make_shared<State>(*old);
    if (ns->layouts != nullptr)
      refreshed = ns->layouts->refresh_values(*m, old->a->instance_id());
    ns->a = std::move(m);
    state_ = std::move(ns);
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.value_updates += 1;
  stats_.layout_refreshes += refreshed;
}

template <typename T>
void IterativeSession<T>::replace_matrix(
    std::shared_ptr<const CsrMatrix<T>> a) {
  if (a == nullptr)
    throw std::invalid_argument("IterativeSession: null matrix");
  const serve::Fingerprint key = serve::fingerprint_of(*a);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (key == state_->key) {
      // Structurally identical (the cheap structural-delta check): values
      // may differ, but plans are value-independent — keep the plan, bins,
      // and arm state, and carry the layouts over by value refresh.
      const std::shared_ptr<const State> old = state_;
      auto ns = std::make_shared<State>(*old);
      std::uint64_t refreshed = 0;
      if (ns->layouts != nullptr)
        refreshed = ns->layouts->refresh_values(*a, old->a->instance_id());
      ns->a = std::move(a);
      state_ = std::move(ns);
      std::lock_guard<std::mutex> slock(stats_mu_);
      stats_.value_updates += 1;
      stats_.layout_refreshes += refreshed;
      return;
    }
  }
  // Structural change: full re-bin + re-plan (outside mu_ — planning can
  // be slow and in-flight runs keep executing the old state meanwhile).
  auto ns = build_state(std::move(a));
  {
    std::lock_guard<std::mutex> lock(mu_);
    state_ = std::move(ns);
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.structure_rebinds += 1;
}

template <typename T>
void IterativeSession<T>::flush() {
  const auto st = snapshot();
  store_put(*st, 0.0);
  if (opts_.plan_store != nullptr) opts_.plan_store->flush();
  if (opts_.profile != nullptr && tuner_ != nullptr) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (!profile_folded_) {
      opts_.profile->adapt.merge(tuner_->stats());
      profile_folded_ = true;
    }
  }
}

template <typename T>
SessionStats IterativeSession<T>::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

template <typename T>
core::Plan IterativeSession<T>::plan() const {
  return snapshot()->plan;
}

template <typename T>
std::shared_ptr<const CsrMatrix<T>> IterativeSession<T>::matrix() const {
  return snapshot()->a;
}

template <typename T>
prof::AdaptStats IterativeSession<T>::adapt_stats() const {
  return tuner_ != nullptr ? tuner_->stats() : prof::AdaptStats{};
}

template class IterativeSession<float>;
template class IterativeSession<double>;

}  // namespace spmv::iter

// DenseBlock — a column-major block of dense vectors, the multi-vector
// operand shape of the SpMM path (core::execute_plan_spmm and
// kernels::batch_column): column b of a length-L block occupies entries
// [b*L, (b+1)*L). A solver loop holds two blocks (iterate and product) and
// swaps them each step; the serving layer flattens request vectors into
// one before a batched launch.
#pragma once

#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "sparse/types.hpp"

namespace spmv::iter {

template <typename T>
class DenseBlock {
 public:
  DenseBlock() = default;
  DenseBlock(index_t length, int width, T fill = T(0))
      : length_(length), width_(width) {
    if (length < 0 || width <= 0)
      throw std::invalid_argument("DenseBlock: length " +
                                  std::to_string(length) + " x width " +
                                  std::to_string(width) + " is not a block");
    data_.assign(static_cast<std::size_t>(length) *
                     static_cast<std::size_t>(width),
                 fill);
  }

  [[nodiscard]] index_t length() const { return length_; }
  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  [[nodiscard]] std::span<T> data() { return data_; }
  [[nodiscard]] std::span<const T> data() const { return data_; }

  [[nodiscard]] std::span<T> column(int b) {
    check_column(b);
    return std::span<T>(data_).subspan(
        static_cast<std::size_t>(b) * static_cast<std::size_t>(length_),
        static_cast<std::size_t>(length_));
  }
  [[nodiscard]] std::span<const T> column(int b) const {
    check_column(b);
    return std::span<const T>(data_).subspan(
        static_cast<std::size_t>(b) * static_cast<std::size_t>(length_),
        static_cast<std::size_t>(length_));
  }

  friend void swap(DenseBlock& a, DenseBlock& b) noexcept {
    std::swap(a.length_, b.length_);
    std::swap(a.width_, b.width_);
    a.data_.swap(b.data_);
  }

 private:
  void check_column(int b) const {
    if (b < 0 || b >= width_)
      throw std::out_of_range("DenseBlock: column " + std::to_string(b) +
                              " of " + std::to_string(width_));
  }

  index_t length_ = 0;
  int width_ = 0;
  std::vector<T> data_;
};

}  // namespace spmv::iter

// spmv::trace — request-scoped tracing: an always-compiled, opt-in span
// recorder whose output loads directly into chrome://tracing / Perfetto.
//
// Each thread records into its own fixed-capacity ring buffer (oldest
// events overwritten once full), so recording never blocks another thread
// and never allocates on the hot path after the first event. The disabled
// path costs one relaxed atomic load per span — cheap enough that the
// instrumentation stays compiled into release builds (same contract as
// prof::enabled()).
//
//   spmv::trace::start();                       // clear + enable
//   { spmv::trace::TraceSpan s("binning", "plan"); ... }
//   spmv::trace::stop();
//   spmv::trace::write_chrome_trace_file("out.trace.json");
//
// Request correlation: spans capture the calling thread's current request
// id (ScopedRequestId), so all work done on behalf of one serving request
// — across the submitting client, the service worker, and the thread-pool
// workers it fans out to — carries the same id in the trace. The request
// lifetime itself is an async begin/end pair keyed by that id.
//
// Constraint: `name`, `category`, and arg keys must be string literals (or
// otherwise outlive the trace) — events store the pointers, not copies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace spmv::trace {

/// Default per-thread ring capacity (events). One event is 80 bytes, so
/// the default buffers ~1.3 MiB per recording thread.
inline constexpr std::size_t kDefaultBufferCapacity = 16384;

/// Recording configuration for start(). `sample_every_n` applies to
/// *request* sampling (serve layer): sample_request() approves one request
/// in every N, so a service under heavy load keeps its rings representative
/// instead of wrapping within milliseconds. 1 (default) samples everything;
/// spans outside request sampling (manual TraceSpan use) are unaffected.
struct TraceConfig {
  std::size_t per_thread_capacity = kDefaultBufferCapacity;
  std::uint64_t sample_every_n = 1;
};

/// Is tracing on? One relaxed atomic load — the whole disabled-path cost.
bool enabled();

/// Clear any previous events, set the per-thread ring capacity, and enable
/// recording. The trace clock starts at zero here.
void start(std::size_t per_thread_capacity = kDefaultBufferCapacity);

/// start() with full configuration (capacity + request sampling).
void start(const TraceConfig& config);

/// Should the next serving request be traced? False when tracing is off
/// (one relaxed load, nothing else); with sampling configured, admits one
/// request in every `sample_every_n` via a relaxed counter — a sampled-out
/// request costs exactly one relaxed fetch_add.
bool sample_request();

/// Stop recording. Events are retained for snapshot()/write.
void stop();

/// Drop all recorded events (buffers stay registered to their threads).
void clear();

/// Allocate a fresh nonzero request id (process-wide, monotonic).
std::uint64_t next_request_id();

/// The calling thread's current request id (0 = none).
std::uint64_t current_request_id();

/// Tag the calling thread with a request id for the scope's duration;
/// spans started inside record it. Restores the previous id on exit.
class ScopedRequestId {
 public:
  explicit ScopedRequestId(std::uint64_t id);
  ~ScopedRequestId();
  ScopedRequestId(const ScopedRequestId&) = delete;
  ScopedRequestId& operator=(const ScopedRequestId&) = delete;

 private:
  std::uint64_t prev_;
};

/// One recorded event. Phases mirror the Chrome trace-event format: 'X'
/// complete span, 'b'/'e' async begin/end, 'n' async instant, 'i' thread
/// instant.
struct TraceEvent {
  const char* name = nullptr;
  const char* category = nullptr;
  char phase = 'X';
  std::uint32_t tid = 0;      ///< recorder-assigned thread number
  std::uint64_t ts_ns = 0;    ///< nanoseconds since start()
  std::uint64_t dur_ns = 0;   ///< complete spans only
  std::uint64_t id = 0;       ///< request id (async key; arg on spans)
  const char* arg_keys[2] = {nullptr, nullptr};
  std::int64_t arg_vals[2] = {0, 0};
};

/// RAII complete-span: stamps begin on construction, emits on destruction.
/// Captures current_request_id() automatically. A span constructed while
/// tracing is off records nothing (and skips the clock reads).
class TraceSpan {
 public:
  TraceSpan(const char* name, const char* category);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attach a numeric argument (up to 2; extras are ignored). `key` must
  /// be a string literal.
  void arg(const char* key, std::int64_t value);

 private:
  bool active_;
  TraceEvent ev_;
};

/// Nanoseconds since start() on the trace clock (what event timestamps
/// are expressed in). Usable whether or not recording is enabled.
std::uint64_t now_ns();

/// Emit a complete span with explicit begin/end timestamps — for phases
/// whose begin was observed on another thread (e.g. queue wait: stamped at
/// submit, emitted by the worker that claims the request). `id` tags the
/// span's request as with TraceSpan.
void emit_complete(const char* name, const char* category,
                   std::uint64_t begin_ns, std::uint64_t end_ns,
                   std::uint64_t id);

/// Point events. The async trio keys on `id` — Chrome matches begin/end
/// pairs by (category, id), so use the same category for one lifetime.
void emit_instant(const char* name, const char* category);
void emit_async_begin(const char* name, const char* category,
                      std::uint64_t id);
void emit_async_end(const char* name, const char* category, std::uint64_t id);
void emit_async_instant(const char* name, const char* category,
                        std::uint64_t id);

/// Streaming event observer (spmv::obs): invoked inline on the recording
/// thread for every event recorded while tracing is enabled, after the
/// event lands in the thread's ring. The callback must be cheap and
/// non-blocking (it runs on kernel-launch and serve hot paths) — the
/// intended implementation is a bounded ring push that drops on overflow
/// (obs::StreamingSink). Passing nullptr detaches. The previous
/// registration is intentionally leaked (a racing emit may still be
/// reading it); detach while other threads may be emitting only if the
/// observer's context outlives them.
using EventObserver = void (*)(void* ctx, const TraceEvent& ev);
void set_event_observer(EventObserver observer, void* ctx);

/// Merged view of every thread's ring, sorted by timestamp.
struct Snapshot {
  /// One recording thread's wrap-around loss (only threads that lost
  /// events appear).
  struct ThreadDrops {
    std::uint32_t tid = 0;
    std::uint64_t dropped = 0;
  };
  std::vector<TraceEvent> events;
  std::uint64_t dropped = 0;  ///< events overwritten by ring wrap-around
  int threads = 0;            ///< distinct recording threads seen
  std::vector<ThreadDrops> dropped_by_thread;  ///< per-thread loss accounting
};
[[nodiscard]] Snapshot snapshot();

/// The snapshot as a Chrome trace-event JSON document ("traceEvents"
/// array; timestamps in microseconds).
[[nodiscard]] std::string chrome_trace_json();

/// Write chrome_trace_json() to `path`; throws std::runtime_error when the
/// file cannot be written.
void write_chrome_trace_file(const std::string& path);

}  // namespace spmv::trace

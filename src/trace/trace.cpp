#include "trace/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "prof/json.hpp"
#include "util/log.hpp"

namespace spmv::trace {

namespace {

std::atomic<bool> g_enabled{false};
std::atomic<std::uint64_t> g_next_request{0};
/// Once-per-recording flag for the shutdown loss warning (see stop()).
std::atomic<bool> g_drop_warned{false};

/// Streaming-observer registration. Swapped atomically as one pointer so a
/// racing emit() can never see a torn (fn, ctx) pair; replaced
/// registrations are intentionally leaked — attach/detach is rare (a
/// handful per process) and a racing emit may still be dereferencing the
/// old one.
struct ObserverReg {
  EventObserver fn = nullptr;
  void* ctx = nullptr;
};
std::atomic<ObserverReg*> g_observer{nullptr};
std::atomic<std::uint64_t> g_sample_every{1};
std::atomic<std::uint64_t> g_sample_counter{0};
/// steady_clock time_since_epoch at start(); event timestamps subtract it.
std::atomic<std::int64_t> g_epoch_ns{0};

thread_local std::uint64_t t_request_id = 0;

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t trace_now_ns() {
  const std::int64_t now = steady_now_ns();
  const std::int64_t epoch = g_epoch_ns.load(std::memory_order_relaxed);
  return now > epoch ? static_cast<std::uint64_t>(now - epoch) : 0;
}

/// One thread's ring. Owned by the registry (a thread may exit while its
/// events are still waiting to be drained); the recording thread holds a
/// raw pointer. The mutex is effectively uncontended — only snapshots and
/// resizes cross threads.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<TraceEvent> ring;
  std::size_t head = 0;          ///< next write slot
  std::uint64_t recorded = 0;    ///< total events ever written
  std::uint32_t tid = 0;
};

struct Registry {
  std::mutex mutex;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  std::uint32_t next_tid = 1;
  std::size_t capacity = kDefaultBufferCapacity;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: threads may outlive main
  return *r;
}

ThreadBuffer& local_buffer() {
  thread_local ThreadBuffer* buf = [] {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.buffers.push_back(std::make_unique<ThreadBuffer>());
    ThreadBuffer* b = r.buffers.back().get();
    b->tid = r.next_tid++;
    b->ring.resize(r.capacity);
    return b;
  }();
  return *buf;
}

void emit(TraceEvent ev) {
  ThreadBuffer& buf = local_buffer();
  ev.tid = buf.tid;
  {
    std::lock_guard<std::mutex> lock(buf.mutex);
    if (!buf.ring.empty()) {
      buf.ring[buf.head] = ev;
      buf.head = (buf.head + 1) % buf.ring.size();
      buf.recorded += 1;
    }
  }
  // Stream a copy to the observer (outside the ring lock — the observer's
  // push must never extend the critical section other recorders contend on).
  if (ObserverReg* obs = g_observer.load(std::memory_order_acquire);
      obs != nullptr && obs->fn != nullptr) {
    obs->fn(obs->ctx, ev);
  }
}

void emit_point(const char* name, const char* category, char phase,
                std::uint64_t id) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = name;
  ev.category = category;
  ev.phase = phase;
  ev.ts_ns = trace_now_ns();
  ev.id = id;
  emit(ev);
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void start(std::size_t per_thread_capacity) {
  start(TraceConfig{.per_thread_capacity = per_thread_capacity});
}

void start(const TraceConfig& config) {
  Registry& r = registry();
  {
    std::lock_guard<std::mutex> lock(r.mutex);
    r.capacity = std::max<std::size_t>(1, config.per_thread_capacity);
    for (auto& buf : r.buffers) {
      std::lock_guard<std::mutex> buf_lock(buf->mutex);
      buf->ring.assign(r.capacity, TraceEvent{});
      buf->head = 0;
      buf->recorded = 0;
    }
  }
  g_sample_every.store(std::max<std::uint64_t>(1, config.sample_every_n),
                       std::memory_order_relaxed);
  g_sample_counter.store(0, std::memory_order_relaxed);
  g_epoch_ns.store(steady_now_ns(), std::memory_order_relaxed);
  g_drop_warned.store(false, std::memory_order_relaxed);
  g_enabled.store(true, std::memory_order_relaxed);
}

void set_event_observer(EventObserver observer, void* ctx) {
  ObserverReg* reg =
      observer != nullptr ? new ObserverReg{observer, ctx} : nullptr;
  // The old registration leaks by design — see ObserverReg.
  (void)g_observer.exchange(reg, std::memory_order_acq_rel);
}

bool sample_request() {
  if (!enabled()) return false;
  const std::uint64_t every = g_sample_every.load(std::memory_order_relaxed);
  if (every <= 1) return true;
  return g_sample_counter.fetch_add(1, std::memory_order_relaxed) % every == 0;
}

void stop() {
  const bool was_on = g_enabled.exchange(false, std::memory_order_relaxed);
  if (!was_on) return;
  // Ring wrap-around is silent while recording (the hot path must not
  // log); surface the total loss exactly once per recording at shutdown
  // so a trace with holes is never mistaken for a complete one.
  std::uint64_t dropped = 0;
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    for (auto& buf : r.buffers) {
      std::lock_guard<std::mutex> buf_lock(buf->mutex);
      const std::size_t cap = buf->ring.size();
      if (cap != 0 && buf->recorded > cap) dropped += buf->recorded - cap;
    }
  }
  if (dropped != 0 && !g_drop_warned.exchange(true, std::memory_order_relaxed))
    util::log_warn() << "trace: " << dropped
                     << " span(s) overwritten by ring wrap-around "
                        "(raise per_thread_capacity or sample_every_n)";
}

void clear() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (auto& buf : r.buffers) {
    std::lock_guard<std::mutex> buf_lock(buf->mutex);
    buf->head = 0;
    buf->recorded = 0;
  }
}

std::uint64_t next_request_id() {
  return g_next_request.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::uint64_t current_request_id() { return t_request_id; }

ScopedRequestId::ScopedRequestId(std::uint64_t id) : prev_(t_request_id) {
  t_request_id = id;
}

ScopedRequestId::~ScopedRequestId() { t_request_id = prev_; }

TraceSpan::TraceSpan(const char* name, const char* category)
    : active_(enabled()) {
  if (!active_) return;
  ev_.name = name;
  ev_.category = category;
  ev_.phase = 'X';
  ev_.id = t_request_id;
  ev_.ts_ns = trace_now_ns();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  ev_.dur_ns = trace_now_ns() - ev_.ts_ns;
  emit(ev_);
}

void TraceSpan::arg(const char* key, std::int64_t value) {
  if (!active_) return;
  for (int i = 0; i < 2; ++i) {
    if (ev_.arg_keys[i] == nullptr) {
      ev_.arg_keys[i] = key;
      ev_.arg_vals[i] = value;
      return;
    }
  }
}

std::uint64_t now_ns() { return trace_now_ns(); }

void emit_complete(const char* name, const char* category,
                   std::uint64_t begin_ns, std::uint64_t end_ns,
                   std::uint64_t id) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = name;
  ev.category = category;
  ev.phase = 'X';
  ev.ts_ns = begin_ns;
  ev.dur_ns = end_ns > begin_ns ? end_ns - begin_ns : 0;
  ev.id = id;
  emit(ev);
}

void emit_instant(const char* name, const char* category) {
  emit_point(name, category, 'i', t_request_id);
}

void emit_async_begin(const char* name, const char* category,
                      std::uint64_t id) {
  emit_point(name, category, 'b', id);
}

void emit_async_end(const char* name, const char* category,
                    std::uint64_t id) {
  emit_point(name, category, 'e', id);
}

void emit_async_instant(const char* name, const char* category,
                        std::uint64_t id) {
  emit_point(name, category, 'n', id);
}

Snapshot snapshot() {
  Snapshot snap;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  snap.threads = static_cast<int>(r.buffers.size());
  for (auto& buf : r.buffers) {
    std::lock_guard<std::mutex> buf_lock(buf->mutex);
    const std::size_t cap = buf->ring.size();
    if (cap == 0 || buf->recorded == 0) continue;
    if (buf->recorded > cap) {
      snap.dropped += buf->recorded - cap;
      snap.dropped_by_thread.push_back({buf->tid, buf->recorded - cap});
      // Ring wrapped: oldest surviving event sits at head.
      for (std::size_t i = 0; i < cap; ++i)
        snap.events.push_back(buf->ring[(buf->head + i) % cap]);
    } else {
      // Not wrapped: slots 0..recorded-1 hold the events (head has wrapped
      // back to 0 when recorded == cap, so iterate on recorded, not head).
      for (std::size_t i = 0; i < static_cast<std::size_t>(buf->recorded); ++i)
        snap.events.push_back(buf->ring[i]);
    }
  }
  std::stable_sort(snap.events.begin(), snap.events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return snap;
}

std::string chrome_trace_json() {
  const Snapshot snap = snapshot();
  prof::Json events = prof::Json::array();
  for (const TraceEvent& ev : snap.events) {
    prof::Json j = prof::Json::object();
    j.set("name", ev.name != nullptr ? ev.name : "?");
    j.set("cat", ev.category != nullptr ? ev.category : "?");
    j.set("ph", std::string(1, ev.phase));
    j.set("ts", static_cast<double>(ev.ts_ns) / 1e3);
    j.set("pid", 1);
    j.set("tid", static_cast<std::int64_t>(ev.tid));
    if (ev.phase == 'X')
      j.set("dur", static_cast<double>(ev.dur_ns) / 1e3);
    if (ev.phase == 'b' || ev.phase == 'e' || ev.phase == 'n')
      j.set("id", std::to_string(ev.id));
    const bool span_rid = ev.phase == 'X' && ev.id != 0;
    if (span_rid || ev.arg_keys[0] != nullptr) {
      prof::Json args = prof::Json::object();
      if (span_rid) args.set("request_id", ev.id);
      for (int i = 0; i < 2; ++i) {
        if (ev.arg_keys[i] != nullptr)
          args.set(ev.arg_keys[i], ev.arg_vals[i]);
      }
      j.set("args", args);
    }
    events.push_back(std::move(j));
  }
  prof::Json doc = prof::Json::object();
  doc.set("traceEvents", std::move(events));
  doc.set("displayTimeUnit", "ms");
  prof::Json other = prof::Json::object();
  other.set("dropped_events", snap.dropped);
  other.set("threads", snap.threads);
  doc.set("otherData", other);
  return doc.dump(0) + "\n";
}

void write_chrome_trace_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write trace file: " + path);
  out << chrome_trace_json();
  if (!out) throw std::runtime_error("error writing trace file: " + path);
}

}  // namespace spmv::trace

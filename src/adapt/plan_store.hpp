// spmv::adapt::PlanStore — persistent tuned-plan storage. Serializes plans
// keyed by (structural fingerprint, device config, model version) to a
// versioned on-disk JSON artifact so a restarted SpmvService warm-starts:
// a cache miss whose fingerprint is in the store rebuilds directly from
// the stored plan and skips the predictor-driven planning pass entirely.
//
// Robustness contract: load() never throws on a bad store file — a
// missing, truncated, corrupt, or future-schema file loads as empty with
// the reason logged and counted in stats(). Entries recorded for a
// different device configuration or predictor model version are skipped
// for lookup but preserved verbatim and re-emitted on flush(), so one
// store file can serve a heterogeneous fleet without machines destroying
// each other's tuning work. flush() is crash-safe: write to `path.tmp`,
// then atomically rename over `path`.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "clsim/device.hpp"
#include "core/plan.hpp"
#include "prof/json.hpp"
#include "serve/fingerprint.hpp"

namespace spmv::adapt {

/// On-disk schema version written by flush(). Version 2 added the plan's
/// `backend` field (spmv::exec); version 3 added the per-bin `format`
/// field (spmv::fmt). Older files predate those fields and their plans
/// load with the defaults (Clsim backend, CSR everywhere), so load()
/// accepts the whole supported range below. Files outside it are skipped
/// wholesale (never migrated in place, never a crash).
inline constexpr std::int64_t kStoreSchemaVersion = 3;
/// Oldest schema load() still reads.
inline constexpr std::int64_t kStoreSchemaMinSupported = 1;

/// One stored tuned plan plus its provenance.
struct StoredPlan {
  core::Plan plan;
  double gflops = 0.0;           ///< best observed throughput (0 = unknown)
  std::uint64_t trials = 0;      ///< adapt trials that shaped this plan
  std::int64_t saved_unix_ms = 0;  ///< wall-clock save time (0 = unknown)
  /// Wall-clock time of the last lookup() or put() that touched this entry
  /// (0 = unknown). Drives gc_expired(): fingerprints that stop recurring
  /// age out instead of accumulating forever.
  std::int64_t last_used_unix_ms = 0;
};

/// Load/skip accounting, for `spmv_tool plan-store ls` and tests.
struct PlanStoreStats {
  std::uint64_t loaded = 0;            ///< usable entries loaded
  std::uint64_t skipped_schema = 0;    ///< whole-file schema mismatch
  std::uint64_t skipped_device = 0;    ///< entry for another device config
  std::uint64_t skipped_model = 0;     ///< entry for another model version
  std::uint64_t skipped_malformed = 0; ///< entry that failed to parse
};

class PlanStore {
 public:
  /// Canonical device-config string for scoping store entries, e.g.
  /// "cu=8 group=256 lds=32768".
  [[nodiscard]] static std::string device_config_string(
      const clsim::Device& device = clsim::default_device());

  /// A store bound to `path`. `device_config` and `model_version` scope
  /// lookups: only entries recorded under the same strings are visible.
  /// Construction does NOT read the file — call load().
  explicit PlanStore(std::string path,
                     std::string device_config = device_config_string(),
                     std::string model_version = "default");

  /// Read the store file. Never throws on bad input: a missing file is an
  /// empty store; corrupt/truncated/foreign-schema files log a warning and
  /// load as empty; per-entry damage skips just that entry. Returns the
  /// load accounting (also available via stats()).
  PlanStoreStats load();

  /// Write all entries (own + preserved foreign) to `path` via
  /// write-temp-then-rename. Throws std::runtime_error when the temp file
  /// cannot be written or the rename fails.
  void flush() const;

  /// The stored plan for `key` under this store's device/model scope.
  /// Stamps the entry's last_used_unix_ms (recurring fingerprints stay
  /// fresh for gc_expired), hence non-const.
  [[nodiscard]] std::optional<StoredPlan> lookup(const serve::Fingerprint& key);

  /// Insert or update the entry for `key`. An existing entry is replaced
  /// only by an equal-or-higher plan revision (stale writers lose).
  void put(const serve::Fingerprint& key, const StoredPlan& value);

  /// Entries visible under this store's device/model scope.
  [[nodiscard]] std::size_t size() const;

  /// Snapshot of the visible entries (unordered).
  [[nodiscard]] std::vector<std::pair<serve::Fingerprint, StoredPlan>>
  entries() const;

  /// Drop preserved foreign entries (other device/model/schema leftovers);
  /// returns how many were dropped. The next flush() writes only entries
  /// visible to this store.
  std::size_t gc();

  /// TTL eviction for fingerprints that stop recurring: drop own-scope
  /// entries not used (looked up or put) within the last `ttl_ms`
  /// milliseconds, judged against `now_ms` (0 = current wall clock).
  /// Entries with no usage timestamp fall back to their save time; ones
  /// with neither are treated as expired. Foreign entries are PRESERVED —
  /// unlike gc(), this prunes our own stale tuning work, not other
  /// machines'. Returns how many entries were dropped.
  std::size_t gc_expired(std::int64_t ttl_ms, std::int64_t now_ms = 0);

  [[nodiscard]] PlanStoreStats stats() const;
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] const std::string& device_config() const { return device_; }
  [[nodiscard]] const std::string& model_version() const { return model_; }

 private:
  std::string path_;
  std::string device_;
  std::string model_;

  mutable std::mutex mutex_;
  std::unordered_map<serve::Fingerprint, StoredPlan, serve::FingerprintHash>
      map_;
  /// Entries loaded for a different device/model, preserved verbatim so
  /// flush() is non-destructive for other machines' tuning work.
  std::vector<prof::Json> foreign_;
  PlanStoreStats stats_;
};

}  // namespace spmv::adapt

#include "adapt/bandit.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <utility>

#include "exec/backend.hpp"
#include "fmt/estimate.hpp"
#include "fmt/layout.hpp"
#include "trace/trace.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace spmv::adapt {

namespace {

/// Non-zeros covered by a bin's virtual rows (same computation as the
/// exhaustive tuner's workload accounting).
template <typename T>
std::int64_t bin_nnz(const CsrMatrix<T>& a, std::span<const index_t> vrows,
                     index_t unit) {
  std::int64_t total = 0;
  const index_t rows = a.rows();
  for (index_t v : vrows) {
    const index_t lo = v * unit;
    const index_t hi = std::min<index_t>(lo + unit, rows);
    total += static_cast<std::int64_t>(a.row_ptr()[hi] - a.row_ptr()[lo]);
  }
  return total;
}

/// Timed execution of one whole plan: every listed bin launched with its
/// kernel, scored as 2*nnz / seconds. A kernel that cannot run earns a
/// zero-reward sample instead of crashing the worker (same contract as the
/// per-bin trials).
template <typename T>
double whole_plan_gflops(const exec::Backend& backend, const CsrMatrix<T>& a,
                         std::span<const T> x, const binning::BinSet& bins,
                         const std::vector<core::BinPlan>& bin_kernels) {
  std::vector<T> y(static_cast<std::size_t>(a.rows()));
  const double flops =
      2.0 * static_cast<double>(std::max<std::int64_t>(1, a.nnz()));
  try {
    util::Timer t;
    for (const core::BinPlan& bp : bin_kernels) {
      if (bp.bin_id >= bins.bin_count()) continue;
      const auto& vrows = bins.bin(bp.bin_id);
      if (vrows.empty()) continue;
      backend.run_binned(bp.kernel, a, x, std::span<T>(y),
                         std::span<const index_t>(vrows), bins.unit());
    }
    return flops / std::max(t.elapsed_s(), 1e-12) * 1e-9;
  } catch (const std::exception& e) {
    util::log_warn() << "adapt whole-plan trial failed (U=" << bins.unit()
                     << ", backend=" << exec::backend_name(backend.kind())
                     << "): " << e.what();
    return 0.0;
  }
}

/// Timed execution of one bin under one physical format: CSR runs the
/// bin's planned kernel, any other format builds the layout OUTSIDE the
/// timed section and launches the backend's layout kernel. A layout the
/// builder rejects returns a negative sentinel — the caller negative-caches
/// the format so the failing transformation is never re-attempted; a kernel
/// that cannot run earns a zero-reward sample. Neither crashes the worker.
template <typename T>
double bin_format_gflops(const exec::Backend& backend, const CsrMatrix<T>& a,
                         std::span<const T> x, std::span<T> y,
                         std::span<const index_t> vrows, index_t unit,
                         kernels::KernelId kernel, fmt::FormatKind format,
                         int bin_id, double flops) {
  fmt::BinLayout<T> layout;
  if (format != fmt::FormatKind::Csr) {
    try {
      layout = fmt::build_bin_layout(a, vrows, unit, format, bin_id);
    } catch (const std::exception& e) {
      util::log_warn() << "adapt format trial: builder rejected bin "
                       << bin_id << " as " << fmt::format_cname(format)
                       << " (excluded from future trials): " << e.what();
      return -1.0;
    }
  }
  try {
    if (format == fmt::FormatKind::Csr) {
      util::Timer t;
      backend.run_binned(kernel, a, x, y, vrows, unit);
      return flops / std::max(t.elapsed_s(), 1e-12) * 1e-9;
    }
    util::Timer t;
    backend.run_layout(a, layout, x, y);
    return flops / std::max(t.elapsed_s(), 1e-12) * 1e-9;
  } catch (const std::exception& e) {
    util::log_warn() << "adapt format trial failed (bin " << bin_id << ", "
                     << fmt::format_cname(format) << "): " << e.what();
    return 0.0;
  }
}

}  // namespace

template <typename T>
BanditTuner<T>::BanditTuner(const clsim::Engine& engine, AdaptOptions opts)
    : engine_(engine),
      opts_(std::move(opts)),
      engine_backend_(exec::wrap_engine(engine)),
      native_backend_(exec::shared_backend(exec::BackendKind::Native)),
      rng_(opts_.seed) {
  if (opts_.kernel_pool.empty()) opts_.kernel_pool = kernels::all_kernels();
  opts_.hot_bins = std::max(1, opts_.hot_bins);
  opts_.min_samples = std::max(1, opts_.min_samples);
  if (opts_.unit_pool.empty())
    opts_.unit_pool = binning::default_granularity_pool();
  std::sort(opts_.unit_pool.begin(), opts_.unit_pool.end());
  opts_.unit_pool.erase(
      std::unique(opts_.unit_pool.begin(), opts_.unit_pool.end()),
      opts_.unit_pool.end());
  opts_.unit_min_samples = std::max(1, opts_.unit_min_samples);
  opts_.unit_cooldown = std::max(0, opts_.unit_cooldown);
  opts_.backend_min_samples = std::max(1, opts_.backend_min_samples);
  opts_.backend_cooldown = std::max(0, opts_.backend_cooldown);
  opts_.format_min_samples = std::max(1, opts_.format_min_samples);
  opts_.format_cooldown = std::max(0, opts_.format_cooldown);
}

template <typename T>
const exec::Backend& BanditTuner<T>::backend_for(
    exec::BackendKind kind) const {
  return kind == exec::BackendKind::Native ? *native_backend_
                                           : *engine_backend_;
}

template <typename T>
kernels::KernelId BanditTuner<T>::pick_challenger(
    const BinArms& ba, kernels::KernelId incumbent) {
  // Unexplored arms first, in pool order — every candidate gets one sample
  // before exploitation starts.
  for (kernels::KernelId id : opts_.kernel_pool) {
    if (id == incumbent) continue;
    if (ba.arms[static_cast<std::size_t>(id)].samples == 0) return id;
  }

  if (opts_.use_ucb) {
    // UCB1 on the GFLOP/s means. The bonus term is scaled by the running
    // best mean so the exploration pressure tracks the reward magnitude
    // (GFLOP/s is not normalized to [0, 1]).
    double scale = 0.0;
    for (kernels::KernelId id : opts_.kernel_pool)
      scale = std::max(scale,
                       ba.arms[static_cast<std::size_t>(id)].mean_gflops);
    if (scale <= 0.0) scale = 1.0;
    const double log_total =
        std::log(static_cast<double>(std::max<std::uint64_t>(2, ba.pulls)));
    kernels::KernelId best = incumbent;
    double best_score = -std::numeric_limits<double>::infinity();
    for (kernels::KernelId id : opts_.kernel_pool) {
      if (id == incumbent) continue;
      const Arm& arm = ba.arms[static_cast<std::size_t>(id)];
      const double bonus =
          scale * std::sqrt(2.0 * log_total /
                            static_cast<double>(std::max<std::uint64_t>(
                                1, arm.samples)));
      const double score = arm.mean_gflops + bonus;
      if (score > best_score) {
        best_score = score;
        best = id;
      }
    }
    return best;
  }

  // Epsilon-greedy: explore a random non-incumbent, otherwise exploit the
  // best mean so far.
  std::vector<kernels::KernelId> candidates;
  candidates.reserve(opts_.kernel_pool.size());
  for (kernels::KernelId id : opts_.kernel_pool)
    if (id != incumbent) candidates.push_back(id);
  if (rng_.uniform() < opts_.epsilon)
    return candidates[rng_.bounded(candidates.size())];
  kernels::KernelId best = candidates.front();
  double best_mean = -1.0;
  for (kernels::KernelId id : candidates) {
    const double m = ba.arms[static_cast<std::size_t>(id)].mean_gflops;
    if (m > best_mean) {
      best_mean = m;
      best = id;
    }
  }
  return best;
}

template <typename T>
index_t BanditTuner<T>::pick_unit_challenger(const KeyState& st,
                                             index_t incumbent) {
  const std::vector<index_t>& pool = opts_.unit_pool;
  const auto it = std::lower_bound(pool.begin(), pool.end(), incumbent);
  const auto idx = static_cast<std::size_t>(it - pool.begin());
  const bool exact = it != pool.end() && *it == incumbent;
  std::vector<index_t> neighbors;
  if (idx > 0) neighbors.push_back(pool[idx - 1]);
  if (exact && idx + 1 < pool.size()) neighbors.push_back(pool[idx + 1]);
  if (!exact && idx < pool.size()) neighbors.push_back(pool[idx]);

  // Grid neighbors first: each gets one whole-plan sample before anything
  // fancier, so hill-climbing starts immediately from the incumbent.
  for (index_t u : neighbors) {
    const auto a = st.units.find(u);
    if (a == st.units.end() || a->second.samples == 0) return u;
  }

  // Epsilon jump: a random pool granularity. Escapes plateaus where both
  // neighbors look no better, and lets a distant optimum be discovered
  // without walking every intermediate step.
  if (pool.size() >= 2 && rng_.uniform() < opts_.epsilon) {
    for (int tries = 0; tries < 8; ++tries) {
      const index_t u = pool[rng_.bounded(pool.size())];
      if (u != incumbent) return u;
    }
  }

  // Exploit: the best explored mean that is not the incumbent — keeps
  // re-sampling the most promising U until it either clears the promotion
  // bar or its mean decays below the incumbent's.
  index_t best = 0;
  double best_mean = -1.0;
  for (const auto& [u, arm] : st.units) {
    if (u == incumbent || arm.samples == 0) continue;
    if (arm.mean_gflops > best_mean) {
      best_mean = arm.mean_gflops;
      best = u;
    }
  }
  if (best != 0) return best;
  return neighbors.empty() ? incumbent : neighbors.front();
}

template <typename T>
kernels::KernelId BanditTuner<T>::seed_kernel(const KeyState& st,
                                              const core::Plan& plan,
                                              int bin_id) const {
  // Bin id approximates the average row length inside the bin (workload /
  // U with workload ~= U * avg_len), independent of U — so knowledge about
  // bin b under the old granularity transfers to bin b under the new one.
  // Best sampled kernel arm first:
  if (const auto it = st.bins.find(bin_id); it != st.bins.end()) {
    bool any = false;
    kernels::KernelId best = kernels::KernelId::Serial;
    double best_mean = 0.0;
    for (kernels::KernelId id : opts_.kernel_pool) {
      const Arm& arm = it->second.arms[static_cast<std::size_t>(id)];
      if (arm.samples == 0) continue;
      if (!any || arm.mean_gflops > best_mean) {
        any = true;
        best = id;
        best_mean = arm.mean_gflops;
      }
    }
    if (any) return best;
  }
  // Then the incumbent plan's own choice for the same bin id:
  for (const core::BinPlan& bp : plan.bin_kernels)
    if (bp.bin_id == bin_id) return bp.kernel;
  // Finally the lanes-per-row heuristic (the HeuristicPredictor's shape):
  // pick the pool kernel whose 4*lanes is log-closest to the bin's
  // estimated row length.
  const double target = std::log(static_cast<double>(std::max(1, bin_id)));
  kernels::KernelId best = opts_.kernel_pool.front();
  double best_d = std::numeric_limits<double>::infinity();
  for (kernels::KernelId id : opts_.kernel_pool) {
    const double d = std::abs(
        std::log(4.0 * static_cast<double>(kernels::lanes_per_row(id))) -
        target);
    if (d < best_d) {
      best_d = d;
      best = id;
    }
  }
  return best;
}

template <typename T>
std::optional<typename BanditTuner<T>::Promotion> BanditTuner<T>::unit_trial(
    KeyState& st, const core::Plan& plan, const binning::BinSet& bins,
    const CsrMatrix<T>& a, std::span<const T> x) {
  const index_t incumbent_u = bins.unit();
  const index_t challenger_u = pick_unit_challenger(st, incumbent_u);
  if (challenger_u == incumbent_u || challenger_u <= 0) return std::nullopt;

  // Re-bin at the challenger granularity OUTSIDE the timed section (a
  // promotion pays planning once; the arms compare steady-state execution
  // throughput) and seed each candidate bin's kernel from the first
  // level's knowledge.
  binning::BinSet cbins = binning::bin_matrix(a, challenger_u);
  std::vector<core::BinPlan> ckernels;
  for (int b : cbins.occupied_bins())
    ckernels.push_back({b, seed_kernel(st, plan, b)});
  if (ckernels.empty()) return std::nullopt;

  // Back-to-back whole-plan measurement, incumbent first.
  double inc_gflops = 0.0;
  double ch_gflops = 0.0;
  {
    trace::TraceSpan span("adapt-trial-u", "adapt");
    span.arg("unit", static_cast<std::int64_t>(challenger_u));
    if (opts_.measure_unit_override) {
      inc_gflops = opts_.measure_unit_override(incumbent_u);
      ch_gflops = opts_.measure_unit_override(challenger_u);
    } else {
      // Both granularities timed on the plan's own backend — U arms must
      // compare binning structure, not execution engines.
      const exec::Backend& backend = backend_for(plan.backend);
      inc_gflops = whole_plan_gflops(backend, a, x, bins, plan.bin_kernels);
      ch_gflops = whole_plan_gflops(backend, a, x, cbins, ckernels);
    }
  }
  st.units[incumbent_u].add(inc_gflops);
  st.units[challenger_u].add(ch_gflops);
  stats_.trials += 1;
  stats_.u_trials += 1;
  const double flops =
      2.0 * static_cast<double>(std::max<std::int64_t>(1, a.nnz()));
  if (ch_gflops > 0.0 && inc_gflops > ch_gflops)
    stats_.regret_s += flops * 1e-9 / ch_gflops - flops * 1e-9 / inc_gflops;

  const Arm& inc_arm = st.units[incumbent_u];
  const Arm& ch_arm = st.units[challenger_u];
  const auto min_n = static_cast<std::uint64_t>(opts_.unit_min_samples);
  if (inc_arm.samples < min_n || ch_arm.samples < min_n) return std::nullopt;
  if (ch_arm.mean_gflops <= inc_arm.mean_gflops * opts_.unit_hysteresis)
    return std::nullopt;

  // Promote: a fully rebuilt plan at the challenger granularity, carrying
  // tuned-U provenance. The caller's PlanCache::promote re-bins through
  // the Tuner path and the store write-through persists the corrected U,
  // so a restart warm-starts with it.
  Promotion promo;
  promo.plan.unit = challenger_u;
  promo.plan.single_bin = false;
  promo.plan.backend = plan.backend;  // U promotion keeps the backend
  promo.plan.revision = plan.revision + 1;
  promo.plan.unit_tuned = true;
  promo.plan.predicted_unit =
      plan.predicted_unit != 0 ? plan.predicted_unit : plan.unit;
  promo.plan.bin_kernels = std::move(ckernels);
  promo.gflops = ch_arm.mean_gflops;
  promo.rebinned = true;
  promo.level = 2;
  stats_.promotions += 1;
  stats_.u_promotions += 1;
  st.unit_cooldown = opts_.unit_cooldown;
  trace::emit_instant("adapt-promote-u", "adapt");
  util::log_info() << "adapt: promoting U " << incumbent_u << " -> "
                   << challenger_u << " (" << inc_arm.mean_gflops << " -> "
                   << ch_arm.mean_gflops << " GFLOP/s whole-plan, revision "
                   << promo.plan.revision << ")";
  return promo;
}

template <typename T>
std::optional<typename BanditTuner<T>::Promotion>
BanditTuner<T>::backend_trial(KeyState& st, const core::Plan& plan,
                              const binning::BinSet& bins,
                              const CsrMatrix<T>& a, std::span<const T> x) {
  // Two backends only, so the challenger is simply "the other one" — no
  // pick policy needed (kBackendCount is a compile-time invariant here).
  static_assert(exec::kBackendCount == 2,
                "backend_trial assumes a two-arm backend space");
  const exec::BackendKind incumbent_b = plan.backend;
  const exec::BackendKind challenger_b =
      incumbent_b == exec::BackendKind::Clsim ? exec::BackendKind::Native
                                              : exec::BackendKind::Clsim;

  // Back-to-back whole-plan measurement on identical bins and kernels —
  // the arms isolate the execution engine, nothing else.
  double inc_gflops = 0.0;
  double ch_gflops = 0.0;
  {
    trace::TraceSpan span("adapt-trial-backend", "adapt");
    span.arg("challenger", static_cast<std::int64_t>(challenger_b));
    if (opts_.measure_backend_override) {
      inc_gflops = opts_.measure_backend_override(incumbent_b);
      ch_gflops = opts_.measure_backend_override(challenger_b);
    } else {
      inc_gflops = whole_plan_gflops(backend_for(incumbent_b), a, x, bins,
                                     plan.bin_kernels);
      ch_gflops = whole_plan_gflops(backend_for(challenger_b), a, x, bins,
                                    plan.bin_kernels);
    }
  }
  st.backends[static_cast<int>(incumbent_b)].add(inc_gflops);
  st.backends[static_cast<int>(challenger_b)].add(ch_gflops);
  stats_.trials += 1;
  stats_.b_trials += 1;
  const double flops =
      2.0 * static_cast<double>(std::max<std::int64_t>(1, a.nnz()));
  if (ch_gflops > 0.0 && inc_gflops > ch_gflops)
    stats_.regret_s += flops * 1e-9 / ch_gflops - flops * 1e-9 / inc_gflops;

  const Arm& inc_arm = st.backends[static_cast<int>(incumbent_b)];
  const Arm& ch_arm = st.backends[static_cast<int>(challenger_b)];
  const auto min_n = static_cast<std::uint64_t>(opts_.backend_min_samples);
  if (inc_arm.samples < min_n || ch_arm.samples < min_n) return std::nullopt;
  if (ch_arm.mean_gflops <= inc_arm.mean_gflops * opts_.backend_hysteresis)
    return std::nullopt;

  // Promote: the same plan re-stamped with the challenger backend. Bins
  // and kernels are untouched (rebinned stays false); the PlanCache
  // rebuild resolves the new backend from the plan, and the store
  // write-through persists it. The kernel/unit arms reset when observe()
  // next sees the new backend — their timings described the old engine —
  // while the backend arms persist, preventing a flap straight back.
  Promotion promo;
  promo.plan = plan;
  promo.plan.backend = challenger_b;
  promo.plan.revision = plan.revision + 1;
  promo.gflops = ch_arm.mean_gflops;
  promo.level = 3;
  stats_.promotions += 1;
  stats_.b_promotions += 1;
  st.backend_cooldown = opts_.backend_cooldown;
  trace::emit_instant("adapt-promote-backend", "adapt");
  util::log_info() << "adapt: promoting backend "
                   << exec::backend_name(incumbent_b) << " -> "
                   << exec::backend_name(challenger_b) << " ("
                   << inc_arm.mean_gflops << " -> " << ch_arm.mean_gflops
                   << " GFLOP/s whole-plan, revision " << promo.plan.revision
                   << ")";
  return promo;
}

template <typename T>
fmt::FormatKind BanditTuner<T>::pick_format_challenger(
    const FormatArms& fa, const std::vector<fmt::FormatKind>& pool,
    fmt::FormatKind incumbent) {
  // Builder-rejected formats are negative-cached and never re-picked: a
  // rejection is deterministic for a given bin (the build would just fail
  // and re-log every time), so re-exploring it buys nothing.
  // Unexplored suitable formats first, in the estimator's priority order —
  // every plausible layout gets one sample before exploitation starts.
  for (fmt::FormatKind k : pool) {
    if (k == incumbent || fa.rejected[static_cast<std::size_t>(k)]) continue;
    if (fa.arms[static_cast<std::size_t>(k)].samples == 0) return k;
  }
  std::vector<fmt::FormatKind> candidates;
  candidates.reserve(pool.size());
  for (fmt::FormatKind k : pool)
    if (k != incumbent && !fa.rejected[static_cast<std::size_t>(k)])
      candidates.push_back(k);
  if (candidates.empty()) return incumbent;
  if (rng_.uniform() < opts_.epsilon)
    return candidates[rng_.bounded(candidates.size())];
  fmt::FormatKind best = candidates.front();
  double best_mean = -1.0;
  for (fmt::FormatKind k : candidates) {
    const double m = fa.arms[static_cast<std::size_t>(k)].mean_gflops;
    if (m > best_mean) {
      best_mean = m;
      best = k;
    }
  }
  return best;
}

template <typename T>
std::optional<typename BanditTuner<T>::Promotion> BanditTuner<T>::format_trial(
    KeyState& st, const core::Plan& plan, const binning::BinSet& bins,
    const CsrMatrix<T>& a, std::span<const T> x) {
  // Same hottest-bin rotation as the kernel trials — a format change pays
  // off where the non-zeros are.
  const int bin = st.hot[st.next_hot % st.hot.size()];
  st.next_hot += 1;
  const auto& vrows = bins.bin(bin);
  const auto vspan = std::span<const index_t>(vrows);

  // The challenger pool is what the estimator deems plausible for this
  // bin's shape (CSR always included); a pool of just CSR means there is
  // nothing worth timing.
  const fmt::BinFeatures feat = fmt::compute_bin_features(a, vspan, bins.unit());
  const std::vector<fmt::FormatKind> pool = fmt::suitable_formats(feat);
  const fmt::FormatKind incumbent = plan.format_for(bin);
  FormatArms& fa = st.formats[bin];
  fa.pulls += 1;
  const fmt::FormatKind challenger =
      pick_format_challenger(fa, pool, incumbent);
  if (challenger == incumbent) return std::nullopt;

  const std::int64_t nnz = bin_nnz(a, vspan, bins.unit());
  const double flops =
      2.0 * static_cast<double>(std::max<std::int64_t>(1, nnz));

  // Back-to-back measurement on the bin's planned kernel: incumbent format
  // first, challenger second, same scratch output. Layout builds happen
  // outside the timed sections (see bin_format_gflops).
  double inc_gflops = 0.0;
  double ch_gflops = 0.0;
  {
    trace::TraceSpan span("adapt-trial-format", "adapt");
    span.arg("bin", bin);
    span.arg("challenger", static_cast<std::int64_t>(challenger));
    if (opts_.measure_format_override) {
      inc_gflops = opts_.measure_format_override(bin, incumbent);
      ch_gflops = opts_.measure_format_override(bin, challenger);
    } else {
      const exec::Backend& backend = backend_for(plan.backend);
      const kernels::KernelId kernel = plan.kernel_for(bin);
      std::vector<T> y(static_cast<std::size_t>(a.rows()));
      inc_gflops =
          bin_format_gflops(backend, a, x, std::span<T>(y), vspan,
                            bins.unit(), kernel, incumbent, bin, flops);
      ch_gflops =
          bin_format_gflops(backend, a, x, std::span<T>(y), vspan,
                            bins.unit(), kernel, challenger, bin, flops);
    }
  }
  // A negative measurement is the builder-rejection sentinel: negative-cache
  // the format (pick_format_challenger excludes it from now on) and record
  // the trial as a zero-reward sample.
  if (inc_gflops < 0.0) {
    fa.rejected[static_cast<std::size_t>(incumbent)] = true;
    inc_gflops = 0.0;
  }
  if (ch_gflops < 0.0) {
    fa.rejected[static_cast<std::size_t>(challenger)] = true;
    ch_gflops = 0.0;
  }
  fa.arms[static_cast<std::size_t>(incumbent)].add(inc_gflops);
  fa.arms[static_cast<std::size_t>(challenger)].add(ch_gflops);
  stats_.trials += 1;
  stats_.f_trials += 1;
  if (ch_gflops > 0.0 && inc_gflops > ch_gflops)
    stats_.regret_s += flops * 1e-9 / ch_gflops - flops * 1e-9 / inc_gflops;

  const Arm& inc_arm = fa.arms[static_cast<std::size_t>(incumbent)];
  const Arm& ch_arm = fa.arms[static_cast<std::size_t>(challenger)];
  const auto min_n = static_cast<std::uint64_t>(opts_.format_min_samples);
  if (inc_arm.samples < min_n || ch_arm.samples < min_n) return std::nullopt;
  if (ch_arm.mean_gflops <= inc_arm.mean_gflops * opts_.format_hysteresis)
    return std::nullopt;

  // Promote: copy the plan, re-stamp this one bin's format, bump the
  // revision. Bins and kernels are untouched (rebinned stays false); the
  // serving layer's next AutoSpmv rebuild sees uses_formats() and
  // materializes the layout through the amortization policy.
  Promotion promo;
  promo.plan = plan;
  promo.plan.revision = plan.revision + 1;
  for (core::BinPlan& bp : promo.plan.bin_kernels)
    if (bp.bin_id == bin) bp.format = challenger;
  promo.gflops = ch_arm.mean_gflops;
  promo.level = 4;
  stats_.promotions += 1;
  stats_.f_promotions += 1;
  st.format_cooldown = opts_.format_cooldown;
  trace::emit_instant("adapt-promote-format", "adapt");
  util::log_info() << "adapt: promoting bin " << bin << " format "
                   << fmt::format_cname(incumbent) << " -> "
                   << fmt::format_cname(challenger) << " ("
                   << inc_arm.mean_gflops << " -> " << ch_arm.mean_gflops
                   << " GFLOP/s, revision " << promo.plan.revision << ")";
  return promo;
}

template <typename T>
bool BanditTuner<T>::ensure_state(KeyState& st, const core::Plan& plan,
                                  const binning::BinSet& bins,
                                  const CsrMatrix<T>& a) {
  if (st.hot.empty() || st.unit != bins.unit() ||
      st.backend != static_cast<int>(plan.backend) ||
      st.plan_revision != plan.revision) {
    if (st.backend != static_cast<int>(plan.backend)) {
      // Backend switched (a backend promotion landed): every kernel- and
      // unit-arm mean was timed on the old execution engine and is
      // meaningless on the new one. The backend arms themselves persist —
      // they are cross-backend comparisons by construction.
      st.bins.clear();
      st.units.clear();
      st.formats.clear();
      st.next_hot = 0;
    } else if (st.unit != bins.unit()) {
      // New key, or re-binned at a different granularity: bin ids now
      // cover different rows, so every arm measurement is stale.
      st.bins.clear();
      st.formats.clear();
      st.next_hot = 0;
    }
    // Otherwise the plan moved at the same granularity (a promotion
    // landed, or a warm re-plan). Arm means are (bin, kernel) timings of
    // the matrix itself and stay valid, so keep them — resetting here
    // would restart exploration from scratch after every promotion.
    st.unit = bins.unit();
    st.backend = static_cast<int>(plan.backend);
    st.plan_revision = plan.revision;
    std::vector<std::pair<std::int64_t, int>> by_nnz;
    for (const core::BinPlan& bp : plan.bin_kernels) {
      if (bp.bin_id >= bins.bin_count()) continue;
      const auto& vrows = bins.bin(bp.bin_id);
      if (vrows.empty()) continue;
      by_nnz.emplace_back(
          bin_nnz(a, std::span<const index_t>(vrows), bins.unit()),
          bp.bin_id);
    }
    std::sort(by_nnz.begin(), by_nnz.end(), [](const auto& l, const auto& r) {
      return l.first > r.first || (l.first == r.first && l.second < r.second);
    });
    st.hot.clear();
    for (std::size_t i = 0;
         i < by_nnz.size() &&
         i < static_cast<std::size_t>(opts_.hot_bins);
         ++i)
      st.hot.push_back(by_nnz[i].second);
  }
  return !st.hot.empty();
}

template <typename T>
std::optional<typename BanditTuner<T>::Promotion> BanditTuner<T>::observe(
    const serve::Fingerprint& key, const core::Plan& plan,
    const binning::BinSet& bins, const CsrMatrix<T>& a,
    std::span<const T> x) {
  if (plan.bin_kernels.empty() || opts_.kernel_pool.size() < 2)
    return std::nullopt;

  // The mutex covers the whole trial (state + rng + the measurement
  // itself): trials are rare (trial_fraction of requests) and cheap (two
  // single-bin launches), and serializing them keeps back-to-back pairs
  // honest — two concurrent trials would time each other's contention.
  std::lock_guard<std::mutex> lock(mutex_);
  if (rng_.uniform() >= opts_.trial_fraction) return std::nullopt;

  KeyState& st = states_[key];
  if (!ensure_state(st, plan, bins, a)) return std::nullopt;

  // Second level: divert a share of trials to whole-plan U exploration.
  // The cooldown after a U switch ticks down on kernel trials, so a fresh
  // incumbent gets re-measured at the new granularity before it can be
  // challenged again. Single-bin plans have no bin structure to re-tune.
  if (opts_.explore_units && !plan.single_bin && opts_.unit_pool.size() >= 2) {
    if (st.unit_cooldown > 0) {
      st.unit_cooldown -= 1;
    } else if (rng_.uniform() < opts_.unit_trial_fraction) {
      return unit_trial(st, plan, bins, a, x);
    }
  }

  // Third level: divert a share of the remaining trials to whole-plan
  // backend exploration. Drawn after the U diversion so a kernel trial is
  // still the common case; the cooldown ticks down on trials that reach
  // this point, letting a freshly promoted backend settle first.
  if (opts_.explore_backends) {
    if (st.backend_cooldown > 0) {
      st.backend_cooldown -= 1;
    } else if (rng_.uniform() < opts_.backend_trial_fraction) {
      return backend_trial(st, plan, bins, a, x);
    }
  }

  // Fourth level: divert a share of the remaining trials to per-bin format
  // exploration. Gated on the plan's backend actually being able to run
  // alternative layouts — a clsim plan stays CSR-everywhere, keeping the
  // two backends differentially comparable.
  if (opts_.explore_formats &&
      backend_for(plan.backend).supports_formats()) {
    if (st.format_cooldown > 0) {
      st.format_cooldown -= 1;
    } else if (rng_.uniform() < opts_.format_trial_fraction) {
      return format_trial(st, plan, bins, a, x);
    }
  }

  const int bin = st.hot[st.next_hot % st.hot.size()];
  st.next_hot += 1;
  const kernels::KernelId incumbent = plan.kernel_for(bin);
  BinArms& ba = st.bins[bin];
  ba.pulls += 1;
  const kernels::KernelId challenger = pick_challenger(ba, incumbent);

  const auto& vrows = bins.bin(bin);
  const std::int64_t nnz =
      bin_nnz(a, std::span<const index_t>(vrows), bins.unit());
  const double flops = 2.0 * static_cast<double>(std::max<std::int64_t>(1, nnz));

  // Back-to-back measurement: incumbent first, challenger second, same
  // scratch output. GFLOP/s = 2*nnz / seconds * 1e-9.
  double inc_gflops = 0.0;
  double ch_gflops = 0.0;
  {
    trace::TraceSpan span("adapt-trial", "adapt");
    span.arg("bin", bin);
    span.arg("challenger", static_cast<std::int64_t>(challenger));
    if (opts_.measure_override) {
      inc_gflops = opts_.measure_override(incumbent, bin);
      ch_gflops = opts_.measure_override(challenger, bin);
    } else {
      std::vector<T> y(static_cast<std::size_t>(a.rows()));
      // Both launches on the plan's own backend: kernel arms compare
      // thread shapes under the engine the plan actually runs on.
      const exec::Backend& backend = backend_for(plan.backend);
      try {
        util::Timer t;
        backend.run_binned(incumbent, a, x, std::span<T>(y),
                           std::span<const index_t>(vrows), bins.unit());
        inc_gflops = flops / std::max(t.elapsed_s(), 1e-12) * 1e-9;
        t.reset();
        backend.run_binned(challenger, a, x, std::span<T>(y),
                           std::span<const index_t>(vrows), bins.unit());
        ch_gflops = flops / std::max(t.elapsed_s(), 1e-12) * 1e-9;
      } catch (const std::exception& e) {
        // A kernel that cannot run on this bin earns a zero-reward sample;
        // the bandit learns to avoid it instead of crashing the worker.
        util::log_warn() << "adapt trial failed (bin " << bin << ", "
                         << kernels::kernel_name(challenger)
                         << "): " << e.what();
      }
    }
  }

  ba.arms[static_cast<std::size_t>(incumbent)].add(inc_gflops);
  ba.arms[static_cast<std::size_t>(challenger)].add(ch_gflops);
  stats_.trials += 1;
  // Regret = wall time lost to a challenger slower than the incumbent
  // (what exploration cost us on this trial).
  if (ch_gflops > 0.0 && inc_gflops > ch_gflops)
    stats_.regret_s += flops * 1e-9 / ch_gflops - flops * 1e-9 / inc_gflops;

  const Arm& inc_arm = ba.arms[static_cast<std::size_t>(incumbent)];
  const Arm& ch_arm = ba.arms[static_cast<std::size_t>(challenger)];
  const auto min_n = static_cast<std::uint64_t>(opts_.min_samples);
  if (inc_arm.samples < min_n || ch_arm.samples < min_n) return std::nullopt;
  if (ch_arm.mean_gflops <= inc_arm.mean_gflops * opts_.hysteresis)
    return std::nullopt;

  // Promote: copy the plan, swap this bin's kernel, bump the revision.
  Promotion promo;
  promo.plan = plan;
  promo.plan.revision = plan.revision + 1;
  for (core::BinPlan& bp : promo.plan.bin_kernels)
    if (bp.bin_id == bin) bp.kernel = challenger;
  promo.gflops = ch_arm.mean_gflops;
  stats_.promotions += 1;
  trace::emit_instant("adapt-promote", "adapt");
  util::log_info() << "adapt: promoting bin " << bin << " "
                   << kernels::kernel_name(incumbent) << " -> "
                   << kernels::kernel_name(challenger) << " ("
                   << inc_arm.mean_gflops << " -> " << ch_arm.mean_gflops
                   << " GFLOP/s, revision " << promo.plan.revision << ")";
  // The promoted plan's incumbent on this bin is now the challenger. Arm
  // means survive the revision bump, and the old incumbent's mean trails
  // the new one by at least the hysteresis factor, so it cannot flap
  // straight back.
  return promo;
}

template <typename T>
typename BanditTuner<T>::LatencyVariant BanditTuner<T>::next_variant(
    const serve::Fingerprint& key, const core::Plan& plan,
    const binning::BinSet& bins, const CsrMatrix<T>& a) {
  LatencyVariant v;
  v.plan = plan;
  if (plan.bin_kernels.empty() || opts_.kernel_pool.size() < 2) return v;

  std::lock_guard<std::mutex> lock(mutex_);
  KeyState& st = states_[key];
  if (!ensure_state(st, plan, bins, a)) return v;

  const int bin = st.hot[st.next_hot % st.hot.size()];
  v.bin = bin;
  if (!st.l_challenge_next) {
    // Incumbent iteration: execute the plan verbatim and credit its own
    // kernel on the rotated hot bin. The paired challenger iteration that
    // follows differs only on that bin, so the whole-plan latencies are an
    // apples-to-apples comparison of the two kernels.
    v.kernel = plan.kernel_for(bin);
    v.incumbent = v.kernel;
    st.l_challenge_next = true;
    return v;
  }
  st.l_challenge_next = false;
  st.next_hot += 1;  // move to the next hot bin after each paired round
  BinArms& ba = st.bins[bin];
  ba.pulls += 1;
  const kernels::KernelId incumbent = plan.kernel_for(bin);
  v.kernel = incumbent;
  v.incumbent = incumbent;
  const kernels::KernelId challenger = pick_challenger(ba, incumbent);
  if (challenger == incumbent) return v;
  v.kernel = challenger;
  v.challenger = true;
  for (core::BinPlan& bp : v.plan.bin_kernels)
    if (bp.bin_id == bin) bp.kernel = challenger;
  return v;
}

template <typename T>
std::optional<typename BanditTuner<T>::Promotion> BanditTuner<T>::feedback(
    const serve::Fingerprint& key, const LatencyVariant& variant,
    double seconds, std::int64_t nnz) {
  if (variant.bin < 0) return std::nullopt;
  const double flops =
      2.0 * static_cast<double>(std::max<std::int64_t>(1, nnz));
  const double gflops = flops / std::max(seconds, 1e-12) * 1e-9;

  std::lock_guard<std::mutex> lock(mutex_);
  KeyState& st = states_[key];
  BinArms& ba = st.bins[variant.bin];
  ba.arms[static_cast<std::size_t>(variant.kernel)].add(gflops);
  if (!variant.challenger) return std::nullopt;
  stats_.l_trials += 1;

  const kernels::KernelId incumbent = variant.incumbent;
  if (incumbent == variant.kernel) return std::nullopt;
  const Arm& inc_arm = ba.arms[static_cast<std::size_t>(incumbent)];
  const Arm& ch_arm = ba.arms[static_cast<std::size_t>(variant.kernel)];
  // Regret: wall time this iteration lost relative to the incumbent's
  // running mean (exploration cost of serving the challenger for real).
  if (gflops > 0.0 && inc_arm.mean_gflops > gflops)
    stats_.regret_s +=
        flops * 1e-9 / gflops - flops * 1e-9 / inc_arm.mean_gflops;
  const auto min_n = static_cast<std::uint64_t>(opts_.min_samples);
  if (inc_arm.samples < min_n || ch_arm.samples < min_n) return std::nullopt;
  if (ch_arm.mean_gflops <= inc_arm.mean_gflops * opts_.hysteresis)
    return std::nullopt;

  // Promote: the variant plan already carries the challenger on the bin —
  // stamp it as a new revision. The session applies it (and its SpMM width
  // provenance) exactly like a shadow promotion.
  Promotion promo;
  promo.plan = variant.plan;
  promo.plan.revision += 1;
  promo.gflops = ch_arm.mean_gflops;
  promo.level = 1;
  stats_.promotions += 1;
  stats_.l_promotions += 1;
  st.plan_revision = promo.plan.revision;
  trace::emit_instant("adapt-promote-latency", "adapt");
  util::log_info() << "adapt: latency-feedback promoting bin " << variant.bin
                   << " " << kernels::kernel_name(incumbent) << " -> "
                   << kernels::kernel_name(variant.kernel) << " ("
                   << inc_arm.mean_gflops << " -> " << ch_arm.mean_gflops
                   << " GFLOP/s whole-plan, revision " << promo.plan.revision
                   << ")";
  return promo;
}

template <typename T>
prof::AdaptStats BanditTuner<T>::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

template class BanditTuner<float>;
template class BanditTuner<double>;

}  // namespace spmv::adapt

// spmv::adapt::BanditTuner — online plan refinement by shadow measurement.
//
// The serving layer plans once per matrix structure (predictor-driven or
// warm-started from a PlanStore) and then executes that plan forever. When
// the predictor mispredicts, the service is stuck with a slow plan. The
// BanditTuner fixes that without a stop-the-world retune: for a configurable
// fraction of served requests, the worker that just executed a batch also
// shadow-measures ONE alternative kernel on one of the plan's hottest bins
// (most non-zeros = most leverage), back-to-back with the incumbent so the
// two samples see the same cache/frequency state. Per-bin kernel arms
// accumulate mean GFLOP/s; when a challenger has enough samples and beats
// the incumbent by the hysteresis margin, observe() returns a promoted Plan
// copy (revision + 1) for the caller to swap into its PlanCache.
//
// Anti-flapping: promotion needs `min_samples` on BOTH arms and a strict
// `hysteresis` ratio (e.g. 1.10 = challenger must be 10% faster on the
// running mean), so measurement noise cannot ping-pong two near-equal
// kernels. Promotions bump the plan revision; a revision change observed on
// a key resets that key's arms (the old measurements described the old
// plan's incumbents).
//
// Everything is recorded: prof counters (adapt.trials / adapt.promotions /
// adapt.regret) via stats(), and trace spans "adapt-trial"/"adapt-promote"
// in category "adapt".
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "binning/binning.hpp"
#include "clsim/engine.hpp"
#include "core/plan.hpp"
#include "kernels/registry.hpp"
#include "prof/profile.hpp"
#include "serve/fingerprint.hpp"
#include "sparse/csr.hpp"
#include "util/rng.hpp"

namespace spmv::adapt {

struct AdaptOptions {
  /// Fraction of observe() calls that run a shadow trial (the rest return
  /// immediately after one rng draw).
  double trial_fraction = 0.1;
  /// Samples required on BOTH the incumbent and the challenger arm before
  /// a promotion is considered.
  int min_samples = 3;
  /// Challenger's mean GFLOP/s must exceed incumbent's mean times this
  /// ratio to promote (1.10 = 10% better). Values <= 1 promote on any win.
  double hysteresis = 1.10;
  /// Epsilon-greedy exploration rate (ignored when use_ucb is true).
  double epsilon = 0.25;
  /// Select challengers by UCB1 instead of epsilon-greedy.
  bool use_ucb = false;
  /// How many of the plan's hottest bins (by covered nnz) to rotate trials
  /// through.
  int hot_bins = 2;
  /// Challenger kernel pool; empty = kernels::all_kernels().
  std::vector<kernels::KernelId> kernel_pool;
  /// Deterministic seed for trial sampling and exploration.
  std::uint64_t seed = 42;
  /// Test seam: when set, replaces the timed kernel launches — returns the
  /// "measured" GFLOP/s for (kernel, bin). Lets tests rig the reward
  /// landscape deterministically (convergence, hysteresis under noise).
  std::function<double(kernels::KernelId, int)> measure_override;
};

template <typename T>
class BanditTuner {
 public:
  /// A plan improvement found by observe(): the refined plan (revision
  /// already bumped) and the challenger's mean throughput on the trialed
  /// bin.
  struct Promotion {
    core::Plan plan;
    double gflops = 0.0;
  };

  BanditTuner(const clsim::Engine& engine, AdaptOptions opts);

  /// Consider one served request for a shadow trial. `plan`/`bins` are the
  /// cached entry's, `a`/`x` the request's own matrix and input vector
  /// (the trial runs real kernels against them unless measure_override is
  /// set). Returns a Promotion when this trial tipped a challenger past
  /// the hysteresis threshold; the caller owns applying it to its cache
  /// and store. Never throws on trial failure — a kernel that cannot run
  /// is recorded as a worthless arm.
  std::optional<Promotion> observe(const serve::Fingerprint& key,
                                   const core::Plan& plan,
                                   const binning::BinSet& bins,
                                   const CsrMatrix<T>& a,
                                   std::span<const T> x);

  [[nodiscard]] prof::AdaptStats stats() const;

 private:
  /// Running per-(bin, kernel) reward estimate.
  struct Arm {
    std::uint64_t samples = 0;
    double mean_gflops = 0.0;
    void add(double gflops) {
      samples += 1;
      mean_gflops += (gflops - mean_gflops) / static_cast<double>(samples);
    }
  };

  struct BinArms {
    Arm arms[kernels::kKernelCount];
    std::uint64_t pulls = 0;  ///< trials on this bin (for UCB)
  };

  /// Per-fingerprint bandit state. Arm means are (bin, kernel)
  /// measurements of the matrix itself, so they survive plan-revision
  /// bumps (promotions); only a granularity change invalidates them (bin
  /// ids then cover different rows) and resets the whole state.
  struct KeyState {
    std::uint64_t plan_revision = 0;
    index_t unit = -1;          ///< granularity the arms were measured at
    std::vector<int> hot;       ///< hottest occupied bins, descending nnz
    std::size_t next_hot = 0;   ///< round-robin cursor over `hot`
    std::unordered_map<int, BinArms> bins;
  };

  kernels::KernelId pick_challenger(const BinArms& ba,
                                    kernels::KernelId incumbent);

  const clsim::Engine& engine_;
  AdaptOptions opts_;

  mutable std::mutex mutex_;
  util::Xoshiro256 rng_;
  std::unordered_map<serve::Fingerprint, KeyState, serve::FingerprintHash>
      states_;
  prof::AdaptStats stats_;
};

extern template class BanditTuner<float>;
extern template class BanditTuner<double>;

}  // namespace spmv::adapt

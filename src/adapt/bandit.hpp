// spmv::adapt::BanditTuner — online plan refinement by shadow measurement.
//
// The serving layer plans once per matrix structure (predictor-driven or
// warm-started from a PlanStore) and then executes that plan forever. When
// the predictor mispredicts, the service is stuck with a slow plan. The
// BanditTuner fixes that without a stop-the-world retune: for a configurable
// fraction of served requests, the worker that just executed a batch also
// shadow-measures ONE alternative kernel on one of the plan's hottest bins
// (most non-zeros = most leverage), back-to-back with the incumbent so the
// two samples see the same cache/frequency state. Per-bin kernel arms
// accumulate mean GFLOP/s; when a challenger has enough samples and beats
// the incumbent by the hysteresis margin, observe() returns a promoted Plan
// copy (revision + 1) for the caller to swap into its PlanCache.
//
// Anti-flapping: promotion needs `min_samples` on BOTH arms and a strict
// `hysteresis` ratio (e.g. 1.10 = challenger must be 10% faster on the
// running mean), so measurement noise cannot ping-pong two near-equal
// kernels. Promotions bump the plan revision; a revision change observed on
// a key resets that key's arms (the old measurements described the old
// plan's incumbents).
//
// Second level (opt-in via explore_units): the stage-1 predictor can also
// get the binning granularity U itself wrong, and no amount of per-bin
// kernel swapping recovers from a bad bin structure. A `unit_trial_fraction`
// share of trials therefore shadow-measures the WHOLE plan at a neighboring
// granularity from the paper's preset grid, scored in whole-plan GFLOP/s:
// the matrix is re-binned at the challenger U and each bin's kernel is
// seeded from what the first level already learned (bin id approximates the
// average row length inside the bin regardless of U, so kernel-arm
// knowledge transfers across granularities). A confident win (unit_min_
// samples on both U arms, unit_hysteresis margin) promotes a fully rebuilt
// plan — re-binned, revision bumped, tuned-U provenance set — through the
// same PlanCache::promote path, so the PlanStore write-through persists the
// corrected U and a restart warm-starts with it. U-switches are rarer and
// costlier than kernel swaps, so they get their own stronger hysteresis
// plus a `unit_cooldown` of trials after each switch; per-U arm means are
// whole-plan measurements of the matrix and survive re-binning, which stops
// an immediate ping-pong back.
//
// Third level (opt-in via explore_backends): the execution backend itself
// (spmv::exec — clsim simulation vs. the native SIMD engine) is a plan
// property, and which one is faster depends on the matrix shape. A
// `backend_trial_fraction` share of trials shadow-measures the WHOLE plan
// on the alternative backend, back-to-back with the incumbent backend on
// identical bins and kernels. Backend arms are whole-plan GFLOP/s keyed by
// BackendKind; a confident win (backend_min_samples on both, the stricter
// backend_hysteresis margin) promotes a plan copy re-stamped with the
// challenger backend (revision bumped, bins untouched — rebinned stays
// false). A backend switch invalidates every kernel- and unit-arm mean
// (they were timed on the old backend), so those reset while the backend
// arms themselves persist — which is what stops an immediate flap back.
//
// Fourth level (opt-in via explore_formats): each bin's physical layout
// (spmv::fmt — CSR vs. ELL-packed vs. COO vs. delta-compressed columns) is
// a per-bin plan property on format-capable backends. A
// `format_trial_fraction` share of trials shadow-measures ONE alternative
// layout on one hot bin, back-to-back with the bin's incumbent format on
// the same kernel. The challenger pool is fmt::suitable_formats() over the
// bin's features, so obviously-hopeless layouts are never timed, and a
// format whose layout build the builder rejects is negative-cached per bin
// — the deterministic failure is attempted once, not on every trial; the
// transformation itself runs OUTSIDE the timed section (arms compare
// steady-state execution — PlanLayouts' amortization policy separately
// decides when a build is worth paying at serving time). Format arms are
// per-(bin, format) GFLOP/s; a confident win (format_min_samples on both,
// format_hysteresis margin) promotes a plan copy with that one bin's
// format re-stamped (revision bumped, bins untouched). Format arms reset
// alongside kernel arms on a unit or backend change — they were timed on
// that bin structure and engine.
//
// Latency-feedback path (solver loops — spmv::iter): a workload that runs
// the SAME plan hundreds of times back-to-back (power iteration, CG) does
// not need shadow launches at all — every iteration IS a measurement. The
// session asks next_variant() which plan to execute this iteration (the
// incumbent, or a copy with ONE hot bin's kernel swapped to a challenger,
// alternating so both arms accumulate paired whole-plan samples under
// identical loop conditions), times the real iteration, and reports the
// wall time through feedback(). feedback() scores the variant in whole-plan
// GFLOP/s and feeds the same per-bin kernel arms the shadow path uses, so
// the min_samples + hysteresis promotion machinery is shared — a promotion
// from feedback() is provenance-stamped like a shadow promotion but counted
// separately (adapt.l_trials / adapt.l_promotions; l_trials is NOT folded
// into adapt.trials, so a pure latency-feedback session reports trials ==
// 0 == "no shadow launches").
//
// Everything is recorded: prof counters (adapt.trials / adapt.promotions /
// adapt.regret plus adapt.u_trials / adapt.u_promotions, adapt.b_trials /
// adapt.b_promotions, adapt.f_trials / adapt.f_promotions and
// adapt.l_trials / adapt.l_promotions) via stats(), and trace spans
// "adapt-trial"/"adapt-promote" plus "adapt-trial-u"/"adapt-promote-u",
// "adapt-trial-backend"/"adapt-promote-backend", "adapt-trial-format"/
// "adapt-promote-format" and "adapt-promote-latency" in category "adapt".
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "binning/binning.hpp"
#include "clsim/engine.hpp"
#include "core/plan.hpp"
#include "exec/backend.hpp"
#include "fmt/format.hpp"
#include "kernels/registry.hpp"
#include "prof/profile.hpp"
#include "serve/fingerprint.hpp"
#include "sparse/csr.hpp"
#include "util/rng.hpp"

namespace spmv::adapt {

struct AdaptOptions {
  /// Fraction of observe() calls that run a shadow trial (the rest return
  /// immediately after one rng draw).
  double trial_fraction = 0.1;
  /// Samples required on BOTH the incumbent and the challenger arm before
  /// a promotion is considered.
  int min_samples = 3;
  /// Challenger's mean GFLOP/s must exceed incumbent's mean times this
  /// ratio to promote (1.10 = 10% better). Values <= 1 promote on any win.
  double hysteresis = 1.10;
  /// Epsilon-greedy exploration rate (ignored when use_ucb is true).
  double epsilon = 0.25;
  /// Select challengers by UCB1 instead of epsilon-greedy.
  bool use_ucb = false;
  /// How many of the plan's hottest bins (by covered nnz) to rotate trials
  /// through.
  int hot_bins = 2;
  /// Challenger kernel pool; empty = kernels::all_kernels().
  std::vector<kernels::KernelId> kernel_pool;
  /// Deterministic seed for trial sampling and exploration.
  std::uint64_t seed = 42;
  /// Test seam: when set, replaces the timed kernel launches — returns the
  /// "measured" GFLOP/s for (kernel, bin). Lets tests rig the reward
  /// landscape deterministically (convergence, hysteresis under noise).
  std::function<double(kernels::KernelId, int)> measure_override;

  // --- second level: online exploration of the binning unit U ---------

  /// Enable whole-plan shadow trials at neighboring granularities.
  bool explore_units = false;
  /// Of the trials observe() runs, the share diverted to U exploration
  /// (the rest stay per-bin kernel trials).
  double unit_trial_fraction = 0.25;
  /// Samples required on BOTH U arms before a U promotion is considered.
  int unit_min_samples = 3;
  /// Challenger U's whole-plan mean GFLOP/s must exceed the incumbent's by
  /// this ratio. Stricter than the kernel-level `hysteresis` by default:
  /// a U-switch rebuilds the whole plan, so flapping is costlier.
  double unit_hysteresis = 1.15;
  /// Trials to skip U exploration after a U promotion, letting the new
  /// incumbent accumulate samples before it can be challenged again.
  int unit_cooldown = 8;
  /// Candidate granularities; empty = binning::default_granularity_pool()
  /// (the paper's 10 .. 10^6 ladder). Sorted and deduplicated at
  /// construction.
  std::vector<index_t> unit_pool;
  /// Test seam for U trials: when set, replaces the whole-plan timed runs
  /// — returns the "measured" whole-plan GFLOP/s at granularity u.
  std::function<double(index_t)> measure_unit_override;

  // --- third level: online exploration of the execution backend -------

  /// Enable whole-plan shadow trials on the alternative exec backend.
  bool explore_backends = false;
  /// Of the trials observe() runs, the share diverted to backend trials
  /// (drawn after the U diversion; the rest stay per-bin kernel trials).
  double backend_trial_fraction = 0.2;
  /// Samples required on BOTH backend arms before a promotion.
  int backend_min_samples = 3;
  /// Challenger backend's whole-plan mean GFLOP/s must exceed the
  /// incumbent's by this ratio. Strictest of the three levels: a backend
  /// switch throws away every kernel- and unit-arm measurement.
  double backend_hysteresis = 1.25;
  /// Trials to skip backend exploration after a backend promotion.
  int backend_cooldown = 8;
  /// Test seam for backend trials: when set, replaces the whole-plan timed
  /// runs — returns the "measured" whole-plan GFLOP/s on backend `kind`.
  std::function<double(exec::BackendKind)> measure_backend_override;

  // --- fourth level: online exploration of per-bin physical formats ---

  /// Enable per-bin shadow trials of alternative physical layouts. Only
  /// effective when the plan's backend supports formats (spmv::fmt);
  /// clsim plans stay CSR-everywhere and never divert trials here.
  bool explore_formats = false;
  /// Of the trials observe() runs, the share diverted to format trials
  /// (drawn after the U and backend diversions).
  double format_trial_fraction = 0.2;
  /// Samples required on BOTH format arms before a promotion.
  int format_min_samples = 3;
  /// Challenger format's mean GFLOP/s on the bin must exceed the
  /// incumbent's by this ratio. A format swap costs a one-off layout
  /// build at serving time, so it sits between the kernel and unit bars.
  double format_hysteresis = 1.15;
  /// Trials to skip format exploration after a format promotion.
  int format_cooldown = 8;
  /// Test seam for format trials: when set, replaces the timed bin runs —
  /// returns the "measured" GFLOP/s for (bin, format). A negative value is
  /// the builder-rejection sentinel: the format is negative-cached for the
  /// bin (excluded from future challenger picks) and the trial records a
  /// zero-reward sample.
  std::function<double(int, fmt::FormatKind)> measure_format_override;
};

template <typename T>
class BanditTuner {
 public:
  /// A plan improvement found by observe(): the refined plan (revision
  /// already bumped) and the challenger's mean throughput — on the trialed
  /// bin for a kernel swap, or whole-plan for a U promotion.
  struct Promotion {
    core::Plan plan;
    double gflops = 0.0;
    /// True for a U promotion: the plan was rebuilt at a different
    /// granularity (structurally different bins), not just given a new
    /// kernel on one bin. Backend promotions keep the bins and leave this
    /// false.
    bool rebinned = false;
    /// Which arm level won: 1 kernel, 2 unit (U), 3 backend, 4 format —
    /// matching prof::Exemplar::promo_level, so a latency exemplar can
    /// name the provenance of the plan change that preceded it.
    std::uint8_t level = 1;
  };

  BanditTuner(const clsim::Engine& engine, AdaptOptions opts);

  /// Consider one served request for a shadow trial. `plan`/`bins` are the
  /// cached entry's, `a`/`x` the request's own matrix and input vector
  /// (the trial runs real kernels against them unless measure_override is
  /// set). Returns a Promotion when this trial tipped a challenger past
  /// the hysteresis threshold; the caller owns applying it to its cache
  /// and store. Never throws on trial failure — a kernel that cannot run
  /// is recorded as a worthless arm.
  std::optional<Promotion> observe(const serve::Fingerprint& key,
                                   const core::Plan& plan,
                                   const binning::BinSet& bins,
                                   const CsrMatrix<T>& a,
                                   std::span<const T> x);

  /// One iteration's execution recipe for the latency-feedback path. The
  /// caller executes `plan` (the incumbent verbatim, or a copy with bin
  /// `bin`'s kernel swapped to `kernel` when `challenger` is true), times
  /// the iteration, and reports the wall time through feedback(). `bin` is
  /// -1 when the tuner has nothing to learn on this key (empty plan, no
  /// occupied bins, a one-kernel pool) — execute the plan and skip the
  /// feedback() call.
  struct LatencyVariant {
    core::Plan plan;
    int bin = -1;
    kernels::KernelId kernel = kernels::KernelId::Serial;
    /// The plan's own kernel on `bin` (== `kernel` on incumbent
    /// iterations); feedback() compares the two arms against it.
    kernels::KernelId incumbent = kernels::KernelId::Serial;
    bool challenger = false;
  };

  /// Pick which plan variant the next solver iteration should execute.
  /// Alternates incumbent / one-bin-challenger over the key's hottest bins
  /// so both arms accumulate paired whole-plan samples; never launches
  /// anything itself (trial_fraction does not apply — every iteration is a
  /// free measurement).
  LatencyVariant next_variant(const serve::Fingerprint& key,
                              const core::Plan& plan,
                              const binning::BinSet& bins,
                              const CsrMatrix<T>& a);

  /// Report a timed iteration of `variant`. Scores it as whole-plan
  /// GFLOP/s (2 * max(1, nnz) / seconds) into the (bin, kernel) arm and
  /// runs the shared min_samples + hysteresis promotion check. Returns a
  /// Promotion (level 1, revision bumped) when this sample tipped the
  /// challenger past the bar; the caller owns applying it.
  std::optional<Promotion> feedback(const serve::Fingerprint& key,
                                    const LatencyVariant& variant,
                                    double seconds, std::int64_t nnz);

  [[nodiscard]] prof::AdaptStats stats() const;

 private:
  /// Running per-(bin, kernel) reward estimate.
  struct Arm {
    std::uint64_t samples = 0;
    double mean_gflops = 0.0;
    void add(double gflops) {
      samples += 1;
      mean_gflops += (gflops - mean_gflops) / static_cast<double>(samples);
    }
  };

  struct BinArms {
    Arm arms[kernels::kKernelCount];
    std::uint64_t pulls = 0;  ///< trials on this bin (for UCB)
  };

  /// Per-(bin, format) reward estimates (the fourth-level arm space).
  struct FormatArms {
    Arm arms[fmt::kFormatCount];
    /// Negative cache of builder rejections: a format whose layout build
    /// failed on this bin is deterministic dead weight (the build would
    /// fail identically every time), so it is excluded from the challenger
    /// pool instead of re-attempted.
    bool rejected[fmt::kFormatCount] = {};
    std::uint64_t pulls = 0;
  };

  /// Per-fingerprint bandit state. Kernel-arm means are (bin, kernel)
  /// measurements of the matrix itself, so they survive plan-revision
  /// bumps (promotions); only a granularity change invalidates them (bin
  /// ids then cover different rows) and resets them. Unit-arm means are
  /// whole-plan measurements, valid across re-binning, so they persist for
  /// the key's whole lifetime — that persistence is what prevents U
  /// ping-pong after a switch.
  struct KeyState {
    std::uint64_t plan_revision = 0;
    index_t unit = -1;          ///< granularity the kernel arms were measured at
    std::vector<int> hot;       ///< hottest occupied bins, descending nnz
    std::size_t next_hot = 0;   ///< round-robin cursor over `hot`
    std::unordered_map<int, BinArms> bins;
    /// Whole-plan GFLOP/s per granularity (the second-level arm space).
    std::unordered_map<index_t, Arm> units;
    /// Remaining trials before the next U trial is allowed.
    int unit_cooldown = 0;
    /// Backend the kernel/unit arms were measured on (-1 = unset). A
    /// change invalidates both arm spaces — timings on one backend say
    /// nothing about the other — but the backend arms themselves persist.
    int backend = -1;
    /// Whole-plan GFLOP/s per exec::BackendKind (the third-level arms).
    std::unordered_map<int, Arm> backends;
    /// Remaining trials before the next backend trial is allowed.
    int backend_cooldown = 0;
    /// Per-bin format arms (fourth level). Timings describe one bin
    /// structure on one backend, so they reset with the kernel arms on a
    /// unit or backend change.
    std::unordered_map<int, FormatArms> formats;
    /// Remaining trials before the next format trial is allowed.
    int format_cooldown = 0;
    /// Latency-feedback phase: next_variant() alternates incumbent and
    /// challenger iterations so the arms accumulate paired samples.
    bool l_challenge_next = false;
  };

  /// Seed / revalidate a key's bandit state against the current plan and
  /// bins (hot-bin list, arm resets on unit/backend change). Shared by
  /// observe() and next_variant(); callers hold mutex_. Returns false when
  /// the plan has no occupied bins to learn on.
  bool ensure_state(KeyState& st, const core::Plan& plan,
                    const binning::BinSet& bins, const CsrMatrix<T>& a);

  kernels::KernelId pick_challenger(const BinArms& ba,
                                    kernels::KernelId incumbent);
  index_t pick_unit_challenger(const KeyState& st, index_t incumbent);
  kernels::KernelId seed_kernel(const KeyState& st, const core::Plan& plan,
                                int bin_id) const;
  std::optional<Promotion> unit_trial(KeyState& st, const core::Plan& plan,
                                      const binning::BinSet& bins,
                                      const CsrMatrix<T>& a,
                                      std::span<const T> x);
  std::optional<Promotion> backend_trial(KeyState& st, const core::Plan& plan,
                                         const binning::BinSet& bins,
                                         const CsrMatrix<T>& a,
                                         std::span<const T> x);
  fmt::FormatKind pick_format_challenger(
      const FormatArms& fa, const std::vector<fmt::FormatKind>& pool,
      fmt::FormatKind incumbent);
  std::optional<Promotion> format_trial(KeyState& st, const core::Plan& plan,
                                        const binning::BinSet& bins,
                                        const CsrMatrix<T>& a,
                                        std::span<const T> x);
  /// The backend trials and incumbent measurements run on. Clsim resolves
  /// to the engine the tuner was built with, so engine counters keep
  /// attributing trial launches.
  [[nodiscard]] const exec::Backend& backend_for(exec::BackendKind kind) const;

  const clsim::Engine& engine_;
  AdaptOptions opts_;
  std::shared_ptr<const exec::Backend> engine_backend_;
  std::shared_ptr<const exec::Backend> native_backend_;

  mutable std::mutex mutex_;
  util::Xoshiro256 rng_;
  std::unordered_map<serve::Fingerprint, KeyState, serve::FingerprintHash>
      states_;
  prof::AdaptStats stats_;
};

extern template class BanditTuner<float>;
extern template class BanditTuner<double>;

}  // namespace spmv::adapt

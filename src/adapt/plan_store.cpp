#include "adapt/plan_store.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/plan_io.hpp"
#include "util/log.hpp"

namespace spmv::adapt {

namespace {

/// row_hash travels as a hex string: prof::Json numbers are doubles, whose
/// 53-bit mantissa would silently corrupt a 64-bit hash.
std::string hash_to_hex(std::uint64_t h) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(h));
  return std::string(buf);
}

std::uint64_t hash_from_hex(const std::string& s) {
  return std::stoull(s, nullptr, 16);
}

prof::Json fingerprint_to_json(const serve::Fingerprint& f) {
  prof::Json j = prof::Json::object();
  j.set("rows", f.rows);
  j.set("cols", f.cols);
  j.set("nnz", f.nnz);
  j.set("row_hash", hash_to_hex(f.row_hash));
  return j;
}

serve::Fingerprint fingerprint_from_json(const prof::Json& j) {
  serve::Fingerprint f;
  f.rows = j.at("rows").as_int();
  f.cols = j.at("cols").as_int();
  f.nnz = j.at("nnz").as_int();
  f.row_hash = hash_from_hex(j.at("row_hash").as_string());
  return f;
}

std::int64_t unix_now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

PlanStore::PlanStore(std::string path, std::string device_config,
                     std::string model_version)
    : path_(std::move(path)),
      device_(std::move(device_config)),
      model_(std::move(model_version)) {}

PlanStoreStats PlanStore::load() {
  std::string text;
  {
    std::ifstream in(path_);
    if (!in) {
      // Missing file = empty store; the normal first-run state.
      std::lock_guard<std::mutex> lock(mutex_);
      return stats_;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    text = ss.str();
  }

  prof::Json doc;
  try {
    doc = prof::Json::parse(text);
    if (!doc.is_object()) throw std::runtime_error("root is not an object");
  } catch (const std::exception& e) {
    util::log_warn() << "plan store " << path_
                     << ": unreadable, starting empty (" << e.what() << ")";
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.skipped_malformed += 1;
    return stats_;
  }

  std::lock_guard<std::mutex> lock(mutex_);

  const prof::Json* schema = doc.find("schema");
  if (schema == nullptr ||
      schema->as_int() != kStoreSchemaVersion) {
    util::log_warn() << "plan store " << path_ << ": schema "
                     << (schema != nullptr ? schema->dump(0) : "<missing>")
                     << " != " << kStoreSchemaVersion << ", ignoring file";
    stats_.skipped_schema += 1;
    return stats_;
  }

  const prof::Json* entries = doc.find("entries");
  if (entries == nullptr || !entries->is_array()) {
    util::log_warn() << "plan store " << path_
                     << ": no entries array, starting empty";
    stats_.skipped_malformed += 1;
    return stats_;
  }

  for (const prof::Json& e : entries->items()) {
    try {
      const std::string& dev = e.at("device").as_string();
      const std::string& model = e.at("model").as_string();
      if (dev != device_) {
        util::log_info() << "plan store: skipping entry for device '" << dev
                         << "' (this device: '" << device_ << "')";
        stats_.skipped_device += 1;
        foreign_.push_back(e);
        continue;
      }
      if (model != model_) {
        util::log_info() << "plan store: skipping entry for model '" << model
                         << "' (this model: '" << model_ << "')";
        stats_.skipped_model += 1;
        foreign_.push_back(e);
        continue;
      }
      StoredPlan sp;
      sp.plan = core::plan_from_json(e.at("plan"));
      if (const prof::Json* v = e.find("gflops"); v != nullptr)
        sp.gflops = v->as_number();
      if (const prof::Json* v = e.find("trials"); v != nullptr)
        sp.trials = v->as_uint();
      if (const prof::Json* v = e.find("saved_unix_ms"); v != nullptr)
        sp.saved_unix_ms = v->as_int();
      map_[fingerprint_from_json(e.at("fingerprint"))] = std::move(sp);
      stats_.loaded += 1;
    } catch (const std::exception& ex) {
      util::log_warn() << "plan store " << path_
                       << ": skipping malformed entry (" << ex.what() << ")";
      stats_.skipped_malformed += 1;
    }
  }
  return stats_;
}

void PlanStore::flush() const {
  prof::Json entries = prof::Json::array();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [key, sp] : map_) {
      prof::Json e = prof::Json::object();
      e.set("fingerprint", fingerprint_to_json(key));
      e.set("device", device_);
      e.set("model", model_);
      e.set("plan", core::plan_to_json(sp.plan));
      e.set("gflops", sp.gflops);
      e.set("trials", sp.trials);
      e.set("saved_unix_ms", sp.saved_unix_ms);
      entries.push_back(std::move(e));
    }
    for (const prof::Json& e : foreign_) entries.push_back(e);
  }
  prof::Json doc = prof::Json::object();
  doc.set("schema", kStoreSchemaVersion);
  doc.set("entries", std::move(entries));

  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) throw std::runtime_error("cannot write plan store: " + tmp);
    out << doc.dump(2) << "\n";
    out.flush();
    if (!out) throw std::runtime_error("error writing plan store: " + tmp);
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("cannot rename " + tmp + " -> " + path_);
  }
}

std::optional<StoredPlan> PlanStore::lookup(
    const serve::Fingerprint& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

void PlanStore::put(const serve::Fingerprint& key, const StoredPlan& value) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = map_.find(key);
  if (it != map_.end() && it->second.plan.revision > value.plan.revision)
    return;  // stale writer: a newer revision is already stored
  StoredPlan sp = value;
  if (sp.saved_unix_ms == 0) sp.saved_unix_ms = unix_now_ms();
  map_[key] = std::move(sp);
}

std::size_t PlanStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return map_.size();
}

std::vector<std::pair<serve::Fingerprint, StoredPlan>> PlanStore::entries()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<serve::Fingerprint, StoredPlan>> out;
  out.reserve(map_.size());
  for (const auto& [key, sp] : map_) out.emplace_back(key, sp);
  return out;
}

std::size_t PlanStore::gc() {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t dropped = foreign_.size();
  foreign_.clear();
  return dropped;
}

PlanStoreStats PlanStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::string PlanStore::device_config_string(const clsim::Device& device) {
  std::ostringstream ss;
  ss << "cu=" << device.resolved_compute_units()
     << " group=" << device.max_group_size
     << " lds=" << device.local_mem_bytes;
  return ss.str();
}

}  // namespace spmv::adapt

#include "adapt/plan_store.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/plan_io.hpp"
#include "util/log.hpp"

namespace spmv::adapt {

namespace {

/// row_hash travels as a hex string: prof::Json numbers are doubles, whose
/// 53-bit mantissa would silently corrupt a 64-bit hash.
std::string hash_to_hex(std::uint64_t h) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(h));
  return std::string(buf);
}

std::uint64_t hash_from_hex(const std::string& s) {
  return std::stoull(s, nullptr, 16);
}

/// prof::Json numbers are doubles; static_cast of a non-integral,
/// out-of-range, or (for unsigned targets) negative double is undefined
/// behaviour, and the store file is untrusted input. Throws so the caller's
/// per-entry catch counts the entry as malformed.
std::int64_t checked_i64(const prof::Json& j, const char* what,
                         std::int64_t lo, std::int64_t hi) {
  const double v = j.as_number();
  if (!std::isfinite(v) || v != std::floor(v) ||
      v < static_cast<double>(lo) || v > static_cast<double>(hi))
    throw std::runtime_error(std::string("plan store: ") + what +
                             " out of range");
  return static_cast<std::int64_t>(v);
}

constexpr std::int64_t kMaxI64Double = 1LL << 53;  // exact-double ceiling

prof::Json fingerprint_to_json(const serve::Fingerprint& f) {
  prof::Json j = prof::Json::object();
  j.set("rows", f.rows);
  j.set("cols", f.cols);
  j.set("nnz", f.nnz);
  j.set("row_hash", hash_to_hex(f.row_hash));
  return j;
}

serve::Fingerprint fingerprint_from_json(const prof::Json& j) {
  serve::Fingerprint f;
  f.rows = checked_i64(j.at("rows"), "rows", 0, kMaxI64Double);
  f.cols = checked_i64(j.at("cols"), "cols", 0, kMaxI64Double);
  f.nnz = checked_i64(j.at("nnz"), "nnz", 0, kMaxI64Double);
  f.row_hash = hash_from_hex(j.at("row_hash").as_string());
  return f;
}

std::int64_t unix_now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

PlanStore::PlanStore(std::string path, std::string device_config,
                     std::string model_version)
    : path_(std::move(path)),
      device_(std::move(device_config)),
      model_(std::move(model_version)) {}

PlanStoreStats PlanStore::load() {
  std::string text;
  {
    std::ifstream in(path_);
    if (!in) {
      // Missing file = empty store; the normal first-run state.
      std::lock_guard<std::mutex> lock(mutex_);
      return stats_;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    text = ss.str();
  }

  prof::Json doc;
  try {
    doc = prof::Json::parse(text);
    if (!doc.is_object()) throw std::runtime_error("root is not an object");
  } catch (const std::exception& e) {
    util::log_warn() << "plan store " << path_
                     << ": unreadable, starting empty (" << e.what() << ")";
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.skipped_malformed += 1;
    return stats_;
  }

  std::lock_guard<std::mutex> lock(mutex_);

  // Type-check before as_int(): a type-confused schema field must count as
  // a schema mismatch, not throw out of load(). Comparing as_number avoids
  // the out-of-range cast for absurd values like 1e300.
  const prof::Json* schema = doc.find("schema");
  const bool schema_ok =
      schema != nullptr && schema->type() == prof::Json::Type::Number &&
      schema->as_number() >= static_cast<double>(kStoreSchemaMinSupported) &&
      schema->as_number() <= static_cast<double>(kStoreSchemaVersion) &&
      schema->as_number() == std::floor(schema->as_number());
  if (!schema_ok) {
    util::log_warn() << "plan store " << path_ << ": schema "
                     << (schema != nullptr ? schema->dump(0) : "<missing>")
                     << " outside supported [" << kStoreSchemaMinSupported
                     << ", " << kStoreSchemaVersion << "], ignoring file";
    stats_.skipped_schema += 1;
    return stats_;
  }

  const prof::Json* entries = doc.find("entries");
  if (entries == nullptr || !entries->is_array()) {
    util::log_warn() << "plan store " << path_
                     << ": no entries array, starting empty";
    stats_.skipped_malformed += 1;
    return stats_;
  }

  for (const prof::Json& e : entries->items()) {
    try {
      const std::string& dev = e.at("device").as_string();
      const std::string& model = e.at("model").as_string();
      if (dev != device_) {
        util::log_info() << "plan store: skipping entry for device '" << dev
                         << "' (this device: '" << device_ << "')";
        stats_.skipped_device += 1;
        foreign_.push_back(e);
        continue;
      }
      if (model != model_) {
        util::log_info() << "plan store: skipping entry for model '" << model
                         << "' (this model: '" << model_ << "')";
        stats_.skipped_model += 1;
        foreign_.push_back(e);
        continue;
      }
      StoredPlan sp;
      sp.plan = core::plan_from_json(e.at("plan"));
      if (const prof::Json* v = e.find("gflops"); v != nullptr)
        sp.gflops = v->as_number();
      if (const prof::Json* v = e.find("trials"); v != nullptr)
        sp.trials = static_cast<std::uint64_t>(
            checked_i64(*v, "trials", 0, kMaxI64Double));
      if (const prof::Json* v = e.find("saved_unix_ms"); v != nullptr)
        sp.saved_unix_ms = checked_i64(*v, "saved_unix_ms", 0, kMaxI64Double);
      if (const prof::Json* v = e.find("last_used_unix_ms"); v != nullptr)
        sp.last_used_unix_ms =
            checked_i64(*v, "last_used_unix_ms", 0, kMaxI64Double);
      // Pre-TTL artifacts have no usage stamp; age from the save time.
      if (sp.last_used_unix_ms == 0) sp.last_used_unix_ms = sp.saved_unix_ms;
      map_[fingerprint_from_json(e.at("fingerprint"))] = std::move(sp);
      stats_.loaded += 1;
    } catch (const std::exception& ex) {
      util::log_warn() << "plan store " << path_
                       << ": skipping malformed entry (" << ex.what() << ")";
      stats_.skipped_malformed += 1;
    }
  }
  return stats_;
}

void PlanStore::flush() const {
  prof::Json entries = prof::Json::array();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [key, sp] : map_) {
      prof::Json e = prof::Json::object();
      e.set("fingerprint", fingerprint_to_json(key));
      e.set("device", device_);
      e.set("model", model_);
      e.set("plan", core::plan_to_json(sp.plan));
      e.set("gflops", sp.gflops);
      e.set("trials", sp.trials);
      e.set("saved_unix_ms", sp.saved_unix_ms);
      e.set("last_used_unix_ms", sp.last_used_unix_ms);
      entries.push_back(std::move(e));
    }
    for (const prof::Json& e : foreign_) entries.push_back(e);
  }
  prof::Json doc = prof::Json::object();
  doc.set("schema", kStoreSchemaVersion);
  doc.set("entries", std::move(entries));

  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) throw std::runtime_error("cannot write plan store: " + tmp);
    out << doc.dump(2) << "\n";
    out.flush();
    if (!out) throw std::runtime_error("error writing plan store: " + tmp);
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("cannot rename " + tmp + " -> " + path_);
  }
}

std::optional<StoredPlan> PlanStore::lookup(const serve::Fingerprint& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  it->second.last_used_unix_ms = unix_now_ms();
  return it->second;
}

void PlanStore::put(const serve::Fingerprint& key, const StoredPlan& value) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = map_.find(key);
  if (it != map_.end() && it->second.plan.revision > value.plan.revision)
    return;  // stale writer: a newer revision is already stored
  StoredPlan sp = value;
  if (sp.saved_unix_ms == 0) sp.saved_unix_ms = unix_now_ms();
  if (sp.last_used_unix_ms == 0) sp.last_used_unix_ms = unix_now_ms();
  map_[key] = std::move(sp);
}

std::size_t PlanStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return map_.size();
}

std::vector<std::pair<serve::Fingerprint, StoredPlan>> PlanStore::entries()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<serve::Fingerprint, StoredPlan>> out;
  out.reserve(map_.size());
  for (const auto& [key, sp] : map_) out.emplace_back(key, sp);
  return out;
}

std::size_t PlanStore::gc() {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t dropped = foreign_.size();
  foreign_.clear();
  return dropped;
}

std::size_t PlanStore::gc_expired(std::int64_t ttl_ms, std::int64_t now_ms) {
  if (ttl_ms < 0) return 0;
  if (now_ms == 0) now_ms = unix_now_ms();
  const std::int64_t cutoff = now_ms - ttl_ms;
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t dropped = 0;
  for (auto it = map_.begin(); it != map_.end();) {
    const StoredPlan& sp = it->second;
    const std::int64_t used =
        std::max(sp.last_used_unix_ms, sp.saved_unix_ms);
    if (used < cutoff) {
      it = map_.erase(it);
      dropped += 1;
    } else {
      ++it;
    }
  }
  return dropped;
}

PlanStoreStats PlanStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::string PlanStore::device_config_string(const clsim::Device& device) {
  std::ostringstream ss;
  ss << "cu=" << device.resolved_compute_units()
     << " group=" << device.max_group_size
     << " lds=" << device.local_mem_bytes;
  return ss.str();
}

}  // namespace spmv::adapt

// The 16 representative matrices of the paper's Table II, reproduced as
// synthetic analogues (see DESIGN.md §2). Each entry records the paper's
// dimensions/NNZ, the structural kind, and the scale factor we apply to the
// three matrices that exceed laptop-class memory/time budgets.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sparse/csr.hpp"

namespace spmv::gen {

/// Catalogue entry for one Table-II matrix.
struct RepresentativeInfo {
  std::string name;        ///< UF name, e.g. "crankseg_2"
  std::string kind;        ///< Table-II "Kind" column
  index_t paper_rows;      ///< dimensions reported in the paper
  index_t paper_cols;
  std::int64_t paper_nnz;  ///< NNZ reported in the paper (approximate, as printed)
  double scale;            ///< 1.0 = full size; <1 = linear row scale-down
};

/// The 16 Table-II entries in the paper's order.
const std::vector<RepresentativeInfo>& representative_catalogue();

/// Generate the synthetic analogue of catalogue entry `info`.
/// The generated matrix has ~info.paper_rows*scale rows and a row-length
/// distribution matching the matrix's kind; `seed` varies the instance.
template <typename T>
CsrMatrix<T> make_representative(const RepresentativeInfo& info,
                                 std::uint64_t seed = 42);

/// Lookup + generate by name. Throws std::invalid_argument for an unknown
/// name.
template <typename T>
CsrMatrix<T> make_representative(const std::string& name,
                                 std::uint64_t seed = 42);

extern template CsrMatrix<float> make_representative(
    const RepresentativeInfo&, std::uint64_t);
extern template CsrMatrix<double> make_representative(
    const RepresentativeInfo&, std::uint64_t);
extern template CsrMatrix<float> make_representative(const std::string&,
                                                     std::uint64_t);
extern template CsrMatrix<double> make_representative(const std::string&,
                                                      std::uint64_t);

}  // namespace spmv::gen

// UF-collection-like training corpus sampler.
//
// The paper trains its C5.0 model on 2000+ UF matrices (75% train / 25%
// test) and reports the Figure-5 row-length histogram over 2760 matrices.
// This module samples synthetic matrices across the same structural
// families with family weights chosen so the collection-wide row-length
// histogram matches the paper's (~98.7% of rows with <= 100 non-zeros).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sparse/csr.hpp"

namespace spmv::gen {

/// The structural families the sampler draws from.
enum class Family : int {
  Banded = 0,
  FixedDegree,
  RandomUniform,
  PowerLaw,
  RoadNetwork,
  MeshDual,
  FemBlocks,
  CfdLongRow,
  Chemistry,
  MixedRegime,
  kCount
};

/// Human-readable family name (for reports).
std::string family_name(Family f);

/// Description of one sampled corpus matrix (generation is lazy so a large
/// corpus does not need to be resident at once).
struct CorpusSpec {
  Family family = Family::Banded;
  index_t rows = 0;
  index_t cols = 0;
  std::uint64_t seed = 0;
  /// Free generator knob, meaning depends on family (degree / avg nnz).
  index_t param = 0;
};

/// Options for corpus sampling. Row counts stay modest by default so the
/// exhaustive trainer can measure every candidate in reasonable time.
struct CorpusOptions {
  int count = 300;               ///< number of matrices
  index_t min_rows = 2000;
  index_t max_rows = 40000;
  std::uint64_t seed = 2017;     ///< master seed (paper year)
};

/// Sample `opts.count` corpus specs deterministically.
std::vector<CorpusSpec> sample_corpus(const CorpusOptions& opts = {});

/// Instantiate one spec.
template <typename T>
CsrMatrix<T> make_corpus_matrix(const CorpusSpec& spec);

extern template CsrMatrix<float> make_corpus_matrix(const CorpusSpec&);
extern template CsrMatrix<double> make_corpus_matrix(const CorpusSpec&);

}  // namespace spmv::gen

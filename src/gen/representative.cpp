#include "gen/representative.hpp"

#include <cmath>
#include <stdexcept>

#include "gen/generators.hpp"

namespace spmv::gen {

const std::vector<RepresentativeInfo>& representative_catalogue() {
  // Dimensions/NNZ as printed in Table II ("k" = 1e3, "m" = 1e6 in the
  // paper; we use the exact UF values where the paper rounds).
  // europe_osm (51M rows / 108M nnz) and HV15R (2M rows / 283M nnz) are
  // scaled down; roadNet-CA is kept full-size. Scale factors are recorded
  // here and surfaced by bench/table2_matrices and EXPERIMENTS.md.
  static const std::vector<RepresentativeInfo> catalogue = {
      {"apache1", "Structural problem", 80800, 80800, 542184, 1.0},
      {"bfly", "Undirected graph sequence", 49152, 49152, 196608, 1.0},
      {"ch7-9-b3", "Combinatorial problem", 105840, 17640, 423360, 1.0},
      {"crankseg_2", "Structural problem", 63838, 63838, 14148858, 1.0},
      {"cryg10000", "Materials problem", 10000, 10000, 49699, 1.0},
      {"D6-6", "Combinatorial problem", 120576, 23740, 146880, 1.0},
      {"denormal", "Counter-example problem", 89400, 89400, 1156224, 1.0},
      {"dictionary28", "Undirected graph", 52652, 52652, 178076, 1.0},
      {"europe_osm", "Undirected graph", 50912018, 50912018, 108109320,
       1.0 / 16.0},
      {"Ga3As3H12", "Quantum chemistry problem", 61349, 61349, 5970947, 1.0},
      {"HV15R", "CFD problem", 2017169, 2017169, 283073458, 1.0 / 16.0},
      {"pcrystk02", "Duplicate materials problem", 13965, 13965, 968583, 1.0},
      {"pkustk14", "Structural problem", 151926, 151926, 14836504, 1.0},
      {"roadNet-CA", "Undirected graph", 1971281, 1971281, 5533214, 1.0},
      {"shar_te2-b2", "Combinatorial problem", 200200, 17160, 600600, 1.0},
      {"whitaker3_dual", "2D/3D problem", 19190, 19190, 57162, 1.0},
  };
  return catalogue;
}

template <typename T>
CsrMatrix<T> make_representative(const RepresentativeInfo& info,
                                 std::uint64_t seed) {
  const auto rows = static_cast<index_t>(
      std::llround(static_cast<double>(info.paper_rows) * info.scale));
  const auto cols = static_cast<index_t>(
      std::llround(static_cast<double>(info.paper_cols) * info.scale));
  const double avg =
      static_cast<double>(info.paper_nnz) / static_cast<double>(info.paper_rows);

  // One structural recipe per matrix, keyed by what the UF collection says
  // about its sparsity (row-length regime + locality), so the generated
  // analogue stresses the same kernels the real matrix does.
  const std::string& n = info.name;
  if (n == "apache1")
    // 3D finite-difference structural stencil: ~7 nnz/row, banded.
    return banded<T>(rows, /*half_band=*/6, /*fill=*/0.48, seed);
  if (n == "bfly")
    // Butterfly graph sequence: exactly 4 neighbours per vertex.
    return fixed_degree<T>(rows, cols, 4, seed);
  if (n == "ch7-9-b3")
    // Simplicial boundary map: exactly 4 entries per row.
    return fixed_degree<T>(rows, cols, 4, seed);
  if (n == "crankseg_2")
    // Long-row FEM: avg ~222 nnz/row, blocky.
    return fem_blocks<T>(rows, /*block=*/48,
                         static_cast<index_t>(std::lround(avg)),
                         /*jitter=*/0.35, seed);
  if (n == "cryg10000")
    // Crystal growth (materials): ~5 nnz/row banded.
    return banded<T>(rows, /*half_band=*/4, /*fill=*/0.5, seed);
  if (n == "D6-6")
    // Boundary map with very short rows (avg ~1.2).
    return random_uniform<T>(rows, cols, avg, /*jitter=*/0.4, 1, 3, seed);
  if (n == "denormal")
    // Near-regular counter-example matrix: ~13 nnz/row, low variance.
    return random_uniform<T>(rows, cols, avg, /*jitter=*/0.08, 8, 20, seed);
  if (n == "dictionary28")
    // Word-graph: power-law degrees, avg ~3.4.
    return power_law<T>(rows, cols, /*alpha=*/2.1, /*max_deg=*/1000, seed);
  if (n == "europe_osm")
    return road_network<T>(rows, seed);
  if (n == "Ga3As3H12")
    // Quantum chemistry: avg ~97 with heavy tail.
    return chemistry<T>(rows, static_cast<index_t>(std::lround(avg)), seed);
  if (n == "HV15R")
    // CFD: avg ~140 nnz/row, low variance, banded.
    return cfd_longrow<T>(rows, static_cast<index_t>(std::lround(avg)), seed);
  if (n == "pcrystk02")
    // Condensed materials stiffness: avg ~69, blocky.
    return fem_blocks<T>(rows, /*block=*/24,
                         static_cast<index_t>(std::lround(avg)),
                         /*jitter=*/0.2, seed);
  if (n == "pkustk14")
    // Tall building stiffness: avg ~98, blocky.
    return fem_blocks<T>(rows, /*block=*/32,
                         static_cast<index_t>(std::lround(avg)),
                         /*jitter=*/0.25, seed);
  if (n == "roadNet-CA")
    return road_network<T>(rows, seed);
  if (n == "shar_te2-b2")
    // Boundary map: exactly 3 entries per row.
    return fixed_degree<T>(rows, cols, 3, seed);
  if (n == "whitaker3_dual")
    return mesh_dual<T>(rows, seed);
  throw std::invalid_argument("make_representative: unknown matrix " + n);
}

template <typename T>
CsrMatrix<T> make_representative(const std::string& name, std::uint64_t seed) {
  for (const auto& info : representative_catalogue()) {
    if (info.name == name) return make_representative<T>(info, seed);
  }
  throw std::invalid_argument("make_representative: unknown matrix " + name);
}

template CsrMatrix<float> make_representative(const RepresentativeInfo&,
                                              std::uint64_t);
template CsrMatrix<double> make_representative(const RepresentativeInfo&,
                                               std::uint64_t);
template CsrMatrix<float> make_representative(const std::string&,
                                              std::uint64_t);
template CsrMatrix<double> make_representative(const std::string&,
                                               std::uint64_t);

}  // namespace spmv::gen

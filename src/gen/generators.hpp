// Parameterized synthetic sparse-matrix generators.
//
// These stand in for the UF/SuiteSparse collection (see DESIGN.md §2): each
// generator produces a structural family found in the collection, with
// deterministic seeded sampling so every experiment is reproducible. All
// generators return canonical CSR (sorted rows, no duplicates).
#pragma once

#include <cstdint>

#include "sparse/convert.hpp"
#include "sparse/csr.hpp"

namespace spmv::gen {

/// Pure diagonal matrix (1 non-zero per row) — the Figure-8 overhead
/// workload and the "materials" regime.
template <typename T>
CsrMatrix<T> diagonal(index_t n);

/// Banded matrix: each row has non-zeros in [i-half_band, i+half_band]
/// present with probability `fill`. Models FEM/structural stencils
/// (apache1, cryg10000).
template <typename T>
CsrMatrix<T> banded(index_t n, index_t half_band, double fill,
                    std::uint64_t seed);

/// Every row has exactly `degree` non-zeros at uniform-random columns.
/// Models combinatorial incidence matrices (ch7-9-b3, shar_te2-b2).
template <typename T>
CsrMatrix<T> fixed_degree(index_t rows, index_t cols, index_t degree,
                          std::uint64_t seed);

/// Row degrees ~ N(avg, avg*jitter) clamped to [min_deg, max_deg], columns
/// uniform. Models quasi-regular matrices (denormal).
template <typename T>
CsrMatrix<T> random_uniform(index_t rows, index_t cols, double avg_deg,
                            double jitter, index_t min_deg, index_t max_deg,
                            std::uint64_t seed);

/// Power-law (Zipf) row degrees with exponent `alpha`, degrees in
/// [1, max_deg]. Models scale-free graphs (dictionary28, bfly).
template <typename T>
CsrMatrix<T> power_law(index_t rows, index_t cols, double alpha,
                       index_t max_deg, std::uint64_t seed);

/// Road-network-like: degrees 1..4 concentrated at 2-3, columns near the
/// diagonal (spatial locality). Models europe_osm / roadNet-CA.
template <typename T>
CsrMatrix<T> road_network(index_t n, std::uint64_t seed);

/// Planar-mesh dual: degree ~3 with near-diagonal columns
/// (whitaker3_dual-like 2D/3D meshes).
template <typename T>
CsrMatrix<T> mesh_dual(index_t n, std::uint64_t seed);

/// Block-structured FEM: rows come in blocks of `block` sharing a column
/// footprint of `row_nnz` entries near the diagonal. Models long-row
/// structural problems (crankseg_2, pkustk14, pcrystk02).
template <typename T>
CsrMatrix<T> fem_blocks(index_t n, index_t block, index_t row_nnz,
                        double jitter, std::uint64_t seed);

/// CFD-style: banded long rows (avg `row_nnz`, small variance) — HV15R.
template <typename T>
CsrMatrix<T> cfd_longrow(index_t n, index_t row_nnz, std::uint64_t seed);

/// Quantum-chemistry-style: a dense-ish core of long rows plus a power-law
/// tail with a few very long rows (Ga3As3H12).
template <typename T>
CsrMatrix<T> chemistry(index_t n, index_t avg_nnz, std::uint64_t seed);

/// Mixed-regime: fractions of short (≈short_deg), medium (≈mid_deg), and
/// long (≈long_deg) rows interleaved in blocks of `run`. Exercises multiple
/// bins at once (the Figure-2b workload).
template <typename T>
CsrMatrix<T> mixed_regime(index_t rows, index_t cols, double short_frac,
                          double mid_frac, index_t short_deg, index_t mid_deg,
                          index_t long_deg, index_t run, std::uint64_t seed);

#define SPMV_GEN_EXTERN(T)                                                    \
  extern template CsrMatrix<T> diagonal(index_t);                             \
  extern template CsrMatrix<T> banded(index_t, index_t, double,               \
                                      std::uint64_t);                         \
  extern template CsrMatrix<T> fixed_degree(index_t, index_t, index_t,        \
                                            std::uint64_t);                   \
  extern template CsrMatrix<T> random_uniform(index_t, index_t, double,       \
                                              double, index_t, index_t,       \
                                              std::uint64_t);                 \
  extern template CsrMatrix<T> power_law(index_t, index_t, double, index_t,   \
                                         std::uint64_t);                      \
  extern template CsrMatrix<T> road_network(index_t, std::uint64_t);          \
  extern template CsrMatrix<T> mesh_dual(index_t, std::uint64_t);             \
  extern template CsrMatrix<T> fem_blocks(index_t, index_t, index_t, double,  \
                                          std::uint64_t);                     \
  extern template CsrMatrix<T> cfd_longrow(index_t, index_t, std::uint64_t);  \
  extern template CsrMatrix<T> chemistry(index_t, index_t, std::uint64_t);    \
  extern template CsrMatrix<T> mixed_regime(index_t, index_t, double, double, \
                                            index_t, index_t, index_t,        \
                                            index_t, std::uint64_t);
SPMV_GEN_EXTERN(float)
SPMV_GEN_EXTERN(double)
#undef SPMV_GEN_EXTERN

}  // namespace spmv::gen

#include "gen/generators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace spmv::gen {

namespace {

using util::Xoshiro256;

/// Build a CSR matrix from per-row degree targets and a column sampler.
/// `fill_row(rng, row, degree, out)` must append exactly `degree` distinct,
/// in-range column indices to `out` (order irrelevant; sorted afterwards).
template <typename T, typename FillRow>
CsrMatrix<T> build_from_degrees(index_t rows, index_t cols,
                                const std::vector<index_t>& degrees,
                                std::uint64_t seed, FillRow&& fill_row) {
  std::vector<offset_t> row_ptr(static_cast<std::size_t>(rows) + 1, 0);
  for (index_t i = 0; i < rows; ++i)
    row_ptr[static_cast<std::size_t>(i) + 1] =
        row_ptr[static_cast<std::size_t>(i)] +
        degrees[static_cast<std::size_t>(i)];
  const auto nnz = static_cast<std::size_t>(row_ptr.back());
  std::vector<index_t> col_idx(nnz);
  std::vector<T> vals(nnz);

  Xoshiro256 rng(seed);
  std::vector<index_t> scratch;
  for (index_t i = 0; i < rows; ++i) {
    const auto deg = degrees[static_cast<std::size_t>(i)];
    scratch.clear();
    fill_row(rng, i, deg, scratch);
    std::sort(scratch.begin(), scratch.end());
    auto base = static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(i)]);
    for (index_t k = 0; k < deg; ++k) {
      col_idx[base + static_cast<std::size_t>(k)] =
          scratch[static_cast<std::size_t>(k)];
      // Values in (0.5, 1.5): nonzero, well-conditioned for solver examples.
      vals[base + static_cast<std::size_t>(k)] =
          static_cast<T>(0.5 + rng.uniform());
    }
  }
  return CsrMatrix<T>(rows, cols, std::move(row_ptr), std::move(col_idx),
                      std::move(vals));
}

/// Append `deg` distinct uniform columns from [0, cols) to `out`.
void sample_distinct_uniform(Xoshiro256& rng, index_t cols, index_t deg,
                             std::vector<index_t>& out) {
  const std::size_t start = out.size();
  if (deg > 32 && deg * 4 >= cols) {
    // Dense row relative to the column count: partial Fisher-Yates over the
    // whole range is O(cols) and duplicate-free by construction.
    std::vector<index_t> all(static_cast<std::size_t>(cols));
    for (index_t c = 0; c < cols; ++c) all[static_cast<std::size_t>(c)] = c;
    for (index_t k = 0; k < deg; ++k) {
      const auto j = k + static_cast<index_t>(rng.bounded(
                             static_cast<std::uint64_t>(cols - k)));
      std::swap(all[static_cast<std::size_t>(k)],
                all[static_cast<std::size_t>(j)]);
    }
    out.insert(out.end(), all.begin(), all.begin() + deg);
    return;
  }
  if (deg > 32) {
    // Rejection sampling with a sorted-window membership check would still
    // be O(deg^2); use a hash-free approach: sample with slack, sort,
    // unique, top up with linear probing of gaps.
    while (out.size() - start < static_cast<std::size_t>(deg)) {
      const std::size_t need = static_cast<std::size_t>(deg) -
                               (out.size() - start);
      for (std::size_t k = 0; k < need + need / 8 + 4; ++k) {
        out.push_back(static_cast<index_t>(
            rng.bounded(static_cast<std::uint64_t>(cols))));
      }
      std::sort(out.begin() + static_cast<std::ptrdiff_t>(start), out.end());
      out.erase(std::unique(out.begin() + static_cast<std::ptrdiff_t>(start),
                            out.end()),
                out.end());
      if (out.size() - start > static_cast<std::size_t>(deg))
        out.resize(start + static_cast<std::size_t>(deg));
    }
    return;
  }
  // Short rows: plain rejection with a linear duplicate scan.
  while (out.size() - start < static_cast<std::size_t>(deg)) {
    const auto c = static_cast<index_t>(
        rng.bounded(static_cast<std::uint64_t>(cols)));
    bool dup = false;
    for (std::size_t k = start; k < out.size(); ++k) {
      if (out[k] == c) {
        dup = true;
        break;
      }
    }
    if (!dup) out.push_back(c);
  }
}

/// Append `deg` distinct columns clustered within `spread` of `center`.
void sample_distinct_near(Xoshiro256& rng, index_t cols, index_t center,
                          index_t spread, index_t deg,
                          std::vector<index_t>& out) {
  const index_t lo = std::max<index_t>(0, center - spread);
  const index_t hi = std::min<index_t>(cols - 1, center + spread);
  const index_t width = hi - lo + 1;
  const std::size_t start = out.size();
  if (width <= deg) {
    for (index_t c = lo; c <= hi; ++c) out.push_back(c);
    // Window narrower than the degree: top up with uniform columns so the
    // degree target is met exactly.
    while (out.size() - start < static_cast<std::size_t>(deg)) {
      const auto c = static_cast<index_t>(
          rng.bounded(static_cast<std::uint64_t>(cols)));
      if (std::find(out.begin() + static_cast<std::ptrdiff_t>(start),
                    out.end(), c) == out.end())
        out.push_back(c);
    }
    return;
  }
  if (deg > 32) {
    // Long rows: partial Fisher-Yates over the window, O(width).
    std::vector<index_t> window(static_cast<std::size_t>(width));
    for (index_t k = 0; k < width; ++k)
      window[static_cast<std::size_t>(k)] = lo + k;
    for (index_t k = 0; k < deg; ++k) {
      const auto j = k + static_cast<index_t>(rng.bounded(
                             static_cast<std::uint64_t>(width - k)));
      std::swap(window[static_cast<std::size_t>(k)],
                window[static_cast<std::size_t>(j)]);
    }
    out.insert(out.end(), window.begin(), window.begin() + deg);
    return;
  }
  while (out.size() - start < static_cast<std::size_t>(deg)) {
    const auto c = static_cast<index_t>(
        lo + static_cast<index_t>(rng.bounded(static_cast<std::uint64_t>(width))));
    bool dup = false;
    for (std::size_t k = start; k < out.size(); ++k) {
      if (out[k] == c) {
        dup = true;
        break;
      }
    }
    if (!dup) out.push_back(c);
  }
}

void check_dims(index_t rows, index_t cols) {
  if (rows <= 0 || cols <= 0)
    throw std::invalid_argument("generator: non-positive dimensions");
}

}  // namespace

template <typename T>
CsrMatrix<T> diagonal(index_t n) {
  check_dims(n, n);
  std::vector<offset_t> row_ptr(static_cast<std::size_t>(n) + 1);
  std::vector<index_t> col_idx(static_cast<std::size_t>(n));
  std::vector<T> vals(static_cast<std::size_t>(n), T(1));
  for (index_t i = 0; i <= n; ++i) row_ptr[static_cast<std::size_t>(i)] = i;
  for (index_t i = 0; i < n; ++i) col_idx[static_cast<std::size_t>(i)] = i;
  return CsrMatrix<T>(n, n, std::move(row_ptr), std::move(col_idx),
                      std::move(vals));
}

template <typename T>
CsrMatrix<T> banded(index_t n, index_t half_band, double fill,
                    std::uint64_t seed) {
  check_dims(n, n);
  Xoshiro256 deg_rng(seed ^ 0x9e37u);
  std::vector<index_t> degrees(static_cast<std::size_t>(n));
  std::vector<std::uint64_t> row_seeds(static_cast<std::size_t>(n));
  util::SplitMix64 sm(seed);
  for (index_t i = 0; i < n; ++i) row_seeds[static_cast<std::size_t>(i)] = sm.next();

  // First pass: decide, per row, which in-band columns are present.
  // Degree = 1 (diagonal, always kept) + Binomial(band_width-1, fill).
  for (index_t i = 0; i < n; ++i) {
    const index_t lo = std::max<index_t>(0, i - half_band);
    const index_t hi = std::min<index_t>(n - 1, i + half_band);
    index_t deg = 1;
    Xoshiro256 rng(row_seeds[static_cast<std::size_t>(i)]);
    for (index_t c = lo; c <= hi; ++c) {
      if (c != i && rng.uniform() < fill) ++deg;
    }
    degrees[static_cast<std::size_t>(i)] = deg;
  }
  return build_from_degrees<T>(
      n, n, degrees, seed,
      [&](Xoshiro256&, index_t i, index_t, std::vector<index_t>& out) {
        const index_t lo = std::max<index_t>(0, i - half_band);
        const index_t hi = std::min<index_t>(n - 1, i + half_band);
        // Replay the same per-row stream as the degree pass so membership
        // decisions match the counted degree exactly.
        Xoshiro256 rng(row_seeds[static_cast<std::size_t>(i)]);
        out.push_back(i);
        for (index_t c = lo; c <= hi; ++c) {
          if (c != i && rng.uniform() < fill) out.push_back(c);
        }
      });
}

template <typename T>
CsrMatrix<T> fixed_degree(index_t rows, index_t cols, index_t degree,
                          std::uint64_t seed) {
  check_dims(rows, cols);
  if (degree > cols)
    throw std::invalid_argument("fixed_degree: degree > cols");
  std::vector<index_t> degrees(static_cast<std::size_t>(rows), degree);
  return build_from_degrees<T>(
      rows, cols, degrees, seed,
      [cols](Xoshiro256& rng, index_t, index_t deg, std::vector<index_t>& out) {
        sample_distinct_uniform(rng, cols, deg, out);
      });
}

template <typename T>
CsrMatrix<T> random_uniform(index_t rows, index_t cols, double avg_deg,
                            double jitter, index_t min_deg, index_t max_deg,
                            std::uint64_t seed) {
  check_dims(rows, cols);
  max_deg = std::min<index_t>(max_deg, cols);
  Xoshiro256 rng(seed);
  std::vector<index_t> degrees(static_cast<std::size_t>(rows));
  for (auto& d : degrees) {
    const double g = avg_deg + rng.normal() * avg_deg * jitter;
    d = std::clamp(static_cast<index_t>(std::lround(g)), min_deg, max_deg);
  }
  return build_from_degrees<T>(
      rows, cols, degrees, seed + 1,
      [cols](Xoshiro256& r, index_t, index_t deg, std::vector<index_t>& out) {
        sample_distinct_uniform(r, cols, deg, out);
      });
}

template <typename T>
CsrMatrix<T> power_law(index_t rows, index_t cols, double alpha,
                       index_t max_deg, std::uint64_t seed) {
  check_dims(rows, cols);
  max_deg = std::min<index_t>(max_deg, cols);
  Xoshiro256 rng(seed);
  std::vector<index_t> degrees(static_cast<std::size_t>(rows));
  for (auto& d : degrees) {
    d = static_cast<index_t>(
        rng.zipf(static_cast<std::uint64_t>(max_deg), alpha));
  }
  return build_from_degrees<T>(
      rows, cols, degrees, seed + 1,
      [cols](Xoshiro256& r, index_t, index_t deg, std::vector<index_t>& out) {
        sample_distinct_uniform(r, cols, deg, out);
      });
}

template <typename T>
CsrMatrix<T> road_network(index_t n, std::uint64_t seed) {
  check_dims(n, n);
  Xoshiro256 rng(seed);
  std::vector<index_t> degrees(static_cast<std::size_t>(n));
  for (auto& d : degrees) {
    // Road junction degrees: mostly 2-3, some 1 and 4.
    const double u = rng.uniform();
    d = u < 0.08 ? 1 : u < 0.55 ? 2 : u < 0.92 ? 3 : 4;
  }
  return build_from_degrees<T>(
      n, n, degrees, seed + 1,
      [n](Xoshiro256& r, index_t i, index_t deg, std::vector<index_t>& out) {
        // Spatial locality: neighbours are near in the node ordering.
        sample_distinct_near(r, n, i, /*spread=*/1024, deg, out);
      });
}

template <typename T>
CsrMatrix<T> mesh_dual(index_t n, std::uint64_t seed) {
  check_dims(n, n);
  Xoshiro256 rng(seed);
  std::vector<index_t> degrees(static_cast<std::size_t>(n));
  for (auto& d : degrees) {
    const double u = rng.uniform();
    d = u < 0.05 ? 2 : 3;  // triangle dual: degree 3 except boundary
  }
  return build_from_degrees<T>(
      n, n, degrees, seed + 1,
      [n](Xoshiro256& r, index_t i, index_t deg, std::vector<index_t>& out) {
        sample_distinct_near(r, n, i, /*spread=*/256, deg, out);
      });
}

template <typename T>
CsrMatrix<T> fem_blocks(index_t n, index_t block, index_t row_nnz,
                        double jitter, std::uint64_t seed) {
  check_dims(n, n);
  block = std::max<index_t>(1, block);
  Xoshiro256 rng(seed);
  std::vector<index_t> degrees(static_cast<std::size_t>(n));
  // All rows in one block share a degree target (FEM nodes of one element
  // patch have near-identical stencils).
  for (index_t b = 0; b * block < n; ++b) {
    const double g = row_nnz * (1.0 + rng.normal() * jitter);
    const auto deg = std::clamp<index_t>(static_cast<index_t>(std::lround(g)),
                                         1, std::min<index_t>(n, 4 * row_nnz));
    for (index_t i = b * block; i < std::min<index_t>(n, (b + 1) * block); ++i)
      degrees[static_cast<std::size_t>(i)] = deg;
  }
  const index_t spread = std::max<index_t>(64, 4 * row_nnz);
  return build_from_degrees<T>(
      n, n, degrees, seed + 1,
      [n, spread](Xoshiro256& r, index_t i, index_t deg,
                  std::vector<index_t>& out) {
        sample_distinct_near(r, n, i, spread, deg, out);
      });
}

template <typename T>
CsrMatrix<T> cfd_longrow(index_t n, index_t row_nnz, std::uint64_t seed) {
  check_dims(n, n);
  Xoshiro256 rng(seed);
  std::vector<index_t> degrees(static_cast<std::size_t>(n));
  for (auto& d : degrees) {
    const double g = row_nnz * (1.0 + rng.normal() * 0.1);
    d = std::clamp<index_t>(static_cast<index_t>(std::lround(g)), 1, n);
  }
  const index_t spread = std::max<index_t>(64, 2 * row_nnz);
  return build_from_degrees<T>(
      n, n, degrees, seed + 1,
      [n, spread](Xoshiro256& r, index_t i, index_t deg,
                  std::vector<index_t>& out) {
        sample_distinct_near(r, n, i, spread, deg, out);
      });
}

template <typename T>
CsrMatrix<T> chemistry(index_t n, index_t avg_nnz, std::uint64_t seed) {
  check_dims(n, n);
  Xoshiro256 rng(seed);
  std::vector<index_t> degrees(static_cast<std::size_t>(n));
  for (auto& d : degrees) {
    const double u = rng.uniform();
    if (u < 0.02) {
      // A few very long interaction rows (up to ~8x the average).
      d = static_cast<index_t>(avg_nnz * (4.0 + 4.0 * rng.uniform()));
    } else {
      const double g = avg_nnz * (0.6 + 0.8 * rng.uniform());
      d = std::max<index_t>(1, static_cast<index_t>(std::lround(g)));
    }
    d = std::min<index_t>(d, n);
  }
  return build_from_degrees<T>(
      n, n, degrees, seed + 1,
      [n](Xoshiro256& r, index_t i, index_t deg, std::vector<index_t>& out) {
        sample_distinct_near(r, n, i, /*spread=*/std::max<index_t>(512, 8 * deg),
                             deg, out);
      });
}

template <typename T>
CsrMatrix<T> mixed_regime(index_t rows, index_t cols, double short_frac,
                          double mid_frac, index_t short_deg, index_t mid_deg,
                          index_t long_deg, index_t run, std::uint64_t seed) {
  check_dims(rows, cols);
  run = std::max<index_t>(1, run);
  Xoshiro256 rng(seed);
  std::vector<index_t> degrees(static_cast<std::size_t>(rows));
  // Regimes are assigned per run of `run` adjacent rows so virtual rows of
  // matching granularity are homogeneous (the situation the paper's
  // coarse-grained binning exploits).
  for (index_t b = 0; b * run < rows; ++b) {
    const double u = rng.uniform();
    index_t base = u < short_frac            ? short_deg
                   : u < short_frac + mid_frac ? mid_deg
                                               : long_deg;
    for (index_t i = b * run; i < std::min<index_t>(rows, (b + 1) * run); ++i) {
      const double g = base * (0.8 + 0.4 * rng.uniform());
      degrees[static_cast<std::size_t>(i)] = std::clamp<index_t>(
          static_cast<index_t>(std::lround(g)), 1, cols);
    }
  }
  return build_from_degrees<T>(
      rows, cols, degrees, seed + 1,
      [cols](Xoshiro256& r, index_t, index_t deg, std::vector<index_t>& out) {
        if (deg > 64) {
          sample_distinct_near(r, cols, static_cast<index_t>(r.bounded(
                                            static_cast<std::uint64_t>(cols))),
                               4 * deg, deg, out);
        } else {
          sample_distinct_uniform(r, cols, deg, out);
        }
      });
}

#define SPMV_GEN_INSTANTIATE(T)                                              \
  template CsrMatrix<T> diagonal(index_t);                                   \
  template CsrMatrix<T> banded(index_t, index_t, double, std::uint64_t);     \
  template CsrMatrix<T> fixed_degree(index_t, index_t, index_t,              \
                                     std::uint64_t);                         \
  template CsrMatrix<T> random_uniform(index_t, index_t, double, double,     \
                                       index_t, index_t, std::uint64_t);     \
  template CsrMatrix<T> power_law(index_t, index_t, double, index_t,         \
                                  std::uint64_t);                            \
  template CsrMatrix<T> road_network(index_t, std::uint64_t);                \
  template CsrMatrix<T> mesh_dual(index_t, std::uint64_t);                   \
  template CsrMatrix<T> fem_blocks(index_t, index_t, index_t, double,        \
                                   std::uint64_t);                           \
  template CsrMatrix<T> cfd_longrow(index_t, index_t, std::uint64_t);        \
  template CsrMatrix<T> chemistry(index_t, index_t, std::uint64_t);          \
  template CsrMatrix<T> mixed_regime(index_t, index_t, double, double,       \
                                     index_t, index_t, index_t, index_t,     \
                                     std::uint64_t);
SPMV_GEN_INSTANTIATE(float)
SPMV_GEN_INSTANTIATE(double)
#undef SPMV_GEN_INSTANTIATE

}  // namespace spmv::gen

#include "gen/corpus.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "gen/generators.hpp"
#include "util/rng.hpp"

namespace spmv::gen {

std::string family_name(Family f) {
  switch (f) {
    case Family::Banded: return "banded";
    case Family::FixedDegree: return "fixed_degree";
    case Family::RandomUniform: return "random_uniform";
    case Family::PowerLaw: return "power_law";
    case Family::RoadNetwork: return "road_network";
    case Family::MeshDual: return "mesh_dual";
    case Family::FemBlocks: return "fem_blocks";
    case Family::CfdLongRow: return "cfd_longrow";
    case Family::Chemistry: return "chemistry";
    case Family::MixedRegime: return "mixed_regime";
    default: throw std::invalid_argument("family_name: bad family");
  }
}

std::vector<CorpusSpec> sample_corpus(const CorpusOptions& opts) {
  // Family weights mirror the UF collection's composition: short-row
  // matrices (graphs, meshes, combinatorial, narrow bands) dominate, which
  // is what produces the paper's Figure-5 statistic that ~98.7% of all rows
  // have <= 100 non-zeros. Long-row FEM/CFD/chemistry matrices are present
  // but rare.
  struct Weighted {
    Family family;
    double weight;
  };
  static const Weighted kWeights[] = {
      {Family::Banded, 0.21},        {Family::FixedDegree, 0.145},
      {Family::RandomUniform, 0.175}, {Family::PowerLaw, 0.155},
      {Family::RoadNetwork, 0.13},   {Family::MeshDual, 0.125},
      {Family::FemBlocks, 0.008},    {Family::CfdLongRow, 0.004},
      {Family::Chemistry, 0.008},    {Family::MixedRegime, 0.04},
  };

  util::Xoshiro256 rng(opts.seed);
  std::vector<CorpusSpec> specs;
  specs.reserve(static_cast<std::size_t>(opts.count));
  for (int i = 0; i < opts.count; ++i) {
    double u = rng.uniform();
    Family family = kWeights[0].family;
    for (const auto& w : kWeights) {
      if (u < w.weight) {
        family = w.family;
        break;
      }
      u -= w.weight;
    }
    CorpusSpec spec;
    spec.family = family;
    // Log-uniform row counts to cover the size spectrum.
    const double lr = rng.uniform(std::log(static_cast<double>(opts.min_rows)),
                                  std::log(static_cast<double>(opts.max_rows)));
    spec.rows = static_cast<index_t>(std::exp(lr));
    spec.cols = spec.rows;
    spec.seed = rng.next();
    switch (family) {
      case Family::Banded:
        spec.param = static_cast<index_t>(2 + rng.bounded(8));  // half-band
        break;
      case Family::FixedDegree:
        spec.param = static_cast<index_t>(2 + rng.bounded(7));  // degree
        // Boundary maps are often rectangular.
        if (rng.uniform() < 0.5)
          spec.cols = std::max<index_t>(64, spec.rows / static_cast<index_t>(
                                                1 + rng.bounded(8)));
        break;
      case Family::RandomUniform:
        spec.param = static_cast<index_t>(2 + rng.bounded(30));  // avg degree
        break;
      case Family::PowerLaw:
        spec.param = static_cast<index_t>(100 + rng.bounded(900));  // max deg
        break;
      case Family::RoadNetwork:
      case Family::MeshDual:
        spec.param = 0;
        break;
      case Family::FemBlocks:
        spec.param = static_cast<index_t>(40 + rng.bounded(260));  // row nnz
        break;
      case Family::CfdLongRow:
        spec.param = static_cast<index_t>(80 + rng.bounded(200));  // row nnz
        break;
      case Family::Chemistry:
        spec.param = static_cast<index_t>(40 + rng.bounded(160));  // avg nnz
        break;
      case Family::MixedRegime:
        spec.param = static_cast<index_t>(50 + rng.bounded(400));  // long deg
        break;
      default:
        throw std::logic_error("sample_corpus: bad family");
    }
    specs.push_back(spec);
  }
  return specs;
}

template <typename T>
CsrMatrix<T> make_corpus_matrix(const CorpusSpec& spec) {
  switch (spec.family) {
    case Family::Banded:
      return banded<T>(spec.rows, spec.param, 0.5, spec.seed);
    case Family::FixedDegree:
      return fixed_degree<T>(spec.rows, spec.cols, spec.param, spec.seed);
    case Family::RandomUniform:
      return random_uniform<T>(spec.rows, spec.cols,
                               static_cast<double>(spec.param), 0.3, 1,
                               4 * spec.param + 4, spec.seed);
    case Family::PowerLaw:
      return power_law<T>(spec.rows, spec.cols, 2.0, spec.param, spec.seed);
    case Family::RoadNetwork:
      return road_network<T>(spec.rows, spec.seed);
    case Family::MeshDual:
      return mesh_dual<T>(spec.rows, spec.seed);
    case Family::FemBlocks:
      return fem_blocks<T>(spec.rows, 32, spec.param, 0.3, spec.seed);
    case Family::CfdLongRow:
      return cfd_longrow<T>(spec.rows, spec.param, spec.seed);
    case Family::Chemistry:
      return chemistry<T>(spec.rows, spec.param, spec.seed);
    case Family::MixedRegime:
      return mixed_regime<T>(spec.rows, spec.cols, 0.6, 0.32, 4, 30,
                             spec.param, 64, spec.seed);
    default:
      throw std::invalid_argument("make_corpus_matrix: bad family");
  }
}

template CsrMatrix<float> make_corpus_matrix(const CorpusSpec&);
template CsrMatrix<double> make_corpus_matrix(const CorpusSpec&);

}  // namespace spmv::gen

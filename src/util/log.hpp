// Lightweight leveled logging to stderr. The library itself logs nothing at
// Info by default during kernels; the trainer and benches use it for
// progress reporting. Lines carry a wall-clock timestamp and a small
// per-thread tag so interleaved worker output stays attributable.
#pragma once

#include <sstream>
#include <string>

namespace spmv::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global threshold; messages below it are dropped. Defaults to Warn so
/// library consumers see nothing unless they opt in; the `SPMV_LOG_LEVEL`
/// environment variable (debug|info|warn|error|off, case-insensitive)
/// overrides the default at startup.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one line at `level` (thread-safe; one write per call).
void log_line(LogLevel level, const std::string& msg);

namespace detail {
/// Streaming log statement. The threshold is checked at construction, so a
/// dropped message pays one load and branch per `<<` — never the
/// ostringstream formatting.
class LogStream {
 public:
  explicit LogStream(LogLevel level)
      : level_(level),
        enabled_(static_cast<int>(level) >=
                 static_cast<int>(log_level())) {}
  ~LogStream() {
    if (enabled_) log_line(level_, stream_.str());
  }
  template <typename T>
  LogStream& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogStream log_debug() { return detail::LogStream(LogLevel::Debug); }
inline detail::LogStream log_info() { return detail::LogStream(LogLevel::Info); }
inline detail::LogStream log_warn() { return detail::LogStream(LogLevel::Warn); }
inline detail::LogStream log_error() { return detail::LogStream(LogLevel::Error); }

}  // namespace spmv::util

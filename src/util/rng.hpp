// Deterministic pseudo-random number generation.
//
// Everything in this library that samples randomness (matrix generators, the
// corpus sampler, train/test splits) takes an explicit 64-bit seed and uses
// these generators so results are bit-reproducible across runs and platforms
// (no reliance on libstdc++ distribution internals for the core paths).
#pragma once

#include <cstdint>

namespace spmv::util {

/// SplitMix64 — used to expand a user seed into stream seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — fast, high-quality generator for bulk sampling.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection
  /// method for unbiased results. bound must be > 0.
  std::uint64_t bounded(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    bounded(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Standard normal variate (Box–Muller, one value per call).
  double normal();

  /// Zipf-distributed integer in [1, n] with exponent `s` (rejection
  /// sampling; suitable for the power-law degree generators).
  std::uint64_t zipf(std::uint64_t n, double s);

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace spmv::util

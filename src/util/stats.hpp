// Small statistics helpers shared by matrix feature extraction, the corpus
// reports, and the benches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace spmv::util {

/// Streaming accumulator for count/mean/variance/min/max (Welford).
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance (the paper's Var_NNZ is a population statistic).
  [[nodiscard]] double variance() const { return n_ ? m2_ / n_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  [[nodiscard]] double sample_variance() const {
    return n_ > 1 ? m2_ / (n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-edge histogram over non-negative integer samples, used for the
/// Figure-5 row-length histogram. Bucket i holds samples in
/// [edges[i], edges[i+1]); a final implicit bucket holds >= edges.back().
class Histogram {
 public:
  explicit Histogram(std::vector<std::uint64_t> edges);

  void add(std::uint64_t sample, std::uint64_t weight = 1);

  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  /// Fraction of samples strictly below `edge` (edge must be one of the
  /// constructor edges). Returns 0 if total() == 0.
  [[nodiscard]] double fraction_below(std::uint64_t edge) const;
  [[nodiscard]] const std::vector<std::uint64_t>& edges() const { return edges_; }

 private:
  std::vector<std::uint64_t> edges_;   // ascending
  std::vector<std::uint64_t> counts_;  // edges.size() buckets (last = overflow)
  std::uint64_t total_ = 0;
};

/// Geometric mean of a sequence of positive values; 0 for an empty span.
double geometric_mean(std::span<const double> values);

/// Median (of a copy; input untouched). 0 for an empty span.
double median(std::span<const double> values);

}  // namespace spmv::util

#include "util/timer.hpp"

#include <algorithm>
#include <limits>

namespace spmv::util {

MeasureResult measure(const std::function<void()>& fn,
                      const MeasureOptions& opts) {
  for (int i = 0; i < opts.warmup; ++i) fn();

  MeasureResult result;
  result.best_s = std::numeric_limits<double>::infinity();
  double total = 0.0;
  Timer budget;
  for (int i = 0; i < std::max(1, opts.reps); ++i) {
    Timer t;
    fn();
    const double s = t.elapsed_s();
    result.best_s = std::min(result.best_s, s);
    total += s;
    ++result.reps;
    if (budget.elapsed_s() > opts.max_total_s && result.reps >= 1) break;
  }
  result.mean_s = total / result.reps;
  return result;
}

}  // namespace spmv::util

// Minimal command-line flag parsing for the bench and example binaries.
// Flags are `--name=value` or `--name value`; bare `--name` is a boolean.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace spmv::util {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback = "") const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non-flag) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace spmv::util

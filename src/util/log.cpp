#include "util/log.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>

namespace spmv::util {

namespace {

/// Startup threshold: SPMV_LOG_LEVEL when set and recognizable, else Warn.
LogLevel level_from_env() {
  const char* env = std::getenv("SPMV_LOG_LEVEL");
  if (env == nullptr) return LogLevel::Warn;
  std::string name;
  for (const char* c = env; *c != '\0'; ++c)
    name += static_cast<char>(std::tolower(static_cast<unsigned char>(*c)));
  if (name == "debug") return LogLevel::Debug;
  if (name == "info") return LogLevel::Info;
  if (name == "warn" || name == "warning") return LogLevel::Warn;
  if (name == "error") return LogLevel::Error;
  if (name == "off" || name == "none") return LogLevel::Off;
  return LogLevel::Warn;
}

std::atomic<LogLevel> g_level{level_from_env()};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    default: return "?";
  }
}

/// Small sequential thread tag (t1, t2, ...) — stable per thread, readable
/// across interleaved worker output.
int thread_tag() {
  static std::atomic<int> next{1};
  thread_local const int tag = next.fetch_add(1, std::memory_order_relaxed);
  return tag;
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_line(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;

  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm_buf{};
  localtime_r(&secs, &tm_buf);
  char stamp[16];
  std::strftime(stamp, sizeof(stamp), "%H:%M:%S", &tm_buf);

  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s.%03d] [%s] [t%d] %s\n", stamp,
               static_cast<int>(ms), level_name(level), thread_tag(),
               msg.c_str());
}

}  // namespace spmv::util

#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace spmv::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(std::vector<std::uint64_t> edges)
    : edges_(std::move(edges)) {
  if (edges_.empty()) throw std::invalid_argument("Histogram: no edges");
  if (!std::is_sorted(edges_.begin(), edges_.end()))
    throw std::invalid_argument("Histogram: edges must be ascending");
  counts_.assign(edges_.size(), 0);  // last bucket: >= edges_.back()
}

void Histogram::add(std::uint64_t sample, std::uint64_t weight) {
  // First bucket [edges[0], edges[1]) also absorbs samples below edges[0].
  auto it = std::upper_bound(edges_.begin(), edges_.end(), sample);
  std::size_t idx = it == edges_.begin()
                        ? 0
                        : static_cast<std::size_t>(it - edges_.begin()) - 1;
  idx = std::min(idx, counts_.size() - 1);
  counts_[idx] += weight;
  total_ += weight;
}

double Histogram::fraction_below(std::uint64_t edge) const {
  if (total_ == 0) return 0.0;
  std::uint64_t below = 0;
  for (std::size_t i = 0; i + 1 < edges_.size(); ++i) {
    if (edges_[i + 1] <= edge) below += counts_[i];
  }
  return static_cast<double>(below) / static_cast<double>(total_);
}

double geometric_mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) log_sum += std::log(v);
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double median(std::span<const double> values) {
  if (values.empty()) return 0.0;
  std::vector<double> copy(values.begin(), values.end());
  std::sort(copy.begin(), copy.end());
  const std::size_t n = copy.size();
  return n % 2 ? copy[n / 2] : 0.5 * (copy[n / 2 - 1] + copy[n / 2]);
}

}  // namespace spmv::util

#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>
#include <vector>

namespace spmv::util {

std::uint64_t Xoshiro256::bounded(std::uint64_t bound) {
  // Lemire 2019: unbiased bounded integers without division in the hot path.
  unsigned __int128 m =
      static_cast<unsigned __int128>(next()) * static_cast<unsigned __int128>(bound);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      m = static_cast<unsigned __int128>(next()) *
          static_cast<unsigned __int128>(bound);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256::normal() {
  // Box–Muller; discard the second variate for simplicity.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
}

std::uint64_t Xoshiro256::zipf(std::uint64_t n, double s) {
  if (n <= 1) return 1;
  if (n > (1u << 20)) {
    // Very large supports: discretized-Pareto approximation, which matches
    // the zipf tail exponent without materializing the CDF.
    const double u = uniform();
    const auto x = static_cast<std::uint64_t>(
        std::pow(1.0 - u, -1.0 / (s - 1.0)));
    return std::min<std::uint64_t>(std::max<std::uint64_t>(x, 1), n);
  }
  // Exact inverse-CDF sampling. Generators draw many variates per (n, s),
  // so the normalized CDF is cached per thread.
  thread_local std::map<std::pair<std::uint64_t, double>, std::vector<double>>
      cache;
  auto it = cache.find({n, s});
  if (it == cache.end()) {
    std::vector<double> cdf(n);
    double acc = 0.0;
    for (std::uint64_t k = 1; k <= n; ++k) {
      acc += std::pow(static_cast<double>(k), -s);
      cdf[k - 1] = acc;
    }
    for (double& c : cdf) c /= acc;
    it = cache.emplace(std::make_pair(n, s), std::move(cdf)).first;
  }
  const auto& cdf = it->second;
  const double u = uniform();
  const auto pos = std::upper_bound(cdf.begin(), cdf.end(), u) - cdf.begin();
  return std::min<std::uint64_t>(static_cast<std::uint64_t>(pos) + 1, n);
}

}  // namespace spmv::util

// Wall-clock timing utilities and a repetition harness for kernel
// measurement. All measurements in this library go through these helpers so
// benches and the exhaustive tuner time kernels identically.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

namespace spmv::util {

/// Monotonic wall-clock stopwatch with nanosecond resolution.
class Timer {
 public:
  Timer() { reset(); }

  /// Restart the stopwatch at the current instant.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double elapsed_s() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  [[nodiscard]] double elapsed_ms() const { return elapsed_s() * 1e3; }

  /// Microseconds elapsed since construction or the last reset().
  [[nodiscard]] double elapsed_us() const { return elapsed_s() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Result of a repeated measurement: best, mean, and repetition count.
struct MeasureResult {
  double best_s = 0.0;   ///< minimum over repetitions (the usual report)
  double mean_s = 0.0;   ///< arithmetic mean over repetitions
  int reps = 0;          ///< number of timed repetitions performed
};

/// Options controlling measure(): warmup runs, timed repetitions, and an
/// overall time budget after which measurement stops early.
struct MeasureOptions {
  int warmup = 1;
  int reps = 5;
  double max_total_s = 2.0;
};

/// Run `fn` repeatedly and report best/mean wall-clock time.
///
/// `fn` must be idempotent (SpMV is: y is fully overwritten). At least one
/// timed repetition is always performed, even when the budget is exceeded.
MeasureResult measure(const std::function<void()>& fn,
                      const MeasureOptions& opts = {});

}  // namespace spmv::util

#include "clsim/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "trace/trace.hpp"

namespace spmv::clsim {

namespace {
/// True while the current thread is executing pool work (nested
/// parallel_for calls must not re-enter the job machinery).
thread_local bool t_in_pool_region = false;

void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}
}  // namespace

struct ThreadPool::Impl {
  std::vector<std::thread> workers;

  /// Held by the submitting thread for the whole publish/run/join cycle:
  /// the job fields below describe exactly one job at a time. Contending
  /// submitters do not wait — they take the serial path instead.
  std::mutex submit_mutex;

  std::mutex mutex;
  std::condition_variable cv;
  std::atomic<bool> stop{false};

  // Current job. Plain fields are written before the release-store of
  // `generation` and read after an acquire-load of it; the caller never
  // publishes a new job before the previous one fully drains.
  std::atomic<std::uint64_t> generation{0};
  std::int64_t n = 0;
  int chunk = 1;
  int participants = 0;  // workers expected on this job
  void* ctx = nullptr;
  GroupFn fn = nullptr;
  /// The submitter's trace request id, re-adopted by every worker running
  /// this job so spans on pool threads correlate with the request.
  std::uint64_t job_request_id = 0;
  std::atomic<std::int64_t> next{0};
  std::atomic<int> remaining{0};  // workers yet to finish this job

  std::mutex error_mutex;
  std::exception_ptr error;

  void run_share() {
    const bool was_in_region = t_in_pool_region;
    t_in_pool_region = true;
    trace::ScopedRequestId rid(job_request_id);
    trace::TraceSpan span("pool-share", "pool");
    std::int64_t executed = 0;
    for (;;) {
      const std::int64_t begin = next.fetch_add(chunk);
      if (begin >= n) break;
      const std::int64_t end = std::min<std::int64_t>(begin + chunk, n);
      try {
        for (std::int64_t g = begin; g < end; ++g) fn(ctx, g);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
      }
      executed += end - begin;
    }
    span.arg("groups", executed);
    t_in_pool_region = was_in_region;
  }

  void worker_loop(int worker_index) {
    std::uint64_t seen = 0;
    for (;;) {
      // Spin briefly before sleeping: kernels typically come in bursts
      // (one launch per bin), and a hot wake costs ~1us vs ~30us through
      // the condition variable.
      bool woke = false;
      for (int s = 0; s < 20000; ++s) {
        if (stop.load(std::memory_order_acquire)) return;
        if (generation.load(std::memory_order_acquire) != seen) {
          woke = true;
          break;
        }
        cpu_relax();
      }
      if (!woke) {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] {
          return stop.load(std::memory_order_relaxed) ||
                 generation.load(std::memory_order_relaxed) != seen;
        });
        if (stop.load(std::memory_order_relaxed)) return;
      }
      seen = generation.load(std::memory_order_acquire);
      if (worker_index < participants) {
        run_share();
        remaining.fetch_sub(1, std::memory_order_acq_rel);
      }
    }
  }
};

ThreadPool::ThreadPool() : impl_(new Impl) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  impl_->workers.reserve(hw - 1);
  for (unsigned i = 0; i + 1 < hw; ++i) {
    impl_->workers.emplace_back(
        [this, i] { impl_->worker_loop(static_cast<int>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stop.store(true);
  }
  impl_->cv.notify_all();
  for (auto& w : impl_->workers) w.join();
  delete impl_;
}

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::parallel_for(std::int64_t n, int chunk, int max_threads,
                              void* ctx, GroupFn fn) {
  if (n <= 0) return;
  chunk = std::max(1, chunk);

  const int helpers = std::min<int>(
      static_cast<int>(impl_->workers.size()), std::max(0, max_threads - 1));
  const auto run_serial = [&] {
    const bool was_in_region = t_in_pool_region;
    t_in_pool_region = true;
    std::exception_ptr local_error;
    try {
      for (std::int64_t g = 0; g < n; ++g) fn(ctx, g);
    } catch (...) {
      local_error = std::current_exception();
    }
    t_in_pool_region = was_in_region;
    if (local_error) std::rethrow_exception(local_error);
  };
  // Serial paths: nested call, single thread requested, or a loop so small
  // that waking workers costs more than the work.
  if (t_in_pool_region || helpers == 0 || n <= chunk) {
    run_serial();
    return;
  }

  // One job owns the pool at a time. A submitter that loses the race runs
  // its loop on its own thread — it is itself one of several concurrent
  // clients, so the machine stays as busy either way.
  std::unique_lock<std::mutex> submit(impl_->submit_mutex, std::try_to_lock);
  if (!submit.owns_lock()) {
    run_serial();
    return;
  }

  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->n = n;
    impl_->chunk = chunk;
    impl_->participants = helpers;
    impl_->ctx = ctx;
    impl_->fn = fn;
    impl_->job_request_id = trace::current_request_id();
    impl_->next.store(0, std::memory_order_relaxed);
    impl_->remaining.store(helpers, std::memory_order_relaxed);
    impl_->error = nullptr;
    impl_->generation.fetch_add(1, std::memory_order_release);
  }
  impl_->cv.notify_all();

  impl_->run_share();

  // Join: spin briefly (launches are short), then yield.
  int spins = 0;
  while (impl_->remaining.load(std::memory_order_acquire) != 0) {
    if (++spins < 4096) {
      cpu_relax();
    } else {
      std::this_thread::yield();
    }
  }
  if (impl_->error) std::rethrow_exception(impl_->error);
}

}  // namespace spmv::clsim

// Simulated compute device description (stands in for the AMD APU's GPU
// half; see DESIGN.md §2). A Device describes capacity limits; the Engine
// (engine.hpp) schedules work-groups onto it.
#pragma once

#include <cstddef>

namespace spmv::clsim {

/// Device capability description.
///
/// Defaults mirror the paper's platform at the granularity the algorithms
/// care about: 256-lane work-groups (four 16-wide SIMD vector units x 4
/// cycles on GCN) and a 32 KiB local data share per compute unit.
struct Device {
  /// Number of compute units = host threads used to execute work-groups.
  /// 0 means "all hardware threads".
  int compute_units = 0;

  /// Maximum lanes (work-items) per work-group.
  int max_group_size = 256;

  /// Local data share (software-managed scratchpad) per work-group, bytes.
  std::size_t local_mem_bytes = 32 * 1024;

  /// Resolve compute_units to a concrete positive thread count.
  [[nodiscard]] int resolved_compute_units() const;
};

/// The process-wide default device (hardware concurrency, 256 lanes).
const Device& default_device();

}  // namespace spmv::clsim

// NDRange work-group execution engine.
//
// This is the OpenCL/HSA stand-in: a kernel is a callable invoked once per
// work-group; lanes (work-items) are expressed inside the kernel as lockstep
// loops between logical barrier points, exactly the standard technique for
// executing barrier-synchronised SPMD code on CPUs. Work-groups are the
// scheduling unit and are distributed across host threads with dynamic
// scheduling, so inter-group load imbalance costs wall-clock time just as it
// costs a GPU.
//
// Local memory: each work-group gets a bump-allocated arena (the LDS
// analogue) that is reset between groups; allocation beyond the device's
// LDS capacity throws, which keeps kernels honest about the paper's
// hardware limits.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <new>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "clsim/device.hpp"
#include "clsim/thread_pool.hpp"
#include "prof/counters.hpp"

namespace spmv::clsim {

/// Kernel launch geometry.
struct LaunchParams {
  std::size_t num_groups = 0;
  int group_size = 256;
  /// Groups handed to a host thread at a time; small values give fine
  /// balancing for heavy groups, larger values amortize scheduling for
  /// cheap groups.
  int chunk = 4;
};

/// Per-work-group local-memory arena (the LDS model). The backing buffer
/// may exceed the modeled device's LDS (it is reused across launches); the
/// logical `limit` set at each reset enforces the device capacity.
class LocalArena {
 public:
  explicit LocalArena(std::size_t capacity_bytes)
      : buffer_(capacity_bytes), used_(0), limit_(capacity_bytes) {}

  /// Bump-allocate `count` elements of T, aligned to alignof(T). Contents
  /// are uninitialized, matching OpenCL __local semantics. Throws
  /// std::bad_alloc past the device's local-memory limit.
  template <typename T>
  std::span<T> alloc(std::size_t count) {
    const std::size_t align = alignof(T);
    std::size_t offset = (used_ + align - 1) & ~(align - 1);
    const std::size_t bytes = count * sizeof(T);
    if (offset + bytes > limit_) throw std::bad_alloc();
    used_ = offset + bytes;
    return {reinterpret_cast<T*>(buffer_.data() + offset), count};
  }

  /// Start a new work-group: empty arena, optionally with a tighter
  /// logical limit (clamped to the physical buffer).
  void reset() { used_ = 0; }
  void reset(std::size_t limit_bytes) {
    used_ = 0;
    limit_ = std::min(limit_bytes, buffer_.size());
  }

  [[nodiscard]] std::size_t capacity() const { return buffer_.size(); }

  /// Bytes allocated since the last reset() (a bump allocator only grows,
  /// so this is the group's local-memory high-water mark).
  [[nodiscard]] std::size_t used() const { return used_; }

 private:
  std::vector<std::byte> buffer_;
  std::size_t used_;
  std::size_t limit_;
};

/// Context handed to the kernel callable, one per executing work-group.
class WorkGroup {
 public:
  WorkGroup(std::size_t group_id, int group_size, LocalArena& arena)
      : group_id_(group_id), group_size_(group_size), arena_(arena) {}

  /// get_group_id(0) analogue.
  [[nodiscard]] std::size_t group_id() const { return group_id_; }
  /// get_local_size(0) analogue.
  [[nodiscard]] int group_size() const { return group_size_; }

  /// __local array allocation; lifetime ends with the group.
  template <typename T>
  std::span<T> local_array(std::size_t count) {
    return arena_.alloc<T>(count);
  }

 private:
  std::size_t group_id_;
  int group_size_;
  LocalArena& arena_;
};

/// The engine: owns the device description and launches NDRanges.
class Engine {
 public:
  explicit Engine(Device device = default_device()) : device_(device) {}

  [[nodiscard]] const Device& device() const { return device_; }

  /// Launch telemetry (groups executed, chunks dispatched, inline
  /// fast-path hits, arena high-water mark). Recording happens only while
  /// prof::enabled(); reading is always valid. Mutable so a shared const
  /// engine (default_engine()) still counts.
  [[nodiscard]] prof::EngineCounters& counters() const { return counters_; }

  /// Launch `lp.num_groups` work-groups of `kernel`. Blocks until all
  /// groups complete (like a clFinish'd enqueue). `kernel` is invoked as
  /// kernel(WorkGroup&). Exceptions from kernels propagate to the caller.
  ///
  /// Launches with at most two groups run inline on the caller — the
  /// small-dispatch fast path every GPU driver has; parallelism could not
  /// have exceeded the group count anyway.
  template <typename F>
  void launch(const LaunchParams& lp, F&& kernel) const {
    if (lp.num_groups == 0) return;
    if (lp.group_size <= 0 || lp.group_size > device_.max_group_size)
      throw std::invalid_argument("Engine::launch: bad group size");

    const auto n = static_cast<std::int64_t>(lp.num_groups);
    const int threads = device_.resolved_compute_units();
    const bool record = prof::enabled();

    if (n <= 2 || threads == 1) {
      if (record) counters_.record_launch(lp.num_groups, 0, true);
      LocalArena& arena = thread_arena();
      for (std::int64_t g = 0; g < n; ++g) {
        arena.reset(device_.local_mem_bytes);
        WorkGroup wg(static_cast<std::size_t>(g), lp.group_size, arena);
        kernel(wg);
        if (record) counters_.record_arena_used(arena.used());
      }
      return;
    }

    // Dispatch through the persistent pool (GPU-queue-like enqueue cost).
    if (record) {
      const auto chunk = static_cast<std::size_t>(std::max(1, lp.chunk));
      counters_.record_launch(lp.num_groups,
                              (lp.num_groups + chunk - 1) / chunk, false);
    }
    struct LaunchCtx {
      const Engine* engine;
      std::remove_reference_t<F>* kernel;
      int group_size;
      bool record;

      static void run_group(void* vctx, std::int64_t g) {
        auto* ctx = static_cast<LaunchCtx*>(vctx);
        LocalArena& arena = ctx->engine->thread_arena();
        arena.reset(ctx->engine->device_.local_mem_bytes);
        WorkGroup wg(static_cast<std::size_t>(g), ctx->group_size, arena);
        (*ctx->kernel)(wg);
        if (ctx->record)
          ctx->engine->counters_.record_arena_used(arena.used());
      }
    };
    LaunchCtx ctx{this, &kernel, lp.group_size, record};
    ThreadPool::instance().parallel_for(n, lp.chunk, threads, &ctx,
                                        &LaunchCtx::run_group);
  }

 private:
  /// Per-host-thread arena reused across launches (an LDS is hardware, not
  /// an allocation — re-allocating 32 KiB per enqueue would charge the
  /// kernels a cost the modeled device does not have). Grows to the
  /// largest local_mem_bytes any engine on this thread requests.
  [[nodiscard]] LocalArena& thread_arena() const {
    thread_local LocalArena arena(0);
    if (arena.capacity() < device_.local_mem_bytes)
      arena = LocalArena(device_.local_mem_bytes);
    return arena;
  }

  Device device_;
  mutable prof::EngineCounters counters_;
};

/// The process-wide default engine on default_device().
const Engine& default_engine();

/// ceil(a / b) for positive integers.
constexpr std::size_t div_up(std::size_t a, std::size_t b) {
  return (a + b - 1) / b;
}

}  // namespace spmv::clsim

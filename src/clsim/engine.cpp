#include "clsim/engine.hpp"

namespace spmv::clsim {

const Engine& default_engine() {
  static const Engine engine{};
  return engine;
}

}  // namespace spmv::clsim

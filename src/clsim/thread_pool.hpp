// Persistent worker pool backing the clsim engine.
//
// A GPU runtime keeps its compute units hot: enqueueing an NDRange costs
// microseconds, not a thread fork. This pool gives Engine::launch the same
// property — workers are created once per process and woken per launch, so
// a plan that dispatches one kernel per bin (up to 100 launches per SpMV)
// pays dispatch costs comparable to the paper's HSA queues rather than an
// OpenMP parallel-region fork per bin.
//
// Concurrent submitters (e.g. spmv::serve worker threads each driving
// Engine::launch) are supported: the pool executes one job at a time, and
// a submitter that finds the pool busy runs its own loop serially on the
// calling thread instead of waiting — the same degradation nested calls
// get, and total CPU occupancy stays the same either way.
#pragma once

#include <cstdint>

namespace spmv::clsim {

class ThreadPool {
 public:
  /// Per-group callback: fn(ctx, g) executes group g.
  using GroupFn = void (*)(void* ctx, std::int64_t g);

  /// The process-wide pool (hardware_concurrency - 1 workers).
  static ThreadPool& instance();

  /// Run fn(ctx, g) for every g in [0, n), distributing `chunk`-sized
  /// batches dynamically over at most `max_threads` threads (the caller
  /// participates and counts toward the limit). Blocks until all groups
  /// finish; the first exception thrown by any group is rethrown.
  ///
  /// Re-entrant calls (fn itself calling parallel_for) and calls arriving
  /// while another thread's job is in flight degrade to serial execution
  /// of the loop on the calling thread.
  void parallel_for(std::int64_t n, int chunk, int max_threads, void* ctx,
                    GroupFn fn);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

 private:
  ThreadPool();
  ~ThreadPool();

  struct Impl;
  Impl* impl_;
};

}  // namespace spmv::clsim

#include "clsim/device.hpp"

#include <algorithm>
#include <thread>

namespace spmv::clsim {

int Device::resolved_compute_units() const {
  if (compute_units > 0) return compute_units;
  // hardware_concurrency() reads procfs on glibc — far too slow to query
  // per launch, so resolve it once per process.
  static const int hw = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));
  return hw;
}

const Device& default_device() {
  static const Device device{};
  return device;
}

}  // namespace spmv::clsim

// ShardedService — row-partitioned serving of ONE large matrix: K shards
// (shard/partition.hpp), each with its own engine slice, its own plan, its
// own bandit arm state, and its own PlanStore entry; requests fan out to
// every shard and the disjoint output row ranges scatter-gather into one
// result vector with no copy of x. In front, a tenant-weighted fair queue
// (shard/fair_queue.hpp) replaces SpmvService's single FIFO.
//
//   spmv::core::HeuristicPredictor pred;
//   spmv::shard::ShardedOptions opts;
//   opts.partition.shards = 4;
//   opts.tenants = {{"interactive", 4.0}, {"batch", 1.0}};
//   spmv::shard::ShardedService<float> service(matrix, pred, opts);
//   auto fut = service.submit("interactive", x);
//   std::vector<float> y = fut.get();        // full matrix rows
//
// Contrast with serve::SpmvService (one runtime per matrix *structure*,
// many matrices): the sharded service owns exactly one matrix and splits
// it, so a mixed-regime matrix whose head rows are dense and tail rows are
// scattered stops compromising on one plan — each shard's sub-matrix bins,
// tunes, persists, and promotes independently (per-shard fingerprints key
// everything downstream). Request execution is all-shards-or-error: the
// last shard to finish completes the promise; any shard failure fails the
// whole request exactly once.
//
// Admission/dispatch: submit() admits into the fair queue (per-tenant
// quotas against the shared queue_high_water; QueueFullError on bounce,
// counted per tenant). A small dispatch window (dispatch_window requests
// in flight across the shard pool) keeps the backlog *in the fair queue*
// where DRR ordering applies, rather than deep in per-shard work queues
// where it would be FIFO again.
#pragma once

#include <cstddef>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "adapt/bandit.hpp"
#include "adapt/plan_store.hpp"
#include "clsim/engine.hpp"
#include "core/plan.hpp"
#include "core/predictor.hpp"
#include "exec/backend.hpp"
#include "fmt/format.hpp"
#include "prof/profile.hpp"
#include "serve/service.hpp"
#include "shard/fair_queue.hpp"
#include "shard/partition.hpp"
#include "sparse/csr.hpp"

namespace spmv::obs {
class StreamingSink;
}

namespace spmv::shard {

struct ShardedOptions {
  /// Row partition (PartitionOptions::shards is K; locality cost model
  /// documented there).
  PartitionOptions partition{.shards = 2};
  /// Admission tenants. Empty = one "default" tenant of weight 1 (every
  /// submit() must then use tenant "default").
  std::vector<TenantSpec> tenants;
  /// Fair (DRR + quotas) or Fifo (global arrival order — the baseline).
  QueuePolicy queue_policy = QueuePolicy::Fair;
  /// Shared admission bound; per-tenant quotas divide it under Fair.
  std::size_t queue_high_water = 256;
  /// Worker threads per shard partition.
  int workers_per_shard = 1;
  /// Requests concurrently in flight across the shard pool; 0 resolves to
  /// max(2, 2 * workers_per_shard). Small on purpose: backlog beyond it
  /// waits in the fair queue where DRR ordering applies.
  std::size_t dispatch_window = 0;
  /// Engine threads split across the K shard slices; 0 = all hardware
  /// threads. Each shard's clsim engine gets max(1, total / K) compute
  /// units — its own ThreadPool slice.
  int total_compute_units = 0;
  /// Backend/format stamped onto fresh predictor-driven shard plans;
  /// warm-started and promoted plans keep their own (same contract as
  /// serve::ServiceOptions).
  exec::BackendKind backend = exec::BackendKind::Clsim;
  fmt::FormatMode format = fmt::FormatMode::Csr;
  /// shutdown() folds ServeStats (incl. per-tenant/per-shard blocks) into
  /// profile->serve and merged bandit stats into profile->adapt.
  prof::RunProfile* profile = nullptr;
  /// Loaded at construction, per-shard fingerprints looked up for warm
  /// starts, written through on planning/promotion, flushed at shutdown.
  adapt::PlanStore* plan_store = nullptr;
  /// Online adaptation: one BanditTuner per shard (each on its shard's
  /// engine slice), arms keyed by the shard's own fingerprint.
  std::optional<adapt::AdaptOptions> adapt;
  /// Streaming stat deltas (shard-tagged) as they happen.
  obs::StreamingSink* obs_sink = nullptr;
};

template <typename T>
class ShardedService {
 public:
  /// Partitions, plans (or warm-starts) every shard, and spawns
  /// workers_per_shard threads per shard. `predictor` must outlive the
  /// service.
  ShardedService(std::shared_ptr<const CsrMatrix<T>> a,
                 const core::Predictor& predictor,
                 const ShardedOptions& opts = {});

  ~ShardedService();

  ShardedService(const ShardedService&) = delete;
  ShardedService& operator=(const ShardedService&) = delete;

  /// Enqueue y = A·x for `tenant`. The future yields the full rows()-long
  /// result or rethrows the first shard failure. Throws
  /// serve::QueueFullError on an admission bounce (also counted in the
  /// tenant's ServeStats block), std::invalid_argument on a size mismatch
  /// or unknown tenant, std::runtime_error after shutdown().
  [[nodiscard]] std::future<std::vector<T>> submit(const std::string& tenant,
                                                   std::vector<T> x);

  /// Blocking convenience wrapper: submit() + get().
  [[nodiscard]] std::vector<T> run(const std::string& tenant,
                                   std::vector<T> x);

  /// Stop admitting, drain the fair queue and every shard queue, join the
  /// workers (which drains in-flight adapt trials), flush the plan store
  /// (failure logged, never thrown), fold stats into opts.profile.
  /// Idempotent.
  void shutdown();

  /// Snapshot including per-tenant and per-shard blocks.
  [[nodiscard]] prof::ServeStats stats() const;

  /// One shard's identity and live tuning state.
  struct ShardInfo {
    int index = 0;
    ShardRange range;
    serve::Fingerprint fingerprint;
    core::Plan plan;            ///< current (possibly promoted) plan
    bool warm_start = false;    ///< construction hit the plan store
    std::uint64_t executions = 0;
    double exec_total_s = 0.0;
    std::uint64_t promotions = 0;
  };
  [[nodiscard]] std::vector<ShardInfo> shard_infos() const;

  [[nodiscard]] const ShardSet<T>& shards() const { return set_; }
  [[nodiscard]] int shard_count() const { return set_.count(); }

 private:
  struct Shard;
  struct State;  ///< pimpl: fair queue, <deque>/<thread>, stats

  void worker_loop(int shard);
  void dispatch_locked();
  /// stats() body; caller holds the state mutex.
  [[nodiscard]] prof::ServeStats stats_unlocked() const;

  ShardedOptions opts_;
  ShardSet<T> set_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<State> state_;
};

extern template class ShardedService<float>;
extern template class ShardedService<double>;

}  // namespace spmv::shard

#include "shard/sharded_service.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <span>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/auto_spmv.hpp"
#include "core/tuner.hpp"
#include "obs/sink.hpp"
#include "trace/trace.hpp"
#include "util/log.hpp"

namespace spmv::shard {

namespace detail {

/// One admitted request's shared state. Every shard holds a reference
/// until it has written its output rows; the LAST shard to finish
/// completes the promise. `x` is shared read-only across the shard pool
/// (no copy per shard); `y` is written through disjoint row subspans, so
/// the scatter-gather needs no synchronization beyond the `remaining`
/// countdown.
template <typename T>
struct InFlight {
  std::shared_ptr<const std::vector<T>> x;
  std::vector<T> y;  ///< full parent rows; shards own disjoint subranges
  std::atomic<int> remaining{0};
  std::atomic<bool> failed{false};
  std::promise<std::vector<T>> promise;
  std::size_t tenant = 0;
  std::uint64_t trace_id = 0;  ///< 0 = not sampled for tracing
  std::uint64_t submit_ns = 0;
  std::chrono::steady_clock::time_point submitted;
};

}  // namespace detail

template <typename T>
struct ShardedService<T>::Shard {
  Shard(int idx, clsim::Device dev) : index(idx), engine(dev) {}

  const int index;
  clsim::Engine engine;  ///< this shard's compute-unit slice
  std::unique_ptr<adapt::BanditTuner<T>> tuner;  ///< null when adapt off

  /// Guards the swappable runtime and the counters below. Held briefly:
  /// execution runs on a shared_ptr copy, so a promotion swap never waits
  /// for an in-flight kernel.
  mutable std::mutex mutex;
  std::shared_ptr<const core::AutoSpmv<T>> runtime;
  bool warm_start = false;
  std::uint64_t executions = 0;
  double exec_total_s = 0.0;
  std::uint64_t promotions = 0;
  std::uint8_t last_promo_level = 0;
  prof::LatencyHistogram exec_hist;  ///< per-shard-execution wall time
};

template <typename T>
struct ShardedService<T>::State {
  State(std::vector<TenantSpec> tenants, QueuePolicy policy,
        std::size_t high_water)
      : queue(std::move(tenants), policy, high_water),
        tenant_latency(queue.tenant_count()) {}

  mutable std::mutex mutex;
  std::condition_variable cv;
  FairQueue<std::shared_ptr<detail::InFlight<T>>> queue;
  std::vector<std::deque<std::shared_ptr<detail::InFlight<T>>>> shard_queues;
  std::size_t dispatch_window = 2;
  std::size_t in_flight = 0;  ///< dispatched to the shard pool, not done
  bool stopping = false;
  bool joined = false;
  bool folded = false;  ///< profile/store fold ran (shutdown idempotence)
  std::vector<std::thread> workers;
  prof::ServeStats stats;  ///< admission-side counters + latency
  std::vector<prof::LatencyHistogram> tenant_latency;
};

template <typename T>
ShardedService<T>::ShardedService(std::shared_ptr<const CsrMatrix<T>> a,
                                  const core::Predictor& predictor,
                                  const ShardedOptions& opts)
    : opts_(opts) {
  if (a == nullptr)
    throw std::invalid_argument("ShardedService: null matrix");
  set_ = plan_shards(*a, opts_.partition);
  const int k = set_.count();

  state_ = std::make_unique<State>(opts_.tenants, opts_.queue_policy,
                                   opts_.queue_high_water);
  state_->shard_queues.resize(static_cast<std::size_t>(k));
  state_->dispatch_window =
      opts_.dispatch_window != 0
          ? opts_.dispatch_window
          : static_cast<std::size_t>(
                std::max(2, 2 * std::max(1, opts_.workers_per_shard)));

  if (opts_.plan_store != nullptr) opts_.plan_store->load();

  // Engine slicing: split the total thread budget evenly across shards so
  // K shards executing one request concurrently use ~the whole machine,
  // not K times it.
  clsim::Device dev;
  dev.compute_units = opts_.total_compute_units;
  const int total = dev.resolved_compute_units();
  dev.compute_units = std::max(1, total / std::max(1, k));

  shards_.reserve(static_cast<std::size_t>(k));
  for (int s = 0; s < k; ++s) {
    auto sh = std::make_unique<Shard>(s, dev);
    const CsrMatrix<T>& sub = *set_.matrices[static_cast<std::size_t>(s)];
    const serve::Fingerprint& fp =
        set_.fingerprints[static_cast<std::size_t>(s)];

    core::Plan plan;
    if (opts_.plan_store != nullptr) {
      if (auto stored = opts_.plan_store->lookup(fp); stored.has_value()) {
        plan = std::move(stored->plan);
        sh->warm_start = true;
        state_->stats.cache_warm_hits += 1;
      }
    }
    if (!sh->warm_start) {
      // Fresh plan: one predictor pass to choose U/kernels/formats, then a
      // rebuild from the provenance-stamped plan copy (the runtime's plan
      // is immutable, and the stamp must be on the executing plan so
      // promotions and store write-throughs inherit it).
      core::AutoSpmv<T> fresh = core::Tuner<T>(sub)
                                    .predictor(predictor)
                                    .engine(sh->engine)
                                    .backend(opts_.backend)
                                    .formats(opts_.format)
                                    .build();
      plan = fresh.plan();
      state_->stats.planning_passes += 1;
    }
    plan.shard_index = s;
    plan.shard_count = k;
    plan.shard_parent = set_.parent_hash;
    sh->runtime = std::make_shared<const core::AutoSpmv<T>>(
        core::Tuner<T>(sub).plan(plan).engine(sh->engine).build());
    if (opts_.plan_store != nullptr && !sh->warm_start)
      opts_.plan_store->put(fp, adapt::StoredPlan{sh->runtime->plan()});
    if (opts_.adapt.has_value())
      sh->tuner =
          std::make_unique<adapt::BanditTuner<T>>(sh->engine, *opts_.adapt);
    shards_.push_back(std::move(sh));
  }

  const int workers = std::max(1, opts_.workers_per_shard);
  state_->workers.reserve(static_cast<std::size_t>(k * workers));
  for (int s = 0; s < k; ++s)
    for (int w = 0; w < workers; ++w)
      state_->workers.emplace_back([this, s] { worker_loop(s); });
}

template <typename T>
ShardedService<T>::~ShardedService() {
  shutdown();
}

template <typename T>
std::future<std::vector<T>> ShardedService<T>::submit(
    const std::string& tenant, std::vector<T> x) {
  State& st = *state_;
  const std::size_t tenant_idx = st.queue.tenant_index(tenant);
  const auto cols =
      static_cast<std::size_t>(set_.matrices.front()->cols());
  if (x.size() != cols)
    throw std::invalid_argument("ShardedService: x size " +
                                std::to_string(x.size()) + " != cols " +
                                std::to_string(cols));
  const auto rows = static_cast<std::size_t>(set_.ranges.back().row_end);

  const bool traced = trace::sample_request();
  const std::uint64_t id = traced ? trace::next_request_id() : 0;
  if (traced) trace::emit_async_begin("request", "serve", id);

  auto inf = std::make_shared<detail::InFlight<T>>();
  inf->x = std::make_shared<const std::vector<T>>(std::move(x));
  inf->y.assign(rows, T{});
  inf->remaining.store(set_.count(), std::memory_order_relaxed);
  inf->tenant = tenant_idx;
  inf->trace_id = id;
  inf->submit_ns = trace::now_ns();
  inf->submitted = std::chrono::steady_clock::now();
  std::future<std::vector<T>> fut = inf->promise.get_future();

  {
    std::lock_guard<std::mutex> lock(st.mutex);
    if (st.stopping)
      throw std::runtime_error("ShardedService: submit after shutdown");
    if (!st.queue.push(tenant_idx, inf)) {
      st.stats.rejected += 1;
      if (traced) {
        trace::emit_async_instant("rejected", "serve", id);
        trace::emit_async_end("request", "serve", id);
      }
      throw serve::QueueFullError(st.queue.high_water());
    }
    st.stats.requests += 1;
    dispatch_locked();
  }
  st.cv.notify_all();
  return fut;
}

template <typename T>
std::vector<T> ShardedService<T>::run(const std::string& tenant,
                                      std::vector<T> x) {
  return submit(tenant, std::move(x)).get();
}

template <typename T>
void ShardedService<T>::dispatch_locked() {
  State& st = *state_;
  std::shared_ptr<detail::InFlight<T>> inf;
  std::size_t tenant = 0;
  // The window keeps backlog in the FAIR queue (where DRR ordering rules)
  // instead of deep in per-shard FIFOs. Shutdown flushes regardless so
  // every admitted request still completes.
  while ((st.in_flight < st.dispatch_window || st.stopping) &&
         st.queue.pop(&inf, &tenant)) {
    const double wait = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - inf->submitted)
                            .count();
    st.stats.queue_wait_total_s += wait;
    st.stats.queue_wait_max_s = std::max(st.stats.queue_wait_max_s, wait);
    st.stats.queue_wait.add(wait);
    if (inf->trace_id != 0)
      trace::emit_complete("queue-wait", "serve", inf->submit_ns,
                           trace::now_ns(), inf->trace_id);
    st.in_flight += 1;
    for (auto& q : st.shard_queues) q.push_back(inf);
    inf.reset();
  }
}

template <typename T>
void ShardedService<T>::worker_loop(int shard) {
  // Route this worker's obs records (trace spans via attach(), stat deltas
  // via push_stat) to the shard's own producer-group ring; ring 0 stays
  // for everything else (submitters, the unsharded world).
  obs::StreamingSink::set_producer_group(static_cast<std::size_t>(shard) + 1);

  Shard& sh = *shards_[static_cast<std::size_t>(shard)];
  State& st = *state_;
  const ShardRange& range = set_.ranges[static_cast<std::size_t>(shard)];
  const CsrMatrix<T>& sub = *set_.matrices[static_cast<std::size_t>(shard)];
  const serve::Fingerprint& fp =
      set_.fingerprints[static_cast<std::size_t>(shard)];

  for (;;) {
    std::shared_ptr<detail::InFlight<T>> inf;
    {
      std::unique_lock<std::mutex> lock(st.mutex);
      auto& q = st.shard_queues[static_cast<std::size_t>(shard)];
      st.cv.wait(lock, [&] { return st.stopping || !q.empty(); });
      if (q.empty()) return;  // stopping and drained
      inf = std::move(q.front());
      q.pop_front();
    }

    trace::ScopedRequestId rid(inf->trace_id);
    std::shared_ptr<const core::AutoSpmv<T>> rt;
    {
      std::lock_guard<std::mutex> lock(sh.mutex);
      rt = sh.runtime;
    }

    const std::span<const T> x(inf->x->data(), inf->x->size());
    const std::span<T> y(inf->y.data() + range.row_begin,
                         static_cast<std::size_t>(range.rows()));
    std::exception_ptr err;
    const auto t0 = std::chrono::steady_clock::now();
    try {
      trace::TraceSpan span("shard-exec", "serve");
      span.arg("shard", shard);
      rt->run(x, y);
    } catch (...) {
      err = std::current_exception();
    }
    const double exec_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    std::uint8_t promo_level;
    {
      std::lock_guard<std::mutex> lock(sh.mutex);
      sh.executions += 1;
      sh.exec_total_s += exec_s;
      prof::Exemplar ex;
      ex.trace_id = inf->trace_id;
      ex.fingerprint = fp.row_hash;
      ex.plan_revision = rt->plan().revision;
      ex.backend = static_cast<std::uint8_t>(rt->plan().backend);
      for (const core::BinPlan& bp : rt->plan().bin_kernels)
        if (bp.format != fmt::FormatKind::Csr) ex.formats = true;
      ex.promo_level = sh.last_promo_level;
      ex.shard = static_cast<std::int16_t>(shard);
      sh.exec_hist.add(exec_s, ex);
      promo_level = sh.last_promo_level;
    }
    if (opts_.obs_sink != nullptr)
      opts_.obs_sink->push_stat("shard.exec_s", exec_s, shard);

    // Online adaptation on this shard's own arm state and engine slice.
    // Trials run synchronously here, so joined workers imply drained
    // trials (same contract as serve::SpmvService).
    if (sh.tuner != nullptr && err == nullptr) {
      if (auto promo = sh.tuner->observe(fp, rt->plan(), rt->bins(), sub, x);
          promo.has_value()) {
        core::Plan next = std::move(promo->plan);
        // A rebinned (U) promotion rebuilt the plan from scratch; re-stamp
        // the shard provenance either way so it survives every level.
        next.shard_index = shard;
        next.shard_count = set_.count();
        next.shard_parent = set_.parent_hash;
        try {
          auto replacement = std::make_shared<const core::AutoSpmv<T>>(
              core::Tuner<T>(sub).plan(next).engine(sh.engine).build());
          {
            std::lock_guard<std::mutex> lock(sh.mutex);
            sh.runtime = replacement;
            sh.promotions += 1;
            sh.last_promo_level = promo->level;
            promo_level = promo->level;
          }
          if (opts_.plan_store != nullptr)
            opts_.plan_store->put(
                fp, adapt::StoredPlan{replacement->plan(), promo->gflops});
          if (opts_.obs_sink != nullptr)
            opts_.obs_sink->push_stat("adapt.promotion_level",
                                      static_cast<double>(promo->level),
                                      shard);
        } catch (const std::exception& e) {
          util::log_warn()
              << "ShardedService: promoted plan rebuild failed on shard "
              << shard << ": " << e.what();
        }
      }
    }

    if (err != nullptr && !inf->failed.exchange(true))
      inf->promise.set_exception(err);

    if (inf->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last shard out assembles nothing — the rows are already in place —
      // it just accounts and completes.
      const double latency =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        inf->submitted)
              .count();
      prof::Exemplar ex;
      ex.trace_id = inf->trace_id;
      ex.fingerprint = set_.parent_hash;
      ex.plan_revision = rt->plan().revision;
      ex.backend = static_cast<std::uint8_t>(rt->plan().backend);
      ex.promo_level = promo_level;
      ex.shard = static_cast<std::int16_t>(shard);
      {
        std::lock_guard<std::mutex> lock(st.mutex);
        st.stats.request_latency.add(latency, ex);
        st.tenant_latency[inf->tenant].add(latency, ex);
        st.in_flight -= 1;
        dispatch_locked();
      }
      st.cv.notify_all();
      if (inf->trace_id != 0)
        trace::emit_async_end("request", "serve", inf->trace_id);
      if (opts_.obs_sink != nullptr)
        opts_.obs_sink->push_stat("serve.request_latency_s", latency, shard);
      if (!inf->failed.load(std::memory_order_acquire))
        inf->promise.set_value(std::move(inf->y));
    }
  }
}

template <typename T>
void ShardedService<T>::shutdown() {
  State& st = *state_;
  {
    std::lock_guard<std::mutex> lock(st.mutex);
    st.stopping = true;
    dispatch_locked();  // flush the admission backlog to the shard pool
  }
  st.cv.notify_all();
  bool fold = false;
  {
    std::lock_guard<std::mutex> lock(st.mutex);
    if (!st.joined) {
      st.joined = true;
      fold = true;
    }
  }
  if (!fold) return;
  // join() outside the lock: workers take st.mutex to pop.
  for (std::thread& t : st.workers)
    if (t.joinable()) t.join();
  if (opts_.plan_store != nullptr) {
    try {
      opts_.plan_store->flush();
    } catch (const std::exception& e) {
      util::log_warn() << "ShardedService: plan store flush failed: "
                       << e.what();
    }
  }
  if (opts_.profile != nullptr) {
    std::lock_guard<std::mutex> lock(st.mutex);
    if (!st.folded) {
      st.folded = true;
      opts_.profile->serve.merge(stats_unlocked());
      for (const auto& sh : shards_)
        if (sh->tuner != nullptr)
          opts_.profile->adapt.merge(sh->tuner->stats());
    }
  }
}

template <typename T>
prof::ServeStats ShardedService<T>::stats() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  return stats_unlocked();
}

template <typename T>
prof::ServeStats ShardedService<T>::stats_unlocked() const {
  const State& st = *state_;
  prof::ServeStats s = st.stats;
  for (std::size_t i = 0; i < st.queue.tenant_count(); ++i) {
    const TenantCounters& c = st.queue.counters(i);
    prof::TenantStats t;
    t.name = st.queue.spec(i).name;
    t.weight = st.queue.spec(i).weight;
    t.requests = c.submitted;
    t.rejected = c.rejected;
    t.dispatched = c.dispatched;
    t.latency = st.tenant_latency[i];
    s.tenants.push_back(std::move(t));
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const Shard& sh = *shards_[i];
    const ShardRange& r = set_.ranges[i];
    std::lock_guard<std::mutex> lock(sh.mutex);
    prof::ShardStats out;
    out.shard = sh.index;
    out.row_begin = r.row_begin;
    out.row_end = r.row_end;
    out.nnz = r.nnz;
    out.plan = sh.runtime->plan().to_string();
    out.executions = sh.executions;
    out.exec_total_s = sh.exec_total_s;
    out.promotions = sh.promotions;
    s.shards.push_back(std::move(out));
    s.exec_total_s += sh.exec_total_s;
    s.batches += sh.executions;
    if (sh.executions > 0) {
      if (s.batch_width_hist.empty()) s.batch_width_hist.resize(1, 0);
      s.batch_width_hist[0] += sh.executions;  // every shard run is width 1
    }
    s.batch_exec.merge(sh.exec_hist);
    s.cache_promotions += sh.promotions;
  }
  return s;
}

template <typename T>
std::vector<typename ShardedService<T>::ShardInfo>
ShardedService<T>::shard_infos() const {
  std::vector<ShardInfo> out;
  out.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const Shard& sh = *shards_[i];
    std::lock_guard<std::mutex> lock(sh.mutex);
    ShardInfo info;
    info.index = sh.index;
    info.range = set_.ranges[i];
    info.fingerprint = set_.fingerprints[i];
    info.plan = sh.runtime->plan();
    info.warm_start = sh.warm_start;
    info.executions = sh.executions;
    info.exec_total_s = sh.exec_total_s;
    info.promotions = sh.promotions;
    out.push_back(std::move(info));
  }
  return out;
}

template class ShardedService<float>;
template class ShardedService<double>;

}  // namespace spmv::shard

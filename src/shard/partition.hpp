// spmv::shard — row-wise partitioning of a CSR matrix into K contiguous
// shards balanced by nnz. The partitioner is the planning half of the
// sharded serving layer (see sharded_service.hpp): each shard becomes its
// own sub-matrix with its own structural fingerprint, so the plan cache,
// the bandit's arm state, and the persistent PlanStore all key per shard —
// a shard of short scattered rows can tune to a different kernel/U/
// backend/format than a dense banded shard of the same matrix.
//
// Cut placement: ideal cuts fall on the nnz prefix sum at total*k/K; an
// optional locality-aware local search then nudges each cut within a small
// row window to avoid splitting a run of similarly-dense rows (the "dense
// row block" a banded or power-law head region forms). Splitting such a
// run puts the two halves in different shards where they bin — and
// therefore tune — separately, wasting the structural coherence the
// binning layer exploits; the cost model trades a bounded amount of nnz
// imbalance to keep those runs whole.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "serve/fingerprint.hpp"
#include "sparse/csr.hpp"

namespace spmv::shard {

/// One shard's row interval [row_begin, row_end) and its nnz load.
struct ShardRange {
  index_t row_begin = 0;
  index_t row_end = 0;
  offset_t nnz = 0;

  [[nodiscard]] index_t rows() const { return row_end - row_begin; }
};

struct PartitionOptions {
  /// Number of shards K (clamped to [1, rows]).
  int shards = 1;
  /// Weight of the locality term in the cut cost. 0 disables the local
  /// search entirely (pure nnz balance at the ideal prefix-sum cuts).
  double locality_weight = 0.25;
  /// Local-search window: each cut may move up to this many rows from its
  /// ideal position in either direction.
  index_t search_window = 64;
};

/// Row-partition by nnz prefix sum with the optional locality search.
/// `row_ptr` is the CSR row-pointer array (rows + 1 entries). Returned
/// ranges are contiguous, cover [0, rows) exactly, and are non-empty
/// except when rows < K.
std::vector<ShardRange> partition_rows(std::span<const offset_t> row_ptr,
                                       const PartitionOptions& opts);

template <typename T>
std::vector<ShardRange> partition_rows(const CsrMatrix<T>& a,
                                       const PartitionOptions& opts) {
  return partition_rows(a.row_ptr(), opts);
}

/// Materialize one shard as a standalone CSR matrix: row_ptr rebased to
/// the shard's first entry, col_idx/vals sliced, column count preserved
/// (every shard multiplies the full x).
template <typename T>
CsrMatrix<T> extract_shard(const CsrMatrix<T>& a, const ShardRange& range);

/// The planner's product: ranges, materialized sub-matrices, and each
/// shard's own structural fingerprint (of the sub-matrix, not the parent —
/// two structurally identical shards intentionally share plan state).
template <typename T>
struct ShardSet {
  std::vector<ShardRange> ranges;
  std::vector<std::shared_ptr<const CsrMatrix<T>>> matrices;
  std::vector<serve::Fingerprint> fingerprints;
  /// Parent-matrix structural hash — the provenance link stamped onto
  /// per-shard plans (core::Plan::shard_parent).
  std::uint64_t parent_hash = 0;

  [[nodiscard]] int count() const { return static_cast<int>(ranges.size()); }
};

/// Partition + extract + fingerprint in one pass.
template <typename T>
ShardSet<T> plan_shards(const CsrMatrix<T>& a, const PartitionOptions& opts);

extern template CsrMatrix<float> extract_shard<float>(
    const CsrMatrix<float>&, const ShardRange&);
extern template CsrMatrix<double> extract_shard<double>(
    const CsrMatrix<double>&, const ShardRange&);
extern template ShardSet<float> plan_shards<float>(const CsrMatrix<float>&,
                                                   const PartitionOptions&);
extern template ShardSet<double> plan_shards<double>(const CsrMatrix<double>&,
                                                     const PartitionOptions&);

}  // namespace spmv::shard

#include "shard/partition.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace spmv::shard {

namespace {

/// Locality penalty for cutting between rows c-1 and c: 1.0 when the cut
/// lands inside a coherent run of dense rows (both neighbours well above
/// the mean row length and within 2x of each other), else 0. A binned
/// tuner treats such a run as one regime; splitting it across shards
/// makes both halves re-tune from a weaker signal.
double cut_penalty(std::span<const offset_t> row_ptr, index_t c,
                   double mean_nnz) {
  const auto rows = static_cast<index_t>(row_ptr.size()) - 1;
  if (c <= 0 || c >= rows) return 0.0;
  const auto ci = static_cast<std::size_t>(c);
  const auto above = static_cast<double>(row_ptr[ci + 1] - row_ptr[ci]);
  const auto below = static_cast<double>(row_ptr[ci] - row_ptr[ci - 1]);
  const double dense = std::max(4.0, 2.0 * mean_nnz);
  if (below < dense || above < dense) return 0.0;
  const double lo = std::min(below, above);
  const double hi = std::max(below, above);
  return hi <= 2.0 * lo ? 1.0 : 0.0;
}

}  // namespace

std::vector<ShardRange> partition_rows(std::span<const offset_t> row_ptr,
                                       const PartitionOptions& opts) {
  if (row_ptr.empty())
    throw std::invalid_argument("partition_rows: empty row_ptr");
  if (opts.shards < 1)
    throw std::invalid_argument("partition_rows: shards must be >= 1");
  const auto rows = static_cast<index_t>(row_ptr.size()) - 1;
  const offset_t total = row_ptr[static_cast<std::size_t>(rows)];

  const int k = static_cast<int>(
      std::clamp<index_t>(static_cast<index_t>(opts.shards), 1,
                          std::max<index_t>(1, rows)));
  const double mean_nnz =
      rows > 0 ? static_cast<double>(total) / static_cast<double>(rows) : 0.0;
  // Imbalance normalizer: one shard's ideal nnz share.
  const double share =
      std::max(1.0, static_cast<double>(total) / static_cast<double>(k));

  std::vector<index_t> cuts(static_cast<std::size_t>(k) + 1);
  cuts.front() = 0;
  cuts.back() = rows;
  for (int s = 1; s < k; ++s) {
    const double target = static_cast<double>(total) *
                          static_cast<double>(s) / static_cast<double>(k);
    // Cuts must stay strictly increasing and leave at least one row for
    // every shard after this one.
    const index_t lo = cuts[static_cast<std::size_t>(s) - 1] + 1;
    const index_t hi = rows - static_cast<index_t>(k - s);
    // First row whose prefix nnz reaches the target.
    const auto it = std::lower_bound(
        row_ptr.begin(), row_ptr.end(),
        static_cast<offset_t>(std::llround(std::ceil(target))));
    index_t ideal = static_cast<index_t>(it - row_ptr.begin());
    ideal = std::clamp(ideal, lo, hi);

    index_t best = ideal;
    if (opts.locality_weight > 0.0 && opts.search_window > 0) {
      double best_cost = -1.0;
      const index_t from = std::max(lo, ideal - opts.search_window);
      const index_t to = std::min(hi, ideal + opts.search_window);
      for (index_t c = from; c <= to; ++c) {
        const double imbalance =
            std::abs(static_cast<double>(
                         row_ptr[static_cast<std::size_t>(c)]) -
                     target) /
            share;
        const double cost =
            imbalance + opts.locality_weight * cut_penalty(row_ptr, c,
                                                           mean_nnz);
        // Ties go to the cut nearest the ideal position.
        if (best_cost < 0.0 || cost < best_cost ||
            (cost == best_cost &&
             std::abs(static_cast<long long>(c) - ideal) <
                 std::abs(static_cast<long long>(best) - ideal))) {
          best_cost = cost;
          best = c;
        }
      }
    }
    cuts[static_cast<std::size_t>(s)] = best;
  }

  std::vector<ShardRange> out(static_cast<std::size_t>(k));
  for (int s = 0; s < k; ++s) {
    ShardRange& r = out[static_cast<std::size_t>(s)];
    r.row_begin = cuts[static_cast<std::size_t>(s)];
    r.row_end = cuts[static_cast<std::size_t>(s) + 1];
    r.nnz = row_ptr[static_cast<std::size_t>(r.row_end)] -
            row_ptr[static_cast<std::size_t>(r.row_begin)];
  }
  return out;
}

template <typename T>
CsrMatrix<T> extract_shard(const CsrMatrix<T>& a, const ShardRange& range) {
  if (range.row_begin < 0 || range.row_end < range.row_begin ||
      range.row_end > a.rows())
    throw std::invalid_argument("extract_shard: range outside matrix");
  const auto rp = a.row_ptr();
  const auto b = static_cast<std::size_t>(range.row_begin);
  const auto e = static_cast<std::size_t>(range.row_end);
  const offset_t first = rp[b];
  const offset_t last = rp[e];
  std::vector<offset_t> row_ptr(e - b + 1);
  for (std::size_t i = 0; i <= e - b; ++i) row_ptr[i] = rp[b + i] - first;
  const auto ci = a.col_idx();
  const auto va = a.vals();
  std::vector<index_t> col_idx(ci.begin() + first, ci.begin() + last);
  std::vector<T> vals(va.begin() + first, va.begin() + last);
  return CsrMatrix<T>(range.rows(), a.cols(), std::move(row_ptr),
                      std::move(col_idx), std::move(vals));
}

template <typename T>
ShardSet<T> plan_shards(const CsrMatrix<T>& a, const PartitionOptions& opts) {
  ShardSet<T> set;
  set.ranges = partition_rows(a.row_ptr(), opts);
  set.parent_hash = serve::fingerprint_of(a).row_hash;
  set.matrices.reserve(set.ranges.size());
  set.fingerprints.reserve(set.ranges.size());
  for (const ShardRange& r : set.ranges) {
    auto sub = std::make_shared<const CsrMatrix<T>>(extract_shard(a, r));
    set.fingerprints.push_back(serve::fingerprint_of(*sub));
    set.matrices.push_back(std::move(sub));
  }
  return set;
}

template CsrMatrix<float> extract_shard<float>(const CsrMatrix<float>&,
                                               const ShardRange&);
template CsrMatrix<double> extract_shard<double>(const CsrMatrix<double>&,
                                                 const ShardRange&);
template ShardSet<float> plan_shards<float>(const CsrMatrix<float>&,
                                            const PartitionOptions&);
template ShardSet<double> plan_shards<double>(const CsrMatrix<double>&,
                                              const PartitionOptions&);

}  // namespace spmv::shard

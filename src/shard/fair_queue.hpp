// Tenant-weighted fair admission for the sharded serving layer: per-tenant
// bounded queues in front of the dispatcher, drained in deficit-round-robin
// (DRR) order so a flooding tenant cannot starve a light one, plus a Fifo
// policy that reproduces the single global queue (the baseline the fairness
// acceptance test compares against).
//
// Admission is double-bounded: the global size is capped at high_water
// (matching serve::ServiceOptions::queue_high_water semantics), and under
// the Fair policy each tenant additionally owns a quota proportional to its
// weight — a flooder fills its own quota and starts bouncing while other
// tenants' slots stay free. Dispatch under Fair is classic DRR with unit
// item cost: each visit credits a tenant weight/max_weight of a quantum;
// a tenant serves when its deficit reaches 1, so service rates converge to
// the weight ratio whenever queues are backlogged.
//
// The queue is externally synchronized — the owning service already holds
// one mutex across admission and dispatch, so the queue itself stays
// lock-free-by-construction simple.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace spmv::shard {

enum class QueuePolicy : std::uint8_t {
  Fair,  ///< per-tenant quotas + deficit round-robin
  Fifo,  ///< one global queue, arrival order (the pre-shard baseline)
};

/// "fair" | "fifo" (CLI surface). Unknown names throw std::invalid_argument.
inline QueuePolicy queue_policy_from_name(const std::string& name) {
  if (name == "fair") return QueuePolicy::Fair;
  if (name == "fifo") return QueuePolicy::Fifo;
  throw std::invalid_argument("unknown queue policy: " + name +
                              " (expected fair|fifo)");
}

inline const char* queue_policy_name(QueuePolicy p) {
  return p == QueuePolicy::Fair ? "fair" : "fifo";
}

/// A tenant's admission identity: name (stats/metrics label) and weight
/// (relative service share; clamped to >= 0.01 so every tenant makes
/// progress within a bounded number of DRR rounds).
struct TenantSpec {
  std::string name;
  double weight = 1.0;
};

struct TenantCounters {
  std::uint64_t submitted = 0;   ///< accepted into the queue
  std::uint64_t rejected = 0;    ///< bounced (global or quota bound)
  std::uint64_t dispatched = 0;  ///< handed to the execution layer
};

template <typename Item>
class FairQueue {
 public:
  FairQueue(std::vector<TenantSpec> tenants, QueuePolicy policy,
            std::size_t high_water)
      : policy_(policy), high_water_(high_water) {
    if (tenants.empty()) tenants.push_back({"default", 1.0});
    double total = 0.0;
    tenants_.reserve(tenants.size());
    for (TenantSpec& t : tenants) {
      Tenant state;
      state.spec = std::move(t);
      if (!(state.spec.weight > 0.01)) state.spec.weight = 0.01;
      total += state.spec.weight;
      max_weight_ = std::max(max_weight_, state.spec.weight);
      tenants_.push_back(std::move(state));
    }
    for (Tenant& t : tenants_) {
      // Quota: this tenant's proportional slice of the shared high water.
      // At least 1 so a tiny weight can still queue something.
      t.quota = std::max<std::size_t>(
          1, static_cast<std::size_t>(static_cast<double>(high_water_) *
                                      t.spec.weight / total));
    }
  }

  [[nodiscard]] std::size_t tenant_count() const { return tenants_.size(); }

  /// Index for a tenant name; throws std::invalid_argument when unknown
  /// (admission of an unregistered tenant is a caller bug, not load).
  [[nodiscard]] std::size_t tenant_index(const std::string& name) const {
    for (std::size_t i = 0; i < tenants_.size(); ++i)
      if (tenants_[i].spec.name == name) return i;
    throw std::invalid_argument("FairQueue: unknown tenant " + name);
  }

  /// Admit one item for `tenant`. Returns false (and counts the rejection)
  /// when the global high water, or — under Fair — the tenant's quota, is
  /// already reached.
  bool push(std::size_t tenant, Item item) {
    Tenant& t = tenants_.at(tenant);
    const bool over_quota =
        policy_ == QueuePolicy::Fair && t.queue.size() >= t.quota;
    if (size_ >= high_water_ || over_quota) {
      t.counters.rejected += 1;
      return false;
    }
    if (policy_ == QueuePolicy::Fifo) {
      fifo_.emplace_back(tenant, std::move(item));
    } else {
      t.queue.push_back(std::move(item));
    }
    t.counters.submitted += 1;
    size_ += 1;
    return true;
  }

  /// Dispatch the next item (DRR order under Fair, arrival order under
  /// Fifo). Returns false when empty.
  bool pop(Item* out, std::size_t* tenant_out = nullptr) {
    if (size_ == 0) return false;
    if (policy_ == QueuePolicy::Fifo) {
      auto& [tenant, item] = fifo_.front();
      *out = std::move(item);
      if (tenant_out != nullptr) *tenant_out = tenant;
      tenants_[tenant].counters.dispatched += 1;
      fifo_.pop_front();
      size_ -= 1;
      return true;
    }
    // DRR: visit tenants round-robin; each visit credits weight/max_weight,
    // a tenant serves once its deficit reaches one item. The max-weight
    // tenant reaches 1 within a single lap, so the loop terminates in at
    // most tenants * (max_weight / min_weight) visits.
    for (;;) {
      Tenant& t = tenants_[cursor_];
      if (t.queue.empty()) {
        t.deficit = 0.0;  // an idle tenant does not bank credit
        advance();
        continue;
      }
      t.deficit += t.spec.weight / max_weight_;
      if (t.deficit >= 1.0) {
        t.deficit -= 1.0;
        *out = std::move(t.queue.front());
        t.queue.pop_front();
        if (tenant_out != nullptr) *tenant_out = cursor_;
        t.counters.dispatched += 1;
        size_ -= 1;
        if (t.deficit < 1.0 || t.queue.empty()) advance();
        return true;
      }
      advance();
    }
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t high_water() const { return high_water_; }
  [[nodiscard]] QueuePolicy policy() const { return policy_; }
  [[nodiscard]] const TenantSpec& spec(std::size_t tenant) const {
    return tenants_.at(tenant).spec;
  }
  [[nodiscard]] std::size_t quota(std::size_t tenant) const {
    return tenants_.at(tenant).quota;
  }
  [[nodiscard]] const TenantCounters& counters(std::size_t tenant) const {
    return tenants_.at(tenant).counters;
  }

 private:
  struct Tenant {
    TenantSpec spec;
    std::size_t quota = 0;
    double deficit = 0.0;
    std::deque<Item> queue;  ///< Fair policy only
    TenantCounters counters;
  };

  void advance() { cursor_ = (cursor_ + 1) % tenants_.size(); }

  QueuePolicy policy_;
  std::size_t high_water_;
  double max_weight_ = 0.01;
  std::size_t size_ = 0;
  std::size_t cursor_ = 0;
  std::vector<Tenant> tenants_;
  std::deque<std::pair<std::size_t, Item>> fifo_;  ///< Fifo policy only
};

}  // namespace spmv::shard

// Candidate pools (paper §III-A): the binning granularities U and the nine
// kernels the auto-tuner searches and the ML model selects from.
#pragma once

#include <string>
#include <vector>

#include "kernels/registry.hpp"
#include "sparse/types.hpp"

namespace spmv::core {

struct CandidatePools {
  /// Binning granularities U (paper: 10, 20, 50, ..., 10^6).
  std::vector<index_t> units;
  /// Kernel pool (paper: the nine kernels of §III-B).
  std::vector<kernels::KernelId> kernel_pool;
  /// Extension (paper §IV-C "Grouping to Single Bin"): also consider the
  /// single-bin strategy — all rows in one bin, one kernel.
  bool include_single_bin = false;

  /// Index of `unit` within `units`; -1 if absent.
  [[nodiscard]] int unit_index(index_t unit) const;
  /// Index of `id` within `kernel_pool`; -1 if absent.
  [[nodiscard]] int kernel_index(kernels::KernelId id) const;

  /// Class names for the stage-1 model: one per U (plus "single-bin" when
  /// enabled, encoded as the last class).
  [[nodiscard]] std::vector<std::string> unit_class_names() const;
  /// Class names for the stage-2 model: one per kernel.
  [[nodiscard]] std::vector<std::string> kernel_class_names() const;
};

/// The paper's configuration: full U ladder, all nine kernels.
CandidatePools default_pools();

/// A reduced pool for fast tests/CI: 5 granularities, 4 kernels.
CandidatePools small_pools();

}  // namespace spmv::core

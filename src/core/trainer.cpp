#include "core/trainer.hpp"

#include <numeric>
#include <stdexcept>

#include "ml/features.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace spmv::core {

template <typename T>
MatrixLabels harvest_labels(const clsim::Engine& engine, const CsrMatrix<T>& a,
                            const TrainerOptions& opts) {
  MatrixLabels labels;
  labels.stats = compute_row_stats(a);

  // Input vector values do not affect timing; any dense x works.
  std::vector<T> x(static_cast<std::size_t>(a.cols()));
  util::Xoshiro256 rng(12345);
  for (auto& v : x) v = static_cast<T>(rng.uniform(0.5, 1.5));

  const TuneResult tuned = exhaustive_tune(engine, a, std::span<const T>(x),
                                           opts.pools, opts.tune);

  if (tuned.best_plan.single_bin) {
    labels.best_unit_class = static_cast<int>(opts.pools.units.size());
  } else {
    labels.best_unit_class = opts.pools.unit_index(tuned.best_plan.unit);
  }
  if (labels.best_unit_class < 0)
    throw std::logic_error("harvest_labels: winning unit not in pool");

  for (const UnitResult& ur : tuned.per_unit) {
    const bool is_winner =
        ur.single_bin == tuned.best_plan.single_bin &&
        (ur.single_bin || ur.unit == tuned.best_plan.unit);
    if (!opts.stage2_all_units && !is_winner) continue;
    for (const BinPlan& bp : ur.bin_kernels) {
      const int kernel_class = opts.pools.kernel_index(bp.kernel);
      if (kernel_class < 0)
        throw std::logic_error("harvest_labels: kernel not in pool");
      labels.stage2.push_back({ur.unit, bp.bin_id, kernel_class});
    }
  }
  return labels;
}

TrainedModel train_model(const std::vector<gen::CorpusSpec>& specs,
                         const TrainerOptions& opts,
                         const clsim::Engine& engine, TrainReport* report) {
  if (specs.empty()) throw std::invalid_argument("train_model: empty corpus");

  // Per-matrix shuffled split (the paper splits the matrix collection, not
  // individual samples, so no matrix leaks between train and test).
  std::vector<std::size_t> order(specs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  util::Xoshiro256 rng(opts.split_seed);
  for (std::size_t i = order.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(rng.bounded(i));
    std::swap(order[i - 1], order[j]);
  }
  const auto cut = static_cast<std::size_t>(
      opts.train_frac * static_cast<double>(specs.size()));

  ml::Dataset s1_train(ml::stage1_attr_names(), opts.pools.unit_class_names());
  ml::Dataset s1_test(ml::stage1_attr_names(), opts.pools.unit_class_names());
  ml::Dataset s2_train(ml::stage2_attr_names(),
                       opts.pools.kernel_class_names());
  ml::Dataset s2_test(ml::stage2_attr_names(), opts.pools.kernel_class_names());

  for (std::size_t k = 0; k < order.size(); ++k) {
    const gen::CorpusSpec& spec = specs[order[k]];
    // Kernels measure in float, matching the paper's OpenCL kernels.
    const auto a = gen::make_corpus_matrix<float>(spec);
    util::Timer harvest_wall;
    const MatrixLabels labels = harvest_labels(engine, a, opts);
    if (opts.profile != nullptr) {
      opts.profile->add_candidate(
          "matrix " + std::to_string(k + 1) + "/" +
              std::to_string(order.size()) + " " +
              gen::family_name(spec.family),
          harvest_wall.elapsed_s(),
          static_cast<std::int64_t>(labels.stage2.size()), 0.0);
    }

    auto& s1 = k < cut ? s1_train : s1_test;
    auto& s2 = k < cut ? s2_train : s2_test;
    s1.add(ml::stage1_features(labels.stats), labels.best_unit_class);
    for (const auto& sample : labels.stage2) {
      s2.add(ml::stage2_features(labels.stats, sample.unit, sample.bin_id),
             sample.kernel_class);
    }
    util::log_info() << "trainer: matrix " << (k + 1) << "/" << order.size()
                     << " (" << gen::family_name(spec.family) << ", "
                     << spec.rows << " rows) harvested";
  }
  if (s1_train.empty() || s2_train.empty())
    throw std::runtime_error("train_model: training split is empty");

  TrainedModel model;
  model.pools = opts.pools;
  model.use_rulesets = opts.use_rulesets;
  model.stage1.train(s1_train, opts.tree);
  model.stage2.train(s2_train, opts.tree);
  model.rules1 = ml::RuleSet::from_tree(model.stage1, &s1_train);
  model.rules2 = ml::RuleSet::from_tree(model.stage2, &s2_train);

  if (report != nullptr) {
    report->matrices = specs.size();
    report->stage1_train_samples = s1_train.size();
    report->stage1_test_samples = s1_test.size();
    report->stage2_train_samples = s2_train.size();
    report->stage2_test_samples = s2_test.size();
    if (opts.use_rulesets) {
      report->stage1_train_error = model.rules1.error_rate(s1_train);
      report->stage1_test_error = model.rules1.error_rate(s1_test);
      report->stage2_train_error = model.rules2.error_rate(s2_train);
      report->stage2_test_error = model.rules2.error_rate(s2_test);
    } else {
      report->stage1_train_error = model.stage1.error_rate(s1_train);
      report->stage1_test_error = model.stage1.error_rate(s1_test);
      report->stage2_train_error = model.stage2.error_rate(s2_train);
      report->stage2_test_error = model.stage2.error_rate(s2_test);
    }
  }
  return model;
}

template MatrixLabels harvest_labels(const clsim::Engine&,
                                     const CsrMatrix<float>&,
                                     const TrainerOptions&);
template MatrixLabels harvest_labels(const clsim::Engine&,
                                     const CsrMatrix<double>&,
                                     const TrainerOptions&);

}  // namespace spmv::core

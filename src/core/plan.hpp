// A parallelization plan: the auto-tuner's decision for one matrix — the
// binning scheme (granularity U, or the single-bin strategy) and the kernel
// chosen for each occupied bin.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "exec/backend.hpp"
#include "fmt/format.hpp"
#include "kernels/registry.hpp"
#include "sparse/types.hpp"

namespace spmv::core {

/// Kernel + physical format choice for one occupied bin. Format Csr (the
/// default, and what every pre-v3 stored plan loads as) executes from the
/// shared CSR arrays; any other format names a bin-local layout the
/// execution layer materializes lazily (fmt::PlanLayouts) and that only
/// format-capable backends honour — others fall back to CSR.
struct BinPlan {
  int bin_id = 0;
  kernels::KernelId kernel = kernels::KernelId::Serial;
  fmt::FormatKind format = fmt::FormatKind::Csr;
};

struct Plan {
  /// Binning granularity U. For the single-bin strategy this is the
  /// granularity used to form virtual rows inside the single bin (1 keeps
  /// per-row dispatch).
  index_t unit = 1;
  /// True = all rows in one bin with one kernel (paper §IV-C).
  bool single_bin = false;
  /// Revision counter for online refinement (spmv::adapt): 0 for a freshly
  /// planned (predicted / tuned) plan; every bandit promotion produces a
  /// copy with revision + 1, and PlanCache::promote only accepts strictly
  /// increasing revisions, so stale promotions can never overwrite newer
  /// plans.
  std::uint64_t revision = 0;
  /// Tuned-U provenance: true when `unit` was chosen by online exploration
  /// (a BanditTuner U-promotion) rather than the stage-1 predictor.
  bool unit_tuned = false;
  /// The stage-1 predicted granularity this plan's lineage started from
  /// (0 = unknown / same as `unit`). Survives every promotion, so a stored
  /// plan records both what was predicted and what exploration settled on.
  index_t predicted_unit = 0;
  /// Execution backend the plan was tuned for — a *plan* property, like
  /// unit and the per-bin kernels, so backend swaps promoted by the adapt
  /// layer persist through plan_io / the PlanStore and warm-started
  /// services resume on the backend that won. Plans from pre-backend
  /// artifacts load as Clsim.
  exec::BackendKind backend = exec::BackendKind::Clsim;
  /// Sharded-plan provenance (spmv::shard): which row shard of which parent
  /// matrix this plan was tuned for. shard_index -1 (the default) marks an
  /// unsharded plan; sharded services stamp index/count and the parent's
  /// structural row hash so `plan-store ls` and profile artifacts can tell
  /// "shard 2 of 4 of matrix 0xABC" apart from a standalone matrix that
  /// happens to share the shard's structure.
  int shard_index = -1;
  int shard_count = 0;
  std::uint64_t shard_parent = 0;
  /// SpMM-serving provenance (spmv::iter): the dense right-hand-side width
  /// this plan's tuning observed. 0 (the default) marks a plan shaped by
  /// single-vector or shadow measurements; an IterativeSession stamps its
  /// serving width onto latency-feedback promotions, so a warm-started
  /// session can tell "tuned under width-8 SpMM" from "tuned one-shot"
  /// the same way shard provenance travels.
  int spmm_width = 0;
  /// Kernel per occupied bin, ascending bin_id. For single_bin plans this
  /// has exactly one entry with bin_id 0.
  std::vector<BinPlan> bin_kernels;

  /// Restore the ascending-bin_id invariant. Plans built by the library
  /// already satisfy it (occupied_bins() iterates in order); call this on
  /// externally assembled plans before relying on kernel_for.
  void normalize() {
    std::sort(bin_kernels.begin(), bin_kernels.end(),
              [](const BinPlan& l, const BinPlan& r) {
                return l.bin_id < r.bin_id;
              });
  }

  /// Kernel for `bin_id`, by binary search over the ascending bin_kernels;
  /// throws std::out_of_range when the plan has no entry for it (i.e. the
  /// bin was empty at planning time).
  [[nodiscard]] kernels::KernelId kernel_for(int bin_id) const {
    const auto it = std::lower_bound(
        bin_kernels.begin(), bin_kernels.end(), bin_id,
        [](const BinPlan& bp, int id) { return bp.bin_id < id; });
    if (it == bin_kernels.end() || it->bin_id != bin_id)
      throw std::out_of_range("Plan: no kernel for bin " +
                              std::to_string(bin_id));
    return it->kernel;
  }

  /// Physical format for `bin_id`; same lookup contract as kernel_for.
  [[nodiscard]] fmt::FormatKind format_for(int bin_id) const {
    const auto it = std::lower_bound(
        bin_kernels.begin(), bin_kernels.end(), bin_id,
        [](const BinPlan& bp, int id) { return bp.bin_id < id; });
    if (it == bin_kernels.end() || it->bin_id != bin_id)
      throw std::out_of_range("Plan: no format for bin " +
                              std::to_string(bin_id));
    return it->format;
  }

  /// True when any bin uses a non-CSR layout (i.e. execution can benefit
  /// from a fmt::PlanLayouts cache).
  [[nodiscard]] bool uses_formats() const {
    return std::any_of(bin_kernels.begin(), bin_kernels.end(),
                       [](const BinPlan& bp) {
                         return bp.format != fmt::FormatKind::Csr;
                       });
  }

  /// One-line human-readable summary, e.g.
  /// "U=100 {bin0:serial, bin3:subvector16}".
  [[nodiscard]] std::string to_string() const {
    std::string s = single_bin ? "single-bin" : "U=" + std::to_string(unit);
    s += " {";
    for (std::size_t i = 0; i < bin_kernels.size(); ++i) {
      if (i > 0) s += ", ";
      s += "bin" + std::to_string(bin_kernels[i].bin_id) + ":" +
           kernels::kernel_name(bin_kernels[i].kernel);
      // CSR is the default; only a transformed bin is worth a marker.
      if (bin_kernels[i].format != fmt::FormatKind::Csr) {
        s += "/";
        s += fmt::format_cname(bin_kernels[i].format);
      }
    }
    s += "}";
    // Clsim is the default; only a non-default backend is worth a marker.
    if (backend != exec::BackendKind::Clsim) {
      s += " @";
      s += exec::backend_cname(backend);
    }
    if (shard_index >= 0)
      s += " shard " + std::to_string(shard_index) + "/" +
           std::to_string(shard_count);
    if (spmm_width > 0) s += " spmm=" + std::to_string(spmm_width);
    return s;
  }
};

}  // namespace spmv::core

#include "core/candidates.hpp"

#include "binning/binning.hpp"

namespace spmv::core {

int CandidatePools::unit_index(index_t unit) const {
  for (std::size_t i = 0; i < units.size(); ++i) {
    if (units[i] == unit) return static_cast<int>(i);
  }
  return -1;
}

int CandidatePools::kernel_index(kernels::KernelId id) const {
  for (std::size_t i = 0; i < kernel_pool.size(); ++i) {
    if (kernel_pool[i] == id) return static_cast<int>(i);
  }
  return -1;
}

std::vector<std::string> CandidatePools::unit_class_names() const {
  std::vector<std::string> names;
  names.reserve(units.size() + (include_single_bin ? 1 : 0));
  for (index_t u : units) names.push_back("U" + std::to_string(u));
  if (include_single_bin) names.push_back("single-bin");
  return names;
}

std::vector<std::string> CandidatePools::kernel_class_names() const {
  std::vector<std::string> names;
  names.reserve(kernel_pool.size());
  for (kernels::KernelId id : kernel_pool)
    names.push_back(kernels::kernel_name(id));
  return names;
}

CandidatePools default_pools() {
  CandidatePools pools;
  pools.units = binning::default_granularity_pool();
  pools.kernel_pool = kernels::all_kernels();
  return pools;
}

CandidatePools small_pools() {
  CandidatePools pools;
  pools.units = {10, 100, 1000, 10000, 100000};
  pools.kernel_pool = {kernels::KernelId::Serial, kernels::KernelId::Sub8,
                       kernels::KernelId::Sub32, kernels::KernelId::Vector};
  return pools;
}

}  // namespace spmv::core

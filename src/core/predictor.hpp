// Predictors: map matrix features to a parallelization plan.
//
// ModelPredictor wraps the two-stage trained model (the paper's predict
// path, Figure 3 black arrows); HeuristicPredictor is a hand-written
// fallback used before a model exists and as a comparison point.
#pragma once

#include <memory>

#include "core/candidates.hpp"
#include "core/plan.hpp"
#include "ml/decision_tree.hpp"
#include "ml/ruleset.hpp"
#include "sparse/matrix_stats.hpp"

namespace spmv::core {

/// The two-stage trained model: stage 1 picks the granularity class, stage
/// 2 picks a kernel per (U, binId). Classification can go through the
/// trees directly or through the extracted rule sets (the paper's C5.0
/// artifact); both are kept so model_io round-trips either.
struct TrainedModel {
  CandidatePools pools;
  ml::DecisionTree stage1;
  ml::DecisionTree stage2;
  ml::RuleSet rules1;
  ml::RuleSet rules2;
  bool use_rulesets = true;

  /// Stage-1 class index for a feature vector.
  [[nodiscard]] int predict_unit_class(std::span<const double> f) const {
    return use_rulesets ? rules1.classify(f) : stage1.predict(f);
  }
  /// Stage-2 class index for a feature vector.
  [[nodiscard]] int predict_kernel_class(std::span<const double> f) const {
    return use_rulesets ? rules2.classify(f) : stage2.predict(f);
  }
};

/// Abstract strategy selector.
class Predictor {
 public:
  virtual ~Predictor() = default;

  /// Select the binning granularity for a matrix. Returns {unit,
  /// single_bin}: single_bin true selects the single-bin strategy.
  struct UnitChoice {
    index_t unit = 1;
    bool single_bin = false;
  };
  [[nodiscard]] virtual UnitChoice predict_unit(const RowStats& stats) const = 0;

  /// Select the kernel for bin `bin_id` under granularity `unit`.
  [[nodiscard]] virtual kernels::KernelId predict_kernel(
      const RowStats& stats, index_t unit, int bin_id) const = 0;
};

/// Predictor backed by a TrainedModel.
class ModelPredictor final : public Predictor {
 public:
  explicit ModelPredictor(TrainedModel model) : model_(std::move(model)) {}

  [[nodiscard]] UnitChoice predict_unit(const RowStats& stats) const override;
  [[nodiscard]] kernels::KernelId predict_kernel(const RowStats& stats,
                                                 index_t unit,
                                                 int bin_id) const override;
  [[nodiscard]] const TrainedModel& model() const { return model_; }

 private:
  TrainedModel model_;
};

/// Hand-written input-aware heuristic: picks U near the average virtual
/// workload scale and a kernel whose lanes-per-row matches each bin's
/// average row length. No training required.
class HeuristicPredictor final : public Predictor {
 public:
  explicit HeuristicPredictor(CandidatePools pools = default_pools())
      : pools_(std::move(pools)) {}

  [[nodiscard]] UnitChoice predict_unit(const RowStats& stats) const override;
  [[nodiscard]] kernels::KernelId predict_kernel(const RowStats& stats,
                                                 index_t unit,
                                                 int bin_id) const override;

 private:
  CandidatePools pools_;
};

}  // namespace spmv::core

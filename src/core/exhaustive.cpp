#include "core/exhaustive.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>
#include <stdexcept>
#include <utility>

#include "exec/clsim_backend.hpp"
#include "fmt/plan_layouts.hpp"
#include "prof/counters.hpp"

namespace spmv::core {

template <typename T>
binning::BinSet bins_for_plan(const CsrMatrix<T>& a, const Plan& plan) {
  return plan.single_bin ? binning::single_bin(a, plan.unit)
                         : binning::bin_matrix(a, plan.unit);
}

namespace {

/// Resolve one bin's materialized layout, or null for the CSR path. Only
/// consulted when the plan asks for a non-CSR format AND the backend can
/// execute layouts — otherwise the bin silently runs from the shared CSR
/// arrays (the ClsimBackend comparability guarantee).
template <typename T>
std::shared_ptr<const fmt::BinLayout<T>> resolve_layout(
    const exec::Backend& backend, fmt::PlanLayouts<T>* layouts,
    const CsrMatrix<T>& a, std::span<const index_t> vrows, index_t unit,
    const BinPlan& bp) {
  if (layouts == nullptr || bp.format == fmt::FormatKind::Csr ||
      !backend.supports_formats())
    return nullptr;
  return layouts->acquire(a, vrows, unit, bp.format, bp.bin_id);
}

/// Bump the layout cache's reuse counter once per whole-plan execution —
/// the amortization signal.
template <typename T>
void note_layout_run(fmt::PlanLayouts<T>* layouts, const CsrMatrix<T>& a,
                     const Plan& plan) {
  if (layouts != nullptr && plan.uses_formats()) (void)layouts->note_run(a);
}

}  // namespace

template <typename T>
void execute_plan(const exec::Backend& backend, const CsrMatrix<T>& a,
                  std::span<const T> x, std::span<T> y,
                  const binning::BinSet& bins, const Plan& plan,
                  fmt::PlanLayouts<T>* layouts) {
  if (bins.unit() != plan.unit)
    throw std::invalid_argument("execute_plan: bins/plan unit mismatch");
  note_layout_run(layouts, a, plan);
  for (const BinPlan& bp : plan.bin_kernels) {
    const auto& vrows = bins.bin(bp.bin_id);
    if (vrows.empty()) continue;
    if (const auto l = resolve_layout(backend, layouts, a, vrows, bins.unit(),
                                      bp)) {
      backend.run_layout(a, *l, x, y);
      continue;
    }
    backend.run_binned(bp.kernel, a, x, y, vrows, bins.unit());
  }
}

namespace {

/// Non-zeros covered by a bin's virtual rows at granularity `unit`.
template <typename T>
std::int64_t bin_nnz(const CsrMatrix<T>& a, std::span<const index_t> vrows,
                     index_t unit) {
  std::int64_t total = 0;
  const index_t rows = a.rows();
  for (index_t v : vrows) {
    const index_t lo = v * unit;
    const index_t hi = std::min<index_t>(lo + unit, rows);
    total += static_cast<std::int64_t>(a.row_ptr()[hi] - a.row_ptr()[lo]);
  }
  return total;
}

using EngineSnapshot =
    decltype(std::declval<const clsim::Engine&>().counters().snapshot());

}  // namespace

template <typename T>
void execute_plan(const exec::Backend& backend, const CsrMatrix<T>& a,
                  std::span<const T> x, std::span<T> y,
                  const binning::BinSet& bins, const Plan& plan,
                  prof::RunProfile* profile, fmt::PlanLayouts<T>* layouts) {
  if (profile == nullptr) {
    execute_plan(backend, a, x, y, bins, plan, layouts);
    return;
  }
  if (bins.unit() != plan.unit)
    throw std::invalid_argument("execute_plan: bins/plan unit mismatch");
  note_layout_run(layouts, a, plan);
  // Engine counters only exist for backends that drive a clsim engine.
  const clsim::Engine* engine = backend.engine();
  std::optional<EngineSnapshot> before;
  if (engine != nullptr) before = engine->counters().snapshot();
  util::Timer total;
  for (const BinPlan& bp : plan.bin_kernels) {
    const auto& vrows = bins.bin(bp.bin_id);
    if (vrows.empty()) continue;
    util::Timer t;
    std::string label = kernels::kernel_name(bp.kernel);
    if (const auto l = resolve_layout(backend, layouts, a, vrows, bins.unit(),
                                      bp)) {
      backend.run_layout(a, *l, x, y);
      label += std::string("+") + fmt::format_cname(bp.format);
    } else {
      backend.run_binned(bp.kernel, a, x, y, vrows, bins.unit());
    }
    profile->add_bin_run(bp.bin_id, label,
                         static_cast<std::int64_t>(vrows.size()),
                         bins.rows_in_bin(bp.bin_id),
                         bin_nnz(a, std::span<const index_t>(vrows),
                                 bins.unit()),
                         t.elapsed_s());
  }
  profile->runs += 1;
  profile->run_total_s += total.elapsed_s();
  if (engine != nullptr)
    profile->merge_engine_delta(
        engine->counters().snapshot().delta_since(*before));
}

template <typename T>
void execute_plan_batch(const exec::Backend& backend, const CsrMatrix<T>& a,
                        std::span<const T> x, std::span<T> y, int batch,
                        const binning::BinSet& bins, const Plan& plan,
                        prof::RunProfile* profile,
                        fmt::PlanLayouts<T>* layouts) {
  if (bins.unit() != plan.unit)
    throw std::invalid_argument("execute_plan_batch: bins/plan unit mismatch");
  note_layout_run(layouts, a, plan);
  if (profile == nullptr) {
    for (const BinPlan& bp : plan.bin_kernels) {
      const auto& vrows = bins.bin(bp.bin_id);
      if (vrows.empty()) continue;
      if (const auto l = resolve_layout(backend, layouts, a, vrows,
                                        bins.unit(), bp)) {
        backend.run_layout_batch(a, *l, x, y, batch);
        continue;
      }
      backend.run_binned_batch(bp.kernel, a, x, y, batch, vrows, bins.unit());
    }
    return;
  }
  const clsim::Engine* engine = backend.engine();
  std::optional<EngineSnapshot> before;
  if (engine != nullptr) before = engine->counters().snapshot();
  const std::uint64_t fallback_before = prof::spmm_fallback_columns();
  util::Timer total;
  for (const BinPlan& bp : plan.bin_kernels) {
    const auto& vrows = bins.bin(bp.bin_id);
    if (vrows.empty()) continue;
    util::Timer t;
    std::string label = kernels::kernel_name(bp.kernel);
    if (const auto l = resolve_layout(backend, layouts, a, vrows, bins.unit(),
                                      bp)) {
      backend.run_layout_batch(a, *l, x, y, batch);
      label += std::string("+") + fmt::format_cname(bp.format);
    } else {
      backend.run_binned_batch(bp.kernel, a, x, y, batch, vrows, bins.unit());
    }
    profile->add_bin_run(bp.bin_id, label,
                         static_cast<std::int64_t>(vrows.size()),
                         bins.rows_in_bin(bp.bin_id),
                         bin_nnz(a, std::span<const index_t>(vrows),
                                 bins.unit()),
                         t.elapsed_s());
  }
  profile->runs += 1;
  profile->run_total_s += total.elapsed_s();
  profile->spmm_fallback_columns +=
      prof::spmm_fallback_columns() - fallback_before;
  if (engine != nullptr)
    profile->merge_engine_delta(
        engine->counters().snapshot().delta_since(*before));
}

template <typename T>
void execute_plan_spmm(const exec::Backend& backend, const CsrMatrix<T>& a,
                       std::span<const T> x, std::span<T> y, int width,
                       const binning::BinSet& bins, const Plan& plan,
                       prof::RunProfile* profile,
                       fmt::PlanLayouts<T>* layouts) {
  if (bins.unit() != plan.unit)
    throw std::invalid_argument("execute_plan_spmm: bins/plan unit mismatch");
  note_layout_run(layouts, a, plan);
  if (profile == nullptr) {
    for (const BinPlan& bp : plan.bin_kernels) {
      const auto& vrows = bins.bin(bp.bin_id);
      if (vrows.empty()) continue;
      if (const auto l = resolve_layout(backend, layouts, a, vrows,
                                        bins.unit(), bp)) {
        backend.run_layout_batch(a, *l, x, y, width);
        continue;
      }
      backend.run_spmm(bp.kernel, a, x, y, width, vrows, bins.unit());
    }
    return;
  }
  const clsim::Engine* engine = backend.engine();
  std::optional<EngineSnapshot> before;
  if (engine != nullptr) before = engine->counters().snapshot();
  const std::uint64_t fallback_before = prof::spmm_fallback_columns();
  util::Timer total;
  for (const BinPlan& bp : plan.bin_kernels) {
    const auto& vrows = bins.bin(bp.bin_id);
    if (vrows.empty()) continue;
    util::Timer t;
    std::string label = kernels::kernel_name(bp.kernel);
    if (const auto l = resolve_layout(backend, layouts, a, vrows, bins.unit(),
                                      bp)) {
      backend.run_layout_batch(a, *l, x, y, width);
      label += std::string("+") + fmt::format_cname(bp.format);
    } else {
      backend.run_spmm(bp.kernel, a, x, y, width, vrows, bins.unit());
    }
    profile->add_bin_run(bp.bin_id, label,
                         static_cast<std::int64_t>(vrows.size()),
                         bins.rows_in_bin(bp.bin_id),
                         bin_nnz(a, std::span<const index_t>(vrows),
                                 bins.unit()),
                         t.elapsed_s());
  }
  profile->runs += 1;
  profile->run_total_s += total.elapsed_s();
  profile->spmm_fallback_columns +=
      prof::spmm_fallback_columns() - fallback_before;
  if (engine != nullptr)
    profile->merge_engine_delta(
        engine->counters().snapshot().delta_since(*before));
}

namespace {

/// Measure the best kernel for each occupied bin of `bins`.
template <typename T>
UnitResult tune_bins(const exec::Backend& backend, const CsrMatrix<T>& a,
                     std::span<const T> x, std::span<T> y,
                     const binning::BinSet& bins, bool single_bin,
                     const CandidatePools& pools,
                     const ExhaustiveOptions& opts) {
  UnitResult result;
  result.unit = bins.unit();
  result.single_bin = single_bin;
  for (int b : bins.occupied_bins()) {
    const auto& vrows = bins.bin(b);
    std::vector<double> times;
    times.reserve(pools.kernel_pool.size());
    double best_s = std::numeric_limits<double>::infinity();
    for (kernels::KernelId id : pools.kernel_pool) {
      const auto m = util::measure(
          [&] { backend.run_binned(id, a, x, y, vrows, bins.unit()); },
          opts.measure);
      times.push_back(m.best_s);
      best_s = std::min(best_s, m.best_s);
    }
    // Tie-break: first kernel (pool order = narrowest lanes) within
    // tolerance of the best.
    std::size_t pick = 0;
    while (times[pick] > best_s * (1.0 + opts.tie_tolerance)) ++pick;
    result.bin_kernels.push_back({b, pools.kernel_pool[pick]});
    result.bin_times_s.push_back(times[pick]);
    result.total_s += times[pick];
  }
  return result;
}

}  // namespace

template <typename T>
TuneResult exhaustive_tune(const exec::Backend& backend, const CsrMatrix<T>& a,
                           std::span<const T> x, const CandidatePools& pools,
                           const ExhaustiveOptions& opts) {
  if (pools.units.empty() || pools.kernel_pool.empty())
    throw std::invalid_argument("exhaustive_tune: empty candidate pool");
  std::vector<T> y(static_cast<std::size_t>(a.rows()));

  // Per-candidate cost: wall time spent binning + measuring each
  // granularity, and how many (bin, kernel) measurements that took.
  const auto record_candidate = [&](const UnitResult& ur, double wall_s) {
    if (opts.profile == nullptr) return;
    const std::string label =
        ur.single_bin ? "single-bin" : "U=" + std::to_string(ur.unit);
    opts.profile->add_candidate(
        label, wall_s,
        static_cast<std::int64_t>(ur.bin_kernels.size() *
                                  pools.kernel_pool.size()),
        ur.total_s);
  };

  TuneResult result;
  for (index_t unit : pools.units) {
    util::Timer wall;
    const auto bins = binning::bin_matrix(a, unit);
    result.per_unit.push_back(
        tune_bins(backend, a, x, std::span<T>(y), bins, false, pools, opts));
    record_candidate(result.per_unit.back(), wall.elapsed_s());
  }
  if (pools.include_single_bin) {
    util::Timer wall;
    const auto bins = binning::single_bin(a, index_t{1});
    result.per_unit.push_back(
        tune_bins(backend, a, x, std::span<T>(y), bins, true, pools, opts));
    record_candidate(result.per_unit.back(), wall.elapsed_s());
  }

  // Select the winner with deterministic tie-breaking: among candidates
  // within tolerance of the fastest, prefer the coarsest granularity
  // (cheapest binning); the single-bin strategy only wins outright.
  double best_total = std::numeric_limits<double>::infinity();
  for (const UnitResult& ur : result.per_unit)
    best_total = std::min(best_total, ur.total_s);
  const UnitResult* winner = nullptr;
  for (const UnitResult& ur : result.per_unit) {
    if (ur.total_s > best_total * (1.0 + opts.tie_tolerance)) continue;
    if (winner == nullptr) {
      winner = &ur;
      continue;
    }
    const bool prefer = (winner->single_bin && !ur.single_bin) ||
                        (!winner->single_bin && !ur.single_bin &&
                         ur.unit > winner->unit);
    if (prefer) winner = &ur;
  }
  result.best_plan.unit = winner->unit;
  result.best_plan.single_bin = winner->single_bin;
  result.best_plan.bin_kernels = winner->bin_kernels;
  result.best_plan.backend = backend.kind();

  // End-to-end time of the winning plan (per-bin sums ignore launch
  // overlap; the reported number is a real full execution).
  const auto bins = bins_for_plan(a, result.best_plan);
  const auto m = util::measure(
      [&] {
        execute_plan(backend, a, x, std::span<T>(y), bins, result.best_plan);
      },
      opts.measure);
  result.best_s = m.best_s;
  return result;
}

// --- clsim::Engine conveniences ---------------------------------------

template <typename T>
void execute_plan(const clsim::Engine& engine, const CsrMatrix<T>& a,
                  std::span<const T> x, std::span<T> y,
                  const binning::BinSet& bins, const Plan& plan) {
  execute_plan(exec::ClsimBackend(engine), a, x, y, bins, plan);
}

template <typename T>
void execute_plan(const clsim::Engine& engine, const CsrMatrix<T>& a,
                  std::span<const T> x, std::span<T> y,
                  const binning::BinSet& bins, const Plan& plan,
                  prof::RunProfile* profile) {
  execute_plan(exec::ClsimBackend(engine), a, x, y, bins, plan, profile);
}

template <typename T>
void execute_plan_batch(const clsim::Engine& engine, const CsrMatrix<T>& a,
                        std::span<const T> x, std::span<T> y, int batch,
                        const binning::BinSet& bins, const Plan& plan,
                        prof::RunProfile* profile) {
  execute_plan_batch(exec::ClsimBackend(engine), a, x, y, batch, bins, plan,
                     profile);
}

template <typename T>
TuneResult exhaustive_tune(const clsim::Engine& engine, const CsrMatrix<T>& a,
                           std::span<const T> x, const CandidatePools& pools,
                           const ExhaustiveOptions& opts) {
  return exhaustive_tune(exec::ClsimBackend(engine), a, x, pools, opts);
}

#define SPMV_EXHAUSTIVE_INSTANTIATE(T)                                       \
  template binning::BinSet bins_for_plan(const CsrMatrix<T>&, const Plan&);  \
  template void execute_plan(const exec::Backend&, const CsrMatrix<T>&,      \
                             std::span<const T>, std::span<T>,               \
                             const binning::BinSet&, const Plan&,            \
                             fmt::PlanLayouts<T>*);                          \
  template void execute_plan(const exec::Backend&, const CsrMatrix<T>&,      \
                             std::span<const T>, std::span<T>,               \
                             const binning::BinSet&, const Plan&,            \
                             prof::RunProfile*, fmt::PlanLayouts<T>*);       \
  template void execute_plan_batch(const exec::Backend&, const CsrMatrix<T>&,\
                                   std::span<const T>, std::span<T>, int,    \
                                   const binning::BinSet&, const Plan&,      \
                                   prof::RunProfile*,                        \
                                   fmt::PlanLayouts<T>*);                    \
  template void execute_plan_spmm(const exec::Backend&, const CsrMatrix<T>&, \
                                  std::span<const T>, std::span<T>, int,     \
                                  const binning::BinSet&, const Plan&,       \
                                  prof::RunProfile*, fmt::PlanLayouts<T>*);  \
  template TuneResult exhaustive_tune(const exec::Backend&,                  \
                                      const CsrMatrix<T>&,                   \
                                      std::span<const T>,                    \
                                      const CandidatePools&,                 \
                                      const ExhaustiveOptions&);             \
  template void execute_plan(const clsim::Engine&, const CsrMatrix<T>&,      \
                             std::span<const T>, std::span<T>,               \
                             const binning::BinSet&, const Plan&);           \
  template void execute_plan(const clsim::Engine&, const CsrMatrix<T>&,      \
                             std::span<const T>, std::span<T>,               \
                             const binning::BinSet&, const Plan&,            \
                             prof::RunProfile*);                             \
  template void execute_plan_batch(const clsim::Engine&, const CsrMatrix<T>&,\
                                   std::span<const T>, std::span<T>, int,    \
                                   const binning::BinSet&, const Plan&,      \
                                   prof::RunProfile*);                       \
  template TuneResult exhaustive_tune(const clsim::Engine&,                  \
                                      const CsrMatrix<T>&,                   \
                                      std::span<const T>,                    \
                                      const CandidatePools&,                 \
                                      const ExhaustiveOptions&);
SPMV_EXHAUSTIVE_INSTANTIATE(float)
SPMV_EXHAUSTIVE_INSTANTIATE(double)
#undef SPMV_EXHAUSTIVE_INSTANTIATE

}  // namespace spmv::core

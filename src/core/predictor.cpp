#include "core/predictor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ml/features.hpp"

namespace spmv::core {

Predictor::UnitChoice ModelPredictor::predict_unit(
    const RowStats& stats) const {
  const auto features = ml::stage1_features(stats);
  const int cls = model_.predict_unit_class(features);
  const auto unit_count = static_cast<int>(model_.pools.units.size());
  if (cls < 0 || cls > unit_count ||
      (cls == unit_count && !model_.pools.include_single_bin))
    throw std::out_of_range("ModelPredictor: stage-1 class out of range");
  if (cls == unit_count) return {1, true};  // the single-bin class
  return {model_.pools.units[static_cast<std::size_t>(cls)], false};
}

kernels::KernelId ModelPredictor::predict_kernel(const RowStats& stats,
                                                 index_t unit,
                                                 int bin_id) const {
  const auto features = ml::stage2_features(stats, unit, bin_id);
  const int cls = model_.predict_kernel_class(features);
  if (cls < 0 || cls >= static_cast<int>(model_.pools.kernel_pool.size()))
    throw std::out_of_range("ModelPredictor: stage-2 class out of range");
  return model_.pools.kernel_pool[static_cast<std::size_t>(cls)];
}

Predictor::UnitChoice HeuristicPredictor::predict_unit(
    const RowStats& stats) const {
  // Keep binning + per-bin launch overhead negligible: target ~2k virtual
  // rows (the Figure-8 regime where collection cost vanishes), but never
  // leave the pool.
  const double target =
      std::max(10.0, static_cast<double>(stats.rows) / 2000.0);
  index_t best = pools_.units.front();
  double best_dist = std::numeric_limits<double>::infinity();
  for (index_t u : pools_.units) {
    const double d = std::abs(std::log(static_cast<double>(u)) -
                              std::log(target));
    if (d < best_dist) {
      best_dist = d;
      best = u;
    }
  }
  return {best, false};
}

kernels::KernelId HeuristicPredictor::predict_kernel(const RowStats& stats,
                                                     index_t unit,
                                                     int bin_id) const {
  // binId == virtual-row workload / U, i.e. approximately the average row
  // length inside the bin (independent of U). Choose the kernel whose
  // chunk (4 lanes' worth of products per pass) matches that length.
  double est_len = static_cast<double>(bin_id);
  if (bin_id <= 0) est_len = std::min(1.0, stats.avg_nnz);
  if (bin_id >= 99) est_len = std::max(est_len, stats.avg_nnz);
  (void)unit;

  kernels::KernelId best = pools_.kernel_pool.front();
  double best_dist = std::numeric_limits<double>::infinity();
  for (kernels::KernelId id : pools_.kernel_pool) {
    // A kernel with L lanes/row is "sized" for rows of ~4*L non-zeros
    // (factor 4 staging); serial is sized for very short rows.
    const double sized_for = 4.0 * kernels::lanes_per_row(id);
    const double d =
        std::abs(std::log(sized_for) - std::log(std::max(est_len, 1.0)));
    if (d < best_dist) {
      best_dist = d;
      best = id;
    }
  }
  return best;
}

}  // namespace spmv::core

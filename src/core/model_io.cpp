#include "core/model_io.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace spmv::core {

void save_model(std::ostream& out, const TrainedModel& model) {
  out << "AutoSpmvModel v1\n";
  out << "units " << model.pools.units.size();
  for (index_t u : model.pools.units) out << ' ' << u;
  out << "\nkernels " << model.pools.kernel_pool.size();
  for (kernels::KernelId id : model.pools.kernel_pool)
    out << ' ' << kernels::kernel_name(id);
  out << "\nsingle_bin " << (model.pools.include_single_bin ? 1 : 0) << '\n';
  out << "use_rulesets " << (model.use_rulesets ? 1 : 0) << '\n';
  model.stage1.save(out);
  model.stage2.save(out);
  model.rules1.save(out);
  model.rules2.save(out);
}

TrainedModel load_model(std::istream& in) {
  auto fail = [](const char* msg) -> void {
    throw std::runtime_error(std::string("load_model: ") + msg);
  };
  std::string line;
  if (!std::getline(in, line) || line != "AutoSpmvModel v1")
    fail("bad header");

  TrainedModel model;
  std::string token;
  std::size_t count = 0;
  in >> token >> count;
  if (token != "units") fail("expected units");
  model.pools.units.resize(count);
  for (auto& u : model.pools.units) in >> u;
  in >> token >> count;
  if (token != "kernels") fail("expected kernels");
  model.pools.kernel_pool.resize(count);
  for (auto& id : model.pools.kernel_pool) {
    std::string name;
    in >> name;
    id = kernels::kernel_from_name(name);
  }
  int flag = 0;
  in >> token >> flag;
  if (token != "single_bin") fail("expected single_bin");
  model.pools.include_single_bin = flag != 0;
  in >> token >> flag;
  if (token != "use_rulesets") fail("expected use_rulesets");
  model.use_rulesets = flag != 0;
  in.ignore();  // consume the newline before the tree blocks

  model.stage1 = ml::DecisionTree::load(in);
  in.ignore();
  model.stage2 = ml::DecisionTree::load(in);
  in.ignore();
  model.rules1 = ml::RuleSet::load(in);
  in.ignore();
  model.rules2 = ml::RuleSet::load(in);
  if (!in) fail("truncated stream");
  return model;
}

void save_model_file(const std::string& path, const TrainedModel& model) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_model_file: cannot write " + path);
  save_model(out, model);
}

TrainedModel load_model_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_model_file: cannot open " + path);
  return load_model(in);
}

}  // namespace spmv::core

// Exhaustive auto-tuning: measure every (binning granularity, per-bin
// kernel) candidate and report the best plan. This is the ground-truth
// oracle that (a) labels the training corpus and (b) bounds the achievable
// performance in the benches — exactly the measurement the paper's offline
// training stage performs.
//
// Execution goes through the exec::Backend seam, so plans can run (and be
// tuned) on any backend; the clsim::Engine overloads are thin conveniences
// that wrap the engine in an exec::ClsimBackend.
#pragma once

#include <span>
#include <vector>

#include "binning/binning.hpp"
#include "clsim/engine.hpp"
#include "core/candidates.hpp"
#include "core/plan.hpp"
#include "exec/backend.hpp"
#include "prof/profile.hpp"
#include "sparse/csr.hpp"
#include "util/timer.hpp"

namespace spmv::fmt {
template <typename T>
class PlanLayouts;
}  // namespace spmv::fmt

namespace spmv::core {

/// Build the BinSet a plan executes over.
template <typename T>
binning::BinSet bins_for_plan(const CsrMatrix<T>& a, const Plan& plan);

/// Execute `plan` (bins must come from bins_for_plan / match plan.unit):
/// per occupied bin, launch the planned kernel over that bin's rows on
/// `backend`. When the plan carries non-CSR bin formats, a `layouts` cache
/// resolves each such bin to a materialized layout — a bin whose layout is
/// not yet amortized (acquire() returns null), a null cache, or a backend
/// without format support all fall back to the CSR launch, so formats are
/// a pure acceleration, never a requirement.
template <typename T>
void execute_plan(const exec::Backend& backend, const CsrMatrix<T>& a,
                  std::span<const T> x, std::span<T> y,
                  const binning::BinSet& bins, const Plan& plan,
                  fmt::PlanLayouts<T>* layouts = nullptr);

/// Telemetry variant: additionally records per-bin kernel wall time and
/// bin workload (rows/NNZ) into `profile`, plus the engine-counter delta
/// when the backend drives a clsim engine (backend.engine() != nullptr).
/// A null profile behaves exactly like the plain overload. Bins executed
/// through a layout are labelled "<kernel>+<format>".
template <typename T>
void execute_plan(const exec::Backend& backend, const CsrMatrix<T>& a,
                  std::span<const T> x, std::span<T> y,
                  const binning::BinSet& bins, const Plan& plan,
                  prof::RunProfile* profile,
                  fmt::PlanLayouts<T>* layouts = nullptr);

/// Batched Y = A·X through `plan`: `batch` input vectors stored
/// column-major in `x` (each a.cols() long), results in the matching
/// columns of `y` (each a.rows() long). Per-bin kernels with a batched
/// variant share one CSR traversal across the batch; the rest loop one
/// single-vector launch per column (see exec::Backend::run_binned_batch).
template <typename T>
void execute_plan_batch(const exec::Backend& backend, const CsrMatrix<T>& a,
                        std::span<const T> x, std::span<T> y, int batch,
                        const binning::BinSet& bins, const Plan& plan,
                        prof::RunProfile* profile = nullptr,
                        fmt::PlanLayouts<T>* layouts = nullptr);

/// True SpMM through `plan`: Y = A·X for `width` dense right-hand sides
/// (column-major, kernels::batch_column layout). Differs from
/// execute_plan_batch in which backend entry carries CSR bins: run_spmm's
/// blocked one-traversal kernels (or its counted per-column fallback on
/// backends without them) instead of the batch dispatcher's capped native
/// variants. Layout bins go through run_layout_batch either way — the
/// native layout batch kernels are already one-traversal at any width. Per
/// output column the result is bit-identical to `width` single-vector
/// execute_plan runs. The profiled variant additionally records the
/// prof::spmm_fallback_columns delta this execution caused.
template <typename T>
void execute_plan_spmm(const exec::Backend& backend, const CsrMatrix<T>& a,
                       std::span<const T> x, std::span<T> y, int width,
                       const binning::BinSet& bins, const Plan& plan,
                       prof::RunProfile* profile = nullptr,
                       fmt::PlanLayouts<T>* layouts = nullptr);

/// Tuning result for one candidate granularity.
struct UnitResult {
  index_t unit = 1;
  bool single_bin = false;
  /// Best kernel per occupied bin and the summed best per-bin times.
  std::vector<BinPlan> bin_kernels;
  std::vector<double> bin_times_s;  ///< parallel to bin_kernels
  double total_s = 0.0;
};

struct TuneResult {
  Plan best_plan;
  double best_s = 0.0;             ///< end-to-end measured time of best_plan
  std::vector<UnitResult> per_unit;
};

struct ExhaustiveOptions {
  util::MeasureOptions measure{.warmup = 1, .reps = 3, .max_total_s = 1.0};
  /// Candidates within (1 + tie_tolerance) of the best measured time are
  /// treated as ties and broken deterministically: per bin, the
  /// narrowest-lane kernel wins; across granularities, the largest U wins
  /// (cheapest binning). Without this, near-equivalent candidates make the
  /// training labels measurement noise — on uniform matrices *every* U
  /// performs identically — and the model learns nothing.
  double tie_tolerance = 0.05;
  /// Optional telemetry sink: every candidate granularity appends a
  /// CandidateCost (wall time spent measuring it, number of per-bin kernel
  /// measurements, its best summed time).
  prof::RunProfile* profile = nullptr;
};

/// Measure every candidate in `pools` for matrix `a` with input vector `x`
/// on `backend`. The best plan is stamped with the backend's kind, so it
/// round-trips through plan_io carrying where it was tuned.
template <typename T>
TuneResult exhaustive_tune(const exec::Backend& backend, const CsrMatrix<T>& a,
                           std::span<const T> x, const CandidatePools& pools,
                           const ExhaustiveOptions& opts = {});

// --- clsim::Engine conveniences ---------------------------------------
// Equivalent to the Backend overloads with exec::ClsimBackend(engine).

template <typename T>
void execute_plan(const clsim::Engine& engine, const CsrMatrix<T>& a,
                  std::span<const T> x, std::span<T> y,
                  const binning::BinSet& bins, const Plan& plan);

template <typename T>
void execute_plan(const clsim::Engine& engine, const CsrMatrix<T>& a,
                  std::span<const T> x, std::span<T> y,
                  const binning::BinSet& bins, const Plan& plan,
                  prof::RunProfile* profile);

template <typename T>
void execute_plan_batch(const clsim::Engine& engine, const CsrMatrix<T>& a,
                        std::span<const T> x, std::span<T> y, int batch,
                        const binning::BinSet& bins, const Plan& plan,
                        prof::RunProfile* profile = nullptr);

template <typename T>
TuneResult exhaustive_tune(const clsim::Engine& engine, const CsrMatrix<T>& a,
                           std::span<const T> x, const CandidatePools& pools,
                           const ExhaustiveOptions& opts = {});

#define SPMV_EXHAUSTIVE_EXTERN(T)                                            \
  extern template binning::BinSet bins_for_plan(const CsrMatrix<T>&,         \
                                                const Plan&);                \
  extern template void execute_plan(const exec::Backend&,                    \
                                    const CsrMatrix<T>&, std::span<const T>, \
                                    std::span<T>, const binning::BinSet&,    \
                                    const Plan&, fmt::PlanLayouts<T>*);      \
  extern template void execute_plan(const exec::Backend&,                    \
                                    const CsrMatrix<T>&, std::span<const T>, \
                                    std::span<T>, const binning::BinSet&,    \
                                    const Plan&, prof::RunProfile*,          \
                                    fmt::PlanLayouts<T>*);                   \
  extern template void execute_plan_batch(const exec::Backend&,              \
                                          const CsrMatrix<T>&,               \
                                          std::span<const T>, std::span<T>,  \
                                          int, const binning::BinSet&,       \
                                          const Plan&, prof::RunProfile*,    \
                                          fmt::PlanLayouts<T>*);             \
  extern template void execute_plan_spmm(const exec::Backend&,               \
                                         const CsrMatrix<T>&,                \
                                         std::span<const T>, std::span<T>,   \
                                         int, const binning::BinSet&,        \
                                         const Plan&, prof::RunProfile*,     \
                                         fmt::PlanLayouts<T>*);              \
  extern template TuneResult exhaustive_tune(                                \
      const exec::Backend&, const CsrMatrix<T>&, std::span<const T>,         \
      const CandidatePools&, const ExhaustiveOptions&);                      \
  extern template void execute_plan(const clsim::Engine&,                    \
                                    const CsrMatrix<T>&, std::span<const T>, \
                                    std::span<T>, const binning::BinSet&,    \
                                    const Plan&);                            \
  extern template void execute_plan(const clsim::Engine&,                    \
                                    const CsrMatrix<T>&, std::span<const T>, \
                                    std::span<T>, const binning::BinSet&,    \
                                    const Plan&, prof::RunProfile*);         \
  extern template void execute_plan_batch(const clsim::Engine&,              \
                                          const CsrMatrix<T>&,               \
                                          std::span<const T>, std::span<T>,  \
                                          int, const binning::BinSet&,       \
                                          const Plan&, prof::RunProfile*);   \
  extern template TuneResult exhaustive_tune(                                \
      const clsim::Engine&, const CsrMatrix<T>&, std::span<const T>,         \
      const CandidatePools&, const ExhaustiveOptions&);
SPMV_EXHAUSTIVE_EXTERN(float)
SPMV_EXHAUSTIVE_EXTERN(double)
#undef SPMV_EXHAUSTIVE_EXTERN

}  // namespace spmv::core

// Persistence for the trained two-stage model: a single text file holding
// the candidate pools, both decision trees, and both rule sets, so a model
// trained offline (bench/train_accuracy or examples) can be shipped with
// an application and loaded at run time.
#pragma once

#include <iosfwd>
#include <string>

#include "core/predictor.hpp"

namespace spmv::core {

void save_model(std::ostream& out, const TrainedModel& model);
TrainedModel load_model(std::istream& in);

/// File wrappers; throw std::runtime_error on I/O failure.
void save_model_file(const std::string& path, const TrainedModel& model);
TrainedModel load_model_file(const std::string& path);

}  // namespace spmv::core

#include "core/hetero.hpp"

#include <omp.h>

#include "exec/clsim_backend.hpp"

namespace spmv::core {

template <typename T>
void spmv_cpu_binned(const CsrMatrix<T>& a, std::span<const T> x,
                     std::span<T> y, std::span<const index_t> vrows,
                     index_t unit, int threads) {
  const auto row_ptr = a.row_ptr();
  const auto col_idx = a.col_idx();
  const auto vals = a.vals();
  const index_t m = a.rows();
  const auto count = static_cast<std::int64_t>(vrows.size());

#pragma omp parallel for schedule(dynamic, 8) if (count > 8) \
    num_threads(threads > 0 ? threads : omp_get_max_threads())
  for (std::int64_t v = 0; v < count; ++v) {
    const index_t lo = vrows[static_cast<std::size_t>(v)] * unit;
    const index_t hi = std::min<index_t>(lo + unit, m);
    for (index_t r = lo; r < hi; ++r) {
      T sum{};
      for (offset_t j = row_ptr[static_cast<std::size_t>(r)];
           j < row_ptr[static_cast<std::size_t>(r) + 1]; ++j) {
        sum += vals[static_cast<std::size_t>(j)] *
               x[static_cast<std::size_t>(col_idx[static_cast<std::size_t>(j)])];
      }
      y[static_cast<std::size_t>(r)] = sum;
    }
  }
}

template <typename T>
HeteroAutoSpmv<T>::HeteroAutoSpmv(const CsrMatrix<T>& a,
                                  const Predictor& predictor,
                                  const HeteroOptions& options,
                                  const clsim::Engine& engine)
    : a_(a), engine_(engine), options_(options) {
  const auto stats = compute_row_stats(a);
  const auto choice = predictor.predict_unit(stats);
  plan_.unit = choice.unit;
  plan_.single_bin = choice.single_bin;
  bins_ = bins_for_plan(a, plan_);
  for (int b : bins_.occupied_bins()) {
    plan_.bin_kernels.push_back(
        {b, predictor.predict_kernel(stats, plan_.unit, b)});
    // bin_id approximates the average row length of the bin's virtual rows
    // (workload / U); long-row bins go to the latency executor.
    if (b >= options_.gpu_row_threshold) {
      cpu_bins_.push_back(b);
    } else {
      gpu_bins_.push_back(b);
    }
  }
}

template <typename T>
void HeteroAutoSpmv<T>::run(std::span<const T> x, std::span<T> y) const {
  const exec::ClsimBackend backend(engine_);
  for (int b : gpu_bins_) {
    backend.run_binned(plan_.kernel_for(b), a_, x, y, bins_.bin(b),
                       bins_.unit());
  }
  for (int b : cpu_bins_) {
    spmv_cpu_binned(a_, x, y, bins_.bin(b), bins_.unit(),
                    options_.cpu_threads);
  }
}

template class HeteroAutoSpmv<float>;
template class HeteroAutoSpmv<double>;
template void spmv_cpu_binned(const CsrMatrix<float>&, std::span<const float>,
                              std::span<float>, std::span<const index_t>,
                              index_t, int);
template void spmv_cpu_binned(const CsrMatrix<double>&,
                              std::span<const double>, std::span<double>,
                              std::span<const index_t>, index_t, int);

}  // namespace spmv::core

#include "core/tuner.hpp"

#include <memory>
#include <stdexcept>
#include <utility>

namespace spmv::core {

template <typename T>
exec::ExecContext Tuner<T>::resolve_context() const {
  // backend(instance) > backend(kind) > plan().backend > clsim; an
  // explicit engine() only matters when clsim wins the resolution.
  if (backend_instance_ != nullptr)
    return exec::ExecContext(std::shared_ptr<const exec::Backend>(
        std::shared_ptr<const exec::Backend>(), backend_instance_));
  const exec::BackendKind kind =
      backend_kind_.has_value() ? *backend_kind_
      : plan_.has_value()      ? plan_->backend
                               : exec::BackendKind::Clsim;
  if (kind == exec::BackendKind::Clsim && engine_ != nullptr)
    return exec::ExecContext(exec::wrap_engine(*engine_));
  return exec::ExecContext(exec::shared_backend(kind));
}

template <typename T>
AutoSpmv<T> Tuner<T>::build() const {
  exec::ExecContext ctx = resolve_context();

  if (plan_.has_value()) {
    if (scheme_.has_value() || unit_.has_value())
      throw std::invalid_argument(
          "Tuner: plan() already fixes the binning; scheme()/unit() would "
          "be ignored");
    return AutoSpmv<T>(*a_, *plan_, std::move(ctx), profile_, format_policy_);
  }
  if (predictor_ == nullptr)
    throw std::logic_error("Tuner: predictor() or plan() required");

  // Resolve scheme/unit overrides into a forced granularity choice; no
  // override leaves the prediction to the predictor.
  std::optional<Predictor::UnitChoice> forced;
  const auto kind = scheme_.value_or(binning::SchemeKind::Coarse);
  switch (kind) {
    case binning::SchemeKind::Coarse:
      if (unit_.has_value()) forced = Predictor::UnitChoice{*unit_, false};
      break;
    case binning::SchemeKind::Fine:
      if (unit_.has_value() && *unit_ != 1)
        throw std::invalid_argument("Tuner: fine scheme implies unit 1");
      forced = Predictor::UnitChoice{1, false};
      break;
    case binning::SchemeKind::SingleBin:
      forced = Predictor::UnitChoice{unit_.value_or(1), true};
      break;
    case binning::SchemeKind::Hybrid:
      throw std::invalid_argument(
          "Tuner: the hybrid scheme needs per-part plans; use "
          "binning::apply_scheme directly");
  }
  return AutoSpmv<T>(*a_, *predictor_, std::move(ctx), profile_, forced,
                     format_mode_, format_policy_);
}

template class Tuner<float>;
template class Tuner<double>;

}  // namespace spmv::core

// AutoSpmv — the library's headline runtime type (paper Figure 3, black
// arrows): given a CSR matrix and a predictor, it extracts the Table-I
// features, selects a binning granularity, bins the matrix, selects a
// kernel per occupied bin, and executes SpMV through the plan.
//
// Typical use:
//   auto model = spmv::core::load_model("model.txt");
//   spmv::core::ModelPredictor pred(std::move(model));
//   spmv::core::AutoSpmv<float> spmv(a, pred);
//   spmv.run(x, y);  // repeatedly; the plan is built once
#pragma once

#include <span>

#include "binning/binning.hpp"
#include "clsim/engine.hpp"
#include "core/exhaustive.hpp"
#include "core/plan.hpp"
#include "core/predictor.hpp"
#include "sparse/csr.hpp"
#include "sparse/matrix_stats.hpp"

namespace spmv::core {

template <typename T>
class AutoSpmv {
 public:
  /// Plan SpMV for `a`: feature extraction + stage-1/stage-2 prediction +
  /// binning. `a` must outlive this object; `predictor` and `engine` are
  /// only used during construction and run() respectively.
  AutoSpmv(const CsrMatrix<T>& a, const Predictor& predictor,
           const clsim::Engine& engine = clsim::default_engine());

  /// Build an AutoSpmv around an externally produced plan (e.g. the
  /// exhaustive tuner's oracle plan).
  AutoSpmv(const CsrMatrix<T>& a, Plan plan,
           const clsim::Engine& engine = clsim::default_engine());

  /// y = A*x through the planned per-bin kernels.
  void run(std::span<const T> x, std::span<T> y) const;

  [[nodiscard]] const Plan& plan() const { return plan_; }
  [[nodiscard]] const binning::BinSet& bins() const { return bins_; }
  [[nodiscard]] const RowStats& stats() const { return stats_; }

 private:
  const CsrMatrix<T>& a_;
  const clsim::Engine& engine_;
  RowStats stats_;
  Plan plan_;
  binning::BinSet bins_;
};

extern template class AutoSpmv<float>;
extern template class AutoSpmv<double>;

}  // namespace spmv::core

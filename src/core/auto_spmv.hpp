// AutoSpmv — the library's headline runtime type (paper Figure 3, black
// arrows): given a CSR matrix and a predictor, it extracts the Table-I
// features, selects a binning granularity, bins the matrix, selects a
// kernel per occupied bin, and executes SpMV through the plan.
//
// Construction goes through the spmv::core::Tuner builder (tuner.hpp),
// which also attaches telemetry:
//   auto model = spmv::core::load_model("model.txt");
//   spmv::core::ModelPredictor pred(std::move(model));
//   spmv::prof::RunProfile profile;
//   auto spmv = spmv::core::Tuner(a).predictor(pred).profile(&profile).build();
//   spmv.run(x, y);  // repeatedly; the plan is built once
#pragma once

#include <optional>
#include <span>

#include "binning/binning.hpp"
#include "clsim/engine.hpp"
#include "core/exhaustive.hpp"
#include "exec/backend.hpp"
#include "core/plan.hpp"
#include "core/predictor.hpp"
#include "prof/profile.hpp"
#include "sparse/csr.hpp"
#include "sparse/matrix_stats.hpp"

namespace spmv::core {

template <typename T>
class Tuner;

template <typename T>
class AutoSpmv {
 public:
  /// y = A*x through the planned per-bin kernels. Records into the
  /// profile attached at build time, if any.
  void run(std::span<const T> x, std::span<T> y) const {
    run(x, y, profile_);
  }

  /// y = A*x, recording plan execution telemetry (per-bin kernel wall
  /// time, engine launch-counter deltas) into `profile`. A null profile
  /// skips all recording; repeated calls accumulate (see RunProfile).
  void run(std::span<const T> x, std::span<T> y,
           prof::RunProfile* profile) const;

  /// Batched Y = A·X: `batch` input vectors stored column-major in `x`
  /// (each a.cols() long; see kernels::batch_column), results in the
  /// matching columns of `y` (each a.rows() long). The per-bin plan and —
  /// for kernels with a native batched variant — the CSR traversal are
  /// shared across the whole batch; the rest loop per vector.
  void run_batch(std::span<const T> x, std::span<T> y, int batch) const {
    run_batch(x, y, batch, profile_);
  }

  /// Batched run recording telemetry into `profile` (one run() sample for
  /// the whole batch).
  void run_batch(std::span<const T> x, std::span<T> y, int batch,
                 prof::RunProfile* profile) const;

  [[nodiscard]] const Plan& plan() const { return plan_; }
  [[nodiscard]] const binning::BinSet& bins() const { return bins_; }
  [[nodiscard]] const RowStats& stats() const { return stats_; }
  /// The execution backend runs go through; plan().backend matches its
  /// kind (the plan is stamped at construction).
  [[nodiscard]] const exec::Backend& backend() const {
    return ctx_.backend();
  }
  [[nodiscard]] const exec::ExecContext& context() const { return ctx_; }
  /// Profile attached at build time (null when none).
  [[nodiscard]] prof::RunProfile* profile() const { return profile_; }

 private:
  friend class Tuner<T>;

  /// Full predictor-driven constructor: optionally records plan-stage
  /// timings into `profile` and honours a forced granularity choice (the
  /// Tuner's scheme/unit overrides).
  AutoSpmv(const CsrMatrix<T>& a, const Predictor& predictor,
           exec::ExecContext ctx, prof::RunProfile* profile,
           std::optional<Predictor::UnitChoice> forced);

  /// Full external-plan constructor.
  AutoSpmv(const CsrMatrix<T>& a, Plan plan, exec::ExecContext ctx,
           prof::RunProfile* profile);

  void describe_profile() const;

  const CsrMatrix<T>& a_;
  exec::ExecContext ctx_;
  prof::RunProfile* profile_ = nullptr;
  RowStats stats_;
  Plan plan_;
  binning::BinSet bins_;
};

extern template class AutoSpmv<float>;
extern template class AutoSpmv<double>;

}  // namespace spmv::core

// AutoSpmv — the library's headline runtime type (paper Figure 3, black
// arrows): given a CSR matrix and a predictor, it extracts the Table-I
// features, selects a binning granularity, bins the matrix, selects a
// kernel per occupied bin, and executes SpMV through the plan.
//
// Construction goes through the spmv::core::Tuner builder (tuner.hpp),
// which also attaches telemetry:
//   auto model = spmv::core::load_model("model.txt");
//   spmv::core::ModelPredictor pred(std::move(model));
//   spmv::prof::RunProfile profile;
//   auto spmv = spmv::core::Tuner(a).predictor(pred).profile(&profile).build();
//   spmv.run(x, y);  // repeatedly; the plan is built once
#pragma once

#include <memory>
#include <optional>
#include <span>

#include "binning/binning.hpp"
#include "clsim/engine.hpp"
#include "core/exhaustive.hpp"
#include "exec/backend.hpp"
#include "core/plan.hpp"
#include "core/predictor.hpp"
#include "fmt/plan_layouts.hpp"
#include "prof/profile.hpp"
#include "sparse/csr.hpp"
#include "sparse/matrix_stats.hpp"

namespace spmv::core {

template <typename T>
class Tuner;

template <typename T>
class AutoSpmv {
 public:
  /// y = A*x through the planned per-bin kernels. Records into the
  /// profile attached at build time, if any.
  void run(std::span<const T> x, std::span<T> y) const {
    run(x, y, profile_);
  }

  /// y = A*x, recording plan execution telemetry (per-bin kernel wall
  /// time, engine launch-counter deltas) into `profile`. A null profile
  /// skips all recording; repeated calls accumulate (see RunProfile).
  void run(std::span<const T> x, std::span<T> y,
           prof::RunProfile* profile) const;

  /// Batched Y = A·X: `batch` input vectors stored column-major in `x`
  /// (each a.cols() long; see kernels::batch_column), results in the
  /// matching columns of `y` (each a.rows() long). The per-bin plan and —
  /// for kernels with a native batched variant — the CSR traversal are
  /// shared across the whole batch; the rest loop per vector.
  void run_batch(std::span<const T> x, std::span<T> y, int batch) const {
    run_batch(x, y, batch, profile_);
  }

  /// Batched run recording telemetry into `profile` (one run() sample for
  /// the whole batch).
  void run_batch(std::span<const T> x, std::span<T> y, int batch,
                 prof::RunProfile* profile) const;

  /// True SpMM Y = A·X for `width` dense right-hand sides (column-major,
  /// same vector layout as run_batch). CSR bins go through the backend's
  /// blocked one-traversal run_spmm kernels — or its counted per-column
  /// fallback when the backend has none — instead of run_batch's capped
  /// batched variants; per output column the result is bit-identical to
  /// `width` run() calls (see core::execute_plan_spmm).
  void run_spmm(std::span<const T> x, std::span<T> y, int width) const {
    run_spmm(x, y, width, profile_);
  }

  /// SpMM recording telemetry into `profile` (one run() sample for the
  /// whole block, plus the prof::spmm_fallback_columns delta).
  void run_spmm(std::span<const T> x, std::span<T> y, int width,
                prof::RunProfile* profile) const;

  [[nodiscard]] const Plan& plan() const { return plan_; }
  [[nodiscard]] const binning::BinSet& bins() const { return bins_; }
  [[nodiscard]] const RowStats& stats() const { return stats_; }
  /// The execution backend runs go through; plan().backend matches its
  /// kind (the plan is stamped at construction).
  [[nodiscard]] const exec::Backend& backend() const {
    return ctx_.backend();
  }
  [[nodiscard]] const exec::ExecContext& context() const { return ctx_; }
  /// Profile attached at build time (null when none).
  [[nodiscard]] prof::RunProfile* profile() const { return profile_; }
  /// The per-bin layout cache, or null when every bin executes from CSR
  /// (no non-CSR formats in the plan, or the backend cannot run layouts).
  /// Shared across copies of this runtime so reuse counts — the
  /// amortization signal — accumulate over the runtime's lifetime.
  [[nodiscard]] fmt::PlanLayouts<T>* layouts() const { return layouts_.get(); }

 private:
  friend class Tuner<T>;

  /// Full predictor-driven constructor: optionally records plan-stage
  /// timings into `profile`, honours a forced granularity choice (the
  /// Tuner's scheme/unit overrides), and — under FormatMode::Auto on a
  /// format-capable backend — stamps each bin with the estimator's format.
  AutoSpmv(const CsrMatrix<T>& a, const Predictor& predictor,
           exec::ExecContext ctx, prof::RunProfile* profile,
           std::optional<Predictor::UnitChoice> forced,
           fmt::FormatMode format_mode, fmt::AmortizationPolicy format_policy);

  /// Full external-plan constructor (the plan's recorded per-bin formats
  /// are authoritative; format_mode only matters for predictor builds).
  AutoSpmv(const CsrMatrix<T>& a, Plan plan, exec::ExecContext ctx,
           prof::RunProfile* profile, fmt::AmortizationPolicy format_policy);

  void describe_profile() const;
  void init_layouts(fmt::AmortizationPolicy policy);

  const CsrMatrix<T>& a_;
  exec::ExecContext ctx_;
  prof::RunProfile* profile_ = nullptr;
  RowStats stats_;
  Plan plan_;
  binning::BinSet bins_;
  std::shared_ptr<fmt::PlanLayouts<T>> layouts_;
};

extern template class AutoSpmv<float>;
extern template class AutoSpmv<double>;

}  // namespace spmv::core

#include "core/auto_spmv.hpp"

#include <utility>

#include "fmt/estimate.hpp"
#include "trace/trace.hpp"

namespace spmv::core {

template <typename T>
AutoSpmv<T>::AutoSpmv(const CsrMatrix<T>& a, const Predictor& predictor,
                      exec::ExecContext ctx, prof::RunProfile* profile,
                      std::optional<Predictor::UnitChoice> forced,
                      fmt::FormatMode format_mode,
                      fmt::AmortizationPolicy format_policy)
    : a_(a), ctx_(std::move(ctx)), profile_(profile) {
  prof::PlanTiming* pt = profile != nullptr ? &profile->plan_timing : nullptr;
  {
    trace::TraceSpan span("plan-features", "plan");
    prof::ScopedTimer t(pt != nullptr ? &pt->features_s : nullptr);
    stats_ = compute_row_stats(a);
  }
  Predictor::UnitChoice choice;
  {
    trace::TraceSpan span("plan-predict-unit", "plan");
    prof::ScopedTimer t(pt != nullptr ? &pt->predict_s : nullptr);
    choice = forced.has_value() ? *forced : predictor.predict_unit(stats_);
  }
  plan_.unit = choice.unit;
  plan_.single_bin = choice.single_bin;
  plan_.backend = ctx_.kind();
  {
    trace::TraceSpan span("plan-binning", "plan");
    prof::ScopedTimer t(pt != nullptr ? &pt->binning_s : nullptr);
    bins_ = bins_for_plan(a, plan_);
  }
  {
    trace::TraceSpan span("plan-predict-kernels", "plan");
    prof::ScopedTimer t(pt != nullptr ? &pt->predict_s : nullptr);
    for (int b : bins_.occupied_bins()) {
      plan_.bin_kernels.push_back(
          {b, predictor.predict_kernel(stats_, plan_.unit, b)});
    }
  }
  // Per-bin format estimation: only under the auto mode and only when the
  // resolved backend can execute layouts — a CSR-only backend keeps a
  // CSR-everywhere plan, so differential comparisons stay meaningful.
  if (format_mode == fmt::FormatMode::Auto &&
      ctx_.backend().supports_formats()) {
    trace::TraceSpan span("plan-estimate-formats", "plan");
    prof::ScopedTimer t(pt != nullptr ? &pt->predict_s : nullptr);
    for (BinPlan& bp : plan_.bin_kernels) {
      const auto f =
          fmt::compute_bin_features(a, bins_.bin(bp.bin_id), plan_.unit);
      bp.format = fmt::estimate_bin_format(f);
    }
  }
  init_layouts(format_policy);
  describe_profile();
}

template <typename T>
AutoSpmv<T>::AutoSpmv(const CsrMatrix<T>& a, Plan plan, exec::ExecContext ctx,
                      prof::RunProfile* profile,
                      fmt::AmortizationPolicy format_policy)
    : a_(a), ctx_(std::move(ctx)), profile_(profile), plan_(std::move(plan)) {
  plan_.normalize();  // external plans may violate the ascending invariant
  // The context is the resolved truth (an explicit .backend() override
  // beats the plan's recorded kind); keep the plan consistent with it.
  plan_.backend = ctx_.kind();
  prof::PlanTiming* pt = profile != nullptr ? &profile->plan_timing : nullptr;
  {
    trace::TraceSpan span("plan-features", "plan");
    prof::ScopedTimer t(pt != nullptr ? &pt->features_s : nullptr);
    stats_ = compute_row_stats(a);
  }
  {
    trace::TraceSpan span("plan-binning", "plan");
    prof::ScopedTimer t(pt != nullptr ? &pt->binning_s : nullptr);
    bins_ = bins_for_plan(a, plan_);
  }
  init_layouts(format_policy);
  describe_profile();
}

template <typename T>
void AutoSpmv<T>::init_layouts(fmt::AmortizationPolicy policy) {
  if (plan_.uses_formats() && ctx_.backend().supports_formats())
    layouts_ = std::make_shared<fmt::PlanLayouts<T>>(policy);
}

template <typename T>
void AutoSpmv<T>::describe_profile() const {
  if (profile_ == nullptr) return;
  profile_->rows = stats_.rows;
  profile_->cols = stats_.cols;
  profile_->nnz = stats_.nnz;
  profile_->plan = plan_.to_string();
}

template <typename T>
void AutoSpmv<T>::run(std::span<const T> x, std::span<T> y,
                      prof::RunProfile* profile) const {
  execute_plan(ctx_.backend(), a_, x, y, bins_, plan_, profile,
               layouts_.get());
}

template <typename T>
void AutoSpmv<T>::run_batch(std::span<const T> x, std::span<T> y, int batch,
                            prof::RunProfile* profile) const {
  execute_plan_batch(ctx_.backend(), a_, x, y, batch, bins_, plan_, profile,
                     layouts_.get());
}

template <typename T>
void AutoSpmv<T>::run_spmm(std::span<const T> x, std::span<T> y, int width,
                           prof::RunProfile* profile) const {
  execute_plan_spmm(ctx_.backend(), a_, x, y, width, bins_, plan_, profile,
                    layouts_.get());
}

template class AutoSpmv<float>;
template class AutoSpmv<double>;

}  // namespace spmv::core

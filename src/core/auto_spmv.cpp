#include "core/auto_spmv.hpp"

namespace spmv::core {

template <typename T>
AutoSpmv<T>::AutoSpmv(const CsrMatrix<T>& a, const Predictor& predictor,
                      const clsim::Engine& engine)
    : a_(a), engine_(engine), stats_(compute_row_stats(a)) {
  const auto choice = predictor.predict_unit(stats_);
  plan_.unit = choice.unit;
  plan_.single_bin = choice.single_bin;
  bins_ = bins_for_plan(a, plan_);
  for (int b : bins_.occupied_bins()) {
    plan_.bin_kernels.push_back(
        {b, predictor.predict_kernel(stats_, plan_.unit, b)});
  }
}

template <typename T>
AutoSpmv<T>::AutoSpmv(const CsrMatrix<T>& a, Plan plan,
                      const clsim::Engine& engine)
    : a_(a),
      engine_(engine),
      stats_(compute_row_stats(a)),
      plan_(std::move(plan)),
      bins_(bins_for_plan(a, plan_)) {}

template <typename T>
void AutoSpmv<T>::run(std::span<const T> x, std::span<T> y) const {
  execute_plan(engine_, a_, x, y, bins_, plan_);
}

template class AutoSpmv<float>;
template class AutoSpmv<double>;

}  // namespace spmv::core

// Heterogeneous bin scheduling — the paper's §VI future-work proposal:
// "schedule the execution of the small sized but high volume bins onto the
// throughput-oriented processors and the large sized but low volume bins
// onto the latency-oriented processors".
//
// HeteroAutoSpmv partitions a plan's occupied bins between two executors:
// the throughput device (the clsim work-group engine — the APU's GPU half)
// and the latency device (direct row-parallel CPU execution). Bins whose
// average row workload is below `gpu_row_threshold` keep their pool kernel
// on the throughput engine; the long-row bins run on the latency executor,
// which processes each covered row with a plain sequential inner loop
// (strong single-thread performance, no SIMT padding waste).
//
// The ablation bench (bench/ablation_hetero) measures this split against
// the homogeneous plan.
#pragma once

#include <span>

#include "core/auto_spmv.hpp"

namespace spmv::core {

struct HeteroOptions {
  /// Bins with bin_id >= this (i.e. avg row length >= threshold) go to the
  /// latency-oriented executor.
  int gpu_row_threshold = 64;
  /// Threads for the latency executor; 0 = all hardware threads.
  int cpu_threads = 0;
};

template <typename T>
class HeteroAutoSpmv {
 public:
  /// Plan with `predictor`, then split bins by `options`.
  HeteroAutoSpmv(const CsrMatrix<T>& a, const Predictor& predictor,
                 const HeteroOptions& options = {},
                 const clsim::Engine& engine = clsim::default_engine());

  /// y = A*x: throughput-device bins via their pool kernels, latency-device
  /// bins via row-parallel CPU loops.
  void run(std::span<const T> x, std::span<T> y) const;

  [[nodiscard]] const Plan& plan() const { return plan_; }
  /// Bin ids assigned to the throughput (GPU-like) engine.
  [[nodiscard]] const std::vector<int>& gpu_bins() const { return gpu_bins_; }
  /// Bin ids assigned to the latency (CPU) executor.
  [[nodiscard]] const std::vector<int>& cpu_bins() const { return cpu_bins_; }

 private:
  const CsrMatrix<T>& a_;
  const clsim::Engine& engine_;
  HeteroOptions options_;
  Plan plan_;
  binning::BinSet bins_;
  std::vector<int> gpu_bins_;
  std::vector<int> cpu_bins_;
};

/// Latency-executor primitive: row-parallel CPU SpMV restricted to the
/// rows covered by `vrows` at granularity `unit` (rows outside untouched).
template <typename T>
void spmv_cpu_binned(const CsrMatrix<T>& a, std::span<const T> x,
                     std::span<T> y, std::span<const index_t> vrows,
                     index_t unit, int threads = 0);

extern template class HeteroAutoSpmv<float>;
extern template class HeteroAutoSpmv<double>;
extern template void spmv_cpu_binned(const CsrMatrix<float>&,
                                     std::span<const float>, std::span<float>,
                                     std::span<const index_t>, index_t, int);
extern template void spmv_cpu_binned(const CsrMatrix<double>&,
                                     std::span<const double>,
                                     std::span<double>,
                                     std::span<const index_t>, index_t, int);

}  // namespace spmv::core

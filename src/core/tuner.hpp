// Tuner — the builder facade for constructing an auto-tuned SpMV runtime.
// Replaces the two overloaded AutoSpmv constructors with one fluent entry
// point that also carries the optional knobs (engine, binning scheme,
// forced granularity, telemetry sink):
//
//   spmv::prof::RunProfile profile;
//   auto spmv = spmv::core::Tuner(a)
//                   .predictor(pred)
//                   .engine(engine)
//                   .scheme(binning::SchemeKind::Coarse)
//                   .profile(&profile)
//                   .build();
//   spmv.run(x, y);  // per-bin timings accumulate into `profile`
//
// Exactly one of predictor() or plan() must be set before build().
#pragma once

#include <optional>

#include "binning/schemes.hpp"
#include "core/auto_spmv.hpp"
#include "core/plan.hpp"
#include "core/predictor.hpp"
#include "exec/backend.hpp"
#include "prof/profile.hpp"
#include "sparse/csr.hpp"

namespace spmv::core {

template <typename T>
class Tuner {
 public:
  /// Start configuring a run over `a`. The matrix (and every reference
  /// passed below) must outlive the built AutoSpmv.
  explicit Tuner(const CsrMatrix<T>& a) : a_(&a) {}

  /// Strategy selector that chooses granularity and per-bin kernels.
  Tuner& predictor(const Predictor& p) {
    predictor_ = &p;
    return *this;
  }

  /// Execution engine (defaults to clsim::default_engine()). Only
  /// meaningful when the resolved backend is clsim; a non-clsim backend()
  /// choice wins over engine().
  Tuner& engine(const clsim::Engine& e) {
    engine_ = &e;
    return *this;
  }

  /// Execute on a specific backend instance, which must outlive the built
  /// AutoSpmv. Overrides backend(kind) and the plan's recorded backend.
  Tuner& backend(const exec::Backend& b) {
    backend_instance_ = &b;
    return *this;
  }

  /// Execute on the shared instance of `kind`. Overrides the plan's
  /// recorded backend. Resolution order at build(): backend(instance) >
  /// backend(kind) > plan().backend > clsim.
  Tuner& backend(exec::BackendKind kind) {
    backend_kind_ = kind;
    return *this;
  }

  /// Use an externally produced plan (e.g. the exhaustive tuner's oracle
  /// plan) instead of predicting one.
  Tuner& plan(Plan p) {
    plan_ = std::move(p);
    return *this;
  }

  /// Override the binning scheme the predictor would choose: Coarse keeps
  /// the predictor's granularity (the default), Fine forces granularity 1,
  /// SingleBin forces the paper's single-bin strategy. Hybrid needs
  /// per-part plans and is rejected at build() — use
  /// binning::apply_scheme directly for the ablation path.
  Tuner& scheme(binning::SchemeKind kind) {
    scheme_ = kind;
    return *this;
  }

  /// Force the coarse binning granularity U (kernels are still predicted
  /// per bin).
  Tuner& unit(index_t u) {
    unit_ = u;
    return *this;
  }

  /// Per-bin physical-format policy (the `--format csr|auto` knob). Csr —
  /// the default — pins every bin to the shared CSR arrays. Auto lets the
  /// fmt estimator stamp predictor-built plans with per-bin formats; it
  /// only takes effect when the resolved backend supports formats. A plan
  /// passed via plan() keeps its recorded formats either way.
  Tuner& formats(fmt::FormatMode mode) {
    format_mode_ = mode;
    return *this;
  }

  /// When bin layouts are materialized (see fmt::AmortizationPolicy);
  /// defaults to lazy amortized building. Tests and shadow trials set
  /// `.eager = true` to build on first touch.
  Tuner& format_policy(fmt::AmortizationPolicy policy) {
    format_policy_ = policy;
    return *this;
  }

  /// Telemetry sink: plan-stage timings are recorded at build() and every
  /// run() accumulates per-bin kernel timings and engine-counter deltas.
  /// Pass nullptr (the default) for a telemetry-free runtime.
  Tuner& profile(prof::RunProfile* p) {
    profile_ = p;
    return *this;
  }

  /// Validate the configuration and construct the runtime. Throws
  /// std::logic_error when neither predictor nor plan is set and
  /// std::invalid_argument for unsupported scheme combinations.
  [[nodiscard]] AutoSpmv<T> build() const;

 private:
  /// Resolve the backend/engine knobs (and the plan's recorded backend)
  /// into the context the runtime will execute on.
  [[nodiscard]] exec::ExecContext resolve_context() const;

  const CsrMatrix<T>* a_;
  const Predictor* predictor_ = nullptr;
  const clsim::Engine* engine_ = nullptr;
  const exec::Backend* backend_instance_ = nullptr;
  std::optional<exec::BackendKind> backend_kind_;
  std::optional<Plan> plan_;
  std::optional<binning::SchemeKind> scheme_;
  std::optional<index_t> unit_;
  fmt::FormatMode format_mode_ = fmt::FormatMode::Csr;
  fmt::AmortizationPolicy format_policy_;
  prof::RunProfile* profile_ = nullptr;
};

extern template class Tuner<float>;
extern template class Tuner<double>;

}  // namespace spmv::core

// Offline training (paper Figure 3, green arrows): run the exhaustive
// tuner over a corpus of matrices, harvest (features -> best U) and
// (features+U+binId -> best kernel) samples, train the two-stage model,
// and report train/test error rates on a per-matrix 75/25 split.
#pragma once

#include <cstdint>
#include <vector>

#include "clsim/engine.hpp"
#include "core/exhaustive.hpp"
#include "core/predictor.hpp"
#include "gen/corpus.hpp"
#include "ml/dataset.hpp"

namespace spmv::core {

struct TrainerOptions {
  CandidatePools pools = default_pools();
  /// Label harvesting: more repetitions and a wide tie band make the
  /// "best" labels stable — candidates within 20% are considered
  /// equivalent and resolve to the coarsest granularity / narrowest
  /// kernel, which is what makes the mapping learnable (and is
  /// performance-safe: the tie band bounds the cost of the canonical
  /// choice).
  ExhaustiveOptions tune{
      .measure = {.warmup = 1, .reps = 4, .max_total_s = 0.25},
      .tie_tolerance = 0.20};
  /// Fraction of *matrices* (not samples) used for training; the paper
  /// uses 75%.
  double train_frac = 0.75;
  std::uint64_t split_seed = 7;
  /// Emit stage-2 samples under every candidate U (more data) instead of
  /// only the winning U.
  bool stage2_all_units = true;
  ml::TreeParams tree{};
  /// Classify through extracted rule sets (the C5.0 artifact) rather than
  /// the raw trees.
  bool use_rulesets = true;
  /// Optional telemetry sink: train_model appends one CandidateCost per
  /// corpus matrix (wall time of its exhaustive harvest, stage-2 samples
  /// harvested). Set tune.profile as well for per-granularity costs.
  prof::RunProfile* profile = nullptr;
};

struct TrainReport {
  std::size_t matrices = 0;
  std::size_t stage1_train_samples = 0;
  std::size_t stage1_test_samples = 0;
  std::size_t stage2_train_samples = 0;
  std::size_t stage2_test_samples = 0;
  double stage1_train_error = 0.0;
  double stage1_test_error = 0.0;  ///< paper observes ~5%
  double stage2_train_error = 0.0;
  double stage2_test_error = 0.0;  ///< paper observes up to ~15%
};

/// Harvested labels for one matrix (exposed so benches can cache them).
struct MatrixLabels {
  RowStats stats;
  int best_unit_class = 0;  ///< index into pools.unit_class_names()
  /// (unit, bin_id, kernel class) triples.
  struct Stage2Label {
    index_t unit;
    int bin_id;
    int kernel_class;
  };
  std::vector<Stage2Label> stage2;
};

/// Measure one matrix and harvest its labels.
template <typename T>
MatrixLabels harvest_labels(const clsim::Engine& engine, const CsrMatrix<T>& a,
                            const TrainerOptions& opts);

/// Full pipeline: tune every corpus matrix, split per-matrix, train both
/// stages, fill `report` (optional).
TrainedModel train_model(const std::vector<gen::CorpusSpec>& specs,
                         const TrainerOptions& opts,
                         const clsim::Engine& engine,
                         TrainReport* report = nullptr);

extern template MatrixLabels harvest_labels(const clsim::Engine&,
                                            const CsrMatrix<float>&,
                                            const TrainerOptions&);
extern template MatrixLabels harvest_labels(const clsim::Engine&,
                                            const CsrMatrix<double>&,
                                            const TrainerOptions&);

}  // namespace spmv::core

// Plan (de)serialization for the persistent plan store (spmv::adapt): a
// Plan as a small JSON object, round-trippable through prof::Json. Kernels
// are stored by registry display name so artifacts stay readable and stay
// valid if the enum's numeric values ever shift.
#pragma once

#include "core/plan.hpp"
#include "prof/json.hpp"

namespace spmv::core {

/// Serialize `plan` (unit, single_bin, revision, tuned-U provenance,
/// per-bin kernels by name).
[[nodiscard]] prof::Json plan_to_json(const Plan& plan);

/// Inverse of plan_to_json. Throws std::runtime_error on missing fields or
/// semantically invalid values (unit <= 0, out-of-range or duplicate bin
/// ids, negative revision) and std::invalid_argument on unknown kernel
/// names; the result is normalize()d so kernel_for's binary-search
/// invariant holds even for hand-edited artifacts. Provenance fields
/// (unit_tuned / predicted_unit) are optional, so pre-provenance store
/// files keep loading.
[[nodiscard]] Plan plan_from_json(const prof::Json& j);

}  // namespace spmv::core

// Plan (de)serialization for the persistent plan store (spmv::adapt): a
// Plan as a small JSON object, round-trippable through prof::Json. Kernels
// are stored by registry display name so artifacts stay readable and stay
// valid if the enum's numeric values ever shift.
#pragma once

#include "core/plan.hpp"
#include "prof/json.hpp"

namespace spmv::core {

/// Serialize `plan` (unit, single_bin, revision, tuned-U provenance,
/// execution backend, per-bin kernels by name).
[[nodiscard]] prof::Json plan_to_json(const Plan& plan);

/// Inverse of plan_to_json. Throws std::runtime_error on missing fields or
/// semantically invalid values (unit <= 0, out-of-range or duplicate bin
/// ids, negative revision, unknown kernel or backend names); the result is
/// normalize()d so kernel_for's binary-search invariant holds even for
/// hand-edited artifacts. Provenance fields (unit_tuned / predicted_unit)
/// and the backend are optional, so pre-backend store files keep loading
/// (backend defaults to clsim).
[[nodiscard]] Plan plan_from_json(const prof::Json& j);

}  // namespace spmv::core

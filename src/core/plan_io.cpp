#include "core/plan_io.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>

#include "binning/binning.hpp"

namespace spmv::core {

namespace {

/// prof::Json numbers are doubles, so every integral field read from an
/// untrusted artifact goes through a range check before the cast —
/// static_cast of an out-of-range (or negative, for unsigned) double is
/// undefined behaviour, and store files are fuzzed input, not trusted
/// output.
std::int64_t checked_int(const prof::Json& j, const char* what,
                         std::int64_t lo, std::int64_t hi) {
  const double v = j.as_number();
  if (!std::isfinite(v) || v != std::floor(v) ||
      v < static_cast<double>(lo) || v > static_cast<double>(hi))
    throw std::runtime_error(std::string("plan: ") + what +
                             " out of range");
  return static_cast<std::int64_t>(v);
}

}  // namespace

prof::Json plan_to_json(const Plan& plan) {
  prof::Json j = prof::Json::object();
  j.set("unit", static_cast<std::int64_t>(plan.unit));
  j.set("single_bin", plan.single_bin);
  j.set("revision", plan.revision);
  // Tuned-U provenance. Written unconditionally; readers treat absence as
  // "predictor-chosen" so pre-provenance artifacts keep loading.
  j.set("unit_tuned", plan.unit_tuned);
  j.set("predicted_unit", static_cast<std::int64_t>(plan.predicted_unit));
  j.set("backend", exec::backend_name(plan.backend));
  // Sharded-plan provenance (spmv::shard), only for plans that carry it —
  // unsharded plans keep the pre-shard artifact shape byte-for-byte. The
  // parent hash travels as a hex string: Json numbers are doubles and
  // would silently round a 64-bit hash.
  if (plan.shard_index >= 0) {
    j.set("shard_index", static_cast<std::int64_t>(plan.shard_index));
    j.set("shard_count", static_cast<std::int64_t>(plan.shard_count));
    char hex[32];
    std::snprintf(hex, sizeof(hex), "0x%016llx",
                  static_cast<unsigned long long>(plan.shard_parent));
    j.set("shard_parent", std::string(hex));
  }
  // SpMM-width provenance (spmv::iter), only for plans that carry it —
  // one-shot plans keep the pre-iter artifact shape byte-for-byte.
  if (plan.spmm_width > 0)
    j.set("spmm_width", static_cast<std::int64_t>(plan.spmm_width));
  prof::Json bins = prof::Json::array();
  for (const BinPlan& bp : plan.bin_kernels) {
    prof::Json b = prof::Json::object();
    b.set("bin", bp.bin_id);
    b.set("kernel", kernels::kernel_name(bp.kernel));
    // Per-bin physical format (schema v3). Written unconditionally;
    // readers treat absence as CSR so v2 artifacts keep loading.
    b.set("format", fmt::format_name(bp.format));
    bins.push_back(std::move(b));
  }
  j.set("bins", std::move(bins));
  return j;
}

Plan plan_from_json(const prof::Json& j) {
  Plan plan;
  plan.unit = static_cast<index_t>(
      checked_int(j.at("unit"), "unit", 1, 1'000'000'000));
  plan.single_bin = j.at("single_bin").as_bool();
  plan.revision = static_cast<std::uint64_t>(
      checked_int(j.at("revision"), "revision", 0,
                  std::numeric_limits<std::int64_t>::max()));
  if (const prof::Json* v = j.find("unit_tuned"); v != nullptr)
    plan.unit_tuned = v->as_bool();
  if (const prof::Json* v = j.find("predicted_unit"); v != nullptr)
    plan.predicted_unit = static_cast<index_t>(
        checked_int(*v, "predicted_unit", 0, 1'000'000'000));
  // Optional so pre-backend artifacts load (as Clsim). Name parsing goes
  // through the non-throwing try_* lookups: a bad name becomes the same
  // runtime_error every other malformed field raises, which the store's
  // per-entry guard counts as a skip instead of letting a stray
  // invalid_argument escape with a different type.
  if (const prof::Json* v = j.find("backend"); v != nullptr) {
    const auto kind = exec::try_backend_from_name(v->as_string());
    if (!kind.has_value())
      throw std::runtime_error("plan: unknown backend " + v->as_string());
    plan.backend = *kind;
  }
  // Optional shard provenance; pre-shard artifacts omit it (-1 default).
  if (const prof::Json* v = j.find("shard_index"); v != nullptr) {
    plan.shard_index =
        static_cast<int>(checked_int(*v, "shard_index", 0, 1'000'000));
    plan.shard_count = static_cast<int>(checked_int(
        j.at("shard_count"), "shard_count", 1, 1'000'000));
    if (plan.shard_index >= plan.shard_count)
      throw std::runtime_error("plan: shard_index beyond shard_count");
    plan.shard_parent =
        std::strtoull(j.at("shard_parent").as_string().c_str(), nullptr, 16);
  }
  // Optional SpMM-width provenance; pre-iter artifacts omit it (0 default).
  if (const prof::Json* v = j.find("spmm_width"); v != nullptr)
    plan.spmm_width =
        static_cast<int>(checked_int(*v, "spmm_width", 1, 1'000'000));
  for (const prof::Json& b : j.at("bins").items()) {
    const std::string kname = b.at("kernel").as_string();
    const auto kid = kernels::try_kernel_from_name(kname);
    if (!kid.has_value())
      throw std::runtime_error("plan: unknown kernel " + kname);
    // Optional so v2 (pre-format) artifacts load as CSR-everywhere; an
    // unknown format name is the usual counted-skip runtime_error.
    fmt::FormatKind format = fmt::FormatKind::Csr;
    if (const prof::Json* v = b.find("format"); v != nullptr) {
      if (!fmt::try_format_from_name(v->as_string(), &format))
        throw std::runtime_error("plan: unknown format " + v->as_string());
    }
    plan.bin_kernels.push_back(
        {static_cast<int>(checked_int(b.at("bin"), "bin id", 0,
                                      binning::kMaxBins - 1)),
         *kid, format});
  }
  plan.normalize();
  for (std::size_t i = 1; i < plan.bin_kernels.size(); ++i) {
    if (plan.bin_kernels[i].bin_id == plan.bin_kernels[i - 1].bin_id)
      throw std::runtime_error("plan: duplicate bin id " +
                               std::to_string(plan.bin_kernels[i].bin_id));
  }
  if (plan.single_bin &&
      (plan.bin_kernels.size() != 1 || plan.bin_kernels[0].bin_id != 0))
    throw std::runtime_error("plan: single_bin requires exactly bin 0");
  return plan;
}

}  // namespace spmv::core

#include "core/plan_io.hpp"

namespace spmv::core {

prof::Json plan_to_json(const Plan& plan) {
  prof::Json j = prof::Json::object();
  j.set("unit", static_cast<std::int64_t>(plan.unit));
  j.set("single_bin", plan.single_bin);
  j.set("revision", plan.revision);
  prof::Json bins = prof::Json::array();
  for (const BinPlan& bp : plan.bin_kernels) {
    prof::Json b = prof::Json::object();
    b.set("bin", bp.bin_id);
    b.set("kernel", kernels::kernel_name(bp.kernel));
    bins.push_back(std::move(b));
  }
  j.set("bins", std::move(bins));
  return j;
}

Plan plan_from_json(const prof::Json& j) {
  Plan plan;
  plan.unit = static_cast<index_t>(j.at("unit").as_int());
  plan.single_bin = j.at("single_bin").as_bool();
  plan.revision = j.at("revision").as_uint();
  for (const prof::Json& b : j.at("bins").items()) {
    plan.bin_kernels.push_back(
        {static_cast<int>(b.at("bin").as_int()),
         kernels::kernel_from_name(b.at("kernel").as_string())});
  }
  plan.normalize();
  return plan;
}

}  // namespace spmv::core

// Umbrella header: the full public API of the autospmv library.
//
// autospmv reproduces "Auto-Tuning Strategies for Parallelizing Sparse
// Matrix-Vector (SpMV) Multiplication on Multi- and Many-Core Processors"
// (Hou, Feng, Che — IPDPSW 2017). See README.md for a tour and DESIGN.md
// for the architecture.
//
// The primary entry point is the spmv::core::Tuner builder (core/tuner.hpp):
//
//   spmv::core::HeuristicPredictor pred;
//   spmv::prof::RunProfile profile;                       // optional
//   auto spmv = spmv::core::Tuner(a)
//                   .predictor(pred)
//                   .profile(&profile)                    // telemetry sink
//                   .build();
//   spmv.run(x, y);
//   spmv::prof::write_profile_file("run.json", profile);  // JSON artifact
//
// The Tuner is the only way to construct an AutoSpmv (the former direct
// constructors are gone). Telemetry (spmv::prof) is opt-in: pass a
// RunProfile* for plan/run timings and enable spmv::prof::set_enabled(true)
// for engine counters. For concurrent serving with a plan cache and
// multi-vector batching, see spmv::serve::SpmvService (serve/service.hpp).
//
// Execution goes through spmv::exec (exec/backend.hpp): a Backend owns
// kernel dispatch, with ClsimBackend (the simulated work-group engine) and
// NativeBackend (OpenMP/SIMD loops on the host) as the two implementations.
// The backend is a *plan* property — select it with Tuner::backend(...),
// persist it through plan_io/PlanStore, or let the adapt layer tune it
// online. The old kernels::run_* free functions are deprecated forwards to
// exec::ClsimBackend and will be removed in a future release.
#pragma once

#include "adapt/bandit.hpp"            // online bandit plan refinement
#include "adapt/plan_store.hpp"        // persistent tuned-plan store
#include "baseline/csr_adaptive.hpp"    // CSR-Adaptive baseline
#include "baseline/merge_spmv.hpp"      // merge-based SpMV extension
#include "binning/binning.hpp"          // Algorithm-2 virtual-row binning
#include "binning/schemes.hpp"          // fine/hybrid/single-bin schemes
#include "clsim/device.hpp"             // simulated device description
#include "clsim/engine.hpp"             // work-group execution engine
#include "core/auto_spmv.hpp"           // the auto-tuned SpMV runtime
#include "core/candidates.hpp"          // U / kernel candidate pools
#include "core/exhaustive.hpp"          // oracle tuner
#include "core/hetero.hpp"              // heterogeneous bin scheduling
#include "core/model_io.hpp"            // model persistence
#include "core/plan.hpp"                // parallelization plans
#include "core/plan_io.hpp"             // plan JSON (de)serialization
#include "core/predictor.hpp"           // model & heuristic predictors
#include "core/trainer.hpp"             // offline training pipeline
#include "core/tuner.hpp"               // the Tuner builder facade
#include "exec/backend.hpp"             // execution-backend abstraction
#include "exec/clsim_backend.hpp"       // clsim-engine backend
#include "exec/native_backend.hpp"      // native OpenMP/SIMD backend
#include "gen/corpus.hpp"               // UF-like training corpus
#include "iter/dense_block.hpp"         // column-major dense vector blocks
#include "iter/session.hpp"             // solver-loop serving sessions
#include "gen/generators.hpp"           // synthetic matrix generators
#include "gen/representative.hpp"       // the 16 Table-II matrices
#include "kernels/reference.hpp"        // Algorithm-1 reference kernels
#include "kernels/registry.hpp"         // the nine-kernel pool
#include "ml/boosting.hpp"              // C5.0-style boosting trials
#include "ml/dataset.hpp"               // ML dataset container
#include "ml/decision_tree.hpp"         // C4.5/C5.0-style tree learner
#include "ml/features.hpp"              // Table-I feature extraction
#include "ml/ruleset.hpp"               // if-then rule sets
#include "obs/sink.hpp"                 // streaming telemetry sink
#include "prof/compare.hpp"             // profile regression gate
#include "prof/counters.hpp"            // telemetry flag & engine counters
#include "prof/histogram.hpp"           // log-bucketed latency histograms
#include "prof/json.hpp"                // minimal JSON value type
#include "prof/profile.hpp"             // RunProfile telemetry aggregate
#include "prof/trajectory.hpp"          // perf-trajectory history & gate
#include "serve/fingerprint.hpp"        // structural matrix fingerprints
#include "serve/plan_cache.hpp"         // LRU cache of built runtimes
#include "serve/service.hpp"            // concurrent serving layer
#include "shard/fair_queue.hpp"         // tenant-weighted fair admission
#include "shard/partition.hpp"          // nnz-balanced row partitioning
#include "shard/sharded_service.hpp"    // row-sharded serving layer
#include "sparse/convert.hpp"           // COO<->CSR, transpose
#include "sparse/coo.hpp"               // COO container
#include "sparse/csr.hpp"               // CSR container
#include "sparse/ell.hpp"               // ELLPACK (format-overhead study)
#include "sparse/matrix_stats.hpp"      // row-length statistics
#include "sparse/mm_io.hpp"             // Matrix Market I/O
#include "sparse/reorder.hpp"           // row permutation utilities
#include "trace/trace.hpp"              // request-scoped tracing
#include "util/cli.hpp"                 // flag parsing for tools
#include "util/log.hpp"                 // leveled logging
#include "util/rng.hpp"                 // deterministic RNG
#include "util/stats.hpp"               // statistics helpers
#include "util/timer.hpp"               // timing / measurement

// Profile regression gate: diff two RunProfile artifacts metric by metric
// and flag regressions beyond a ratio threshold. Backs the
// `spmv_tool compare-profiles baseline.json current.json` CI gate — the
// machinery that turns saved profiles into a pass/fail answer to "did this
// change slow the hot path down?".
#pragma once

#include <string>
#include <vector>

#include "prof/profile.hpp"

namespace spmv::prof {

/// One compared metric. `ratio` is current/baseline; `regressed` means the
/// ratio exceeded the threshold (only metrics with a positive baseline can
/// regress — a metric appearing for the first time is informational).
struct MetricDelta {
  std::string name;
  double baseline = 0.0;
  double current = 0.0;
  double ratio = 1.0;
  bool regressed = false;
};

struct CompareResult {
  std::vector<MetricDelta> metrics;
  /// Metric sections the baseline carries but the current profile lacks —
  /// a schema mismatch (renamed bin/kernel, dropped histogram), not a
  /// regression. The CLI gate reports these with a distinct exit code so a
  /// renamed metric can never masquerade as "no regression".
  std::vector<std::string> missing;

  [[nodiscard]] bool regressed() const {
    for (const MetricDelta& m : metrics) {
      if (m.regressed) return true;
    }
    return false;
  }

  [[nodiscard]] bool schema_mismatch() const { return !missing.empty(); }
};

/// Compare `current` against `baseline` with a multiplicative `threshold`
/// (e.g. 1.15 = tolerate 15% slower). Covered metrics, each only when both
/// profiles carry it: mean run time, plan-construction time, per-bin mean
/// kernel time (matched by bin id + kernel name), and the serve latency
/// percentiles (request p50/p95/p99, queue-wait p95, batch-exec p50).
/// A section the baseline has but the current profile lost (runs, plan
/// timing, a bin, a latency histogram) is recorded in `missing` instead of
/// being silently skipped. Throws std::invalid_argument when threshold <= 0.
CompareResult compare_profiles(const RunProfile& baseline,
                               const RunProfile& current, double threshold);

}  // namespace spmv::prof

// Log-bucketed latency histogram with percentile extraction. Buckets grow
// geometrically (three per octave, ~26% resolution) from 100 ns, covering
// past four minutes in 96 buckets — the full range a serving request can
// plausibly occupy. Fixed-size storage makes add() allocation-free and
// merge() a vector add, so histograms can live inside stats structs that
// are copied under locks (prof::ServeStats).
#pragma once

#include <array>
#include <cstdint>

#include "prof/json.hpp"

namespace spmv::prof {

/// One bucket's exemplar: the most recent sample that landed in the
/// bucket, carrying the request's trace id and the provenance of the plan
/// that served it — enough to resolve a p99 bucket directly to a
/// replayable trace span (obs::StreamingSink segment files) and to the arm
/// state that produced the plan. Kept POD (no strings) so histograms stay
/// cheap to copy under stats locks.
struct Exemplar {
  std::uint64_t trace_id = 0;     ///< 0 = the request was not traced
  double value_s = 0.0;           ///< the exemplar sample itself
  std::uint64_t seq = 0;          ///< process-wide recency order (0 = empty)
  std::uint64_t fingerprint = 0;  ///< request matrix row_hash
  std::uint64_t plan_revision = 0;
  std::uint8_t backend = 0;       ///< exec::BackendKind of the plan
  bool formats = false;           ///< plan carried non-CSR bin layouts
  /// Arm level of the latest adapt promotion applied before this sample:
  /// 0 none, 1 kernel, 2 unit (U), 3 backend, 4 format.
  std::uint8_t promo_level = 0;
  /// Shard partition that produced the sample (spmv::shard); -1 = the
  /// sample did not come from a sharded service.
  std::int16_t shard = -1;

  [[nodiscard]] bool valid() const { return seq != 0; }
};

class LatencyHistogram {
 public:
  static constexpr int kBuckets = 96;
  static constexpr double kMinSeconds = 1e-7;       ///< bucket 0 upper bound
  static constexpr double kBucketsPerOctave = 3.0;  ///< growth 2^(1/3)

  /// Record one sample (negative values clamp to 0).
  void add(double seconds);

  /// Record one sample plus its exemplar. The bucket retains the most
  /// recent exemplar, except that a traced exemplar (trace_id != 0) is
  /// never displaced by an untraced one — under request sampling the
  /// bucket keeps a resolvable trace id as long as any sample carried one.
  /// `exemplar.value_s` and `.seq` are stamped here.
  void add(double seconds, Exemplar exemplar);

  /// Fold another histogram in: counts add, min/max widen, and each bucket
  /// keeps the winning exemplar (traced beats untraced, then recency).
  void merge(const LatencyHistogram& other);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double total_s() const { return total_s_; }
  [[nodiscard]] double min_s() const { return count_ == 0 ? 0.0 : min_s_; }
  [[nodiscard]] double max_s() const { return max_s_; }
  [[nodiscard]] double mean_s() const {
    return count_ == 0 ? 0.0 : total_s_ / static_cast<double>(count_);
  }

  /// The p-th percentile (p in [0, 100]): the geometric midpoint of the
  /// bucket holding the rank-⌈p/100·count⌉ sample, clamped to the observed
  /// [min, max]. 0 when empty. Accurate to one bucket (~26%).
  [[nodiscard]] double percentile(double p) const;

  [[nodiscard]] bool empty() const { return count_ == 0; }

  /// Bucket index a sample lands in (exposed for tests).
  static int bucket_index(double seconds);
  /// [lower, upper) bounds of bucket `i` in seconds.
  static double bucket_lower_bound(int i);
  static double bucket_upper_bound(int i);

  [[nodiscard]] const std::array<std::uint64_t, kBuckets>& buckets() const {
    return buckets_;
  }

  /// The exemplar retained for bucket `i` (check .valid()).
  [[nodiscard]] const Exemplar& exemplar(int i) const {
    return exemplars_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] bool has_exemplars() const;

  /// JSON: {count, total_s, min_s, max_s, p50_s, p95_s, p99_s,
  /// buckets: [[index, count], ...],
  /// exemplars: [[index, {trace_id, value_s, ...}], ...] (when any)} —
  /// percentiles are written for human readers and recomputed from the
  /// buckets on load.
  [[nodiscard]] Json to_json() const;
  static LatencyHistogram from_json(const Json& j);

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::array<Exemplar, kBuckets> exemplars_{};
  std::uint64_t count_ = 0;
  double total_s_ = 0.0;
  double min_s_ = 0.0;
  double max_s_ = 0.0;
};

}  // namespace spmv::prof

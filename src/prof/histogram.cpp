#include "prof/histogram.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace spmv::prof {

namespace {

/// Process-wide recency order for exemplars. Histograms merged from many
/// shards (per-worker ServeStats) need a total order to pick "most recent"
/// without comparing wall clocks; a single relaxed counter gives one.
std::atomic<std::uint64_t> g_exemplar_seq{0};

/// `b` wins over `a` when `a` is empty, when `b` is traced and `a` is not,
/// or — at equal tracedness — when `b` is newer.
bool exemplar_wins(const Exemplar& a, const Exemplar& b) {
  if (!b.valid()) return false;
  if (!a.valid()) return true;
  const bool a_traced = a.trace_id != 0;
  const bool b_traced = b.trace_id != 0;
  if (a_traced != b_traced) return b_traced;
  return b.seq > a.seq;
}

std::string u64_hex(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::uint64_t u64_from_hex(const std::string& s) {
  return std::strtoull(s.c_str(), nullptr, 16);
}

}  // namespace

int LatencyHistogram::bucket_index(double seconds) {
  if (!(seconds > kMinSeconds)) return 0;  // also catches NaN / negatives
  const double octaves = std::log2(seconds / kMinSeconds);
  const int i = 1 + static_cast<int>(std::floor(octaves * kBucketsPerOctave));
  return std::min(i, kBuckets - 1);
}

double LatencyHistogram::bucket_lower_bound(int i) {
  if (i <= 0) return 0.0;
  return kMinSeconds * std::exp2((i - 1) / kBucketsPerOctave);
}

double LatencyHistogram::bucket_upper_bound(int i) {
  return kMinSeconds * std::exp2(i / kBucketsPerOctave);
}

void LatencyHistogram::add(double seconds) {
  if (!(seconds > 0.0)) seconds = 0.0;
  buckets_[static_cast<std::size_t>(bucket_index(seconds))] += 1;
  if (count_ == 0 || seconds < min_s_) min_s_ = seconds;
  if (seconds > max_s_) max_s_ = seconds;
  count_ += 1;
  total_s_ += seconds;
}

void LatencyHistogram::add(double seconds, Exemplar exemplar) {
  add(seconds);
  exemplar.value_s = seconds > 0.0 ? seconds : 0.0;
  exemplar.seq = g_exemplar_seq.fetch_add(1, std::memory_order_relaxed) + 1;
  Exemplar& slot =
      exemplars_[static_cast<std::size_t>(bucket_index(exemplar.value_s))];
  if (exemplar_wins(slot, exemplar)) slot = exemplar;
}

bool LatencyHistogram::has_exemplars() const {
  for (const Exemplar& e : exemplars_)
    if (e.valid()) return true;
  return false;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  for (int i = 0; i < kBuckets; ++i)
    buckets_[static_cast<std::size_t>(i)] +=
        other.buckets_[static_cast<std::size_t>(i)];
  for (int i = 0; i < kBuckets; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (exemplar_wins(exemplars_[idx], other.exemplars_[idx]))
      exemplars_[idx] = other.exemplars_[idx];
  }
  if (count_ == 0 || other.min_s_ < min_s_) min_s_ = other.min_s_;
  max_s_ = std::max(max_s_, other.max_s_);
  count_ += other.count_;
  total_s_ += other.total_s_;
}

double LatencyHistogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const auto rank = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(p / 100.0 * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[static_cast<std::size_t>(i)];
    if (seen >= rank) {
      const double lo = bucket_lower_bound(i);
      const double hi = bucket_upper_bound(i);
      const double mid = lo > 0.0 ? std::sqrt(lo * hi) : hi / 2.0;
      return std::clamp(mid, min_s(), max_s_);
    }
  }
  return max_s_;
}

Json LatencyHistogram::to_json() const {
  Json j = Json::object();
  j.set("count", count_);
  j.set("total_s", total_s_);
  j.set("min_s", min_s());
  j.set("max_s", max_s_);
  j.set("p50_s", percentile(50.0));
  j.set("p95_s", percentile(95.0));
  j.set("p99_s", percentile(99.0));
  Json buckets = Json::array();
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t n = buckets_[static_cast<std::size_t>(i)];
    if (n == 0) continue;
    Json pair = Json::array();
    pair.push_back(i);
    pair.push_back(n);
    buckets.push_back(std::move(pair));
  }
  j.set("buckets", buckets);
  if (has_exemplars()) {
    Json exemplars = Json::array();
    for (int i = 0; i < kBuckets; ++i) {
      const Exemplar& e = exemplars_[static_cast<std::size_t>(i)];
      if (!e.valid()) continue;
      Json ej = Json::object();
      ej.set("trace_id", e.trace_id);
      ej.set("value_s", e.value_s);
      ej.set("seq", e.seq);
      // Hashes are serialized as hex strings: Json numbers are doubles and
      // would silently round 64-bit hashes.
      ej.set("fingerprint", u64_hex(e.fingerprint));
      ej.set("plan_revision", e.plan_revision);
      ej.set("backend", static_cast<std::int64_t>(e.backend));
      ej.set("formats", e.formats);
      ej.set("promo_level", static_cast<std::int64_t>(e.promo_level));
      ej.set("shard", static_cast<std::int64_t>(e.shard));
      Json pair = Json::array();
      pair.push_back(i);
      pair.push_back(std::move(ej));
      exemplars.push_back(std::move(pair));
    }
    j.set("exemplars", exemplars);
  }
  return j;
}

LatencyHistogram LatencyHistogram::from_json(const Json& j) {
  LatencyHistogram h;
  h.count_ = j.at("count").as_uint();
  h.total_s_ = j.at("total_s").as_number();
  h.min_s_ = j.at("min_s").as_number();
  h.max_s_ = j.at("max_s").as_number();
  for (const Json& pair : j.at("buckets").items()) {
    const auto i = static_cast<std::size_t>(pair.at(0).as_int());
    if (i < static_cast<std::size_t>(kBuckets))
      h.buckets_[i] = pair.at(1).as_uint();
  }
  if (const Json* exemplars = j.find("exemplars")) {
    for (const Json& pair : exemplars->items()) {
      const auto i = static_cast<std::size_t>(pair.at(0).as_int());
      if (i >= static_cast<std::size_t>(kBuckets)) continue;
      const Json& ej = pair.at(1);
      Exemplar e;
      e.trace_id = ej.at("trace_id").as_uint();
      e.value_s = ej.at("value_s").as_number();
      e.seq = ej.at("seq").as_uint();
      e.fingerprint = u64_from_hex(ej.at("fingerprint").as_string());
      e.plan_revision = ej.at("plan_revision").as_uint();
      e.backend = static_cast<std::uint8_t>(ej.at("backend").as_int());
      e.formats = ej.at("formats").as_bool();
      e.promo_level = static_cast<std::uint8_t>(ej.at("promo_level").as_int());
      // Optional: artifacts written before the shard layer lack the field.
      if (const Json* shard = ej.find("shard"))
        e.shard = static_cast<std::int16_t>(shard->as_int());
      h.exemplars_[i] = e;
    }
  }
  return h;
}

}  // namespace spmv::prof

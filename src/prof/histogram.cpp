#include "prof/histogram.hpp"

#include <algorithm>
#include <cmath>

namespace spmv::prof {

int LatencyHistogram::bucket_index(double seconds) {
  if (!(seconds > kMinSeconds)) return 0;  // also catches NaN / negatives
  const double octaves = std::log2(seconds / kMinSeconds);
  const int i = 1 + static_cast<int>(std::floor(octaves * kBucketsPerOctave));
  return std::min(i, kBuckets - 1);
}

double LatencyHistogram::bucket_lower_bound(int i) {
  if (i <= 0) return 0.0;
  return kMinSeconds * std::exp2((i - 1) / kBucketsPerOctave);
}

double LatencyHistogram::bucket_upper_bound(int i) {
  return kMinSeconds * std::exp2(i / kBucketsPerOctave);
}

void LatencyHistogram::add(double seconds) {
  if (!(seconds > 0.0)) seconds = 0.0;
  buckets_[static_cast<std::size_t>(bucket_index(seconds))] += 1;
  if (count_ == 0 || seconds < min_s_) min_s_ = seconds;
  if (seconds > max_s_) max_s_ = seconds;
  count_ += 1;
  total_s_ += seconds;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  for (int i = 0; i < kBuckets; ++i)
    buckets_[static_cast<std::size_t>(i)] +=
        other.buckets_[static_cast<std::size_t>(i)];
  if (count_ == 0 || other.min_s_ < min_s_) min_s_ = other.min_s_;
  max_s_ = std::max(max_s_, other.max_s_);
  count_ += other.count_;
  total_s_ += other.total_s_;
}

double LatencyHistogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const auto rank = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(p / 100.0 * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[static_cast<std::size_t>(i)];
    if (seen >= rank) {
      const double lo = bucket_lower_bound(i);
      const double hi = bucket_upper_bound(i);
      const double mid = lo > 0.0 ? std::sqrt(lo * hi) : hi / 2.0;
      return std::clamp(mid, min_s(), max_s_);
    }
  }
  return max_s_;
}

Json LatencyHistogram::to_json() const {
  Json j = Json::object();
  j.set("count", count_);
  j.set("total_s", total_s_);
  j.set("min_s", min_s());
  j.set("max_s", max_s_);
  j.set("p50_s", percentile(50.0));
  j.set("p95_s", percentile(95.0));
  j.set("p99_s", percentile(99.0));
  Json buckets = Json::array();
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t n = buckets_[static_cast<std::size_t>(i)];
    if (n == 0) continue;
    Json pair = Json::array();
    pair.push_back(i);
    pair.push_back(n);
    buckets.push_back(std::move(pair));
  }
  j.set("buckets", buckets);
  return j;
}

LatencyHistogram LatencyHistogram::from_json(const Json& j) {
  LatencyHistogram h;
  h.count_ = j.at("count").as_uint();
  h.total_s_ = j.at("total_s").as_number();
  h.min_s_ = j.at("min_s").as_number();
  h.max_s_ = j.at("max_s").as_number();
  for (const Json& pair : j.at("buckets").items()) {
    const auto i = static_cast<std::size_t>(pair.at(0).as_int());
    if (i < static_cast<std::size_t>(kBuckets))
      h.buckets_[i] = pair.at(1).as_uint();
  }
  return h;
}

}  // namespace spmv::prof

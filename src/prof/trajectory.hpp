// Perf trajectory — the time axis of the regression gate. Where
// compare_profiles() answers "is this run slower than ONE saved baseline?",
// a Trajectory accumulates per-run benchmark snapshots (BENCH_*.json
// documents) into a committed history file, renders a sparkline dashboard
// of every tracked metric, and gates on the HEAD entry versus the rolling
// mean of the previous W entries — so a slow drift that never trips a
// single pairwise threshold still gets caught, and one noisy baseline run
// cannot whipsaw CI.
//
//   Trajectory t = Trajectory::load_file("PERF_TRAJECTORY.json");
//   t.append(Json::parse(bench_text), "pr-123");
//   TrajectoryCheck c = t.check(/*window=*/5, /*threshold=*/1.25);
//   if (c.regressed()) ...;
//   t.save_file("PERF_TRAJECTORY.json");
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "prof/json.hpp"

namespace spmv::prof {

/// One appended benchmark snapshot: the numeric leaves of the source JSON
/// document, flattened depth-first with dot-joined keys
/// ("request_latency.p95_s"), in source order.
struct TrajectoryEntry {
  std::uint64_t seq = 0;  ///< 1-based append order (stable across prunes)
  std::string label;      ///< e.g. commit SHA or CI run id
  /// Which bench produced this entry, derived from the source JSON's
  /// "bench" (+ "/mode") string fields — e.g. "serve_throughput" or
  /// "serve_throughput/sharded". One history file can interleave several
  /// streams; check() gates each head only against its own stream, so a
  /// sharded snapshot never reads as schema drift against an unsharded
  /// one. Legacy entries (no "bench" field) share the "" stream.
  std::string stream;
  std::vector<std::pair<std::string, double>> metrics;

  /// The metric's value, or nullptr when this entry lacks it.
  [[nodiscard]] const double* find(const std::string& name) const;
};

/// One metric's verdict from Trajectory::check().
struct TrajectoryMetric {
  std::string name;
  double head = 0.0;     ///< the newest entry's value
  double window = 0.0;   ///< rolling mean over the previous W entries
  double ratio = 1.0;    ///< head/window (direction-normalized: >1 = worse)
  /// The threshold this metric was actually gated against: the fixed one,
  /// or — under a learned check — the variance-derived per-metric bound.
  double threshold = 0.0;
  bool higher_is_better = false;
  bool regressed = false;
};

struct TrajectoryCheck {
  std::vector<TrajectoryMetric> metrics;
  /// Metrics the window has but the head entry lost (schema drift).
  std::vector<std::string> missing;

  [[nodiscard]] bool regressed() const {
    for (const TrajectoryMetric& m : metrics) {
      if (m.regressed) return true;
    }
    return false;
  }
};

class Trajectory {
 public:
  /// Load a trajectory file; a missing file is an empty trajectory (the
  /// first CI run bootstraps it). Throws std::runtime_error on a present
  /// but unparseable file — history corruption must not pass silently.
  static Trajectory load_file(const std::string& path);

  /// Parse from JSON text / serialize back ({"version":1,"entries":[...]}).
  static Trajectory from_json(const Json& j);
  [[nodiscard]] Json to_json() const;

  /// Write atomically (temp file + rename) so an interrupted CI run never
  /// leaves a torn history behind.
  void save_file(const std::string& path) const;

  /// Flatten `bench`'s numeric leaves and append them as one entry tagged
  /// `label`. Entries beyond `max_entries` are pruned oldest-first (seq
  /// numbers keep counting). Non-numeric leaves are skipped.
  void append(const Json& bench, const std::string& label,
              std::size_t max_entries = 200);

  /// Gate the newest entry against the rolling mean of the `window`
  /// same-stream entries before it (entries appended from a different
  /// bench document are invisible to this head — both for the means and
  /// for the schema-drift scan). A metric regresses when its
  /// direction-normalized head/window ratio exceeds `threshold`
  /// (throughput-like metrics invert: lower is worse). With no prior
  /// same-stream entry, or an empty window for a metric, nothing
  /// regresses — a young trajectory (or stream) only observes.
  /// "config.*" metrics are never gated (they describe the bench setup).
  /// Throws std::invalid_argument when window < 1 or threshold <= 0.
  ///
  /// With `learned` set, each metric's threshold is derived from its own
  /// window noise instead of applied uniformly: the gate becomes
  /// max(threshold, (μ + 3σ) / μ) over the window values — a metric whose
  /// history is noisy earns headroom proportional to that noise, while a
  /// historically flat metric tightens to the floor. `threshold` then acts
  /// as the floor, so the learned gate is never laxer than 3σ nor stricter
  /// than the fixed gate it replaces.
  [[nodiscard]] TrajectoryCheck check(std::size_t window, double threshold,
                                      bool learned = false) const;

  /// Markdown dashboard: one table row per metric with a unicode sparkline
  /// over the last `window` entries (newest right), head value, rolling
  /// mean, and verdict.
  [[nodiscard]] std::string render_markdown(std::size_t window = 20) const;

  [[nodiscard]] const std::vector<TrajectoryEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// Is this metric one where larger values mean better (throughput,
  /// speedup, hit rate) rather than worse (latency, seconds)?
  static bool higher_is_better(const std::string& name);

 private:
  std::vector<TrajectoryEntry> entries_;
  std::uint64_t next_seq_ = 1;
};

}  // namespace spmv::prof

#include "prof/compare.hpp"

#include <stdexcept>

namespace spmv::prof {

namespace {

void add_metric(CompareResult& result, const std::string& name,
                double baseline, double current, double threshold) {
  MetricDelta m;
  m.name = name;
  m.baseline = baseline;
  m.current = current;
  m.ratio = baseline > 0.0 ? current / baseline : 1.0;
  m.regressed = baseline > 0.0 && m.ratio > threshold;
  result.metrics.push_back(std::move(m));
}

/// Mean wall time of one run() call; 0 when the profile recorded none.
double mean_run_s(const RunProfile& p) {
  return p.runs == 0 ? 0.0 : p.run_total_s / static_cast<double>(p.runs);
}

const BinRunSample* find_bin(const RunProfile& p, int bin_id,
                             const std::string& kernel) {
  for (const BinRunSample& s : p.bins) {
    if (s.bin_id == bin_id && s.kernel == kernel) return &s;
  }
  return nullptr;
}

double mean_bin_s(const BinRunSample& s) {
  return s.launches == 0 ? 0.0
                         : s.seconds / static_cast<double>(s.launches);
}

}  // namespace

CompareResult compare_profiles(const RunProfile& baseline,
                               const RunProfile& current, double threshold) {
  if (threshold <= 0.0)
    throw std::invalid_argument("compare_profiles: threshold must be > 0");
  CompareResult result;

  if (baseline.runs > 0 && current.runs > 0)
    add_metric(result, "run_mean_s", mean_run_s(baseline), mean_run_s(current),
               threshold);
  else if (baseline.runs > 0)
    result.missing.push_back("run_mean_s");
  if (baseline.plan_timing.total_s() > 0.0) {
    if (current.plan_timing.total_s() > 0.0)
      add_metric(result, "plan_total_s", baseline.plan_timing.total_s(),
                 current.plan_timing.total_s(), threshold);
    else
      result.missing.push_back("plan_total_s");
  }

  // Per-bin kernel time, matched by (bin id, kernel). A bin only the
  // CURRENT side has is informational (a different plan was chosen; the
  // end-to-end run_mean_s metric arbitrates whether that plan is a loss) —
  // but a baseline bin the current profile lost is a schema mismatch: the
  // bin or kernel was renamed/removed and its history is no longer
  // comparable.
  for (const BinRunSample& cur : current.bins) {
    const BinRunSample* base = find_bin(baseline, cur.bin_id, cur.kernel);
    if (base == nullptr) continue;
    add_metric(result,
               "bin" + std::to_string(cur.bin_id) + "_" + cur.kernel + "_s",
               mean_bin_s(*base), mean_bin_s(cur), threshold);
  }
  for (const BinRunSample& base : baseline.bins) {
    if (find_bin(current, base.bin_id, base.kernel) == nullptr)
      result.missing.push_back("bin" + std::to_string(base.bin_id) + "_" +
                               base.kernel + "_s");
  }

  const ServeStats& bs = baseline.serve;
  const ServeStats& cs = current.serve;
  if (!bs.request_latency.empty()) {
    if (!cs.request_latency.empty()) {
      add_metric(result, "serve_request_p50_s",
                 bs.request_latency.percentile(50),
                 cs.request_latency.percentile(50), threshold);
      add_metric(result, "serve_request_p95_s",
                 bs.request_latency.percentile(95),
                 cs.request_latency.percentile(95), threshold);
      add_metric(result, "serve_request_p99_s",
                 bs.request_latency.percentile(99),
                 cs.request_latency.percentile(99), threshold);
    } else {
      result.missing.push_back("serve_request_latency");
    }
  }
  if (!bs.queue_wait.empty()) {
    if (!cs.queue_wait.empty())
      add_metric(result, "serve_queue_wait_p95_s", bs.queue_wait.percentile(95),
                 cs.queue_wait.percentile(95), threshold);
    else
      result.missing.push_back("serve_queue_wait");
  }
  if (!bs.batch_exec.empty()) {
    if (!cs.batch_exec.empty())
      add_metric(result, "serve_batch_exec_p50_s", bs.batch_exec.percentile(50),
                 cs.batch_exec.percentile(50), threshold);
    else
      result.missing.push_back("serve_batch_exec");
  }
  return result;
}

}  // namespace spmv::prof

// Minimal JSON value type for telemetry export: enough of RFC 8259 to
// round-trip a RunProfile (null/bool/number/string/array/object, ordered
// object keys, escaped strings). Deliberately tiny — this is a telemetry
// serializer, not a general JSON library.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace spmv::prof {

class Json {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Json() = default;
  Json(bool b) : type_(Type::Bool), bool_(b) {}                 // NOLINT
  Json(double v) : type_(Type::Number), number_(v) {}           // NOLINT
  Json(int v) : Json(static_cast<double>(v)) {}                 // NOLINT
  Json(std::int64_t v) : Json(static_cast<double>(v)) {}        // NOLINT
  Json(std::uint64_t v) : Json(static_cast<double>(v)) {}       // NOLINT
  Json(std::string s) : type_(Type::String), string_(std::move(s)) {}  // NOLINT
  Json(const char* s) : Json(std::string(s)) {}                 // NOLINT

  static Json array() {
    Json j;
    j.type_ = Type::Array;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::Object;
    return j;
  }

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::Null; }
  [[nodiscard]] bool is_object() const { return type_ == Type::Object; }
  [[nodiscard]] bool is_array() const { return type_ == Type::Array; }

  /// Typed accessors; throw std::runtime_error on a type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] std::uint64_t as_uint() const;
  [[nodiscard]] const std::string& as_string() const;

  /// Array access.
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const Json& at(std::size_t i) const;
  void push_back(Json v);
  [[nodiscard]] const std::vector<Json>& items() const;

  /// Object access. set() appends or overwrites; at() throws on a missing
  /// key; find() returns nullptr instead.
  void set(const std::string& key, Json v);
  [[nodiscard]] const Json& at(const std::string& key) const;
  [[nodiscard]] const Json* find(const std::string& key) const;
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members()
      const;

  /// Serialize. indent > 0 pretty-prints; 0 emits one line.
  [[nodiscard]] std::string dump(int indent = 2) const;

  /// Parse a complete JSON document; throws std::runtime_error with a byte
  /// offset on malformed input.
  static Json parse(const std::string& text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace spmv::prof

#include "prof/counters.hpp"

namespace spmv::prof {

namespace {
std::atomic<bool> g_enabled{false};
std::atomic<std::uint64_t> g_spmm_fallback_columns{0};
}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

std::uint64_t spmm_fallback_columns() {
  return g_spmm_fallback_columns.load(std::memory_order_relaxed);
}

void add_spmm_fallback_columns(std::uint64_t n) {
  if (enabled())
    g_spmm_fallback_columns.fetch_add(n, std::memory_order_relaxed);
}

void reset_spmm_fallback_columns() {
  g_spmm_fallback_columns.store(0, std::memory_order_relaxed);
}

}  // namespace spmv::prof

#include "prof/counters.hpp"

namespace spmv::prof {

namespace {
std::atomic<bool> g_enabled{false};
}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

}  // namespace spmv::prof

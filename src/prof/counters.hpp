// Execution telemetry: the runtime enable flag and the thread-safe launch
// counters the clsim engine records into (paper Figures 5-9 are all
// instrumentation; this layer makes the runtime observable the same way).
//
// Counting is gated by a process-wide runtime flag so the disabled path
// costs one relaxed atomic load per launch — cheap enough to leave the
// hooks compiled into release builds.
#pragma once

#include <atomic>
#include <cstdint>

namespace spmv::prof {

/// Is telemetry recording on? Relaxed read of a process-wide flag.
bool enabled();

/// Turn telemetry recording on or off process-wide.
void set_enabled(bool on);

/// RAII toggle for tools and tests: enables on construction, restores the
/// previous state on destruction.
class ScopedEnable {
 public:
  explicit ScopedEnable(bool on = true) : prev_(enabled()) { set_enabled(on); }
  ~ScopedEnable() { set_enabled(prev_); }
  ScopedEnable(const ScopedEnable&) = delete;
  ScopedEnable& operator=(const ScopedEnable&) = delete;

 private:
  bool prev_;
};

/// Process-wide count of dense right-hand-side columns that were executed
/// through a per-column single-vector fallback instead of a true blocked
/// multi-vector traversal — the `spmm.fallback_columns` telemetry. Two code
/// paths feed it: the base Backend::do_run_spmm default (a backend with no
/// native SpMM lowers width-N to N single-vector launches) and the clsim
/// batch dispatcher when a kernel shape has no batched variant or its
/// simulated local-memory arena cannot fit even two columns. Before this
/// counter existed those fallbacks were silent; profiled runs now surface
/// the columns that missed the blocked path (RunProfile
/// spmm_fallback_columns). Mutation is gated by enabled() like every other
/// counter; reads are always live.
std::uint64_t spmm_fallback_columns();

/// Add `n` fallback columns (no-op unless enabled()).
void add_spmm_fallback_columns(std::uint64_t n);

/// Reset the process-wide fallback-column count (tests).
void reset_spmm_fallback_columns();

/// Point-in-time copy of an engine's counters. Cumulative fields subtract
/// to form deltas; the arena high-water mark is a level, not a flow, so a
/// delta carries the later value unchanged.
struct EngineCountersSnapshot {
  std::uint64_t launches = 0;          ///< launch() calls that did work
  std::uint64_t inline_launches = 0;   ///< subset run on the caller thread
  std::uint64_t groups = 0;            ///< work-groups executed
  std::uint64_t chunks = 0;            ///< chunk dispatches through the pool
  std::uint64_t arena_high_water_bytes = 0;  ///< max local-memory bytes used

  /// Counters accumulated between `before` and this snapshot.
  [[nodiscard]] EngineCountersSnapshot delta_since(
      const EngineCountersSnapshot& before) const {
    return {launches - before.launches,
            inline_launches - before.inline_launches, groups - before.groups,
            chunks - before.chunks, arena_high_water_bytes};
  }
};

/// Thread-safe launch counters, one set per Engine. All mutation is
/// relaxed-atomic: the counters are statistics, not synchronization.
class EngineCounters {
 public:
  EngineCounters() = default;
  /// Copying an Engine copies a snapshot of its counters.
  EngineCounters(const EngineCounters& other) { *this = other; }
  EngineCounters& operator=(const EngineCounters& other) {
    if (this != &other) load_from(other.snapshot());
    return *this;
  }

  /// Record one launch of `groups` work-groups dispatched as `chunks`
  /// pool chunks (0 for the inline fast path).
  void record_launch(std::uint64_t groups, std::uint64_t chunks,
                     bool inline_path) {
    launches_.fetch_add(1, std::memory_order_relaxed);
    if (inline_path) inline_launches_.fetch_add(1, std::memory_order_relaxed);
    groups_.fetch_add(groups, std::memory_order_relaxed);
    chunks_.fetch_add(chunks, std::memory_order_relaxed);
  }

  /// Record the local-memory bytes one work-group ended with (atomic max).
  void record_arena_used(std::uint64_t bytes) {
    std::uint64_t seen = arena_high_water_.load(std::memory_order_relaxed);
    while (bytes > seen && !arena_high_water_.compare_exchange_weak(
                               seen, bytes, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] EngineCountersSnapshot snapshot() const {
    return {launches_.load(std::memory_order_relaxed),
            inline_launches_.load(std::memory_order_relaxed),
            groups_.load(std::memory_order_relaxed),
            chunks_.load(std::memory_order_relaxed),
            arena_high_water_.load(std::memory_order_relaxed)};
  }

  void reset() { load_from({}); }

 private:
  void load_from(const EngineCountersSnapshot& s) {
    launches_.store(s.launches, std::memory_order_relaxed);
    inline_launches_.store(s.inline_launches, std::memory_order_relaxed);
    groups_.store(s.groups, std::memory_order_relaxed);
    chunks_.store(s.chunks, std::memory_order_relaxed);
    arena_high_water_.store(s.arena_high_water_bytes,
                            std::memory_order_relaxed);
  }

  std::atomic<std::uint64_t> launches_{0};
  std::atomic<std::uint64_t> inline_launches_{0};
  std::atomic<std::uint64_t> groups_{0};
  std::atomic<std::uint64_t> chunks_{0};
  std::atomic<std::uint64_t> arena_high_water_{0};
};

}  // namespace spmv::prof

#include "prof/trajectory.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace spmv::prof {

namespace {

/// Depth-first numeric-leaf flatten with dot-joined keys. Arrays are
/// skipped: their lengths vary run to run (bin lists, width histograms)
/// and a trajectory needs stable metric names.
void flatten(const Json& j, const std::string& prefix,
             std::vector<std::pair<std::string, double>>& out) {
  if (j.is_object()) {
    for (const auto& [key, value] : j.members()) {
      flatten(value, prefix.empty() ? key : prefix + "." + key, out);
    }
  } else if (j.type() == Json::Type::Number && !prefix.empty()) {
    out.emplace_back(prefix, j.as_number());
  }
}

std::string format_value(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Unicode sparkline of `values` (oldest left), scaled to their own
/// min..max; a flat series renders mid-height.
std::string sparkline(const std::vector<double>& values) {
  static const char* kBars[] = {"▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
  if (values.empty()) return "";
  double lo = values[0];
  double hi = values[0];
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::string out;
  for (double v : values) {
    int idx = 3;  // flat series: mid-height
    if (hi > lo) {
      idx = static_cast<int>((v - lo) / (hi - lo) * 7.0 + 0.5);
      idx = std::clamp(idx, 0, 7);
    }
    out += kBars[idx];
  }
  return out;
}

}  // namespace

const double* TrajectoryEntry::find(const std::string& name) const {
  for (const auto& [key, value] : metrics) {
    if (key == name) return &value;
  }
  return nullptr;
}

bool Trajectory::higher_is_better(const std::string& name) {
  // Throughput-like metrics: a DROP is the regression. Everything else
  // (latency percentiles, seconds-flavored costs) regresses upward.
  return name.find("rps") != std::string::npos ||
         name.find("gflops") != std::string::npos ||
         name.find("speedup") != std::string::npos ||
         name.find("hit_rate") != std::string::npos;
}

Trajectory Trajectory::from_json(const Json& j) {
  Trajectory t;
  for (const Json& ej : j.at("entries").items()) {
    TrajectoryEntry e;
    e.seq = ej.at("seq").as_uint();
    e.label = ej.at("label").as_string();
    if (const Json* s = ej.find("stream")) e.stream = s->as_string();
    for (const auto& [key, value] : ej.at("metrics").members())
      e.metrics.emplace_back(key, value.as_number());
    t.next_seq_ = std::max(t.next_seq_, e.seq + 1);
    t.entries_.push_back(std::move(e));
  }
  return t;
}

Json Trajectory::to_json() const {
  Json j = Json::object();
  j.set("version", 1);
  Json entries = Json::array();
  for (const TrajectoryEntry& e : entries_) {
    Json ej = Json::object();
    ej.set("seq", e.seq);
    ej.set("label", e.label);
    if (!e.stream.empty()) ej.set("stream", e.stream);
    Json metrics = Json::object();
    for (const auto& [key, value] : e.metrics) metrics.set(key, value);
    ej.set("metrics", std::move(metrics));
    entries.push_back(std::move(ej));
  }
  j.set("entries", std::move(entries));
  return j;
}

Trajectory Trajectory::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Trajectory{};  // first run: no history yet
  std::ostringstream text;
  text << in.rdbuf();
  try {
    return from_json(Json::parse(text.str()));
  } catch (const std::exception& e) {
    throw std::runtime_error("trajectory file " + path +
                             " is corrupt: " + e.what());
  }
}

void Trajectory::save_file(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out)
      throw std::runtime_error("cannot write trajectory file: " + tmp);
    out << to_json().dump(2) << "\n";
    if (!out)
      throw std::runtime_error("error writing trajectory file: " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec)
    throw std::runtime_error("cannot replace trajectory file " + path + ": " +
                             ec.message());
}

void Trajectory::append(const Json& bench, const std::string& label,
                        std::size_t max_entries) {
  TrajectoryEntry e;
  e.seq = next_seq_++;
  e.label = label;
  // Stream identity: the bench's own name (+ mode), so one history file
  // can carry e.g. the standard and the sharded serve snapshots without
  // either gating against the other's schema.
  if (const Json* b = bench.find("bench");
      b && b->type() == Json::Type::String) {
    e.stream = b->as_string();
    if (const Json* m = bench.find("mode");
        m && m->type() == Json::Type::String)
      e.stream += "/" + m->as_string();
  }
  flatten(bench, "", e.metrics);
  entries_.push_back(std::move(e));
  const std::size_t cap = std::max<std::size_t>(1, max_entries);
  while (entries_.size() > cap) entries_.erase(entries_.begin());
}

TrajectoryCheck Trajectory::check(std::size_t window, double threshold,
                                  bool learned) const {
  if (window < 1)
    throw std::invalid_argument("Trajectory::check: window must be >= 1");
  if (threshold <= 0.0)
    throw std::invalid_argument("Trajectory::check: threshold must be > 0");
  TrajectoryCheck result;
  if (entries_.size() < 2) return result;  // young trajectory: observe only
  const TrajectoryEntry& head = entries_.back();
  // The window is the last `window` entries of the HEAD'S OWN STREAM —
  // entries appended from a different bench document (other `stream` tag)
  // neither pollute the means nor read as schema drift.
  std::vector<const TrajectoryEntry*> prior;
  for (std::size_t i = 0; i + 1 < entries_.size(); ++i) {
    if (entries_[i].stream == head.stream) prior.push_back(&entries_[i]);
  }
  if (prior.empty()) return result;  // young stream: observe only
  const std::size_t first = prior.size() > window ? prior.size() - window : 0;

  for (const auto& [name, head_value] : head.metrics) {
    double sum = 0.0;
    double sum_sq = 0.0;
    std::size_t n = 0;
    for (std::size_t i = first; i < prior.size(); ++i) {
      if (const double* v = prior[i]->find(name)) {
        sum += *v;
        sum_sq += *v * *v;
        n += 1;
      }
    }
    if (n == 0) continue;  // metric is new: observe only
    TrajectoryMetric m;
    m.name = name;
    m.head = head_value;
    m.window = sum / static_cast<double>(n);
    m.higher_is_better = higher_is_better(name);
    // Normalize direction so ratio > 1 always reads "worse than the
    // window". Non-positive sides defeat a ratio test; treat as neutral.
    if (m.head > 0.0 && m.window > 0.0)
      m.ratio = m.higher_is_better ? m.window / m.head : m.head / m.window;
    m.threshold = threshold;
    if (learned && m.window > 0.0 && n >= 2) {
      // Per-metric noise-derived gate: a head value beyond mean + 3σ of
      // its own window is an outlier regardless of what a one-size fixed
      // ratio says; the fixed `threshold` stays as the floor so a
      // low-noise metric cannot tighten into gating on measurement jitter.
      const double variance = std::max(
          0.0, sum_sq / static_cast<double>(n) - m.window * m.window);
      const double sigma = std::sqrt(variance);
      m.threshold = std::max(threshold, (m.window + 3.0 * sigma) / m.window);
    }
    // config.* describes the bench setup (rows, requests, threads) — a
    // deliberate change must not read as a perf regression.
    m.regressed = m.ratio > m.threshold && name.rfind("config.", 0) != 0;
    result.metrics.push_back(std::move(m));
  }

  // Schema drift: a metric the most recent same-stream entry carried but
  // the head lost.
  const TrajectoryEntry& prev = *prior.back();
  for (const auto& [name, value] : prev.metrics) {
    (void)value;
    if (head.find(name) == nullptr) result.missing.push_back(name);
  }
  return result;
}

std::string Trajectory::render_markdown(std::size_t window) const {
  std::string out = "# Perf trajectory\n\n";
  if (entries_.empty()) {
    out += "_No entries yet._\n";
    return out;
  }
  const TrajectoryEntry& head = entries_.back();
  out += "Entries: " + std::to_string(entries_.size()) + " · head: `" +
         head.label + "` (seq " + std::to_string(head.seq) + ")\n\n";
  out += "| metric | trend | head | window mean | Δ |\n";
  out += "|---|---|---:|---:|---:|\n";
  const std::size_t first =
      entries_.size() > window ? entries_.size() - window : 0;
  for (const auto& [name, head_value] : head.metrics) {
    std::vector<double> series;
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = first; i < entries_.size(); ++i) {
      if (const double* v = entries_[i].find(name)) {
        series.push_back(*v);
        if (i + 1 < entries_.size()) {
          sum += *v;
          n += 1;
        }
      }
    }
    const double mean = n == 0 ? head_value : sum / static_cast<double>(n);
    double delta_pct = 0.0;
    if (mean > 0.0) delta_pct = (head_value / mean - 1.0) * 100.0;
    char delta[32];
    std::snprintf(delta, sizeof(delta), "%+.1f%%", delta_pct);
    out += "| `" + name + "` | " + sparkline(series) + " | " +
           format_value(head_value) + " | " + format_value(mean) + " | " +
           delta + " |\n";
  }
  return out;
}

}  // namespace spmv::prof

#include "prof/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace spmv::prof {

namespace {

[[noreturn]] void type_error(const char* want) {
  throw std::runtime_error(std::string("Json: value is not ") + want);
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  // Counters and row counts are integral; print them without an exponent
  // so the artifact diffs cleanly. 2^53 bounds exact integer doubles.
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out += buf;
    return;
  }
  if (!std::isfinite(v)) {  // JSON has no inf/nan; emit null
    out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

/// Recursive-descent parser over the full input string.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("Json::parse: " + what + " at byte " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t len = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, len, lit) != 0) return false;
    pos_ += len;
    return true;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Json(parse_string());
    if (consume_literal("null")) return Json();
    if (consume_literal("true")) return Json(true);
    if (consume_literal("false")) return Json(false);
    return parse_number();
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(key, parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // UTF-8 encode (BMP only; surrogate pairs are not needed for
          // telemetry strings and parse as two 3-byte sequences).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    try {
      std::size_t used = 0;
      const std::string tok = text_.substr(start, pos_ - start);
      const double v = std::stod(tok, &used);
      if (used != tok.size()) fail("malformed number");
      return Json(v);
    } catch (const std::logic_error&) {
      fail("malformed number");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool Json::as_bool() const {
  if (type_ != Type::Bool) type_error("a bool");
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::Number) type_error("a number");
  return number_;
}

std::int64_t Json::as_int() const {
  return static_cast<std::int64_t>(as_number());
}

std::uint64_t Json::as_uint() const {
  return static_cast<std::uint64_t>(as_number());
}

const std::string& Json::as_string() const {
  if (type_ != Type::String) type_error("a string");
  return string_;
}

std::size_t Json::size() const {
  if (type_ == Type::Array) return array_.size();
  if (type_ == Type::Object) return object_.size();
  type_error("a container");
}

const Json& Json::at(std::size_t i) const {
  if (type_ != Type::Array) type_error("an array");
  if (i >= array_.size()) throw std::runtime_error("Json: index out of range");
  return array_[i];
}

void Json::push_back(Json v) {
  if (type_ == Type::Null) type_ = Type::Array;
  if (type_ != Type::Array) type_error("an array");
  array_.push_back(std::move(v));
}

const std::vector<Json>& Json::items() const {
  if (type_ != Type::Array) type_error("an array");
  return array_;
}

void Json::set(const std::string& key, Json v) {
  if (type_ == Type::Null) type_ = Type::Object;
  if (type_ != Type::Object) type_error("an object");
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  object_.emplace_back(key, std::move(v));
}

const Json& Json::at(const std::string& key) const {
  const Json* v = find(key);
  if (v == nullptr) throw std::runtime_error("Json: missing key '" + key + "'");
  return *v;
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::Object) type_error("an object");
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  if (type_ != Type::Object) type_error("an object");
  return object_;
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (type_) {
    case Type::Null: out += "null"; break;
    case Type::Bool: out += bool_ ? "true" : "false"; break;
    case Type::Number: append_number(out, number_); break;
    case Type::String: append_escaped(out, string_); break;
    case Type::Array: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += ']';
      break;
    }
    case Type::Object: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        append_escaped(out, object_[i].first);
        out += indent > 0 ? ": " : ":";
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += '}';
      break;
    }
  }
}

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace spmv::prof

// RunProfile — the aggregated execution profile of one auto-tuned SpMV:
// plan-stage timings (feature extraction / prediction / binning), per-bin
// kernel wall time with bin workload, engine launch counters, and the cost
// of any tuning that produced the plan. Exportable as JSON so benches and
// tools emit regression-comparable artifacts (`spmv_tool run --profile`).
//
// Recording is opt-in per call site: APIs take a `RunProfile*` and treat
// nullptr as "off", so the hot path pays a pointer test. Engine-level
// counters are additionally gated by the runtime flag in counters.hpp.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "prof/counters.hpp"
#include "prof/histogram.hpp"
#include "prof/json.hpp"

namespace spmv::prof {

/// Scoped accumulating stopwatch: adds the elapsed seconds to `*acc` on
/// destruction; a null accumulator makes it a no-op.
class ScopedTimer {
 public:
  explicit ScopedTimer(double* acc) : acc_(acc) {
    if (acc_ != nullptr) start_ = Clock::now();
  }
  ~ScopedTimer() { stop(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Stop early (idempotent); subsequent destruction adds nothing.
  void stop() {
    if (acc_ == nullptr) return;
    *acc_ += std::chrono::duration<double>(Clock::now() - start_).count();
    acc_ = nullptr;
  }

 private:
  using Clock = std::chrono::steady_clock;
  double* acc_;
  Clock::time_point start_;
};

/// Where plan construction time went (AutoSpmv's three stages).
struct PlanTiming {
  double features_s = 0.0;  ///< compute_row_stats
  double predict_s = 0.0;   ///< stage-1 + stage-2 prediction
  double binning_s = 0.0;   ///< Algorithm-2 binning
  [[nodiscard]] double total_s() const {
    return features_s + predict_s + binning_s;
  }
};

/// Accumulated execution record of one occupied bin.
struct BinRunSample {
  int bin_id = 0;
  std::string kernel;               ///< registry display name
  std::int64_t virtual_rows = 0;    ///< entries in the bin
  std::int64_t rows = 0;            ///< matrix rows the bin covers
  std::int64_t nnz = 0;             ///< non-zeros the bin covers
  double seconds = 0.0;             ///< summed kernel wall time
  std::uint64_t launches = 0;       ///< times this bin's kernel ran
};

/// Cost of measuring one tuning candidate (exhaustive tuner / trainer).
struct CandidateCost {
  std::string label;         ///< e.g. "U=100", "single-bin", "matrix 3/120"
  double measure_s = 0.0;    ///< wall time spent measuring the candidate
  std::int64_t measurements = 0;  ///< timed repetitions / samples harvested
  double best_s = 0.0;       ///< best measured execution time (0 if n/a)
};

/// Online-adaptation statistics (spmv::adapt): shadow-measurement trials,
/// plan promotions, and the accumulated cost of losing trials. Empty by
/// default and omitted from the JSON artifact unless a BanditTuner ran.
struct AdaptStats {
  std::uint64_t trials = 0;      ///< shadow measurements performed
  std::uint64_t promotions = 0;  ///< plan revisions promoted into the cache
  /// Shadow-measurement wall time lost to challengers slower than the
  /// incumbent (the exploration cost of the bandit, in seconds).
  double regret_s = 0.0;
  /// Second-level exploration of the binning unit U: whole-plan shadow
  /// trials at a neighboring granularity, and the promotions that rebuilt
  /// the plan at a different U (counted inside `trials`/`promotions` too).
  std::uint64_t u_trials = 0;
  std::uint64_t u_promotions = 0;
  /// Third-level exploration of the execution backend (spmv::exec):
  /// whole-plan shadow trials on the alternative backend, and promotions
  /// that re-stamped the plan's backend (counted inside
  /// `trials`/`promotions` too).
  std::uint64_t b_trials = 0;
  std::uint64_t b_promotions = 0;
  /// Fourth-level exploration of per-bin physical formats (spmv::fmt):
  /// per-bin shadow trials of an alternative layout, and promotions that
  /// re-stamped one bin's format (counted inside `trials`/`promotions`
  /// too).
  std::uint64_t f_trials = 0;
  std::uint64_t f_promotions = 0;
  /// Latency-feedback arm path (spmv::iter): kernel arms fed from measured
  /// per-iteration serve latencies instead of dedicated shadow launches.
  /// l_trials counts challenger iterations observed this way — NOT counted
  /// inside `trials`, which remains "shadow measurements performed", so a
  /// pure latency-feedback session reports trials == 0. l_promotions (the
  /// promotions those observations produced) IS counted inside
  /// `promotions` like every other level's.
  std::uint64_t l_trials = 0;
  std::uint64_t l_promotions = 0;

  void merge(const AdaptStats& other) {
    trials += other.trials;
    promotions += other.promotions;
    regret_s += other.regret_s;
    u_trials += other.u_trials;
    u_promotions += other.u_promotions;
    b_trials += other.b_trials;
    b_promotions += other.b_promotions;
    f_trials += other.f_trials;
    f_promotions += other.f_promotions;
    l_trials += other.l_trials;
    l_promotions += other.l_promotions;
  }

  [[nodiscard]] bool empty() const {
    return trials == 0 && promotions == 0 && l_trials == 0;
  }
};

/// Per-tenant serving statistics (spmv::shard fair admission): accounting
/// per admission identity, so a flooding tenant's rejections and a light
/// tenant's p99 are separable in every artifact.
struct TenantStats {
  std::string name;
  double weight = 1.0;
  std::uint64_t requests = 0;    ///< submissions accepted into the queue
  std::uint64_t rejected = 0;    ///< submissions bounced (global or quota)
  std::uint64_t dispatched = 0;  ///< requests handed to the shard pool
  /// End-to-end submit→complete latency for this tenant's requests.
  LatencyHistogram latency;
};

/// Per-shard serving statistics (spmv::shard): one row partition's load
/// and tuning provenance.
struct ShardStats {
  int shard = 0;
  std::int64_t row_begin = 0;
  std::int64_t row_end = 0;
  std::int64_t nnz = 0;
  std::string plan;  ///< current Plan::to_string() (carries provenance)
  std::uint64_t executions = 0;  ///< per-shard kernel dispatches
  double exec_total_s = 0.0;
  std::uint64_t promotions = 0;  ///< bandit promotions applied to the shard
};

/// Serving-layer statistics (spmv::serve): request/batch accounting, queue
/// wait, and plan-cache effectiveness. A default-constructed ServeStats is
/// "empty" and is omitted from the JSON artifact.
struct ServeStats {
  std::uint64_t requests = 0;       ///< submissions accepted into the queue
  std::uint64_t rejected = 0;       ///< submissions bounced by backpressure
  std::uint64_t batches = 0;        ///< executions dispatched (width >= 1)
  double queue_wait_total_s = 0.0;  ///< summed submit->dispatch wait
  double queue_wait_max_s = 0.0;    ///< worst single-request wait
  double exec_total_s = 0.0;        ///< summed execution wall time
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  /// Misses satisfied from a warm PlanStore (no predictor pass needed).
  std::uint64_t cache_warm_hits = 0;
  /// Misses that ran a full predictor-driven planning pass.
  std::uint64_t planning_passes = 0;
  /// Adapt promotions applied to cached entries.
  std::uint64_t cache_promotions = 0;
  /// Subset of cache_promotions that swapped in a structurally different
  /// plan (a U-exploration win: the entry was re-binned, not just given a
  /// new per-bin kernel).
  std::uint64_t cache_rebin_promotions = 0;
  /// batch_width_hist[w-1] = number of batches executed at width w.
  std::vector<std::uint64_t> batch_width_hist;
  /// Latency distributions (p50/p95/p99 via LatencyHistogram::percentile):
  /// end-to-end submit→complete per request, submit→dispatch wait per
  /// request, and execution wall time per batch.
  LatencyHistogram request_latency;
  LatencyHistogram queue_wait;
  LatencyHistogram batch_exec;
  /// Per-tenant blocks (spmv::shard fair admission); empty unless a
  /// sharded service ran. merge() matches tenants by name.
  std::vector<TenantStats> tenants;
  /// Per-shard blocks (spmv::shard); empty unless a sharded service ran.
  /// merge() matches shards by index.
  std::vector<ShardStats> shards;

  /// Count one dispatched batch of `width` requests.
  void add_batch(int width) {
    batches += 1;
    if (width < 1) return;
    if (batch_width_hist.size() < static_cast<std::size_t>(width))
      batch_width_hist.resize(static_cast<std::size_t>(width), 0);
    batch_width_hist[static_cast<std::size_t>(width) - 1] += 1;
  }

  /// Fold another service's (or worker's) stats in: counters add, the max
  /// takes the larger value, and the width/latency histograms sum — the
  /// principled combine for stats gathered independently.
  void merge(const ServeStats& other);

  [[nodiscard]] double cache_hit_rate() const {
    const std::uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(cache_hits) /
                            static_cast<double>(total);
  }

  [[nodiscard]] bool empty() const {
    return requests == 0 && rejected == 0 && batches == 0 &&
           cache_hits == 0 && cache_misses == 0;
  }
};

/// Tracing-layer accounting for the run (spmv::trace): how many spans were
/// recorded and — critically — how many were lost to ring wrap-around, so
/// a trace with holes is never mistaken for a complete one. Empty by
/// default and omitted from the JSON artifact unless tracing ran.
struct TraceStats {
  std::uint64_t events = 0;         ///< spans surviving in the rings
  std::uint64_t dropped_spans = 0;  ///< spans overwritten by wrap-around
  std::int64_t threads = 0;         ///< distinct recording threads

  [[nodiscard]] bool empty() const {
    return events == 0 && dropped_spans == 0 && threads == 0;
  }
};

/// The aggregate profile. One RunProfile typically describes one matrix +
/// plan; run() calls accumulate into it, so repeated executions average
/// naturally (divide by `runs`).
struct RunProfile {
  std::string label;  ///< free-form: matrix name, bench name, ...
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::int64_t nnz = 0;
  std::string plan;  ///< Plan::to_string() of the executed plan

  PlanTiming plan_timing;
  std::vector<BinRunSample> bins;  ///< ascending bin_id, merged across runs
  std::uint64_t runs = 0;          ///< run() calls recorded
  double run_total_s = 0.0;        ///< summed wall time of those calls
  EngineCountersSnapshot engine;   ///< accumulated launch-counter deltas
  /// Dense right-hand-side columns this profile's batched/SpMM executions
  /// pushed through a per-column single-vector fallback (delta of
  /// prof::spmm_fallback_columns, so it needs counters enabled). 0 when
  /// every multi-vector run took a blocked path.
  std::uint64_t spmm_fallback_columns = 0;
  std::vector<CandidateCost> tuning;
  double tuning_total_s = 0.0;
  ServeStats serve;  ///< serving-layer stats; empty unless a service ran
  AdaptStats adapt;  ///< online-tuning stats; empty unless a tuner ran
  /// Tracing accounting ("trace" in JSON); empty unless tracing ran. Named
  /// trace_stats, not trace, so files using both layers can keep the
  /// spmv::trace namespace unqualified.
  TraceStats trace_stats;

  /// Merge one bin execution: accumulates seconds/launches into the
  /// matching (bin_id, kernel) sample or appends a new one.
  void add_bin_run(int bin_id, const std::string& kernel,
                   std::int64_t virtual_rows, std::int64_t rows_covered,
                   std::int64_t nnz_covered, double seconds);

  /// Append one tuning-candidate cost entry.
  void add_candidate(const std::string& label, double measure_s,
                     std::int64_t measurements, double best_s);

  /// Fold an engine-counter delta into the profile (sums flows, maxes the
  /// arena high-water level).
  void merge_engine_delta(const EngineCountersSnapshot& delta);

  [[nodiscard]] Json to_json() const;
  static RunProfile from_json(const Json& j);

  /// Pretty-printed JSON document text.
  [[nodiscard]] std::string to_json_text(int indent = 2) const;
};

/// Write `profile` as pretty-printed JSON; throws std::runtime_error when
/// the file cannot be written.
void write_profile_file(const std::string& path, const RunProfile& profile);

/// Load a RunProfile JSON artifact; throws std::runtime_error when the
/// file cannot be read or parsed.
RunProfile read_profile_file(const std::string& path);

/// Prometheus text exposition (text/plain; version 0.0.4) of the profile:
/// run/engine counters plus — when the respective layers recorded — serve
/// counters, latency summaries with p50/p95/p99 quantiles, full latency
/// histograms (`*_hist_seconds` with cumulative `le` buckets) whose
/// non-empty buckets carry OpenMetrics-style `# {...}` exemplars, adapt
/// counters, and trace span/drop accounting.
[[nodiscard]] std::string prometheus_text(const RunProfile& profile);

/// Escape a Prometheus label value: backslash, double-quote, and newline
/// become \\, \", and \n per the text-exposition grammar.
[[nodiscard]] std::string prometheus_escape_label(const std::string& value);

}  // namespace spmv::prof

#include "prof/profile.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace spmv::prof {

void ServeStats::merge(const ServeStats& other) {
  requests += other.requests;
  rejected += other.rejected;
  batches += other.batches;
  queue_wait_total_s += other.queue_wait_total_s;
  queue_wait_max_s = std::max(queue_wait_max_s, other.queue_wait_max_s);
  exec_total_s += other.exec_total_s;
  cache_hits += other.cache_hits;
  cache_misses += other.cache_misses;
  cache_evictions += other.cache_evictions;
  cache_warm_hits += other.cache_warm_hits;
  planning_passes += other.planning_passes;
  cache_promotions += other.cache_promotions;
  cache_rebin_promotions += other.cache_rebin_promotions;
  if (batch_width_hist.size() < other.batch_width_hist.size())
    batch_width_hist.resize(other.batch_width_hist.size(), 0);
  for (std::size_t i = 0; i < other.batch_width_hist.size(); ++i)
    batch_width_hist[i] += other.batch_width_hist[i];
  request_latency.merge(other.request_latency);
  queue_wait.merge(other.queue_wait);
  batch_exec.merge(other.batch_exec);
  // Tenant blocks match by name, shard blocks by index; unseen ones append
  // (two sharded runs over different partitions still merge losslessly).
  for (const TenantStats& ot : other.tenants) {
    const auto it =
        std::find_if(tenants.begin(), tenants.end(),
                     [&](const TenantStats& t) { return t.name == ot.name; });
    if (it == tenants.end()) {
      tenants.push_back(ot);
      continue;
    }
    it->weight = ot.weight;
    it->requests += ot.requests;
    it->rejected += ot.rejected;
    it->dispatched += ot.dispatched;
    it->latency.merge(ot.latency);
  }
  for (const ShardStats& os : other.shards) {
    const auto it =
        std::find_if(shards.begin(), shards.end(),
                     [&](const ShardStats& sh) { return sh.shard == os.shard; });
    if (it == shards.end()) {
      shards.push_back(os);
      continue;
    }
    it->row_begin = os.row_begin;
    it->row_end = os.row_end;
    it->nnz = os.nnz;
    it->plan = os.plan;
    it->executions += os.executions;
    it->exec_total_s += os.exec_total_s;
    it->promotions += os.promotions;
  }
}

void RunProfile::add_bin_run(int bin_id, const std::string& kernel,
                             std::int64_t virtual_rows,
                             std::int64_t rows_covered,
                             std::int64_t nnz_covered, double seconds) {
  for (BinRunSample& s : bins) {
    if (s.bin_id == bin_id) {
      // One sample per bin (bins[*].nnz must sum to the matrix nnz). The
      // label follows the latest execution mode: a lazily amortized layout
      // flips "serial" to "serial+ell" mid-profile without splitting the
      // sample.
      s.kernel = kernel;
      s.virtual_rows = virtual_rows;
      s.rows = rows_covered;
      s.nnz = nnz_covered;
      s.seconds += seconds;
      s.launches += 1;
      return;
    }
  }
  BinRunSample s;
  s.bin_id = bin_id;
  s.kernel = kernel;
  s.virtual_rows = virtual_rows;
  s.rows = rows_covered;
  s.nnz = nnz_covered;
  s.seconds = seconds;
  s.launches = 1;
  const auto pos = std::find_if(bins.begin(), bins.end(), [&](const auto& b) {
    return b.bin_id > bin_id;
  });
  bins.insert(pos, std::move(s));
}

void RunProfile::add_candidate(const std::string& label, double measure_s,
                               std::int64_t measurements, double best_s) {
  tuning.push_back({label, measure_s, measurements, best_s});
  tuning_total_s += measure_s;
}

void RunProfile::merge_engine_delta(const EngineCountersSnapshot& delta) {
  engine.launches += delta.launches;
  engine.inline_launches += delta.inline_launches;
  engine.groups += delta.groups;
  engine.chunks += delta.chunks;
  engine.arena_high_water_bytes =
      std::max(engine.arena_high_water_bytes, delta.arena_high_water_bytes);
}

Json RunProfile::to_json() const {
  Json j = Json::object();

  Json matrix = Json::object();
  matrix.set("label", label);
  matrix.set("rows", rows);
  matrix.set("cols", cols);
  matrix.set("nnz", nnz);
  j.set("matrix", matrix);

  Json plan_j = Json::object();
  plan_j.set("summary", plan);
  Json timing = Json::object();
  timing.set("features_s", plan_timing.features_s);
  timing.set("predict_s", plan_timing.predict_s);
  timing.set("binning_s", plan_timing.binning_s);
  timing.set("total_s", plan_timing.total_s());
  plan_j.set("timing", timing);
  j.set("plan", plan_j);

  Json runs_j = Json::object();
  runs_j.set("count", runs);
  runs_j.set("total_s", run_total_s);
  // Only multi-vector runs that missed a blocked path record this; absent
  // from (and ignored in) pre-iter artifacts.
  if (spmm_fallback_columns != 0)
    runs_j.set("spmm_fallback_columns", spmm_fallback_columns);
  j.set("runs", runs_j);

  Json bins_j = Json::array();
  for (const BinRunSample& s : bins) {
    Json b = Json::object();
    b.set("bin", s.bin_id);
    b.set("kernel", s.kernel);
    b.set("virtual_rows", s.virtual_rows);
    b.set("rows", s.rows);
    b.set("nnz", s.nnz);
    b.set("seconds", s.seconds);
    b.set("launches", s.launches);
    bins_j.push_back(b);
  }
  j.set("bins", bins_j);

  Json eng = Json::object();
  eng.set("launches", engine.launches);
  eng.set("inline_launches", engine.inline_launches);
  eng.set("groups", engine.groups);
  eng.set("chunks", engine.chunks);
  eng.set("arena_high_water_bytes", engine.arena_high_water_bytes);
  j.set("engine", eng);

  Json tuning_j = Json::object();
  tuning_j.set("total_s", tuning_total_s);
  Json cands = Json::array();
  for (const CandidateCost& c : tuning) {
    Json cj = Json::object();
    cj.set("label", c.label);
    cj.set("measure_s", c.measure_s);
    cj.set("measurements", c.measurements);
    cj.set("best_s", c.best_s);
    cands.push_back(cj);
  }
  tuning_j.set("candidates", cands);
  j.set("tuning", tuning_j);

  if (!serve.empty()) {
    Json sv = Json::object();
    sv.set("requests", serve.requests);
    sv.set("rejected", serve.rejected);
    sv.set("batches", serve.batches);
    sv.set("queue_wait_total_s", serve.queue_wait_total_s);
    sv.set("queue_wait_max_s", serve.queue_wait_max_s);
    sv.set("exec_total_s", serve.exec_total_s);
    Json cache = Json::object();
    cache.set("hits", serve.cache_hits);
    cache.set("misses", serve.cache_misses);
    cache.set("evictions", serve.cache_evictions);
    cache.set("hit_rate", serve.cache_hit_rate());
    cache.set("warm_hits", serve.cache_warm_hits);
    cache.set("planning_passes", serve.planning_passes);
    cache.set("promotions", serve.cache_promotions);
    cache.set("rebin_promotions", serve.cache_rebin_promotions);
    sv.set("cache", cache);
    Json hist = Json::array();
    for (std::uint64_t n : serve.batch_width_hist) hist.push_back(n);
    sv.set("batch_width_hist", hist);
    if (!serve.request_latency.empty())
      sv.set("request_latency", serve.request_latency.to_json());
    if (!serve.queue_wait.empty())
      sv.set("queue_wait", serve.queue_wait.to_json());
    if (!serve.batch_exec.empty())
      sv.set("batch_exec", serve.batch_exec.to_json());
    // Sharded-serving blocks (arrays: the perf-trajectory flattener skips
    // arrays, so variable tenant/shard counts never churn the gated metric
    // schema).
    if (!serve.tenants.empty()) {
      Json tenants = Json::array();
      for (const TenantStats& t : serve.tenants) {
        Json tj = Json::object();
        tj.set("name", t.name);
        tj.set("weight", t.weight);
        tj.set("requests", t.requests);
        tj.set("rejected", t.rejected);
        tj.set("dispatched", t.dispatched);
        if (!t.latency.empty()) tj.set("latency", t.latency.to_json());
        tenants.push_back(std::move(tj));
      }
      sv.set("tenants", tenants);
    }
    if (!serve.shards.empty()) {
      Json shards = Json::array();
      for (const ShardStats& sh : serve.shards) {
        Json sj = Json::object();
        sj.set("shard", sh.shard);
        sj.set("row_begin", sh.row_begin);
        sj.set("row_end", sh.row_end);
        sj.set("nnz", sh.nnz);
        sj.set("plan", sh.plan);
        sj.set("executions", sh.executions);
        sj.set("exec_total_s", sh.exec_total_s);
        sj.set("promotions", sh.promotions);
        shards.push_back(std::move(sj));
      }
      sv.set("shards", shards);
    }
    j.set("serve", sv);
  }

  if (!adapt.empty()) {
    Json ad = Json::object();
    ad.set("trials", adapt.trials);
    ad.set("promotions", adapt.promotions);
    ad.set("regret_s", adapt.regret_s);
    ad.set("u_trials", adapt.u_trials);
    ad.set("u_promotions", adapt.u_promotions);
    ad.set("b_trials", adapt.b_trials);
    ad.set("b_promotions", adapt.b_promotions);
    ad.set("f_trials", adapt.f_trials);
    ad.set("f_promotions", adapt.f_promotions);
    ad.set("l_trials", adapt.l_trials);
    ad.set("l_promotions", adapt.l_promotions);
    j.set("adapt", ad);
  }

  if (!trace_stats.empty()) {
    Json tr = Json::object();
    tr.set("events", trace_stats.events);
    tr.set("dropped_spans", trace_stats.dropped_spans);
    tr.set("threads", trace_stats.threads);
    j.set("trace", tr);
  }
  return j;
}

RunProfile RunProfile::from_json(const Json& j) {
  RunProfile p;
  const Json& matrix = j.at("matrix");
  p.label = matrix.at("label").as_string();
  p.rows = matrix.at("rows").as_int();
  p.cols = matrix.at("cols").as_int();
  p.nnz = matrix.at("nnz").as_int();

  const Json& plan_j = j.at("plan");
  p.plan = plan_j.at("summary").as_string();
  const Json& timing = plan_j.at("timing");
  p.plan_timing.features_s = timing.at("features_s").as_number();
  p.plan_timing.predict_s = timing.at("predict_s").as_number();
  p.plan_timing.binning_s = timing.at("binning_s").as_number();

  p.runs = j.at("runs").at("count").as_uint();
  p.run_total_s = j.at("runs").at("total_s").as_number();
  if (const Json* v = j.at("runs").find("spmm_fallback_columns");
      v != nullptr)
    p.spmm_fallback_columns = v->as_uint();

  for (const Json& b : j.at("bins").items()) {
    BinRunSample s;
    s.bin_id = static_cast<int>(b.at("bin").as_int());
    s.kernel = b.at("kernel").as_string();
    s.virtual_rows = b.at("virtual_rows").as_int();
    s.rows = b.at("rows").as_int();
    s.nnz = b.at("nnz").as_int();
    s.seconds = b.at("seconds").as_number();
    s.launches = b.at("launches").as_uint();
    p.bins.push_back(std::move(s));
  }

  const Json& eng = j.at("engine");
  p.engine.launches = eng.at("launches").as_uint();
  p.engine.inline_launches = eng.at("inline_launches").as_uint();
  p.engine.groups = eng.at("groups").as_uint();
  p.engine.chunks = eng.at("chunks").as_uint();
  p.engine.arena_high_water_bytes = eng.at("arena_high_water_bytes").as_uint();

  const Json& tuning_j = j.at("tuning");
  p.tuning_total_s = tuning_j.at("total_s").as_number();
  for (const Json& cj : tuning_j.at("candidates").items()) {
    CandidateCost c;
    c.label = cj.at("label").as_string();
    c.measure_s = cj.at("measure_s").as_number();
    c.measurements = cj.at("measurements").as_int();
    c.best_s = cj.at("best_s").as_number();
    p.tuning.push_back(std::move(c));
  }

  // Optional: only present when a serving layer recorded into the profile.
  if (const Json* sv = j.find("serve"); sv != nullptr) {
    p.serve.requests = sv->at("requests").as_uint();
    p.serve.rejected = sv->at("rejected").as_uint();
    p.serve.batches = sv->at("batches").as_uint();
    p.serve.queue_wait_total_s = sv->at("queue_wait_total_s").as_number();
    p.serve.queue_wait_max_s = sv->at("queue_wait_max_s").as_number();
    p.serve.exec_total_s = sv->at("exec_total_s").as_number();
    const Json& cache = sv->at("cache");
    p.serve.cache_hits = cache.at("hits").as_uint();
    p.serve.cache_misses = cache.at("misses").as_uint();
    p.serve.cache_evictions = cache.at("evictions").as_uint();
    // Warm-start counters arrived with the adapt layer; older artifacts
    // simply omit them.
    if (const Json* v = cache.find("warm_hits"); v != nullptr)
      p.serve.cache_warm_hits = v->as_uint();
    if (const Json* v = cache.find("planning_passes"); v != nullptr)
      p.serve.planning_passes = v->as_uint();
    if (const Json* v = cache.find("promotions"); v != nullptr)
      p.serve.cache_promotions = v->as_uint();
    if (const Json* v = cache.find("rebin_promotions"); v != nullptr)
      p.serve.cache_rebin_promotions = v->as_uint();
    for (const Json& n : sv->at("batch_width_hist").items())
      p.serve.batch_width_hist.push_back(n.as_uint());
    // Histograms arrived with this schema revision; older artifacts and
    // empty distributions simply omit them.
    if (const Json* h = sv->find("request_latency"); h != nullptr)
      p.serve.request_latency = LatencyHistogram::from_json(*h);
    if (const Json* h = sv->find("queue_wait"); h != nullptr)
      p.serve.queue_wait = LatencyHistogram::from_json(*h);
    if (const Json* h = sv->find("batch_exec"); h != nullptr)
      p.serve.batch_exec = LatencyHistogram::from_json(*h);
    // Sharded-serving blocks (spmv::shard); older artifacts omit them.
    if (const Json* tenants = sv->find("tenants"); tenants != nullptr) {
      for (const Json& tj : tenants->items()) {
        TenantStats t;
        t.name = tj.at("name").as_string();
        t.weight = tj.at("weight").as_number();
        t.requests = tj.at("requests").as_uint();
        t.rejected = tj.at("rejected").as_uint();
        t.dispatched = tj.at("dispatched").as_uint();
        if (const Json* h = tj.find("latency"); h != nullptr)
          t.latency = LatencyHistogram::from_json(*h);
        p.serve.tenants.push_back(std::move(t));
      }
    }
    if (const Json* shards = sv->find("shards"); shards != nullptr) {
      for (const Json& sj : shards->items()) {
        ShardStats sh;
        sh.shard = static_cast<int>(sj.at("shard").as_int());
        sh.row_begin = sj.at("row_begin").as_int();
        sh.row_end = sj.at("row_end").as_int();
        sh.nnz = sj.at("nnz").as_int();
        sh.plan = sj.at("plan").as_string();
        sh.executions = sj.at("executions").as_uint();
        sh.exec_total_s = sj.at("exec_total_s").as_number();
        sh.promotions = sj.at("promotions").as_uint();
        p.serve.shards.push_back(std::move(sh));
      }
    }
  }

  // Optional: only present when an online tuner recorded into the profile.
  if (const Json* ad = j.find("adapt"); ad != nullptr) {
    p.adapt.trials = ad->at("trials").as_uint();
    p.adapt.promotions = ad->at("promotions").as_uint();
    p.adapt.regret_s = ad->at("regret_s").as_number();
    // U-exploration counters arrived later; older artifacts omit them.
    if (const Json* v = ad->find("u_trials"); v != nullptr)
      p.adapt.u_trials = v->as_uint();
    if (const Json* v = ad->find("u_promotions"); v != nullptr)
      p.adapt.u_promotions = v->as_uint();
    // Backend-exploration counters are newer still.
    if (const Json* v = ad->find("b_trials"); v != nullptr)
      p.adapt.b_trials = v->as_uint();
    if (const Json* v = ad->find("b_promotions"); v != nullptr)
      p.adapt.b_promotions = v->as_uint();
    // Format-exploration counters (spmv::fmt) are the newest.
    if (const Json* v = ad->find("f_trials"); v != nullptr)
      p.adapt.f_trials = v->as_uint();
    if (const Json* v = ad->find("f_promotions"); v != nullptr)
      p.adapt.f_promotions = v->as_uint();
    if (const Json* v = ad->find("l_trials"); v != nullptr)
      p.adapt.l_trials = v->as_uint();
    if (const Json* v = ad->find("l_promotions"); v != nullptr)
      p.adapt.l_promotions = v->as_uint();
  }

  // Optional: only present when tracing ran alongside the profiled work.
  if (const Json* tr = j.find("trace"); tr != nullptr) {
    p.trace_stats.events = tr->at("events").as_uint();
    p.trace_stats.dropped_spans = tr->at("dropped_spans").as_uint();
    p.trace_stats.threads = tr->at("threads").as_int();
  }
  return p;
}

std::string RunProfile::to_json_text(int indent) const {
  return to_json().dump(indent) + "\n";
}

void write_profile_file(const std::string& path, const RunProfile& profile) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write profile file: " + path);
  out << profile.to_json_text();
  if (!out) throw std::runtime_error("error writing profile file: " + path);
}

RunProfile read_profile_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read profile file: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return RunProfile::from_json(Json::parse(text.str()));
}

std::string prometheus_escape_label(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

namespace {

void metric(std::string& out, const std::string& name, const char* type,
            const char* help, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  out += "# HELP " + name + " " + help + "\n";
  out += "# TYPE " + name + " " + type + "\n";
  out += name + " " + buf + "\n";
}

/// A latency distribution as a Prometheus summary: quantiles + _sum/_count.
void summary(std::string& out, const std::string& name, const char* help,
             const LatencyHistogram& h) {
  out += "# HELP " + name + " " + help + "\n";
  out += "# TYPE " + name + " summary\n";
  const struct {
    const char* label;
    double p;
  } quantiles[] = {{"0.5", 50.0}, {"0.95", 95.0}, {"0.99", 99.0}};
  char buf[64];
  for (const auto& q : quantiles) {
    std::snprintf(buf, sizeof(buf), "%.9g", h.percentile(q.p));
    out += name + "{quantile=\"" + q.label + "\"} " + buf + "\n";
  }
  std::snprintf(buf, sizeof(buf), "%.9g", h.total_s());
  out += name + "_sum " + buf + "\n";
  out += name + "_count " + std::to_string(h.count()) + "\n";
}

/// Exemplar label values. Backend numbers follow exec::BackendKind (not
/// included here — prof sits below exec in the layering).
const char* backend_label(std::uint8_t backend) {
  switch (backend) {
    case 0: return "clsim";
    case 1: return "native";
    default: return "unknown";
  }
}

const char* promo_label(std::uint8_t level) {
  switch (level) {
    case 1: return "kernel";
    case 2: return "unit";
    case 3: return "backend";
    case 4: return "format";
    default: return "none";
  }
}

std::string exemplar_text(const Exemplar& e) {
  char tid[32];
  std::snprintf(tid, sizeof(tid), "%016llx",
                static_cast<unsigned long long>(e.trace_id));
  char fp[32];
  std::snprintf(fp, sizeof(fp), "%016llx",
                static_cast<unsigned long long>(e.fingerprint));
  char val[64];
  std::snprintf(val, sizeof(val), "%.9g", e.value_s);
  std::string out = " # {trace_id=\"";
  out += tid;
  out += "\",fingerprint=\"";
  out += fp;
  out += "\",plan_revision=\"";
  out += std::to_string(e.plan_revision);
  out += "\",backend=\"";
  out += backend_label(e.backend);
  out += "\",formats=\"";
  out += e.formats ? "1" : "0";
  out += "\",promo_level=\"";
  out += promo_label(e.promo_level);
  if (e.shard >= 0) {
    out += "\",shard=\"";
    out += std::to_string(e.shard);
  }
  out += "\"} ";
  out += val;
  return out;
}

/// One labelled sample line (no HELP/TYPE header — callers emit the header
/// once and then one line per tenant/shard label set).
void labelled(std::string& out, const std::string& name,
              const std::string& labels, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  out += name + "{" + labels + "} " + buf + "\n";
}

/// A latency distribution as a full Prometheus histogram: cumulative
/// `le`-labelled bucket counts (non-empty buckets plus +Inf), _sum and
/// _count — and, OpenMetrics-style, each non-empty bucket's retained
/// exemplar appended after `#`.
void histogram(std::string& out, const std::string& name, const char* help,
               const LatencyHistogram& h) {
  out += "# HELP " + name + " " + help + "\n";
  out += "# TYPE " + name + " histogram\n";
  char buf[64];
  std::uint64_t cum = 0;
  for (int i = 0; i < LatencyHistogram::kBuckets; ++i) {
    const std::uint64_t n = h.buckets()[static_cast<std::size_t>(i)];
    if (n == 0) continue;
    cum += n;
    std::snprintf(buf, sizeof(buf), "%.9g",
                  LatencyHistogram::bucket_upper_bound(i));
    out += name + "_bucket{le=\"" + buf + "\"} " + std::to_string(cum);
    const Exemplar& e = h.exemplar(i);
    if (e.valid()) out += exemplar_text(e);
    out += "\n";
  }
  out += name + "_bucket{le=\"+Inf\"} " + std::to_string(h.count()) + "\n";
  std::snprintf(buf, sizeof(buf), "%.9g", h.total_s());
  out += name + "_sum " + buf + "\n";
  out += name + "_count " + std::to_string(h.count()) + "\n";
}

}  // namespace

std::string prometheus_text(const RunProfile& profile) {
  std::string out;
  if (!profile.label.empty()) {
    out += "# HELP spmv_profile_info Profile identity (value is always 1)\n";
    out += "# TYPE spmv_profile_info gauge\n";
    out += "spmv_profile_info{label=\"" +
           prometheus_escape_label(profile.label) + "\"} 1\n";
  }
  metric(out, "spmv_runs_total", "counter", "SpMV executions recorded",
         static_cast<double>(profile.runs));
  metric(out, "spmv_run_seconds_total", "counter",
         "Summed wall time of recorded executions", profile.run_total_s);
  metric(out, "spmv_plan_seconds", "gauge",
         "Plan construction time (features + predict + binning)",
         profile.plan_timing.total_s());
  metric(out, "spmv_engine_launches_total", "counter",
         "Engine kernel launches", static_cast<double>(profile.engine.launches));
  metric(out, "spmv_engine_groups_total", "counter",
         "Engine parallel group dispatches",
         static_cast<double>(profile.engine.groups));
  if (profile.spmm_fallback_columns != 0)
    metric(out, "spmv_spmm_fallback_columns_total", "counter",
           "Dense RHS columns executed via per-column fallback",
           static_cast<double>(profile.spmm_fallback_columns));
  const ServeStats& s = profile.serve;
  if (!s.empty()) {
    metric(out, "spmv_serve_requests_total", "counter",
           "Requests accepted into the serving queue",
           static_cast<double>(s.requests));
    metric(out, "spmv_serve_rejected_total", "counter",
           "Requests bounced by backpressure", static_cast<double>(s.rejected));
    metric(out, "spmv_serve_batches_total", "counter",
           "Batches dispatched to execution", static_cast<double>(s.batches));
    metric(out, "spmv_serve_cache_hits_total", "counter",
           "Plan-cache hits", static_cast<double>(s.cache_hits));
    metric(out, "spmv_serve_cache_misses_total", "counter",
           "Plan-cache misses", static_cast<double>(s.cache_misses));
    metric(out, "spmv_serve_cache_evictions_total", "counter",
           "Plan-cache evictions", static_cast<double>(s.cache_evictions));
    metric(out, "spmv_serve_cache_hit_rate", "gauge",
           "Plan-cache hit fraction", s.cache_hit_rate());
    metric(out, "spmv_serve_cache_warm_hits_total", "counter",
           "Cache misses satisfied from a warm PlanStore",
           static_cast<double>(s.cache_warm_hits));
    metric(out, "spmv_serve_planning_passes_total", "counter",
           "Full predictor-driven planning passes",
           static_cast<double>(s.planning_passes));
    metric(out, "spmv_serve_cache_rebin_promotions_total", "counter",
           "Promotions that re-binned a cached plan",
           static_cast<double>(s.cache_rebin_promotions));
    summary(out, "spmv_serve_request_latency_seconds",
            "End-to-end request latency quantiles", s.request_latency);
    summary(out, "spmv_serve_queue_wait_seconds",
            "Submit-to-dispatch wait quantiles", s.queue_wait);
    summary(out, "spmv_serve_batch_exec_seconds",
            "Batch execution wall-time quantiles", s.batch_exec);
    histogram(out, "spmv_serve_request_latency_hist_seconds",
              "End-to-end request latency distribution", s.request_latency);
    histogram(out, "spmv_serve_queue_wait_hist_seconds",
              "Submit-to-dispatch wait distribution", s.queue_wait);
    histogram(out, "spmv_serve_batch_exec_hist_seconds",
              "Batch execution wall-time distribution", s.batch_exec);
    if (!s.tenants.empty()) {
      out += "# HELP spmv_serve_tenant_requests_total Requests accepted per"
             " tenant\n# TYPE spmv_serve_tenant_requests_total counter\n";
      for (const TenantStats& t : s.tenants)
        labelled(out, "spmv_serve_tenant_requests_total",
                 "tenant=\"" + prometheus_escape_label(t.name) + "\"",
                 static_cast<double>(t.requests));
      out += "# HELP spmv_serve_tenant_rejected_total Admission bounces per"
             " tenant (global bound or fair-queue quota)\n"
             "# TYPE spmv_serve_tenant_rejected_total counter\n";
      for (const TenantStats& t : s.tenants)
        labelled(out, "spmv_serve_tenant_rejected_total",
                 "tenant=\"" + prometheus_escape_label(t.name) + "\"",
                 static_cast<double>(t.rejected));
      out += "# HELP spmv_serve_tenant_latency_seconds Per-tenant end-to-end"
             " latency quantiles\n"
             "# TYPE spmv_serve_tenant_latency_seconds summary\n";
      for (const TenantStats& t : s.tenants) {
        const std::string tl =
            "tenant=\"" + prometheus_escape_label(t.name) + "\"";
        labelled(out, "spmv_serve_tenant_latency_seconds",
                 tl + ",quantile=\"0.5\"", t.latency.percentile(50.0));
        labelled(out, "spmv_serve_tenant_latency_seconds",
                 tl + ",quantile=\"0.95\"", t.latency.percentile(95.0));
        labelled(out, "spmv_serve_tenant_latency_seconds",
                 tl + ",quantile=\"0.99\"", t.latency.percentile(99.0));
        labelled(out, "spmv_serve_tenant_latency_seconds_sum", tl,
                 t.latency.total_s());
        labelled(out, "spmv_serve_tenant_latency_seconds_count", tl,
                 static_cast<double>(t.latency.count()));
      }
    }
    if (!s.shards.empty()) {
      out += "# HELP spmv_serve_shard_executions_total Kernel dispatches per"
             " row shard\n# TYPE spmv_serve_shard_executions_total counter\n";
      for (const ShardStats& sh : s.shards)
        labelled(out, "spmv_serve_shard_executions_total",
                 "shard=\"" + std::to_string(sh.shard) + "\"",
                 static_cast<double>(sh.executions));
      out += "# HELP spmv_serve_shard_exec_seconds_total Execution wall time"
             " per row shard\n"
             "# TYPE spmv_serve_shard_exec_seconds_total counter\n";
      for (const ShardStats& sh : s.shards)
        labelled(out, "spmv_serve_shard_exec_seconds_total",
                 "shard=\"" + std::to_string(sh.shard) + "\"",
                 sh.exec_total_s);
      out += "# HELP spmv_serve_shard_promotions_total Bandit promotions per"
             " row shard\n# TYPE spmv_serve_shard_promotions_total counter\n";
      for (const ShardStats& sh : s.shards)
        labelled(out, "spmv_serve_shard_promotions_total",
                 "shard=\"" + std::to_string(sh.shard) + "\"",
                 static_cast<double>(sh.promotions));
    }
  }
  const AdaptStats& a = profile.adapt;
  if (!a.empty()) {
    metric(out, "spmv_adapt_trials_total", "counter",
           "Shadow-measurement trials", static_cast<double>(a.trials));
    metric(out, "spmv_adapt_promotions_total", "counter",
           "Plan promotions into the cache",
           static_cast<double>(a.promotions));
    metric(out, "spmv_adapt_regret_seconds_total", "counter",
           "Wall time lost to losing challengers", a.regret_s);
    metric(out, "spmv_adapt_u_trials_total", "counter",
           "Binning-unit (U) exploration trials",
           static_cast<double>(a.u_trials));
    metric(out, "spmv_adapt_u_promotions_total", "counter",
           "Binning-unit (U) promotions", static_cast<double>(a.u_promotions));
    metric(out, "spmv_adapt_b_trials_total", "counter",
           "Backend exploration trials", static_cast<double>(a.b_trials));
    metric(out, "spmv_adapt_b_promotions_total", "counter",
           "Backend promotions", static_cast<double>(a.b_promotions));
    metric(out, "spmv_adapt_f_trials_total", "counter",
           "Per-bin format exploration trials",
           static_cast<double>(a.f_trials));
    metric(out, "spmv_adapt_f_promotions_total", "counter",
           "Per-bin format promotions", static_cast<double>(a.f_promotions));
    metric(out, "spmv_adapt_l_trials_total", "counter",
           "Latency-feedback challenger iterations observed",
           static_cast<double>(a.l_trials));
    metric(out, "spmv_adapt_l_promotions_total", "counter",
           "Latency-feedback promotions", static_cast<double>(a.l_promotions));
  }
  const TraceStats& t = profile.trace_stats;
  if (!t.empty()) {
    metric(out, "spmv_trace_events_total", "counter",
           "Trace spans surviving in the per-thread rings",
           static_cast<double>(t.events));
    metric(out, "spmv_trace_dropped_spans_total", "counter",
           "Trace spans lost to ring wrap-around",
           static_cast<double>(t.dropped_spans));
    metric(out, "spmv_trace_threads", "gauge",
           "Distinct recording threads", static_cast<double>(t.threads));
  }
  return out;
}

}  // namespace spmv::prof

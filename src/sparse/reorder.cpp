#include "sparse/reorder.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace spmv {

bool is_identity(std::span<const index_t> perm) {
  for (std::size_t i = 0; i < perm.size(); ++i) {
    if (perm[i] != static_cast<index_t>(i)) return false;
  }
  return true;
}

bool is_permutation(std::span<const index_t> perm, index_t n) {
  if (perm.size() != static_cast<std::size_t>(n)) return false;
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  for (index_t p : perm) {
    if (p < 0 || p >= n || seen[static_cast<std::size_t>(p)]) return false;
    seen[static_cast<std::size_t>(p)] = true;
  }
  return true;
}

template <typename T>
RowPermutation sort_rows_by_length(const CsrMatrix<T>& a) {
  RowPermutation perm(static_cast<std::size_t>(a.rows()));
  std::iota(perm.begin(), perm.end(), index_t{0});
  std::stable_sort(perm.begin(), perm.end(), [&](index_t l, index_t r) {
    return a.row_nnz(l) < a.row_nnz(r);
  });
  return perm;
}

template <typename T>
CsrMatrix<T> permute_rows(const CsrMatrix<T>& a,
                          std::span<const index_t> perm) {
  if (!is_permutation(perm, a.rows()))
    throw std::invalid_argument("permute_rows: not a row permutation");
  const auto row_ptr = a.row_ptr();
  const auto col_idx = a.col_idx();
  const auto vals = a.vals();

  std::vector<offset_t> new_ptr(static_cast<std::size_t>(a.rows()) + 1, 0);
  for (index_t i = 0; i < a.rows(); ++i) {
    new_ptr[static_cast<std::size_t>(i) + 1] =
        new_ptr[static_cast<std::size_t>(i)] +
        a.row_nnz(perm[static_cast<std::size_t>(i)]);
  }
  std::vector<index_t> new_col(static_cast<std::size_t>(a.nnz()));
  std::vector<T> new_val(static_cast<std::size_t>(a.nnz()));
  for (index_t i = 0; i < a.rows(); ++i) {
    const auto src = perm[static_cast<std::size_t>(i)];
    const auto src_begin =
        static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(src)]);
    const auto len = static_cast<std::size_t>(a.row_nnz(src));
    const auto dst =
        static_cast<std::size_t>(new_ptr[static_cast<std::size_t>(i)]);
    std::copy_n(col_idx.begin() + static_cast<std::ptrdiff_t>(src_begin), len,
                new_col.begin() + static_cast<std::ptrdiff_t>(dst));
    std::copy_n(vals.begin() + static_cast<std::ptrdiff_t>(src_begin), len,
                new_val.begin() + static_cast<std::ptrdiff_t>(dst));
  }
  return CsrMatrix<T>(a.rows(), a.cols(), std::move(new_ptr),
                      std::move(new_col), std::move(new_val));
}

template <typename T>
void unpermute(std::span<const T> y_perm, std::span<const index_t> perm,
               std::span<T> y_orig) {
  if (y_perm.size() != perm.size() || y_orig.size() != perm.size())
    throw std::invalid_argument("unpermute: size mismatch");
  for (std::size_t i = 0; i < perm.size(); ++i) {
    y_orig[static_cast<std::size_t>(perm[i])] = y_perm[i];
  }
}

RowPermutation invert_permutation(std::span<const index_t> perm) {
  RowPermutation inv(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    inv[static_cast<std::size_t>(perm[i])] = static_cast<index_t>(i);
  }
  return inv;
}

#define SPMV_REORDER_INSTANTIATE(T)                                  \
  template RowPermutation sort_rows_by_length(const CsrMatrix<T>&);  \
  template CsrMatrix<T> permute_rows(const CsrMatrix<T>&,            \
                                     std::span<const index_t>);      \
  template void unpermute(std::span<const T>, std::span<const index_t>, \
                          std::span<T>);
SPMV_REORDER_INSTANTIATE(float)
SPMV_REORDER_INSTANTIATE(double)
#undef SPMV_REORDER_INSTANTIATE

}  // namespace spmv

// Compressed Sparse Row matrix — the storage format the whole paper (and
// therefore this library) is built around (Figure 1 of the paper).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "sparse/types.hpp"

namespace spmv {

/// CSR sparse matrix.
///
/// Invariants (checked by validate()):
///  * row_ptr has rows()+1 entries, is non-decreasing, row_ptr[0] == 0 and
///    row_ptr[rows()] == nnz();
///  * col_idx/vals have nnz() entries; every column index is in [0, cols()).
/// Column indices within a row are not required to be sorted (generators
/// produce sorted rows, but kernels never rely on it).
template <typename T>
class CsrMatrix {
 public:
  using value_type = T;

  CsrMatrix() : row_ptr_(1, 0) {}

  /// Adopt pre-built arrays. Throws std::invalid_argument when the basic
  /// shape constraints are violated (full validation is validate()).
  CsrMatrix(index_t rows, index_t cols, std::vector<offset_t> row_ptr,
            std::vector<index_t> col_idx, std::vector<T> vals);

  [[nodiscard]] index_t rows() const { return rows_; }
  [[nodiscard]] index_t cols() const { return cols_; }
  [[nodiscard]] offset_t nnz() const { return row_ptr_.back(); }

  [[nodiscard]] std::span<const offset_t> row_ptr() const { return row_ptr_; }
  [[nodiscard]] std::span<const index_t> col_idx() const { return col_idx_; }
  [[nodiscard]] std::span<const T> vals() const { return vals_; }
  [[nodiscard]] std::span<T> vals_mutable() { return vals_; }

  /// Number of non-zeros in row i.
  [[nodiscard]] offset_t row_nnz(index_t i) const {
    return row_ptr_[static_cast<std::size_t>(i) + 1] -
           row_ptr_[static_cast<std::size_t>(i)];
  }

  /// Full structural validation; returns an explanation on failure.
  [[nodiscard]] bool validate(std::string* why = nullptr) const;

  /// Approximate heap footprint in bytes (arrays only).
  [[nodiscard]] std::size_t bytes() const {
    return row_ptr_.size() * sizeof(offset_t) +
           col_idx_.size() * sizeof(index_t) + vals_.size() * sizeof(T);
  }

  friend bool operator==(const CsrMatrix& a, const CsrMatrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ &&
           a.row_ptr_ == b.row_ptr_ && a.col_idx_ == b.col_idx_ &&
           a.vals_ == b.vals_;
  }

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<offset_t> row_ptr_;
  std::vector<index_t> col_idx_;
  std::vector<T> vals_;
};

extern template class CsrMatrix<float>;
extern template class CsrMatrix<double>;

}  // namespace spmv

// Compressed Sparse Row matrix — the storage format the whole paper (and
// therefore this library) is built around (Figure 1 of the paper).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "sparse/types.hpp"

namespace spmv {

namespace detail {
/// Process-unique, never-recycled id source for CsrMatrix::instance_id().
/// Thread-safe; starts at 1 so 0 can mean "no instance".
std::uint64_t next_matrix_instance_id();
}  // namespace detail

/// CSR sparse matrix.
///
/// Invariants (checked by validate()):
///  * row_ptr has rows()+1 entries, is non-decreasing, row_ptr[0] == 0 and
///    row_ptr[rows()] == nnz();
///  * col_idx/vals have nnz() entries; every column index is in [0, cols()).
/// Column indices within a row are not required to be sorted (generators
/// produce sorted rows, but kernels never rely on it).
template <typename T>
class CsrMatrix {
 public:
  using value_type = T;

  CsrMatrix() : row_ptr_(1, 0) {}

  /// Adopt pre-built arrays. Throws std::invalid_argument when the basic
  /// shape constraints are violated (full validation is validate()).
  CsrMatrix(index_t rows, index_t cols, std::vector<offset_t> row_ptr,
            std::vector<index_t> col_idx, std::vector<T> vals);

  // The instance id identifies "these values in this object". A copy is a
  // new instance (its values can diverge after the copy); a move carries
  // the buffers, so the id travels with them and the moved-from shell is
  // re-issued a fresh one. Ids are never recycled, so — unlike a buffer
  // address — an id observed once can never later denote different values.
  CsrMatrix(const CsrMatrix& o)
      : rows_(o.rows_),
        cols_(o.cols_),
        row_ptr_(o.row_ptr_),
        col_idx_(o.col_idx_),
        vals_(o.vals_) {}
  CsrMatrix& operator=(const CsrMatrix& o) {
    rows_ = o.rows_;
    cols_ = o.cols_;
    row_ptr_ = o.row_ptr_;
    col_idx_ = o.col_idx_;
    vals_ = o.vals_;
    instance_id_ = detail::next_matrix_instance_id();
    return *this;
  }
  CsrMatrix(CsrMatrix&& o) noexcept
      : rows_(o.rows_),
        cols_(o.cols_),
        row_ptr_(std::move(o.row_ptr_)),
        col_idx_(std::move(o.col_idx_)),
        vals_(std::move(o.vals_)),
        instance_id_(o.instance_id_) {
    o.instance_id_ = detail::next_matrix_instance_id();
  }
  CsrMatrix& operator=(CsrMatrix&& o) noexcept {
    if (this != &o) {
      rows_ = o.rows_;
      cols_ = o.cols_;
      row_ptr_ = std::move(o.row_ptr_);
      col_idx_ = std::move(o.col_idx_);
      vals_ = std::move(o.vals_);
      instance_id_ = o.instance_id_;
      o.instance_id_ = detail::next_matrix_instance_id();
    }
    return *this;
  }
  ~CsrMatrix() = default;

  [[nodiscard]] index_t rows() const { return rows_; }
  [[nodiscard]] index_t cols() const { return cols_; }
  [[nodiscard]] offset_t nnz() const { return row_ptr_.back(); }

  [[nodiscard]] std::span<const offset_t> row_ptr() const { return row_ptr_; }
  [[nodiscard]] std::span<const index_t> col_idx() const { return col_idx_; }
  [[nodiscard]] std::span<const T> vals() const { return vals_; }
  /// Mutable values. Anything keyed to instance_id() embeds the values it
  /// saw (e.g. a materialized fmt layout), so handing out write access
  /// re-issues the id — the caller is free to diverge the buffer.
  [[nodiscard]] std::span<T> vals_mutable() {
    instance_id_ = detail::next_matrix_instance_id();
    return vals_;
  }

  /// Replace the nonzero values in place, keeping the structure (row_ptr /
  /// col_idx) untouched. `new_vals` must hold exactly nnz() entries in CSR
  /// order, else std::invalid_argument. A value-only mutation: plans and
  /// bins stay valid (they are structure-derived), but anything keyed to
  /// instance_id() embeds the old values, so the id is re-issued — layout
  /// caches revalidate via fmt::PlanLayouts::refresh_values instead of
  /// rebuilding from scratch.
  void update_values(std::span<const T> new_vals) {
    if (new_vals.size() != vals_.size())
      throw std::invalid_argument(
          "CsrMatrix::update_values: expected " +
          std::to_string(vals_.size()) + " values, got " +
          std::to_string(new_vals.size()));
    std::copy(new_vals.begin(), new_vals.end(), vals_.begin());
    instance_id_ = detail::next_matrix_instance_id();
  }

  /// Process-unique identity of this (object, values) pairing — stable
  /// across const reads, re-issued by copies/moves and vals_mutable().
  /// Never recycled, so it is safe to key caches of values-derived data by
  /// it even after the matrix dies (a buffer address is not: allocators
  /// reuse addresses).
  [[nodiscard]] std::uint64_t instance_id() const { return instance_id_; }

  /// Number of non-zeros in row i.
  [[nodiscard]] offset_t row_nnz(index_t i) const {
    return row_ptr_[static_cast<std::size_t>(i) + 1] -
           row_ptr_[static_cast<std::size_t>(i)];
  }

  /// Full structural validation; returns an explanation on failure.
  [[nodiscard]] bool validate(std::string* why = nullptr) const;

  /// Approximate heap footprint in bytes (arrays only).
  [[nodiscard]] std::size_t bytes() const {
    return row_ptr_.size() * sizeof(offset_t) +
           col_idx_.size() * sizeof(index_t) + vals_.size() * sizeof(T);
  }

  friend bool operator==(const CsrMatrix& a, const CsrMatrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ &&
           a.row_ptr_ == b.row_ptr_ && a.col_idx_ == b.col_idx_ &&
           a.vals_ == b.vals_;
  }

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<offset_t> row_ptr_;
  std::vector<index_t> col_idx_;
  std::vector<T> vals_;
  std::uint64_t instance_id_ = detail::next_matrix_instance_id();
};

extern template class CsrMatrix<float>;
extern template class CsrMatrix<double>;

}  // namespace spmv

#include "sparse/ell.hpp"

#include <algorithm>
#include <stdexcept>

#include <omp.h>

namespace spmv {

template <typename T>
EllMatrix<T>::EllMatrix(index_t rows, index_t cols, index_t width,
                        std::vector<index_t> col_idx, std::vector<T> vals)
    : rows_(rows),
      cols_(cols),
      width_(width),
      col_idx_(std::move(col_idx)),
      vals_(std::move(vals)) {
  const auto expected = static_cast<std::size_t>(rows) *
                        static_cast<std::size_t>(width);
  if (col_idx_.size() != expected || vals_.size() != expected)
    throw std::invalid_argument("EllMatrix: array size != rows*width");
}

template <typename T>
double ell_padding_ratio(const CsrMatrix<T>& a) {
  if (a.nnz() == 0) return 0.0;
  offset_t max_len = 0;
  for (index_t i = 0; i < a.rows(); ++i)
    max_len = std::max(max_len, a.row_nnz(i));
  return static_cast<double>(a.rows()) * static_cast<double>(max_len) /
         static_cast<double>(a.nnz());
}

template <typename T>
EllMatrix<T> csr_to_ell(const CsrMatrix<T>& a, double max_expansion) {
  const double ratio = ell_padding_ratio(a);
  if (ratio > max_expansion)
    throw std::length_error("csr_to_ell: padding ratio " +
                            std::to_string(ratio) + " exceeds limit");
  offset_t max_len = 0;
  for (index_t i = 0; i < a.rows(); ++i)
    max_len = std::max(max_len, a.row_nnz(i));
  const auto width = static_cast<index_t>(max_len);
  const auto rows = a.rows();
  const auto total = static_cast<std::size_t>(rows) *
                     static_cast<std::size_t>(width);

  std::vector<index_t> col_idx(total, index_t{-1});
  std::vector<T> vals(total, T{});
  const auto row_ptr = a.row_ptr();
  const auto src_col = a.col_idx();
  const auto src_val = a.vals();
#pragma omp parallel for schedule(static) if (rows > (1 << 14))
  for (index_t r = 0; r < rows; ++r) {
    const offset_t begin = row_ptr[static_cast<std::size_t>(r)];
    const offset_t len = a.row_nnz(r);
    for (offset_t k = 0; k < len; ++k) {
      // Column-major so the SpMV inner loop strides by `rows`.
      const auto dst = static_cast<std::size_t>(k) *
                           static_cast<std::size_t>(rows) +
                       static_cast<std::size_t>(r);
      col_idx[dst] = src_col[static_cast<std::size_t>(begin + k)];
      vals[dst] = src_val[static_cast<std::size_t>(begin + k)];
    }
  }
  return EllMatrix<T>(rows, a.cols(), width, std::move(col_idx),
                      std::move(vals));
}

template <typename T>
void spmv_ell(const EllMatrix<T>& a, std::span<const T> x, std::span<T> y) {
  if (x.size() != static_cast<std::size_t>(a.cols()))
    throw std::invalid_argument("spmv_ell: x size != cols");
  if (y.size() != static_cast<std::size_t>(a.rows()))
    throw std::invalid_argument("spmv_ell: y size != rows");
  const auto rows = a.rows();
  const auto width = a.width();
  const auto col_idx = a.col_idx();
  const auto vals = a.vals();

#pragma omp parallel for schedule(static)
  for (index_t r = 0; r < rows; ++r) {
    T sum{};
    for (index_t k = 0; k < width; ++k) {
      const auto idx = static_cast<std::size_t>(k) *
                           static_cast<std::size_t>(rows) +
                       static_cast<std::size_t>(r);
      const index_t c = col_idx[idx];
      if (c >= 0) sum += vals[idx] * x[static_cast<std::size_t>(c)];
    }
    y[static_cast<std::size_t>(r)] = sum;
  }
}

#define SPMV_ELL_INSTANTIATE(T)                                          \
  template class EllMatrix<T>;                                           \
  template EllMatrix<T> csr_to_ell(const CsrMatrix<T>&, double);         \
  template double ell_padding_ratio(const CsrMatrix<T>&);                \
  template void spmv_ell(const EllMatrix<T>&, std::span<const T>,        \
                         std::span<T>);
SPMV_ELL_INSTANTIATE(float)
SPMV_ELL_INSTANTIATE(double)
#undef SPMV_ELL_INSTANTIATE

}  // namespace spmv

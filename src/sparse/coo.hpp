// Coordinate-format sparse matrix: the assembly/interchange format.
// Generators and the Matrix Market reader produce COO; kernels consume CSR.
#pragma once

#include <cstddef>
#include <vector>

#include "sparse/types.hpp"

namespace spmv {

/// One non-zero entry.
template <typename T>
struct CooEntry {
  index_t row = 0;
  index_t col = 0;
  T value{};

  friend bool operator==(const CooEntry&, const CooEntry&) = default;
};

/// Coordinate-format sparse matrix. Entries may be unsorted and contain
/// duplicates until sort_row_major() / coalesce() are called.
template <typename T>
class CooMatrix {
 public:
  CooMatrix() = default;
  CooMatrix(index_t rows, index_t cols) : rows_(rows), cols_(cols) {}

  [[nodiscard]] index_t rows() const { return rows_; }
  [[nodiscard]] index_t cols() const { return cols_; }
  [[nodiscard]] std::size_t nnz() const { return entries_.size(); }

  [[nodiscard]] const std::vector<CooEntry<T>>& entries() const {
    return entries_;
  }
  [[nodiscard]] std::vector<CooEntry<T>>& entries() { return entries_; }

  /// Append one entry. Bounds are checked by validate(), not here, so bulk
  /// generation stays cheap.
  void add(index_t row, index_t col, T value) {
    entries_.push_back({row, col, value});
  }

  void reserve(std::size_t n) { entries_.reserve(n); }

  /// Sort entries by (row, col). Stable with respect to duplicate keys.
  void sort_row_major();

  /// Sum duplicate (row, col) entries into one. Implies sort_row_major().
  void coalesce();

  /// True when every entry is inside [0, rows) x [0, cols).
  [[nodiscard]] bool validate() const;

  /// True when entries are sorted by (row, col) with no duplicates.
  [[nodiscard]] bool is_canonical() const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<CooEntry<T>> entries_;
};

extern template class CooMatrix<float>;
extern template class CooMatrix<double>;

}  // namespace spmv

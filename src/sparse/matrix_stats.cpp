#include "sparse/matrix_stats.hpp"

namespace spmv {

template <typename T>
RowStats compute_row_stats(const CsrMatrix<T>& a) {
  RowStats s;
  s.rows = a.rows();
  s.cols = a.cols();
  s.nnz = a.nnz();
  util::RunningStats rs;
  for (index_t i = 0; i < a.rows(); ++i)
    rs.add(static_cast<double>(a.row_nnz(i)));
  s.avg_nnz = rs.mean();
  s.var_nnz = rs.variance();
  s.min_nnz = static_cast<offset_t>(rs.min());
  s.max_nnz = static_cast<offset_t>(rs.max());
  return s;
}

template <typename T>
std::vector<offset_t> row_lengths(const CsrMatrix<T>& a) {
  std::vector<offset_t> lengths(static_cast<std::size_t>(a.rows()));
  for (index_t i = 0; i < a.rows(); ++i)
    lengths[static_cast<std::size_t>(i)] = a.row_nnz(i);
  return lengths;
}

template <typename T>
void accumulate_row_histogram(const CsrMatrix<T>& a, util::Histogram& hist) {
  for (index_t i = 0; i < a.rows(); ++i)
    hist.add(static_cast<std::uint64_t>(a.row_nnz(i)));
}

template RowStats compute_row_stats(const CsrMatrix<float>&);
template RowStats compute_row_stats(const CsrMatrix<double>&);
template std::vector<offset_t> row_lengths(const CsrMatrix<float>&);
template std::vector<offset_t> row_lengths(const CsrMatrix<double>&);
template void accumulate_row_histogram(const CsrMatrix<float>&,
                                       util::Histogram&);
template void accumulate_row_histogram(const CsrMatrix<double>&,
                                       util::Histogram&);

}  // namespace spmv

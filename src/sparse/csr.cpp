#include "sparse/csr.hpp"

#include <atomic>
#include <stdexcept>

namespace spmv {

namespace detail {
std::uint64_t next_matrix_instance_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}
}  // namespace detail

template <typename T>
CsrMatrix<T>::CsrMatrix(index_t rows, index_t cols,
                        std::vector<offset_t> row_ptr,
                        std::vector<index_t> col_idx, std::vector<T> vals)
    : rows_(rows),
      cols_(cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      vals_(std::move(vals)) {
  if (rows_ < 0 || cols_ < 0)
    throw std::invalid_argument("CsrMatrix: negative dimensions");
  if (row_ptr_.size() != static_cast<std::size_t>(rows_) + 1)
    throw std::invalid_argument("CsrMatrix: row_ptr size != rows+1");
  if (col_idx_.size() != vals_.size())
    throw std::invalid_argument("CsrMatrix: col_idx/vals size mismatch");
  if (row_ptr_.back() != static_cast<offset_t>(col_idx_.size()))
    throw std::invalid_argument("CsrMatrix: row_ptr.back() != nnz");
  if (row_ptr_.front() != 0)
    throw std::invalid_argument("CsrMatrix: row_ptr[0] != 0");
  for (std::size_t i = 1; i < row_ptr_.size(); ++i) {
    if (row_ptr_[i] < row_ptr_[i - 1])
      throw std::invalid_argument("CsrMatrix: row_ptr not monotone");
  }
}

template <typename T>
bool CsrMatrix<T>::validate(std::string* why) const {
  auto fail = [&](const char* msg) {
    if (why) *why = msg;
    return false;
  };
  if (row_ptr_.empty() || row_ptr_.front() != 0)
    return fail("row_ptr[0] != 0");
  for (std::size_t i = 1; i < row_ptr_.size(); ++i) {
    if (row_ptr_[i] < row_ptr_[i - 1]) return fail("row_ptr not monotone");
  }
  if (row_ptr_.back() != static_cast<offset_t>(col_idx_.size()))
    return fail("row_ptr.back() != col_idx.size()");
  for (index_t c : col_idx_) {
    if (c < 0 || c >= cols_) return fail("column index out of range");
  }
  if (why) why->clear();
  return true;
}

template class CsrMatrix<float>;
template class CsrMatrix<double>;

}  // namespace spmv

// ELLPACK (ELL) storage — the SIMD-friendly format the paper's
// introduction and related work contrast CSR against.
//
// ELL pads every row to the longest row's length and stores columns/values
// column-major, which vectorizes beautifully for uniform row lengths and
// explodes in memory for skewed ones. The paper's argument for staying in
// CSR is that conversion costs are non-negligible and worst-case padding is
// unbounded; ell_padding_ratio() and the conversion routines here let the
// examples quantify both on any matrix.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sparse/csr.hpp"

namespace spmv {

/// ELLPACK matrix: `width` = max row length; col_idx/vals are
/// column-major, rows*width entries, padded with col -1 / value 0.
template <typename T>
class EllMatrix {
 public:
  EllMatrix() = default;
  EllMatrix(index_t rows, index_t cols, index_t width,
            std::vector<index_t> col_idx, std::vector<T> vals);

  [[nodiscard]] index_t rows() const { return rows_; }
  [[nodiscard]] index_t cols() const { return cols_; }
  [[nodiscard]] index_t width() const { return width_; }
  [[nodiscard]] std::span<const index_t> col_idx() const { return col_idx_; }
  [[nodiscard]] std::span<const T> vals() const { return vals_; }

  /// Stored entries (rows*width) including padding.
  [[nodiscard]] std::size_t stored() const { return col_idx_.size(); }

  /// Heap footprint in bytes.
  [[nodiscard]] std::size_t bytes() const {
    return col_idx_.size() * sizeof(index_t) + vals_.size() * sizeof(T);
  }

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t width_ = 0;
  std::vector<index_t> col_idx_;  // column-major: entry (r, k) at k*rows + r
  std::vector<T> vals_;
};

/// Convert CSR to ELL. Throws std::length_error when the padded size would
/// exceed `max_expansion` times the CSR non-zero count (the unbounded-
/// padding hazard the paper cites; default allows 16x).
template <typename T>
EllMatrix<T> csr_to_ell(const CsrMatrix<T>& a, double max_expansion = 16.0);

/// Padding ratio rows*max_len / nnz of the would-be ELL (cheap; no
/// conversion performed).
template <typename T>
double ell_padding_ratio(const CsrMatrix<T>& a);

/// y = A*x over ELL storage (row-parallel, vector-friendly inner loop).
template <typename T>
void spmv_ell(const EllMatrix<T>& a, std::span<const T> x, std::span<T> y);

#define SPMV_ELL_EXTERN(T)                                                  \
  extern template class EllMatrix<T>;                                       \
  extern template EllMatrix<T> csr_to_ell(const CsrMatrix<T>&, double);     \
  extern template double ell_padding_ratio(const CsrMatrix<T>&);            \
  extern template void spmv_ell(const EllMatrix<T>&, std::span<const T>,    \
                                std::span<T>);
SPMV_ELL_EXTERN(float)
SPMV_ELL_EXTERN(double)
#undef SPMV_ELL_EXTERN

}  // namespace spmv

// Format conversions between COO and CSR, plus structural transforms.
#pragma once

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"

namespace spmv {

/// Build a CSR matrix from COO. Entries are coalesced (duplicates summed)
/// and each row's columns come out sorted. Throws std::invalid_argument if
/// the COO has out-of-range entries.
template <typename T>
CsrMatrix<T> coo_to_csr(CooMatrix<T> coo);

/// Expand a CSR matrix back to canonical (sorted, duplicate-free) COO.
template <typename T>
CooMatrix<T> csr_to_coo(const CsrMatrix<T>& csr);

/// Transpose (CSC of A viewed as CSR of A^T). O(nnz + rows + cols).
template <typename T>
CsrMatrix<T> transpose(const CsrMatrix<T>& a);

/// Value-type conversion (e.g. double-precision reference of a float
/// matrix); structure is copied unchanged.
template <typename To, typename From>
CsrMatrix<To> convert_values(const CsrMatrix<From>& a);

extern template CsrMatrix<float> coo_to_csr(CooMatrix<float>);
extern template CsrMatrix<double> coo_to_csr(CooMatrix<double>);
extern template CooMatrix<float> csr_to_coo(const CsrMatrix<float>&);
extern template CooMatrix<double> csr_to_coo(const CsrMatrix<double>&);
extern template CsrMatrix<float> transpose(const CsrMatrix<float>&);
extern template CsrMatrix<double> transpose(const CsrMatrix<double>&);
extern template CsrMatrix<double> convert_values(const CsrMatrix<float>&);
extern template CsrMatrix<float> convert_values(const CsrMatrix<double>&);

}  // namespace spmv

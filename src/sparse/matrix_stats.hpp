// Row-length statistics of a sparse matrix — the raw material for both the
// paper's Table-I feature vector and the Figure-5 histogram.
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/csr.hpp"
#include "util/stats.hpp"

namespace spmv {

/// Aggregate statistics of the non-zeros-per-row distribution.
struct RowStats {
  index_t rows = 0;
  index_t cols = 0;
  offset_t nnz = 0;
  double avg_nnz = 0.0;  ///< Avg_NNZ in Table I
  double var_nnz = 0.0;  ///< Var_NNZ in Table I (population variance)
  offset_t min_nnz = 0;  ///< Min_NNZ in Table I
  offset_t max_nnz = 0;  ///< Max_NNZ in Table I
};

/// Compute RowStats in one pass over row_ptr.
template <typename T>
RowStats compute_row_stats(const CsrMatrix<T>& a);

/// Per-row NNZ counts (length rows()).
template <typename T>
std::vector<offset_t> row_lengths(const CsrMatrix<T>& a);

/// Accumulate this matrix's row lengths into a histogram (used to build the
/// Figure-5 collection-wide histogram).
template <typename T>
void accumulate_row_histogram(const CsrMatrix<T>& a, util::Histogram& hist);

extern template RowStats compute_row_stats(const CsrMatrix<float>&);
extern template RowStats compute_row_stats(const CsrMatrix<double>&);
extern template std::vector<offset_t> row_lengths(const CsrMatrix<float>&);
extern template std::vector<offset_t> row_lengths(const CsrMatrix<double>&);
extern template void accumulate_row_histogram(const CsrMatrix<float>&,
                                              util::Histogram&);
extern template void accumulate_row_histogram(const CsrMatrix<double>&,
                                              util::Histogram&);

}  // namespace spmv

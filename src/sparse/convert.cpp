#include "sparse/convert.hpp"

#include <stdexcept>

namespace spmv {

template <typename T>
CsrMatrix<T> coo_to_csr(CooMatrix<T> coo) {
  if (!coo.validate())
    throw std::invalid_argument("coo_to_csr: entry out of range");
  coo.coalesce();

  const auto rows = coo.rows();
  std::vector<offset_t> row_ptr(static_cast<std::size_t>(rows) + 1, 0);
  for (const auto& e : coo.entries())
    ++row_ptr[static_cast<std::size_t>(e.row) + 1];
  for (std::size_t i = 1; i < row_ptr.size(); ++i) row_ptr[i] += row_ptr[i - 1];

  std::vector<index_t> col_idx(coo.nnz());
  std::vector<T> vals(coo.nnz());
  // Entries are already row-major sorted, so a single linear pass fills the
  // arrays in order.
  std::size_t k = 0;
  for (const auto& e : coo.entries()) {
    col_idx[k] = e.col;
    vals[k] = e.value;
    ++k;
  }
  return CsrMatrix<T>(rows, coo.cols(), std::move(row_ptr),
                      std::move(col_idx), std::move(vals));
}

template <typename T>
CooMatrix<T> csr_to_coo(const CsrMatrix<T>& csr) {
  CooMatrix<T> coo(csr.rows(), csr.cols());
  coo.reserve(static_cast<std::size_t>(csr.nnz()));
  const auto row_ptr = csr.row_ptr();
  const auto col_idx = csr.col_idx();
  const auto vals = csr.vals();
  for (index_t i = 0; i < csr.rows(); ++i) {
    for (offset_t j = row_ptr[static_cast<std::size_t>(i)];
         j < row_ptr[static_cast<std::size_t>(i) + 1]; ++j) {
      coo.add(i, col_idx[static_cast<std::size_t>(j)],
              vals[static_cast<std::size_t>(j)]);
    }
  }
  return coo;
}

template <typename T>
CsrMatrix<T> transpose(const CsrMatrix<T>& a) {
  const auto row_ptr = a.row_ptr();
  const auto col_idx = a.col_idx();
  const auto vals = a.vals();
  const auto nnz = static_cast<std::size_t>(a.nnz());

  std::vector<offset_t> t_ptr(static_cast<std::size_t>(a.cols()) + 1, 0);
  for (std::size_t k = 0; k < nnz; ++k)
    ++t_ptr[static_cast<std::size_t>(col_idx[k]) + 1];
  for (std::size_t i = 1; i < t_ptr.size(); ++i) t_ptr[i] += t_ptr[i - 1];

  std::vector<index_t> t_col(nnz);
  std::vector<T> t_val(nnz);
  std::vector<offset_t> cursor(t_ptr.begin(), t_ptr.end() - 1);
  for (index_t i = 0; i < a.rows(); ++i) {
    for (offset_t j = row_ptr[static_cast<std::size_t>(i)];
         j < row_ptr[static_cast<std::size_t>(i) + 1]; ++j) {
      const auto c = static_cast<std::size_t>(col_idx[static_cast<std::size_t>(j)]);
      const auto dst = static_cast<std::size_t>(cursor[c]++);
      t_col[dst] = i;
      t_val[dst] = vals[static_cast<std::size_t>(j)];
    }
  }
  return CsrMatrix<T>(a.cols(), a.rows(), std::move(t_ptr), std::move(t_col),
                      std::move(t_val));
}

template <typename To, typename From>
CsrMatrix<To> convert_values(const CsrMatrix<From>& a) {
  std::vector<To> vals(a.vals().begin(), a.vals().end());
  return CsrMatrix<To>(a.rows(), a.cols(),
                       {a.row_ptr().begin(), a.row_ptr().end()},
                       {a.col_idx().begin(), a.col_idx().end()},
                       std::move(vals));
}

template CsrMatrix<float> coo_to_csr(CooMatrix<float>);
template CsrMatrix<double> coo_to_csr(CooMatrix<double>);
template CooMatrix<float> csr_to_coo(const CsrMatrix<float>&);
template CooMatrix<double> csr_to_coo(const CsrMatrix<double>&);
template CsrMatrix<float> transpose(const CsrMatrix<float>&);
template CsrMatrix<double> transpose(const CsrMatrix<double>&);
template CsrMatrix<double> convert_values(const CsrMatrix<float>&);
template CsrMatrix<float> convert_values(const CsrMatrix<double>&);

}  // namespace spmv

#include "sparse/mm_io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace spmv {

namespace {

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

[[noreturn]] void fail(const std::string& msg) {
  throw std::runtime_error("matrix market: " + msg);
}

MmHeader parse_header(const std::string& line) {
  std::istringstream ss(line);
  std::string banner;
  MmHeader h;
  ss >> banner >> h.object >> h.format >> h.field >> h.symmetry;
  if (banner != "%%MatrixMarket") fail("missing %%MatrixMarket banner");
  h.object = to_lower(h.object);
  h.format = to_lower(h.format);
  h.field = to_lower(h.field);
  h.symmetry = to_lower(h.symmetry);
  if (h.object != "matrix") fail("unsupported object: " + h.object);
  if (h.format != "coordinate") fail("unsupported format: " + h.format);
  if (h.field != "real" && h.field != "integer" && h.field != "pattern")
    fail("unsupported field: " + h.field);
  if (h.symmetry != "general" && h.symmetry != "symmetric" &&
      h.symmetry != "skew-symmetric")
    fail("unsupported symmetry: " + h.symmetry);
  return h;
}

}  // namespace

template <typename T>
CooMatrix<T> read_matrix_market(std::istream& in, MmHeader* header) {
  std::string line;
  if (!std::getline(in, line)) fail("empty stream");
  const MmHeader h = parse_header(line);
  if (header) *header = h;

  // Skip comments and blank lines up to the size line.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  long long rows = 0, cols = 0, entries = 0;
  {
    std::istringstream ss(line);
    if (!(ss >> rows >> cols >> entries)) fail("bad size line");
  }
  if (rows < 0 || cols < 0 || entries < 0) fail("negative size");

  const bool pattern = h.field == "pattern";
  const bool symmetric = h.symmetry == "symmetric";
  const bool skew = h.symmetry == "skew-symmetric";

  CooMatrix<T> coo(static_cast<index_t>(rows), static_cast<index_t>(cols));
  coo.reserve(static_cast<std::size_t>(entries) * (symmetric || skew ? 2 : 1));

  for (long long k = 0; k < entries; ++k) {
    long long r = 0, c = 0;
    double v = 1.0;
    if (!(in >> r >> c)) fail("truncated entry list");
    if (!pattern && !(in >> v)) fail("missing value");
    if (r < 1 || r > rows || c < 1 || c > cols) fail("entry out of range");
    const auto ri = static_cast<index_t>(r - 1);
    const auto ci = static_cast<index_t>(c - 1);
    coo.add(ri, ci, static_cast<T>(v));
    if ((symmetric || skew) && ri != ci)
      coo.add(ci, ri, static_cast<T>(skew ? -v : v));
  }
  return coo;
}

template <typename T>
CooMatrix<T> read_matrix_market_file(const std::string& path,
                                     MmHeader* header) {
  std::ifstream in(path);
  if (!in) fail("cannot open " + path);
  return read_matrix_market<T>(in, header);
}

template <typename T>
void write_matrix_market(std::ostream& out, const CooMatrix<T>& coo) {
  out.precision(17);  // values must round-trip exactly
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << "% written by autospmv\n";
  out << coo.rows() << ' ' << coo.cols() << ' ' << coo.nnz() << '\n';
  for (const auto& e : coo.entries()) {
    out << (e.row + 1) << ' ' << (e.col + 1) << ' '
        << static_cast<double>(e.value) << '\n';
  }
}

template <typename T>
void write_matrix_market_file(const std::string& path,
                              const CooMatrix<T>& coo) {
  std::ofstream out(path);
  if (!out) fail("cannot write " + path);
  write_matrix_market(out, coo);
}

template CooMatrix<float> read_matrix_market(std::istream&, MmHeader*);
template CooMatrix<double> read_matrix_market(std::istream&, MmHeader*);
template CooMatrix<float> read_matrix_market_file(const std::string&,
                                                  MmHeader*);
template CooMatrix<double> read_matrix_market_file(const std::string&,
                                                   MmHeader*);
template void write_matrix_market(std::ostream&, const CooMatrix<float>&);
template void write_matrix_market(std::ostream&, const CooMatrix<double>&);
template void write_matrix_market_file(const std::string&,
                                       const CooMatrix<float>&);
template void write_matrix_market_file(const std::string&,
                                       const CooMatrix<double>&);

}  // namespace spmv

// Fundamental index/offset types shared by all sparse containers.
//
// Column/row indices are 32-bit (the largest reproduced matrix has ~5M
// rows); row-pointer offsets are 64-bit so NNZ counts past 2^31 stay safe.
#pragma once

#include <cstdint>

namespace spmv {

using index_t = std::int32_t;    ///< row/column index
using offset_t = std::int64_t;   ///< position into colIdx/val arrays

}  // namespace spmv

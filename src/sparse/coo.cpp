#include "sparse/coo.hpp"

#include <algorithm>

namespace spmv {

template <typename T>
void CooMatrix<T>::sort_row_major() {
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const CooEntry<T>& a, const CooEntry<T>& b) {
                     return a.row != b.row ? a.row < b.row : a.col < b.col;
                   });
}

template <typename T>
void CooMatrix<T>::coalesce() {
  sort_row_major();
  std::size_t out = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (out > 0 && entries_[out - 1].row == entries_[i].row &&
        entries_[out - 1].col == entries_[i].col) {
      entries_[out - 1].value += entries_[i].value;
    } else {
      entries_[out++] = entries_[i];
    }
  }
  entries_.resize(out);
}

template <typename T>
bool CooMatrix<T>::validate() const {
  return std::all_of(entries_.begin(), entries_.end(),
                     [this](const CooEntry<T>& e) {
                       return e.row >= 0 && e.row < rows_ && e.col >= 0 &&
                              e.col < cols_;
                     });
}

template <typename T>
bool CooMatrix<T>::is_canonical() const {
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    const auto& a = entries_[i - 1];
    const auto& b = entries_[i];
    if (a.row > b.row || (a.row == b.row && a.col >= b.col)) return false;
  }
  return true;
}

template class CooMatrix<float>;
template class CooMatrix<double>;

}  // namespace spmv

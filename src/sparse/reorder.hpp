// Row reordering utilities.
//
// The fine-grained/intra-bin binning literature the paper builds on ([12],
// [15]) groups *similar-length* rows regardless of adjacency. An equivalent
// formulation is: permute the rows by length once, then apply the paper's
// adjacency-based coarse binning — adjacent rows are then similar by
// construction. These helpers implement that transformation (plus general
// permutation support) so the ablation bench can quantify how much of the
// fine-grained scheme's benefit row sorting recovers at coarse-grained
// cost.
#pragma once

#include <span>
#include <vector>

#include "sparse/csr.hpp"

namespace spmv {

/// A row permutation: perm[new_row] = old_row.
using RowPermutation = std::vector<index_t>;

/// Identity check (used to skip no-op permutations).
bool is_identity(std::span<const index_t> perm);

/// Validate that `perm` is a permutation of [0, n).
bool is_permutation(std::span<const index_t> perm, index_t n);

/// Permutation sorting rows by ascending NNZ (stable, so equal-length rows
/// keep their relative order and locality).
template <typename T>
RowPermutation sort_rows_by_length(const CsrMatrix<T>& a);

/// Build B with B[i] = A[perm[i]]. Throws std::invalid_argument if `perm`
/// is not a permutation of the row range.
template <typename T>
CsrMatrix<T> permute_rows(const CsrMatrix<T>& a, std::span<const index_t> perm);

/// Scatter a permuted result back: y_orig[perm[i]] = y_perm[i].
template <typename T>
void unpermute(std::span<const T> y_perm, std::span<const index_t> perm,
               std::span<T> y_orig);

/// Inverse permutation: inv[perm[i]] = i.
RowPermutation invert_permutation(std::span<const index_t> perm);

#define SPMV_REORDER_EXTERN(T)                                              \
  extern template RowPermutation sort_rows_by_length(const CsrMatrix<T>&);  \
  extern template CsrMatrix<T> permute_rows(const CsrMatrix<T>&,            \
                                            std::span<const index_t>);      \
  extern template void unpermute(std::span<const T>,                        \
                                 std::span<const index_t>, std::span<T>);
SPMV_REORDER_EXTERN(float)
SPMV_REORDER_EXTERN(double)
#undef SPMV_REORDER_EXTERN

}  // namespace spmv

// Matrix Market (.mtx) I/O — the interchange format of the UF/SuiteSparse
// collection the paper trains on. Supports the coordinate variants used in
// practice: real / integer / pattern values, general / symmetric /
// skew-symmetric structure.
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/coo.hpp"

namespace spmv {

/// Parsed Matrix Market header fields.
struct MmHeader {
  std::string object;    ///< "matrix"
  std::string format;    ///< "coordinate" (array is rejected)
  std::string field;     ///< real | integer | pattern
  std::string symmetry;  ///< general | symmetric | skew-symmetric
};

/// Read a coordinate Matrix Market stream into COO. Symmetric and
/// skew-symmetric inputs are expanded to their general form (mirrored
/// entries materialized; diagonal kept once). Pattern values become 1.
/// Throws std::runtime_error on malformed input.
template <typename T>
CooMatrix<T> read_matrix_market(std::istream& in, MmHeader* header = nullptr);

/// Convenience file wrapper. Throws std::runtime_error if unreadable.
template <typename T>
CooMatrix<T> read_matrix_market_file(const std::string& path,
                                     MmHeader* header = nullptr);

/// Write COO as a general real coordinate Matrix Market stream (1-based
/// indices per the format definition).
template <typename T>
void write_matrix_market(std::ostream& out, const CooMatrix<T>& coo);

/// Convenience file wrapper. Throws std::runtime_error if unwritable.
template <typename T>
void write_matrix_market_file(const std::string& path,
                              const CooMatrix<T>& coo);

extern template CooMatrix<float> read_matrix_market(std::istream&, MmHeader*);
extern template CooMatrix<double> read_matrix_market(std::istream&, MmHeader*);
extern template CooMatrix<float> read_matrix_market_file(const std::string&,
                                                         MmHeader*);
extern template CooMatrix<double> read_matrix_market_file(const std::string&,
                                                          MmHeader*);
extern template void write_matrix_market(std::ostream&,
                                         const CooMatrix<float>&);
extern template void write_matrix_market(std::ostream&,
                                         const CooMatrix<double>&);
extern template void write_matrix_market_file(const std::string&,
                                              const CooMatrix<float>&);
extern template void write_matrix_market_file(const std::string&,
                                              const CooMatrix<double>&);

}  // namespace spmv

// spmv::obs — streaming observability: a bounded, lock-light MPSC ring of
// completed trace spans and stat deltas, drained by a dedicated flusher
// thread into rotating JSONL segment files. Replaces the end-of-run-only
// trace export for long-lived serving processes: telemetry leaves the
// process continuously, memory stays within a fixed bound, and loss is
// explicit (drop counters), never silent.
//
//   obs::SinkOptions sopts;
//   sopts.directory = "obs/";
//   obs::StreamingSink sink(sopts);
//   sink.attach();                      // stream trace spans as they close
//   ... serve traffic with trace::start() active ...
//   sink.detach();
//   sink.close();                       // drain + rotate the final segment
//
// Producers (any thread: trace emit paths via attach(), or direct push()
// callers) write into a fixed-capacity Vyukov-style bounded ring — one CAS
// plus one release store per record, no mutex on the hot path. When the
// ring is full (producers outran the flusher) the record is DROPPED and
// counted in SinkStats::dropped: the sink never blocks a serving thread
// and never grows beyond ring_capacity records.
//
// The flusher thread wakes every flush_interval_ms, drains the ring, and
// appends one JSON object per record to the active segment file
// ("<dir>/active.jsonl.part"). When the active segment exceeds
// segment_max_bytes it is closed and atomically renamed to
// "segment-NNNNNN.jsonl" (crash-safe: a reader sees either the complete
// segment or nothing but the in-progress .part file), and segments beyond
// max_segments are deleted oldest-first — disk usage is bounded too.
//
// Record shape (JSONL) is chosen so an OTLP mapping is mechanical:
//   {"type":"span","name":...,"cat":...,"trace_id":N,"tid":N,
//    "ts_ns":N,"dur_ns":N,"attrs":{...}}     -> otlp Span{name,
//       trace_id, start_time_unix_nano = epoch+ts_ns, end = start+dur_ns,
//       attributes}
//   {"type":"stat","name":...,"ts_ns":N,"value":X}
//       -> otlp Metric (sum data point)
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "trace/trace.hpp"

namespace spmv::obs {

/// One sink record: a completed trace span or a named stat delta. Name /
/// category / attr-key pointers follow the trace-layer contract (string
/// literals, or otherwise outliving the sink) — records are serialized by
/// the flusher, after the producer has moved on.
struct Record {
  enum class Kind : std::uint8_t { Span, Stat };
  Kind kind = Kind::Span;
  const char* name = nullptr;
  const char* category = nullptr;
  std::uint32_t tid = 0;
  std::uint64_t trace_id = 0;
  std::uint64_t ts_ns = 0;   ///< trace-clock (nanoseconds since start())
  std::uint64_t dur_ns = 0;  ///< spans only
  double value = 0.0;        ///< stat deltas only
  const char* arg_keys[2] = {nullptr, nullptr};
  std::int64_t arg_vals[2] = {0, 0};
};

struct SinkOptions {
  /// Segment directory (created if missing). Required.
  std::string directory;
  /// Ring capacity in records (rounded up to a power of two), PER producer
  /// group. Each group's ring is an independent memory bound: producers
  /// beyond it drop, never queue.
  std::size_t ring_capacity = 4096;
  /// Number of producer-group rings. One ring (the default) is the original
  /// global MPSC. A sharded service sets this to its partition count + 1 and
  /// routes each shard's worker threads to their own ring via
  /// set_producer_group(), so shard partitions stop contending on one CAS
  /// head at high span rates; the single flusher drains all rings. Drops
  /// are accounted per ring (SinkStats::dropped_by_ring).
  std::size_t producer_groups = 1;
  /// Active segment rotates once it exceeds this many bytes.
  std::size_t segment_max_bytes = 4u << 20;
  /// Completed segments beyond this are deleted oldest-first.
  std::size_t max_segments = 8;
  /// Flusher wake period.
  int flush_interval_ms = 20;
  /// Start with the flusher paused (tests: deterministic drop injection).
  bool start_paused = false;
};

struct SinkStats {
  std::uint64_t pushed = 0;    ///< records accepted into any ring
  std::uint64_t dropped = 0;   ///< records rejected (ring full / closed)
  std::uint64_t flushed = 0;   ///< records written to segment files
  std::uint64_t rotations = 0; ///< completed-segment renames
  std::uint64_t bytes_written = 0;
  /// Per-producer-group drop accounting (size == producer_groups): which
  /// partition outran the flusher, not just that someone did.
  std::vector<std::uint64_t> dropped_by_ring;
};

class StreamingSink {
 public:
  /// Creates the directory and starts the flusher thread. Throws
  /// std::runtime_error when the directory cannot be created.
  explicit StreamingSink(SinkOptions opts);

  /// close()s if the owner has not already.
  ~StreamingSink();

  StreamingSink(const StreamingSink&) = delete;
  StreamingSink& operator=(const StreamingSink&) = delete;

  /// Register as the process-wide trace observer: every completed span
  /// recorded while tracing is enabled is pushed to this sink. Only one
  /// sink can be attached at a time (last attach wins).
  void attach();

  /// Deregister. Call before destruction, and only when no thread can be
  /// mid-emit with this sink's registration (in practice: after
  /// trace::stop() and after joining/quiescing producer threads).
  void detach();

  /// MPSC producer: O(1), lock-free, never blocks. Routes to the calling
  /// thread's producer-group ring (set_producer_group; group 0 when unset).
  /// Returns false when the record was dropped (ring full or sink closed) —
  /// the loss is counted in stats().dropped (and per ring) either way.
  bool push(const Record& r);

  /// Convenience producer for a stat delta (timestamped now).
  bool push_stat(const char* name, double value);

  /// A stat delta tagged with its shard partition (an extra "shard" attr in
  /// the JSONL record).
  bool push_stat(const char* name, double value, std::int64_t shard);

  /// Route this THREAD's pushes to producer-group ring `group` (modulo the
  /// sink's producer_groups). Process-wide thread-local: a shard worker
  /// calls it once at thread start; threads that never call it use ring 0.
  static void set_producer_group(std::size_t group);

  /// Suspend / resume the flusher (tests; quiescing around a fork). While
  /// paused, producers keep pushing until the ring fills, then drop — the
  /// deliberately-slow-flusher regime of the acceptance test.
  void pause();
  void resume();

  /// Drain the ring on the calling thread (serialized against the
  /// flusher). Useful in tests and before reading segment files.
  void flush_now();

  /// Stop accepting records, stop the flusher, drain whatever is buffered,
  /// and rotate the active segment into a final numbered one. Idempotent.
  void close();

  [[nodiscard]] SinkStats stats() const;

  /// Completed (rotated) segment paths, oldest first. After close() this
  /// is the complete on-disk record stream.
  [[nodiscard]] std::vector<std::string> segment_files() const;

  /// The in-progress segment path ("<dir>/active.jsonl.part").
  [[nodiscard]] std::string active_path() const;

 private:
  struct Slot {
    std::atomic<std::size_t> seq;
    Record rec;
  };

  /// One producer group's Vyukov ring. Atomics make it immovable, so rings
  /// live behind unique_ptr in a fixed-size vector built at construction.
  struct Ring {
    std::vector<Slot> slots;
    std::atomic<std::size_t> head{0};  ///< producers claim slots here
    std::size_t tail = 0;              ///< consumer cursor (io_mutex_)
    std::atomic<std::uint64_t> dropped{0};
  };

  static void on_trace_event(void* ctx, const trace::TraceEvent& ev);

  void flusher_main();
  /// Drain + write all rings; caller must hold io_mutex_.
  void drain_locked();
  /// Close the active stream and rename it to a numbered segment; caller
  /// must hold io_mutex_.
  void rotate_locked();
  void ensure_stream_locked();

  SinkOptions opts_;
  std::size_t mask_ = 0;  ///< per-ring capacity (power of two) - 1

  std::vector<std::unique_ptr<Ring>> rings_;  ///< one per producer group

  std::atomic<bool> accepting_{true};
  std::atomic<std::uint64_t> pushed_{0};
  std::atomic<std::uint64_t> dropped_{0};  ///< total across rings

  mutable std::mutex io_mutex_;  ///< consumer side: drain, rotate, stats
  std::ofstream stream_;
  std::size_t segment_bytes_ = 0;
  std::uint64_t next_segment_ = 1;
  std::uint64_t flushed_ = 0;
  std::uint64_t rotations_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::vector<std::string> segments_;  ///< completed, oldest first

  std::mutex ctl_mutex_;  ///< flusher control (pause/stop/kick)
  std::condition_variable ctl_cv_;
  bool paused_ = false;
  bool stop_ = false;
  bool closed_ = false;
  std::thread flusher_;
};

}  // namespace spmv::obs

#include "obs/sink.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "prof/json.hpp"
#include "util/log.hpp"

namespace spmv::obs {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// The calling thread's producer-group routing hint (set_producer_group).
/// Process-wide, not per-sink: a shard worker thread belongs to one
/// partition for its whole life, whichever sink is attached.
thread_local std::size_t t_producer_group = 0;

/// One record as a single-line JSON document (the flusher's serializer —
/// never on a producer thread).
std::string to_jsonl(const Record& r) {
  prof::Json j = prof::Json::object();
  j.set("type", r.kind == Record::Kind::Span ? "span" : "stat");
  j.set("name", r.name != nullptr ? r.name : "?");
  if (r.kind == Record::Kind::Span) {
    j.set("cat", r.category != nullptr ? r.category : "?");
    j.set("trace_id", r.trace_id);
    j.set("tid", static_cast<std::int64_t>(r.tid));
    j.set("ts_ns", r.ts_ns);
    j.set("dur_ns", r.dur_ns);
    if (r.arg_keys[0] != nullptr) {
      prof::Json attrs = prof::Json::object();
      for (int i = 0; i < 2; ++i) {
        if (r.arg_keys[i] != nullptr) attrs.set(r.arg_keys[i], r.arg_vals[i]);
      }
      j.set("attrs", std::move(attrs));
    }
  } else {
    j.set("ts_ns", r.ts_ns);
    j.set("value", r.value);
    if (r.arg_keys[0] != nullptr) {
      prof::Json attrs = prof::Json::object();
      for (int i = 0; i < 2; ++i) {
        if (r.arg_keys[i] != nullptr) attrs.set(r.arg_keys[i], r.arg_vals[i]);
      }
      j.set("attrs", std::move(attrs));
    }
  }
  return j.dump(0) + "\n";
}

}  // namespace

StreamingSink::StreamingSink(SinkOptions opts) : opts_(std::move(opts)) {
  if (opts_.directory.empty())
    throw std::runtime_error("StreamingSink: directory is required");
  std::error_code ec;
  std::filesystem::create_directories(opts_.directory, ec);
  if (ec)
    throw std::runtime_error("StreamingSink: cannot create directory " +
                             opts_.directory + ": " + ec.message());
  const std::size_t cap =
      round_up_pow2(std::max<std::size_t>(2, opts_.ring_capacity));
  mask_ = cap - 1;
  const std::size_t groups = std::max<std::size_t>(1, opts_.producer_groups);
  rings_.reserve(groups);
  for (std::size_t g = 0; g < groups; ++g) {
    auto ring = std::make_unique<Ring>();
    ring->slots = std::vector<Slot>(cap);
    for (std::size_t i = 0; i < cap; ++i)
      ring->slots[i].seq.store(i, std::memory_order_relaxed);
    rings_.push_back(std::move(ring));
  }
  paused_ = opts_.start_paused;
  flusher_ = std::thread([this] { flusher_main(); });
}

StreamingSink::~StreamingSink() { close(); }

void StreamingSink::on_trace_event(void* ctx, const trace::TraceEvent& ev) {
  // Stream completed spans only; point/async markers stay in the in-memory
  // rings (the Chrome export renders them, the fleet pipeline wants spans).
  if (ev.phase != 'X') return;
  auto* self = static_cast<StreamingSink*>(ctx);
  Record r;
  r.kind = Record::Kind::Span;
  r.name = ev.name;
  r.category = ev.category;
  r.tid = ev.tid;
  r.trace_id = ev.id;
  r.ts_ns = ev.ts_ns;
  r.dur_ns = ev.dur_ns;
  for (int i = 0; i < 2; ++i) {
    r.arg_keys[i] = ev.arg_keys[i];
    r.arg_vals[i] = ev.arg_vals[i];
  }
  (void)self->push(r);
}

void StreamingSink::attach() { trace::set_event_observer(&on_trace_event, this); }

void StreamingSink::detach() { trace::set_event_observer(nullptr, nullptr); }

bool StreamingSink::push(const Record& r) {
  if (!accepting_.load(std::memory_order_relaxed)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // Route to the calling thread's producer-group ring; threads that never
  // called set_producer_group share ring 0 (the single-ring behaviour).
  Ring& ring = *rings_[t_producer_group % rings_.size()];
  // Vyukov bounded-queue claim: each slot carries a sequence number; a
  // producer owns slot (pos & mask_) when seq == pos, publishes with
  // seq = pos + 1. A lagging seq means the consumer has not freed the slot
  // a full lap behind — the ring is full, so drop (never block, never
  // allocate: this runs inside trace emission on serving threads).
  std::size_t pos = ring.head.load(std::memory_order_relaxed);
  for (;;) {
    Slot& slot = ring.slots[pos & mask_];
    const std::size_t seq = slot.seq.load(std::memory_order_acquire);
    const auto dif = static_cast<std::intptr_t>(seq) -
                     static_cast<std::intptr_t>(pos);
    if (dif == 0) {
      if (ring.head.compare_exchange_weak(pos, pos + 1,
                                          std::memory_order_relaxed)) {
        slot.rec = r;
        slot.seq.store(pos + 1, std::memory_order_release);
        pushed_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      // CAS reloaded pos; retry.
    } else if (dif < 0) {
      ring.dropped.fetch_add(1, std::memory_order_relaxed);
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    } else {
      pos = ring.head.load(std::memory_order_relaxed);
    }
  }
}

bool StreamingSink::push_stat(const char* name, double value) {
  Record r;
  r.kind = Record::Kind::Stat;
  r.name = name;
  r.ts_ns = trace::now_ns();
  r.value = value;
  return push(r);
}

bool StreamingSink::push_stat(const char* name, double value,
                              std::int64_t shard) {
  Record r;
  r.kind = Record::Kind::Stat;
  r.name = name;
  r.ts_ns = trace::now_ns();
  r.value = value;
  r.arg_keys[0] = "shard";
  r.arg_vals[0] = shard;
  return push(r);
}

void StreamingSink::set_producer_group(std::size_t group) {
  t_producer_group = group;
}

void StreamingSink::pause() {
  std::lock_guard<std::mutex> lock(ctl_mutex_);
  paused_ = true;
}

void StreamingSink::resume() {
  {
    std::lock_guard<std::mutex> lock(ctl_mutex_);
    paused_ = false;
  }
  ctl_cv_.notify_one();
}

void StreamingSink::flush_now() {
  std::lock_guard<std::mutex> lock(io_mutex_);
  drain_locked();
}

void StreamingSink::flusher_main() {
  std::unique_lock<std::mutex> lock(ctl_mutex_);
  for (;;) {
    ctl_cv_.wait_for(lock,
                     std::chrono::milliseconds(
                         std::max(1, opts_.flush_interval_ms)),
                     [&] { return stop_; });
    if (stop_) return;  // close() drains after the join
    if (paused_) continue;
    lock.unlock();
    flush_now();
    lock.lock();
  }
}

void StreamingSink::ensure_stream_locked() {
  if (stream_.is_open()) return;
  const std::string path = active_path();
  stream_.open(path, std::ios::out | std::ios::trunc);
  if (!stream_) {
    // Disk trouble must not take the serving process down: complain once
    // per rotation attempt and count the records as dropped at flush time.
    util::log_warn() << "StreamingSink: cannot open " << path;
  }
  segment_bytes_ = 0;
}

void StreamingSink::drain_locked() {
  const std::size_t cap = mask_ + 1;
  Record rec;
  for (const auto& ring_ptr : rings_) {
    Ring& ring = *ring_ptr;
    for (;;) {
      Slot& slot = ring.slots[ring.tail & mask_];
      const std::size_t seq = slot.seq.load(std::memory_order_acquire);
      if (static_cast<std::intptr_t>(seq) -
              static_cast<std::intptr_t>(ring.tail + 1) < 0)
        break;  // next slot not yet published — this ring drained
      rec = slot.rec;
      slot.seq.store(ring.tail + cap, std::memory_order_release);
      ++ring.tail;
      const std::string line = to_jsonl(rec);
      // (Re)open lazily, per record: a rotation inside this loop closes the
      // stream, and an empty drain must not leave a stray .part file behind.
      ensure_stream_locked();
      if (stream_.is_open()) {
        stream_ << line;
        segment_bytes_ += line.size();
        bytes_written_ += line.size();
        flushed_ += 1;
      } else {
        ring.dropped.fetch_add(1, std::memory_order_relaxed);
        dropped_.fetch_add(1, std::memory_order_relaxed);
      }
      if (segment_bytes_ >= opts_.segment_max_bytes) rotate_locked();
    }
  }
  if (stream_.is_open()) stream_.flush();
}

void StreamingSink::rotate_locked() {
  if (!stream_.is_open() || segment_bytes_ == 0) return;
  stream_.close();
  char name[64];
  std::snprintf(name, sizeof(name), "segment-%06llu.jsonl",
                static_cast<unsigned long long>(next_segment_));
  next_segment_ += 1;
  const std::string dst =
      (std::filesystem::path(opts_.directory) / name).string();
  std::error_code ec;
  // rename() is atomic within a filesystem: a crash mid-rotation leaves
  // either the complete numbered segment or the .part file, never a
  // half-named half-written segment.
  std::filesystem::rename(active_path(), dst, ec);
  if (ec) {
    util::log_warn() << "StreamingSink: rotate failed: " << ec.message();
    segment_bytes_ = 0;
    return;
  }
  segments_.push_back(dst);
  rotations_ += 1;
  while (segments_.size() > opts_.max_segments) {
    std::filesystem::remove(segments_.front(), ec);  // best-effort
    segments_.erase(segments_.begin());
  }
  segment_bytes_ = 0;
}

void StreamingSink::close() {
  {
    std::lock_guard<std::mutex> lock(ctl_mutex_);
    if (closed_) return;
    closed_ = true;
    stop_ = true;
  }
  accepting_.store(false, std::memory_order_relaxed);
  ctl_cv_.notify_one();
  if (flusher_.joinable()) flusher_.join();
  std::lock_guard<std::mutex> lock(io_mutex_);
  drain_locked();
  rotate_locked();  // the final (possibly short) segment
  if (stream_.is_open()) stream_.close();
}

SinkStats StreamingSink::stats() const {
  SinkStats s;
  s.pushed = pushed_.load(std::memory_order_relaxed);
  s.dropped = dropped_.load(std::memory_order_relaxed);
  s.dropped_by_ring.reserve(rings_.size());
  for (const auto& ring : rings_)
    s.dropped_by_ring.push_back(
        ring->dropped.load(std::memory_order_relaxed));
  std::lock_guard<std::mutex> lock(io_mutex_);
  s.flushed = flushed_;
  s.rotations = rotations_;
  s.bytes_written = bytes_written_;
  return s;
}

std::vector<std::string> StreamingSink::segment_files() const {
  std::lock_guard<std::mutex> lock(io_mutex_);
  return segments_;
}

std::string StreamingSink::active_path() const {
  return (std::filesystem::path(opts_.directory) / "active.jsonl.part")
      .string();
}

}  // namespace spmv::obs

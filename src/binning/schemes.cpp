#include "binning/schemes.hpp"

#include <algorithm>
#include <stdexcept>

namespace spmv::binning {

std::string scheme_name(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::Coarse: return "coarse";
    case SchemeKind::Fine: return "fine";
    case SchemeKind::Hybrid: return "hybrid";
    case SchemeKind::SingleBin: return "single-bin";
  }
  throw std::invalid_argument("scheme_name: bad kind");
}

namespace {

/// Hybrid: a virtual row of `unit` adjacent rows stays coarse only when all
/// of its rows are long (>= short_threshold non-zeros); otherwise its rows
/// are stored individually in the fine part. Every matrix row is covered
/// exactly once across the two parts.
template <typename T>
BinnedMatrix hybrid_scheme(const CsrMatrix<T>& a, index_t unit,
                           offset_t short_threshold) {
  const index_t m = a.rows();
  const index_t vrows = (m + unit - 1) / unit;

  std::vector<std::vector<index_t>> fine_bins(kMaxBins);
  std::vector<std::vector<index_t>> coarse_bins(kMaxBins);

  for (index_t v = 0; v < vrows; ++v) {
    const index_t lo = v * unit;
    const index_t hi = std::min<index_t>(lo + unit, m);
    bool all_long = true;
    offset_t workload = 0;
    for (index_t r = lo; r < hi; ++r) {
      const offset_t len = a.row_nnz(r);
      workload += len;
      all_long = all_long && len >= short_threshold;
    }
    if (all_long) {
      auto bin_id = static_cast<std::size_t>(workload / unit);
      bin_id = std::min<std::size_t>(bin_id, kMaxBins - 1);
      coarse_bins[bin_id].push_back(v);
    } else {
      for (index_t r = lo; r < hi; ++r) {
        auto bin_id = static_cast<std::size_t>(a.row_nnz(r));
        bin_id = std::min<std::size_t>(bin_id, kMaxBins - 1);
        fine_bins[bin_id].push_back(r);
      }
    }
  }

  BinnedMatrix result;
  result.kind = SchemeKind::Hybrid;
  result.parts.emplace_back(m, index_t{1}, std::move(fine_bins));
  result.parts.emplace_back(m, unit, std::move(coarse_bins));
  return result;
}

}  // namespace

template <typename T>
BinnedMatrix apply_scheme(const CsrMatrix<T>& a, SchemeKind kind,
                          index_t unit, offset_t short_threshold) {
  BinnedMatrix result;
  result.kind = kind;
  switch (kind) {
    case SchemeKind::Coarse:
      result.parts.push_back(bin_matrix(a, unit));
      return result;
    case SchemeKind::Fine:
      result.parts.push_back(bin_matrix(a, index_t{1}));
      return result;
    case SchemeKind::Hybrid:
      return hybrid_scheme(a, unit, short_threshold);
    case SchemeKind::SingleBin:
      result.parts.push_back(single_bin(a, unit));
      return result;
  }
  throw std::invalid_argument("apply_scheme: bad kind");
}

template BinnedMatrix apply_scheme(const CsrMatrix<float>&, SchemeKind,
                                   index_t, offset_t);
template BinnedMatrix apply_scheme(const CsrMatrix<double>&, SchemeKind,
                                   index_t, offset_t);

}  // namespace spmv::binning

// Coarse-grained virtual-row binning — Algorithm 2 of the paper.
//
// Every `U` adjacent rows form one "virtual" row; the virtual row's
// workload is its total NNZ (computed from two row_ptr reads, step 1); the
// bin id is workload / U, clamped to the last bin (step 2). Only the
// virtual-row index is stored, so a bin entry represents U adjacent rows.
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/csr.hpp"

namespace spmv::binning {

/// Up to 100 bins, as in the paper ("there are up to 100 bins").
inline constexpr int kMaxBins = 100;

/// The granularity pool the paper presets: "U is preset to be 10, 20, 50,
/// 100, ..., 10^6" — a 1-2-5 decade ladder from 10 to 10^6.
const std::vector<index_t>& default_granularity_pool();

/// Result of binning one matrix at granularity `unit`.
///
/// bins[b] holds virtual-row indices i whose workload w satisfies
/// unit*b <= w < unit*(b+1) (overflow in the last bin). Virtual row i
/// covers matrix rows [i*unit, min((i+1)*unit, rows)).
class BinSet {
 public:
  BinSet() = default;
  BinSet(index_t rows, index_t unit, std::vector<std::vector<index_t>> bins)
      : rows_(rows), unit_(unit), bins_(std::move(bins)) {}

  [[nodiscard]] index_t rows() const { return rows_; }
  [[nodiscard]] index_t unit() const { return unit_; }
  [[nodiscard]] int bin_count() const { return static_cast<int>(bins_.size()); }
  [[nodiscard]] const std::vector<index_t>& bin(int b) const { return bins_[static_cast<std::size_t>(b)]; }
  [[nodiscard]] const std::vector<std::vector<index_t>>& bins() const { return bins_; }

  /// Number of virtual rows in the matrix: ceil(rows / unit).
  [[nodiscard]] index_t virtual_rows() const {
    return (rows_ + unit_ - 1) / unit_;
  }

  /// Ids of non-empty bins, ascending.
  [[nodiscard]] std::vector<int> occupied_bins() const;

  /// Total virtual rows stored across bins (== virtual_rows() when the
  /// BinSet covers the whole matrix).
  [[nodiscard]] std::size_t stored_virtual_rows() const;

  /// Actual matrix rows covered by bin b (expanding virtual rows, clipped
  /// at the matrix end).
  [[nodiscard]] index_t rows_in_bin(int b) const;

 private:
  index_t rows_ = 0;
  index_t unit_ = 1;
  std::vector<std::vector<index_t>> bins_;
};

/// Algorithm 2 (steps 1 + 2): bin `a` at granularity `unit`.
/// Workload collection (step 1) is trivially parallel; it runs with OpenMP
/// when the matrix is large.
template <typename T>
BinSet bin_matrix(const CsrMatrix<T>& a, index_t unit);

/// All rows into one bin (the §IV-C "single-bin strategy"): bin 0 holds
/// every virtual row of granularity `unit`.
template <typename T>
BinSet single_bin(const CsrMatrix<T>& a, index_t unit = 1);

extern template BinSet bin_matrix(const CsrMatrix<float>&, index_t);
extern template BinSet bin_matrix(const CsrMatrix<double>&, index_t);
extern template BinSet single_bin(const CsrMatrix<float>&, index_t);
extern template BinSet single_bin(const CsrMatrix<double>&, index_t);

}  // namespace spmv::binning

#include "binning/binning.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include <omp.h>

namespace spmv::binning {

const std::vector<index_t>& default_granularity_pool() {
  static const std::vector<index_t> pool = {
      10,     20,     50,     100,    200,    500,    1000,   2000,
      5000,   10000,  20000,  50000,  100000, 200000, 500000, 1000000};
  return pool;
}

std::vector<int> BinSet::occupied_bins() const {
  std::vector<int> ids;
  for (int b = 0; b < bin_count(); ++b) {
    if (!bins_[static_cast<std::size_t>(b)].empty()) ids.push_back(b);
  }
  return ids;
}

std::size_t BinSet::stored_virtual_rows() const {
  return std::accumulate(bins_.begin(), bins_.end(), std::size_t{0},
                         [](std::size_t acc, const std::vector<index_t>& b) {
                           return acc + b.size();
                         });
}

index_t BinSet::rows_in_bin(int b) const {
  index_t total = 0;
  for (index_t v : bins_[static_cast<std::size_t>(b)]) {
    total += std::min<index_t>(unit_, rows_ - v * unit_);
  }
  return total;
}

template <typename T>
BinSet bin_matrix(const CsrMatrix<T>& a, index_t unit) {
  if (unit <= 0) throw std::invalid_argument("bin_matrix: unit must be > 0");
  const index_t m = a.rows();
  const index_t vrows = (m + unit - 1) / unit;
  const auto row_ptr = a.row_ptr();

  // Step 1: workload of every virtual row = NNZ of its U adjacent rows,
  // read as a row_ptr difference (Algorithm 2, line 3).
  std::vector<offset_t> wl(static_cast<std::size_t>(vrows));
#pragma omp parallel for schedule(static) if (vrows > (1 << 16))
  for (index_t i = 0; i < vrows; ++i) {
    const auto lo = static_cast<std::size_t>(i) * static_cast<std::size_t>(unit);
    const auto hi = std::min<std::size_t>(lo + static_cast<std::size_t>(unit),
                                          static_cast<std::size_t>(m));
    wl[static_cast<std::size_t>(i)] = row_ptr[hi] - row_ptr[lo];
  }

  // Step 2: binId = workload / U, overflow into the last bin (lines 7-11).
  std::vector<std::vector<index_t>> bins(kMaxBins);
  for (index_t i = 0; i < vrows; ++i) {
    auto bin_id = static_cast<std::size_t>(
        wl[static_cast<std::size_t>(i)] / static_cast<offset_t>(unit));
    bin_id = std::min<std::size_t>(bin_id, kMaxBins - 1);
    bins[bin_id].push_back(i);
  }
  return BinSet(m, unit, std::move(bins));
}

template <typename T>
BinSet single_bin(const CsrMatrix<T>& a, index_t unit) {
  if (unit <= 0) throw std::invalid_argument("single_bin: unit must be > 0");
  const index_t m = a.rows();
  const index_t vrows = (m + unit - 1) / unit;
  std::vector<std::vector<index_t>> bins(1);
  bins[0].resize(static_cast<std::size_t>(vrows));
  std::iota(bins[0].begin(), bins[0].end(), index_t{0});
  return BinSet(m, unit, std::move(bins));
}

template BinSet bin_matrix(const CsrMatrix<float>&, index_t);
template BinSet bin_matrix(const CsrMatrix<double>&, index_t);
template BinSet single_bin(const CsrMatrix<float>&, index_t);
template BinSet single_bin(const CsrMatrix<double>&, index_t);

}  // namespace spmv::binning

// Alternative binning schemes (paper §II-C / §III-B): besides the default
// coarse-grained virtual-row scheme, the framework "can be easily extended"
// with a fine-grained scheme (every single row index stored) and a hybrid
// scheme (fine-grained over short rows, coarse-grained over long rows).
// These power the ablation bench and the Figure-8 overhead study.
#pragma once

#include <string>
#include <vector>

#include "binning/binning.hpp"
#include "sparse/csr.hpp"

namespace spmv::binning {

enum class SchemeKind : int {
  Coarse = 0,   ///< Algorithm 2 at granularity U (the paper's default)
  Fine,         ///< granularity 1: every row stored individually
  Hybrid,       ///< fine for short rows, coarse for long rows
  SingleBin,    ///< all rows into one bin (paper §IV-C discussion)
};

std::string scheme_name(SchemeKind kind);

/// A binned matrix under some scheme: one or more BinSet parts, each with
/// its own granularity. Kernels run per (part, bin).
struct BinnedMatrix {
  SchemeKind kind = SchemeKind::Coarse;
  std::vector<BinSet> parts;

  /// Total virtual-row entries stored (the scheme's space overhead).
  [[nodiscard]] std::size_t stored_entries() const {
    std::size_t total = 0;
    for (const auto& p : parts) total += p.stored_virtual_rows();
    return total;
  }
};

/// Apply a scheme. `unit` is the coarse granularity (ignored by Fine);
/// `short_threshold` is the Hybrid row-length cutoff: rows with fewer
/// non-zeros are binned individually, the rest as virtual rows of `unit`.
template <typename T>
BinnedMatrix apply_scheme(const CsrMatrix<T>& a, SchemeKind kind,
                          index_t unit, offset_t short_threshold = 64);

extern template BinnedMatrix apply_scheme(const CsrMatrix<float>&, SchemeKind,
                                          index_t, offset_t);
extern template BinnedMatrix apply_scheme(const CsrMatrix<double>&,
                                          SchemeKind, index_t, offset_t);

}  // namespace spmv::binning

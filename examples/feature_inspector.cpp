// Feature inspector: prints the Table-I feature vector, the binning layout
// at a chosen granularity, and the strategy a predictor would select — a
// debugging window into the framework's decision process.
//
// Usage: feature_inspector [--mtx file.mtx | --matrix <table2-name>]
//                          [--unit U] [--model model.txt]
#include <cstdio>

#include "autospmv.hpp"

using namespace spmv;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);

  CsrMatrix<float> a = [&] {
    const std::string path = cli.get("mtx");
    if (!path.empty()) return coo_to_csr(read_matrix_market_file<float>(path));
    const std::string name = cli.get("matrix", "dictionary28");
    std::printf("inspecting Table-II analogue '%s'\n", name.c_str());
    return gen::make_representative<float>(name);
  }();

  // --- Table-I features ----------------------------------------------
  const auto stats = compute_row_stats(a);
  const auto features = ml::stage1_features(stats);
  std::printf("\nTable-I feature vector:\n");
  const auto& names = ml::stage1_attr_names();
  for (std::size_t i = 0; i < names.size(); ++i)
    std::printf("  %-8s = %.4g\n", names[i].c_str(), features[i]);

  // --- binning layout ---------------------------------------------------
  const auto unit = static_cast<index_t>(cli.get_int("unit", 100));
  const auto bins = binning::bin_matrix(a, unit);
  std::printf("\nbinning at U=%d: %d virtual rows, %zu occupied bins\n", unit,
              bins.virtual_rows(), bins.occupied_bins().size());
  std::printf("  %-8s %14s %14s %s\n", "bin", "virtual rows", "actual rows",
              "workload range");
  for (int b : bins.occupied_bins()) {
    char range[48];
    if (b < binning::kMaxBins - 1) {
      std::snprintf(range, sizeof range, "[%d, %d)", unit * b, unit * (b + 1));
    } else {
      std::snprintf(range, sizeof range, ">= %d", unit * b);
    }
    std::printf("  %-8d %14zu %14d %s\n", b, bins.bin(b).size(),
                bins.rows_in_bin(b), range);
  }

  // --- predicted strategy ------------------------------------------------
  std::unique_ptr<core::Predictor> predictor;
  const std::string model_path = cli.get("model");
  if (!model_path.empty()) {
    predictor = std::make_unique<core::ModelPredictor>(
        core::load_model_file(model_path));
    std::printf("\nstrategy from trained model %s:\n", model_path.c_str());
  } else {
    predictor = std::make_unique<core::HeuristicPredictor>();
    std::printf("\nstrategy from built-in heuristic:\n");
  }
  const auto spmv = core::Tuner(a).predictor(*predictor).build();
  std::printf("  %s\n", spmv.plan().to_string().c_str());

  // Sanity-check the plan by executing it once.
  std::vector<float> x(static_cast<std::size_t>(a.cols()), 1.0f);
  std::vector<float> y(static_cast<std::size_t>(a.rows()));
  const auto t = util::measure([&] { spmv.run(x, std::span<float>(y)); },
                               {.warmup = 1, .reps = 5, .max_total_s = 2.0});
  std::printf("  one SpMV: %.3f ms (%.2f GFLOP/s)\n", 1e3 * t.best_s,
              2.0 * static_cast<double>(a.nnz()) / t.best_s * 1e-9);
  return 0;
}

// PageRank on a synthetic web-like graph — the "real-world applications"
// workload class from the paper's introduction (graph analytics over
// short-row, power-law matrices).
//
// Each iteration is rank' = d * A^T * (rank / outdeg) + (1-d)/n, computed
// with an auto-tuned SpMV over the transposed adjacency matrix. Compares
// the auto-tuned kernel against the plain OpenMP CSR kernel.
//
// Usage: pagerank [--nodes N] [--iters K] [--damping D]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <numeric>

#include "autospmv.hpp"

using namespace spmv;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto nodes = static_cast<index_t>(cli.get_int("nodes", 200000));
  const int iters = static_cast<int>(cli.get_int("iters", 20));
  const auto damping = static_cast<float>(cli.get_double("damping", 0.85));

  // Web-like directed graph: power-law out-degrees.
  const auto adjacency =
      gen::power_law<float>(nodes, nodes, 2.1, 2000, /*seed=*/7);
  // PageRank pulls rank along *incoming* edges: iterate over A^T.
  const auto at = transpose(adjacency);
  std::printf("graph: %d nodes, %lld edges\n", nodes,
              static_cast<long long>(adjacency.nnz()));

  // Out-degree normalization (dangling nodes get uniform redistribution
  // folded into the teleport term for simplicity).
  std::vector<float> inv_outdeg(static_cast<std::size_t>(nodes), 0.0f);
  for (index_t v = 0; v < nodes; ++v) {
    const auto deg = adjacency.row_nnz(v);
    if (deg > 0) inv_outdeg[static_cast<std::size_t>(v)] =
        1.0f / static_cast<float>(deg);
  }

  core::HeuristicPredictor predictor;
  const auto spmv = core::Tuner(at).predictor(predictor).build();
  std::printf("auto plan over A^T: %s\n", spmv.plan().to_string().c_str());

  auto run_pagerank = [&](const std::function<void(std::span<const float>,
                                                   std::span<float>)>& mv) {
    std::vector<float> rank(static_cast<std::size_t>(nodes),
                            1.0f / static_cast<float>(nodes));
    std::vector<float> scaled(static_cast<std::size_t>(nodes));
    std::vector<float> next(static_cast<std::size_t>(nodes));
    for (int it = 0; it < iters; ++it) {
      for (std::size_t v = 0; v < scaled.size(); ++v)
        scaled[v] = rank[v] * inv_outdeg[v];
      mv(scaled, next);
      const float teleport = (1.0f - damping) / static_cast<float>(nodes);
      for (std::size_t v = 0; v < next.size(); ++v)
        next[v] = teleport + damping * next[v];
      rank.swap(next);
    }
    return rank;
  };

  util::Timer t_auto;
  const auto rank_auto = run_pagerank(
      [&](std::span<const float> in, std::span<float> out) {
        spmv.run(in, out);
      });
  const double s_auto = t_auto.elapsed_s();

  util::Timer t_omp;
  const auto rank_omp = run_pagerank(
      [&](std::span<const float> in, std::span<float> out) {
        kernels::spmv_omp_rows(at, in, out);
      });
  const double s_omp = t_omp.elapsed_s();

  // The two kernels must agree.
  double max_diff = 0.0;
  for (std::size_t v = 0; v < rank_auto.size(); ++v)
    max_diff = std::max(max_diff,
                        std::abs(static_cast<double>(rank_auto[v]) -
                                 static_cast<double>(rank_omp[v])));
  std::printf("agreement: max |rank_auto - rank_omp| = %.3g\n", max_diff);

  // Top-5 ranked nodes.
  std::vector<index_t> order(static_cast<std::size_t>(nodes));
  std::iota(order.begin(), order.end(), index_t{0});
  std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                    [&](index_t l, index_t r) {
                      return rank_auto[static_cast<std::size_t>(l)] >
                             rank_auto[static_cast<std::size_t>(r)];
                    });
  std::printf("top nodes:");
  for (int k = 0; k < 5; ++k)
    std::printf(" %d(%.3g)", order[static_cast<std::size_t>(k)],
                rank_auto[static_cast<std::size_t>(order[static_cast<std::size_t>(k)])]);
  std::printf("\n%d iterations: auto-tuned %.3f s vs OpenMP-CSR %.3f s "
              "(%.2fx)\n",
              iters, s_auto, s_omp, s_omp / s_auto);
  return 0;
}

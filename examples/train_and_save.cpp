// Offline training walkthrough (paper Figure 3, green arrows): sample a
// training corpus, harvest oracle labels with the exhaustive tuner, train
// the two-stage model, inspect the learned rule sets, save the model, and
// verify the reloaded model plans an unseen matrix.
//
// Usage: train_and_save [--matrices N] [--out model.txt] [--show-rules]
#include <cstdio>

#include "autospmv.hpp"

using namespace spmv;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const std::string out = cli.get("out", "autospmv_model.txt");

  // 1. Corpus: modest sizes keep the exhaustive labeling quick; scale up
  //    --matrices for a production model (the paper uses 2000+).
  gen::CorpusOptions copts;
  copts.count = static_cast<int>(cli.get_int("matrices", 60));
  copts.min_rows = 1000;
  copts.max_rows = 8000;

  core::TrainerOptions topts;
  topts.pools.units = {10, 100, 1000, 10000, 100000};
  topts.pools.kernel_pool = kernels::all_kernels();
  topts.tune.measure = {.warmup = 1, .reps = 2, .max_total_s = 0.05};

  std::printf("training on %d synthetic UF-like matrices...\n", copts.count);
  util::Timer timer;
  core::TrainReport report;
  const auto model = core::train_model(gen::sample_corpus(copts), topts,
                                       clsim::default_engine(), &report);
  std::printf("done in %.1f s\n", timer.elapsed_s());
  std::printf("stage 1 (U):      train %.1f%%, test %.1f%% error\n",
              100.0 * report.stage1_train_error,
              100.0 * report.stage1_test_error);
  std::printf("stage 2 (kernel): train %.1f%%, test %.1f%% error\n",
              100.0 * report.stage2_train_error,
              100.0 * report.stage2_test_error);

  // 2. The C5.0-style artifact: ordered if-then rules.
  if (cli.get_bool("show-rules", false)) {
    std::printf("\nstage-1 rule set:\n%s", model.rules1.to_string().c_str());
  } else {
    std::printf("stage-1 rules: %zu, stage-2 rules: %zu (--show-rules to "
                "print)\n",
                model.rules1.rules().size(), model.rules2.rules().size());
  }

  // 3. Persist and reload.
  core::save_model_file(out, model);
  std::printf("model written to %s\n", out.c_str());
  core::ModelPredictor predictor(core::load_model_file(out));

  // 4. Plan an unseen matrix with the reloaded model.
  const auto a = gen::mixed_regime<float>(20000, 20000, 0.5, 0.3, 3, 30, 300,
                                          64, /*seed=*/4096);
  const auto spmv = core::Tuner(a).predictor(predictor).build();
  std::printf("unseen mixed-regime matrix -> plan %s\n",
              spmv.plan().to_string().c_str());

  std::vector<float> x(static_cast<std::size_t>(a.cols()), 1.0f);
  std::vector<float> y(static_cast<std::size_t>(a.rows()));
  spmv.run(x, std::span<float>(y));
  double checksum = 0.0;
  for (float v : y) checksum += v;
  std::printf("verification SpMV checksum: %.6g\n", checksum);
  return 0;
}

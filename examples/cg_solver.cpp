// Conjugate-gradient solver for a sparse SPD system, with every A*p product
// going through the auto-tuned SpMV — the "sparse linear system solvers"
// application class the paper's abstract leads with.
//
// Builds a 2D 5-point Poisson matrix (the canonical FEM/FD test problem),
// solves A x = b, and compares the auto-tuned kernel against the plain
// OpenMP CSR kernel over the whole solve.
//
// Usage: cg_solver [--grid N] [--tol T] [--max-iters K]
#include <cmath>
#include <cstdio>
#include <functional>

#include "autospmv.hpp"

using namespace spmv;

namespace {

/// 5-point Laplacian on an n x n grid (SPD, 4 on the diagonal).
CsrMatrix<double> poisson2d(index_t n) {
  CooMatrix<double> coo(n * n, n * n);
  coo.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(n) * 5);
  auto id = [n](index_t i, index_t j) { return i * n + j; };
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      coo.add(id(i, j), id(i, j), 4.0);
      if (i > 0) coo.add(id(i, j), id(i - 1, j), -1.0);
      if (i + 1 < n) coo.add(id(i, j), id(i + 1, j), -1.0);
      if (j > 0) coo.add(id(i, j), id(i, j - 1), -1.0);
      if (j + 1 < n) coo.add(id(i, j), id(i, j + 1), -1.0);
    }
  }
  return coo_to_csr(std::move(coo));
}

struct CgResult {
  int iterations;
  double residual;
  double seconds;
};

CgResult conjugate_gradient(
    const std::function<void(std::span<const double>, std::span<double>)>& mv,
    std::span<const double> b, std::span<double> x, double tol,
    int max_iters) {
  const std::size_t n = b.size();
  std::vector<double> r(b.begin(), b.end());
  std::vector<double> p = r;
  std::vector<double> ap(n);
  std::fill(x.begin(), x.end(), 0.0);

  auto dot = [n](std::span<const double> u, std::span<const double> v) {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) s += u[i] * v[i];
    return s;
  };

  util::Timer timer;
  double rr = dot(r, r);
  const double b_norm = std::sqrt(dot(b, b));
  int it = 0;
  for (; it < max_iters && std::sqrt(rr) > tol * b_norm; ++it) {
    mv(p, ap);
    const double alpha = rr / dot(p, ap);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    const double rr_new = dot(r, r);
    const double beta = rr_new / rr;
    rr = rr_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
  }
  return {it, std::sqrt(rr) / b_norm, timer.elapsed_s()};
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto grid = static_cast<index_t>(cli.get_int("grid", 400));
  const double tol = cli.get_double("tol", 1e-8);
  const int max_iters = static_cast<int>(cli.get_int("max-iters", 2000));

  const auto a = poisson2d(grid);
  std::printf("Poisson 2D: grid %dx%d -> %d unknowns, %lld non-zeros\n",
              grid, grid, a.rows(), static_cast<long long>(a.nnz()));

  core::HeuristicPredictor predictor;
  const auto spmv = core::Tuner(a).predictor(predictor).build();
  std::printf("auto plan: %s\n", spmv.plan().to_string().c_str());

  // Right-hand side: a point source in the domain centre.
  std::vector<double> b(static_cast<std::size_t>(a.rows()), 0.0);
  b[static_cast<std::size_t>(a.rows()) / 2] = 1.0;
  std::vector<double> x(static_cast<std::size_t>(a.rows()));

  const auto r_auto = conjugate_gradient(
      [&](std::span<const double> in, std::span<double> out) {
        spmv.run(in, out);
      },
      b, std::span<double>(x), tol, max_iters);
  std::printf("auto-tuned SpMV:  %4d iterations, residual %.2e, %.3f s\n",
              r_auto.iterations, r_auto.residual, r_auto.seconds);

  const auto r_omp = conjugate_gradient(
      [&](std::span<const double> in, std::span<double> out) {
        kernels::spmv_omp_rows(a, in, out);
      },
      b, std::span<double>(x), tol, max_iters);
  std::printf("OpenMP-CSR SpMV:  %4d iterations, residual %.2e, %.3f s\n",
              r_omp.iterations, r_omp.residual, r_omp.seconds);

  std::printf("solver speed ratio (omp/auto): %.2fx\n",
              r_omp.seconds / r_auto.seconds);
  return r_auto.residual <= tol * 10 ? 0 : 1;
}

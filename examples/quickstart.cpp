// Quickstart: the smallest end-to-end use of the autospmv public API.
//
//   1. Build (or load) a CSR matrix.
//   2. Build the runtime through the Tuner facade with a predictor (the
//      built-in heuristic here; see train_and_save.cpp for the
//      trained-model path), attaching a RunProfile for telemetry.
//   3. Call run() as often as you like — the plan is built once.
//
// Usage: quickstart [--rows N] [--mtx file.mtx]
#include <cstdio>

#include "autospmv.hpp"

using namespace spmv;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);

  // 1. Input matrix: a Matrix Market file if given, else a synthetic
  //    power-law graph (a typical short-row workload).
  CsrMatrix<float> a = [&] {
    const std::string path = cli.get("mtx");
    if (!path.empty()) {
      std::printf("reading %s...\n", path.c_str());
      return coo_to_csr(read_matrix_market_file<float>(path));
    }
    const auto rows = static_cast<index_t>(cli.get_int("rows", 100000));
    return gen::power_law<float>(rows, rows, 2.0, 1000, /*seed=*/42);
  }();
  const auto stats = compute_row_stats(a);
  std::printf("matrix: %d x %d, %lld non-zeros (avg %.2f / row, max %lld)\n",
              stats.rows, stats.cols, static_cast<long long>(stats.nnz),
              stats.avg_nnz, static_cast<long long>(stats.max_nnz));

  // 2. Plan: features -> binning granularity -> kernel per bin. The Tuner
  //    facade carries all optional knobs; profile() attaches a telemetry
  //    sink that records where plan and run time goes.
  core::HeuristicPredictor predictor;
  prof::RunProfile profile;
  const auto spmv =
      core::Tuner(a).predictor(predictor).profile(&profile).build();
  std::printf("selected plan: %s\n", spmv.plan().to_string().c_str());
  std::printf("planning: features %.1f us, predict %.1f us, binning %.1f us\n",
              1e6 * profile.plan_timing.features_s,
              1e6 * profile.plan_timing.predict_s,
              1e6 * profile.plan_timing.binning_s);

  // 3. Execute y = A*x and report throughput.
  std::vector<float> x(static_cast<std::size_t>(a.cols()), 1.0f);
  std::vector<float> y(static_cast<std::size_t>(a.rows()));
  const auto result = util::measure(
      [&] { spmv.run(x, std::span<float>(y)); },
      {.warmup = 2, .reps = 10, .max_total_s = 2.0});

  double checksum = 0.0;
  for (float v : y) checksum += v;
  std::printf("SpMV: %.3f ms best (%.2f GFLOP/s), checksum %.6g\n",
              1e3 * result.best_s,
              2.0 * static_cast<double>(a.nnz()) / result.best_s * 1e-9,
              checksum);
  for (const auto& b : profile.bins) {
    std::printf("  bin %-3d %-12s %8lld nnz  %.3f ms total over %llu runs\n",
                b.bin_id, b.kernel.c_str(),
                static_cast<long long>(b.nnz), 1e3 * b.seconds,
                static_cast<unsigned long long>(b.launches));
  }
  return 0;
}

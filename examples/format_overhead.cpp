// Format-conversion overhead demonstration — the paper's introductory
// argument for staying in CSR: "the transformation between different
// formats is non-negligible in terms of performance".
//
// Converts CSR to ELLPACK, then reports (a) the conversion cost expressed
// in equivalent auto-tuned CSR SpMV passes — the number of products an
// application must run before the switch can possibly pay off — and
// (b) the ELL padding/memory expansion, which becomes prohibitive on
// skewed matrices (where conversion is refused outright).
//
// Usage: format_overhead [--rows N]
#include <cstdio>

#include "autospmv.hpp"

using namespace spmv;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto rows = static_cast<index_t>(cli.get_int("rows", 200000));

  struct Input {
    const char* name;
    CsrMatrix<float> a;
  };
  Input inputs[] = {
      {"uniform (deg 8)", gen::fixed_degree<float>(rows, rows, 8, 1)},
      {"banded FEM", gen::banded<float>(rows, 6, 0.5, 2)},
      {"low-variance CFD", gen::cfd_longrow<float>(rows / 16, 120, 3)},
      {"power-law graph", gen::power_law<float>(rows, rows, 2.0, 2000, 4)},
  };

  std::printf("%-18s %10s %12s %14s %16s %14s\n", "matrix", "padding",
              "conv[ms]", "csr-auto[ms]", "ell-spmv[ms]", "break-even");
  for (auto& in : inputs) {
    const auto x = std::vector<float>(static_cast<std::size_t>(in.a.cols()),
                                      1.0f);
    std::vector<float> y(static_cast<std::size_t>(in.a.rows()));

    core::HeuristicPredictor pred;
    const auto auto_spmv = core::Tuner(in.a).predictor(pred).build();
    const double t_csr =
        util::measure([&] { auto_spmv.run(x, std::span<float>(y)); },
                      {.warmup = 1, .reps = 5, .max_total_s = 2.0})
            .best_s;

    const double ratio = ell_padding_ratio(in.a);
    if (ratio > 16.0) {
      std::printf("%-18s %9.1fx %12s %14.3f %16s %14s\n", in.name, ratio,
                  "refused", 1e3 * t_csr, "-",
                  "never (padding)");
      continue;
    }

    EllMatrix<float> ell;
    const double t_conv =
        util::measure([&] { ell = csr_to_ell(in.a); },
                      {.warmup = 1, .reps = 3, .max_total_s = 3.0})
            .best_s;
    const double t_ell =
        util::measure(
            [&] { spmv_ell(ell, std::span<const float>(x), std::span<float>(y)); },
            {.warmup = 1, .reps = 5, .max_total_s = 2.0})
            .best_s;

    // SpMV passes after which ELL amortizes its conversion (never if ELL
    // is not even faster).
    char breakeven[32];
    if (t_ell < t_csr) {
      std::snprintf(breakeven, sizeof breakeven, "%.0f passes",
                    t_conv / (t_csr - t_ell));
    } else {
      std::snprintf(breakeven, sizeof breakeven, "never (slower)");
    }
    std::printf("%-18s %9.1fx %12.3f %14.3f %16.3f %14s\n", in.name, ratio,
                1e3 * t_conv, 1e3 * t_csr, 1e3 * t_ell, breakeven);
  }
  std::printf(
      "\nThe paper's point: conversion costs many SpMV-equivalents up "
      "front and fails outright on\nskewed matrices — auto-tuning the "
      "strategy *within* CSR avoids both.\n");
  return 0;
}

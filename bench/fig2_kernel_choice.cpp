// Figure 2 reproduction: kernel choice matters per input (2a) and per bin
// (2b).
//
// 2a: five pool kernels over two structurally different matrices, all rows
//     in a single bin — the best kernel flips between the matrices.
// 2b: the same five kernels over the four most occupied bins of a mixed
//     matrix — the best kernel differs across bins of the same input.
#include <cstdio>

#include "bench_common.hpp"

using namespace spmv;
using namespace spmv::bench;

namespace {

const std::vector<kernels::KernelId> kFive = {
    kernels::KernelId::Serial, kernels::KernelId::Sub4,
    kernels::KernelId::Sub32, kernels::KernelId::Sub128,
    kernels::KernelId::Vector};

void figure_2a(const exec::Backend& backend, index_t rows) {
  std::printf("Figure 2a: five kernels, two inputs, single bin\n");
  std::printf("(normalized execution time; 1.00 = best kernel per input)\n");

  struct Input {
    const char* name;
    CsrMatrix<float> a;
  };
  Input inputs[] = {
      {"short-row graph (avg ~3 nnz/row)",
       gen::fixed_degree<float>(rows, rows, 3, 11)},
      {"long-row FEM (avg ~200 nnz/row)",
       gen::fem_blocks<float>(rows / 16, 32, 200, 0.25, 12)},
  };

  std::printf("%-36s", "input \\ kernel");
  for (auto id : kFive) std::printf("%14s", kernels::kernel_name(id).c_str());
  std::printf("\n");
  rule(36 + 14 * static_cast<int>(kFive.size()));

  for (auto& in : inputs) {
    const auto x = random_x(static_cast<std::size_t>(in.a.cols()));
    std::vector<float> y(static_cast<std::size_t>(in.a.rows()));
    std::vector<double> times;
    for (auto id : kFive) {
      times.push_back(time_spmv([&] {
        backend.run_full(id, in.a, std::span<const float>(x),
                         std::span<float>(y));
      }));
    }
    const double best = *std::min_element(times.begin(), times.end());
    std::printf("%-36s", in.name);
    for (double t : times) std::printf("%14.2f", t / best);
    std::printf("\n");
  }
}

void figure_2b(const exec::Backend& backend, index_t rows) {
  std::printf("\nFigure 2b: five kernels across four bins of one input\n");
  std::printf("(normalized execution time; 1.00 = best kernel per bin)\n");

  const auto a =
      gen::mixed_regime<float>(rows, rows, 0.35, 0.35, 3, 40, 400, 100, 13);
  const auto x = random_x(static_cast<std::size_t>(a.cols()));
  std::vector<float> y(static_cast<std::size_t>(a.rows()));
  const index_t unit = 100;
  const auto bins = binning::bin_matrix(a, unit);

  // The four bins covering the most rows.
  auto occupied = bins.occupied_bins();
  std::sort(occupied.begin(), occupied.end(), [&](int l, int r) {
    return bins.rows_in_bin(l) > bins.rows_in_bin(r);
  });
  occupied.resize(std::min<std::size_t>(occupied.size(), 4));
  std::sort(occupied.begin(), occupied.end());

  std::printf("%-36s", "bin \\ kernel");
  for (auto id : kFive) std::printf("%14s", kernels::kernel_name(id).c_str());
  std::printf("%14s\n", "best kernel");
  rule(36 + 14 * static_cast<int>(kFive.size() + 1));

  for (int b : occupied) {
    std::vector<double> times;
    for (auto id : kFive) {
      times.push_back(time_spmv([&] {
        backend.run_binned(id, a, std::span<const float>(x),
                           std::span<float>(y), bins.bin(b), unit);
      }));
    }
    const double best = *std::min_element(times.begin(), times.end());
    const auto best_id =
        kFive[static_cast<std::size_t>(std::min_element(times.begin(),
                                                        times.end()) -
                                       times.begin())];
    char label[64];
    std::snprintf(label, sizeof label, "bin %d (%d rows, ~%d nnz/row)", b,
                  bins.rows_in_bin(b), b);
    std::printf("%-36s", label);
    for (double t : times) std::printf("%14.2f", t / best);
    std::printf("%14s\n", kernels::kernel_name(best_id).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto rows = static_cast<index_t>(cli.get_int("rows", 400000));
  const auto backend = exec::shared_backend(backend_from_cli(cli));
  std::printf("=== bench fig2_kernel_choice (rows=%d, backend=%s) ===\n\n",
              rows, exec::backend_cname(backend->kind()));
  figure_2a(*backend, rows);
  figure_2b(*backend, rows / 4);
  return 0;
}

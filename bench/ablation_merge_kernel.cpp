// Ablation (paper §V future work): the merge-based SpMV kernel (Merrill &
// Garland) as an additional candidate, compared against the tuned pool
// plan, CSR-Adaptive, and the plain OpenMP CPU kernel on the
// representative set.
#include <cstdio>

#include "bench_common.hpp"

using namespace spmv;
using namespace spmv::bench;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const double extra_scale = cli.get_double("scale", 1.0);
  const auto pools = bench_pools(false);

  std::printf("=== bench ablation_merge_kernel (scale=%.3f) ===\n\n",
              extra_scale);
  std::printf("%-16s %12s %12s %14s %12s %16s\n", "matrix", "auto[ms]",
              "merge[ms]", "csr-adapt[ms]", "omp-csr[ms]", "merge in pool?");
  rule(88);

  int merge_would_win = 0;
  for (const auto& base_info : gen::representative_catalogue()) {
    auto info = base_info;
    info.scale *= extra_scale;
    const auto a = gen::make_representative<float>(info);
    const auto x = random_x(static_cast<std::size_t>(a.cols()));
    std::vector<float> y(static_cast<std::size_t>(a.rows()));

    const auto plan = oracle_plan(a, x, pools);
    const auto bins = core::bins_for_plan(a, plan);
    const double t_auto = time_spmv([&] {
      core::execute_plan(clsim::default_engine(), a, std::span<const float>(x),
                         std::span<float>(y), bins, plan);
    });
    const double t_merge = time_spmv([&] {
      baseline::spmv_merge(a, std::span<const float>(x), std::span<float>(y));
    });
    baseline::CsrAdaptive<float> adaptive(a, clsim::default_engine());
    const double t_adaptive = time_spmv(
        [&] { adaptive.run(std::span<const float>(x), std::span<float>(y)); });
    const double t_omp = time_spmv([&] {
      kernels::spmv_omp_rows(a, std::span<const float>(x), std::span<float>(y));
    });

    const bool merge_wins = t_merge < t_auto;
    if (merge_wins) ++merge_would_win;
    std::printf("%-16s %12.3f %12.3f %14.3f %12.3f %16s\n", info.name.c_str(),
                1e3 * t_auto, 1e3 * t_merge, 1e3 * t_adaptive, 1e3 * t_omp,
                merge_wins ? "yes" : "no");
  }
  rule(88);
  std::printf(
      "adding the merge kernel to the candidate pool would improve %d of 16 "
      "matrices\n(the paper lists DP-based and merge-based kernels as "
      "future pool candidates).\n",
      merge_would_win);
  return 0;
}

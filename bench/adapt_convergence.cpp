// bench adapt_convergence — the online-adaptation acceptance number: serve
// from a deliberately mispredicted plan (coarse unit, Serial in every bin)
// with the BanditTuner shadow-measuring alternatives, and check that the
// refined plan recovers most of the exhaustively-tuned oracle's throughput
// within a bounded number of requests. Also demonstrates the persistent
// warm start: a restarted service over the same plan store must rebuild
// from the stored plan (warm hit) and never re-run the planning pass.
//
//   adapt_convergence [--rows N] [--requests R] [--trial-fraction F]
//                     [--recovery-floor 0.9] [--check] [--json out.json]
//                     [--misbin] [--misbin-unit U]
//                     [--formats] [--format-floor 0.95]
//                     [--iter] [--iters N] [--width W] [--iter-floor 0.7]
//
// Default mode mispredicts the per-bin kernels at the oracle's own
// granularity (the first-level bandit's recovery story). --misbin instead
// mispredicts the *binning unit U itself* — the stage-1 structural
// misprediction no kernel swap can fix — while delegating kernel choice to
// the heuristic, and enables the BanditTuner's second-level U exploration:
// recovery then requires whole-plan shadow trials at neighboring
// granularities and a re-binned promotion carrying tuned-U provenance into
// the store. --formats is the fourth-level gate: serve two corpora on the
// native backend from CSR-everywhere plans with explore_formats enabled —
// a near-uniform short-row corpus where the bandit must discover and
// promote the ELL-packed layout, and a scatter (power-law) corpus that
// must not regress under format exploration.
//
// --check turns the acceptance criteria into the exit code:
//   1. refined GFLOP/s >= recovery-floor * oracle GFLOP/s
//   2. restarted service: warm hits > 0 and planning passes == 0
//   3. (--misbin only) U trials ran, the promoted plan left the wrong
//      granularity behind (unit != misbin unit, unit_tuned provenance set),
//      and the corrected U is what the store serves after the restart
//   4. (--formats only) format trials ran, the uniform corpus's stored
//      plan carries an ELL bin, and each corpus's refined throughput is
//      >= format-floor * its CSR-only native baseline
//
// --iter is the solver-loop gate: drive an iter::IterativeSession power
// iteration (block width W) from the same Serial-everywhere misprediction
// with latency-feedback tuning — every iteration IS the measurement, so
// the tuner must converge on the oracle plan with ZERO shadow launches
// (adapt.trials == 0; the latency path counts l_trials / l_promotions
// instead). --check then also requires the flushed plan to carry the
// serving width (Plan::spmm_width == W, the provenance the PlanStore
// round-trips) and a restarted session to warm-start from it without a
// planning pass.
#include <cstdio>
#include <fstream>
#include <memory>

#include "bench_common.hpp"

using namespace spmv;
using namespace spmv::bench;

namespace {

/// The mispredicting starting point: coarse unit, Serial everywhere.
class MispredictPredictor final : public core::Predictor {
 public:
  explicit MispredictPredictor(index_t unit) : unit_(unit) {}
  [[nodiscard]] UnitChoice predict_unit(const RowStats&) const override {
    return {unit_, false};
  }
  [[nodiscard]] kernels::KernelId predict_kernel(const RowStats&, index_t,
                                                 int) const override {
    return kernels::KernelId::Serial;
  }

 private:
  index_t unit_;
};

/// The --misbin starting point: a deliberately wrong stage-1 granularity,
/// but kernels picked sensibly (heuristic) for the bins that wrong U
/// produces. Isolates the structural misprediction — the first-level
/// bandit can only shuffle kernels inside the broken bin layout, so only
/// U exploration can recover.
class MisbinPredictor final : public core::Predictor {
 public:
  explicit MisbinPredictor(index_t unit) : unit_(unit) {}
  [[nodiscard]] UnitChoice predict_unit(const RowStats&) const override {
    return {unit_, false};
  }
  [[nodiscard]] kernels::KernelId predict_kernel(const RowStats& stats,
                                                 index_t unit,
                                                 int bin_id) const override {
    return heuristic_.predict_kernel(stats, unit, bin_id);
  }

 private:
  index_t unit_;
  core::HeuristicPredictor heuristic_;
};

double plan_gflops(const CsrMatrix<float>& a, const core::Plan& plan,
                   std::span<const float> x) {
  // Eager layout policy: a plan carrying non-CSR formats is timed with its
  // layouts already materialized (steady state); all-CSR plans never
  // consult the policy.
  const auto rt = core::Tuner(a)
                      .plan(plan)
                      .format_policy({.min_reuse = 0, .eager = true})
                      .build();
  std::vector<float> y(static_cast<std::size_t>(a.rows()));
  // Best-of-3: the gate compares two of these numbers against a 5% floor,
  // so per-measurement noise must stay well under that.
  double best = 0.0;
  for (int i = 0; i < 3; ++i)
    best = std::max(best, gflops(a.nnz(), time_spmv([&] {
                      rt.run(x, std::span<float>(y));
                    })));
  return best;
}

/// True when any bin of `plan` is stamped with `kind`.
bool has_format(const core::Plan& plan, fmt::FormatKind kind) {
  for (const auto& bp : plan.bin_kernels)
    if (bp.format == kind) return true;
  return false;
}

/// The --formats gate: serve a corpus on the native backend from a
/// CSR-everywhere heuristic plan with fourth-level format exploration
/// enabled, and report the refined plan against the CSR-only baseline.
struct FormatsGateResult {
  double baseline_gf = 0.0;
  double refined_gf = 0.0;
  core::Plan refined;
  std::uint64_t f_trials = 0;
  std::uint64_t f_promotions = 0;
};

FormatsGateResult run_formats_corpus(
    const std::shared_ptr<const CsrMatrix<float>>& a, int requests,
    double trial_fraction, const std::string& store_path) {
  std::remove(store_path.c_str());
  const auto x = random_x(static_cast<std::size_t>(a->cols()), 4242);
  core::HeuristicPredictor pred;

  FormatsGateResult r;
  // CSR-only native baseline: the heuristic plan with every bin pinned to
  // the shared CSR arrays (FormatMode::Csr is the Tuner default).
  const auto base_plan = core::Tuner(*a)
                             .predictor(pred)
                             .backend(exec::BackendKind::Native)
                             .build()
                             .plan();
  r.baseline_gf = plan_gflops(*a, base_plan, x);

  prof::RunProfile profile;
  serve::ServiceOptions opts;
  opts.workers = 1;
  opts.backend = exec::BackendKind::Native;
  opts.profile = &profile;
  adapt::AdaptOptions aopts;
  aopts.trial_fraction = trial_fraction;
  aopts.hot_bins = 8;
  aopts.explore_formats = true;
  aopts.format_trial_fraction = 0.7;
  aopts.format_min_samples = 2;
  // Forgiving hysteresis: the bench wants convergence within the request
  // budget; production defaults are more conservative.
  aopts.format_hysteresis = 1.02;
  aopts.format_cooldown = 2;
  opts.adapt = aopts;
  adapt::PlanStore store(store_path);
  opts.plan_store = &store;
  {
    serve::SpmvService<float> service(pred, opts);
    for (int i = 0; i < requests; ++i) (void)service.run(a, x);
    service.shutdown();
  }
  r.f_trials = profile.adapt.f_trials;
  r.f_promotions = profile.adapt.f_promotions;

  adapt::PlanStore reread(store_path);
  (void)reread.load();
  const auto stored = reread.lookup(serve::fingerprint_of(*a));
  r.refined = stored.has_value() ? stored->plan : base_plan;
  r.refined_gf = plan_gflops(*a, r.refined, x);
  std::remove(store_path.c_str());
  return r;
}

int run_formats_gate(const util::Cli& cli) {
  const auto rows = static_cast<index_t>(cli.get_int("rows", 20000));
  const int requests = static_cast<int>(cli.get_int("requests", 600));
  const double trial_fraction = cli.get_double("trial-fraction", 1.0);
  const double floor = cli.get_double("format-floor", 0.95);
  const bool check = cli.get_bool("check", false);

  std::printf("=== bench adapt_convergence --formats (rows=%d, "
              "requests=%d, trial_fraction=%.2f) ===\n\n",
              rows, requests, trial_fraction);

  // Near-uniform short rows (every row degree 6): the ELL-packed sweet
  // spot the bandit must find. Columns are drawn from a space wider than
  // the 16-bit delta budget so row spans disqualify DCSR — on narrow
  // matrices delta-compressed indices legitimately beat ELL, which is not
  // the regime this gate probes. Scatter: a long power-law tail — format
  // exploration must not cost throughput where layouts don't pay.
  const auto ucols = std::max<index_t>(rows, 70000);
  const auto uniform = std::make_shared<const CsrMatrix<float>>(
      gen::fixed_degree<float>(rows, ucols, 6, 2));
  const auto scatter = std::make_shared<const CsrMatrix<float>>(
      gen::power_law<float>(rows, rows, 2.0, 300, 1));

  const auto uni = run_formats_corpus(uniform, requests, trial_fraction,
                                      "adapt_formats_uniform.tmp.json");
  const auto sca = run_formats_corpus(scatter, requests, trial_fraction,
                                      "adapt_formats_scatter.tmp.json");

  std::printf("%-14s %12s %12s %8s %9s %11s   %s\n", "corpus",
              "csr[GF/s]", "refined[GF/s]", "ratio", "f_trials",
              "f_promotions", "refined plan");
  for (const auto* row : {&uni, &sca}) {
    std::printf("%-14s %12.2f %12.2f %7.2fx %9llu %11llu   %s\n",
                row == &uni ? "uniform-short" : "scatter",
                row->baseline_gf, row->refined_gf,
                row->refined_gf / row->baseline_gf,
                static_cast<unsigned long long>(row->f_trials),
                static_cast<unsigned long long>(row->f_promotions),
                row->refined.to_string().c_str());
  }

  const std::string json_path = cli.get("json");
  if (!json_path.empty()) {
    prof::Json j = prof::Json::object();
    j.set("rows", static_cast<double>(rows));
    j.set("requests", static_cast<double>(requests));
    j.set("uniform_csr_gflops", uni.baseline_gf);
    j.set("uniform_refined_gflops", uni.refined_gf);
    j.set("uniform_f_trials", static_cast<double>(uni.f_trials));
    j.set("uniform_f_promotions", static_cast<double>(uni.f_promotions));
    j.set("uniform_ell_promoted", has_format(uni.refined,
                                             fmt::FormatKind::Ell));
    j.set("scatter_csr_gflops", sca.baseline_gf);
    j.set("scatter_refined_gflops", sca.refined_gf);
    j.set("scatter_f_trials", static_cast<double>(sca.f_trials));
    j.set("scatter_f_promotions", static_cast<double>(sca.f_promotions));
    std::ofstream out(json_path);
    out << j.dump(2) << "\n";
    std::printf("summary written to %s\n", json_path.c_str());
  }

  if (!check) return 0;
  bool ok = true;
  if (uni.f_trials == 0) {
    std::printf("FAIL: no format trials ran on the uniform corpus\n");
    ok = false;
  }
  if (!has_format(uni.refined, fmt::FormatKind::Ell)) {
    std::printf("FAIL: uniform-short corpus did not promote an ELL bin\n");
    ok = false;
  }
  if (uni.refined_gf < floor * uni.baseline_gf) {
    std::printf("FAIL: uniform refined %.2f GF/s below %.2f x csr "
                "baseline %.2f GF/s\n",
                uni.refined_gf, floor, uni.baseline_gf);
    ok = false;
  }
  if (sca.refined_gf < floor * sca.baseline_gf) {
    std::printf("FAIL: scatter corpus regressed under format exploration "
                "(%.2f GF/s vs baseline %.2f GF/s)\n",
                sca.refined_gf, sca.baseline_gf);
    ok = false;
  }
  if (!ok) return 1;
  std::printf("OK: ELL promoted on the uniform corpus (%llu format "
              "trials); no scatter regression\n",
              static_cast<unsigned long long>(uni.f_trials));
  return 0;
}

/// Blocked iteration throughput of `plan`: best-of-3 Y = A·X at `width`
/// through the true-SpMM path — the number a solver loop actually sees.
double iter_gflops(const CsrMatrix<float>& a, const core::Plan& plan,
                   std::span<const float> xb, int width) {
  const auto rt = core::Tuner(a)
                      .plan(plan)
                      .format_policy({.min_reuse = 0, .eager = true})
                      .build();
  std::vector<float> y(static_cast<std::size_t>(a.rows()) *
                       static_cast<std::size_t>(width));
  double best = 0.0;
  for (int i = 0; i < 3; ++i)
    best = std::max(
        best, gflops(a.nnz() * width, time_spmv([&] {
          rt.run_spmm(xb, std::span<float>(y), width);
        })));
  return best;
}

/// The --iter gate: latency-feedback convergence inside a solver loop.
int run_iter_gate(const util::Cli& cli) {
  // Default rows keeps the working set cache-resident: in the streaming
  // regime (~20k+ rows here) every kernel hits the same memory ceiling,
  // serial measures even with the oracle, and there is nothing for the
  // latency bandit to promote — the gate needs a corpus where kernel
  // choice is visible in the per-iteration latencies.
  const auto rows = static_cast<index_t>(cli.get_int("rows", 12000));
  const int iters = static_cast<int>(cli.get_int("iters", 400));
  const int width = static_cast<int>(cli.get_int("width", 4));
  const double floor = cli.get_double("iter-floor", 0.7);
  const bool check = cli.get_bool("check", false);
  const std::string store_path = "adapt_iter_store.tmp.json";
  std::remove(store_path.c_str());

  std::printf("=== bench adapt_convergence --iter (rows=%d, iters=%d, "
              "width=%d) ===\n\n",
              rows, iters, width);

  // Same long-tailed corpus as the request/response gate: the bins want
  // different kernels, so Serial-everywhere leaves throughput on the table.
  auto a = std::make_shared<const CsrMatrix<float>>(
      gen::power_law<float>(rows, rows, 2.0, 300, 1));
  const auto n = static_cast<std::size_t>(a->cols());
  std::vector<float> xb(n * static_cast<std::size_t>(width));
  for (int c = 0; c < width; ++c) {
    const auto col = random_x(n, 4242 + static_cast<std::uint64_t>(c));
    std::copy(col.begin(), col.end(),
              xb.begin() + static_cast<std::size_t>(c) * n);
  }

  // Oracle: exhaustively tuned on the native backend (the session's
  // engine), scored at the serving width.
  const auto nat = exec::shared_backend(exec::BackendKind::Native);
  const auto tuned = oracle_plan(*a, std::span<const float>(xb).subspan(0, n),
                                 bench_pools(), *nat);
  const double oracle_gf = iter_gflops(*a, tuned, xb, width);

  MispredictPredictor mis(tuned.unit);
  const auto mis_plan = core::Tuner(*a)
                            .predictor(mis)
                            .backend(exec::BackendKind::Native)
                            .build()
                            .plan();
  const double mis_gf = iter_gflops(*a, mis_plan, xb, width);

  // The solver loop: power iteration at the block width, every iteration
  // timed and fed back. No shadow launches anywhere on this path.
  prof::RunProfile profile;
  profile.label = "adapt_convergence_iter";
  iter::SessionOptions sopts;
  sopts.spmm_width = width;
  sopts.backend = exec::BackendKind::Native;
  sopts.profile = &profile;
  adapt::AdaptOptions aopts;
  aopts.min_samples = 2;
  aopts.hysteresis = 1.05;
  aopts.hot_bins = static_cast<int>(mis_plan.bin_kernels.size());
  sopts.adapt = aopts;
  adapt::PlanStore store(store_path);
  sopts.plan_store = &store;
  std::uint64_t iterations = 0;
  {
    iter::IterativeSession<float> session(a, mis, sopts);
    session.seed(std::span<const float>(xb));
    for (int i = 0; i < iters; ++i) {
      (void)session.step();
      // Per-column inf-norm normalization keeps the iterate finite — the
      // standard power-iteration step, and it keeps every timed launch
      // numerically comparable.
      auto it = session.iterate();
      for (int c = 0; c < width; ++c) {
        auto col = it.subspan(static_cast<std::size_t>(c) * n, n);
        float norm = 0.0f;
        for (const float v : col) norm = std::max(norm, std::abs(v));
        if (norm > 0.0f)
          for (float& v : col) v /= norm;
      }
    }
    session.flush();
    iterations = session.stats().iterations;
  }

  adapt::PlanStore reread(store_path);
  (void)reread.load();
  const auto stored = reread.lookup(serve::fingerprint_of(*a));
  const core::Plan refined = stored.has_value() ? stored->plan : mis_plan;
  const double refined_gf = iter_gflops(*a, refined, xb, width);
  const double recovery = refined_gf / oracle_gf;

  std::printf("%-14s %10s %10s   %s\n", "plan", "GFLOP/s", "recovery",
              "detail");
  std::printf("%-14s %10.2f %9.0f%%   %s\n", "oracle", oracle_gf, 100.0,
              tuned.to_string().c_str());
  std::printf("%-14s %10.2f %9.0f%%   %s\n", "mispredicted", mis_gf,
              100.0 * mis_gf / oracle_gf, mis_plan.to_string().c_str());
  std::printf("%-14s %10.2f %9.0f%%   %s\n", "refined", refined_gf,
              100.0 * recovery, refined.to_string().c_str());
  std::printf("\nadapt: %llu latency trials, %llu latency promotions over "
              "%llu iterations; %llu shadow trials\n",
              static_cast<unsigned long long>(profile.adapt.l_trials),
              static_cast<unsigned long long>(profile.adapt.l_promotions),
              static_cast<unsigned long long>(iterations),
              static_cast<unsigned long long>(profile.adapt.trials));

  // Warm restart: a fresh session over the same store must adopt the
  // refined plan (width provenance and all) without a planning pass.
  std::uint64_t warm_starts = 0, planning_passes = 0;
  {
    iter::SessionOptions ropts;
    ropts.spmm_width = width;
    ropts.backend = exec::BackendKind::Native;
    adapt::PlanStore rstore(store_path);
    ropts.plan_store = &rstore;
    iter::IterativeSession<float> restarted(a, mis, ropts);
    restarted.seed(std::span<const float>(xb));
    (void)restarted.step();
    warm_starts = restarted.stats().warm_starts;
    planning_passes = restarted.stats().planning_passes;
  }
  std::printf("warm restart: %llu warm start(s), %llu planning pass(es)\n",
              static_cast<unsigned long long>(warm_starts),
              static_cast<unsigned long long>(planning_passes));

  const std::string json_path = cli.get("json");
  if (!json_path.empty()) {
    prof::Json j = prof::Json::object();
    j.set("bench", "iter");
    j.set("rows", static_cast<double>(rows));
    j.set("iters", static_cast<double>(iters));
    j.set("width", static_cast<double>(width));
    j.set("oracle_gflops", oracle_gf);
    j.set("mispredicted_gflops", mis_gf);
    j.set("refined_gflops", refined_gf);
    j.set("recovery", recovery);
    j.set("l_trials", static_cast<double>(profile.adapt.l_trials));
    j.set("l_promotions", static_cast<double>(profile.adapt.l_promotions));
    j.set("shadow_trials", static_cast<double>(profile.adapt.trials));
    j.set("stored_spmm_width",
          static_cast<double>(stored.has_value() ? stored->plan.spmm_width
                                                 : 0));
    j.set("warm_starts", static_cast<double>(warm_starts));
    std::ofstream out(json_path);
    out << j.dump(2) << "\n";
    std::printf("summary written to %s\n", json_path.c_str());
  }
  std::remove(store_path.c_str());

  if (!check) return 0;
  bool ok = true;
  if (profile.adapt.l_trials == 0) {
    std::printf("FAIL: no latency-feedback trials ran\n");
    ok = false;
  }
  if (profile.adapt.l_promotions == 0) {
    std::printf("FAIL: latency feedback never promoted a plan\n");
    ok = false;
  }
  if (profile.adapt.trials != 0) {
    std::printf("FAIL: %llu shadow trials ran in a latency-only session\n",
                static_cast<unsigned long long>(profile.adapt.trials));
    ok = false;
  }
  if (recovery < floor) {
    std::printf("FAIL: recovery %.0f%% below floor %.0f%%\n",
                100.0 * recovery, 100.0 * floor);
    ok = false;
  }
  if (!stored.has_value() || stored->plan.spmm_width != width) {
    std::printf("FAIL: stored plan missing spmm_width == %d provenance\n",
                width);
    ok = false;
  }
  if (warm_starts == 0 || planning_passes != 0) {
    std::printf("FAIL: warm restart expected warm starts > 0 and planning "
                "passes == 0\n");
    ok = false;
  }
  if (!ok) return 1;
  std::printf("OK: latency feedback recovered %.0f%% of oracle with zero "
              "shadow launches; width-%d provenance persisted\n",
              100.0 * recovery, width);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  if (cli.get_bool("formats", false)) return run_formats_gate(cli);
  if (cli.get_bool("iter", false)) return run_iter_gate(cli);
  const auto rows = static_cast<index_t>(cli.get_int("rows", 20000));
  const bool misbin = cli.get_bool("misbin", false);
  const auto misbin_unit =
      static_cast<index_t>(cli.get_int("misbin-unit", 50000));
  // The structural recovery walks the granularity grid, so it gets a
  // larger (still bounded) request budget by default.
  const int requests =
      static_cast<int>(cli.get_int("requests", misbin ? 1000 : 600));
  const double trial_fraction = cli.get_double("trial-fraction", 1.0);
  const double floor = cli.get_double("recovery-floor", 0.9);
  const bool check = cli.get_bool("check", false);
  const std::string store_path = "adapt_convergence_store.tmp.json";
  std::remove(store_path.c_str());

  // A long-tailed matrix: the bins genuinely want different kernels, so a
  // Serial-everywhere misprediction leaves real throughput on the table.
  auto a = std::make_shared<const CsrMatrix<float>>(
      gen::power_law<float>(rows, rows, 2.0, 300, 1));
  const auto x = random_x(static_cast<std::size_t>(a->cols()), 4242);

  std::printf("=== bench adapt_convergence (rows=%d, requests=%d, "
              "trial_fraction=%.2f%s) ===\n\n",
              rows, requests, trial_fraction,
              misbin ? ", mode=misbin" : "");

  // Oracle: exhaustive tuning, the throughput ceiling being recovered.
  core::ExhaustiveOptions topts;
  topts.measure = {.warmup = 1, .reps = 3, .max_total_s = 0.5};
  const auto tuned = core::exhaustive_tune(clsim::default_engine(), *a,
                                           std::span<const float>(x),
                                           core::default_pools(), topts);
  const double oracle_gf = plan_gflops(*a, tuned.best_plan, x);

  // Default mode mispredicts at the oracle's own granularity (recovery
  // target = the per-bin kernel choice). --misbin forces a wrong stage-1 U
  // instead (recovery target = the bin structure itself).
  MispredictPredictor kernel_mis(tuned.best_plan.unit);
  MisbinPredictor unit_mis(misbin_unit);
  const core::Predictor& mis =
      misbin ? static_cast<const core::Predictor&>(unit_mis) : kernel_mis;
  const auto mis_plan = core::Tuner(*a).predictor(mis).build().plan();
  const double mis_gf = plan_gflops(*a, mis_plan, x);

  // Serve `requests` requests from the mispredicted plan with online
  // adaptation writing through to the store.
  prof::RunProfile profile;
  profile.label = "adapt_convergence";
  serve::ServiceOptions opts;
  opts.workers = 1;
  opts.profile = &profile;
  adapt::AdaptOptions aopts;
  aopts.trial_fraction = trial_fraction;
  aopts.min_samples = 2;
  aopts.hysteresis = 1.05;
  // Cover every occupied bin: this bench measures full recovery, not the
  // hottest-subset steady-state configuration.
  aopts.hot_bins = static_cast<int>(mis_plan.bin_kernels.size());
  if (misbin) {
    // Second-level exploration is the whole point of this mode. Low
    // hysteresis/cooldown: the bench wants fast convergence within the
    // request budget; production defaults are more conservative.
    aopts.explore_units = true;
    aopts.unit_trial_fraction = 0.5;
    aopts.unit_min_samples = 2;
    aopts.unit_hysteresis = 1.05;
    aopts.unit_cooldown = 2;
    // After a U promotion the rebinned plan can have more bins than the
    // degenerate starting layout, so size the hot set for the recovered
    // plan, not the broken one.
    aopts.hot_bins = 8;
  }
  opts.adapt = aopts;
  adapt::PlanStore store(store_path);
  opts.plan_store = &store;
  {
    serve::SpmvService<float> service(mis, opts);
    for (int i = 0; i < requests; ++i) (void)service.run(a, x);
    service.shutdown();
  }

  // The refined plan is whatever the service flushed for this fingerprint.
  adapt::PlanStore reread(store_path);
  (void)reread.load();
  const auto stored = reread.lookup(serve::fingerprint_of(*a));
  const core::Plan refined = stored.has_value() ? stored->plan : mis_plan;
  const double refined_gf = plan_gflops(*a, refined, x);
  const double recovery = refined_gf / oracle_gf;

  std::printf("%-14s %10s %10s   %s\n", "plan", "GFLOP/s", "recovery",
              "detail");
  std::printf("%-14s %10.2f %9.0f%%   %s\n", "oracle", oracle_gf, 100.0,
              tuned.best_plan.to_string().c_str());
  std::printf("%-14s %10.2f %9.0f%%   %s\n", "mispredicted", mis_gf,
              100.0 * mis_gf / oracle_gf, mis_plan.to_string().c_str());
  std::printf("%-14s %10.2f %9.0f%%   %s\n", "refined", refined_gf,
              100.0 * recovery, refined.to_string().c_str());
  std::printf("\nadapt: %llu trials, %llu promotions, %.3f ms regret over "
              "%d requests\n",
              static_cast<unsigned long long>(profile.adapt.trials),
              static_cast<unsigned long long>(profile.adapt.promotions),
              1e3 * profile.adapt.regret_s, requests);
  if (misbin)
    std::printf("adapt U: %llu trials, %llu promotions; refined unit %d "
                "(started from %d, oracle %d)%s\n",
                static_cast<unsigned long long>(profile.adapt.u_trials),
                static_cast<unsigned long long>(profile.adapt.u_promotions),
                refined.unit, misbin_unit, tuned.best_plan.unit,
                refined.unit_tuned ? ", tuned-U provenance" : "");

  // Warm restart over the same store file.
  prof::RunProfile rprofile;
  {
    serve::ServiceOptions ropts;
    ropts.workers = 1;
    ropts.profile = &rprofile;
    adapt::PlanStore rstore(store_path);
    ropts.plan_store = &rstore;
    serve::SpmvService<float> restarted(mis, ropts);
    (void)restarted.run(a, x);
    restarted.shutdown();
  }
  std::printf("warm restart: %llu warm hit(s), %llu planning pass(es)\n",
              static_cast<unsigned long long>(rprofile.serve.cache_warm_hits),
              static_cast<unsigned long long>(
                  rprofile.serve.planning_passes));

  const std::string json_path = cli.get("json");
  if (!json_path.empty()) {
    prof::Json j = prof::Json::object();
    j.set("rows", static_cast<double>(rows));
    j.set("requests", static_cast<double>(requests));
    j.set("oracle_gflops", oracle_gf);
    j.set("mispredicted_gflops", mis_gf);
    j.set("refined_gflops", refined_gf);
    j.set("recovery", recovery);
    j.set("trials", static_cast<double>(profile.adapt.trials));
    j.set("promotions", static_cast<double>(profile.adapt.promotions));
    j.set("u_trials", static_cast<double>(profile.adapt.u_trials));
    j.set("u_promotions",
          static_cast<double>(profile.adapt.u_promotions));
    j.set("refined_unit", static_cast<double>(refined.unit));
    j.set("unit_tuned", refined.unit_tuned);
    j.set("warm_hits",
          static_cast<double>(rprofile.serve.cache_warm_hits));
    std::ofstream out(json_path);
    out << j.dump(2) << "\n";
    std::printf("summary written to %s\n", json_path.c_str());
  }
  std::remove(store_path.c_str());

  if (check) {
    bool ok = true;
    if (recovery < floor) {
      std::printf("FAIL: recovery %.0f%% below floor %.0f%%\n",
                  100.0 * recovery, 100.0 * floor);
      ok = false;
    }
    if (rprofile.serve.cache_warm_hits == 0 ||
        rprofile.serve.planning_passes != 0) {
      std::printf("FAIL: warm restart expected warm hits > 0 and planning "
                  "passes == 0\n");
      ok = false;
    }
    if (misbin) {
      if (profile.adapt.u_trials == 0) {
        std::printf("FAIL: no U trials ran in --misbin mode\n");
        ok = false;
      }
      if (!stored.has_value() || stored->plan.unit == misbin_unit ||
          !stored->plan.unit_tuned) {
        std::printf("FAIL: store still serves the mispredicted unit %d "
                    "(expected a tuned-U promotion)\n",
                    misbin_unit);
        ok = false;
      }
    }
    if (!ok) return 1;
    std::printf("OK: refined plan recovers %.0f%% of oracle; warm restart "
                "verified%s\n",
                100.0 * recovery,
                misbin ? "; corrected U persisted" : "");
  }
  return 0;
}

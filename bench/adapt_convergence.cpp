// bench adapt_convergence — the online-adaptation acceptance number: serve
// from a deliberately mispredicted plan (coarse unit, Serial in every bin)
// with the BanditTuner shadow-measuring alternatives, and check that the
// refined plan recovers most of the exhaustively-tuned oracle's throughput
// within a bounded number of requests. Also demonstrates the persistent
// warm start: a restarted service over the same plan store must rebuild
// from the stored plan (warm hit) and never re-run the planning pass.
//
//   adapt_convergence [--rows N] [--requests R] [--trial-fraction F]
//                     [--recovery-floor 0.9] [--check] [--json out.json]
//                     [--misbin] [--misbin-unit U]
//
// Default mode mispredicts the per-bin kernels at the oracle's own
// granularity (the first-level bandit's recovery story). --misbin instead
// mispredicts the *binning unit U itself* — the stage-1 structural
// misprediction no kernel swap can fix — while delegating kernel choice to
// the heuristic, and enables the BanditTuner's second-level U exploration:
// recovery then requires whole-plan shadow trials at neighboring
// granularities and a re-binned promotion carrying tuned-U provenance into
// the store.
//
// --check turns the acceptance criteria into the exit code:
//   1. refined GFLOP/s >= recovery-floor * oracle GFLOP/s
//   2. restarted service: warm hits > 0 and planning passes == 0
//   3. (--misbin only) U trials ran, the promoted plan left the wrong
//      granularity behind (unit != misbin unit, unit_tuned provenance set),
//      and the corrected U is what the store serves after the restart
#include <cstdio>
#include <fstream>
#include <memory>

#include "bench_common.hpp"

using namespace spmv;
using namespace spmv::bench;

namespace {

/// The mispredicting starting point: coarse unit, Serial everywhere.
class MispredictPredictor final : public core::Predictor {
 public:
  explicit MispredictPredictor(index_t unit) : unit_(unit) {}
  [[nodiscard]] UnitChoice predict_unit(const RowStats&) const override {
    return {unit_, false};
  }
  [[nodiscard]] kernels::KernelId predict_kernel(const RowStats&, index_t,
                                                 int) const override {
    return kernels::KernelId::Serial;
  }

 private:
  index_t unit_;
};

/// The --misbin starting point: a deliberately wrong stage-1 granularity,
/// but kernels picked sensibly (heuristic) for the bins that wrong U
/// produces. Isolates the structural misprediction — the first-level
/// bandit can only shuffle kernels inside the broken bin layout, so only
/// U exploration can recover.
class MisbinPredictor final : public core::Predictor {
 public:
  explicit MisbinPredictor(index_t unit) : unit_(unit) {}
  [[nodiscard]] UnitChoice predict_unit(const RowStats&) const override {
    return {unit_, false};
  }
  [[nodiscard]] kernels::KernelId predict_kernel(const RowStats& stats,
                                                 index_t unit,
                                                 int bin_id) const override {
    return heuristic_.predict_kernel(stats, unit, bin_id);
  }

 private:
  index_t unit_;
  core::HeuristicPredictor heuristic_;
};

double plan_gflops(const CsrMatrix<float>& a, const core::Plan& plan,
                   std::span<const float> x) {
  const auto rt = core::Tuner(a).plan(plan).build();
  std::vector<float> y(static_cast<std::size_t>(a.rows()));
  return gflops(a.nnz(), time_spmv([&] { rt.run(x, std::span<float>(y)); }));
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto rows = static_cast<index_t>(cli.get_int("rows", 20000));
  const bool misbin = cli.get_bool("misbin", false);
  const auto misbin_unit =
      static_cast<index_t>(cli.get_int("misbin-unit", 50000));
  // The structural recovery walks the granularity grid, so it gets a
  // larger (still bounded) request budget by default.
  const int requests =
      static_cast<int>(cli.get_int("requests", misbin ? 1000 : 600));
  const double trial_fraction = cli.get_double("trial-fraction", 1.0);
  const double floor = cli.get_double("recovery-floor", 0.9);
  const bool check = cli.get_bool("check", false);
  const std::string store_path = "adapt_convergence_store.tmp.json";
  std::remove(store_path.c_str());

  // A long-tailed matrix: the bins genuinely want different kernels, so a
  // Serial-everywhere misprediction leaves real throughput on the table.
  auto a = std::make_shared<const CsrMatrix<float>>(
      gen::power_law<float>(rows, rows, 2.0, 300, 1));
  const auto x = random_x(static_cast<std::size_t>(a->cols()), 4242);

  std::printf("=== bench adapt_convergence (rows=%d, requests=%d, "
              "trial_fraction=%.2f%s) ===\n\n",
              rows, requests, trial_fraction,
              misbin ? ", mode=misbin" : "");

  // Oracle: exhaustive tuning, the throughput ceiling being recovered.
  core::ExhaustiveOptions topts;
  topts.measure = {.warmup = 1, .reps = 3, .max_total_s = 0.5};
  const auto tuned = core::exhaustive_tune(clsim::default_engine(), *a,
                                           std::span<const float>(x),
                                           core::default_pools(), topts);
  const double oracle_gf = plan_gflops(*a, tuned.best_plan, x);

  // Default mode mispredicts at the oracle's own granularity (recovery
  // target = the per-bin kernel choice). --misbin forces a wrong stage-1 U
  // instead (recovery target = the bin structure itself).
  MispredictPredictor kernel_mis(tuned.best_plan.unit);
  MisbinPredictor unit_mis(misbin_unit);
  const core::Predictor& mis =
      misbin ? static_cast<const core::Predictor&>(unit_mis) : kernel_mis;
  const auto mis_plan = core::Tuner(*a).predictor(mis).build().plan();
  const double mis_gf = plan_gflops(*a, mis_plan, x);

  // Serve `requests` requests from the mispredicted plan with online
  // adaptation writing through to the store.
  prof::RunProfile profile;
  profile.label = "adapt_convergence";
  serve::ServiceOptions opts;
  opts.workers = 1;
  opts.profile = &profile;
  adapt::AdaptOptions aopts;
  aopts.trial_fraction = trial_fraction;
  aopts.min_samples = 2;
  aopts.hysteresis = 1.05;
  // Cover every occupied bin: this bench measures full recovery, not the
  // hottest-subset steady-state configuration.
  aopts.hot_bins = static_cast<int>(mis_plan.bin_kernels.size());
  if (misbin) {
    // Second-level exploration is the whole point of this mode. Low
    // hysteresis/cooldown: the bench wants fast convergence within the
    // request budget; production defaults are more conservative.
    aopts.explore_units = true;
    aopts.unit_trial_fraction = 0.5;
    aopts.unit_min_samples = 2;
    aopts.unit_hysteresis = 1.05;
    aopts.unit_cooldown = 2;
    // After a U promotion the rebinned plan can have more bins than the
    // degenerate starting layout, so size the hot set for the recovered
    // plan, not the broken one.
    aopts.hot_bins = 8;
  }
  opts.adapt = aopts;
  adapt::PlanStore store(store_path);
  opts.plan_store = &store;
  {
    serve::SpmvService<float> service(mis, opts);
    for (int i = 0; i < requests; ++i) (void)service.run(a, x);
    service.shutdown();
  }

  // The refined plan is whatever the service flushed for this fingerprint.
  adapt::PlanStore reread(store_path);
  (void)reread.load();
  const auto stored = reread.lookup(serve::fingerprint_of(*a));
  const core::Plan refined = stored.has_value() ? stored->plan : mis_plan;
  const double refined_gf = plan_gflops(*a, refined, x);
  const double recovery = refined_gf / oracle_gf;

  std::printf("%-14s %10s %10s   %s\n", "plan", "GFLOP/s", "recovery",
              "detail");
  std::printf("%-14s %10.2f %9.0f%%   %s\n", "oracle", oracle_gf, 100.0,
              tuned.best_plan.to_string().c_str());
  std::printf("%-14s %10.2f %9.0f%%   %s\n", "mispredicted", mis_gf,
              100.0 * mis_gf / oracle_gf, mis_plan.to_string().c_str());
  std::printf("%-14s %10.2f %9.0f%%   %s\n", "refined", refined_gf,
              100.0 * recovery, refined.to_string().c_str());
  std::printf("\nadapt: %llu trials, %llu promotions, %.3f ms regret over "
              "%d requests\n",
              static_cast<unsigned long long>(profile.adapt.trials),
              static_cast<unsigned long long>(profile.adapt.promotions),
              1e3 * profile.adapt.regret_s, requests);
  if (misbin)
    std::printf("adapt U: %llu trials, %llu promotions; refined unit %d "
                "(started from %d, oracle %d)%s\n",
                static_cast<unsigned long long>(profile.adapt.u_trials),
                static_cast<unsigned long long>(profile.adapt.u_promotions),
                refined.unit, misbin_unit, tuned.best_plan.unit,
                refined.unit_tuned ? ", tuned-U provenance" : "");

  // Warm restart over the same store file.
  prof::RunProfile rprofile;
  {
    serve::ServiceOptions ropts;
    ropts.workers = 1;
    ropts.profile = &rprofile;
    adapt::PlanStore rstore(store_path);
    ropts.plan_store = &rstore;
    serve::SpmvService<float> restarted(mis, ropts);
    (void)restarted.run(a, x);
    restarted.shutdown();
  }
  std::printf("warm restart: %llu warm hit(s), %llu planning pass(es)\n",
              static_cast<unsigned long long>(rprofile.serve.cache_warm_hits),
              static_cast<unsigned long long>(
                  rprofile.serve.planning_passes));

  const std::string json_path = cli.get("json");
  if (!json_path.empty()) {
    prof::Json j = prof::Json::object();
    j.set("rows", static_cast<double>(rows));
    j.set("requests", static_cast<double>(requests));
    j.set("oracle_gflops", oracle_gf);
    j.set("mispredicted_gflops", mis_gf);
    j.set("refined_gflops", refined_gf);
    j.set("recovery", recovery);
    j.set("trials", static_cast<double>(profile.adapt.trials));
    j.set("promotions", static_cast<double>(profile.adapt.promotions));
    j.set("u_trials", static_cast<double>(profile.adapt.u_trials));
    j.set("u_promotions",
          static_cast<double>(profile.adapt.u_promotions));
    j.set("refined_unit", static_cast<double>(refined.unit));
    j.set("unit_tuned", refined.unit_tuned);
    j.set("warm_hits",
          static_cast<double>(rprofile.serve.cache_warm_hits));
    std::ofstream out(json_path);
    out << j.dump(2) << "\n";
    std::printf("summary written to %s\n", json_path.c_str());
  }
  std::remove(store_path.c_str());

  if (check) {
    bool ok = true;
    if (recovery < floor) {
      std::printf("FAIL: recovery %.0f%% below floor %.0f%%\n",
                  100.0 * recovery, 100.0 * floor);
      ok = false;
    }
    if (rprofile.serve.cache_warm_hits == 0 ||
        rprofile.serve.planning_passes != 0) {
      std::printf("FAIL: warm restart expected warm hits > 0 and planning "
                  "passes == 0\n");
      ok = false;
    }
    if (misbin) {
      if (profile.adapt.u_trials == 0) {
        std::printf("FAIL: no U trials ran in --misbin mode\n");
        ok = false;
      }
      if (!stored.has_value() || stored->plan.unit == misbin_unit ||
          !stored->plan.unit_tuned) {
        std::printf("FAIL: store still serves the mispredicted unit %d "
                    "(expected a tuned-U promotion)\n",
                    misbin_unit);
        ok = false;
      }
    }
    if (!ok) return 1;
    std::printf("OK: refined plan recovers %.0f%% of oracle; warm restart "
                "verified%s\n",
                100.0 * recovery,
                misbin ? "; corrected U persisted" : "");
  }
  return 0;
}

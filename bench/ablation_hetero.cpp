// Ablation (paper §VI future work): heterogeneous bin scheduling — long-row
// bins on the latency-oriented (CPU) executor, short-row bins on the
// throughput-oriented (work-group) engine — against the homogeneous
// auto-tuned plan, across the threshold sweep.
#include <cstdio>

#include "bench_common.hpp"
#include "core/hetero.hpp"

using namespace spmv;
using namespace spmv::bench;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto rows = static_cast<index_t>(cli.get_int("rows", 300000));

  struct Input {
    const char* name;
    CsrMatrix<float> a;
  };
  Input inputs[] = {
      {"mixed-regime",
       gen::mixed_regime<float>(rows, rows, 0.4, 0.35, 3, 40, 400, 100, 41)},
      {"long-row FEM", gen::fem_blocks<float>(rows / 8, 32, 180, 0.3, 42)},
      {"short-row graph", gen::fixed_degree<float>(rows, rows, 4, 43)},
  };

  std::printf("=== bench ablation_hetero (rows=%d) ===\n\n", rows);
  std::printf("(execution time [ms]; hetero@T = long-row bins with binId >= "
              "T on the CPU executor)\n\n");
  std::printf("%-18s %12s %12s %12s %12s %14s\n", "input", "homog.",
              "hetero@16", "hetero@48", "hetero@96", "best split");
  rule(86);

  core::HeuristicPredictor pred;
  for (auto& in : inputs) {
    const auto x = random_x(static_cast<std::size_t>(in.a.cols()));
    std::vector<float> y(static_cast<std::size_t>(in.a.rows()));

    const auto homog = core::Tuner(in.a).predictor(pred).build();
    const double t_homog =
        time_spmv([&] { homog.run(std::span<const float>(x), std::span<float>(y)); });

    double best = t_homog;
    const char* best_label = "homogeneous";
    double t_at[3] = {0, 0, 0};
    const int thresholds[3] = {16, 48, 96};
    const char* labels[3] = {"hetero@16", "hetero@48", "hetero@96"};
    for (int k = 0; k < 3; ++k) {
      core::HeteroOptions opts;
      opts.gpu_row_threshold = thresholds[k];
      core::HeteroAutoSpmv<float> hetero(in.a, pred, opts);
      t_at[k] = time_spmv(
          [&] { hetero.run(std::span<const float>(x), std::span<float>(y)); });
      if (t_at[k] < best) {
        best = t_at[k];
        best_label = labels[k];
      }
    }
    std::printf("%-18s %12.3f %12.3f %12.3f %12.3f %14s\n", in.name,
                1e3 * t_homog, 1e3 * t_at[0], 1e3 * t_at[1], 1e3 * t_at[2],
                best_label);
  }
  rule(86);
  std::printf(
      "expected shape: long-row inputs benefit from the latency executor; "
      "short-row inputs are\nindifferent (no bins cross the threshold) — "
      "the paper's §VI scheduling hypothesis.\n");
  return 0;
}

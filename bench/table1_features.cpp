// Table I reproduction: the extracted feature parameters for each
// representative matrix — the attribute vector the two-stage model
// consumes ({M, N, NNZ, Var_NNZ, Avg_NNZ, Min_NNZ, Max_NNZ}).
#include <cstdio>

#include "bench_common.hpp"

using namespace spmv;
using namespace spmv::bench;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const double extra_scale = cli.get_double("scale", 1.0);

  std::printf("=== bench table1_features (scale=%.3f) ===\n\n", extra_scale);
  std::printf("%-16s %10s %10s %12s %12s %9s %8s %8s\n", "matrix", "M", "N",
              "NNZ", "Var_NNZ", "Avg_NNZ", "Min_NNZ", "Max_NNZ");
  rule(92);

  for (const auto& base_info : gen::representative_catalogue()) {
    auto info = base_info;
    info.scale *= extra_scale;
    const auto a = gen::make_representative<float>(info);
    const auto stats = compute_row_stats(a);
    const auto f = ml::stage1_features(stats);
    std::printf("%-16s %10.0f %10.0f %12.0f %12.1f %9.2f %8.0f %8.0f\n",
                info.name.c_str(), f[0], f[1], f[2], f[3], f[4], f[5], f[6]);
  }
  rule(92);
  std::printf("attribute order matches Table I: %s", "");
  for (const auto& name : ml::stage1_attr_names()) std::printf(" %s", name.c_str());
  std::printf("\n");
  return 0;
}

// Figure 5 reproduction: histogram of non-zeros per row across the
// (synthetic) UF-like collection. The paper reports, over 2760 UF
// matrices, that ~98.7% of all rows have <= 100 non-zeros — the statistic
// motivating the framework's focus on sub-work-group kernels.
#include <cstdio>

#include "bench_common.hpp"

using namespace spmv;
using namespace spmv::bench;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  gen::CorpusOptions opts;
  opts.count = static_cast<int>(cli.get_int("matrices", 2760));
  opts.min_rows = static_cast<index_t>(cli.get_int("min-rows", 1000));
  opts.max_rows = static_cast<index_t>(cli.get_int("max-rows", 20000));
  opts.seed = static_cast<std::uint64_t>(cli.get_int("seed", 2017));

  std::printf("=== bench fig5_row_histogram (%d corpus matrices) ===\n\n",
              opts.count);

  // The paper's figure buckets row lengths at decade-ish edges; boundaries
  // sit at k+1 so each bucket is the inclusive range [lo, hi].
  util::Histogram hist({0, 1, 2, 5, 10, 20, 50, 101, 201, 501, 1001});
  util::RunningStats avg_stats;
  const auto specs = gen::sample_corpus(opts);
  for (const auto& spec : specs) {
    const auto a = gen::make_corpus_matrix<float>(spec);
    accumulate_row_histogram(a, hist);
    avg_stats.add(compute_row_stats(a).avg_nnz);
  }

  std::printf("%-18s %14s %10s %10s\n", "NNZ-per-row bucket", "rows",
              "fraction", "cum.");
  rule(56);
  double cum = 0.0;
  const auto& edges = hist.edges();
  for (std::size_t i = 0; i < hist.bucket_count(); ++i) {
    char label[32];
    if (i + 1 < edges.size()) {
      std::snprintf(label, sizeof label, "%llu..%llu",
                    static_cast<unsigned long long>(edges[i]),
                    static_cast<unsigned long long>(edges[i + 1] - 1));
    } else {
      std::snprintf(label, sizeof label, ">= %llu",
                    static_cast<unsigned long long>(edges[i]));
    }
    const double frac =
        static_cast<double>(hist.bucket(i)) / static_cast<double>(hist.total());
    cum += frac;
    std::printf("%-18s %14llu %9.2f%% %9.2f%%\n", label,
                static_cast<unsigned long long>(hist.bucket(i)), 100.0 * frac,
                100.0 * cum);
  }
  rule(56);
  std::printf("total rows: %llu over %zu matrices (mean Avg_NNZ %.1f)\n",
              static_cast<unsigned long long>(hist.total()), specs.size(),
              avg_stats.mean());
  std::printf("\nheadline statistic (paper: ~98.7%% of rows <= 100 NNZ):\n");
  std::printf("  measured: %.2f%% of rows have <= 100 non-zeros\n",
              100.0 * hist.fraction_below(101));
  return 0;
}

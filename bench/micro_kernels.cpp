// Google-benchmark microbenchmarks of the individual SpMV kernels across
// row-length regimes — the raw per-kernel throughput data underlying the
// Figure-2/6 comparisons, with bytes/items counters for roofline analysis.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

using namespace spmv;

namespace {

/// Execution backend for the pool-kernel benchmarks, selected by the
/// `--backend clsim|native` flag (stripped before google-benchmark sees
/// the argv — it rejects flags it does not know). Defaults to clsim.
std::shared_ptr<const exec::Backend> g_backend =
    exec::shared_backend(exec::BackendKind::Clsim);

struct Fixture {
  CsrMatrix<float> a;
  std::vector<float> x;
  std::vector<float> y;
};

Fixture build_fixture(int regime) {
  constexpr index_t kRows = 100000;
  CsrMatrix<float> a = [&] {
    switch (regime) {
      case 0: return gen::fixed_degree<float>(kRows, kRows, 3, 7);  // short
      case 1:
        return gen::random_uniform<float>(kRows, kRows, 30.0, 0.2, 10, 60,
                                          8);  // medium
      default:
        return gen::fem_blocks<float>(kRows / 8, 32, 200, 0.2, 9);  // long
    }
  }();
  util::Xoshiro256 rng(1);
  std::vector<float> x(static_cast<std::size_t>(a.cols()));
  for (auto& v : x) v = static_cast<float>(rng.uniform(0.5, 1.5));
  std::vector<float> y(static_cast<std::size_t>(a.rows()));
  return {std::move(a), std::move(x), std::move(y)};
}

/// Fixtures are shared across benchmark registrations (generation is much
/// slower than one benchmark repetition).
Fixture& make_fixture(int regime) {
  static Fixture fixtures[3] = {build_fixture(0), build_fixture(1),
                                build_fixture(2)};
  return fixtures[regime];
}

const char* regime_name(int regime) {
  return regime == 0 ? "short3" : regime == 1 ? "medium30" : "long200";
}

void bench_pool_kernel(benchmark::State& state) {
  const auto id = static_cast<kernels::KernelId>(state.range(0));
  auto fixture = make_fixture(static_cast<int>(state.range(1)));
  for (auto _ : state) {
    g_backend->run_full(id, fixture.a, std::span<const float>(fixture.x),
                        std::span<float>(fixture.y));
    benchmark::DoNotOptimize(fixture.y.data());
  }
  state.SetItemsProcessed(state.iterations() * fixture.a.nnz());
  state.SetBytesProcessed(state.iterations() * fixture.a.nnz() *
                          (sizeof(float) + sizeof(index_t)));
  state.SetLabel(kernels::kernel_name(id) + "/" +
                 regime_name(static_cast<int>(state.range(1))));
}

void bench_csr_adaptive(benchmark::State& state) {
  auto fixture = make_fixture(static_cast<int>(state.range(0)));
  baseline::CsrAdaptive<float> adaptive(fixture.a, clsim::default_engine());
  for (auto _ : state) {
    adaptive.run(std::span<const float>(fixture.x),
                 std::span<float>(fixture.y));
    benchmark::DoNotOptimize(fixture.y.data());
  }
  state.SetItemsProcessed(state.iterations() * fixture.a.nnz());
  state.SetLabel(std::string("csr-adaptive/") +
                 regime_name(static_cast<int>(state.range(0))));
}

void bench_merge(benchmark::State& state) {
  auto fixture = make_fixture(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    baseline::spmv_merge(fixture.a, std::span<const float>(fixture.x),
                         std::span<float>(fixture.y));
    benchmark::DoNotOptimize(fixture.y.data());
  }
  state.SetItemsProcessed(state.iterations() * fixture.a.nnz());
  state.SetLabel(std::string("merge/") +
                 regime_name(static_cast<int>(state.range(0))));
}

void bench_binning(benchmark::State& state) {
  const auto unit = static_cast<index_t>(state.range(0));
  auto fixture = make_fixture(1);
  for (auto _ : state) {
    auto bins = binning::bin_matrix(fixture.a, unit);
    benchmark::DoNotOptimize(bins.bin_count());
  }
  state.SetItemsProcessed(state.iterations() * fixture.a.rows());
  state.SetLabel("bin_matrix/U" + std::to_string(unit));
}

}  // namespace

BENCHMARK(bench_pool_kernel)
    ->ArgsProduct({{0, 1, 2, 3, 4, 5, 6, 7, 8}, {0, 1, 2}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(bench_csr_adaptive)->DenseRange(0, 2)->Unit(benchmark::kMillisecond);
BENCHMARK(bench_merge)->DenseRange(0, 2)->Unit(benchmark::kMillisecond);
BENCHMARK(bench_binning)
    ->Arg(1)
    ->Arg(10)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  // Peel off --backend before google-benchmark parses the rest of the
  // command line (it rejects flags it does not know).
  g_backend = bench::strip_backend_flag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

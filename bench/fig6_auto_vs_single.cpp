// Figure 6 reproduction: kernel-auto vs the single-kernel defaults
// (kernel-serial, kernel-vector) over the 16 Table-II matrices.
//
// The paper reports execution time normalized to kernel-auto: speedups of
// 1.7x-11.9x over kernel-serial and 1.2x-52.0x over kernel-vector, with
// kernel-serial usually the stronger single kernel (most matrices are
// short-row) but kernel-vector winning on 5 long-row matrices.
//
// "kernel-auto" here is the exhaustively tuned plan (the oracle the
// paper's C5.0 model approximates; run bench/train_accuracy for the model
// itself, or pass --model=<file> to use a trained model's predictions).
#include <cstdio>

#include "bench_common.hpp"

using namespace spmv;
using namespace spmv::bench;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const double extra_scale = cli.get_double("scale", 1.0);
  const auto pools = bench_pools(cli.get_bool("full-pool", false));
  const auto backend = exec::shared_backend(backend_from_cli(cli));
  const std::string model_path = cli.get("model");

  // --profile=<path> records every (matrix, strategy) measurement as a
  // candidate-cost entry and writes the JSON artifact at the end.
  prof::RunProfile profile;
  profile.label = "fig6_auto_vs_single";
  prof::RunProfile* prof_ptr = cli.has("profile") ? &profile : nullptr;

  std::unique_ptr<core::ModelPredictor> model_pred;
  if (!model_path.empty()) {
    model_pred = std::make_unique<core::ModelPredictor>(
        core::load_model_file(model_path));
  }

  std::printf("=== bench fig6_auto_vs_single (scale=%.3f, auto=%s, "
              "backend=%s) ===\n\n",
              extra_scale, model_pred ? "trained model" : "oracle",
              exec::backend_cname(backend->kind()));
  std::printf("%-16s %12s %12s %12s %14s %14s   %s\n", "matrix", "auto[ms]",
              "serial[ms]", "vector[ms]", "serial/auto", "vector/auto",
              "auto plan");
  rule(120);

  std::vector<double> serial_speedups, vector_speedups;
  for (const auto& base_info : gen::representative_catalogue()) {
    auto info = base_info;
    info.scale *= extra_scale;
    const auto a = gen::make_representative<float>(info);
    const auto x = random_x(static_cast<std::size_t>(a.cols()));
    std::vector<float> y(static_cast<std::size_t>(a.rows()));

    // kernel-auto.
    core::Plan plan;
    if (model_pred) {
      const auto spmv = core::Tuner(a)
                            .predictor(*model_pred)
                            .backend(backend->kind())
                            .build();
      plan = spmv.plan();
    } else {
      plan = oracle_plan(a, x, pools, *backend);
    }
    const auto bins = core::bins_for_plan(a, plan);
    const double t_auto = time_strategy(prof_ptr, info.name + "/auto", [&] {
      core::execute_plan(*backend, a, std::span<const float>(x),
                         std::span<float>(y), bins, plan);
    });

    // The two single-kernel defaults.
    const double t_serial =
        time_strategy(prof_ptr, info.name + "/serial", [&] {
          backend->run_full(kernels::KernelId::Serial, a,
                            std::span<const float>(x), std::span<float>(y));
        });
    const double t_vector =
        time_strategy(prof_ptr, info.name + "/vector", [&] {
          backend->run_full(kernels::KernelId::Vector, a,
                            std::span<const float>(x), std::span<float>(y));
        });

    serial_speedups.push_back(t_serial / t_auto);
    vector_speedups.push_back(t_vector / t_auto);
    std::printf("%-16s %12.3f %12.3f %12.3f %13.2fx %13.2fx   %s\n",
                info.name.c_str(), 1e3 * t_auto, 1e3 * t_serial,
                1e3 * t_vector, t_serial / t_auto, t_vector / t_auto,
                plan.to_string().c_str());
  }

  rule(120);
  auto mm = [](const std::vector<double>& v) {
    return std::pair(*std::min_element(v.begin(), v.end()),
                     *std::max_element(v.begin(), v.end()));
  };
  const auto [s_lo, s_hi] = mm(serial_speedups);
  const auto [v_lo, v_hi] = mm(vector_speedups);
  std::printf(
      "speedup of kernel-auto:  over kernel-serial %.1fx..%.1fx (geomean "
      "%.1fx; paper 1.7x..11.9x)\n",
      s_lo, s_hi, util::geometric_mean(serial_speedups));
  std::printf(
      "                         over kernel-vector %.1fx..%.1fx (geomean "
      "%.1fx; paper 1.2x..52.0x)\n",
      v_lo, v_hi, util::geometric_mean(vector_speedups));
  int vector_wins = 0;
  for (std::size_t i = 0; i < serial_speedups.size(); ++i) {
    if (vector_speedups[i] < serial_speedups[i]) ++vector_wins;
  }
  std::printf(
      "matrices where kernel-vector beats kernel-serial: %d of 16 (paper: "
      "5)\n",
      vector_wins);
  write_profile(cli, profile);
  return 0;
}

// bench spmm_bench — the true-SpMM acceptance number: Y = A·X through the
// blocked one-traversal kernels (core::execute_plan_spmm) against the
// per-column fallback (`width` single-vector runs of the same plan), across
// the block widths solver loops actually use. The blocked path reads each
// row's (val, col) stream once per register tile instead of once per
// column, so the speedup is the measure of how far the memory-bound
// ceiling lifts for iterative workloads.
//
//   spmm_bench [--rows N] [--half-band B] [--backend clsim|native]
//              [--format csr|auto] [--check] [--speedup-floor 1.5]
//              [--json out.json]
//
// --check turns the acceptance criterion into the exit code: on a backend
// with native blocked kernels (supports_spmm()), blocked GFLOP/s must be
// >= speedup-floor x the per-column GFLOP/s at every width >= 8. Widths
// below 8 are reported but not gated — a 1-wide "block" is the same
// traversal either way. --json writes the machine-readable summary
// (config + per-width scalars) CI uploads.
#include <cstdio>
#include <fstream>
#include <vector>

#include "bench_common.hpp"

using namespace spmv;
using namespace spmv::bench;

namespace {

struct WidthResult {
  int width = 0;
  double percol_gf = 0.0;
  double blocked_gf = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto rows = static_cast<index_t>(cli.get_int("rows", 150000));
  const auto half_band = static_cast<index_t>(cli.get_int("half-band", 32));
  const auto backend =
      exec::shared_backend(exec::backend_from_name(cli.get("backend",
                                                           "native")));
  const auto format = format_from_cli(cli);
  const bool check = cli.get_bool("check", false);
  const double floor = cli.get_double("speedup-floor", 1.5);

  // Banded (FEM/stencil) corpus: the solver-loop regime blocked SpMM is
  // built for. A streams from memory once per column block instead of once
  // per column, while every column's x window slides with the band and
  // stays cache-resident — the A-traversal saving is the whole measurement.
  // (On a random-column matrix with a tall X the gathered working set is
  // width * cols and the per-column fallback's prefetched re-streams win
  // instead; that regime is why run_spmm is plan-gated, not a default.)
  const auto a = gen::banded<float>(rows, half_band, 1.0, 2);
  const core::HeuristicPredictor pred;
  const auto rt = core::Tuner(a)
                      .predictor(pred)
                      .backend(*backend)
                      .formats(format)
                      .format_policy({.min_reuse = 0, .eager = true})
                      .build();
  const auto n = static_cast<std::size_t>(a.cols());
  const auto m = static_cast<std::size_t>(a.rows());

  std::printf("=== bench spmm_bench (rows=%d, half_band=%d, nnz=%lld, "
              "backend=%s, format=%s) ===\n",
              rows, half_band, static_cast<long long>(a.nnz()),
              exec::backend_cname(backend->kind()),
              fmt::format_mode_cname(format));
  std::printf("plan: %s\n\n", rt.plan().to_string().c_str());

  std::vector<WidthResult> results;
  std::printf("%6s %14s %14s %9s\n", "width", "percol[GF/s]",
              "blocked[GF/s]", "speedup");
  for (const int width : {1, 8, 32, 64}) {
    const auto w = static_cast<std::size_t>(width);
    std::vector<float> xb(n * w);
    for (std::size_t c = 0; c < w; ++c) {
      const auto col = random_x(n, 4242 + c);
      std::copy(col.begin(), col.end(), xb.begin() + c * n);
    }
    std::vector<float> yb(m * w);
    // 2*nnz flops per column either way; only the traversal count differs.
    const double flops_gf = 2.0 * static_cast<double>(a.nnz()) *
                            static_cast<double>(width) * 1e-9;
    const double percol_s = time_spmv([&] {
      for (std::size_t c = 0; c < w; ++c)
        rt.run(std::span<const float>(xb).subspan(c * n, n),
               std::span<float>(yb).subspan(c * m, m));
    });
    const double blocked_s = time_spmv([&] {
      rt.run_spmm(std::span<const float>(xb), std::span<float>(yb), width);
    });
    const WidthResult r{width, flops_gf / percol_s, flops_gf / blocked_s};
    results.push_back(r);
    std::printf("%6d %14.2f %14.2f %8.2fx\n", r.width, r.percol_gf,
                r.blocked_gf, r.blocked_gf / r.percol_gf);
  }

  const std::string json_path = cli.get("json");
  if (!json_path.empty()) {
    auto config = prof::Json::object();
    config.set("rows", static_cast<std::int64_t>(rows));
    config.set("half_band", static_cast<std::int64_t>(half_band));
    config.set("backend", exec::backend_name(backend->kind()));
    config.set("format", std::string(fmt::format_mode_cname(format)));
    auto root = prof::Json::object();
    root.set("bench", "spmm_bench");
    root.set("config", std::move(config));
    root.set("nnz", static_cast<std::int64_t>(a.nnz()));
    for (const auto& r : results) {
      const std::string tag = "w" + std::to_string(r.width);
      root.set(tag + "_percol_gflops", r.percol_gf);
      root.set(tag + "_blocked_gflops", r.blocked_gf);
      root.set(tag + "_speedup", r.blocked_gf / r.percol_gf);
    }
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    out << root.dump() << "\n";
    std::printf("bench summary written to %s\n", json_path.c_str());
  }

  if (!check) return 0;
  if (!backend->supports_spmm()) {
    std::printf("OK: %s has no blocked SpMM (per-column fallback); "
                "speedup gate skipped\n",
                exec::backend_cname(backend->kind()));
    return 0;
  }
  bool ok = true;
  for (const auto& r : results) {
    if (r.width < 8) continue;
    if (r.blocked_gf < floor * r.percol_gf) {
      std::printf("FAIL: width %d blocked %.2f GF/s below %.2f x "
                  "per-column %.2f GF/s\n",
                  r.width, r.blocked_gf, floor, r.percol_gf);
      ok = false;
    }
  }
  if (!ok) return 1;
  std::printf("OK: blocked SpMM >= %.2fx per-column at every width >= 8\n",
              floor);
  return 0;
}

// Figure 9 reproduction: the single-bin strategy on the six matrices where
// CSR-Adaptive beat kernel-auto in Figure 7.
//
// The paper puts all rows into one bin, manually sweeps the kernel, and
// finds that four of the six matrices then reach or beat the CSR-Adaptive
// line (the horizontal dashed line in the figure) — the motivation for the
// single-bin extension in the candidate pool.
#include <cstdio>

#include "bench_common.hpp"

using namespace spmv;
using namespace spmv::bench;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const double extra_scale = cli.get_double("scale", 1.0);
  const auto backend = exec::shared_backend(backend_from_cli(cli));

  // The six Figure-9 matrices.
  const std::vector<std::string> names = {"crankseg_2",   "D6-6",
                                          "dictionary28", "europe_osm",
                                          "Ga3As3H12",    "roadNet-CA"};

  std::printf("=== bench fig9_single_bin (scale=%.3f, backend=%s) ===\n\n",
              extra_scale, exec::backend_cname(backend->kind()));
  std::printf(
      "(execution time normalized to CSR-Adaptive = 1.00; <1.00 beats the "
      "dashed line)\n\n");
  std::printf("%-14s", "matrix");
  for (auto id : kernels::all_kernels())
    std::printf("%13s", kernels::kernel_name(id).c_str());
  std::printf("%13s\n", "best");
  rule(14 + 13 * (kernels::kKernelCount + 1));

  int reach_or_beat = 0;
  for (const auto& name : names) {
    auto info = *std::find_if(gen::representative_catalogue().begin(),
                              gen::representative_catalogue().end(),
                              [&](const auto& i) { return i.name == name; });
    info.scale *= extra_scale;
    const auto a = gen::make_representative<float>(info);
    const auto x = random_x(static_cast<std::size_t>(a.cols()));
    std::vector<float> y(static_cast<std::size_t>(a.rows()));

    baseline::CsrAdaptive<float> adaptive(a, clsim::default_engine());
    const double t_adaptive = time_spmv(
        [&] { adaptive.run(std::span<const float>(x), std::span<float>(y)); });

    std::printf("%-14s", name.c_str());
    double best = std::numeric_limits<double>::infinity();
    for (auto id : kernels::all_kernels()) {
      const double t = time_spmv([&] {
        backend->run_full(id, a, std::span<const float>(x),
                          std::span<float>(y));
      });
      best = std::min(best, t);
      std::printf("%13.2f", t / t_adaptive);
    }
    std::printf("%13.2f\n", best / t_adaptive);
    if (best <= t_adaptive * 1.02) ++reach_or_beat;
  }

  rule(14 + 13 * (kernels::kKernelCount + 1));
  std::printf(
      "single-bin best kernel reaches/beats CSR-Adaptive on %d of 6 "
      "matrices (paper: 4 of 6)\n",
      reach_or_beat);
  return 0;
}

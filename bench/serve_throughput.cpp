// bench serve_throughput — the serving-layer headline number: requests/sec
// of the plan-cached, multi-vector-batched SpmvService vs naive per-request
// plan-and-run (what a client without the serving layer would do: build an
// AutoSpmv for its matrix, run once, throw it away). Same client count on
// both sides; the service additionally amortizes planning through the
// PlanCache and CSR traversals through batching.
//
// Each side is measured --reps times and the best wall is reported (the
// usual defence against scheduler noise on loaded hosts).
//
//   serve_throughput [--rows N] [--requests R] [--clients C] [--workers W]
//                    [--max-batch B] [--reps K] [--backend clsim|native]
//                    [--format csr|auto] [--short-rows] [--profile out.json]
//                    [--json BENCH_serve.json] [--metrics-out metrics.txt]
//                    [--obs-dir dir]
//
// --backend selects the execution backend every plan is stamped with
// (exec/backend.hpp); --format auto lets the fmt estimator stamp per-bin
// physical layouts onto fresh plans (effective on format-capable backends
// only — see src/fmt/); --short-rows swaps the workload to short-row-only
// matrices (fixed degree 6 / narrow band), the profile where the native
// backend's thin OpenMP loops beat the simulated work-group engine by the
// widest margin. --json writes a compact machine-readable summary (config,
// backend, format, naive/serve requests-per-second and GFLOP/s, speedup,
// request-latency percentiles) for CI artifact upload — the CI job runs it
// once per backend (and, on native, once per format mode) and uploads the
// set for comparison — alongside the full --profile RunProfile.
// --metrics-out writes the Prometheus exposition (latency histograms carry
// exemplars); --obs-dir streams spans/stats into rotating JSONL segments
// (spmv::obs) while the bench runs — either flag turns tracing on so the
// exemplars and segments have spans to point at.
//
// Sharded mode (--shards K and/or --tenants T): instead of many matrices
// through SpmvService, ONE large mixed-regime matrix is served row-
// partitioned through spmv::shard::ShardedService — K shards each with its
// own plan and engine slice, tenant-weighted fair admission in front. The
// bench measures K=1 and K=shards back to back and reports the shard
// speedup, per-shard GFLOP/s, and per-tenant latency percentiles plus
// queue-full rejections; --json gains config.shards/config.tenants, scalar
// shard_speedup/sharded_rps, and per_shard/per_tenant arrays.
//
//   serve_throughput --shards 4 [--tenants 3] [--tenant-weights 4,1,1]
//                    [--tenant-share 15,1] [--queue-policy fair|fifo]
//                    [--queue-high-water N] [--long-deg D]
//                    [--workers W(per shard)] [--dispatch-window W] ...
//
// --tenant-share skews the OFFERED load (how many of the requests each
// tenant submits, weighted-round-robin interleaved); --tenant-weights sets
// the admission weights the fair queue SERVES by. A skewed share with equal
// weights is the fairness demo: under fifo the light tenant's p99 hides
// behind the heavy backlog, under fair it stays near its solo latency.
//
// --dispatch-window 0 (default) keeps the service's small window so the
// backlog waits in the fair queue where DRR ordering applies; deepen it on
// multicore hosts so shards stream consecutive requests through their
// cache-resident matrix slices.
#include <atomic>
#include <cmath>
#include <fstream>
#include <future>
#include <limits>
#include <memory>
#include <sstream>
#include <thread>

#include "bench_common.hpp"

using namespace spmv;
using namespace spmv::bench;

namespace {

/// Run `fn(request_index)` from `clients` threads until `count` requests
/// are claimed; returns wall seconds.
double run_clients(int clients, int count,
                   const std::function<void(int)>& fn) {
  std::atomic<int> next{0};
  util::Timer wall;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      for (;;) {
        const int i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        fn(i);
      }
    });
  }
  for (auto& t : threads) t.join();
  return wall.elapsed_s();
}

/// --shards mode: one ≥1M-nnz-capable mixed-regime matrix served through
/// spmv::shard::ShardedService; measures K=1 vs K=shards and the tenant
/// roster's fairness counters. See the header comment for the flags.
int run_sharded(const util::Cli& cli) {
  const auto rows = static_cast<index_t>(cli.get_int("rows", 30000));
  const int requests = static_cast<int>(cli.get_int("requests", 96));
  const int clients = static_cast<int>(cli.get_int("clients", 4));
  const int shards = std::max(1, static_cast<int>(cli.get_int("shards", 4)));
  const int tenants = std::max(1, static_cast<int>(cli.get_int("tenants", 1)));
  const int workers = std::max(1, static_cast<int>(cli.get_int("workers", 1)));
  const int reps = static_cast<int>(cli.get_int("reps", 3));
  const auto long_deg = static_cast<index_t>(cli.get_int("long-deg", 300));
  // 0 = the service's small default (backlog stays in the fair queue).
  // Deepen it on multicore hosts to let shards stream consecutive requests
  // through their cache-resident matrix slices.
  const auto dispatch_window =
      static_cast<std::size_t>(cli.get_int("dispatch-window", 0));
  const auto high_water = static_cast<std::size_t>(
      cli.get_int("queue-high-water", 2 * requests + 16));
  const exec::BackendKind backend = backend_from_cli(cli);
  const fmt::FormatMode format = format_from_cli(cli);
  const shard::QueuePolicy policy =
      shard::queue_policy_from_name(cli.get("queue-policy", "fair"));
  const std::string metrics_path = cli.get("metrics-out");
  const std::string obs_dir = cli.get("obs-dir");

  // Tenant roster tenant0..tenantT-1; --tenant-weights is CSV, missing
  // entries default to weight 1.
  std::vector<shard::TenantSpec> specs;
  {
    std::vector<double> weights;
    std::istringstream ws(cli.get("tenant-weights"));
    for (std::string tok; std::getline(ws, tok, ',');)
      if (!tok.empty()) weights.push_back(std::stod(tok));
    for (int t = 0; t < tenants; ++t) {
      shard::TenantSpec spec;
      spec.name = "tenant" + std::to_string(t);
      if (static_cast<std::size_t>(t) < weights.size())
        spec.weight = weights[static_cast<std::size_t>(t)];
      specs.push_back(std::move(spec));
    }
  }

  if (!metrics_path.empty() || !obs_dir.empty()) trace::start();
  std::unique_ptr<obs::StreamingSink> sink;
  if (!obs_dir.empty()) {
    obs::SinkOptions sopts;
    sopts.directory = obs_dir;
    // One producer ring per shard partition plus ring 0 for everyone else.
    sopts.producer_groups = static_cast<std::size_t>(shards) + 1;
    sink = std::make_unique<obs::StreamingSink>(sopts);
    sink->attach();
  }

  const auto mat = std::make_shared<const CsrMatrix<float>>(
      gen::mixed_regime<float>(rows, rows, 0.6, 0.32, 4, 30, long_deg, 64, 7));

  std::printf("=== bench serve_throughput --shards (rows=%d, nnz=%lld, "
              "requests=%d, clients=%d, shards=%d, tenants=%d, "
              "workers/shard=%d, backend=%s, format=%s, policy=%s) ===\n\n",
              rows, static_cast<long long>(mat->nnz()), requests, clients,
              shards, tenants, workers, exec::backend_cname(backend),
              fmt::format_mode_cname(format), shard::queue_policy_name(policy));

  std::vector<std::vector<float>> req_x;
  for (int i = 0; i < requests; ++i)
    req_x.push_back(random_x(static_cast<std::size_t>(mat->cols()),
                             static_cast<std::uint64_t>(1000 + i)));

  // Offered-load mix: request i belongs to req_tenant[i]. Default is a
  // uniform round-robin; --tenant-share CSV interleaves proportionally
  // (weighted round-robin, so a 15,1 split still spreads the light
  // tenant's requests across the whole stream).
  std::vector<std::size_t> req_tenant(static_cast<std::size_t>(requests));
  {
    std::vector<double> shares;
    std::istringstream ss(cli.get("tenant-share"));
    for (std::string tok; std::getline(ss, tok, ',');)
      if (!tok.empty()) shares.push_back(std::max(0.0, std::stod(tok)));
    shares.resize(static_cast<std::size_t>(tenants), 1.0);
    double total = 0.0;
    for (double s : shares) total += s;
    if (total <= 0.0) {
      shares.assign(static_cast<std::size_t>(tenants), 1.0);
      total = static_cast<double>(tenants);
    }
    std::vector<double> deficit(static_cast<std::size_t>(tenants), 0.0);
    for (int i = 0; i < requests; ++i) {
      std::size_t pick = 0;
      for (std::size_t t = 0; t < deficit.size(); ++t) {
        deficit[t] += shares[t];
        if (deficit[t] > deficit[pick]) pick = t;
      }
      deficit[pick] -= total;
      req_tenant[static_cast<std::size_t>(i)] = pick;
    }
  }

  core::HeuristicPredictor pred;

  auto make_opts = [&](int k) {
    shard::ShardedOptions sopts;
    sopts.partition.shards = k;
    sopts.tenants = specs;
    sopts.queue_policy = policy;
    sopts.queue_high_water = high_water;
    sopts.dispatch_window = dispatch_window;
    sopts.workers_per_shard = workers;
    sopts.backend = backend;
    sopts.format = format;
    return sopts;
  };

  // Correctness gate (off-clock): sharded scatter-gather and unsharded
  // results must both track the double-precision reference.
  {
    const std::vector<double> exact =
        kernels::spmv_exact(*mat, std::span<const float>(req_x[0]));
    shard::ShardedService<float> many(mat, pred, make_opts(shards));
    const std::vector<float> y_many = many.run(specs[0].name, req_x[0]);
    many.shutdown();
    shard::ShardedService<float> one(mat, pred, make_opts(1));
    const std::vector<float> y_one = one.run(specs[0].name, req_x[0]);
    one.shutdown();
    double err_many = 0.0;
    double err_one = 0.0;
    for (std::size_t i = 0; i < exact.size(); ++i) {
      const double scale = std::max(1.0, std::abs(exact[i]));
      err_many = std::max(
          err_many, std::abs(static_cast<double>(y_many[i]) - exact[i]) / scale);
      err_one = std::max(
          err_one, std::abs(static_cast<double>(y_one[i]) - exact[i]) / scale);
    }
    std::printf("correctness: max rel err vs reference — sharded %.2e, "
                "unsharded %.2e\n\n", err_many, err_one);
    if (err_many > 1e-3 || err_one > 1e-3) {
      std::fprintf(stderr, "FAIL: serving result diverges from reference\n");
      return 1;
    }
  }

  prof::ServeStats stats;  // best recorded (K=shards) rep
  int accepted_best = requests;

  // Best-of-reps wall for a K-shard service over the full request stream.
  // `record` keeps the best rep's stats/shard infos and streams to the sink.
  auto measure = [&](int k, bool record) {
    double best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < reps; ++rep) {
      shard::ShardedOptions sopts = make_opts(k);
      sopts.obs_sink = record ? sink.get() : nullptr;
      shard::ShardedService<float> service(mat, pred, sopts);
      // Planning happened at construction; one request settles the
      // pipeline off-clock.
      (void)service.run(specs[0].name, req_x[0]);
      std::vector<std::future<std::vector<float>>> futs(
          static_cast<std::size_t>(requests));
      std::vector<char> ok(static_cast<std::size_t>(requests), 0);
      util::Timer wall;
      run_clients(clients, requests, [&](int i) {
        try {
          futs[static_cast<std::size_t>(i)] = service.submit(
              specs[req_tenant[static_cast<std::size_t>(i)]].name,
              req_x[static_cast<std::size_t>(i)]);
          ok[static_cast<std::size_t>(i)] = 1;
        } catch (const serve::QueueFullError&) {
          // shed: the service counts the bounce against the tenant
        }
      });
      int accepted = 0;
      for (int i = 0; i < requests; ++i) {
        if (ok[static_cast<std::size_t>(i)]) {
          (void)futs[static_cast<std::size_t>(i)].get();
          accepted += 1;
        }
      }
      const double wall_s = wall.elapsed_s();
      prof::ServeStats rep_stats = service.stats();
      service.shutdown();
      if (wall_s < best) {
        best = wall_s;
        if (record) {
          stats = std::move(rep_stats);
          accepted_best = accepted;
        }
      }
    }
    return best;
  };

  const double single_s = measure(1, false);
  const double sharded_s = measure(shards, true);

  if (!metrics_path.empty() || !obs_dir.empty()) trace::stop();
  if (sink != nullptr) {
    sink->detach();
    sink->close();
    const auto ss = sink->stats();
    std::string per_ring;
    for (std::size_t r = 0; r < ss.dropped_by_ring.size(); ++r) {
      if (r != 0) per_ring += "/";
      per_ring += std::to_string(ss.dropped_by_ring[r]);
    }
    std::printf("obs sink %s: %llu flushed, %llu dropped (per ring: %s), "
                "%zu segment(s)\n\n",
                obs_dir.c_str(), static_cast<unsigned long long>(ss.flushed),
                static_cast<unsigned long long>(ss.dropped), per_ring.c_str(),
                sink->segment_files().size());
  }

  const double flops = 2.0 * static_cast<double>(mat->nnz());
  const double single_rps = requests / single_s;
  const double sharded_rps = accepted_best / sharded_s;
  const double single_gflops = flops * requests / single_s * 1e-9;
  const double sharded_gflops = flops * accepted_best / sharded_s * 1e-9;

  std::printf("%-26s %14s %14s %10s\n", "strategy", "wall[ms]", "requests/s",
              "GFLOP/s");
  rule(69);
  std::printf("%-26s %14.1f %14.1f %10.2f\n", "ShardedService (K=1)",
              1e3 * single_s, single_rps, single_gflops);
  char sharded_label[32];
  std::snprintf(sharded_label, sizeof(sharded_label), "ShardedService (K=%d)",
                shards);
  std::printf("%-26s %14.1f %14.1f %10.2f\n", sharded_label, 1e3 * sharded_s,
              sharded_rps, sharded_gflops);
  rule(69);
  std::printf("shard speedup: %.2fx requests/s (K=%d vs K=1)\n\n",
              sharded_rps / single_rps, shards);

  for (const auto& sh : stats.shards) {
    const double g = sh.exec_total_s > 0.0
                         ? 2.0 * static_cast<double>(sh.nnz) *
                               static_cast<double>(sh.executions) /
                               sh.exec_total_s * 1e-9
                         : 0.0;
    std::printf("  shard %d: rows [%lld, %lld)  %lld nnz  %llu exec(s)  "
                "%.2f GFLOP/s  %llu promotion(s)\n",
                sh.shard, static_cast<long long>(sh.row_begin),
                static_cast<long long>(sh.row_end),
                static_cast<long long>(sh.nnz),
                static_cast<unsigned long long>(sh.executions), g,
                static_cast<unsigned long long>(sh.promotions));
  }

  std::printf("\n%-10s %7s %9s %9s %11s %11s %11s\n", "tenant", "weight",
              "accepted", "rejected", "p50[ms]", "p95[ms]", "p99[ms]");
  rule(73);
  for (const auto& t : stats.tenants) {
    std::printf("%-10s %7.2f %9llu %9llu %11.3f %11.3f %11.3f\n",
                t.name.c_str(), t.weight,
                static_cast<unsigned long long>(t.requests),
                static_cast<unsigned long long>(t.rejected),
                1e3 * t.latency.percentile(50), 1e3 * t.latency.percentile(95),
                1e3 * t.latency.percentile(99));
  }
  std::printf("\n");

  prof::RunProfile profile;
  profile.label = "serve_throughput_sharded";
  profile.serve = stats;
  if (!metrics_path.empty() || !obs_dir.empty()) {
    const auto snap = trace::snapshot();
    profile.trace_stats.events = snap.events.size();
    profile.trace_stats.dropped_spans = snap.dropped;
    profile.trace_stats.threads = snap.threads;
  }
  write_profile(cli, profile);
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", metrics_path.c_str());
      return 1;
    }
    out << prof::prometheus_text(profile);
    std::printf("metrics written to %s\n", metrics_path.c_str());
  }

  const std::string json_path = cli.get("json");
  if (!json_path.empty()) {
    auto config = prof::Json::object();
    config.set("rows", static_cast<std::int64_t>(rows));
    config.set("requests", static_cast<std::int64_t>(requests));
    config.set("clients", static_cast<std::int64_t>(clients));
    config.set("shards", static_cast<std::int64_t>(shards));
    config.set("tenants", static_cast<std::int64_t>(tenants));
    config.set("workers_per_shard", static_cast<std::int64_t>(workers));
    config.set("reps", static_cast<std::int64_t>(reps));
    config.set("long_deg", static_cast<std::int64_t>(long_deg));
    config.set("dispatch_window", static_cast<std::int64_t>(dispatch_window));
    config.set("queue_high_water", static_cast<std::int64_t>(high_water));
    config.set("backend", exec::backend_name(backend));
    config.set("format", std::string(fmt::format_mode_cname(format)));
    config.set("queue_policy", std::string(shard::queue_policy_name(policy)));
    auto root = prof::Json::object();
    root.set("bench", "serve_throughput");
    root.set("mode", "sharded");
    root.set("config", std::move(config));
    root.set("nnz", static_cast<std::int64_t>(mat->nnz()));
    root.set("single_shard_rps", single_rps);
    root.set("sharded_rps", sharded_rps);
    root.set("single_shard_gflops", single_gflops);
    root.set("sharded_gflops", sharded_gflops);
    root.set("shard_speedup", sharded_rps / single_rps);
    root.set("rejected", stats.rejected);
    if (!stats.request_latency.empty()) {
      auto lat = prof::Json::object();
      lat.set("p50_s", stats.request_latency.percentile(50));
      lat.set("p95_s", stats.request_latency.percentile(95));
      lat.set("p99_s", stats.request_latency.percentile(99));
      root.set("request_latency", std::move(lat));
    }
    // Arrays are trajectory-invisible (the flattener skips them) but CI
    // artifacts and humans read them.
    auto per_shard = prof::Json::array();
    for (const auto& sh : stats.shards) {
      auto sj = prof::Json::object();
      sj.set("shard", static_cast<std::int64_t>(sh.shard));
      sj.set("nnz", sh.nnz);
      sj.set("executions", sh.executions);
      sj.set("gflops", sh.exec_total_s > 0.0
                           ? 2.0 * static_cast<double>(sh.nnz) *
                                 static_cast<double>(sh.executions) /
                                 sh.exec_total_s * 1e-9
                           : 0.0);
      sj.set("promotions", sh.promotions);
      per_shard.push_back(std::move(sj));
    }
    root.set("per_shard", std::move(per_shard));
    auto per_tenant = prof::Json::array();
    for (const auto& t : stats.tenants) {
      auto tj = prof::Json::object();
      tj.set("tenant", t.name);
      tj.set("weight", t.weight);
      tj.set("accepted", t.requests);
      tj.set("rejected", t.rejected);
      if (!t.latency.empty()) {
        tj.set("p50_s", t.latency.percentile(50));
        tj.set("p95_s", t.latency.percentile(95));
        tj.set("p99_s", t.latency.percentile(99));
      }
      per_tenant.push_back(std::move(tj));
    }
    root.set("per_tenant", std::move(per_tenant));
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    out << root.dump() << "\n";
    std::printf("bench summary written to %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  // --shards/--tenants routes to the row-sharded serving bench (one large
  // matrix through spmv::shard) instead of the multi-matrix SpmvService
  // bench below.
  if (cli.get_int("shards", 0) > 0 || cli.has("tenants"))
    return run_sharded(cli);
  const auto rows = static_cast<index_t>(cli.get_int("rows", 20000));
  const int requests = static_cast<int>(cli.get_int("requests", 128));
  const int clients = static_cast<int>(cli.get_int("clients", 4));
  const int workers = static_cast<int>(cli.get_int("workers", 2));
  const int max_batch = static_cast<int>(cli.get_int("max-batch", 8));
  const int reps = static_cast<int>(cli.get_int("reps", 3));
  const exec::BackendKind backend = backend_from_cli(cli);
  const fmt::FormatMode format = format_from_cli(cli);
  const bool short_rows = cli.get_bool("short-rows", false);
  const std::string metrics_path = cli.get("metrics-out");
  const std::string obs_dir = cli.get("obs-dir");

  // Telemetry wants trace ids: exemplars in --metrics-out and segment
  // files under --obs-dir both resolve through them.
  if (!metrics_path.empty() || !obs_dir.empty()) trace::start();
  std::unique_ptr<obs::StreamingSink> sink;
  if (!obs_dir.empty()) {
    obs::SinkOptions sopts;
    sopts.directory = obs_dir;
    sink = std::make_unique<obs::StreamingSink>(sopts);
    sink->attach();
  }

  // Three recurring matrix structures, as a serving workload would see
  // (e.g. the same operators queried by many clients). --short-rows keeps
  // only short-row shapes (the backend-comparison profile).
  std::vector<std::shared_ptr<const CsrMatrix<float>>> mats;
  if (!short_rows)
    mats.push_back(std::make_shared<const CsrMatrix<float>>(
        gen::power_law<float>(rows, rows, 2.0, 300, 1)));
  mats.push_back(std::make_shared<const CsrMatrix<float>>(
      gen::fixed_degree<float>(rows, rows, 6, 2)));
  mats.push_back(std::make_shared<const CsrMatrix<float>>(
      gen::banded<float>(rows, 8, 0.7, 3)));

  std::printf("=== bench serve_throughput (rows=%d, requests=%d, "
              "clients=%d, workers=%d, max_batch=%d, backend=%s, "
              "format=%s%s) ===\n\n",
              rows, requests, clients, workers, max_batch,
              exec::backend_cname(backend), fmt::format_mode_cname(format),
              short_rows ? ", short-rows" : "");

  // Pre-generate the request stream (matrix round-robin + input vector) so
  // neither side pays generation inside the timed region.
  std::vector<const CsrMatrix<float>*> req_mat_raw;
  std::vector<std::shared_ptr<const CsrMatrix<float>>> req_mat;
  std::vector<std::vector<float>> req_x;
  for (int i = 0; i < requests; ++i) {
    const auto& m = mats[static_cast<std::size_t>(i) % mats.size()];
    req_mat.push_back(m);
    req_mat_raw.push_back(m.get());
    req_x.push_back(
        random_x(static_cast<std::size_t>(m->cols()),
                 static_cast<std::uint64_t>(1000 + i)));
  }

  core::HeuristicPredictor pred;

  // --- Naive: every request plans its own runtime, runs one vector. ------
  double naive_s = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps; ++rep) {
    naive_s = std::min(
        naive_s, run_clients(clients, requests, [&](int i) {
          const CsrMatrix<float>& a =
              *req_mat_raw[static_cast<std::size_t>(i)];
          const auto spmv = core::Tuner(a)
                                .predictor(pred)
                                .backend(backend)
                                .formats(format)
                                .build();
          std::vector<float> y(static_cast<std::size_t>(a.rows()));
          spmv.run(req_x[static_cast<std::size_t>(i)], std::span<float>(y));
        }));
  }

  // --- Service: shared plan cache + multi-vector batching. ---------------
  prof::RunProfile profile;
  profile.label = "serve_throughput";
  serve::ServiceOptions opts;
  opts.workers = workers;
  opts.max_batch = max_batch;
  opts.queue_high_water = static_cast<std::size_t>(requests) + 16;
  opts.backend = backend;
  opts.format = format;
  opts.profile = &profile;

  double serve_s = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps; ++rep) {
    prof::RunProfile rep_profile;
    serve::ServiceOptions rep_opts = opts;
    rep_opts.profile = &rep_profile;
    rep_opts.obs_sink = sink.get();
    serve::SpmvService<float> service(pred, rep_opts);
    // Warm the cache: planning cost is paid once per structure, off-clock
    // (a steady-state serving process has a warm cache).
    for (const auto& m : mats)
      (void)service.run(m, random_x(static_cast<std::size_t>(m->cols())));
    // Pipelined clients: submit without blocking, collect afterwards — the
    // queue depth this builds is what lets the workers form wide batches.
    std::vector<std::future<std::vector<float>>> futs(
        static_cast<std::size_t>(requests));
    util::Timer wall;
    run_clients(clients, requests, [&](int i) {
      futs[static_cast<std::size_t>(i)] =
          service.submit(req_mat[static_cast<std::size_t>(i)],
                         req_x[static_cast<std::size_t>(i)]);
    });
    for (auto& f : futs) (void)f.get();
    const double wall_s = wall.elapsed_s();
    service.shutdown();  // flush serve stats into `rep_profile`
    if (wall_s < serve_s) {
      serve_s = wall_s;
      profile.serve = rep_profile.serve;
    }
  }

  if (!metrics_path.empty() || !obs_dir.empty()) {
    trace::stop();
    const auto snap = trace::snapshot();
    profile.trace_stats.events = snap.events.size();
    profile.trace_stats.dropped_spans = snap.dropped;
    profile.trace_stats.threads = snap.threads;
  }
  if (sink != nullptr) {
    sink->detach();  // workers joined, tracing stopped — no racing emits
    sink->close();
    const auto ss = sink->stats();
    std::printf("obs sink %s: %llu flushed, %llu dropped, %zu segment(s)\n",
                obs_dir.c_str(), static_cast<unsigned long long>(ss.flushed),
                static_cast<unsigned long long>(ss.dropped),
                sink->segment_files().size());
  }

  const double naive_rps = requests / naive_s;
  const double serve_rps = requests / serve_s;
  // Work-normalized throughput: total flops of the request stream over the
  // wall — the number the clsim-vs-native CI comparison keys on.
  double total_flops = 0.0;
  for (const auto& m : req_mat)
    total_flops += 2.0 * static_cast<double>(m->nnz());
  const double naive_gflops = total_flops / naive_s * 1e-9;
  const double serve_gflops = total_flops / serve_s * 1e-9;
  const auto& s = profile.serve;
  // Mean width over everything recorded (includes the per-matrix warm-up
  // singles, which slightly understate the steady-state width).
  const double mean_width =
      s.batches == 0
          ? 0.0
          : static_cast<double>(s.requests) / static_cast<double>(s.batches);

  std::printf("%-26s %14s %14s %10s\n", "strategy", "wall[ms]", "requests/s",
              "GFLOP/s");
  rule(69);
  std::printf("%-26s %14.1f %14.1f %10.2f\n", "naive plan-and-run",
              1e3 * naive_s, naive_rps, naive_gflops);
  std::printf("%-26s %14.1f %14.1f %10.2f\n", "SpmvService (batched)",
              1e3 * serve_s, serve_rps, serve_gflops);
  rule(69);
  std::printf("speedup: %.2fx requests/s\n\n", serve_rps / naive_rps);

  std::printf("serve stats: %llu requests in %llu batches "
              "(mean width %.1f), cache hit rate %.0f%%, "
              "mean queue wait %.3f ms\n",
              static_cast<unsigned long long>(s.requests),
              static_cast<unsigned long long>(s.batches), mean_width,
              100.0 * s.cache_hit_rate(),
              s.requests == 0
                  ? 0.0
                  : 1e3 * s.queue_wait_total_s /
                        static_cast<double>(s.requests));
  std::printf("batch width histogram:");
  for (std::size_t w = 0; w < s.batch_width_hist.size(); ++w) {
    if (s.batch_width_hist[w] != 0)
      std::printf(" %zux%llu", w + 1,
                  static_cast<unsigned long long>(s.batch_width_hist[w]));
  }
  std::printf("\n");

  if (!s.request_latency.empty()) {
    std::printf("request latency p50 %.3f ms, p95 %.3f ms, p99 %.3f ms\n",
                1e3 * s.request_latency.percentile(50),
                1e3 * s.request_latency.percentile(95),
                1e3 * s.request_latency.percentile(99));
  }

  write_profile(cli, profile);

  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", metrics_path.c_str());
      return 1;
    }
    out << prof::prometheus_text(profile);
    std::printf("metrics written to %s\n", metrics_path.c_str());
  }

  // --json: the machine-readable summary CI uploads and the regression gate
  // can diff across commits.
  const std::string json_path = cli.get("json");
  if (!json_path.empty()) {
    auto config = prof::Json::object();
    config.set("rows", static_cast<std::int64_t>(rows));
    config.set("requests", static_cast<std::int64_t>(requests));
    config.set("clients", static_cast<std::int64_t>(clients));
    config.set("workers", static_cast<std::int64_t>(workers));
    config.set("max_batch", static_cast<std::int64_t>(max_batch));
    config.set("reps", static_cast<std::int64_t>(reps));
    config.set("backend", exec::backend_name(backend));
    config.set("format", std::string(fmt::format_mode_cname(format)));
    config.set("short_rows", short_rows);
    auto root = prof::Json::object();
    root.set("bench", "serve_throughput");
    root.set("config", std::move(config));
    root.set("naive_rps", naive_rps);
    root.set("serve_rps", serve_rps);
    root.set("naive_gflops", naive_gflops);
    root.set("serve_gflops", serve_gflops);
    root.set("speedup", serve_rps / naive_rps);
    root.set("batches", s.batches);
    root.set("cache_hit_rate", s.cache_hit_rate());
    if (!s.request_latency.empty()) {
      auto lat = prof::Json::object();
      lat.set("p50_s", s.request_latency.percentile(50));
      lat.set("p95_s", s.request_latency.percentile(95));
      lat.set("p99_s", s.request_latency.percentile(99));
      root.set("request_latency", std::move(lat));
    }
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    out << root.dump() << "\n";
    std::printf("bench summary written to %s\n", json_path.c_str());
  }
  return 0;
}

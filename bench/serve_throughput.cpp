// bench serve_throughput — the serving-layer headline number: requests/sec
// of the plan-cached, multi-vector-batched SpmvService vs naive per-request
// plan-and-run (what a client without the serving layer would do: build an
// AutoSpmv for its matrix, run once, throw it away). Same client count on
// both sides; the service additionally amortizes planning through the
// PlanCache and CSR traversals through batching.
//
// Each side is measured --reps times and the best wall is reported (the
// usual defence against scheduler noise on loaded hosts).
//
//   serve_throughput [--rows N] [--requests R] [--clients C] [--workers W]
//                    [--max-batch B] [--reps K] [--backend clsim|native]
//                    [--format csr|auto] [--short-rows] [--profile out.json]
//                    [--json BENCH_serve.json] [--metrics-out metrics.txt]
//                    [--obs-dir dir]
//
// --backend selects the execution backend every plan is stamped with
// (exec/backend.hpp); --format auto lets the fmt estimator stamp per-bin
// physical layouts onto fresh plans (effective on format-capable backends
// only — see src/fmt/); --short-rows swaps the workload to short-row-only
// matrices (fixed degree 6 / narrow band), the profile where the native
// backend's thin OpenMP loops beat the simulated work-group engine by the
// widest margin. --json writes a compact machine-readable summary (config,
// backend, format, naive/serve requests-per-second and GFLOP/s, speedup,
// request-latency percentiles) for CI artifact upload — the CI job runs it
// once per backend (and, on native, once per format mode) and uploads the
// set for comparison — alongside the full --profile RunProfile.
// --metrics-out writes the Prometheus exposition (latency histograms carry
// exemplars); --obs-dir streams spans/stats into rotating JSONL segments
// (spmv::obs) while the bench runs — either flag turns tracing on so the
// exemplars and segments have spans to point at.
#include <atomic>
#include <fstream>
#include <future>
#include <limits>
#include <memory>
#include <thread>

#include "bench_common.hpp"

using namespace spmv;
using namespace spmv::bench;

namespace {

/// Run `fn(request_index)` from `clients` threads until `count` requests
/// are claimed; returns wall seconds.
double run_clients(int clients, int count,
                   const std::function<void(int)>& fn) {
  std::atomic<int> next{0};
  util::Timer wall;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      for (;;) {
        const int i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        fn(i);
      }
    });
  }
  for (auto& t : threads) t.join();
  return wall.elapsed_s();
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto rows = static_cast<index_t>(cli.get_int("rows", 20000));
  const int requests = static_cast<int>(cli.get_int("requests", 128));
  const int clients = static_cast<int>(cli.get_int("clients", 4));
  const int workers = static_cast<int>(cli.get_int("workers", 2));
  const int max_batch = static_cast<int>(cli.get_int("max-batch", 8));
  const int reps = static_cast<int>(cli.get_int("reps", 3));
  const exec::BackendKind backend = backend_from_cli(cli);
  const fmt::FormatMode format = format_from_cli(cli);
  const bool short_rows = cli.get_bool("short-rows", false);
  const std::string metrics_path = cli.get("metrics-out");
  const std::string obs_dir = cli.get("obs-dir");

  // Telemetry wants trace ids: exemplars in --metrics-out and segment
  // files under --obs-dir both resolve through them.
  if (!metrics_path.empty() || !obs_dir.empty()) trace::start();
  std::unique_ptr<obs::StreamingSink> sink;
  if (!obs_dir.empty()) {
    obs::SinkOptions sopts;
    sopts.directory = obs_dir;
    sink = std::make_unique<obs::StreamingSink>(sopts);
    sink->attach();
  }

  // Three recurring matrix structures, as a serving workload would see
  // (e.g. the same operators queried by many clients). --short-rows keeps
  // only short-row shapes (the backend-comparison profile).
  std::vector<std::shared_ptr<const CsrMatrix<float>>> mats;
  if (!short_rows)
    mats.push_back(std::make_shared<const CsrMatrix<float>>(
        gen::power_law<float>(rows, rows, 2.0, 300, 1)));
  mats.push_back(std::make_shared<const CsrMatrix<float>>(
      gen::fixed_degree<float>(rows, rows, 6, 2)));
  mats.push_back(std::make_shared<const CsrMatrix<float>>(
      gen::banded<float>(rows, 8, 0.7, 3)));

  std::printf("=== bench serve_throughput (rows=%d, requests=%d, "
              "clients=%d, workers=%d, max_batch=%d, backend=%s, "
              "format=%s%s) ===\n\n",
              rows, requests, clients, workers, max_batch,
              exec::backend_cname(backend), fmt::format_mode_cname(format),
              short_rows ? ", short-rows" : "");

  // Pre-generate the request stream (matrix round-robin + input vector) so
  // neither side pays generation inside the timed region.
  std::vector<const CsrMatrix<float>*> req_mat_raw;
  std::vector<std::shared_ptr<const CsrMatrix<float>>> req_mat;
  std::vector<std::vector<float>> req_x;
  for (int i = 0; i < requests; ++i) {
    const auto& m = mats[static_cast<std::size_t>(i) % mats.size()];
    req_mat.push_back(m);
    req_mat_raw.push_back(m.get());
    req_x.push_back(
        random_x(static_cast<std::size_t>(m->cols()),
                 static_cast<std::uint64_t>(1000 + i)));
  }

  core::HeuristicPredictor pred;

  // --- Naive: every request plans its own runtime, runs one vector. ------
  double naive_s = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps; ++rep) {
    naive_s = std::min(
        naive_s, run_clients(clients, requests, [&](int i) {
          const CsrMatrix<float>& a =
              *req_mat_raw[static_cast<std::size_t>(i)];
          const auto spmv = core::Tuner(a)
                                .predictor(pred)
                                .backend(backend)
                                .formats(format)
                                .build();
          std::vector<float> y(static_cast<std::size_t>(a.rows()));
          spmv.run(req_x[static_cast<std::size_t>(i)], std::span<float>(y));
        }));
  }

  // --- Service: shared plan cache + multi-vector batching. ---------------
  prof::RunProfile profile;
  profile.label = "serve_throughput";
  serve::ServiceOptions opts;
  opts.workers = workers;
  opts.max_batch = max_batch;
  opts.queue_high_water = static_cast<std::size_t>(requests) + 16;
  opts.backend = backend;
  opts.format = format;
  opts.profile = &profile;

  double serve_s = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps; ++rep) {
    prof::RunProfile rep_profile;
    serve::ServiceOptions rep_opts = opts;
    rep_opts.profile = &rep_profile;
    rep_opts.obs_sink = sink.get();
    serve::SpmvService<float> service(pred, rep_opts);
    // Warm the cache: planning cost is paid once per structure, off-clock
    // (a steady-state serving process has a warm cache).
    for (const auto& m : mats)
      (void)service.run(m, random_x(static_cast<std::size_t>(m->cols())));
    // Pipelined clients: submit without blocking, collect afterwards — the
    // queue depth this builds is what lets the workers form wide batches.
    std::vector<std::future<std::vector<float>>> futs(
        static_cast<std::size_t>(requests));
    util::Timer wall;
    run_clients(clients, requests, [&](int i) {
      futs[static_cast<std::size_t>(i)] =
          service.submit(req_mat[static_cast<std::size_t>(i)],
                         req_x[static_cast<std::size_t>(i)]);
    });
    for (auto& f : futs) (void)f.get();
    const double wall_s = wall.elapsed_s();
    service.shutdown();  // flush serve stats into `rep_profile`
    if (wall_s < serve_s) {
      serve_s = wall_s;
      profile.serve = rep_profile.serve;
    }
  }

  if (!metrics_path.empty() || !obs_dir.empty()) {
    trace::stop();
    const auto snap = trace::snapshot();
    profile.trace_stats.events = snap.events.size();
    profile.trace_stats.dropped_spans = snap.dropped;
    profile.trace_stats.threads = snap.threads;
  }
  if (sink != nullptr) {
    sink->detach();  // workers joined, tracing stopped — no racing emits
    sink->close();
    const auto ss = sink->stats();
    std::printf("obs sink %s: %llu flushed, %llu dropped, %zu segment(s)\n",
                obs_dir.c_str(), static_cast<unsigned long long>(ss.flushed),
                static_cast<unsigned long long>(ss.dropped),
                sink->segment_files().size());
  }

  const double naive_rps = requests / naive_s;
  const double serve_rps = requests / serve_s;
  // Work-normalized throughput: total flops of the request stream over the
  // wall — the number the clsim-vs-native CI comparison keys on.
  double total_flops = 0.0;
  for (const auto& m : req_mat)
    total_flops += 2.0 * static_cast<double>(m->nnz());
  const double naive_gflops = total_flops / naive_s * 1e-9;
  const double serve_gflops = total_flops / serve_s * 1e-9;
  const auto& s = profile.serve;
  // Mean width over everything recorded (includes the per-matrix warm-up
  // singles, which slightly understate the steady-state width).
  const double mean_width =
      s.batches == 0
          ? 0.0
          : static_cast<double>(s.requests) / static_cast<double>(s.batches);

  std::printf("%-26s %14s %14s %10s\n", "strategy", "wall[ms]", "requests/s",
              "GFLOP/s");
  rule(69);
  std::printf("%-26s %14.1f %14.1f %10.2f\n", "naive plan-and-run",
              1e3 * naive_s, naive_rps, naive_gflops);
  std::printf("%-26s %14.1f %14.1f %10.2f\n", "SpmvService (batched)",
              1e3 * serve_s, serve_rps, serve_gflops);
  rule(69);
  std::printf("speedup: %.2fx requests/s\n\n", serve_rps / naive_rps);

  std::printf("serve stats: %llu requests in %llu batches "
              "(mean width %.1f), cache hit rate %.0f%%, "
              "mean queue wait %.3f ms\n",
              static_cast<unsigned long long>(s.requests),
              static_cast<unsigned long long>(s.batches), mean_width,
              100.0 * s.cache_hit_rate(),
              s.requests == 0
                  ? 0.0
                  : 1e3 * s.queue_wait_total_s /
                        static_cast<double>(s.requests));
  std::printf("batch width histogram:");
  for (std::size_t w = 0; w < s.batch_width_hist.size(); ++w) {
    if (s.batch_width_hist[w] != 0)
      std::printf(" %zux%llu", w + 1,
                  static_cast<unsigned long long>(s.batch_width_hist[w]));
  }
  std::printf("\n");

  if (!s.request_latency.empty()) {
    std::printf("request latency p50 %.3f ms, p95 %.3f ms, p99 %.3f ms\n",
                1e3 * s.request_latency.percentile(50),
                1e3 * s.request_latency.percentile(95),
                1e3 * s.request_latency.percentile(99));
  }

  write_profile(cli, profile);

  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", metrics_path.c_str());
      return 1;
    }
    out << prof::prometheus_text(profile);
    std::printf("metrics written to %s\n", metrics_path.c_str());
  }

  // --json: the machine-readable summary CI uploads and the regression gate
  // can diff across commits.
  const std::string json_path = cli.get("json");
  if (!json_path.empty()) {
    auto config = prof::Json::object();
    config.set("rows", static_cast<std::int64_t>(rows));
    config.set("requests", static_cast<std::int64_t>(requests));
    config.set("clients", static_cast<std::int64_t>(clients));
    config.set("workers", static_cast<std::int64_t>(workers));
    config.set("max_batch", static_cast<std::int64_t>(max_batch));
    config.set("reps", static_cast<std::int64_t>(reps));
    config.set("backend", exec::backend_name(backend));
    config.set("format", std::string(fmt::format_mode_cname(format)));
    config.set("short_rows", short_rows);
    auto root = prof::Json::object();
    root.set("bench", "serve_throughput");
    root.set("config", std::move(config));
    root.set("naive_rps", naive_rps);
    root.set("serve_rps", serve_rps);
    root.set("naive_gflops", naive_gflops);
    root.set("serve_gflops", serve_gflops);
    root.set("speedup", serve_rps / naive_rps);
    root.set("batches", s.batches);
    root.set("cache_hit_rate", s.cache_hit_rate());
    if (!s.request_latency.empty()) {
      auto lat = prof::Json::object();
      lat.set("p50_s", s.request_latency.percentile(50));
      lat.set("p95_s", s.request_latency.percentile(95));
      lat.set("p99_s", s.request_latency.percentile(99));
      root.set("request_latency", std::move(lat));
    }
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    out << root.dump() << "\n";
    std::printf("bench summary written to %s\n", json_path.c_str());
  }
  return 0;
}

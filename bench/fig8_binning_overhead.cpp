// Figure 8 reproduction: binning overhead vs granularity U.
//
// The paper bins a matrix with 10^7 rows of one non-zero each and shows
// that U=1 (fine-grained) costs far more than coarse granularities, with
// the overhead becoming negligible from U=100 upward. We also report the
// binning time relative to one SpMV pass — the paper's argument that the
// coarse overhead is recouped immediately.
#include <cstdio>

#include "bench_common.hpp"

using namespace spmv;
using namespace spmv::bench;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  // Default 10^7 rows as in the paper (80 MB of row_ptr + 1 nnz per row —
  // comfortably in memory; override with --rows for smaller machines).
  const auto rows = static_cast<index_t>(cli.get_int("rows", 10000000));
  const auto a = gen::diagonal<float>(rows);
  const auto x = random_x(static_cast<std::size_t>(a.cols()));
  std::vector<float> y(static_cast<std::size_t>(a.rows()));

  std::printf("=== bench fig8_binning_overhead (rows=%d, 1 nnz/row) ===\n\n",
              rows);

  const double t_spmv = time_spmv([&] {
    kernels::spmv_omp_rows(a, std::span<const float>(x), std::span<float>(y));
  });

  std::printf("%-10s %14s %16s %18s %16s\n", "U", "bin time[ms]",
              "vs U=100", "stored entries", "vs one SpMV");
  rule(80);

  double t_u100 = 0.0;
  const std::vector<index_t> units = {1, 2, 10, 100, 1000, 10000, 100000};
  std::vector<double> times;
  for (index_t u : units) {
    binning::BinSet bins;
    const double t = time_spmv([&] { bins = binning::bin_matrix(a, u); },
                               {.warmup = 1, .reps = 3, .max_total_s = 5.0});
    times.push_back(t);
    if (u == 100) t_u100 = t;
  }
  for (std::size_t i = 0; i < units.size(); ++i) {
    const auto bins = binning::bin_matrix(a, units[i]);
    std::printf("%-10d %14.3f %15.1fx %18zu %15.2fx\n", units[i],
                1e3 * times[i], times[i] / t_u100,
                bins.stored_virtual_rows(), times[i] / t_spmv);
  }

  rule(80);
  std::printf(
      "one OpenMP SpMV pass: %.3f ms. Paper's shape: U=1 dominates all "
      "coarser granularities;\noverhead negligible from U=100 up.\n",
      1e3 * t_spmv);
  return 0;
}

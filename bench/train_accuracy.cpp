// §III-C / §IV-A reproduction: the two-stage C5.0-style training pipeline.
//
// The paper trains on 2000+ UF matrices (75% train / 25% test) and observes
// ~5% test error for stage 1 (binning-scheme selection) and up to ~15% for
// stage 2 (kernel selection). This bench runs the full pipeline on the
// synthetic corpus — exhaustive measurement for ground truth, two-stage
// tree + rule-set training, holdout evaluation — and additionally reports
// the end-to-end cost of a *mispredicted* plan: the fraction of achievable
// (oracle) performance the predicted plans reach on held-out matrices.
#include <cstdio>

#include "bench_common.hpp"

using namespace spmv;
using namespace spmv::bench;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);

  gen::CorpusOptions copts;
  copts.count = static_cast<int>(cli.get_int("matrices", 300));
  copts.min_rows = static_cast<index_t>(cli.get_int("min-rows", 1500));
  copts.max_rows = static_cast<index_t>(cli.get_int("max-rows", 12000));
  copts.seed = static_cast<std::uint64_t>(cli.get_int("seed", 2017));

  core::TrainerOptions topts;
  topts.pools = bench_pools(cli.get_bool("full-pool", false));
  topts.tune.measure = {.warmup = 1, .reps = 4, .max_total_s = 0.08};
  topts.use_rulesets = cli.get_bool("rulesets", true);

  std::printf(
      "=== bench train_accuracy (matrices=%d, units=%zu, kernels=%zu) "
      "===\n\n",
      copts.count, topts.pools.units.size(), topts.pools.kernel_pool.size());
  std::printf("harvesting oracle labels (exhaustive tuning per matrix)...\n");

  const auto specs = gen::sample_corpus(copts);
  util::Timer timer;
  core::TrainReport report;
  const auto model =
      core::train_model(specs, topts, clsim::default_engine(), &report);
  std::printf("training pipeline took %.1f s\n\n", timer.elapsed_s());

  std::printf("%-34s %12s %12s\n", "stage", "train error", "test error");
  rule(60);
  std::printf("%-34s %11.1f%% %11.1f%%\n",
              "stage 1 (binning scheme U)", 100.0 * report.stage1_train_error,
              100.0 * report.stage1_test_error);
  std::printf("%-34s %11.1f%% %11.1f%%\n", "stage 2 (kernel per bin)",
              100.0 * report.stage2_train_error,
              100.0 * report.stage2_test_error);
  rule(60);
  std::printf("paper reference: stage 1 ~5%%, stage 2 up to ~15%% test error\n");
  std::printf(
      "samples: stage1 %zu train / %zu test; stage2 %zu train / %zu test\n",
      report.stage1_train_samples, report.stage1_test_samples,
      report.stage2_train_samples, report.stage2_test_samples);
  std::printf("stage-1 tree: %zu leaves, depth %d; stage-2 tree: %zu leaves, "
              "depth %d\n",
              model.stage1.leaf_count(), model.stage1.depth(),
              model.stage2.leaf_count(), model.stage2.depth());

  // End-to-end value of the predictions: on fresh matrices, what fraction
  // of the oracle plan's performance do the predicted plans reach?
  const int holdout = static_cast<int>(cli.get_int("holdout", 12));
  gen::CorpusOptions hopts = copts;
  hopts.count = holdout;
  hopts.seed = copts.seed + 999;  // unseen matrices
  core::ModelPredictor pred(model);
  std::vector<double> efficiency;
  for (const auto& spec : gen::sample_corpus(hopts)) {
    const auto a = gen::make_corpus_matrix<float>(spec);
    const auto x = random_x(static_cast<std::size_t>(a.cols()));
    std::vector<float> y(static_cast<std::size_t>(a.rows()));

    const auto oracle = oracle_plan(a, x, topts.pools);
    const auto oracle_bins = core::bins_for_plan(a, oracle);
    const double t_oracle = time_spmv([&] {
      core::execute_plan(clsim::default_engine(), a, std::span<const float>(x),
                         std::span<float>(y), oracle_bins, oracle);
    });

    const auto spmv = core::Tuner(a).predictor(pred).build();
    const double t_pred =
        time_spmv([&] { spmv.run(std::span<const float>(x), std::span<float>(y)); });
    efficiency.push_back(t_oracle / t_pred);
  }
  std::printf(
      "\npredicted plans on %d unseen matrices reach %.0f%% of oracle "
      "performance (geomean)\n",
      holdout, 100.0 * util::geometric_mean(efficiency));

  const std::string out = cli.get("save-model");
  if (!out.empty()) {
    core::save_model_file(out, model);
    std::printf("model saved to %s\n", out.c_str());
  }
  return 0;
}

// Table II reproduction: the 16 representative matrices — paper dimensions
// vs the generated synthetic analogues, including the scale factors applied
// to the two matrices that exceed this machine's budget.
#include <cstdio>

#include "bench_common.hpp"

using namespace spmv;
using namespace spmv::bench;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const double extra_scale = cli.get_double("scale", 1.0);

  std::printf("=== bench table2_matrices (scale=%.3f) ===\n\n", extra_scale);
  std::printf("%-16s %11s %11s %12s | %9s %9s %12s %8s  %s\n", "matrix",
              "paper rows", "paper cols", "paper nnz", "gen rows", "gen cols",
              "gen nnz", "scale", "kind");
  rule(130);

  for (const auto& base_info : gen::representative_catalogue()) {
    auto info = base_info;
    info.scale *= extra_scale;
    const auto a = gen::make_representative<float>(info);
    std::printf("%-16s %11d %11d %12lld | %9d %9d %12lld %8.4f  %s\n",
                info.name.c_str(), base_info.paper_rows, base_info.paper_cols,
                static_cast<long long>(base_info.paper_nnz), a.rows(),
                a.cols(), static_cast<long long>(a.nnz()), info.scale,
                info.kind.c_str());
  }
  rule(130);
  std::printf(
      "scale < 1 marks the matrices scaled down from the paper "
      "(europe_osm, HV15R); see EXPERIMENTS.md.\n");
  return 0;
}

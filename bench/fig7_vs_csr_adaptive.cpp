// Figure 7 reproduction: speedup of kernel-auto over the CSR-Adaptive
// baseline (Greathouse & Daga) on the 16 Table-II matrices.
//
// The paper reports kernel-auto winning on 10 of 16 matrices, by up to
// 1.9x, with CSR-Adaptive ahead on crankseg_2, D6-6, dictionary28,
// europe_osm, Ga3As3H12, and roadNet-CA (discussed in §IV-C and Figure 9).
#include <cstdio>

#include "bench_common.hpp"

using namespace spmv;
using namespace spmv::bench;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const double extra_scale = cli.get_double("scale", 1.0);
  const auto pools = bench_pools(cli.get_bool("full-pool", false));

  prof::RunProfile profile;
  profile.label = "fig7_vs_csr_adaptive";
  prof::RunProfile* prof_ptr = cli.has("profile") ? &profile : nullptr;

  std::printf("=== bench fig7_vs_csr_adaptive (scale=%.3f) ===\n\n",
              extra_scale);
  std::printf("%-16s %14s %18s %16s %8s\n", "matrix", "auto[ms]",
              "csr-adaptive[ms]", "speedup(auto)", "winner");
  rule(78);

  int auto_wins = 0;
  std::vector<double> speedups;
  for (const auto& base_info : gen::representative_catalogue()) {
    auto info = base_info;
    info.scale *= extra_scale;
    const auto a = gen::make_representative<float>(info);
    const auto x = random_x(static_cast<std::size_t>(a.cols()));
    std::vector<float> y(static_cast<std::size_t>(a.rows()));

    const auto plan = oracle_plan(a, x, pools);
    const auto bins = core::bins_for_plan(a, plan);
    const double t_auto = time_strategy(prof_ptr, info.name + "/auto", [&] {
      core::execute_plan(clsim::default_engine(), a, std::span<const float>(x),
                         std::span<float>(y), bins, plan);
    });

    baseline::CsrAdaptive<float> adaptive(a, clsim::default_engine());
    const double t_adaptive = time_strategy(
        prof_ptr, info.name + "/csr-adaptive",
        [&] { adaptive.run(std::span<const float>(x), std::span<float>(y)); });

    const double speedup = t_adaptive / t_auto;
    speedups.push_back(speedup);
    if (speedup >= 1.0) ++auto_wins;
    std::printf("%-16s %14.3f %18.3f %15.2fx %8s\n", info.name.c_str(),
                1e3 * t_auto, 1e3 * t_adaptive, speedup,
                speedup >= 1.0 ? "auto" : "csr-ad");
  }

  rule(78);
  std::printf(
      "kernel-auto wins on %d of 16 matrices (paper: 10 of 16); max speedup "
      "%.2fx (paper: up to 1.9x); geomean %.2fx\n",
      auto_wins, *std::max_element(speedups.begin(), speedups.end()),
      util::geometric_mean(speedups));
  write_profile(cli, profile);
  return 0;
}

// Shared helpers for the paper-reproduction bench binaries: input vectors,
// strategy timing, and aligned table printing. Every bench prints the rows/
// series of its paper figure, plus the seeds/scales used, so EXPERIMENTS.md
// entries can be regenerated with a single command.
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "autospmv.hpp"

namespace spmv::bench {

inline std::vector<float> random_x(std::size_t n, std::uint64_t seed = 4242) {
  util::Xoshiro256 rng(seed);
  std::vector<float> x(n);
  for (auto& v : x) v = static_cast<float>(rng.uniform(0.5, 1.5));
  return x;
}

/// Measure one strategy and optionally record it into `profile` as a
/// tuning-candidate entry (label, wall cost, reps, best time). Passing a
/// profile plus the shared --profile flag (see write_profile) turns any
/// bench's table into a regression-comparable JSON artifact.
inline double time_strategy(prof::RunProfile* profile,
                            const std::string& label,
                            const std::function<void()>& run,
                            const util::MeasureOptions& opts = {
                                .warmup = 1, .reps = 5, .max_total_s = 2.0}) {
  util::Timer wall;
  const auto m = util::measure(run, opts);
  if (profile != nullptr)
    profile->add_candidate(label, wall.elapsed_s(), m.reps, m.best_s);
  return m.best_s;
}

/// Measure one SpMV strategy (best-of-reps wall clock).
inline double time_spmv(const std::function<void()>& run,
                        const util::MeasureOptions& opts = {
                            .warmup = 1, .reps = 5, .max_total_s = 2.0}) {
  return time_strategy(nullptr, std::string(), run, opts);
}

/// Honour the shared --profile=<path> bench flag: write `profile` as JSON
/// and say so. No flag, no file.
inline void write_profile(const util::Cli& cli,
                          const prof::RunProfile& profile) {
  const std::string path = cli.get("profile");
  if (path.empty()) return;
  prof::write_profile_file(path, profile);
  std::printf("profile written to %s\n", path.c_str());
}

/// GFLOP/s for an SpMV of `nnz` non-zeros (2 flops per non-zero).
inline double gflops(offset_t nnz, double seconds) {
  return 2.0 * static_cast<double>(nnz) / seconds * 1e-9;
}

/// Print a horizontal rule sized for `width` characters.
inline void rule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

/// The uniform `--backend clsim|native` flag shared by the benches (and
/// spmv_tool). Unknown names throw std::invalid_argument.
inline exec::BackendKind backend_from_cli(const util::Cli& cli) {
  return exec::backend_from_name(cli.get("backend", "clsim"));
}

/// The uniform `--format csr|auto` flag (per-bin physical layouts via the
/// spmv::fmt estimator). Unknown names throw std::invalid_argument.
inline fmt::FormatMode format_from_cli(const util::Cli& cli) {
  return fmt::format_mode_from_name(cli.get("format", "csr"));
}

/// Peel `--backend=<name>` / `--backend <name>` out of argv and return the
/// selected shared backend (clsim when absent). For benches whose remaining
/// flags go to a third-party parser that rejects unknown flags (e.g.
/// google-benchmark). `argv` is compacted in place and `*argc` updated.
inline std::shared_ptr<const exec::Backend> strip_backend_flag(int* argc,
                                                               char** argv) {
  exec::BackendKind kind = exec::BackendKind::Clsim;
  int out = 0;
  for (int i = 0; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--backend=", 0) == 0) {
      kind = exec::backend_from_name(
          arg.substr(std::string("--backend=").size()));
      continue;
    }
    if (arg == "--backend" && i + 1 < *argc) {
      kind = exec::backend_from_name(argv[++i]);
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  return exec::shared_backend(kind);
}

/// The bench-sized candidate pools: the full nine-kernel pool with a
/// five-point granularity ladder (the full 16-point ladder multiplies bench
/// time ~3x without changing any figure's shape; override with --full-pool).
inline core::CandidatePools bench_pools(bool full = false) {
  if (full) return core::default_pools();
  core::CandidatePools pools;
  pools.units = {10, 100, 1000, 10000, 100000};
  pools.kernel_pool = kernels::all_kernels();
  return pools;
}

/// Exhaustively tuned "kernel-auto" plan (the oracle the paper's trained
/// model approximates; see EXPERIMENTS.md on the auto strategy used).
inline core::Plan oracle_plan(const CsrMatrix<float>& a,
                              std::span<const float> x,
                              const core::CandidatePools& pools) {
  core::ExhaustiveOptions opts;
  opts.measure = {.warmup = 1, .reps = 5, .max_total_s = 0.5};
  return core::exhaustive_tune(clsim::default_engine(), a, x, pools, opts)
      .best_plan;
}

/// Backend-aware oracle: tune and stamp the plan on `backend` (see
/// exec/backend.hpp — the plan records the backend it was tuned for).
inline core::Plan oracle_plan(const CsrMatrix<float>& a,
                              std::span<const float> x,
                              const core::CandidatePools& pools,
                              const exec::Backend& backend) {
  core::ExhaustiveOptions opts;
  opts.measure = {.warmup = 1, .reps = 5, .max_total_s = 0.5};
  return core::exhaustive_tune(backend, a, x, pools, opts).best_plan;
}

}  // namespace spmv::bench

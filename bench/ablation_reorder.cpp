// Ablation: row sorting as a substitute for fine-grained (intra-bin)
// binning. Sorting rows by length makes adjacent rows similar, so the
// paper's coarse-grained virtual-row binning discriminates as sharply as
// the fine-grained scheme while keeping its O(rows/U) storage — at the
// price of a one-time permutation and a result scatter per SpMV.
#include <cstdio>

#include "bench_common.hpp"
#include "sparse/reorder.hpp"

using namespace spmv;
using namespace spmv::bench;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto rows = static_cast<index_t>(cli.get_int("rows", 300000));
  const auto pools = bench_pools(false);

  struct Input {
    const char* name;
    CsrMatrix<float> a;
  };
  Input inputs[] = {
      {"power-law graph", gen::power_law<float>(rows, rows, 2.0, 2000, 51)},
      {"mixed-regime (interleaved)",
       gen::mixed_regime<float>(rows, rows, 0.4, 0.35, 3, 40, 400,
                                /*run=*/1, 52)},
      {"mixed-regime (blocked)",
       gen::mixed_regime<float>(rows, rows, 0.4, 0.35, 3, 40, 400,
                                /*run=*/100, 53)},
  };

  std::printf("=== bench ablation_reorder (rows=%d) ===\n\n", rows);
  std::printf("%-28s %14s %14s %12s %16s\n", "input", "original[ms]",
              "sorted[ms]", "speedup", "occupied bins");
  rule(90);

  for (auto& in : inputs) {
    const auto x = random_x(static_cast<std::size_t>(in.a.cols()));
    std::vector<float> y(static_cast<std::size_t>(in.a.rows()));

    const auto plan_orig = oracle_plan(in.a, x, pools);
    const auto bins_orig = core::bins_for_plan(in.a, plan_orig);
    const double t_orig = time_spmv([&] {
      core::execute_plan(clsim::default_engine(), in.a,
                         std::span<const float>(x), std::span<float>(y),
                         bins_orig, plan_orig);
    });

    const auto perm = sort_rows_by_length(in.a);
    const auto sorted = permute_rows(in.a, perm);
    std::vector<float> y_perm(static_cast<std::size_t>(sorted.rows()));
    const auto plan_sorted = oracle_plan(sorted, x, pools);
    const auto bins_sorted = core::bins_for_plan(sorted, plan_sorted);
    // Sorted pipeline includes the per-SpMV scatter back to original order.
    const double t_sorted = time_spmv([&] {
      core::execute_plan(clsim::default_engine(), sorted,
                         std::span<const float>(x), std::span<float>(y_perm),
                         bins_sorted, plan_sorted);
      unpermute(std::span<const float>(y_perm), perm, std::span<float>(y));
    });

    std::printf("%-28s %14.3f %14.3f %11.2fx %7zu -> %-6zu\n", in.name,
                1e3 * t_orig, 1e3 * t_sorted, t_orig / t_sorted,
                bins_orig.occupied_bins().size(),
                bins_sorted.occupied_bins().size());
  }
  rule(90);
  std::printf(
      "expected shape: interleaved regimes gain from sorting (virtual rows "
      "become homogeneous);\nblocked regimes gain little (the paper's "
      "adjustable U already captures them).\n");
  return 0;
}

// Ablation (paper §II-C / §III-B design argument): the coarse-grained
// virtual-row scheme vs the fine-grained, hybrid, and single-bin
// alternatives — both the binning cost (time + stored entries) and the
// SpMV execution time with per-bin best kernels.
#include <cstdio>

#include "bench_common.hpp"

using namespace spmv;
using namespace spmv::bench;

namespace {

/// Per-bin best kernel over a BinnedMatrix, then the composed SpMV time.
double tuned_execution_time(const exec::Backend& backend,
                            const CsrMatrix<float>& a,
                            std::span<const float> x, std::span<float> y,
                            const binning::BinnedMatrix& binned) {
  struct Launch {
    const binning::BinSet* part;
    int bin;
    kernels::KernelId kernel;
  };
  std::vector<Launch> launches;
  for (const auto& part : binned.parts) {
    for (int b : part.occupied_bins()) {
      double best = std::numeric_limits<double>::infinity();
      kernels::KernelId best_id = kernels::KernelId::Serial;
      for (auto id : kernels::all_kernels()) {
        const double t = time_spmv(
            [&] {
              backend.run_binned(id, a, x, y, part.bin(b), part.unit());
            },
            {.warmup = 0, .reps = 2, .max_total_s = 0.2});
        if (t < best) {
          best = t;
          best_id = id;
        }
      }
      launches.push_back({&part, b, best_id});
    }
  }
  return time_spmv([&] {
    for (const auto& l : launches) {
      backend.run_binned(l.kernel, a, x, y, l.part->bin(l.bin),
                         l.part->unit());
    }
  });
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto rows = static_cast<index_t>(cli.get_int("rows", 300000));
  const auto unit = static_cast<index_t>(cli.get_int("unit", 100));
  const auto backend = exec::shared_backend(backend_from_cli(cli));

  std::printf("=== bench ablation_binning_schemes (rows=%d, U=%d, "
              "backend=%s) ===\n\n",
              rows, unit, exec::backend_cname(backend->kind()));

  struct Input {
    const char* name;
    CsrMatrix<float> a;
  };
  Input inputs[] = {
      {"mixed-regime",
       gen::mixed_regime<float>(rows, rows, 0.4, 0.4, 3, 40, 400, 100, 31)},
      {"power-law graph", gen::power_law<float>(rows, rows, 2.0, 2000, 32)},
      {"uniform short", gen::fixed_degree<float>(rows, rows, 4, 33)},
  };

  const std::vector<binning::SchemeKind> schemes = {
      binning::SchemeKind::Coarse, binning::SchemeKind::Fine,
      binning::SchemeKind::Hybrid, binning::SchemeKind::SingleBin};

  for (auto& in : inputs) {
    const auto x = random_x(static_cast<std::size_t>(in.a.cols()));
    std::vector<float> y(static_cast<std::size_t>(in.a.rows()));
    std::printf("input: %s (%d rows, %lld nnz)\n", in.name, in.a.rows(),
                static_cast<long long>(in.a.nnz()));
    std::printf("  %-12s %14s %16s %14s %12s\n", "scheme", "bin time[ms]",
                "stored entries", "spmv[ms]", "total[ms]");
    rule(76);
    for (auto kind : schemes) {
      binning::BinnedMatrix binned;
      const double t_bin = time_spmv(
          [&] { binned = binning::apply_scheme(in.a, kind, unit, 64); },
          {.warmup = 1, .reps = 3, .max_total_s = 3.0});
      const double t_spmv =
          tuned_execution_time(*backend, in.a, std::span<const float>(x),
                               std::span<float>(y), binned);
      std::printf("  %-12s %14.3f %16zu %14.3f %12.3f\n",
                  binning::scheme_name(kind).c_str(), 1e3 * t_bin,
                  binned.stored_entries(), 1e3 * t_spmv,
                  1e3 * (t_bin + t_spmv));
    }
    std::printf("\n");
  }
  std::printf(
      "expected shape: fine pays ~Ux the binning cost and storage of "
      "coarse; coarse matches or beats\nsingle-bin on mixed inputs; "
      "single-bin suffices on uniform inputs (paper §IV-C).\n");
  return 0;
}

file(REMOVE_RECURSE
  "CMakeFiles/test_ml_ruleset.dir/test_ml_ruleset.cpp.o"
  "CMakeFiles/test_ml_ruleset.dir/test_ml_ruleset.cpp.o.d"
  "test_ml_ruleset"
  "test_ml_ruleset.pdb"
  "test_ml_ruleset[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_ruleset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

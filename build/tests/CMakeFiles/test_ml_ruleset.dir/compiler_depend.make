# Empty compiler generated dependencies file for test_ml_ruleset.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_mm_io.dir/test_mm_io.cpp.o"
  "CMakeFiles/test_mm_io.dir/test_mm_io.cpp.o.d"
  "test_mm_io"
  "test_mm_io.pdb"
  "test_mm_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mm_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

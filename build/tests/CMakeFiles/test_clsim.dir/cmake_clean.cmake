file(REMOVE_RECURSE
  "CMakeFiles/test_clsim.dir/test_clsim.cpp.o"
  "CMakeFiles/test_clsim.dir/test_clsim.cpp.o.d"
  "test_clsim"
  "test_clsim.pdb"
  "test_clsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_ml_boosting.dir/test_ml_boosting.cpp.o"
  "CMakeFiles/test_ml_boosting.dir/test_ml_boosting.cpp.o.d"
  "test_ml_boosting"
  "test_ml_boosting.pdb"
  "test_ml_boosting[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_boosting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_ml_boosting.
# This may be replaced when dependencies are built.

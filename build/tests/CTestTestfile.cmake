# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_sparse[1]_include.cmake")
include("/root/repo/build/tests/test_mm_io[1]_include.cmake")
include("/root/repo/build/tests/test_ell[1]_include.cmake")
include("/root/repo/build/tests/test_stats_features[1]_include.cmake")
include("/root/repo/build/tests/test_gen[1]_include.cmake")
include("/root/repo/build/tests/test_clsim[1]_include.cmake")
include("/root/repo/build/tests/test_thread_pool[1]_include.cmake")
include("/root/repo/build/tests/test_binning[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_ml_tree[1]_include.cmake")
include("/root/repo/build/tests/test_ml_ruleset[1]_include.cmake")
include("/root/repo/build/tests/test_ml_boosting[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_trainer[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")

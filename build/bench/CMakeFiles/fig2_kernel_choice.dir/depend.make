# Empty dependencies file for fig2_kernel_choice.
# This may be replaced when dependencies are built.

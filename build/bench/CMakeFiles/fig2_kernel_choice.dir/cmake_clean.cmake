file(REMOVE_RECURSE
  "CMakeFiles/fig2_kernel_choice.dir/fig2_kernel_choice.cpp.o"
  "CMakeFiles/fig2_kernel_choice.dir/fig2_kernel_choice.cpp.o.d"
  "fig2_kernel_choice"
  "fig2_kernel_choice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_kernel_choice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

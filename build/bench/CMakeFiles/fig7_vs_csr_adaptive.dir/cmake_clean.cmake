file(REMOVE_RECURSE
  "CMakeFiles/fig7_vs_csr_adaptive.dir/fig7_vs_csr_adaptive.cpp.o"
  "CMakeFiles/fig7_vs_csr_adaptive.dir/fig7_vs_csr_adaptive.cpp.o.d"
  "fig7_vs_csr_adaptive"
  "fig7_vs_csr_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_vs_csr_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

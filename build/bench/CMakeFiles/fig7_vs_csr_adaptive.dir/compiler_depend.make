# Empty compiler generated dependencies file for fig7_vs_csr_adaptive.
# This may be replaced when dependencies are built.

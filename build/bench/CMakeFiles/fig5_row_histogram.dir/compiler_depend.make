# Empty compiler generated dependencies file for fig5_row_histogram.
# This may be replaced when dependencies are built.

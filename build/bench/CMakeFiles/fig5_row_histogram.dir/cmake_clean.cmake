file(REMOVE_RECURSE
  "CMakeFiles/fig5_row_histogram.dir/fig5_row_histogram.cpp.o"
  "CMakeFiles/fig5_row_histogram.dir/fig5_row_histogram.cpp.o.d"
  "fig5_row_histogram"
  "fig5_row_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_row_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

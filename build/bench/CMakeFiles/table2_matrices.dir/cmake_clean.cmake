file(REMOVE_RECURSE
  "CMakeFiles/table2_matrices.dir/table2_matrices.cpp.o"
  "CMakeFiles/table2_matrices.dir/table2_matrices.cpp.o.d"
  "table2_matrices"
  "table2_matrices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_matrices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for table2_matrices.
# This may be replaced when dependencies are built.

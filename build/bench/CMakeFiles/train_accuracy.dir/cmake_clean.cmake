file(REMOVE_RECURSE
  "CMakeFiles/train_accuracy.dir/train_accuracy.cpp.o"
  "CMakeFiles/train_accuracy.dir/train_accuracy.cpp.o.d"
  "train_accuracy"
  "train_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for train_accuracy.
# This may be replaced when dependencies are built.

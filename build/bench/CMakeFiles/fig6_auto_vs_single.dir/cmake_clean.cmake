file(REMOVE_RECURSE
  "CMakeFiles/fig6_auto_vs_single.dir/fig6_auto_vs_single.cpp.o"
  "CMakeFiles/fig6_auto_vs_single.dir/fig6_auto_vs_single.cpp.o.d"
  "fig6_auto_vs_single"
  "fig6_auto_vs_single.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_auto_vs_single.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

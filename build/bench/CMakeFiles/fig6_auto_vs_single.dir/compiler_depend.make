# Empty compiler generated dependencies file for fig6_auto_vs_single.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig9_single_bin.dir/fig9_single_bin.cpp.o"
  "CMakeFiles/fig9_single_bin.dir/fig9_single_bin.cpp.o.d"
  "fig9_single_bin"
  "fig9_single_bin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_single_bin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

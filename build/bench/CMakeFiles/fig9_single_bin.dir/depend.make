# Empty dependencies file for fig9_single_bin.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_merge_kernel.dir/ablation_merge_kernel.cpp.o"
  "CMakeFiles/ablation_merge_kernel.dir/ablation_merge_kernel.cpp.o.d"
  "ablation_merge_kernel"
  "ablation_merge_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_merge_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ablation_merge_kernel.
# This may be replaced when dependencies are built.

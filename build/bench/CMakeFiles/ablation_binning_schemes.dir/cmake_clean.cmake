file(REMOVE_RECURSE
  "CMakeFiles/ablation_binning_schemes.dir/ablation_binning_schemes.cpp.o"
  "CMakeFiles/ablation_binning_schemes.dir/ablation_binning_schemes.cpp.o.d"
  "ablation_binning_schemes"
  "ablation_binning_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_binning_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ablation_binning_schemes.
# This may be replaced when dependencies are built.

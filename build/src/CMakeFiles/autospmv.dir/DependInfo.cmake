
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/csr_adaptive.cpp" "src/CMakeFiles/autospmv.dir/baseline/csr_adaptive.cpp.o" "gcc" "src/CMakeFiles/autospmv.dir/baseline/csr_adaptive.cpp.o.d"
  "/root/repo/src/baseline/merge_spmv.cpp" "src/CMakeFiles/autospmv.dir/baseline/merge_spmv.cpp.o" "gcc" "src/CMakeFiles/autospmv.dir/baseline/merge_spmv.cpp.o.d"
  "/root/repo/src/binning/binning.cpp" "src/CMakeFiles/autospmv.dir/binning/binning.cpp.o" "gcc" "src/CMakeFiles/autospmv.dir/binning/binning.cpp.o.d"
  "/root/repo/src/binning/schemes.cpp" "src/CMakeFiles/autospmv.dir/binning/schemes.cpp.o" "gcc" "src/CMakeFiles/autospmv.dir/binning/schemes.cpp.o.d"
  "/root/repo/src/clsim/device.cpp" "src/CMakeFiles/autospmv.dir/clsim/device.cpp.o" "gcc" "src/CMakeFiles/autospmv.dir/clsim/device.cpp.o.d"
  "/root/repo/src/clsim/engine.cpp" "src/CMakeFiles/autospmv.dir/clsim/engine.cpp.o" "gcc" "src/CMakeFiles/autospmv.dir/clsim/engine.cpp.o.d"
  "/root/repo/src/clsim/thread_pool.cpp" "src/CMakeFiles/autospmv.dir/clsim/thread_pool.cpp.o" "gcc" "src/CMakeFiles/autospmv.dir/clsim/thread_pool.cpp.o.d"
  "/root/repo/src/core/auto_spmv.cpp" "src/CMakeFiles/autospmv.dir/core/auto_spmv.cpp.o" "gcc" "src/CMakeFiles/autospmv.dir/core/auto_spmv.cpp.o.d"
  "/root/repo/src/core/candidates.cpp" "src/CMakeFiles/autospmv.dir/core/candidates.cpp.o" "gcc" "src/CMakeFiles/autospmv.dir/core/candidates.cpp.o.d"
  "/root/repo/src/core/exhaustive.cpp" "src/CMakeFiles/autospmv.dir/core/exhaustive.cpp.o" "gcc" "src/CMakeFiles/autospmv.dir/core/exhaustive.cpp.o.d"
  "/root/repo/src/core/hetero.cpp" "src/CMakeFiles/autospmv.dir/core/hetero.cpp.o" "gcc" "src/CMakeFiles/autospmv.dir/core/hetero.cpp.o.d"
  "/root/repo/src/core/model_io.cpp" "src/CMakeFiles/autospmv.dir/core/model_io.cpp.o" "gcc" "src/CMakeFiles/autospmv.dir/core/model_io.cpp.o.d"
  "/root/repo/src/core/predictor.cpp" "src/CMakeFiles/autospmv.dir/core/predictor.cpp.o" "gcc" "src/CMakeFiles/autospmv.dir/core/predictor.cpp.o.d"
  "/root/repo/src/core/trainer.cpp" "src/CMakeFiles/autospmv.dir/core/trainer.cpp.o" "gcc" "src/CMakeFiles/autospmv.dir/core/trainer.cpp.o.d"
  "/root/repo/src/gen/corpus.cpp" "src/CMakeFiles/autospmv.dir/gen/corpus.cpp.o" "gcc" "src/CMakeFiles/autospmv.dir/gen/corpus.cpp.o.d"
  "/root/repo/src/gen/generators.cpp" "src/CMakeFiles/autospmv.dir/gen/generators.cpp.o" "gcc" "src/CMakeFiles/autospmv.dir/gen/generators.cpp.o.d"
  "/root/repo/src/gen/representative.cpp" "src/CMakeFiles/autospmv.dir/gen/representative.cpp.o" "gcc" "src/CMakeFiles/autospmv.dir/gen/representative.cpp.o.d"
  "/root/repo/src/kernels/kernel_serial.cpp" "src/CMakeFiles/autospmv.dir/kernels/kernel_serial.cpp.o" "gcc" "src/CMakeFiles/autospmv.dir/kernels/kernel_serial.cpp.o.d"
  "/root/repo/src/kernels/kernel_subvector.cpp" "src/CMakeFiles/autospmv.dir/kernels/kernel_subvector.cpp.o" "gcc" "src/CMakeFiles/autospmv.dir/kernels/kernel_subvector.cpp.o.d"
  "/root/repo/src/kernels/kernel_vector.cpp" "src/CMakeFiles/autospmv.dir/kernels/kernel_vector.cpp.o" "gcc" "src/CMakeFiles/autospmv.dir/kernels/kernel_vector.cpp.o.d"
  "/root/repo/src/kernels/reference.cpp" "src/CMakeFiles/autospmv.dir/kernels/reference.cpp.o" "gcc" "src/CMakeFiles/autospmv.dir/kernels/reference.cpp.o.d"
  "/root/repo/src/kernels/registry.cpp" "src/CMakeFiles/autospmv.dir/kernels/registry.cpp.o" "gcc" "src/CMakeFiles/autospmv.dir/kernels/registry.cpp.o.d"
  "/root/repo/src/ml/boosting.cpp" "src/CMakeFiles/autospmv.dir/ml/boosting.cpp.o" "gcc" "src/CMakeFiles/autospmv.dir/ml/boosting.cpp.o.d"
  "/root/repo/src/ml/dataset.cpp" "src/CMakeFiles/autospmv.dir/ml/dataset.cpp.o" "gcc" "src/CMakeFiles/autospmv.dir/ml/dataset.cpp.o.d"
  "/root/repo/src/ml/decision_tree.cpp" "src/CMakeFiles/autospmv.dir/ml/decision_tree.cpp.o" "gcc" "src/CMakeFiles/autospmv.dir/ml/decision_tree.cpp.o.d"
  "/root/repo/src/ml/features.cpp" "src/CMakeFiles/autospmv.dir/ml/features.cpp.o" "gcc" "src/CMakeFiles/autospmv.dir/ml/features.cpp.o.d"
  "/root/repo/src/ml/ruleset.cpp" "src/CMakeFiles/autospmv.dir/ml/ruleset.cpp.o" "gcc" "src/CMakeFiles/autospmv.dir/ml/ruleset.cpp.o.d"
  "/root/repo/src/sparse/convert.cpp" "src/CMakeFiles/autospmv.dir/sparse/convert.cpp.o" "gcc" "src/CMakeFiles/autospmv.dir/sparse/convert.cpp.o.d"
  "/root/repo/src/sparse/coo.cpp" "src/CMakeFiles/autospmv.dir/sparse/coo.cpp.o" "gcc" "src/CMakeFiles/autospmv.dir/sparse/coo.cpp.o.d"
  "/root/repo/src/sparse/csr.cpp" "src/CMakeFiles/autospmv.dir/sparse/csr.cpp.o" "gcc" "src/CMakeFiles/autospmv.dir/sparse/csr.cpp.o.d"
  "/root/repo/src/sparse/ell.cpp" "src/CMakeFiles/autospmv.dir/sparse/ell.cpp.o" "gcc" "src/CMakeFiles/autospmv.dir/sparse/ell.cpp.o.d"
  "/root/repo/src/sparse/matrix_stats.cpp" "src/CMakeFiles/autospmv.dir/sparse/matrix_stats.cpp.o" "gcc" "src/CMakeFiles/autospmv.dir/sparse/matrix_stats.cpp.o.d"
  "/root/repo/src/sparse/mm_io.cpp" "src/CMakeFiles/autospmv.dir/sparse/mm_io.cpp.o" "gcc" "src/CMakeFiles/autospmv.dir/sparse/mm_io.cpp.o.d"
  "/root/repo/src/sparse/reorder.cpp" "src/CMakeFiles/autospmv.dir/sparse/reorder.cpp.o" "gcc" "src/CMakeFiles/autospmv.dir/sparse/reorder.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "src/CMakeFiles/autospmv.dir/util/cli.cpp.o" "gcc" "src/CMakeFiles/autospmv.dir/util/cli.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/autospmv.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/autospmv.dir/util/log.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/autospmv.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/autospmv.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/autospmv.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/autospmv.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/timer.cpp" "src/CMakeFiles/autospmv.dir/util/timer.cpp.o" "gcc" "src/CMakeFiles/autospmv.dir/util/timer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

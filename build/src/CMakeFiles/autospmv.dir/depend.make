# Empty dependencies file for autospmv.
# This may be replaced when dependencies are built.

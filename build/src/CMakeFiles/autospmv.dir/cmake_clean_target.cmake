file(REMOVE_RECURSE
  "libautospmv.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/format_overhead.dir/format_overhead.cpp.o"
  "CMakeFiles/format_overhead.dir/format_overhead.cpp.o.d"
  "format_overhead"
  "format_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/format_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for format_overhead.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for feature_inspector.
# This may be replaced when dependencies are built.

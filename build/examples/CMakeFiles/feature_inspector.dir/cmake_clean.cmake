file(REMOVE_RECURSE
  "CMakeFiles/feature_inspector.dir/feature_inspector.cpp.o"
  "CMakeFiles/feature_inspector.dir/feature_inspector.cpp.o.d"
  "feature_inspector"
  "feature_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for spmv_tool.
# This may be replaced when dependencies are built.

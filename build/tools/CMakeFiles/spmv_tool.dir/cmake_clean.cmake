file(REMOVE_RECURSE
  "CMakeFiles/spmv_tool.dir/spmv_tool.cpp.o"
  "CMakeFiles/spmv_tool.dir/spmv_tool.cpp.o.d"
  "spmv_tool"
  "spmv_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmv_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Unit + property tests for src/sparse: COO, CSR, conversions.
#include <gtest/gtest.h>

#include <vector>

#include "gen/generators.hpp"
#include "sparse/convert.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "util/rng.hpp"

namespace {

using namespace spmv;

CooMatrix<double> example_coo() {
  // The paper's Figure-1 matrix:
  //   1 6 0 0
  //   3 0 2 0
  //   0 4 0 0
  //   0 5 8 1
  CooMatrix<double> coo(4, 4);
  coo.add(0, 0, 1);
  coo.add(0, 1, 6);
  coo.add(1, 0, 3);
  coo.add(1, 2, 2);
  coo.add(2, 1, 4);
  coo.add(3, 1, 5);
  coo.add(3, 2, 8);
  coo.add(3, 3, 1);
  return coo;
}

TEST(Coo, BasicAccounting) {
  const auto coo = example_coo();
  EXPECT_EQ(coo.rows(), 4);
  EXPECT_EQ(coo.cols(), 4);
  EXPECT_EQ(coo.nnz(), 8u);
  EXPECT_TRUE(coo.validate());
}

TEST(Coo, SortRowMajor) {
  CooMatrix<double> coo(3, 3);
  coo.add(2, 1, 1);
  coo.add(0, 2, 2);
  coo.add(0, 0, 3);
  coo.add(1, 1, 4);
  coo.sort_row_major();
  EXPECT_TRUE(coo.is_canonical());
  EXPECT_EQ(coo.entries()[0].row, 0);
  EXPECT_EQ(coo.entries()[0].col, 0);
  EXPECT_EQ(coo.entries()[3].row, 2);
}

TEST(Coo, CoalesceSumsDuplicates) {
  CooMatrix<double> coo(2, 2);
  coo.add(0, 0, 1);
  coo.add(0, 0, 2);
  coo.add(1, 1, 5);
  coo.add(0, 0, 4);
  coo.coalesce();
  ASSERT_EQ(coo.nnz(), 2u);
  EXPECT_DOUBLE_EQ(coo.entries()[0].value, 7.0);
  EXPECT_DOUBLE_EQ(coo.entries()[1].value, 5.0);
  EXPECT_TRUE(coo.is_canonical());
}

TEST(Coo, ValidateCatchesOutOfRange) {
  CooMatrix<double> coo(2, 2);
  coo.add(2, 0, 1.0);
  EXPECT_FALSE(coo.validate());
  CooMatrix<double> coo2(2, 2);
  coo2.add(0, -1, 1.0);
  EXPECT_FALSE(coo2.validate());
}

TEST(Coo, IsCanonicalDetectsDuplicates) {
  CooMatrix<double> coo(2, 2);
  coo.add(0, 0, 1.0);
  coo.add(0, 0, 2.0);
  EXPECT_FALSE(coo.is_canonical());
}

TEST(Csr, Figure1Layout) {
  // Expected CSR of the paper's Figure-1 matrix.
  const auto csr = coo_to_csr(example_coo());
  const std::vector<offset_t> row_ptr = {0, 2, 4, 5, 8};
  const std::vector<index_t> col_idx = {0, 1, 0, 2, 1, 1, 2, 3};
  const std::vector<double> vals = {1, 6, 3, 2, 4, 5, 8, 1};
  EXPECT_EQ(std::vector<offset_t>(csr.row_ptr().begin(), csr.row_ptr().end()),
            row_ptr);
  EXPECT_EQ(std::vector<index_t>(csr.col_idx().begin(), csr.col_idx().end()),
            col_idx);
  EXPECT_EQ(std::vector<double>(csr.vals().begin(), csr.vals().end()), vals);
  EXPECT_EQ(csr.nnz(), 8);
  EXPECT_EQ(csr.row_nnz(0), 2);
  EXPECT_EQ(csr.row_nnz(2), 1);
}

TEST(Csr, ConstructorRejectsBadShapes) {
  EXPECT_THROW(CsrMatrix<double>(2, 2, {0, 1}, {0}, {1.0}),
               std::invalid_argument);  // row_ptr too short
  EXPECT_THROW(CsrMatrix<double>(1, 1, {0, 2}, {0}, {1.0}),
               std::invalid_argument);  // back() != nnz
  EXPECT_THROW(CsrMatrix<double>(1, 1, {0, 1}, {0}, {1.0, 2.0}),
               std::invalid_argument);  // col/val mismatch
}

TEST(Csr, ValidateCatchesBadColumns) {
  CsrMatrix<double> bad(1, 1, {0, 1}, {5}, {1.0});
  std::string why;
  EXPECT_FALSE(bad.validate(&why));
  EXPECT_FALSE(why.empty());
}

TEST(Csr, ValidateCatchesNonMonotoneRowPtr) {
  CsrMatrix<double> m(2, 2, {0, 2, 2}, {0, 1}, {1.0, 2.0});
  EXPECT_TRUE(m.validate());
  // Build a broken one through the (unchecked) validate path.
  std::vector<offset_t> row_ptr = {0, 2, 1};
  EXPECT_THROW(CsrMatrix<double>(2, 2, row_ptr, {0}, {1.0}),
               std::invalid_argument);
}

TEST(Csr, EmptyMatrix) {
  CsrMatrix<double> empty;
  EXPECT_EQ(empty.rows(), 0);
  EXPECT_EQ(empty.nnz(), 0);
  EXPECT_TRUE(empty.validate());
}

TEST(Csr, InstanceIdIdentifiesValuesBinding) {
  // The id binds "this object with these values". Layout caches key by it,
  // so it must be unique per instance, survive moves (the buffers travel),
  // and be re-issued whenever the values could diverge (copies, mutable
  // access) — and never be recycled, unlike a freed buffer's address.
  CsrMatrix<double> a(2, 2, {0, 1, 2}, {0, 1}, {1.0, 2.0});
  CsrMatrix<double> b(2, 2, {0, 1, 2}, {0, 1}, {1.0, 2.0});
  EXPECT_NE(a.instance_id(), 0u);
  EXPECT_NE(a.instance_id(), b.instance_id());  // same content, distinct ids

  const auto stable = a.instance_id();
  EXPECT_EQ(a.instance_id(), stable);  // const reads never change it
  (void)a.vals();
  EXPECT_EQ(a.instance_id(), stable);

  CsrMatrix<double> copy = a;  // a copy's values can diverge later
  EXPECT_NE(copy.instance_id(), stable);
  b = a;
  EXPECT_NE(b.instance_id(), stable);
  EXPECT_NE(b.instance_id(), copy.instance_id());

  CsrMatrix<double> moved = std::move(copy);  // buffers move, id follows
  const auto copy_id = moved.instance_id();
  EXPECT_NE(copy_id, stable);
  EXPECT_NE(copy.instance_id(), copy_id);  // moved-from shell is re-issued

  (void)a.vals_mutable();  // write access: values may have changed
  EXPECT_NE(a.instance_id(), stable);
}

TEST(Csr, BytesAccountsArrays) {
  const auto csr = coo_to_csr(example_coo());
  EXPECT_EQ(csr.bytes(), 5 * sizeof(offset_t) + 8 * sizeof(index_t) +
                             8 * sizeof(double));
}

TEST(Convert, CooCsrRoundTrip) {
  const auto coo = example_coo();
  const auto csr = coo_to_csr(coo);
  auto back = csr_to_coo(csr);
  back.sort_row_major();
  auto orig = coo;
  orig.sort_row_major();
  EXPECT_EQ(back.entries(), orig.entries());
}

TEST(Convert, RejectsInvalidCoo) {
  CooMatrix<double> coo(2, 2);
  coo.add(5, 0, 1.0);
  EXPECT_THROW(coo_to_csr(std::move(coo)), std::invalid_argument);
}

TEST(Convert, EmptyRowsPreserved) {
  CooMatrix<double> coo(5, 5);
  coo.add(1, 1, 2.0);
  coo.add(4, 0, 3.0);
  const auto csr = coo_to_csr(std::move(coo));
  EXPECT_EQ(csr.row_nnz(0), 0);
  EXPECT_EQ(csr.row_nnz(1), 1);
  EXPECT_EQ(csr.row_nnz(2), 0);
  EXPECT_EQ(csr.row_nnz(3), 0);
  EXPECT_EQ(csr.row_nnz(4), 1);
}

TEST(Convert, TransposeTwiceIsIdentity) {
  const auto a = gen::random_uniform<double>(50, 70, 5.0, 0.5, 1, 20, 99);
  const auto t = transpose(a);
  EXPECT_EQ(t.rows(), 70);
  EXPECT_EQ(t.cols(), 50);
  EXPECT_EQ(t.nnz(), a.nnz());
  EXPECT_TRUE(t.validate());
  const auto tt = transpose(t);
  EXPECT_EQ(tt, a);
}

TEST(Convert, TransposeMovesEntries) {
  const auto csr = coo_to_csr(example_coo());
  const auto t = transpose(csr);
  // A[3][1] == 5 must become T[1][3] == 5.
  bool found = false;
  const auto row_ptr = t.row_ptr();
  for (offset_t j = row_ptr[1]; j < row_ptr[2]; ++j) {
    if (t.col_idx()[static_cast<std::size_t>(j)] == 3) {
      EXPECT_DOUBLE_EQ(t.vals()[static_cast<std::size_t>(j)], 5.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Convert, ValueTypeConversion) {
  const auto d = coo_to_csr(example_coo());
  const auto f = convert_values<float>(d);
  EXPECT_EQ(f.rows(), d.rows());
  EXPECT_EQ(f.nnz(), d.nnz());
  EXPECT_FLOAT_EQ(f.vals()[1], 6.0f);
  const auto d2 = convert_values<double>(f);
  EXPECT_EQ(d2, d);
}

// Property: random COO -> CSR preserves the multiset of entries and
// produces a valid structure, across sizes.
class CooCsrProperty : public ::testing::TestWithParam<int> {};

TEST_P(CooCsrProperty, RoundTripRandom) {
  const int n = GetParam();
  spmv::util::Xoshiro256 rng(static_cast<std::uint64_t>(n));
  CooMatrix<double> coo(n, n + 3);
  const int entries = 4 * n;
  for (int k = 0; k < entries; ++k) {
    coo.add(static_cast<index_t>(rng.bounded(static_cast<std::uint64_t>(n))),
            static_cast<index_t>(rng.bounded(static_cast<std::uint64_t>(n + 3))),
            rng.uniform());
  }
  auto expected = coo;  // copy before the move
  const auto csr = coo_to_csr(std::move(coo));
  EXPECT_TRUE(csr.validate());
  expected.coalesce();
  EXPECT_EQ(csr.nnz(), static_cast<offset_t>(expected.nnz()));
  auto back = csr_to_coo(csr);
  back.sort_row_major();
  EXPECT_EQ(back.entries(), expected.entries());
}

INSTANTIATE_TEST_SUITE_P(Sizes, CooCsrProperty,
                         ::testing::Values(1, 2, 7, 33, 100, 257, 1000));

}  // namespace

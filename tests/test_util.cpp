// Unit tests for src/util: timing, RNG, statistics, CLI parsing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace {

using namespace spmv::util;

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double ms = t.elapsed_ms();
  EXPECT_GE(ms, 15.0);
  EXPECT_LT(ms, 2000.0);
}

TEST(Timer, ResetRestartsClock) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  t.reset();
  EXPECT_LT(t.elapsed_ms(), 10.0);
}

TEST(Timer, UnitsAreConsistent) {
  Timer t;
  const double s = t.elapsed_s();
  const double us = t.elapsed_us();
  EXPECT_GE(us, s * 1e6);  // us sampled after s
}

TEST(Measure, RunsRequestedReps) {
  int calls = 0;
  const auto r = measure([&] { ++calls; }, {.warmup = 2, .reps = 5,
                                            .max_total_s = 10.0});
  EXPECT_EQ(calls, 7);  // 2 warmup + 5 timed
  EXPECT_EQ(r.reps, 5);
  EXPECT_LE(r.best_s, r.mean_s + 1e-12);
}

TEST(Measure, AlwaysRunsAtLeastOnce) {
  int calls = 0;
  const auto r = measure(
      [&] {
        ++calls;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      },
      {.warmup = 0, .reps = 100, .max_total_s = 0.0});
  EXPECT_GE(calls, 1);
  EXPECT_GE(r.reps, 1);
  EXPECT_LT(r.reps, 100);  // budget cut it short
}

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256, IsDeterministic) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, UniformInUnitInterval) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256, UniformRangeRespectsBounds) {
  Xoshiro256 rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 7.25);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 7.25);
  }
}

TEST(Xoshiro256, BoundedIsInRange) {
  Xoshiro256 rng(5);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1048576ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.bounded(bound), bound);
  }
}

TEST(Xoshiro256, BoundedOneAlwaysZero) {
  Xoshiro256 rng(6);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Xoshiro256, BoundedCoversAllValues) {
  Xoshiro256 rng(8);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.bounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Xoshiro256, RangeInclusive) {
  Xoshiro256 rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Xoshiro256, NormalHasRoughlyStandardMoments) {
  Xoshiro256 rng(10);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.05);
}

TEST(Xoshiro256, ZipfStaysInRangeAndIsSkewed) {
  Xoshiro256 rng(11);
  std::uint64_t ones = 0;
  for (int i = 0; i < 20000; ++i) {
    const auto v = rng.zipf(100, 2.0);
    ASSERT_GE(v, 1u);
    ASSERT_LE(v, 100u);
    if (v == 1) ++ones;
  }
  // With s=2 the mass at 1 is ~61%; verify heavy skew toward small values.
  EXPECT_GT(ones, 10000u);
}

TEST(Xoshiro256, ZipfDegenerateN) {
  Xoshiro256 rng(12);
  EXPECT_EQ(rng.zipf(1, 2.0), 1u);
}

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0};
  RunningStats stats;
  for (double x : xs) stats.add(x);
  const double mean = (1 + 2 + 4 + 8 + 16) / 5.0;
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= 5.0;
  EXPECT_EQ(stats.count(), 5u);
  EXPECT_DOUBLE_EQ(stats.mean(), mean);
  EXPECT_NEAR(stats.variance(), var, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 16.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, SampleVarianceUsesNMinusOne) {
  RunningStats stats;
  stats.add(1.0);
  EXPECT_EQ(stats.sample_variance(), 0.0);
  stats.add(3.0);
  EXPECT_NEAR(stats.sample_variance(), 2.0, 1e-12);
  EXPECT_NEAR(stats.variance(), 1.0, 1e-12);
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h({0, 10, 100});
  h.add(0);
  h.add(9);
  h.add(10);
  h.add(99);
  h.add(100);   // overflow bucket
  h.add(5000);  // overflow bucket
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_DOUBLE_EQ(h.fraction_below(100), 4.0 / 6.0);
  EXPECT_DOUBLE_EQ(h.fraction_below(10), 2.0 / 6.0);
}

TEST(Histogram, WeightedAdd) {
  Histogram h({0, 10});
  h.add(3, 7);
  h.add(12, 3);
  EXPECT_EQ(h.total(), 10u);
  EXPECT_EQ(h.bucket(0), 7u);
  EXPECT_DOUBLE_EQ(h.fraction_below(10), 0.7);
}

TEST(Histogram, RejectsBadEdges) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({5, 3}), std::invalid_argument);
}

TEST(Stats, GeometricMean) {
  const std::vector<double> v = {1.0, 4.0, 16.0};
  EXPECT_NEAR(geometric_mean(v), 4.0, 1e-12);
  EXPECT_EQ(geometric_mean({}), 0.0);
}

TEST(Stats, Median) {
  const std::vector<double> odd = {5.0, 1.0, 3.0};
  const std::vector<double> even = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(odd), 3.0);
  EXPECT_DOUBLE_EQ(median(even), 2.5);
  EXPECT_EQ(median({}), 0.0);
}

TEST(Cli, ParsesFlagsAndPositional) {
  const char* argv[] = {"prog",         "--alpha=3", "--beta",
                        "7",            "pos1",      "--delta=x y",
                        "--gamma"};
  Cli cli(7, argv);
  EXPECT_EQ(cli.get_int("alpha", 0), 3);
  EXPECT_EQ(cli.get_int("beta", 0), 7);
  EXPECT_TRUE(cli.get_bool("gamma", false));  // bare trailing flag
  EXPECT_EQ(cli.get("delta"), "x y");
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
}

TEST(Cli, FallbacksWhenMissing) {
  const char* argv[] = {"prog"};
  Cli cli(1, argv);
  EXPECT_FALSE(cli.has("nope"));
  EXPECT_EQ(cli.get("nope", "def"), "def");
  EXPECT_EQ(cli.get_int("nope", 42), 42);
  EXPECT_DOUBLE_EQ(cli.get_double("nope", 2.5), 2.5);
  EXPECT_TRUE(cli.get_bool("nope", true));
}

TEST(Cli, BooleanSpellings) {
  const char* argv[] = {"prog", "--a=true", "--b=1", "--c=yes", "--d=false"};
  Cli cli(5, argv);
  EXPECT_TRUE(cli.get_bool("a", false));
  EXPECT_TRUE(cli.get_bool("b", false));
  EXPECT_TRUE(cli.get_bool("c", false));
  EXPECT_FALSE(cli.get_bool("d", true));
}

}  // namespace

// Tests for the clsim work-group execution engine: coverage, local memory,
// error handling, device description.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "clsim/engine.hpp"

namespace {

using namespace spmv::clsim;

TEST(Device, ResolvedComputeUnitsPositive) {
  Device d;
  EXPECT_GE(d.resolved_compute_units(), 1);
  d.compute_units = 3;
  EXPECT_EQ(d.resolved_compute_units(), 3);
}

TEST(Device, DefaultsMirrorPaperPlatform) {
  const Device& d = default_device();
  EXPECT_EQ(d.max_group_size, 256);
  EXPECT_EQ(d.local_mem_bytes, 32u * 1024u);
}

TEST(Engine, LaunchesEveryGroupExactlyOnce) {
  Engine engine;
  constexpr std::size_t kGroups = 1000;
  std::vector<std::atomic<int>> counts(kGroups);
  for (auto& c : counts) c.store(0);
  engine.launch({.num_groups = kGroups, .group_size = 256},
                [&](WorkGroup& wg) { counts[wg.group_id()]++; });
  for (std::size_t g = 0; g < kGroups; ++g) {
    EXPECT_EQ(counts[g].load(), 1) << "group " << g;
  }
}

TEST(Engine, ZeroGroupsIsNoOp) {
  Engine engine;
  bool ran = false;
  engine.launch({.num_groups = 0}, [&](WorkGroup&) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(Engine, GroupSizeVisibleInKernel) {
  Engine engine;
  std::atomic<int> bad{0};
  engine.launch({.num_groups = 10, .group_size = 64}, [&](WorkGroup& wg) {
    if (wg.group_size() != 64) bad++;
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(Engine, RejectsOversizedGroups) {
  Engine engine;
  EXPECT_THROW(
      engine.launch({.num_groups = 1, .group_size = 512}, [](WorkGroup&) {}),
      std::invalid_argument);
  EXPECT_THROW(
      engine.launch({.num_groups = 1, .group_size = 0}, [](WorkGroup&) {}),
      std::invalid_argument);
}

TEST(Engine, KernelExceptionsPropagate) {
  Engine engine;
  EXPECT_THROW(engine.launch({.num_groups = 100},
                             [](WorkGroup& wg) {
                               if (wg.group_id() == 57)
                                 throw std::runtime_error("boom");
                             }),
               std::runtime_error);
}

TEST(Engine, LocalArrayIsWritablePerGroup) {
  Engine engine;
  std::vector<std::int64_t> sums(64, -1);
  engine.launch({.num_groups = 64}, [&](WorkGroup& wg) {
    auto buf = wg.local_array<std::int64_t>(128);
    for (std::size_t i = 0; i < buf.size(); ++i) {
      buf[i] = static_cast<std::int64_t>(i) +
               static_cast<std::int64_t>(wg.group_id());
    }
    sums[wg.group_id()] = std::accumulate(buf.begin(), buf.end(),
                                          std::int64_t{0});
  });
  for (std::size_t g = 0; g < 64; ++g) {
    const auto expected = 128 * 127 / 2 + 128 * static_cast<std::int64_t>(g);
    EXPECT_EQ(sums[g], expected);
  }
}

TEST(Engine, LocalMemoryLimitEnforced) {
  Device tiny;
  tiny.local_mem_bytes = 64;
  Engine engine(tiny);
  EXPECT_THROW(engine.launch({.num_groups = 1},
                             [](WorkGroup& wg) {
                               (void)wg.local_array<double>(100);
                             }),
               std::bad_alloc);
}

TEST(Engine, ArenaResetBetweenGroupsOnSameThread) {
  // Each group allocates nearly the whole arena; if reset were missing,
  // the second group on a thread would throw bad_alloc.
  Device d;
  d.compute_units = 1;  // force all groups onto one thread/arena
  d.local_mem_bytes = 1024;
  Engine engine(d);
  EXPECT_NO_THROW(engine.launch({.num_groups = 50}, [](WorkGroup& wg) {
    auto buf = wg.local_array<std::uint8_t>(1000);
    buf[0] = 1;
  }));
}

TEST(LocalArena, AlignmentRespected) {
  LocalArena arena(1024);
  (void)arena.alloc<char>(3);
  const auto doubles = arena.alloc<double>(4);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(doubles.data()) %
                alignof(double),
            0u);
}

TEST(LocalArena, SequentialAllocationsDisjoint) {
  LocalArena arena(1024);
  auto a = arena.alloc<int>(10);
  auto b = arena.alloc<int>(10);
  EXPECT_GE(b.data(), a.data() + 10);
  arena.reset();
  auto c = arena.alloc<int>(10);
  EXPECT_EQ(c.data(), a.data());  // reuse from the start after reset
}

TEST(Engine, DivUp) {
  EXPECT_EQ(div_up(0 + 1, 256), 1u);
  EXPECT_EQ(div_up(256, 256), 1u);
  EXPECT_EQ(div_up(257, 256), 2u);
  EXPECT_EQ(div_up(1024, 256), 4u);
}

TEST(Engine, ManyGroupsStress) {
  Engine engine;
  std::atomic<std::int64_t> total{0};
  engine.launch({.num_groups = 20000, .group_size = 1, .chunk = 64},
                [&](WorkGroup& wg) {
                  total += static_cast<std::int64_t>(wg.group_id());
                });
  EXPECT_EQ(total.load(), 19999LL * 20000 / 2);
}

}  // namespace
